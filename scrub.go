package coconut

// Scrub is the offline integrity pass: it walks every persistent artifact
// an index's manifest references — the manifest itself, B+-tree page and
// trie leaf files, LSM run files, WAL segments, the raw dataset via its
// CRC sidecar, and (for partitioned indexes) each child's artifacts — and
// verifies every checksummed block, reporting a per-file finding for each.
// Repair then fixes what is fixable in place: LSM runs are re-derived from
// the verified raw dataset (a run's contents are a pure function of the
// records it covers), WAL damage is resolved by the degraded-open
// reconstruction, and tree/trie page damage is repaired by rebuilding the
// index from the raw dataset — window invariance makes all three repairs
// answer-preserving.

import (
	"errors"
	"fmt"

	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/runblock"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
)

// ScrubFinding is one artifact's verification outcome.
type ScrubFinding struct {
	// File is the artifact's name on the storage device.
	File string
	// Units is how much was verified: checksum blocks for block-format
	// artifacts, records for the raw dataset, acknowledged entries for
	// WAL segments, 0 for the manifest (verified whole).
	Units int64
	// Err is nil for a healthy artifact, otherwise the typed failure —
	// errors.Is(Err, ErrCorruptData) identifies detected corruption.
	Err error
}

// ScrubReport is the result of a Scrub pass: one finding per artifact.
type ScrubReport struct {
	// Checksums reports whether the index is stored in the checksummed
	// block format. Legacy (unchecksummed) indexes scrub structurally
	// only: the manifest is still verified, but data blocks carry no CRCs.
	Checksums bool
	// Findings holds one entry per artifact, in walk order.
	Findings []ScrubFinding
}

// Clean reports whether every artifact verified.
func (r *ScrubReport) Clean() bool {
	for _, f := range r.Findings {
		if f.Err != nil {
			return false
		}
	}
	return true
}

// Corrupt returns the findings that failed verification.
func (r *ScrubReport) Corrupt() []ScrubFinding {
	var out []ScrubFinding
	for _, f := range r.Findings {
		if f.Err != nil {
			out = append(out, f)
		}
	}
	return out
}

func (r *ScrubReport) add(file string, units int64, err error) {
	r.Findings = append(r.Findings, ScrubFinding{File: file, Units: units, Err: err})
}

// Scrub verifies every block of every persistent artifact of the index
// name on fs and returns a per-file report. It never modifies anything;
// corruption is reported in the findings, not returned as an error.
func Scrub(fs Storage, name string) (*ScrubReport, error) {
	if fs == nil {
		return nil, errors.New("coconut: nil Storage")
	}
	rep := &ScrubReport{}
	scrubIndex(fs, name, rep, true)
	return rep, nil
}

// scrubIndex walks one manifest's artifacts. root marks the top-level
// index: the raw dataset is shared by every partition, so it is verified
// once, from the root.
func scrubIndex(fs Storage, name string, rep *ScrubReport, root bool) {
	m, err := manifest.Load(fs, name)
	rep.add(manifest.FileName(name), 0, err)
	if err != nil {
		return
	}
	if root {
		rep.Checksums = m.Checksums
	}
	switch m.Variant {
	case manifest.VariantPartitioned:
		for _, child := range m.Part.Children {
			scrubIndex(fs, child, rep, false)
		}
	case manifest.VariantTree:
		scrubBlockFile(fs, name+".bt.leaves", m.Checksums, rep)
	case manifest.VariantTrie:
		scrubBlockFile(fs, name+".leaves", m.Checksums, rep)
	case manifest.VariantLSM:
		for _, ri := range m.LSM.Runs {
			if m.Compressed {
				scrubCompressedRun(fs, ri.Name, m.Checksums, rep)
			} else {
				scrubBlockFile(fs, ri.Name, m.Checksums, rep)
			}
		}
		// WAL frames carry their own per-record CRCs in every format
		// generation; scan the manifest's segment range plus any
		// higher-numbered segments a crash left behind.
		for seg := m.LSM.WALFirstSeg; seg < m.LSM.WALNextSeg || fs.Exists(lsm.WALSegmentName(name, seg)); seg++ {
			if !fs.Exists(lsm.WALSegmentName(name, seg)) {
				continue // never synced; an empty segment is a crash artifact
			}
			n, err := lsm.VerifyWALSegment(fs, name, seg)
			rep.add(lsm.WALSegmentName(name, seg), n, err)
		}
	}
	if root && m.RawName != "" && m.Checksums {
		recSize := series.EncodedSize(m.SeriesLen)
		n, err := storage.VerifyRecordSums(fs, m.RawName, recSize)
		rep.add(m.RawName, n, err)
	}
}

// scrubBlockFile verifies one checksummed-block artifact end to end.
// Legacy artifacts carry no block CRCs; existence is all that can be
// checked without a full index open.
func scrubBlockFile(fs Storage, name string, checksums bool, rep *ScrubReport) {
	if !checksums {
		if !fs.Exists(name) {
			rep.add(name, 0, fmt.Errorf("coconut: %q: %w", name, storage.ErrNotExist))
		}
		return
	}
	f, err := fs.Open(name)
	if err != nil {
		rep.add(name, 0, err)
		return
	}
	defer f.Close()
	n, err := storage.VerifyChecksumBlocks(f)
	rep.add(name, n, err)
}

// scrubCompressedRun verifies one block-compressed LSM run end to end:
// the codec's own header/footer/directory CRCs and a streaming decode of
// every block. Unlike flat runs, compressed runs are fully verifiable even
// without the checksummed-block layer — the codec carries a CRC32-C per
// block — so legacy-format indexes lose nothing by compressing.
func scrubCompressedRun(fs Storage, name string, checksums bool, rep *ScrubReport) {
	f, err := fs.Open(name)
	if err != nil {
		rep.add(name, 0, err)
		return
	}
	in := storage.File(f)
	if checksums {
		cf, err := storage.OpenChecksumFile(f)
		if err != nil {
			f.Close()
			rep.add(name, 0, err)
			return
		}
		in = cf
	}
	r, err := runblock.OpenReader(in, nil)
	if err != nil {
		f.Close()
		rep.add(name, 0, err)
		return
	}
	blocks := int64(r.NumBlocks())
	verr := r.Verify()
	if err := r.Close(); verr == nil {
		verr = err
	}
	rep.add(name, blocks, verr)
}

// Repair fixes what Scrub found, in place, for the index cfg names. What
// is fixable depends on the variant:
//
//   - LSM: quarantined runs and rotted WAL segments are re-derived from
//     the raw dataset (every indexed record's key is a pure function of
//     its raw bytes), the repaired manifest is committed, and the corrupt
//     files are deleted.
//   - Tree and Trie: a damaged page or leaf file is repaired by
//     rebuilding the index from the raw dataset — answers are identical
//     because the index is a pure function of the record multiset.
//   - The raw dataset itself is source data: rot there is unrepairable
//     from within the index and is returned as an error.
//
// Repair re-scrubs afterwards and returns the post-repair report.
func Repair(cfg Config) (*ScrubReport, error) {
	pre, err := Scrub(cfg.Storage, cfg.Name)
	if err != nil {
		return nil, err
	}
	if pre.Clean() {
		return pre, nil
	}
	m, err := manifest.Load(cfg.Storage, cfg.Name)
	if err != nil {
		return pre, fmt.Errorf("coconut: repair: manifest unreadable: %w", err)
	}
	// The raw dataset is the repair source; if it is damaged, nothing
	// derived from it can be trusted to rebuild.
	if m.Checksums && m.RawName != "" {
		if _, err := storage.VerifyRecordSums(cfg.Storage, m.RawName, series.EncodedSize(m.SeriesLen)); err != nil {
			return pre, fmt.Errorf("coconut: repair: raw dataset %q is damaged, cannot rebuild from it: %w", m.RawName, err)
		}
	}
	variant := m.Variant
	rcfg := cfg
	rcfg.AllowDegraded = true
	if variant == manifest.VariantPartitioned {
		variant = m.Part.ChildVariant
		if rcfg.Partitions == 0 {
			rcfg.Partitions = m.Part.Partitions
		}
	}
	// A rebuild needs the full build configuration; adopt anything the
	// caller left unset from the manifest, exactly as Open does.
	if rcfg.SeriesLen == 0 {
		rcfg.SeriesLen = m.SeriesLen
	}
	if rcfg.Segments == 0 {
		rcfg.Segments = m.Segments
	}
	if rcfg.CardinalityBits == 0 {
		rcfg.CardinalityBits = m.CardBits
	}
	if rcfg.DataFile == "" {
		rcfg.DataFile = m.RawName
	}
	if rcfg.LeafSize == 0 && m.LeafCap != 0 {
		rcfg.LeafSize = m.LeafCap
	}
	rcfg.Materialized = m.Materialized
	rcfg.DisableChecksums = !m.Checksums
	rcfg.DisableCompression = !m.Compressed
	switch variant {
	case manifest.VariantLSM:
		ix, err := OpenLSMIndex(rcfg)
		if err != nil {
			return pre, fmt.Errorf("coconut: repair: degraded open: %w", err)
		}
		rerr := ix.Repair()
		if cerr := ix.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return pre, fmt.Errorf("coconut: repair: %w", rerr)
		}
	case manifest.VariantTree:
		ix, err := BuildTreeIndex(rcfg)
		if err != nil {
			return pre, fmt.Errorf("coconut: repair: rebuilding tree: %w", err)
		}
		if err := ix.Close(); err != nil {
			return pre, fmt.Errorf("coconut: repair: %w", err)
		}
	case manifest.VariantTrie:
		ix, err := BuildTrieIndex(rcfg)
		if err != nil {
			return pre, fmt.Errorf("coconut: repair: rebuilding trie: %w", err)
		}
		if err := ix.Close(); err != nil {
			return pre, fmt.Errorf("coconut: repair: %w", err)
		}
	default:
		return pre, fmt.Errorf("coconut: repair: unsupported variant %v", variant)
	}
	return Scrub(cfg.Storage, cfg.Name)
}
