package coconut

// The durable-lifecycle conformance suite: every index variant built on
// either storage backend must reopen in a "fresh process" (a new handle,
// and for OSFS a new FS instance over the same directory) and answer
// exact, approximate, and k-NN queries byte-identically to the just-built
// handle — with the reopen itself never reading the raw dataset. Plus the
// MemFS/OSFS parity check: the same build+reopen sequence must leave
// byte-identical file sets on both backends.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/coconut-db/coconut/internal/storage"
)

// reopenBackend abstracts "the same directory seen by a fresh process".
type reopenBackend struct {
	name string
	// fresh returns a Storage for a new empty home, plus a way to reopen
	// that same home as a fresh FS instance and to guard the raw dataset
	// against reads (MemFS only; OSFS returns a no-op guard).
	fresh func(t *testing.T) (build Storage, reopen func() Storage, guardRaw func(on bool))
}

func reopenBackends() []reopenBackend {
	return []reopenBackend{
		{
			name: "memfs",
			fresh: func(t *testing.T) (Storage, func() Storage, func(bool)) {
				fs := storage.NewMemFS()
				guard := func(on bool) {
					if !on {
						fs.SetFault(nil)
						return
					}
					fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
						if op == storage.OpRead && name == "conf.bin" {
							return fmt.Errorf("raw dataset read during reopen (off=%d n=%d)", off, n)
						}
						return nil
					})
				}
				return fs, func() Storage { return fs }, guard
			},
		},
		{
			name: "osfs",
			fresh: func(t *testing.T) (Storage, func() Storage, func(bool)) {
				dir := t.TempDir()
				fs, err := NewDiskStorage(dir)
				if err != nil {
					t.Fatal(err)
				}
				reopen := func() Storage {
					fresh, err := NewDiskStorage(dir)
					if err != nil {
						t.Fatal(err)
					}
					return fresh
				}
				return fs, reopen, func(bool) {}
			},
		},
	}
}

// reopenAnswers is the full query surface compared across the lifecycle.
type reopenAnswers struct {
	exact  []Result
	approx []Result
	knn    [][]Neighbor
}

func collectAnswers(t *testing.T, queries []Series,
	exact, approx searchFn, knn func(Series, int) ([]Neighbor, error)) reopenAnswers {
	t.Helper()
	var a reopenAnswers
	for _, q := range queries {
		e, err := exact(q)
		if err != nil {
			t.Fatal(err)
		}
		a.exact = append(a.exact, e)
		ap, err := approx(q)
		if err != nil {
			t.Fatal(err)
		}
		a.approx = append(a.approx, ap)
		if knn != nil {
			ns, err := knn(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			a.knn = append(a.knn, ns)
		}
	}
	return a
}

func assertAnswersEqual(t *testing.T, built, reopened reopenAnswers) {
	t.Helper()
	for i := range built.exact {
		if built.exact[i] != reopened.exact[i] {
			t.Errorf("query %d: exact answers differ: built %+v, reopened %+v",
				i, built.exact[i], reopened.exact[i])
		}
		if built.approx[i] != reopened.approx[i] {
			t.Errorf("query %d: approx answers differ: built %+v, reopened %+v",
				i, built.approx[i], reopened.approx[i])
		}
	}
	for i := range built.knn {
		if len(built.knn[i]) != len(reopened.knn[i]) {
			t.Fatalf("query %d: kNN lengths differ", i)
		}
		for j := range built.knn[i] {
			if built.knn[i][j] != reopened.knn[i][j] {
				t.Errorf("query %d: kNN rank %d differs: built %+v, reopened %+v",
					i, j, built.knn[i][j], reopened.knn[i][j])
			}
		}
	}
}

// TestReopenConformance: build, query, Close, reopen from storage, query
// again — byte-identical exact, approximate, and k-NN answers on both
// backends, for all three variants (tree materialized or not, trie, and a
// multi-run LSM), with the reopen reading only index files + manifest.
func TestReopenConformance(t *testing.T) {
	queries, err := GenerateQueries(RandomWalk, 6, confLen, confSeed+3)
	if err != nil {
		t.Fatal(err)
	}
	type variant struct {
		name string
		run  func(t *testing.T, be reopenBackend)
	}
	treeCase := func(mat bool) func(*testing.T, reopenBackend) {
		return func(t *testing.T, be reopenBackend) {
			fs, freshFS, guard := be.fresh(t)
			if err := GenerateDataset(fs, "conf.bin", RandomWalk, confCount, confLen, confSeed); err != nil {
				t.Fatal(err)
			}
			ix, err := BuildTreeIndex(confConfig(fs, 1, mat))
			if err != nil {
				t.Fatal(err)
			}
			built := collectAnswers(t, queries, ix.Search,
				func(q Series) (Result, error) { return ix.SearchApprox(q, 1) }, ix.SearchKNN)
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}

			guard(true)
			re, err := OpenTreeIndex(Config{Storage: freshFS(), Name: "conf", QueryWorkers: 1})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			guard(false)
			defer re.Close()
			reopened := collectAnswers(t, queries, re.Search,
				func(q Series) (Result, error) { return re.SearchApprox(q, 1) }, re.SearchKNN)
			assertAnswersEqual(t, built, reopened)
		}
	}
	trieCase := func(mat bool) func(*testing.T, reopenBackend) {
		return func(t *testing.T, be reopenBackend) {
			fs, freshFS, guard := be.fresh(t)
			if err := GenerateDataset(fs, "conf.bin", RandomWalk, confCount, confLen, confSeed); err != nil {
				t.Fatal(err)
			}
			ix, err := BuildTrieIndex(confConfig(fs, 1, mat))
			if err != nil {
				t.Fatal(err)
			}
			built := collectAnswers(t, queries, ix.Search,
				func(q Series) (Result, error) { return ix.SearchApprox(q, 1) }, nil)
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}

			guard(true)
			re, err := OpenTrieIndex(Config{Storage: freshFS(), Name: "conf", QueryWorkers: 1})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			guard(false)
			defer re.Close()
			reopened := collectAnswers(t, queries, re.Search,
				func(q Series) (Result, error) { return re.SearchApprox(q, 1) }, nil)
			assertAnswersEqual(t, built, reopened)
		}
	}
	lsmCase := func(t *testing.T, be reopenBackend) {
		fs, freshFS, guard := be.fresh(t)
		if err := GenerateDataset(fs, "conf.bin", RandomWalk, confCount, confLen, confSeed); err != nil {
			t.Fatal(err)
		}
		ix, err := BuildLSMIndex(confConfig(fs, 1, false))
		if err != nil {
			t.Fatal(err)
		}
		confAppend(t, ix, 3)
		// Quiesce so both handles see the same durable state (the memtable
		// flushes at Close, which legitimately shifts approximate-search
		// windows — compare like with like).
		if err := ix.Sync(); err != nil {
			t.Fatal(err)
		}
		if got := ix.NumRuns(); got < 2 {
			t.Fatalf("fixture built %d runs, want multi-run", got)
		}
		built := collectAnswers(t, queries, ix.Search, ix.SearchApprox, nil)
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}

		guard(true)
		re, err := OpenLSMIndex(Config{Storage: freshFS(), Name: "conf", QueryWorkers: 1})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		guard(false)
		defer re.Close()
		reopened := collectAnswers(t, queries, re.Search, re.SearchApprox, nil)
		assertAnswersEqual(t, built, reopened)
	}
	variants := []variant{
		{"tree", treeCase(false)},
		{"tree-materialized", treeCase(true)},
		{"trie", trieCase(false)},
		{"trie-materialized", trieCase(true)},
		{"lsm-multirun", lsmCase},
	}
	for _, be := range reopenBackends() {
		for _, v := range variants {
			t.Run(be.name+"/"+v.name, func(t *testing.T) { v.run(t, be) })
		}
	}
}

// TestBackendParity: the same build + insert + reopen sequence against
// MemFS and OSFS must leave identical file sets with byte-identical
// contents — manifests included — proving the atomic-commit machinery
// behaves the same on both backends.
func TestBackendParity(t *testing.T) {
	runSequence := func(fs Storage) {
		t.Helper()
		if err := GenerateDataset(fs, "conf.bin", RandomWalk, confCount, confLen, confSeed); err != nil {
			t.Fatal(err)
		}
		cfg := confConfig(fs, 1, false)
		ix, err := BuildTreeIndex(cfg)
		if err != nil {
			t.Fatal(err)
		}
		extra, err := GenerateQueries(Seismic, 30, confLen, confSeed+5)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Insert(extra); err != nil {
			t.Fatal(err)
		}
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen, query once, close again (must not dirty anything).
		re, err := OpenTreeIndex(Config{Storage: fs, Name: "conf", QueryWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := re.Search(extra[0]); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}

		// And an LSM lifecycle in the same home.
		lcfg := cfg
		lcfg.Name = "conflsm"
		lix, err := BuildLSMIndex(lcfg)
		if err != nil {
			t.Fatal(err)
		}
		confAppend(t, lix, 2)
		if err := lix.Close(); err != nil {
			t.Fatal(err)
		}
	}

	mem := storage.NewMemFS()
	runSequence(mem)

	dir := t.TempDir()
	osfs, err := storage.NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	runSequence(osfs)

	memNames, osNames := mem.Names(), osfs.Names()
	if len(memNames) != len(osNames) {
		t.Fatalf("file sets differ:\n  memfs: %v\n  osfs:  %v", memNames, osNames)
	}
	for i := range memNames {
		if memNames[i] != osNames[i] {
			t.Fatalf("file sets differ at %d: %q vs %q", i, memNames[i], osNames[i])
		}
	}
	for _, name := range memNames {
		a, err := storage.ReadFileAll(mem, name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := storage.ReadFileAll(osfs, name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("file %q differs between backends (%d vs %d bytes)", name, len(a), len(b))
		}
	}
}

// TestTreeMetaAheadOfManifestHeals: a crash between the B+-tree meta save
// and the manifest commit (Sync does them in that order, each atomic)
// leaves a newer meta under an older manifest. OpenTreeIndex must heal —
// adopt the meta, recommit the manifest — and serve the inserted data.
func TestTreeMetaAheadOfManifestHeals(t *testing.T) {
	fs, _ := confFS(t)
	ix, err := BuildTreeIndex(confConfig(fs, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	oldManifest, err := storage.ReadFileAll(fs, "conf.manifest")
	if err != nil {
		t.Fatal(err)
	}
	extra, err := GenerateQueries(Seismic, 20, confLen, confSeed+8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: meta (and raw file) are the post-insert
	// state, the manifest is the pre-insert one.
	if err := storage.WriteFileAll(fs, "conf.manifest", oldManifest); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTreeIndex(Config{Storage: fs, Name: "conf", QueryWorkers: 1})
	if err != nil {
		t.Fatalf("heal-open failed: %v", err)
	}
	if got, want := re.Count(), int64(confCount+len(extra)); got != want {
		t.Fatalf("healed count %d, want %d", got, want)
	}
	res, err := re.Search(extra[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance > 1e-9 {
		t.Fatalf("inserted series lost across heal: dist %v", res.Distance)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// The heal recommitted the manifest: a second open sees a clean state.
	healed, err := storage.ReadFileAll(fs, "conf.manifest")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(healed, oldManifest) {
		t.Fatal("manifest not recommitted during heal")
	}
}

// TestTrieLeafHeaderCorruption: a flipped bit in a trie leaf's count
// header (not covered by the manifest checksum) must fail the reopen with
// a typed error, never a panic.
func TestTrieLeafHeaderCorruption(t *testing.T) {
	fs, _ := confFS(t)
	ix, err := BuildTrieIndex(confConfig(fs, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	leaves, err := storage.ReadFileAll(fs, "conf.leaves")
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), leaves...)
	mut[3] ^= 0x40 // count header's top byte: claims ~16M records
	if err := storage.WriteFileAll(fs, "conf.leaves", mut); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTrieIndex(Config{Storage: fs, Name: "conf"}); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("corrupt leaf header: got %v, want ErrCorruptManifest", err)
	}
}

// TestOpenConfigMismatch: public-level loud failures — conflicting
// explicit parameters, wrong variant, and a corrupted manifest.
func TestOpenConfigMismatch(t *testing.T) {
	fs, _ := confFS(t)
	ix, err := BuildTreeIndex(confConfig(fs, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenTreeIndex(Config{Storage: fs, Name: "conf", SeriesLen: confLen * 2}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("conflicting SeriesLen: got %v, want ErrConfigMismatch", err)
	}
	if _, err := OpenTreeIndex(Config{Storage: fs, Name: "conf", Segments: 16}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("conflicting Segments: got %v, want ErrConfigMismatch", err)
	}
	if _, err := OpenTreeIndex(Config{Storage: fs, Name: "conf", LeafSize: 64}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("conflicting LeafSize: got %v, want ErrConfigMismatch", err)
	}
	if _, err := OpenTrieIndex(Config{Storage: fs, Name: "conf"}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("tree opened as trie: got %v, want ErrConfigMismatch", err)
	}
	if _, err := OpenLSMIndex(Config{Storage: fs, Name: "conf"}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("tree opened as lsm: got %v, want ErrConfigMismatch", err)
	}

	// Corrupt the manifest: a flipped payload byte must surface as
	// ErrCorruptManifest, and restoring it must make Open work again.
	data, err := storage.ReadFileAll(fs, "conf.manifest")
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)-1] ^= 0x01
	if err := storage.WriteFileAll(fs, "conf.manifest", mut); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTreeIndex(Config{Storage: fs, Name: "conf"}); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("corrupt manifest: got %v, want ErrCorruptManifest", err)
	}
	if err := storage.WriteFileAll(fs, "conf.manifest", data); err != nil {
		t.Fatal(err)
	}
	re, err := OpenTreeIndex(Config{Storage: fs, Name: "conf"})
	if err != nil {
		t.Fatalf("restored manifest failed to open: %v", err)
	}
	re.Close()
}
