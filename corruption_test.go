package coconut

// The end-to-end corruption sweep: every class of persistent artifact —
// LSM run file, B+-tree page file, trie leaf file, raw dataset, WAL
// segment — is bit-rotted in turn, on both storage backends and for both
// single and partitioned indexes, and the public API must (1) never
// return a silently wrong answer, (2) surface typed ErrCorruptData from
// strict opens and reads, (3) quarantine and keep serving the healthy
// remainder under AllowDegraded, and (4) restore byte-identical answers
// after Scrub + Repair (the raw dataset, being source data, is the one
// unrepairable class and must say so).

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/coconut-db/coconut/internal/storage"
)

const (
	sweepLen  = 64
	sweepN    = 400
	sweepQ    = 8
	sweepSeed = 77
)

// sweepFS is the backend contract: any FS that can also enumerate its
// files, so the sweep can locate the artifact to rot.
type sweepFS interface {
	storage.FS
	Names() []string
}

func sweepBackends(t *testing.T) map[string]func(t *testing.T) sweepFS {
	return map[string]func(t *testing.T) sweepFS{
		"memfs": func(t *testing.T) sweepFS { return storage.NewMemFS() },
		"osfs": func(t *testing.T) sweepFS {
			fs, err := storage.NewOSFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
	}
}

func sweepSetup(t *testing.T, inner sweepFS) (*storage.FaultFS, []Series) {
	t.Helper()
	ffs := storage.NewFaultFS(inner)
	if err := GenerateDataset(ffs, "data.bin", RandomWalk, sweepN, sweepLen, sweepSeed); err != nil {
		t.Fatal(err)
	}
	qs, err := GenerateQueries(RandomWalk, sweepQ, sweepLen, sweepSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	return ffs, qs
}

func sweepConfig(fs Storage, parts int) Config {
	return Config{
		Storage:      fs,
		Name:         "sw",
		DataFile:     "data.bin",
		SeriesLen:    sweepLen,
		Segments:     8,
		LeafSize:     32,
		Partitions:   parts,
		Workers:      2,
		QueryWorkers: 2,
	}
}

type sweepSearcher interface {
	Search(Series) (Result, error)
}

func sweepBaseline(t *testing.T, ix sweepSearcher, qs []Series) []Result {
	t.Helper()
	base := make([]Result, len(qs))
	for i, q := range qs {
		res, err := ix.Search(q)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		base[i] = res
	}
	return base
}

// requireCorrupt asserts a strict-mode failure is typed, never a panic or
// an untyped error string.
func requireCorrupt(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("corruption went undetected: no error")
	}
	if !errors.Is(err, ErrCorruptData) && !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("corruption error is untyped: %v", err)
	}
}

// assertNoWrongAnswer: with corruption present, each query must either
// fail typed or return exactly the pre-rot answer — a differing answer
// with a nil error is the one forbidden outcome.
func assertNoWrongAnswer(t *testing.T, ix sweepSearcher, qs []Series, base []Result) {
	t.Helper()
	for i, q := range qs {
		res, err := ix.Search(q)
		if err != nil {
			requireCorrupt(t, err)
			continue
		}
		if res.Position != base[i].Position || math.Abs(res.Distance-base[i].Distance) > 1e-9 {
			t.Fatalf("silently wrong answer for query %d: got (pos %d, dist %v), want (pos %d, dist %v)",
				i, res.Position, res.Distance, base[i].Position, base[i].Distance)
		}
	}
}

// assertDegradedAnswers: a degraded index answers over the healthy
// remainder — a subset of the records — so every answer must be no closer
// than the true nearest neighbor.
func assertDegradedAnswers(t *testing.T, ix sweepSearcher, qs []Series, base []Result) {
	t.Helper()
	for i, q := range qs {
		res, err := ix.Search(q)
		if err != nil {
			requireCorrupt(t, err)
			continue
		}
		if res.Distance < base[i].Distance-1e-9 {
			t.Fatalf("degraded answer for query %d is impossibly better than the true NN: %v < %v",
				i, res.Distance, base[i].Distance)
		}
	}
}

// assertExactAnswers: after repair, answers must be byte-identical to the
// pre-rot baseline.
func assertExactAnswers(t *testing.T, ix sweepSearcher, qs []Series, base []Result) {
	t.Helper()
	for i, q := range qs {
		res, err := ix.Search(q)
		if err != nil {
			t.Fatalf("post-repair query %d: %v", i, err)
		}
		if res.Position != base[i].Position || math.Abs(res.Distance-base[i].Distance) > 1e-9 {
			t.Fatalf("post-repair answer for query %d differs: got (pos %d, dist %v), want (pos %d, dist %v)",
				i, res.Position, res.Distance, base[i].Position, base[i].Distance)
		}
	}
}

// findLargest returns the largest file whose name contains substr (the
// largest is the one guaranteed to hold data, e.g. a WAL segment with
// acknowledged frames).
func findLargest(t *testing.T, fs sweepFS, substr string) string {
	t.Helper()
	var best string
	var bestSize int64 = -1
	for _, n := range fs.Names() {
		if !strings.Contains(n, substr) {
			continue
		}
		f, err := fs.Open(n)
		if err != nil {
			t.Fatal(err)
		}
		size, err := f.Size()
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if size > bestSize {
			best, bestSize = n, size
		}
	}
	if best == "" {
		t.Fatalf("no file matching %q in %v", substr, fs.Names())
	}
	return best
}

// requireScrubFlags runs Scrub and asserts it reports exactly the rotted
// file as corrupt (detection must be precise, not just "something broke").
func requireScrubFlags(t *testing.T, fs Storage, name, file string) {
	t.Helper()
	rep, err := Scrub(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatalf("scrub missed the corruption in %q", file)
	}
	for _, f := range rep.Corrupt() {
		if f.File != file {
			t.Fatalf("scrub flags %q (%v), but only %q was rotted", f.File, f.Err, file)
		}
		requireCorrupt(t, f.Err)
	}
}

func requireRepairClean(t *testing.T, fs Storage, name string) {
	t.Helper()
	rep, err := Repair(Config{Storage: fs, Name: name})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, f := range rep.Corrupt() {
			t.Errorf("still corrupt after repair: %s: %v", f.File, f.Err)
		}
		t.FailNow()
	}
}

func TestCorruptionSweep(t *testing.T) {
	for beName, mkFS := range sweepBackends(t) {
		for _, parts := range []int{1, 3} {
			prefix := fmt.Sprintf("%s/parts=%d/", beName, parts)
			t.Run(prefix+"tree-page", func(t *testing.T) { sweepTreePage(t, mkFS(t), parts) })
			t.Run(prefix+"trie-leaf", func(t *testing.T) { sweepTrieLeaf(t, mkFS(t), parts) })
			t.Run(prefix+"lsm-run", func(t *testing.T) { sweepLSMRun(t, mkFS(t), parts) })
			t.Run(prefix+"compressed-block", func(t *testing.T) { sweepCompressedBlock(t, mkFS(t), parts) })
			t.Run(prefix+"raw", func(t *testing.T) { sweepRaw(t, mkFS(t), parts) })
			t.Run(prefix+"wal", func(t *testing.T) { sweepWAL(t, mkFS(t), parts) })
		}
	}
}

// sweepTreePage rots the first page block of a B+-tree leaf file. Tree
// pages are read lazily, so the open may succeed; the SIMS pass of every
// exact search reads the leaves, so detection lands on the first query.
func sweepTreePage(t *testing.T, inner sweepFS, parts int) {
	ffs, qs := sweepSetup(t, inner)
	ix, err := BuildTreeIndex(sweepConfig(ffs, parts))
	if err != nil {
		t.Fatal(err)
	}
	base := sweepBaseline(t, ix, qs)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	leaves := findLargest(t, inner, ".leaves")
	if err := ffs.Rot(leaves, storage.ChecksumHeaderSize+4, 8); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTreeIndex(Config{Storage: ffs, Name: "sw"})
	if err != nil {
		requireCorrupt(t, err)
	} else {
		assertNoWrongAnswer(t, re, qs, base)
		re.Close()
	}
	requireScrubFlags(t, ffs, "sw", leaves)
	requireRepairClean(t, ffs, "sw")

	re2, err := OpenTreeIndex(Config{Storage: ffs, Name: "sw"})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	assertExactAnswers(t, re2, qs, base)
}

// sweepTrieLeaf rots a trie leaf block. The trie reloads every leaf at
// open, so strict opens fail typed; a partitioned open with AllowDegraded
// quarantines the damaged child and serves the remainder.
func sweepTrieLeaf(t *testing.T, inner sweepFS, parts int) {
	ffs, qs := sweepSetup(t, inner)
	ix, err := BuildTrieIndex(sweepConfig(ffs, parts))
	if err != nil {
		t.Fatal(err)
	}
	base := sweepBaseline(t, ix, qs)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	leaves := findLargest(t, inner, ".leaves")
	if err := ffs.Rot(leaves, storage.ChecksumHeaderSize+4, 8); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenTrieIndex(Config{Storage: ffs, Name: "sw"}); err == nil {
		t.Fatal("strict open of a rotted trie succeeded")
	} else {
		requireCorrupt(t, err)
	}
	if parts > 1 {
		dx, err := OpenTrieIndex(Config{Storage: ffs, Name: "sw", AllowDegraded: true})
		if err != nil {
			t.Fatalf("degraded open: %v", err)
		}
		if !dx.Degraded() {
			t.Fatal("degraded open did not report Degraded()")
		}
		assertDegradedAnswers(t, dx, qs, base)
		if err := dx.Close(); err != nil {
			t.Fatal(err)
		}
	}
	requireScrubFlags(t, ffs, "sw", leaves)
	requireRepairClean(t, ffs, "sw")

	re, err := OpenTrieIndex(Config{Storage: ffs, Name: "sw"})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Degraded() {
		t.Fatal("repaired index still degraded")
	}
	assertExactAnswers(t, re, qs, base)
}

// sweepLSMRun rots a sorted-run key block. The run's keys are reloaded at
// open, so strict opens fail typed; AllowDegraded quarantines the run and
// Repair re-derives it from the raw dataset.
func sweepLSMRun(t *testing.T, inner sweepFS, parts int) {
	ffs, qs := sweepSetup(t, inner)
	ix, err := BuildLSMIndex(sweepConfig(ffs, parts))
	if err != nil {
		t.Fatal(err)
	}
	// A second, smaller run: quarantining the bulk run must leave a
	// healthy remainder to serve degraded queries from.
	extra, err := GenerateQueries(Astronomy, 30, sweepLen, sweepSeed+3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	base := sweepBaseline(t, ix, qs)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	run := findLargest(t, inner, ".run.")
	if err := ffs.Rot(run, storage.ChecksumHeaderSize+4, 8); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenLSMIndex(Config{Storage: ffs, Name: "sw"}); err == nil {
		t.Fatal("strict open of a rotted run succeeded")
	} else {
		requireCorrupt(t, err)
	}
	requireScrubFlags(t, ffs, "sw", run)

	dx, err := OpenLSMIndex(Config{Storage: ffs, Name: "sw", AllowDegraded: true})
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	if !dx.Degraded() {
		t.Fatal("degraded open did not report Degraded()")
	}
	assertDegradedAnswers(t, dx, qs, base)
	if err := dx.Repair(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if dx.Degraded() {
		t.Fatal("index still degraded after Repair")
	}
	// Repair must restore the exact record multiset: a partition child
	// rebuilding from the shared raw dataset must not re-index records
	// its siblings own.
	if got := dx.Count(); got != sweepN+30 {
		t.Fatalf("repaired index holds %d records, want %d", got, sweepN+30)
	}
	assertExactAnswers(t, dx, qs, base)
	if err := dx.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(ffs, "sw")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("scrub not clean after repair: %+v", rep.Corrupt())
	}
	re, err := OpenLSMIndex(Config{Storage: ffs, Name: "sw"})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertExactAnswers(t, re, qs, base)
}

// sweepCompressedBlock rots bytes inside a front-coded block of a
// compressed run built WITHOUT the checksummed-block layer, so the codec's
// own per-block CRC32-C is the only line of defense: strict opens must
// fail typed, AllowDegraded must quarantine the run and serve the healthy
// remainder, scrub must pinpoint the file, and Repair must re-derive the
// run from the raw dataset.
func sweepCompressedBlock(t *testing.T, inner sweepFS, parts int) {
	ffs, qs := sweepSetup(t, inner)
	cfg := sweepConfig(ffs, parts)
	cfg.DisableChecksums = true
	ix, err := BuildLSMIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A second, smaller run: quarantining the bulk run must leave a
	// healthy remainder to serve degraded queries from.
	extra, err := GenerateQueries(Astronomy, 30, sweepLen, sweepSeed+3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	base := sweepBaseline(t, ix, qs)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	run := findLargest(t, inner, ".run.")
	// Past the 16-byte codec header and the 8-byte block head: squarely
	// inside the front-coded payload the block CRC covers.
	if err := ffs.Rot(run, 16+8+2, 4); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenLSMIndex(Config{Storage: ffs, Name: "sw"}); err == nil {
		t.Fatal("strict open of a rotted compressed block succeeded")
	} else {
		requireCorrupt(t, err)
	}
	requireScrubFlags(t, ffs, "sw", run)

	dx, err := OpenLSMIndex(Config{Storage: ffs, Name: "sw", AllowDegraded: true})
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	if !dx.Degraded() {
		t.Fatal("degraded open did not report Degraded()")
	}
	assertDegradedAnswers(t, dx, qs, base)
	if err := dx.Repair(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if dx.Degraded() {
		t.Fatal("index still degraded after Repair")
	}
	if got := dx.Count(); got != sweepN+30 {
		t.Fatalf("repaired index holds %d records, want %d", got, sweepN+30)
	}
	assertExactAnswers(t, dx, qs, base)
	if err := dx.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(ffs, "sw")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("scrub not clean after repair: %+v", rep.Corrupt())
	}
	re, err := OpenLSMIndex(Config{Storage: ffs, Name: "sw"})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertExactAnswers(t, re, qs, base)
}

// sweepRaw rots the tail record of the raw dataset. The dataset is source
// data: reads that touch the record fail typed, scrub pinpoints the file,
// and Repair must refuse — nothing can re-derive it.
func sweepRaw(t *testing.T, inner sweepFS, parts int) {
	ffs, qs := sweepSetup(t, inner)
	ix, err := BuildTreeIndex(sweepConfig(ffs, parts))
	if err != nil {
		t.Fatal(err)
	}
	base := sweepBaseline(t, ix, qs)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	recSize := int64(sweepLen * 8)
	if err := ffs.Rot("data.bin", int64(sweepN)*recSize-recSize+3, 4); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTreeIndex(Config{Storage: ffs, Name: "sw"})
	if err != nil {
		requireCorrupt(t, err)
	} else {
		assertNoWrongAnswer(t, re, qs, base)
		re.Close()
	}
	requireScrubFlags(t, ffs, "sw", "data.bin")
	if _, err := Repair(Config{Storage: ffs, Name: "sw"}); err == nil {
		t.Fatal("repair claimed to fix rotted source data")
	} else if !errors.Is(err, ErrCorruptData) {
		t.Fatalf("repair refusal is untyped: %v", err)
	}
}

// sweepWAL crashes an LSM mid-stream so a WAL segment with acknowledged
// frames survives, rots a full frame, and requires: strict replay fails
// typed (a full-frame CRC mismatch can only be rot, never a torn write),
// and Repair reconstructs the acknowledged tail from the raw dataset.
func sweepWAL(t *testing.T, inner sweepFS, parts int) {
	ffs, qs := sweepSetup(t, inner)
	ix, err := BuildLSMIndex(sweepConfig(ffs, parts))
	if err != nil {
		t.Fatal(err)
	}
	extra, err := GenerateQueries(Astronomy, 10, sweepLen, sweepSeed+2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(extra); err != nil {
		t.Fatal(err)
	}
	base := sweepBaseline(t, ix, qs)
	ffs.Crash()
	// The durable image is what a machine reboot leaves behind; the WAL
	// holds the acknowledged inserts (Recover always images into memory,
	// regardless of backend).
	img := ffs.Recover(0)
	wal := findLargest(t, img, ".wal.")
	rfs := storage.NewFaultFS(img)
	if err := rfs.Rot(wal, 16+8+1, 4); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenLSMIndex(Config{Storage: img, Name: "sw"}); err == nil {
		t.Fatal("strict open of a rotted WAL succeeded")
	} else {
		requireCorrupt(t, err)
	}
	requireScrubFlags(t, img, "sw", wal)
	requireRepairClean(t, img, "sw")

	re, err := OpenLSMIndex(Config{Storage: img, Name: "sw"})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Count(); got != sweepN+10 {
		t.Fatalf("repaired index holds %d records, want %d", got, sweepN+10)
	}
	assertExactAnswers(t, re, qs, base)
}
