package coconut

import (
	"fmt"
	"math"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
)

// searcher is the common exact-search surface of the three index kinds.
type searcher interface {
	Close() error
}

type searchFn func(q Series) (Result, error)

const (
	confCount = 2500
	confLen   = 64
	confSeed  = 314
)

// confCase builds one index variant and returns its exact-search function
// plus the full in-memory dataset it indexes (for brute-force checking).
type confCase struct {
	name  string
	build func(t *testing.T, queryWorkers int) (searcher, searchFn, []Series)
}

func confConfig(fs Storage, queryWorkers int, materialized bool) Config {
	return Config{
		Storage:      fs,
		Name:         "conf",
		DataFile:     "conf.bin",
		SeriesLen:    confLen,
		Segments:     8,
		LeafSize:     50,
		Materialized: materialized,
		MemoryBudget: 1 << 20,
		Workers:      2,
		QueryWorkers: queryWorkers,
	}
}

func confFS(t *testing.T) (Storage, []Series) {
	t.Helper()
	fs := NewMemStorage()
	if err := GenerateDataset(fs, "conf.bin", RandomWalk, confCount, confLen, confSeed); err != nil {
		t.Fatal(err)
	}
	data := dataset.Generate(dataset.NewRandomWalk(), confCount, confLen, confSeed)
	return fs, data
}

// confAppend streams extra batches into an LSM index, flushing after each
// so the index accumulates `flushes` extra on-disk runs, plus a final
// unflushed batch that stays in the memtable.
func confAppend(t *testing.T, ix *LSMIndex, flushes int) []Series {
	t.Helper()
	extra := dataset.Generate(dataset.NewSeismic(), flushes*120+40, confLen, confSeed+1)
	for i := 0; i < flushes; i++ {
		if err := ix.Insert(extra[i*120 : (i+1)*120]); err != nil {
			t.Fatal(err)
		}
		if err := ix.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Insert(extra[flushes*120:]); err != nil {
		t.Fatal(err)
	}
	return extra
}

func confCases() []confCase {
	tree := func(mat bool) func(*testing.T, int) (searcher, searchFn, []Series) {
		return func(t *testing.T, qw int) (searcher, searchFn, []Series) {
			fs, data := confFS(t)
			ix, err := BuildTreeIndex(confConfig(fs, qw, mat))
			if err != nil {
				t.Fatal(err)
			}
			return ix, ix.Search, data
		}
	}
	trie := func(mat bool) func(*testing.T, int) (searcher, searchFn, []Series) {
		return func(t *testing.T, qw int) (searcher, searchFn, []Series) {
			fs, data := confFS(t)
			ix, err := BuildTrieIndex(confConfig(fs, qw, mat))
			if err != nil {
				t.Fatal(err)
			}
			return ix, ix.Search, data
		}
	}
	lsm := func(runs int) func(*testing.T, int) (searcher, searchFn, []Series) {
		return func(t *testing.T, qw int) (searcher, searchFn, []Series) {
			fs, data := confFS(t)
			ix, err := BuildLSMIndex(confConfig(fs, qw, false))
			if err != nil {
				t.Fatal(err)
			}
			if runs > 1 {
				data = append(data, confAppend(t, ix, runs-1)...)
				if got := ix.NumRuns(); got < runs {
					t.Fatalf("fixture built %d runs, want >= %d", got, runs)
				}
			}
			return ix, ix.Search, data
		}
	}
	return []confCase{
		{"tree", tree(false)},
		{"tree-materialized", tree(true)},
		{"trie", trie(false)},
		{"trie-materialized", trie(true)},
		{"lsm-1run", lsm(1)},
		{"lsm-4runs", lsm(4)},
	}
}

// TestExactConformance is the exact-vs-brute-force conformance suite: every
// index variant (tree/trie, materialized or not, single- and multi-run LSM)
// must answer exact 1-NN queries identically to a brute-force scan, and the
// answers must be byte-identical for every QueryWorkers setting.
func TestExactConformance(t *testing.T) {
	queries, err := GenerateQueries(RandomWalk, 8, confLen, confSeed+2)
	if err != nil {
		t.Fatal(err)
	}
	workerSweep := []int{1, 2, 8}
	for _, tc := range confCases() {
		t.Run(tc.name, func(t *testing.T) {
			// results[w][q] is query q's answer at worker count w.
			results := make(map[int][]Result)
			var data []Series
			for _, qw := range workerSweep {
				ix, search, d := tc.build(t, qw)
				data = d
				answers := make([]Result, len(queries))
				for qi, q := range queries {
					res, err := search(q)
					if err != nil {
						ix.Close()
						t.Fatalf("workers=%d query %d: %v", qw, qi, err)
					}
					answers[qi] = res
				}
				if err := ix.Close(); err != nil {
					t.Fatal(err)
				}
				results[qw] = answers
			}
			// Brute force is the ground truth for the first sweep entry...
			for qi, q := range queries {
				wantPos, wantDist := bruteForce(q, data)
				got := results[workerSweep[0]][qi]
				if got.Position != wantPos || math.Abs(got.Distance-wantDist) > 1e-9 {
					t.Errorf("query %d: got (#%d, %v), brute force (#%d, %v)",
						qi, got.Position, got.Distance, wantPos, wantDist)
				}
			}
			// ...and every other worker count must match it bit for bit.
			base := results[workerSweep[0]]
			for _, qw := range workerSweep[1:] {
				for qi := range queries {
					a, b := base[qi], results[qw][qi]
					if a.Position != b.Position || a.Distance != b.Distance {
						t.Errorf("query %d: workers=%d answered (#%d, %v), workers=%d answered (#%d, %v)",
							qi, workerSweep[0], a.Position, a.Distance, qw, b.Position, b.Distance)
					}
				}
			}
		})
	}
}

// bruteForce returns the position and distance of q's true 1-NN, breaking
// distance ties toward the lower position (the order every index scans in).
func bruteForce(q Series, data []Series) (int64, float64) {
	bestPos, bestDist := int64(-1), math.Inf(1)
	for i, d := range data {
		dist, err := series.ED(q, d)
		if err != nil {
			panic(fmt.Sprintf("brute force: %v", err))
		}
		if dist < bestDist {
			bestDist, bestPos = dist, int64(i)
		}
	}
	return bestPos, bestDist
}
