package coconut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file is the squared-space companion of the exact-search conformance
// suite: it proves the two floating-point facts the distance-kernel
// overhaul rests on. Every internal search path now compares SQUARED lower
// bounds against SQUARED best-so-far distances and takes one square root
// when the answer is materialized; TestExactConformance checks the
// end-to-end behavior, these tests pin the underlying invariants so a
// future kernel change that breaks them fails loudly and close to the
// cause.

// TestSqrtPreservesOrder: sqrt is monotone on the non-negative reals even
// after IEEE-754 rounding — a < b implies sqrt(a) <= sqrt(b), and a strict
// sqrt inequality implies a strict squared inequality. Together these say
// strict-inequality pruning in squared space never prunes a candidate the
// sqrt-space scan would have accepted.
func TestSqrtPreservesOrder(t *testing.T) {
	f := func(aBits, bBits uint64) bool {
		// Map arbitrary bits onto finite non-negative floats.
		a := math.Abs(math.Float64frombits(aBits))
		b := math.Abs(math.Float64frombits(bBits))
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		if a < b && !(math.Sqrt(a) <= math.Sqrt(b)) {
			return false
		}
		if math.Sqrt(a) < math.Sqrt(b) && !(a < b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestSquaredScanMatchesSqrtScan simulates the serial best-so-far scan both
// ways over adversarial squared sums (random values, exact duplicates, and
// 1-ulp neighbors — the hardest case for rounded square roots) and checks
// the refactor's contract: the squared-space scan reports a Euclidean
// distance BYTE-IDENTICAL to the sqrt-space scan's, and picks the same
// record except in the one benign case where two distinct squared sums
// round to the same square root (where any pick reports the identical
// distance; the winner then has the strictly smaller squared sum).
func TestSquaredScanMatchesSqrtScan(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		n := 50 + rng.Intn(200)
		sqs := make([]float64, n)
		for i := range sqs {
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.NormFloat64()
				sqs[i] = v * v * 100
			case 2:
				if i > 0 {
					sqs[i] = sqs[rng.Intn(i)] // exact duplicate
				} else {
					sqs[i] = rng.Float64()
				}
			default:
				if i > 0 {
					// 1-ulp neighbor: distinct squared sums whose square
					// roots may round to the same float64.
					sqs[i] = math.Nextafter(sqs[rng.Intn(i)], math.Inf(1))
				} else {
					sqs[i] = rng.Float64()
				}
			}
		}
		// Pre-refactor scan: compare (and keep) rounded square roots.
		sqrtBest, sqrtPos := math.Inf(1), -1
		for i, sq := range sqs {
			if d := math.Sqrt(sq); d < sqrtBest {
				sqrtBest, sqrtPos = d, i
			}
		}
		// Post-refactor scan: compare squared sums, sqrt at the end.
		sqBest, sqPos := math.Inf(1), -1
		for i, sq := range sqs {
			if sq < sqBest {
				sqBest, sqPos = sq, i
			}
		}
		if got := math.Sqrt(sqBest); got != sqrtBest {
			t.Fatalf("trial %d: squared-space scan reports %x, sqrt-space scan %x",
				trial, math.Float64bits(got), math.Float64bits(sqrtBest))
		}
		if sqPos != sqrtPos {
			// Allowed only for a sqrt rounding collision; the squared-space
			// winner must then be strictly better in squared space while
			// reporting the identical distance.
			if !(sqs[sqPos] < sqs[sqrtPos] && math.Sqrt(sqs[sqPos]) == math.Sqrt(sqs[sqrtPos])) {
				t.Fatalf("trial %d: winners diverge without a rounding collision: pos %d (sq=%v) vs pos %d (sq=%v)",
					trial, sqPos, sqs[sqPos], sqrtPos, sqs[sqrtPos])
			}
		}
	}
}
