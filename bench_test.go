package coconut

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§5), each regenerating the figure's rows at a laptop scale
// via internal/experiments, plus micro-benchmarks for the core primitives.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFig8a -v
// Full-scale rows:  go run ./cmd/benchrunner -scale full
//
// The -v output of each figure bench includes the regenerated table.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coconut-db/coconut/internal/bptree"
	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/experiments"
	"github.com/coconut-db/coconut/internal/extsort"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

func benchScale() experiments.Scale {
	sc := experiments.DefaultScale()
	// Keep each figure in the seconds range under `go test -bench=.`.
	sc.BaseCount = 4000
	sc.Queries = 10
	return sc
}

func runFigure(b *testing.B, fn func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tb, err := fn(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			tb.Print(os.Stdout)
		}
	}
}

func BenchmarkFig7Histograms(b *testing.B) { runFigure(b, experiments.Fig7Histograms) }

func BenchmarkFig8aConstructionMaterialized(b *testing.B) {
	runFigure(b, experiments.Fig8aConstructionMaterialized)
}

func BenchmarkFig8bConstructionNonMaterialized(b *testing.B) {
	runFigure(b, experiments.Fig8bConstructionNonMaterialized)
}

func BenchmarkFig8cSpace(b *testing.B) { runFigure(b, experiments.Fig8cSpace) }

func BenchmarkFig8dScaleMaterialized(b *testing.B) {
	runFigure(b, experiments.Fig8dScaleMaterialized)
}

func BenchmarkFig8eScaleNonMaterialized(b *testing.B) {
	runFigure(b, experiments.Fig8eScaleNonMaterialized)
}

func BenchmarkFig8fVariableLength(b *testing.B) {
	runFigure(b, experiments.Fig8fVariableLength)
}

func BenchmarkFig9aExact(b *testing.B) { runFigure(b, experiments.Fig9aExact) }

func BenchmarkFig9bApprox(b *testing.B) { runFigure(b, experiments.Fig9bApprox) }

func BenchmarkFig9cApprox40G(b *testing.B) { runFigure(b, experiments.Fig9cApproxLargest) }

func BenchmarkFig9dApproxQuality(b *testing.B) { runFigure(b, experiments.Fig9dApproxQuality) }

func BenchmarkFig9eExact40G(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		te, _, err := experiments.Fig9ef(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			te.Print(os.Stdout)
		}
	}
}

func BenchmarkFig9fVisitedRecords(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		_, tf, err := experiments.Fig9ef(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			tf.Print(os.Stdout)
		}
	}
}

func BenchmarkFig10aMixedWorkload(b *testing.B) {
	runFigure(b, experiments.Fig10aMixedWorkload)
}

func BenchmarkFig10bAstronomy(b *testing.B) { runFigure(b, experiments.Fig10bAstronomy) }

func BenchmarkFig10cSeismic(b *testing.B) { runFigure(b, experiments.Fig10cSeismic) }

func BenchmarkIndexSizeTable(b *testing.B) { runFigure(b, experiments.IndexSizeTable) }

// BenchmarkReopen measures the durable-lifecycle payoff on a 100k-series
// index: serving the first exact query by reopening from the manifest vs
// re-bulk-loading from the raw dataset (the only option before PR 5). The
// regenerated table (also available as `benchrunner -figure Reopen`)
// reports both costs per variant plus the reopen's read volume; the
// benchmark time is dominated by the rebuild arm, so the speedup column is
// the number to watch.
func BenchmarkReopen(b *testing.B) {
	sc := experiments.DefaultScale()
	sc.BaseCount = 100000
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Reopen(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			tb.Print(os.Stdout)
		}
	}
}

// BenchmarkQueryThroughput measures concurrent exact-query throughput on
// one SHARED TreeIndex handle over a 100k-series dataset: the fixed query
// batch is drained by `workers` client goroutines. Handles are safe for
// concurrent readers, so the sub-benchmark ratio is the wall-clock speedup
// of serving queries in parallel (answers are identical either way;
// QueryWorkers is pinned to 1 so the axis is purely handle concurrency).
func BenchmarkQueryThroughput(b *testing.B) {
	const (
		count     = 100000
		seriesLen = 64
		nQueries  = 16
	)
	fs := storage.NewMemFS()
	if err := GenerateDataset(fs, "qt.bin", RandomWalk, count, seriesLen, 21); err != nil {
		b.Fatal(err)
	}
	ix, err := BuildTreeIndex(Config{
		Storage:      fs,
		Name:         "qt",
		DataFile:     "qt.bin",
		SeriesLen:    seriesLen,
		MemoryBudget: 32 << 20,
		Workers:      0, // build on all CPUs; the index is identical anyway
		QueryWorkers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	queries, err := GenerateQueries(RandomWalk, nQueries, seriesLen, 22)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var next atomic.Int64
				var wg sync.WaitGroup
				var errMu sync.Mutex
				var firstErr error
				for c := 0; c < workers; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							qi := int(next.Add(1)) - 1
							if qi >= len(queries) {
								return
							}
							if _, err := ix.Search(queries[qi]); err != nil {
								errMu.Lock()
								if firstErr == nil {
									firstErr = err
								}
								errMu.Unlock()
								return
							}
						}
					}()
				}
				wg.Wait()
				if firstErr != nil {
					b.Fatal(firstErr)
				}
			}
		})
	}
}

// --- micro-benchmarks ------------------------------------------------------

func BenchmarkInterleave(b *testing.B) {
	sax := make(summary.SAX, 16)
	rng := rand.New(rand.NewSource(1))
	for j := range sax {
		sax[j] = uint8(rng.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = summary.Interleave(sax, 8)
	}
}

func BenchmarkDeinterleave(b *testing.B) {
	sax := make(summary.SAX, 16)
	for j := range sax {
		sax[j] = uint8(j * 17)
	}
	k := summary.Interleave(sax, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = summary.Deinterleave(k, 16, 8)
	}
}

func BenchmarkSummarizeSeries(b *testing.B) {
	s, err := summary.NewSummarizer(summary.DefaultParams(256))
	if err != nil {
		b.Fatal(err)
	}
	gen := dataset.NewRandomWalk()
	rng := rand.New(rand.NewSource(2))
	ser := make(series.Series, 256)
	gen.Generate(rng, ser)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.KeyOf(ser); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinDist(b *testing.B) {
	s, err := summary.NewSummarizer(summary.DefaultParams(256))
	if err != nil {
		b.Fatal(err)
	}
	gen := dataset.NewRandomWalk()
	rng := rand.New(rand.NewSource(3))
	q := make(series.Series, 256)
	x := make(series.Series, 256)
	gen.Generate(rng, q)
	gen.Generate(rng, x)
	qPAA, _ := s.PAA(q, nil)
	xSAX, _ := s.SAXOf(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.MinDistPAAToSAX(qPAA, xSAX)
	}
}

// BenchmarkMinDistsToKeys measures the SIMS lower-bound pass over a large
// in-memory key array — the per-key kernel of every exact query. "table" is
// the current path: a per-query MinDistTable rebuilt each op into reused
// storage, then one allocation-free table lookup per key (0 allocs/op).
// "legacy" is the pre-overhaul path: per-key SAX decode (one allocation per
// key), per-segment breakpoint-region recomputation, and a sqrt per key.
func BenchmarkMinDistsToKeys(b *testing.B) {
	const nKeys = 100000
	s, err := summary.NewSummarizer(summary.DefaultParams(256))
	if err != nil {
		b.Fatal(err)
	}
	p := s.Params()
	gen := dataset.NewRandomWalk()
	rng := rand.New(rand.NewSource(6))
	ser := make(series.Series, 256)
	keys := make([]summary.Key, nKeys)
	for i := range keys {
		gen.Generate(rng, ser)
		if keys[i], err = s.KeyOf(ser); err != nil {
			b.Fatal(err)
		}
	}
	gen.Generate(rng, ser)
	qPAA, err := s.PAA(ser, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("table", func(b *testing.B) {
		tbl := s.BuildMinDistTable(qPAA, nil) // storage reused every op
		out := make([]float64, nKeys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl = s.BuildMinDistTable(qPAA, tbl)
			tbl.KeysInto(keys, out, 1)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/nKeys, "ns/key")
	})
	b.Run("legacy", func(b *testing.B) {
		var sink float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				sax := summary.Deinterleave(k, p.Segments, p.CardBits)
				sink += s.MinDistPAAToSAX(qPAA, sax)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/nKeys, "ns/key")
		_ = sink
	})
}

// benchSink keeps benchmarked kernel results alive so the compiler cannot
// dead-code-eliminate the loops being measured.
var benchSink float64

// BenchmarkSquaredEDBlocked measures the blocked/unrolled Euclidean kernels
// against an inline scalar loop (the pre-overhaul shape), plus the
// early-abandon variant at a limit that abandons roughly half way.
func BenchmarkSquaredEDBlocked(b *testing.B) {
	gen := dataset.NewRandomWalk()
	rng := rand.New(rand.NewSource(8))
	q := make(series.Series, 256)
	x := make(series.Series, 256)
	gen.Generate(rng, q)
	gen.Generate(rng, x)
	full, err := series.SquaredED(q, x)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sq, err := series.SquaredED(q, x)
			if err != nil {
				b.Fatal(err)
			}
			benchSink += sq
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := 0.0
			for j := range q {
				d := q[j] - x[j]
				acc += d * d
			}
			benchSink += acc
		}
	})
	b.Run("early-abandon-half", func(b *testing.B) {
		limit := full / 2
		for i := 0; i < b.N; i++ {
			sq, _ := series.SquaredEDEarlyAbandon(q, x, limit)
			benchSink += sq
		}
	})
}

func BenchmarkEuclidean(b *testing.B) {
	gen := dataset.NewRandomWalk()
	rng := rand.New(rand.NewSource(4))
	q := make(series.Series, 256)
	x := make(series.Series, 256)
	gen.Generate(rng, q)
	gen.Generate(rng, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := series.SquaredED(q, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExternalSort(b *testing.B) {
	const n = 20000
	const recSize = 24
	data := make([]byte, n*recSize)
	rand.New(rand.NewSource(5)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := storage.NewMemFS()
		cfg := extsort.Config{
			FS:         fs,
			RecordSize: recSize,
			Compare:    extsort.CompareKeyPrefix(16),
			MemBudget:  64 << 10,
			// Pinned serial: this is the historical baseline for the
			// paper's algorithm; BenchmarkParallelSort owns the scaling.
			Workers: 1,
		}
		if _, err := extsort.Sort(cfg, bytes.NewReader(data), "out"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSort compares the external sort at one worker vs all
// CPUs. The data is CPU-bound on a MemFS device, so the sub-benchmark ratio
// is the wall-clock speedup of the parallel run-formation + merge pipeline
// (output is byte-identical either way).
func BenchmarkParallelSort(b *testing.B) {
	const n = 100000
	const recSize = 24
	data := make([]byte, n*recSize)
	rand.New(rand.NewSource(11)).Read(data)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				fs := storage.NewMemFS()
				cfg := extsort.Config{
					FS:         fs,
					RecordSize: recSize,
					Compare:    extsort.CompareKeyPrefix(16),
					MemBudget:  256 << 10,
					Workers:    workers,
				}
				if _, err := extsort.Sort(cfg, bytes.NewReader(data), "out"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelBuild compares the full Coconut-Tree bulk load (batched
// parallel summarization -> parallel external sort -> bulk load) at one
// worker vs all CPUs. Since the batched summarization pipeline, the
// summarize stage scales with Workers too — it no longer serializes on the
// reader goroutine.
func BenchmarkParallelBuild(b *testing.B) {
	const count = 20000
	const seriesLen = 128
	fs := storage.NewMemFS()
	if err := GenerateDataset(fs, "bench.bin", RandomWalk, count, seriesLen, 12); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := BuildTreeIndex(Config{
					Storage:      fs,
					Name:         fmt.Sprintf("bench-w%d", workers),
					DataFile:     "bench.bin",
					SeriesLen:    seriesLen,
					MemoryBudget: 1 << 20, // small budget: force real external sorting
					Workers:      workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				ix.Close()
			}
		})
	}
}

// BenchmarkBulkBuildMaterialized is the bulk-build bench for the "-Full"
// variants, where the summarization pipeline also carries the raw series
// through the sort (the path that used to allocate a fresh raw buffer per
// record). Run with -benchmem to see the allocation profile.
func BenchmarkBulkBuildMaterialized(b *testing.B) {
	const count = 10000
	const seriesLen = 128
	fs := storage.NewMemFS()
	if err := GenerateDataset(fs, "benchm.bin", RandomWalk, count, seriesLen, 13); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix, err := BuildTreeIndex(Config{
					Storage:      fs,
					Name:         fmt.Sprintf("benchm-w%d", workers),
					DataFile:     "benchm.bin",
					SeriesLen:    seriesLen,
					Materialized: true,
					MemoryBudget: 4 << 20,
					Workers:      workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				ix.Close()
			}
		})
	}
}

// BenchmarkAppendDurable measures durable single-series Insert throughput
// on a Coconut-LSM with 8 concurrent writers, group commit vs one fsync
// pair per append. MemFS fsync is free, so a FaultFS hook charges each
// fsync a fixed sleep — making the reported appends/sec reflect how many
// device-latency fsyncs each WAL discipline issues, which is the entire
// contrast (CI's bench smoke tracks the ratio; the WALThroughput figure
// enforces it).
func BenchmarkAppendDurable(b *testing.B) {
	const (
		count     = 500
		seriesLen = 64
		writers   = 8
		syncDelay = 500 * time.Microsecond
	)
	for _, mode := range []struct {
		name     string
		syncEach bool
	}{{"wal=group-commit", false}, {"wal=per-append-fsync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			inner := storage.NewMemFS()
			if err := GenerateDataset(inner, "wal.bin", RandomWalk, count, seriesLen, 30); err != nil {
				b.Fatal(err)
			}
			fs := storage.NewFaultFS(inner)
			fs.SetHook(func(op storage.Op, name string) {
				if op == storage.OpSync {
					time.Sleep(syncDelay)
				}
			})
			stream, err := GenerateQueries(RandomWalk, writers, seriesLen, 31)
			if err != nil {
				b.Fatal(err)
			}
			ix, err := BuildLSMIndex(Config{
				Storage:      fs,
				Name:         "wal",
				DataFile:     "wal.bin",
				SeriesLen:    seriesLen,
				Segments:     8,
				MemoryBudget: 64 << 20, // no flushes: isolate the sync discipline
			})
			if err != nil {
				b.Fatal(err)
			}
			if mode.syncEach {
				// The per-append baseline is internal-only (it exists to be
				// measured against); reopen the built index through it.
				if err := ix.Close(); err != nil {
					b.Fatal(err)
				}
				s, err := summary.NewSummarizer(summary.Params{SeriesLen: seriesLen, Segments: 8, CardBits: 8})
				if err != nil {
					b.Fatal(err)
				}
				lx, err := lsm.Open(lsm.Options{FS: fs, Name: "wal", S: s, RawName: "wal.bin",
					MemBudgetBytes: 64 << 20, WALSyncEveryAppend: true})
				if err != nil {
					b.Fatal(err)
				}
				defer lx.Close()
				benchDurableAppends(b, writers, func(w int) error { return lx.Append(stream[w : w+1]) })
				return
			}
			defer ix.Close()
			benchDurableAppends(b, writers, func(w int) error { return ix.Insert(stream[w : w+1]) })
		})
	}
}

// benchDurableAppends drives b.N durable appends across `writers`
// concurrent goroutines and reports appends/sec.
func benchDurableAppends(b *testing.B, writers int, appendOne func(w int) error) {
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	var next int64
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for atomic.AddInt64(&next, 1) <= int64(b.N) {
				if err := appendOne(w); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "appends/sec")
}

// BenchmarkIngestLatency measures per-Append latency on a Coconut-LSM index
// under sustained ingest, synchronous vs background compaction. The
// reported p50/p99/max metrics (ns) are what the asynchronous write path is
// about: in synchronous mode an Append that lands on a tier boundary pays
// for the whole merge cascade inline; with the background pool the merge
// cost moves off the caller and the tail flattens.
func BenchmarkIngestLatency(b *testing.B) {
	const (
		count     = 2000
		seriesLen = 64
		batchSize = 100
		nBatches  = 80
	)
	stream, err := GenerateQueries(RandomWalk, batchSize*nBatches, seriesLen, 31)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name       string
		background bool
	}{{"compaction=sync", false}, {"compaction=background", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var p50, p99, max time.Duration
			for i := 0; i < b.N; i++ {
				fs := storage.NewMemFS()
				if err := GenerateDataset(fs, "ingest.bin", RandomWalk, count, seriesLen, 30); err != nil {
					b.Fatal(err)
				}
				ix, err := BuildLSMIndex(Config{
					Storage:              fs,
					Name:                 "ingest",
					DataFile:             "ingest.bin",
					SeriesLen:            seriesLen,
					Segments:             8,
					MemoryBudget:         8 << 10, // ~340-record memtable: frequent flushes
					BackgroundCompaction: mode.background,
					CompactionWorkers:    2,
				})
				if err != nil {
					b.Fatal(err)
				}
				lats := make([]time.Duration, 0, nBatches)
				for lo := 0; lo < len(stream); lo += batchSize {
					t0 := time.Now()
					if err := ix.Insert(stream[lo : lo+batchSize]); err != nil {
						b.Fatal(err)
					}
					lats = append(lats, time.Since(t0))
				}
				if err := ix.Sync(); err != nil {
					b.Fatal(err)
				}
				if err := ix.Close(); err != nil {
					b.Fatal(err)
				}
				sort.Slice(lats, func(a, c int) bool { return lats[a] < lats[c] })
				p50 += experiments.Percentile(lats, 0.50)
				p99 += experiments.Percentile(lats, 0.99)
				max += experiments.Percentile(lats, 1.0)
			}
			b.ReportMetric(float64(p50.Nanoseconds())/float64(b.N), "p50-append-ns")
			b.ReportMetric(float64(p99.Nanoseconds())/float64(b.N), "p99-append-ns")
			b.ReportMetric(float64(max.Nanoseconds())/float64(b.N), "max-append-ns")
		})
	}
}

func BenchmarkBPTreeBulkLoad(b *testing.B) {
	const n = 50000
	recs := make([][]byte, n)
	for i := range recs {
		rec := make([]byte, 24)
		for j := 0; j < 16; j++ {
			rec[j] = byte(i >> (j % 3 * 8))
		}
		recs[i] = rec
	}
	// Records must be sorted for bulk loading.
	extRecs := make([]byte, 0, n*24)
	for _, r := range recs {
		extRecs = append(extRecs, r...)
	}
	extsort.SortInMemory(extRecs, 24, extsort.CompareKeyPrefix(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := storage.NewMemFS()
		src := &recordsSource{data: extRecs, size: 24}
		t, err := bptree.BulkLoad(bptree.Config{
			FS: fs, Name: "b", RecordSize: 24, KeyLen: 16, LeafCap: 256,
		}, src)
		if err != nil {
			b.Fatal(err)
		}
		t.Close()
	}
}

type recordsSource struct {
	data []byte
	size int
	off  int
}

func (s *recordsSource) Next() ([]byte, error) {
	if s.off >= len(s.data) {
		return nil, io.EOF
	}
	rec := s.data[s.off : s.off+s.size]
	s.off += s.size
	return rec, nil
}

// --- ablation benchmarks (design choices beyond the paper's figures) ------

func BenchmarkAblationSortable(b *testing.B) { runFigure(b, experiments.AblationSortable) }

func BenchmarkAblationFillFactor(b *testing.B) { runFigure(b, experiments.AblationFillFactor) }

func BenchmarkAblationDevice(b *testing.B) { runFigure(b, experiments.AblationDevice) }

func BenchmarkAblationLSMUpdates(b *testing.B) { runFigure(b, experiments.AblationLSMUpdates) }

func BenchmarkAblationLeafSize(b *testing.B) { runFigure(b, experiments.AblationLeafSize) }
