// Seismic similarity search: index a collection of (synthetic) seismograms
// and look up the waveforms most similar to newly observed events — the
// IRIS-style workload from the paper's evaluation (§5, Figure 10c).
//
// The example also demonstrates the quality/latency trade-off of the
// approximate search radius (paper §4.3: "we experiment with the radius
// size, optimizing the trade-off between the quality of the answer and the
// execution time").
//
//	go run ./examples/seismic-search
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/coconut-db/coconut"
	"github.com/coconut-db/coconut/internal/dataset"
)

func main() {
	fs := coconut.NewMemStorage()
	const (
		count     = 30000
		seriesLen = 256
	)

	fmt.Printf("indexing %d seismogram windows...\n", count)
	if err := coconut.GenerateDataset(fs, "seismic.bin", coconut.Seismic, count, seriesLen, 7); err != nil {
		log.Fatal(err)
	}
	idx, err := coconut.BuildTreeIndex(coconut.Config{
		Storage:      fs,
		Name:         "seismic",
		DataFile:     "seismic.bin",
		SeriesLen:    seriesLen,
		Materialized: true, // leaves carry the waveforms: no second file needed
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// "New events": noisy copies of archived waveforms — the analyst wants
	// to find which archived event each one resembles.
	archive := dataset.Generate(dataset.NewSeismic(), count, seriesLen, 7)
	rng := rand.New(rand.NewSource(99))
	events := make([]coconut.Series, 5)
	truth := make([]int, 5)
	for i := range events {
		src := rng.Intn(count)
		truth[i] = src
		ev := archive[src].Clone()
		for j := range ev {
			ev[j] += 0.05 * rng.NormFloat64()
		}
		coconut.ZNormalize(ev)
		events[i] = ev
	}

	fmt.Println("\nradius sweep: approximate answer quality vs leaves examined")
	for _, radius := range []int{0, 1, 5} {
		var meanDist float64
		var hits int
		start := time.Now()
		for i, ev := range events {
			res, err := idx.SearchApprox(ev, radius)
			if err != nil {
				log.Fatal(err)
			}
			meanDist += res.Distance
			if res.Position == int64(truth[i]) {
				hits++
			}
		}
		fmt.Printf("  radius %d: mean dist %.4f, %d/%d true sources found, %v total\n",
			radius, meanDist/float64(len(events)), hits, len(events),
			time.Since(start).Round(time.Microsecond))
	}

	fmt.Println("\nexact search (guaranteed nearest neighbor):")
	for i, ev := range events {
		res, err := idx.Search(ev)
		if err != nil {
			log.Fatal(err)
		}
		marker := " "
		if res.Position == int64(truth[i]) {
			marker = "*"
		}
		fmt.Printf("  event %d -> archived #%d%s dist=%.4f (examined %d of %d waveforms)\n",
			i, res.Position, marker, res.Distance, res.VisitedSeries, count)
	}
}
