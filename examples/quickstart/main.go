// Quickstart: generate a data series collection, bulk-load a Coconut-Tree,
// and answer nearest-neighbor queries — all in memory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coconut-db/coconut"
)

func main() {
	// An instrumented in-memory device; swap in coconut.NewDiskStorage(dir)
	// for real files.
	fs := coconut.NewMemStorage()

	const (
		count     = 50000
		seriesLen = 256
	)
	fmt.Printf("generating %d random-walk series of length %d...\n", count, seriesLen)
	if err := coconut.GenerateDataset(fs, "data.bin", coconut.RandomWalk, count, seriesLen, 1); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	idx, err := coconut.BuildTreeIndex(coconut.Config{
		Storage:   fs,
		Name:      "quickstart",
		DataFile:  "data.bin",
		SeriesLen: seriesLen,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("bulk-loaded Coconut-Tree in %v: %d leaves, %.0f%% full, %.1f MB\n",
		time.Since(start).Round(time.Millisecond),
		idx.NumLeaves(), idx.LeafFill()*100, float64(idx.SizeBytes())/1e6)

	queries, err := coconut.GenerateQueries(coconut.RandomWalk, 5, seriesLen, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range queries {
		t0 := time.Now()
		approx, err := idx.SearchApprox(q, 1)
		if err != nil {
			log.Fatal(err)
		}
		tApprox := time.Since(t0)

		t0 = time.Now()
		exact, err := idx.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		tExact := time.Since(t0)

		fmt.Printf("query %d: approx dist=%.4f (%v) | exact dist=%.4f at #%d (%v, %d series examined)\n",
			i, approx.Distance, tApprox.Round(time.Microsecond),
			exact.Distance, exact.Position, tExact.Round(time.Microsecond), exact.VisitedSeries)
	}

	// The storage layer counts every I/O; this is what the paper's analysis
	// (and this repo's experiments) are built on.
	snap := fs.Stats().Snapshot()
	fmt.Printf("\ndevice totals: %s\n", snap)
}
