// Astronomy with a growing archive: bulk-load light curves, then keep
// appending nightly batches while answering similarity queries — the
// update workload of the paper's Figure 10a, on the skewed astronomy
// distribution of Figure 7.
//
//	go run ./examples/astronomy-updates
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coconut-db/coconut"
)

func main() {
	fs := coconut.NewMemStorage()
	const (
		initial   = 20000
		batchSize = 2000
		nights    = 5
		seriesLen = 256
	)

	fmt.Printf("initial bulk load: %d light curves\n", initial)
	if err := coconut.GenerateDataset(fs, "sky.bin", coconut.Astronomy, initial, seriesLen, 11); err != nil {
		log.Fatal(err)
	}
	idx, err := coconut.BuildTreeIndex(coconut.Config{
		Storage:   fs,
		Name:      "sky",
		DataFile:  "sky.bin",
		SeriesLen: seriesLen,
		// Leave update headroom in the leaves so early batches do not
		// immediately split pages (the trade-off §3.2 analyzes).
		FillFactor: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("  %d leaves, %.0f%% full\n", idx.NumLeaves(), idx.LeafFill()*100)

	for night := 1; night <= nights; night++ {
		batch, err := coconut.GenerateQueries(coconut.Astronomy, batchSize, seriesLen, int64(1000+night))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := idx.Insert(batch); err != nil {
			log.Fatal(err)
		}
		insertTime := time.Since(start)

		// Two follow-up queries per batch, as in the paper's mixed
		// workload: one for a fresh observation, one for an archived one.
		q1 := batch[0]
		start = time.Now()
		r1, err := idx.Search(q1)
		if err != nil {
			log.Fatal(err)
		}
		q2, _ := coconut.GenerateQueries(coconut.Astronomy, 1, seriesLen, int64(night))
		r2, err := idx.Search(q2[0])
		if err != nil {
			log.Fatal(err)
		}
		queryTime := time.Since(start)

		fmt.Printf("night %d: +%d curves in %v | query fresh: #%d dist=%.4f | query new: #%d dist=%.4f | queries %v\n",
			night, batchSize, insertTime.Round(time.Millisecond),
			r1.Position, r1.Distance, r2.Position, r2.Distance,
			queryTime.Round(time.Millisecond))
	}

	fmt.Printf("\nfinal archive: %d curves, %d leaves, %.0f%% full, %.1f MB index\n",
		idx.Count(), idx.NumLeaves(), idx.LeafFill()*100, float64(idx.SizeBytes())/1e6)
}
