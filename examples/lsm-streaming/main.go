// Streaming ingest with Coconut-LSM: the paper's future-work design (§6).
// A sensor fleet streams new series continuously; the memtable absorbs
// them, full memtables flush as immutable sorted runs (append-only
// sequential I/O — no leaf rewrites), and tiers compact by merge-sorting on
// a background pool (BackgroundCompaction), so Insert latency stays flat
// while merges overlap queries. Queries remain exact throughout and see
// data the moment it arrives; Sync is the quiescence barrier at shutdown.
//
//	go run ./examples/lsm-streaming
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coconut-db/coconut"
)

func main() {
	fs := coconut.NewMemStorage()
	const (
		initial   = 10000
		seriesLen = 256
		ticks     = 8
		perTick   = 1500
	)

	fmt.Printf("bootstrap: bulk-loading %d archived series\n", initial)
	if err := coconut.GenerateDataset(fs, "stream.bin", coconut.Seismic, initial, seriesLen, 3); err != nil {
		log.Fatal(err)
	}
	idx, err := coconut.BuildLSMIndex(coconut.Config{
		Storage:              fs,
		Name:                 "stream",
		DataFile:             "stream.bin",
		SeriesLen:            seriesLen,
		MemoryBudget:         2048 * 24, // small memtable so flushes are visible
		BackgroundCompaction: true,      // merges run off the ingest path
		CompactionWorkers:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	for tick := 1; tick <= ticks; tick++ {
		batch, err := coconut.GenerateQueries(coconut.Seismic, perTick, seriesLen, int64(100+tick))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := idx.Insert(batch); err != nil {
			log.Fatal(err)
		}
		ingest := time.Since(start)

		// Query for the freshest arrival: it must be visible immediately,
		// whether it sits in the memtable or a just-flushed run.
		start = time.Now()
		res, err := idx.Search(batch[len(batch)-1])
		if err != nil {
			log.Fatal(err)
		}
		queryT := time.Since(start)
		if res.Distance > 1e-9 {
			log.Fatalf("freshest series not visible: dist=%v", res.Distance)
		}
		fmt.Printf("tick %d: +%d series in %v | %2d runs on disk | freshest found at #%d in %v\n",
			tick, perTick, ingest.Round(time.Millisecond), idx.NumRuns(),
			res.Position, queryT.Round(time.Millisecond))
	}

	// Quiesce: drain in-flight background compactions so the on-disk state
	// is the deterministic fixpoint before reporting.
	if err := idx.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: %d series across %d runs (%.1f MB of runs)\n",
		idx.Count(), idx.NumRuns(), float64(idx.SizeBytes())/1e6)
	snap := fs.Stats().Snapshot()
	fmt.Printf("device totals: %s\n", snap)
	fmt.Printf("random writes: %d — LSM ingestion is append-only\n", snap.RandWrites)
}
