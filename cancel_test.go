package coconut

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/coconut-db/coconut/internal/storage"
)

// ctxVariant adapts the three public index types to one surface the
// cancellation conformance tests drive.
type ctxVariant struct {
	name   string
	search func(ctx context.Context, q Series) (Result, error)
	approx func(ctx context.Context, q Series) (Result, error)
	knn    func(ctx context.Context, q Series, k int) ([]Neighbor, error) // nil if unsupported
	insert func(ctx context.Context, batch []Series) error                // nil if unsupported
	count  func() int64
	close  func() error
}

const (
	cancelSeries = 400
	cancelLen    = 64
)

// buildCancelVariant generates a dataset on fs and builds the named
// variant over it with the given partition count.
func buildCancelVariant(t *testing.T, fs Storage, variant string, parts int) ctxVariant {
	t.Helper()
	if err := GenerateDataset(fs, "data.bin", RandomWalk, cancelSeries, cancelLen, 7); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Storage:    fs,
		Name:       "cx",
		DataFile:   "data.bin",
		SeriesLen:  cancelLen,
		LeafSize:   32,
		Partitions: parts,
		// One worker keeps the verification scan serial, so a query's
		// storage-read sequence is deterministic and the stall-injection
		// tests can aim at a specific read.
		QueryWorkers: 1,
	}
	switch variant {
	case "tree":
		ix, err := BuildTreeIndex(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ctxVariant{
			name:   variant,
			search: ix.SearchCtx,
			approx: func(ctx context.Context, q Series) (Result, error) { return ix.SearchApproxCtx(ctx, q, 1) },
			knn:    ix.SearchKNNCtx,
			insert: ix.InsertCtx,
			count:  ix.Count,
			close:  ix.Close,
		}
	case "trie":
		ix, err := BuildTrieIndex(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ctxVariant{
			name:   variant,
			search: ix.SearchCtx,
			approx: func(ctx context.Context, q Series) (Result, error) { return ix.SearchApproxCtx(ctx, q, 1) },
			count:  ix.Count,
			close:  ix.Close,
		}
	case "lsm":
		ix, err := BuildLSMIndex(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ctxVariant{
			name:   variant,
			search: ix.SearchCtx,
			approx: ix.SearchApproxCtx,
			insert: ix.InsertCtx,
			count:  ix.Count,
			close:  ix.Close,
		}
	}
	t.Fatalf("unknown variant %q", variant)
	return ctxVariant{}
}

func cancelQueries(t *testing.T) []Series {
	t.Helper()
	qs, err := GenerateQueries(RandomWalk, 3, cancelLen, 9)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// armStallAtLastRead measures how many storage reads answering q costs on
// v (deterministic with QueryWorkers 1), then arms a stall on the final
// read of the next identical query. Every variant ends its exact search
// inside a sharded verification scan over the raw data, so the parked
// read sits in a detachable worker goroutine — the shape of storage stall
// the cancellation machinery is built to survive. (The earlier reads of a
// query happen on the caller goroutine during the approximate seed phase,
// where a blocked ReadAt is uninterruptible by design.)
func armStallAtLastRead(t *testing.T, ffs *storage.FaultFS, v ctxVariant, q Series) (release func(), parked <-chan struct{}) {
	t.Helper()
	// Warm the block cache first: a cold LSM query decodes run blocks from
	// storage that later identical queries hit in cache, so only the
	// warm-query read count is stable across repetitions.
	if _, err := v.search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	ffs.SetCounted(storage.OpRead)
	before := ffs.OpCount()
	if _, err := v.search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	reads := ffs.OpCount() - before
	if reads == 0 {
		t.Fatal("query performed no storage reads; nothing to stall")
	}
	return ffs.StallAt(ffs.OpCount() + reads)
}

var cancelCases = []struct {
	variant string
	parts   int
}{
	{"tree", 1}, {"tree", 3},
	{"trie", 1}, {"trie", 3},
	{"lsm", 1}, {"lsm", 3},
}

// TestCtxVariantsMatchPlainAPI: the Ctx methods under context.Background()
// answer byte-identically to the context-free API for every variant and
// partition count — threading ctx through the stack changed no results.
func TestCtxVariantsMatchPlainAPI(t *testing.T) {
	for _, tc := range cancelCases {
		t.Run(fmt.Sprintf("%s-%dp", tc.variant, tc.parts), func(t *testing.T) {
			fs := NewMemStorage()
			v := buildCancelVariant(t, fs, tc.variant, tc.parts)
			defer v.close()
			ctx := context.Background()
			for qi, q := range cancelQueries(t) {
				got, err := v.search(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				var want Result
				switch tc.variant {
				case "tree":
					want, err = reSearchTree(fs, tc.parts, q)
				default:
					// The ctx-free methods are literal Background wrappers;
					// a second Ctx call suffices as the reference.
					want, err = v.search(ctx, q)
				}
				if err != nil {
					t.Fatal(err)
				}
				if got.Position != want.Position || got.Distance != want.Distance {
					t.Fatalf("query %d: ctx answer (%d, %v) != plain answer (%d, %v)",
						qi, got.Position, got.Distance, want.Position, want.Distance)
				}
				ga, err := v.approx(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				ga2, err := v.approx(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if ga.Position != ga2.Position || ga.Distance != ga2.Distance {
					t.Fatalf("query %d: approx answers differ across calls", qi)
				}
				if v.knn != nil {
					ns, err := v.knn(ctx, q, 5)
					if err != nil {
						t.Fatal(err)
					}
					if len(ns) != 5 {
						t.Fatalf("query %d: knn returned %d neighbors, want 5", qi, len(ns))
					}
					if ns[0].Position != got.Position || ns[0].Distance != got.Distance {
						t.Fatalf("query %d: knn[0] (%d, %v) != exact (%d, %v)",
							qi, ns[0].Position, ns[0].Distance, got.Position, got.Distance)
					}
				}
			}
		})
	}
}

// reSearchTree reopens the tree through the plain (context-free) API and
// answers q, giving an independent reference for the Ctx path.
func reSearchTree(fs Storage, parts int, q Series) (Result, error) {
	ix, err := OpenTreeIndex(Config{Storage: fs, Name: "cx"})
	if err != nil {
		return Result{}, err
	}
	defer ix.Close()
	return ix.Search(q)
}

// TestCancelledQueryReturnsCtxErr: a query stalled inside a storage read
// and then cancelled returns context.Canceled promptly — never a partial
// answer — for every variant and partition count. A pre-cancelled context
// is rejected before any work happens.
func TestCancelledQueryReturnsCtxErr(t *testing.T) {
	for _, tc := range cancelCases {
		t.Run(fmt.Sprintf("%s-%dp", tc.variant, tc.parts), func(t *testing.T) {
			ffs := storage.NewFaultFS(storage.NewMemFS())
			v := buildCancelVariant(t, ffs, tc.variant, tc.parts)
			defer v.close()
			q := cancelQueries(t)[0]

			// Pre-cancelled: immediate ctx.Err(), no I/O.
			pctx, pcancel := context.WithCancel(context.Background())
			pcancel()
			if _, err := v.search(pctx, q); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-cancelled search: got %v, want context.Canceled", err)
			}

			// Mid-flight: stall a verification-phase read, cancel while it
			// is parked, and require a prompt context.Canceled.
			release, parked := armStallAtLastRead(t, ffs, v, q)
			defer release()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			errc := make(chan error, 1)
			go func() {
				_, err := v.search(ctx, q)
				errc <- err
			}()
			select {
			case <-parked:
			case err := <-errc:
				t.Fatalf("query finished (%v) before reading storage", err)
			case <-time.After(10 * time.Second):
				t.Fatal("query never reached a storage read")
			}
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled query returned %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("cancelled query did not return promptly; it waited for the stalled read")
			}
		})
	}
}

// TestQueryDeadlineExceededWithinTwiceDeadline: a query whose storage read
// stalls forever returns context.DeadlineExceeded within twice its
// deadline — the stalled shard is detached, not waited for.
func TestQueryDeadlineExceededWithinTwiceDeadline(t *testing.T) {
	for _, tc := range cancelCases {
		t.Run(fmt.Sprintf("%s-%dp", tc.variant, tc.parts), func(t *testing.T) {
			ffs := storage.NewFaultFS(storage.NewMemFS())
			v := buildCancelVariant(t, ffs, tc.variant, tc.parts)
			defer v.close()
			q := cancelQueries(t)[0]

			const deadline = 250 * time.Millisecond
			release, parked := armStallAtLastRead(t, ffs, v, q)
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			// The documented pairing: the stalled op unblocks when the ctx
			// fires, so the detached goroutine drains on its own.
			defer context.AfterFunc(ctx, release)()

			start := time.Now()
			_, err := v.search(ctx, q)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("stalled query returned %v, want context.DeadlineExceeded", err)
			}
			if elapsed > 2*deadline {
				t.Fatalf("stalled query took %v to fail, want <= %v (2x deadline)", elapsed, 2*deadline)
			}
			<-parked // the stall did trigger: the timing assertion was live
		})
	}
}

// TestAppendCtxAdmissionAndDurabilityWait: the write path treats ctx as
// admission control — a done ctx rejects the batch up front with no side
// effects — and the LSM durability wait is interruptible: an insert that
// times out waiting for a stretched group commit returns
// context.DeadlineExceeded, yet the acknowledged-to-WAL records survive
// reopen (the committer still fsyncs the batch).
func TestAppendCtxAdmissionAndDurabilityWait(t *testing.T) {
	for _, parts := range []int{1, 3} {
		t.Run(fmt.Sprintf("%dp", parts), func(t *testing.T) {
			fs := NewMemStorage()
			if err := GenerateDataset(fs, "data.bin", RandomWalk, cancelSeries, cancelLen, 7); err != nil {
				t.Fatal(err)
			}
			ix, err := BuildLSMIndex(Config{
				Storage:    fs,
				Name:       "cx",
				DataFile:   "data.bin",
				SeriesLen:  cancelLen,
				Partitions: parts,
				// Stretch each group commit so the durability wait is the
				// slow part an expiring ctx abandons.
				WALGroupWindow: 300 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			batch, err := GenerateQueries(RandomWalk, 8, cancelLen, 11)
			if err != nil {
				t.Fatal(err)
			}

			// Admission control: a pre-cancelled ctx adds nothing.
			pctx, pcancel := context.WithCancel(context.Background())
			pcancel()
			if err := ix.InsertCtx(pctx, batch); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-cancelled insert: got %v, want context.Canceled", err)
			}
			if got := ix.Count(); got != cancelSeries {
				t.Fatalf("count after rejected insert = %d, want %d", got, cancelSeries)
			}

			// Interruptible durability wait: the ctx expires inside the
			// stretched group commit.
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			start := time.Now()
			err = ix.InsertCtx(ctx, batch)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("insert during stretched group commit: got %v, want context.DeadlineExceeded", err)
			}
			if e := time.Since(start); e > 250*time.Millisecond {
				t.Fatalf("cancelled insert took %v, want to abandon the wait well before the %v window", e, 300*time.Millisecond)
			}

			// The abandoned batch still becomes durable: close and reopen.
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := OpenLSMIndex(Config{Storage: fs, Name: "cx"})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := re.Count(); got != cancelSeries+int64(len(batch)) {
				t.Fatalf("reopened count = %d, want %d (the abandoned wait's batch must survive)",
					got, cancelSeries+int64(len(batch)))
			}
		})
	}
}

// TestCancelCyclesLeakNoGoroutines: a thousand cancel/timeout cycles
// across the variants leave the goroutine count at its baseline.
func TestCancelCyclesLeakNoGoroutines(t *testing.T) {
	fs := NewMemStorage()
	tree := buildCancelVariant(t, fs, "tree", 3)
	defer tree.close()
	q := cancelQueries(t)[0]
	baseline := runtime.NumGoroutine()
	for i := 0; i < 1000; i++ {
		switch i % 3 {
		case 0:
			ctx, cancel := context.WithCancel(context.Background())
			go cancel()
			tree.search(ctx, q)
			cancel()
		case 1:
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
			tree.search(ctx, q)
			cancel()
		case 2:
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			tree.knn(ctx, q, 3)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel cycles: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDoubleCloseAllVariants: Close is idempotent for every variant and
// partition count, including while a cancelled query is still unwinding
// from a stalled read.
func TestDoubleCloseAllVariants(t *testing.T) {
	for _, tc := range cancelCases {
		t.Run(fmt.Sprintf("%s-%dp", tc.variant, tc.parts), func(t *testing.T) {
			ffs := storage.NewFaultFS(storage.NewMemFS())
			v := buildCancelVariant(t, ffs, tc.variant, tc.parts)
			q := cancelQueries(t)[0]

			release, parked := armStallAtLastRead(t, ffs, v, q)
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				_, err := v.search(ctx, q)
				errc <- err
			}()
			select {
			case <-parked:
			case err := <-errc:
				t.Fatalf("query finished (%v) before reading storage", err)
			case <-time.After(10 * time.Second):
				t.Fatal("query never reached a storage read")
			}
			cancel()
			if err := <-errc; !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled query returned %v, want context.Canceled", err)
			}
			// The detached shard is still parked inside ReadAt: Close must
			// neither block on it nor crash, and a second Close is a no-op.
			if err := v.close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			if err := v.close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			release()
		})
	}
}
