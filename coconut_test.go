package coconut

import (
	"math"
	"testing"
)

func TestPublicAPITreeRoundTrip(t *testing.T) {
	fs := NewMemStorage()
	if err := GenerateDataset(fs, "data.bin", RandomWalk, 500, 128, 1); err != nil {
		t.Fatal(err)
	}
	idx, err := BuildTreeIndex(Config{
		Storage:   fs,
		Name:      "ix",
		DataFile:  "data.bin",
		SeriesLen: 128,
		LeafSize:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.Count() != 500 {
		t.Fatalf("Count = %d", idx.Count())
	}
	qs, err := GenerateQueries(RandomWalk, 5, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		exact, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := idx.SearchApprox(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Distance > approx.Distance+1e-12 {
			t.Fatalf("exact %v worse than approximate %v", exact.Distance, approx.Distance)
		}
		if exact.Position < 0 || exact.Position >= 500 {
			t.Fatalf("position %d out of range", exact.Position)
		}
	}
	if idx.LeafFill() < 0.9 {
		t.Fatalf("tree fill %v", idx.LeafFill())
	}
}

func TestPublicAPITrie(t *testing.T) {
	fs := NewMemStorage()
	if err := GenerateDataset(fs, "data.bin", Seismic, 300, 64, 3); err != nil {
		t.Fatal(err)
	}
	idx, err := BuildTrieIndex(Config{
		Storage:   fs,
		Name:      "trie",
		DataFile:  "data.bin",
		SeriesLen: 64,
		Segments:  8,
		LeafSize:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	qs, _ := GenerateQueries(Seismic, 3, 64, 4)
	for _, q := range qs {
		res, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(res.Distance, 1) {
			t.Fatal("no answer")
		}
	}
}

func TestPublicAPIInsert(t *testing.T) {
	fs := NewMemStorage()
	GenerateDataset(fs, "data.bin", RandomWalk, 200, 64, 5)
	idx, err := BuildTreeIndex(Config{
		Storage: fs, Name: "u", DataFile: "data.bin",
		SeriesLen: 64, Segments: 8, LeafSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	batch, _ := GenerateQueries(Astronomy, 20, 64, 6)
	if err := idx.Insert(batch); err != nil {
		t.Fatal(err)
	}
	res, err := idx.Search(batch[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance > 1e-9 {
		t.Fatalf("inserted series not found: %v", res.Distance)
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := BuildTreeIndex(Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
	fs := NewMemStorage()
	if _, err := BuildTreeIndex(Config{Storage: fs, Name: "x", DataFile: "nope", SeriesLen: 64}); err == nil {
		t.Fatal("expected error for missing dataset")
	}
	if err := GenerateDataset(fs, "d", DatasetKind("bogus"), 1, 8, 1); err == nil {
		t.Fatal("expected error for unknown dataset kind")
	}
}

func TestDistanceAndZNormalize(t *testing.T) {
	a := Series{3, 4, 5, 6}
	ZNormalize(a)
	if math.Abs(a.Mean()) > 1e-9 {
		t.Fatal("not normalized")
	}
	d, err := Distance(Series{0, 0}, Series{3, 4})
	if err != nil || d != 5 {
		t.Fatalf("Distance = %v, %v", d, err)
	}
}

func TestPublicAPISearchKNN(t *testing.T) {
	fs := NewMemStorage()
	GenerateDataset(fs, "data.bin", RandomWalk, 400, 64, 8)
	idx, err := BuildTreeIndex(Config{
		Storage: fs, Name: "k", DataFile: "data.bin",
		SeriesLen: 64, Segments: 8, LeafSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	qs, _ := GenerateQueries(RandomWalk, 3, 64, 9)
	for _, q := range qs {
		ns, err := idx.SearchKNN(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != 7 {
			t.Fatalf("got %d neighbors", len(ns))
		}
		for i := 1; i < len(ns); i++ {
			if ns[i-1].Distance > ns[i].Distance {
				t.Fatal("neighbors not sorted")
			}
		}
		// First neighbor must agree with 1-NN search.
		one, err := idx.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(one.Distance-ns[0].Distance) > 1e-9 {
			t.Fatalf("kNN head %v != 1-NN %v", ns[0].Distance, one.Distance)
		}
	}
}

func TestPublicAPILSM(t *testing.T) {
	fs := NewMemStorage()
	GenerateDataset(fs, "data.bin", RandomWalk, 300, 64, 10)
	idx, err := BuildLSMIndex(Config{
		Storage: fs, Name: "l", DataFile: "data.bin",
		SeriesLen: 64, Segments: 8,
		MemoryBudget: 64 * 24, // tiny memtable: force flushes + compaction
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.Count() != 300 {
		t.Fatalf("Count = %d", idx.Count())
	}
	batch, _ := GenerateQueries(Seismic, 200, 64, 11)
	if err := idx.Insert(batch); err != nil {
		t.Fatal(err)
	}
	if err := idx.Flush(); err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 500 {
		t.Fatalf("Count after insert = %d", idx.Count())
	}
	if idx.NumRuns() < 2 {
		t.Fatalf("expected multiple runs, got %d", idx.NumRuns())
	}
	res, err := idx.Search(batch[42])
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance > 1e-9 {
		t.Fatalf("inserted series not found: %v", res.Distance)
	}
	approx, err := idx.SearchApprox(batch[42])
	if err != nil {
		t.Fatal(err)
	}
	if approx.Distance > 1e-9 {
		t.Fatalf("approximate search should find the exact member: %v", approx.Distance)
	}
	if idx.SizeBytes() == 0 {
		t.Fatal("runs should occupy space")
	}
}
