package coconut

import (
	"errors"
	"strings"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
)

// partSweep is the partition counts checked against the P=1 baseline.
var partSweep = []int{2, 4, 8}

const partKNN = 5

// partConfig is the conformance fixture with a partition count.
func partConfig(fs Storage, parts, qw int, mat bool) Config {
	c := confConfig(fs, qw, mat)
	c.Partitions = parts
	return c
}

// partFS builds a fresh storage holding the deterministic conformance
// dataset: every call yields byte-identical files, so baseline and
// partitioned indexes see the same records.
func partFS(t *testing.T) Storage {
	t.Helper()
	fs := NewMemStorage()
	if err := GenerateDataset(fs, "conf.bin", RandomWalk, confCount, confLen, confSeed); err != nil {
		t.Fatal(err)
	}
	return fs
}

// partAnswers is one index's answer set over the query workload.
type partAnswers struct {
	exact  []Result
	approx []Result
	knn    [][]Neighbor
}

// partQueries is the shared query workload.
func partQueries(t *testing.T) []Series {
	t.Helper()
	qs, err := GenerateQueries(Seismic, 10, confLen, confSeed+7)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// collectTree gathers exact, approximate, and k-NN answers from a tree.
func collectTree(t *testing.T, ix *TreeIndex, queries []Series) partAnswers {
	t.Helper()
	var a partAnswers
	for _, q := range queries {
		e, err := ix.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := ix.SearchApprox(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		ns, err := ix.SearchKNN(q, partKNN)
		if err != nil {
			t.Fatal(err)
		}
		a.exact = append(a.exact, e)
		a.approx = append(a.approx, ap)
		a.knn = append(a.knn, ns)
	}
	return a
}

// samePos reports byte-identity of the (position, distance) answer; the
// Visited* counters legitimately vary with partition count.
func samePos(a, b Result) bool {
	return a.Position == b.Position && a.Distance == b.Distance
}

// checkAnswers fails the test wherever got diverges from the baseline.
func checkAnswers(t *testing.T, label string, base, got partAnswers) {
	t.Helper()
	for qi := range base.exact {
		if !samePos(base.exact[qi], got.exact[qi]) {
			t.Errorf("%s: exact query %d: got (#%d, %v), baseline (#%d, %v)", label, qi,
				got.exact[qi].Position, got.exact[qi].Distance,
				base.exact[qi].Position, base.exact[qi].Distance)
		}
		if !samePos(base.approx[qi], got.approx[qi]) {
			t.Errorf("%s: approx query %d: got (#%d, %v), baseline (#%d, %v)", label, qi,
				got.approx[qi].Position, got.approx[qi].Distance,
				base.approx[qi].Position, base.approx[qi].Distance)
		}
		if base.knn == nil {
			continue
		}
		if len(base.knn[qi]) != len(got.knn[qi]) {
			t.Errorf("%s: knn query %d: got %d neighbors, baseline %d", label, qi,
				len(got.knn[qi]), len(base.knn[qi]))
			continue
		}
		for j := range base.knn[qi] {
			if base.knn[qi][j] != got.knn[qi][j] {
				t.Errorf("%s: knn query %d rank %d: got %+v, baseline %+v", label, qi, j,
					got.knn[qi][j], base.knn[qi][j])
			}
		}
	}
}

// TestPartitionConformanceTree checks that a partitioned Coconut-Tree
// answers exact, approximate, and k-NN queries byte-identically to the
// single-partition index — after the parallel build, after routed inserts,
// and after a Close/Open round trip through the parent manifest, at
// several QueryWorkers settings.
func TestPartitionConformanceTree(t *testing.T) {
	for _, mat := range []bool{false, true} {
		name := "plain"
		if mat {
			name = "materialized"
		}
		t.Run(name, func(t *testing.T) {
			queries := partQueries(t)
			extra := dataset.Generate(dataset.NewSeismic(), 200, confLen, confSeed+3)

			buildAnswers := func(parts int) (Storage, partAnswers) {
				fs := partFS(t)
				ix, err := BuildTreeIndex(partConfig(fs, parts, 2, mat))
				if err != nil {
					t.Fatalf("parts=%d: build: %v", parts, err)
				}
				if err := ix.Insert(extra); err != nil {
					t.Fatalf("parts=%d: insert: %v", parts, err)
				}
				a := collectTree(t, ix, queries)
				if err := ix.Close(); err != nil {
					t.Fatalf("parts=%d: close: %v", parts, err)
				}
				return fs, a
			}

			_, base := buildAnswers(1)
			for _, parts := range partSweep {
				fs, got := buildAnswers(parts)
				checkAnswers(t, name+"/built", base, got)
				// Reopen from the parent manifest (Partitions 0 adopts the
				// stored count) under several query-worker settings.
				for _, qw := range []int{1, 3, 8} {
					ix, err := OpenTreeIndex(partConfig(fs, 0, qw, mat))
					if err != nil {
						t.Fatalf("parts=%d qw=%d: open: %v", parts, qw, err)
					}
					got := collectTree(t, ix, queries)
					checkAnswers(t, name+"/reopened", base, got)
					if err := ix.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestPartitionConformanceTrie mirrors the tree check for the immutable
// Coconut-Trie variant.
func TestPartitionConformanceTrie(t *testing.T) {
	for _, mat := range []bool{false, true} {
		name := "plain"
		if mat {
			name = "materialized"
		}
		t.Run(name, func(t *testing.T) {
			queries := partQueries(t)
			collect := func(ix *TrieIndex) partAnswers {
				var a partAnswers
				for _, q := range queries {
					e, err := ix.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					ap, err := ix.SearchApprox(q, 1)
					if err != nil {
						t.Fatal(err)
					}
					a.exact = append(a.exact, e)
					a.approx = append(a.approx, ap)
				}
				return a
			}
			buildAnswers := func(parts int) (Storage, partAnswers) {
				fs := partFS(t)
				ix, err := BuildTrieIndex(partConfig(fs, parts, 2, mat))
				if err != nil {
					t.Fatalf("parts=%d: build: %v", parts, err)
				}
				a := collect(ix)
				if err := ix.Close(); err != nil {
					t.Fatal(err)
				}
				return fs, a
			}
			_, base := buildAnswers(1)
			for _, parts := range partSweep {
				fs, got := buildAnswers(parts)
				checkAnswers(t, name+"/built", base, got)
				ix, err := OpenTrieIndex(partConfig(fs, 0, 5, mat))
				if err != nil {
					t.Fatalf("parts=%d: open: %v", parts, err)
				}
				got = collect(ix)
				checkAnswers(t, name+"/reopened", base, got)
				if err := ix.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestPartitionConformanceLSM checks the partitioned Coconut-LSM: routed
// appends, per-partition flushes, and reopen must all preserve
// byte-identity with the single-partition index.
func TestPartitionConformanceLSM(t *testing.T) {
	queries := partQueries(t)
	collect := func(ix *LSMIndex) partAnswers {
		var a partAnswers
		for _, q := range queries {
			e, err := ix.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			ap, err := ix.SearchApprox(q)
			if err != nil {
				t.Fatal(err)
			}
			a.exact = append(a.exact, e)
			a.approx = append(a.approx, ap)
		}
		return a
	}
	buildAnswers := func(parts int) (Storage, partAnswers) {
		fs := partFS(t)
		ix, err := BuildLSMIndex(partConfig(fs, parts, 2, false))
		if err != nil {
			t.Fatalf("parts=%d: build: %v", parts, err)
		}
		// Stream appends so runs accumulate, with a tail left in memtables.
		confAppend(t, ix, 3)
		a := collect(ix)
		if err := ix.Close(); err != nil {
			t.Fatalf("parts=%d: close: %v", parts, err)
		}
		return fs, a
	}
	_, base := buildAnswers(1)
	for _, parts := range partSweep {
		fs, got := buildAnswers(parts)
		checkAnswers(t, "lsm/built", base, got)
		ix, err := OpenLSMIndex(partConfig(fs, 0, 4, false))
		if err != nil {
			t.Fatalf("parts=%d: open: %v", parts, err)
		}
		got = collect(ix)
		checkAnswers(t, "lsm/reopened", base, got)
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPartitionConformanceOSFS runs the tree conformance on a real
// filesystem so the scatter files, child manifests, and parent manifest
// exercise the OS-backed storage path.
func TestPartitionConformanceOSFS(t *testing.T) {
	queries := partQueries(t)
	buildAnswers := func(parts int) partAnswers {
		fs, err := NewDiskStorage(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := GenerateDataset(fs, "conf.bin", RandomWalk, confCount, confLen, confSeed); err != nil {
			t.Fatal(err)
		}
		ix, err := BuildTreeIndex(partConfig(fs, parts, 2, false))
		if err != nil {
			t.Fatalf("parts=%d: build: %v", parts, err)
		}
		a := collectTree(t, ix, queries)
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
		return a
	}
	base := buildAnswers(1)
	got := buildAnswers(4)
	checkAnswers(t, "osfs", base, got)
}

// TestPartitionOpenMismatch checks the typed-error contract: a Partitions
// setting that conflicts with the store fails with ErrConfigMismatch, a
// tampered parent manifest fails with ErrCorruptManifest, and a variant
// mix-up is rejected — never a partial open.
func TestPartitionOpenMismatch(t *testing.T) {
	fs := partFS(t)
	ix, err := BuildTreeIndex(partConfig(fs, 4, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenTreeIndex(partConfig(fs, 2, 2, false)); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("open with wrong partition count: got %v, want ErrConfigMismatch", err)
	}
	if _, err := OpenTrieIndex(partConfig(fs, 0, 2, false)); err == nil {
		t.Error("opening a partitioned tree store as a trie succeeded")
	}

	// A single-partition store must reject a partitioned open.
	fs2 := partFS(t)
	one, err := BuildTreeIndex(partConfig(fs2, 1, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := one.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTreeIndex(partConfig(fs2, 4, 2, false)); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("partitioned open of single store: got %v, want ErrConfigMismatch", err)
	}

	// Flip one byte inside the parent manifest: the checksum must catch it.
	mf, err := fs.Open(manifest.FileName("conf"))
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := mf.ReadAt(b[:], 20); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := mf.WriteAt(b[:], 20); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTreeIndex(partConfig(fs, 0, 2, false)); !errors.Is(err, ErrCorruptManifest) {
		t.Errorf("open with tampered parent manifest: got %v, want ErrCorruptManifest", err)
	}
}

// TestPartitionBuildErrors checks that impossible partitionings fail
// loudly at build time.
func TestPartitionBuildErrors(t *testing.T) {
	// More partitions than series.
	fs := NewMemStorage()
	if err := GenerateDataset(fs, "conf.bin", RandomWalk, 3, confLen, confSeed); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTreeIndex(partConfig(fs, 8, 2, false)); err == nil {
		t.Error("build with more partitions than series succeeded")
	}

	// All-identical series: one distinct key cannot split 4 ways.
	fs2 := NewMemStorage()
	flat := make(Series, confLen)
	enc := series.AppendEncode(nil, flat)
	f, err := fs2.Create("conf.bin")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := f.WriteAt(enc, int64(i*len(enc))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = BuildTreeIndex(partConfig(fs2, 4, 2, false))
	if err == nil {
		t.Fatal("build over an all-identical dataset succeeded")
	}
	if !strings.Contains(err.Error(), "distinct") {
		t.Errorf("got %q, want a too-few-distinct-keys error", err)
	}

	// A negative Partitions is rejected before any I/O.
	if _, err := BuildTreeIndex(partConfig(partFS(t), -1, 2, false)); err == nil {
		t.Error("build with negative Partitions succeeded")
	}
}
