module github.com/coconut-db/coconut

go 1.22
