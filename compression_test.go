package coconut

// The beyond-RAM conformance net for block-compressed runs: a compressed
// LSM index whose block cache is far too small to hold even one decoded
// block must answer exact and approximate queries byte-identically to the
// uncompressed in-memory layout — on both storage backends, for single and
// partitioned indexes, after appends, and after reopening from the
// manifest — while its resident decoded bytes stay within the configured
// budget (no whole-run key array ever materializes on the query path).

import (
	"fmt"
	"testing"
)

const (
	bramLen  = 64
	bramN    = 400
	bramQ    = 8
	bramSeed = 91
	// bramCache is smaller than a single decoded block (DefaultBlockRecords
	// records at 24 bytes each), so every probe decodes from disk and
	// nothing is retained: the pure beyond-RAM regime.
	bramCache = 4096
)

func bramConfig(fs Storage, name string, parts int) Config {
	return Config{
		Storage:      fs,
		Name:         name,
		DataFile:     "data.bin",
		SeriesLen:    bramLen,
		Segments:     8,
		LeafSize:     32,
		Partitions:   parts,
		Workers:      2,
		QueryWorkers: 2,
	}
}

// bramCompare requires byte-identical exact and approximate answers from
// the two handles for every query.
func bramCompare(t *testing.T, stage string, flat, comp *LSMIndex, qs []Series) {
	t.Helper()
	for i, q := range qs {
		fe, err := flat.Search(q)
		if err != nil {
			t.Fatalf("%s: flat exact query %d: %v", stage, i, err)
		}
		ce, err := comp.Search(q)
		if err != nil {
			t.Fatalf("%s: compressed exact query %d: %v", stage, i, err)
		}
		if fe.Position != ce.Position || fe.Distance != ce.Distance {
			t.Fatalf("%s: exact query %d differs: compressed (pos %d, dist %v), flat (pos %d, dist %v)",
				stage, i, ce.Position, ce.Distance, fe.Position, fe.Distance)
		}
		fa, err := flat.SearchApprox(q)
		if err != nil {
			t.Fatalf("%s: flat approx query %d: %v", stage, i, err)
		}
		ca, err := comp.SearchApprox(q)
		if err != nil {
			t.Fatalf("%s: compressed approx query %d: %v", stage, i, err)
		}
		if fa.Position != ca.Position || fa.Distance != ca.Distance {
			t.Fatalf("%s: approx query %d differs: compressed (pos %d, dist %v), flat (pos %d, dist %v)",
				stage, i, ca.Position, ca.Distance, fa.Position, fa.Distance)
		}
	}
}

func TestCompressedBeyondRAMConformance(t *testing.T) {
	for beName, mkFS := range sweepBackends(t) {
		for _, parts := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/parts=%d", beName, parts), func(t *testing.T) {
				qs, err := GenerateQueries(RandomWalk, bramQ, bramLen, bramSeed+1)
				if err != nil {
					t.Fatal(err)
				}
				// Each layout gets its own device with an identically
				// seeded dataset: appends grow the raw file, so two
				// indexes cannot share one.
				newFS := func() Storage {
					fs := mkFS(t)
					if err := GenerateDataset(fs, "data.bin", RandomWalk, bramN, bramLen, bramSeed); err != nil {
						t.Fatal(err)
					}
					return fs
				}

				fcfg := bramConfig(newFS(), "flat", parts)
				fcfg.DisableCompression = true
				flat, err := BuildLSMIndex(fcfg)
				if err != nil {
					t.Fatal(err)
				}
				defer flat.Close()

				cfs := newFS()
				ccfg := bramConfig(cfs, "comp", parts)
				ccfg.CacheBytes = bramCache
				comp, err := BuildLSMIndex(ccfg)
				if err != nil {
					t.Fatal(err)
				}
				bramCompare(t, "built", flat, comp, qs)

				// Growth through the append path: flushed memtables and any
				// triggered compactions must stay byte-identical too.
				extra, err := GenerateQueries(Seismic, 60, bramLen, bramSeed+2)
				if err != nil {
					t.Fatal(err)
				}
				for _, ix := range []*LSMIndex{flat, comp} {
					if err := ix.Insert(extra); err != nil {
						t.Fatal(err)
					}
					if err := ix.Flush(); err != nil {
						t.Fatal(err)
					}
				}
				bramCompare(t, "appended", flat, comp, qs)

				// Beyond-RAM means the cache did real work within its
				// budget: probes decoded blocks (misses) and resident bytes
				// never exceeded the configured ceiling.
				stats := comp.CacheStats()
				if stats.Misses == 0 {
					t.Fatal("compressed queries never touched the block cache")
				}
				if stats.Bytes > bramCache {
					t.Fatalf("cache holds %d resident bytes, budget is %d", stats.Bytes, bramCache)
				}
				if err := comp.Close(); err != nil {
					t.Fatal(err)
				}

				// A reopen adopts the stored compressed layout from the
				// manifest; the tiny cache budget still bounds it.
				re, err := OpenLSMIndex(Config{Storage: cfs, Name: "comp", CacheBytes: bramCache})
				if err != nil {
					t.Fatal(err)
				}
				defer re.Close()
				bramCompare(t, "reopened", flat, re, qs)
				if stats := re.CacheStats(); stats.Bytes > bramCache {
					t.Fatalf("reopened cache holds %d resident bytes, budget is %d", stats.Bytes, bramCache)
				}
			})
		}
	}
}
