// Package server implements the coconutd HTTP/JSON front end: a Manager
// of named indexes (each tagged with a UUID so stale clients are told the
// index they knew was swapped out), per-request deadlines, bounded
// admission (load shedding with 429 + Retry-After), health and stats
// endpoints, and graceful drain that cancels stuck requests at the drain
// deadline before Sync+Close-ing every index.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	coconut "github.com/coconut-db/coconut"
	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/manifest"
)

// Handle is one served index: the capability set of its variant behind a
// uniform surface. Nil capability funcs mean the variant does not support
// the operation (e.g. insert on a trie).
type Handle struct {
	// Name is the index's serving name (the manifest prefix).
	Name string
	// UUID identifies this open handle. It changes every time the index
	// is (re)opened, so a client that cached it detects a swap: requests
	// carrying a stale UUID fail with 409 instead of silently hitting a
	// different index generation.
	UUID string
	// Variant is tree, trie, or lsm.
	Variant string
	// SeriesLen is the indexed series length; requests are validated
	// against it.
	SeriesLen int

	search     func(ctx context.Context, q coconut.Series) (coconut.Result, error)
	approx     func(ctx context.Context, q coconut.Series, radius int) (coconut.Result, error)
	knn        func(ctx context.Context, q coconut.Series, k int) ([]coconut.Neighbor, error)
	insert     func(ctx context.Context, batch []coconut.Series) error
	sync       func() error
	close      func() error
	count      func() int64
	degraded   func() bool
	cacheStats func() coconut.CacheStats
}

// Count returns the number of series the handle serves.
func (h *Handle) Count() int64 { return h.count() }

// Degraded reports whether the handle was opened over quarantined
// artifacts and answers cover only the healthy remainder.
func (h *Handle) Degraded() bool { return h.degraded() }

// CacheStats returns the handle's block-cache counters; zeros for
// variants (or layouts) that read no block cache.
func (h *Handle) CacheStats() coconut.CacheStats {
	if h.cacheStats == nil {
		return coconut.CacheStats{}
	}
	return h.cacheStats()
}

func newUUID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random uuid: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// NewTreeHandle wraps a Coconut-Tree index for serving.
func NewTreeHandle(name string, ix *coconut.TreeIndex, seriesLen int) *Handle {
	return &Handle{
		Name:      name,
		UUID:      newUUID(),
		Variant:   "tree",
		SeriesLen: seriesLen,
		search:    ix.SearchCtx,
		approx:    ix.SearchApproxCtx,
		knn:       ix.SearchKNNCtx,
		insert:    ix.InsertCtx,
		sync:      ix.Sync,
		close:     ix.Close,
		count:     ix.Count,
		degraded:  ix.Degraded,
	}
}

// NewTrieHandle wraps a Coconut-Trie index for serving (read-only: the
// trie is immutable, so it has no insert capability).
func NewTrieHandle(name string, ix *coconut.TrieIndex, seriesLen int) *Handle {
	return &Handle{
		Name:      name,
		UUID:      newUUID(),
		Variant:   "trie",
		SeriesLen: seriesLen,
		search:    ix.SearchCtx,
		approx:    ix.SearchApproxCtx,
		close:     ix.Close,
		count:     ix.Count,
		degraded:  ix.Degraded,
	}
}

// NewLSMHandle wraps a Coconut-LSM index for serving. The approximate
// search ignores the radius parameter (the LSM window is sized by its
// own merge policy).
func NewLSMHandle(name string, ix *coconut.LSMIndex, seriesLen int) *Handle {
	return &Handle{
		Name:      name,
		UUID:      newUUID(),
		Variant:   "lsm",
		SeriesLen: seriesLen,
		search:    ix.SearchCtx,
		approx: func(ctx context.Context, q coconut.Series, _ int) (coconut.Result, error) {
			return ix.SearchApproxCtx(ctx, q)
		},
		insert:     ix.InsertCtx,
		sync:       ix.Sync,
		close:      ix.Close,
		count:      ix.Count,
		degraded:   ix.Degraded,
		cacheStats: ix.CacheStats,
	}
}

// OpenHandle reopens the persisted index cfg names, detecting its variant
// from the manifest (a partitioned index is served as its child variant).
func OpenHandle(ctx context.Context, cfg coconut.Config) (*Handle, error) {
	m, err := core.LoadManifest(cfg.Storage, cfg.Name)
	if err != nil {
		return nil, err
	}
	variant := m.Variant
	if variant == manifest.VariantPartitioned && m.Part != nil {
		variant = m.Part.ChildVariant
	}
	switch variant {
	case manifest.VariantTree:
		ix, err := coconut.OpenTreeIndexCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return NewTreeHandle(cfg.Name, ix, m.SeriesLen), nil
	case manifest.VariantTrie:
		ix, err := coconut.OpenTrieIndexCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return NewTrieHandle(cfg.Name, ix, m.SeriesLen), nil
	case manifest.VariantLSM:
		ix, err := coconut.OpenLSMIndexCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return NewLSMHandle(cfg.Name, ix, m.SeriesLen), nil
	}
	return nil, fmt.Errorf("server: index %q has unknown variant %q", cfg.Name, variant)
}

// Manager holds the set of indexes a coconutd process serves, by name.
type Manager struct {
	mu     sync.Mutex
	byName map[string]*Handle
	closed bool
}

// NewManager returns an empty Manager.
func NewManager() *Manager {
	return &Manager{byName: make(map[string]*Handle)}
}

// Add registers (or replaces) a handle under its name. Replacing an old
// handle does not close it — swap explicitly and close the old one after
// in-flight requests drain.
func (m *Manager) Add(h *Handle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byName[h.Name] = h
}

// Get returns the handle serving name.
func (m *Manager) Get(name string) (*Handle, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.byName[name]
	return h, ok
}

// List returns the handles sorted by name.
func (m *Manager) List() []*Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Handle, 0, len(m.byName))
	for _, h := range m.byName {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CloseAll syncs (where the variant supports it) and closes every handle.
// It is idempotent; the underlying Close implementations are themselves
// safe to race with in-flight cancelled queries, so CloseAll may run while
// force-cancelled requests are still unwinding.
func (m *Manager) CloseAll() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	handles := make([]*Handle, 0, len(m.byName))
	for _, h := range m.byName {
		handles = append(handles, h)
	}
	m.mu.Unlock()
	var first error
	for _, h := range handles {
		if h.sync != nil {
			if err := h.sync(); err != nil && first == nil {
				first = fmt.Errorf("server: syncing %q: %w", h.Name, err)
			}
		}
		if err := h.close(); err != nil && first == nil {
			first = fmt.Errorf("server: closing %q: %w", h.Name, err)
		}
	}
	return first
}
