package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	coconut "github.com/coconut-db/coconut"
	"github.com/coconut-db/coconut/internal/storage"
)

const (
	testSeries = 300
	testLen    = 64
)

// buildServedTree builds a tree index (3 partitions, one query worker so
// storage-read counts are deterministic) over ffs and returns it with a
// query to ask it.
func buildServedTree(t *testing.T, ffs storage.FS) (*coconut.TreeIndex, coconut.Series) {
	t.Helper()
	if err := coconut.GenerateDataset(ffs, "data.bin", coconut.RandomWalk, testSeries, testLen, 3); err != nil {
		t.Fatal(err)
	}
	ix, err := coconut.BuildTreeIndex(coconut.Config{
		Storage:      ffs,
		Name:         "ix",
		DataFile:     "data.bin",
		SeriesLen:    testLen,
		LeafSize:     32,
		Partitions:   3,
		QueryWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := coconut.GenerateQueries(coconut.RandomWalk, 1, testLen, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ix, qs[0]
}

// startServer serves s over an httptest server with the request contexts
// wired to s.BaseContext(), as NewHTTPServer would.
func startServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.BaseContext = func(net.Listener) context.Context { return s.BaseContext() }
	ts.Start()
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServerEndpoints drives the full request surface over a partitioned
// tree index: health, stats, index listing, and the three query modes,
// plus the validation failures (unknown index 404, stale UUID 409, wrong
// series length 400, unknown mode 400).
func TestServerEndpoints(t *testing.T) {
	ffs := storage.NewFaultFS(storage.NewMemFS())
	ix, q := buildServedTree(t, ffs)
	want, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	h := NewTreeHandle("ix", ix, testLen)
	mgr := NewManager()
	mgr.Add(h)
	s := New(mgr, Options{})
	defer mgr.CloseAll()
	ts := startServer(t, s)

	var health map[string]string
	if st := getJSON(t, ts.URL+"/healthz", &health); st != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("/healthz: %d %v", st, health)
	}

	var infos []IndexInfo
	if st := getJSON(t, ts.URL+"/indexes", &infos); st != http.StatusOK {
		t.Fatalf("/indexes: %d", st)
	}
	if len(infos) != 1 || infos[0].Name != "ix" || infos[0].Variant != "tree" ||
		infos[0].SeriesLen != testLen || infos[0].Count != testSeries || infos[0].UUID != h.UUID {
		t.Fatalf("/indexes: %+v", infos)
	}

	// Exact search over HTTP answers identically to the direct API.
	st, body, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix", Series: q})
	if st != http.StatusOK {
		t.Fatalf("exact query: %d %s", st, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 1 || qr.Results[0].Position != want.Position || qr.Results[0].Distance != want.Distance {
		t.Fatalf("exact over HTTP = %+v, direct = (%d, %v)", qr.Results, want.Position, want.Distance)
	}
	if qr.UUID != h.UUID || qr.Mode != "exact" {
		t.Fatalf("response metadata: %+v", qr)
	}

	st, body, _ = postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix", Series: q, Mode: "approx"})
	if st != http.StatusOK {
		t.Fatalf("approx query: %d %s", st, body)
	}

	st, body, _ = postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix", Series: q, Mode: "knn", K: 3})
	if st != http.StatusOK {
		t.Fatalf("knn query: %d %s", st, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 3 {
		t.Fatalf("knn returned %d results, want 3", len(qr.Results))
	}
	if qr.Results[0].Position != want.Position || qr.Results[0].Distance != want.Distance {
		t.Fatalf("knn[0] = %+v, exact = (%d, %v)", qr.Results[0], want.Position, want.Distance)
	}

	// Validation surface.
	if st, _, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "nope", Series: q}); st != http.StatusNotFound {
		t.Fatalf("unknown index: %d, want 404", st)
	}
	if st, _, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix", UUID: "stale", Series: q}); st != http.StatusConflict {
		t.Fatalf("stale uuid: %d, want 409", st)
	}
	if st, _, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix", Series: q[:3]}); st != http.StatusBadRequest {
		t.Fatalf("wrong series length: %d, want 400", st)
	}
	if st, _, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix", Series: q, Mode: "psychic"}); st != http.StatusBadRequest {
		t.Fatalf("unknown mode: %d, want 400", st)
	}

	// Appends flow through and update the served count.
	batch := make([][]float64, 2)
	for i := range batch {
		batch[i] = make([]float64, testLen)
	}
	st, body, _ = postJSON(t, ts.URL+"/append", AppendRequest{Index: "ix", Series: batch})
	if st != http.StatusOK {
		t.Fatalf("append: %d %s", st, body)
	}
	var stats Stats
	if st := getJSON(t, ts.URL+"/stats", &stats); st != http.StatusOK {
		t.Fatalf("/stats: %d", st)
	}
	if stats.QueriesTotal < 4 || stats.AppendsTotal != 1 || stats.Draining {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Indexes[0].Count != testSeries+2 {
		t.Fatalf("count after append = %d, want %d", stats.Indexes[0].Count, testSeries+2)
	}
}

// TestServerShedsAtCapacity: with every query slot occupied, the next
// request is shed with 429 + Retry-After within milliseconds — admission
// control rejects instead of queueing.
func TestServerShedsAtCapacity(t *testing.T) {
	block := make(chan struct{})
	h := &Handle{
		Name: "slow", UUID: newUUID(), Variant: "tree", SeriesLen: 4,
		search: func(ctx context.Context, q coconut.Series) (coconut.Result, error) {
			select {
			case <-block:
				return coconut.Result{}, nil
			case <-ctx.Done():
				return coconut.Result{}, ctx.Err()
			}
		},
		count:    func() int64 { return 0 },
		degraded: func() bool { return false },
		close:    func() error { return nil },
	}
	mgr := NewManager()
	mgr.Add(h)
	s := New(mgr, Options{MaxInFlightQueries: 2})
	ts := startServer(t, s)

	req := QueryRequest{Index: "slow", Series: []float64{0, 0, 0, 0}}
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, _, _ := postJSON(t, ts.URL+"/query", req)
			done <- st
		}()
	}
	// Wait until both in-flight queries hold their slots.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.querySem) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("blocked queries never filled the admission slots")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	st, _, hdr := postJSON(t, ts.URL+"/query", req)
	shedLatency := time.Since(start)
	if st != http.StatusTooManyRequests {
		t.Fatalf("at capacity: %d, want 429", st)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if shedLatency > 500*time.Millisecond {
		t.Fatalf("shed took %v; rejection must not queue behind in-flight work", shedLatency)
	}

	close(block)
	for i := 0; i < 2; i++ {
		if st := <-done; st != http.StatusOK {
			t.Fatalf("blocked query finished with %d", st)
		}
	}
	var stats Stats
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.ShedQueries != 1 {
		t.Fatalf("shed_queries = %d, want 1", stats.ShedQueries)
	}
	if stats.InFlightQueries != 0 {
		t.Fatalf("in_flight_queries = %d after all done, want 0", stats.InFlightQueries)
	}
}

// TestServerDeadlineMapsTo504: a query stalled in storage past its
// deadline surfaces as 504 within twice the deadline, and the stats
// counter records it.
func TestServerDeadlineMapsTo504(t *testing.T) {
	ffs := storage.NewFaultFS(storage.NewMemFS())
	ix, q := buildServedTree(t, ffs)
	h := NewTreeHandle("ix", ix, testLen)
	mgr := NewManager()
	mgr.Add(h)
	s := New(mgr, Options{})
	defer mgr.CloseAll()
	ts := startServer(t, s)

	// Measure the query's deterministic read count, then stall its final
	// read (which sits inside a detachable scan worker).
	ffs.SetCounted(storage.OpRead)
	before := ffs.OpCount()
	if _, err := ix.Search(q); err != nil {
		t.Fatal(err)
	}
	reads := ffs.OpCount() - before
	release, parked := ffs.StallAt(ffs.OpCount() + reads)
	defer release()

	const deadlineMS = 200
	start := time.Now()
	st, body, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix", Series: q, TimeoutMS: deadlineMS})
	elapsed := time.Since(start)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("stalled query: %d %s, want 504", st, body)
	}
	if elapsed > 2*deadlineMS*time.Millisecond {
		t.Fatalf("stalled query answered in %v, want <= %v (2x deadline)", elapsed, 2*deadlineMS*time.Millisecond)
	}
	<-parked // the stall really did trigger
	var stats Stats
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", stats.DeadlineExceeded)
	}
}

// TestServerGracefulDrain: with no stuck requests, Shutdown completes
// cleanly and closes the indexes.
func TestServerGracefulDrain(t *testing.T) {
	ffs := storage.NewFaultFS(storage.NewMemFS())
	ix, q := buildServedTree(t, ffs)
	mgr := NewManager()
	mgr.Add(NewTreeHandle("ix", ix, testLen))
	s := New(mgr, Options{DrainTimeout: 5 * time.Second})
	ts := startServer(t, s)

	if st, body, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix", Series: q}); st != http.StatusOK {
		t.Fatalf("warm-up query: %d %s", st, body)
	}
	if err := s.Shutdown(context.Background(), ts.Config); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if !s.draining.Load() {
		t.Fatal("drain did not latch the draining flag")
	}
	// Shutdown is idempotent: the manager is already closed, the HTTP
	// server already stopped.
	if err := s.Shutdown(context.Background(), ts.Config); err != nil {
		t.Fatalf("second drain returned %v", err)
	}
}

// TestServerDrainForceCancelsStalledRequest is the shutdown half of the
// robustness story: a request stalled in storage cannot finish, the drain
// deadline passes, the server force-cancels it (the handler unwinds with
// ctx.Err(), never a partial answer), and the index still closes
// crash-consistently — a reopen answers the same query identically.
func TestServerDrainForceCancelsStalledRequest(t *testing.T) {
	ffs := storage.NewFaultFS(storage.NewMemFS())
	ix, q := buildServedTree(t, ffs)
	want, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager()
	mgr.Add(NewTreeHandle("ix", ix, testLen))
	s := New(mgr, Options{DrainTimeout: 300 * time.Millisecond})
	ts := startServer(t, s)

	// Stall the final read of the next query (inside a scan worker).
	ffs.SetCounted(storage.OpRead)
	before := ffs.OpCount()
	if _, err := ix.Search(q); err != nil {
		t.Fatal(err)
	}
	reads := ffs.OpCount() - before
	release, parked := ffs.StallAt(ffs.OpCount() + reads)
	defer release()

	// The force-close at the drain deadline may sever the connection before
	// the handler's 503 is written, so the client must tolerate a transport
	// error (reported as status 0) — either way, no fabricated answer.
	clientDone := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(QueryRequest{Index: "ix", Series: q, TimeoutMS: 60_000})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(raw))
		if err != nil {
			clientDone <- 0
			return
		}
		resp.Body.Close()
		clientDone <- resp.StatusCode
	}()
	select {
	case <-parked:
	case st := <-clientDone:
		t.Fatalf("query answered %d before stalling", st)
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the stalled read")
	}

	start := time.Now()
	err = s.Shutdown(context.Background(), ts.Config)
	drainTook := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with a stalled request returned %v, want context.DeadlineExceeded", err)
	}
	if drainTook > 3*time.Second {
		t.Fatalf("drain took %v; the deadline must bound shutdown", drainTook)
	}
	select {
	case <-clientDone:
		// 503 or a transport error surfaced as 0 — either way the request
		// terminated without a fabricated answer.
	case <-time.After(5 * time.Second):
		t.Fatal("stalled request never terminated after force-cancel")
	}

	// Crash consistency: the closed index reopens and answers identically.
	h2, err := OpenHandle(context.Background(), coconut.Config{Storage: ffs, Name: "ix", QueryWorkers: 1})
	if err != nil {
		t.Fatalf("reopen after forced drain: %v", err)
	}
	got, err := h2.search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Position != want.Position || got.Distance != want.Distance {
		t.Fatalf("reopened answer (%d, %v) != pre-drain answer (%d, %v)",
			got.Position, got.Distance, want.Position, want.Distance)
	}
	if err := h2.close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerDrainingRejectsNewWork: once draining, new queries and appends
// get 503 and /healthz reports draining.
func TestServerDrainingRejectsNewWork(t *testing.T) {
	mgr := NewManager()
	s := New(mgr, Options{})
	ts := startServer(t, s)
	s.draining.Store(true)

	if st, _, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "ix"}); st != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d, want 503", st)
	}
	if st, _, _ := postJSON(t, ts.URL+"/append", AppendRequest{Index: "ix"}); st != http.StatusServiceUnavailable {
		t.Fatalf("append while draining: %d, want 503", st)
	}
	var health map[string]string
	if st := getJSON(t, ts.URL+"/healthz", &health); st != http.StatusServiceUnavailable || health["status"] != "draining" {
		t.Fatalf("/healthz while draining: %d %v", st, health)
	}
}

// TestTimeoutFor: the server default applies when the client sends
// nothing, a client override wins below the cap, and the cap binds above.
func TestTimeoutFor(t *testing.T) {
	s := New(NewManager(), Options{DefaultTimeout: 10 * time.Second, MaxTimeout: time.Minute})
	cases := []struct {
		clientMS int64
		want     time.Duration
	}{
		{0, 10 * time.Second},
		{-5, 10 * time.Second},
		{500, 500 * time.Millisecond},
		{10 * 60 * 1000, time.Minute},
	}
	for _, c := range cases {
		if got := s.timeoutFor(c.clientMS); got != c.want {
			t.Errorf("timeoutFor(%d) = %v, want %v", c.clientMS, got, c.want)
		}
	}
}

// TestStatsExposeBlockCache: serving a (compressed-by-default) LSM index,
// /stats reports the index's block-cache counters — after queries, hits
// plus misses are non-zero and the budget reflects Config.CacheBytes.
func TestStatsExposeBlockCache(t *testing.T) {
	fs := storage.NewMemFS()
	if err := coconut.GenerateDataset(fs, "data.bin", coconut.RandomWalk, testSeries, testLen, 3); err != nil {
		t.Fatal(err)
	}
	const budget = 1 << 20
	ix, err := coconut.BuildLSMIndex(coconut.Config{
		Storage:    fs,
		Name:       "lx",
		DataFile:   "data.bin",
		SeriesLen:  testLen,
		CacheBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager()
	mgr.Add(NewLSMHandle("lx", ix, testLen))
	s := New(mgr, Options{})
	defer mgr.CloseAll()
	ts := startServer(t, s)

	qs, err := coconut.GenerateQueries(coconut.RandomWalk, 3, testLen, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		st, body, _ := postJSON(t, ts.URL+"/query", QueryRequest{Index: "lx", Series: q})
		if st != http.StatusOK {
			t.Fatalf("query: %d %s", st, body)
		}
	}
	var stats Stats
	if st := getJSON(t, ts.URL+"/stats", &stats); st != http.StatusOK {
		t.Fatalf("/stats: %d", st)
	}
	bc := stats.Indexes[0].BlockCache
	if bc.Hits+bc.Misses == 0 {
		t.Fatalf("block cache never touched: %+v", bc)
	}
	if bc.Budget != budget {
		t.Fatalf("budget = %d, want %d", bc.Budget, budget)
	}
}
