package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	coconut "github.com/coconut-db/coconut"
)

// Options configures a Server.
type Options struct {
	// DefaultTimeout is the per-request deadline applied when the client
	// sends none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested timeout_ms — a client may ask
	// for less time than the default, or more up to this bound (default
	// 2m).
	MaxTimeout time.Duration
	// MaxInFlightQueries bounds concurrently executing queries; excess
	// requests are shed with 429 + Retry-After instead of queueing
	// (default 64).
	MaxInFlightQueries int
	// MaxInFlightAppends bounds concurrently executing appends (default 8).
	MaxInFlightAppends int
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish before their contexts are force-cancelled (default
	// 10s).
	DrainTimeout time.Duration
}

// WithDefaults fills unset fields with the documented defaults.
func (o Options) WithDefaults() Options {
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.MaxInFlightQueries <= 0 {
		o.MaxInFlightQueries = 64
	}
	if o.MaxInFlightAppends <= 0 {
		o.MaxInFlightAppends = 8
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// Server is the coconutd request front end: admission control, deadlines,
// and the HTTP/JSON handlers over a Manager of indexes.
type Server struct {
	mgr  *Manager
	opts Options
	mux  *http.ServeMux

	// base is the ancestor of every request context (wired through
	// http.Server.BaseContext by NewHTTPServer). Cancelling it at the
	// drain deadline reaches requests that http.Server.Shutdown alone
	// cannot interrupt — Shutdown only waits, it never cancels.
	base       context.Context
	cancelBase context.CancelFunc

	draining  atomic.Bool
	querySem  chan struct{}
	appendSem chan struct{}

	queriesTotal     atomic.Int64
	appendsTotal     atomic.Int64
	shedQueries      atomic.Int64
	shedAppends      atomic.Int64
	deadlineExceeded atomic.Int64
	canceled         atomic.Int64
}

// New returns a Server over mgr. The caller serves s.Handler() —
// typically through NewHTTPServer, which also wires the drain-cancel
// plumbing — and finally calls Shutdown.
func New(mgr *Manager, opts Options) *Server {
	opts = opts.WithDefaults()
	s := &Server{
		mgr:       mgr,
		opts:      opts,
		mux:       http.NewServeMux(),
		querySem:  make(chan struct{}, opts.MaxInFlightQueries),
		appendSem: make(chan struct{}, opts.MaxInFlightAppends),
	}
	s.base, s.cancelBase = context.WithCancel(context.Background())
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/indexes", s.handleIndexes)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/append", s.handleAppend)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BaseContext is the context every request context must descend from so
// that drain-deadline cancellation reaches in-flight requests. NewHTTPServer
// wires it; custom serving setups (tests) must do the same.
func (s *Server) BaseContext() context.Context { return s.base }

// NewHTTPServer returns an http.Server for addr wired to s: requests are
// served by s.Handler() and their contexts descend from s.BaseContext().
func (s *Server) NewHTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:        addr,
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return s.base },
	}
}

// Shutdown drains hs gracefully: stop accepting, let in-flight requests
// finish under the drain deadline, force-cancel whatever is still running
// at the deadline, then Sync+Close every index. The returned error is nil
// when the drain was clean (force-cancelling stragglers still leaves every
// index crash-consistent — Close runs after the cancellations unwind).
func (s *Server) Shutdown(parent context.Context, hs *http.Server) error {
	s.draining.Store(true)
	dctx, cancel := context.WithTimeout(parent, s.opts.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	if err != nil {
		// The drain deadline passed with requests still in flight: cancel
		// their contexts (they unwind with ctx.Err(), never a partial
		// answer) and close the connections out from under them.
		s.cancelBase()
		hs.Close()
	}
	if cerr := s.mgr.CloseAll(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// timeoutFor resolves the effective per-request deadline: the server
// default, overridden by a positive client timeout_ms capped at MaxTimeout.
func (s *Server) timeoutFor(clientMS int64) time.Duration {
	if clientMS <= 0 {
		return s.opts.DefaultTimeout
	}
	d := time.Duration(clientMS) * time.Millisecond
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// errStatus maps a search/append error to an HTTP status and bumps the
// matching counter.
func (s *Server) errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineExceeded.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away or the drain deadline cancelled the
		// request; the status is best-effort (the connection is usually
		// gone).
		s.canceled.Add(1)
		return http.StatusServiceUnavailable
	case errors.Is(err, coconut.ErrCorruptData):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// admit acquires one slot of sem without blocking: admission control sheds
// load instead of queueing it, so an overloaded server answers 429 in
// microseconds rather than stalling every caller.
func admit(sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// IndexInfo is one /indexes (and /stats) entry. BlockCache reports the
// index's shared decoded-block cache counters (all-zero for uncompressed
// layouts and variants that read no cache) so operators can size
// Config.CacheBytes from the live hit/miss ratio.
type IndexInfo struct {
	Name       string             `json:"name"`
	UUID       string             `json:"uuid"`
	Variant    string             `json:"variant"`
	SeriesLen  int                `json:"series_len"`
	Count      int64              `json:"count"`
	Degraded   bool               `json:"degraded"`
	BlockCache coconut.CacheStats `json:"block_cache"`
}

func (s *Server) indexInfos() []IndexInfo {
	hs := s.mgr.List()
	out := make([]IndexInfo, len(hs))
	for i, h := range hs {
		out[i] = IndexInfo{
			Name: h.Name, UUID: h.UUID, Variant: h.Variant,
			SeriesLen: h.SeriesLen, Count: h.Count(), Degraded: h.Degraded(),
			BlockCache: h.CacheStats(),
		}
	}
	return out
}

// Stats is the /stats response.
type Stats struct {
	InFlightQueries  int         `json:"in_flight_queries"`
	InFlightAppends  int         `json:"in_flight_appends"`
	QueriesTotal     int64       `json:"queries_total"`
	AppendsTotal     int64       `json:"appends_total"`
	ShedQueries      int64       `json:"shed_queries"`
	ShedAppends      int64       `json:"shed_appends"`
	DeadlineExceeded int64       `json:"deadline_exceeded"`
	Canceled         int64       `json:"canceled"`
	DegradedIndexes  int         `json:"degraded_indexes"`
	Draining         bool        `json:"draining"`
	Indexes          []IndexInfo `json:"indexes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	infos := s.indexInfos()
	degraded := 0
	for _, in := range infos {
		if in.Degraded {
			degraded++
		}
	}
	writeJSON(w, http.StatusOK, Stats{
		InFlightQueries:  len(s.querySem),
		InFlightAppends:  len(s.appendSem),
		QueriesTotal:     s.queriesTotal.Load(),
		AppendsTotal:     s.appendsTotal.Load(),
		ShedQueries:      s.shedQueries.Load(),
		ShedAppends:      s.shedAppends.Load(),
		DeadlineExceeded: s.deadlineExceeded.Load(),
		Canceled:         s.canceled.Load(),
		DegradedIndexes:  degraded,
		Draining:         s.draining.Load(),
		Indexes:          infos,
	})
}

func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.indexInfos())
}

// QueryRequest is the /query request body.
type QueryRequest struct {
	// Index names the target index; UUID optionally pins the exact open
	// generation (409 on mismatch).
	Index string `json:"index"`
	UUID  string `json:"uuid,omitempty"`
	// Series is the query series (SeriesLen values).
	Series []float64 `json:"series"`
	// Mode is exact (default), approx, or knn.
	Mode string `json:"mode,omitempty"`
	// K is the neighbor count for knn mode (default 1).
	K int `json:"k,omitempty"`
	// Radius is the approximate-search leaf radius (default 1).
	Radius int `json:"radius,omitempty"`
	// TimeoutMS overrides the server's default deadline, capped at its
	// maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// ZNormalize z-normalizes the query before searching (the built-in
	// datasets are z-normalized).
	ZNormalize bool `json:"znormalize,omitempty"`
}

// QueryNeighbor is one answer in a QueryResponse.
type QueryNeighbor struct {
	Position int64   `json:"position"`
	Distance float64 `json:"distance"`
}

// QueryResponse is the /query response body.
type QueryResponse struct {
	Index         string          `json:"index"`
	UUID          string          `json:"uuid"`
	Mode          string          `json:"mode"`
	Results       []QueryNeighbor `json:"results"`
	VisitedSeries int64           `json:"visited_series"`
	ElapsedMS     float64         `json:"elapsed_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !admit(s.querySem) {
		s.shedQueries.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "query capacity (%d in flight) exhausted", s.opts.MaxInFlightQueries)
		return
	}
	defer func() { <-s.querySem }()
	s.queriesTotal.Add(1)

	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	h, ok := s.mgr.Get(req.Index)
	if !ok {
		writeError(w, http.StatusNotFound, "no index named %q", req.Index)
		return
	}
	if req.UUID != "" && req.UUID != h.UUID {
		writeError(w, http.StatusConflict, "index %q is now generation %s (request pinned %s)", h.Name, h.UUID, req.UUID)
		return
	}
	if len(req.Series) != h.SeriesLen {
		writeError(w, http.StatusBadRequest, "query series has %d values, index %q holds series of length %d",
			len(req.Series), h.Name, h.SeriesLen)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "exact"
	}
	radius := req.Radius
	if radius <= 0 {
		radius = 1
	}
	q := coconut.Series(req.Series)
	if req.ZNormalize {
		q = coconut.ZNormalize(q)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	defer cancel()
	start := time.Now()
	resp := QueryResponse{Index: h.Name, UUID: h.UUID, Mode: mode}
	switch mode {
	case "exact":
		res, err := h.search(ctx, q)
		if err != nil {
			writeError(w, s.errStatus(err), "exact search: %v", err)
			return
		}
		resp.Results = []QueryNeighbor{{Position: res.Position, Distance: res.Distance}}
		resp.VisitedSeries = res.VisitedSeries
	case "approx":
		res, err := h.approx(ctx, q, radius)
		if err != nil {
			writeError(w, s.errStatus(err), "approximate search: %v", err)
			return
		}
		resp.Results = []QueryNeighbor{{Position: res.Position, Distance: res.Distance}}
		resp.VisitedSeries = res.VisitedSeries
	case "knn":
		if h.knn == nil {
			writeError(w, http.StatusBadRequest, "index %q (%s) does not support knn", h.Name, h.Variant)
			return
		}
		k := req.K
		if k <= 0 {
			k = 1
		}
		ns, err := h.knn(ctx, q, k)
		if err != nil {
			writeError(w, s.errStatus(err), "knn search: %v", err)
			return
		}
		resp.Results = make([]QueryNeighbor, len(ns))
		for i, n := range ns {
			resp.Results[i] = QueryNeighbor{Position: n.Position, Distance: n.Distance}
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want exact, approx, or knn)", mode)
		return
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// AppendRequest is the /append request body.
type AppendRequest struct {
	Index string `json:"index"`
	UUID  string `json:"uuid,omitempty"`
	// Series holds the records to append, each SeriesLen values.
	Series    [][]float64 `json:"series"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

// AppendResponse is the /append response body.
type AppendResponse struct {
	Index     string  `json:"index"`
	UUID      string  `json:"uuid"`
	Appended  int     `json:"appended"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !admit(s.appendSem) {
		s.shedAppends.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "append capacity (%d in flight) exhausted", s.opts.MaxInFlightAppends)
		return
	}
	defer func() { <-s.appendSem }()
	s.appendsTotal.Add(1)

	var req AppendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	h, ok := s.mgr.Get(req.Index)
	if !ok {
		writeError(w, http.StatusNotFound, "no index named %q", req.Index)
		return
	}
	if req.UUID != "" && req.UUID != h.UUID {
		writeError(w, http.StatusConflict, "index %q is now generation %s (request pinned %s)", h.Name, h.UUID, req.UUID)
		return
	}
	if h.insert == nil {
		writeError(w, http.StatusBadRequest, "index %q (%s) is read-only", h.Name, h.Variant)
		return
	}
	if len(req.Series) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	batch := make([]coconut.Series, len(req.Series))
	for i, vals := range req.Series {
		if len(vals) != h.SeriesLen {
			writeError(w, http.StatusBadRequest, "series %d has %d values, index %q holds series of length %d",
				i, len(vals), h.Name, h.SeriesLen)
			return
		}
		batch[i] = coconut.Series(vals)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	defer cancel()
	start := time.Now()
	if err := h.insert(ctx, batch); err != nil {
		writeError(w, s.errStatus(err), "append: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Index:     h.Name,
		UUID:      h.UUID,
		Appended:  len(batch),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}
