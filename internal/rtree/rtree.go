// Package rtree implements the R-tree baseline of the paper's evaluation:
// data series are indexed as D-dimensional PAA points, bulk-loaded with the
// Sort-Tile-Recursive (STR) algorithm of Leutenegger et al., and queried
// with best-first nearest-neighbor search over minimum bounding rectangles.
//
// STR sorts the points once per dimension (recursively within slabs), so
// construction performs O(N·D) work and O(D·N/B) I/O — the cost the paper
// contrasts with Coconut's single sort over sortable summarizations (§5.1).
// To keep that cost visible on the simulated device, the builder rewrites
// the point file once per recursion level.
//
// R-tree stores raw series in its leaves (materialized); R-tree+ stores
// file offsets instead (non-materialized), like the paper's variant.
package rtree

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// Options configures a build.
type Options struct {
	// FS hosts the index files and the raw dataset file.
	FS storage.FS
	// Name is the base file name.
	Name string
	// S provides the PAA transform (dimensions = S.Params().Segments).
	S *summary.Summarizer
	// RawName is the dataset file.
	RawName string
	// LeafCap is the number of entries per leaf (paper: 2000).
	LeafCap int
	// Materialized stores raw series in leaves when true (R-tree),
	// offsets only when false (R-tree+).
	Materialized bool
	// Fanout is the internal node fan-out (default 16).
	Fanout int
}

func (o *Options) validate() error {
	switch {
	case o.FS == nil:
		return errors.New("rtree: nil FS")
	case o.Name == "":
		return errors.New("rtree: empty name")
	case o.S == nil:
		return errors.New("rtree: nil summarizer")
	case o.RawName == "":
		return errors.New("rtree: empty raw name")
	case o.LeafCap < 2:
		return errors.New("rtree: leaf capacity must be at least 2")
	}
	if o.Fanout < 2 {
		o.Fanout = 16
	}
	return nil
}

// Result mirrors the isax package's search answer.
type Result struct {
	Pos            int64
	Dist           float64
	VisitedRecords int64
	VisitedLeaves  int64
}

// mbr is a minimum bounding rectangle in PAA space.
type mbr struct {
	lo, hi []float64
}

func newMBR(d int) mbr {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	return mbr{lo, hi}
}

func (m *mbr) extendPoint(p []float64) {
	for i, v := range p {
		if v < m.lo[i] {
			m.lo[i] = v
		}
		if v > m.hi[i] {
			m.hi[i] = v
		}
	}
}

func (m *mbr) extend(o mbr) {
	for i := range m.lo {
		if o.lo[i] < m.lo[i] {
			m.lo[i] = o.lo[i]
		}
		if o.hi[i] > m.hi[i] {
			m.hi[i] = o.hi[i]
		}
	}
}

// node is an in-memory R-tree node; leaves reference on-disk pages.
type node struct {
	box      mbr
	children []*node
	leafPage int64 // valid when children == nil
	count    int
}

// Tree is a built R-tree.
type Tree struct {
	opt      Options
	root     *node
	leafFile storage.File
	rawFile  storage.File
	count    int64
	nLeaves  int64
}

// entrySize is the on-disk size of one leaf entry.
func (t *Tree) entrySize() int {
	n := 8 + 8*t.opt.S.Params().Segments // pos + PAA point
	if t.opt.Materialized {
		n += series.EncodedSize(t.opt.S.Params().SeriesLen)
	}
	return n
}

func (t *Tree) pageSize() int64 { return int64(4 + t.entrySize()*t.opt.LeafCap) }

// Build bulk-loads an R-tree over the dataset with STR.
func Build(opt Options) (*Tree, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	lf, err := opt.FS.Create(opt.Name + ".leaves")
	if err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		lf.Close()
		return nil, err
	}
	t := &Tree{opt: opt, leafFile: lf, rawFile: raw}

	// Pass 1: scan the raw file and compute all PAA points.
	p := opt.S.Params()
	r := series.NewReader(storage.NewSequentialReader(raw, 0, -1, 0), p.SeriesLen)
	buf := make(series.Series, p.SeriesLen)
	var points [][]float64
	for {
		if err := r.NextInto(buf); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			lf.Close()
			raw.Close()
			return nil, err
		}
		paa, err := opt.S.PAA(buf, nil)
		if err != nil {
			lf.Close()
			raw.Close()
			return nil, err
		}
		pt := make([]float64, len(paa))
		copy(pt, paa)
		points = append(points, pt)
	}
	t.count = int64(len(points))
	if t.count == 0 {
		t.root = &node{box: newMBR(p.Segments)}
		return t, nil
	}

	// STR ordering: recursively sort by each dimension into slabs. The
	// order array carries series positions.
	order := make([]int64, len(points))
	for i := range order {
		order[i] = int64(i)
	}
	t.strSort(points, order, 0)

	// Model STR's external cost: one sequential rewrite of the point file
	// per dimension level actually used.
	levels := t.strLevels(len(points))
	ptRec := 8 + 8*p.Segments
	scratchName := opt.Name + ".strpass"
	for l := 0; l < levels; l++ {
		f, err := opt.FS.Create(scratchName)
		if err != nil {
			lf.Close()
			raw.Close()
			return nil, err
		}
		w := storage.NewSequentialWriter(f, 0, 0)
		rec := make([]byte, ptRec)
		for _, pos := range order {
			putU64(rec, uint64(pos))
			for d, v := range points[pos] {
				putU64(rec[8+8*d:], math.Float64bits(v))
			}
			if _, err := w.Write(rec); err != nil {
				f.Close()
				lf.Close()
				raw.Close()
				return nil, err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			lf.Close()
			raw.Close()
			return nil, err
		}
		f.Close()
	}
	if opt.FS.Exists(scratchName) {
		_ = opt.FS.Remove(scratchName)
	}

	// Write leaves in STR order (sequential), then build internal levels.
	if err := t.writeLeaves(points, order); err != nil {
		lf.Close()
		raw.Close()
		return nil, err
	}
	return t, nil
}

// strLevels returns how many recursion levels STR needs.
func (t *Tree) strLevels(n int) int {
	d := t.opt.S.Params().Segments
	leaves := (n + t.opt.LeafCap - 1) / t.opt.LeafCap
	levels := 0
	for leaves > 1 && levels < d {
		levels++
		slabs := int(math.Ceil(math.Pow(float64(leaves), 1.0/float64(d-levels+1))))
		if slabs < 1 {
			slabs = 1
		}
		leaves = (leaves + slabs - 1) / slabs
	}
	if levels == 0 {
		levels = 1
	}
	return levels
}

// strSort orders points[order] with sort-tile-recursive starting at dim.
func (t *Tree) strSort(points [][]float64, order []int64, dim int) {
	d := t.opt.S.Params().Segments
	leaves := (len(order) + t.opt.LeafCap - 1) / t.opt.LeafCap
	if leaves <= 1 || dim >= d {
		return
	}
	sort.Slice(order, func(a, b int) bool {
		return points[order[a]][dim] < points[order[b]][dim]
	})
	if dim == d-1 {
		return
	}
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1.0/float64(d-dim))))
	if slabs <= 1 {
		return
	}
	per := (len(order) + slabs - 1) / slabs
	for lo := 0; lo < len(order); lo += per {
		hi := lo + per
		if hi > len(order) {
			hi = len(order)
		}
		t.strSort(points, order[lo:hi], dim+1)
	}
}

// writeLeaves packs entries in STR order into sequential leaf pages and
// builds the in-memory internal levels bottom-up.
func (t *Tree) writeLeaves(points [][]float64, order []int64) error {
	p := t.opt.S.Params()
	w := storage.NewSequentialWriter(t.leafFile, 0, 0)
	page := make([]byte, t.pageSize())
	scratch := make(series.Series, p.SeriesLen)
	var leaves []*node
	inPage := 0
	box := newMBR(p.Segments)
	var pageID int64

	flush := func() error {
		if inPage == 0 {
			return nil
		}
		putU32(page, uint32(inPage))
		if _, err := w.Write(page); err != nil {
			return err
		}
		leaves = append(leaves, &node{box: box, leafPage: pageID, count: inPage})
		pageID++
		for i := range page {
			page[i] = 0
		}
		box = newMBR(p.Segments)
		inPage = 0
		return nil
	}

	es := t.entrySize()
	for _, pos := range order {
		off := 4 + inPage*es
		putU64(page[off:], uint64(pos))
		off += 8
		for d, v := range points[pos] {
			putU64(page[off+8*d:], math.Float64bits(v))
		}
		off += 8 * p.Segments
		if t.opt.Materialized {
			if err := t.readRaw(pos, scratch); err != nil {
				return err
			}
			series.Encode(page[off:off+series.EncodedSize(p.SeriesLen)], scratch)
		}
		box.extendPoint(points[pos])
		inPage++
		if inPage == t.opt.LeafCap {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	t.nLeaves = int64(len(leaves))

	// Internal levels.
	level := leaves
	for len(level) > 1 {
		var up []*node
		for lo := 0; lo < len(level); lo += t.opt.Fanout {
			hi := lo + t.opt.Fanout
			if hi > len(level) {
				hi = len(level)
			}
			n := &node{box: newMBR(p.Segments), children: level[lo:hi:hi]}
			for _, c := range n.children {
				n.box.extend(c.box)
				n.count += c.count
			}
			up = append(up, n)
		}
		level = up
	}
	t.root = level[0]
	return nil
}

func (t *Tree) readRaw(pos int64, dst series.Series) error {
	p := t.opt.S.Params()
	sz := series.EncodedSize(p.SeriesLen)
	buf := make([]byte, sz)
	if n, err := t.rawFile.ReadAt(buf, pos*int64(sz)); n != sz {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("rtree: raw series %d: %w", pos, err)
	}
	series.DecodeInto(buf, dst)
	return nil
}

// minDist lower-bounds the Euclidean distance between the query and any
// series whose PAA point lies in box, weighting each dimension by its
// segment width (the PAA lower-bound construction).
func (t *Tree) minDist(qPAA []float64, box mbr) float64 {
	acc := 0.0
	for j, q := range qPAA {
		var d float64
		switch {
		case q < box.lo[j]:
			d = box.lo[j] - q
		case q > box.hi[j]:
			d = q - box.hi[j]
		}
		if d != 0 {
			acc += float64(t.opt.S.SegmentWidth(j)) * d * d
		}
	}
	return math.Sqrt(acc)
}

// Count returns the number of indexed series.
func (t *Tree) Count() int64 { return t.count }

// NumLeaves returns the number of leaf pages.
func (t *Tree) NumLeaves() int64 { return t.nLeaves }

// SizeBytes returns the on-device index size.
func (t *Tree) SizeBytes() int64 {
	size, err := t.leafFile.Size()
	if err != nil {
		return 0
	}
	return size
}

// Close releases file handles.
func (t *Tree) Close() error {
	err1 := t.leafFile.Close()
	err2 := t.rawFile.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// leafEntry is a decoded leaf entry.
type leafEntry struct {
	pos int64
	paa []float64
	raw []byte
}

func (t *Tree) readLeaf(id int64) ([]leafEntry, error) {
	buf := make([]byte, t.pageSize())
	if n, err := t.leafFile.ReadAt(buf, id*t.pageSize()); n != len(buf) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("rtree: read leaf %d: %w", id, err)
	}
	cnt := int(leU32(buf))
	p := t.opt.S.Params()
	es := t.entrySize()
	out := make([]leafEntry, 0, cnt)
	for i := 0; i < cnt; i++ {
		off := 4 + i*es
		var e leafEntry
		e.pos = int64(leU64(buf[off:]))
		off += 8
		e.paa = make([]float64, p.Segments)
		for d := range e.paa {
			e.paa[d] = math.Float64frombits(leU64(buf[off+8*d:]))
		}
		off += 8 * p.Segments
		if t.opt.Materialized {
			e.raw = buf[off : off+series.EncodedSize(p.SeriesLen)]
		}
		out = append(out, e)
	}
	return out, nil
}

// entryDistance computes the true distance to an entry.
func (t *Tree) entryDistance(q series.Series, e leafEntry, scratch series.Series) (float64, error) {
	if e.raw != nil {
		series.DecodeInto(e.raw, scratch)
	} else if err := t.readRaw(e.pos, scratch); err != nil {
		return 0, err
	}
	sq, err := series.SquaredED(q, scratch)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(sq), nil
}

// ApproxSearch descends to the leaf with the smallest MBR distance and
// returns its best member.
func (t *Tree) ApproxSearch(q series.Series) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if t.count == 0 {
		return res, errors.New("rtree: index is empty")
	}
	qPAA, err := t.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	n := t.root
	for n.children != nil {
		var best *node
		bestD := math.Inf(1)
		for _, c := range n.children {
			if d := t.minDist(qPAA, c.box); d < bestD {
				best, bestD = c, d
			}
		}
		n = best
	}
	entries, err := t.readLeaf(n.leafPage)
	if err != nil {
		return res, err
	}
	res.VisitedLeaves++
	scratch := make(series.Series, t.opt.S.Params().SeriesLen)
	for _, e := range entries {
		d, err := t.entryDistance(q, e, scratch)
		if err != nil {
			return res, err
		}
		res.VisitedRecords++
		if d < res.Dist {
			res.Dist, res.Pos = d, e.pos
		}
	}
	return res, nil
}

type pqItem struct {
	n    *node
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

func heapPush(q *pq, it pqItem) { heap.Push(q, it) }
func heapPop(q *pq) pqItem      { return heap.Pop(q).(pqItem) }

// ExactSearch is branch-and-bound nearest neighbor over the MBR hierarchy,
// seeded with the approximate answer.
func (t *Tree) ExactSearch(q series.Series) (Result, error) {
	res, err := t.ApproxSearch(q)
	if err != nil {
		return res, err
	}
	qPAA, err := t.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	queue := &pq{{t.root, t.minDist(qPAA, t.root.box)}}
	scratch := make(series.Series, t.opt.S.Params().SeriesLen)
	for queue.Len() > 0 {
		it := heapPop(queue)
		if it.dist >= res.Dist {
			break
		}
		if it.n.children != nil {
			for _, c := range it.n.children {
				if d := t.minDist(qPAA, c.box); d < res.Dist {
					heapPush(queue, pqItem{c, d})
				}
			}
			continue
		}
		entries, err := t.readLeaf(it.n.leafPage)
		if err != nil {
			return res, err
		}
		res.VisitedLeaves++
		for _, e := range entries {
			// Point-level PAA lower bound before touching raw data.
			lb := 0.0
			for j := range e.paa {
				d := qPAA[j] - e.paa[j]
				lb += float64(t.opt.S.SegmentWidth(j)) * d * d
			}
			if math.Sqrt(lb) >= res.Dist {
				continue
			}
			d, err := t.entryDistance(q, e, scratch)
			if err != nil {
				return res, err
			}
			res.VisitedRecords++
			if d < res.Dist {
				res.Dist, res.Pos = d, e.pos
			}
		}
	}
	return res, nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
