package rtree

import (
	"math"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

const (
	tLen   = 64
	tCount = 500
)

func tSummarizer(t *testing.T) *summary.Summarizer {
	t.Helper()
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildFixture(t *testing.T, materialized bool) (*Tree, []series.Series, *storage.MemFS) {
	t.Helper()
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	data := dataset.Generate(gen, tCount, tLen, 42)
	tr, err := Build(Options{
		FS:           fs,
		Name:         "rt",
		S:            tSummarizer(t),
		RawName:      "raw",
		LeafCap:      16,
		Materialized: materialized,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, data, fs
}

func bruteForce1NN(q series.Series, data []series.Series) float64 {
	best := math.Inf(1)
	for _, d := range data {
		dist, _ := series.ED(q, d)
		if dist < best {
			best = dist
		}
	}
	return best
}

func TestBuildShape(t *testing.T) {
	for _, mat := range []bool{true, false} {
		tr, _, _ := buildFixture(t, mat)
		defer tr.Close()
		if tr.Count() != tCount {
			t.Fatalf("Count = %d", tr.Count())
		}
		wantLeaves := int64((tCount + 15) / 16)
		if tr.NumLeaves() != wantLeaves {
			t.Fatalf("NumLeaves = %d, want %d", tr.NumLeaves(), wantLeaves)
		}
		if tr.SizeBytes() == 0 {
			t.Fatal("index empty on disk")
		}
	}
}

func TestMBRContainsMembers(t *testing.T) {
	tr, data, _ := buildFixture(t, true)
	defer tr.Close()
	s := tr.opt.S
	// Every series' PAA must lie inside the root MBR.
	for _, d := range data {
		paa, _ := s.PAA(d, nil)
		for j, v := range paa {
			if v < tr.root.box.lo[j]-1e-9 || v > tr.root.box.hi[j]+1e-9 {
				t.Fatalf("PAA outside root MBR in dim %d", j)
			}
		}
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	for _, mat := range []bool{true, false} {
		name := "R-tree+"
		if mat {
			name = "R-tree"
		}
		t.Run(name, func(t *testing.T) {
			tr, data, _ := buildFixture(t, mat)
			defer tr.Close()
			qs := dataset.Queries(dataset.NewRandomWalk(), 12, tLen, 7)
			for qi, q := range qs {
				want := bruteForce1NN(q, data)
				res, err := tr.ExactSearch(q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(res.Dist-want) > 1e-9 {
					t.Fatalf("query %d: %v != brute force %v", qi, res.Dist, want)
				}
			}
		})
	}
}

func TestApproxSearchValid(t *testing.T) {
	tr, data, _ := buildFixture(t, true)
	defer tr.Close()
	qs := dataset.Queries(dataset.NewRandomWalk(), 5, tLen, 8)
	for _, q := range qs {
		res, err := tr.ApproxSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pos < 0 || res.Pos >= tCount {
			t.Fatalf("approx pos %d out of range", res.Pos)
		}
		want, _ := series.ED(q, data[res.Pos])
		if math.Abs(want-res.Dist) > 1e-9 {
			t.Fatalf("approx distance mismatch")
		}
	}
}

func TestExactSearchPrunes(t *testing.T) {
	tr, _, _ := buildFixture(t, true)
	defer tr.Close()
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 9)[0]
	res, err := tr.ExactSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.VisitedRecords >= tCount {
		t.Fatalf("no pruning: visited %d of %d", res.VisitedRecords, tCount)
	}
}

func TestMemberFoundAtZero(t *testing.T) {
	tr, data, _ := buildFixture(t, false)
	defer tr.Close()
	res, err := tr.ExactSearch(data[123])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("member not found: dist %v", res.Dist)
	}
}

func TestEmptyAndValidation(t *testing.T) {
	fs := storage.NewMemFS()
	dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), 0, tLen, 1)
	tr, err := Build(Options{FS: fs, Name: "rt", S: tSummarizer(t), RawName: "raw", LeafCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Count() != 0 {
		t.Fatal("expected empty tree")
	}
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 2)[0]
	if _, err := tr.ExactSearch(q); err == nil {
		t.Fatal("expected error on empty tree")
	}
	if _, err := Build(Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSTRWritesLeavesSequentially(t *testing.T) {
	fs := storage.NewMemFS()
	dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), 2000, tLen, 3)
	before := fs.Stats().Snapshot()
	tr, err := Build(Options{FS: fs, Name: "rt", S: tSummarizer(t), RawName: "raw", LeafCap: 64, Materialized: false})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	delta := fs.Stats().Snapshot().Sub(before)
	// Bulk loading: a handful of streams, each with one seek.
	if delta.Seeks() > 50 {
		t.Fatalf("STR build should be mostly sequential: %+v", delta)
	}
}
