package lsm

// Crash-injection tests for the WAL write path. The sweep is the
// headline: it replays the same append workload once per counted storage
// operation, injecting a power loss at exactly that operation, and proves
// after every single crash point that (a) no acknowledged append is lost,
// (b) no un-acknowledged append beyond the one in flight becomes visible,
// (c) the recovered index answers exact and approximate queries
// identically to a never-crashed index holding the same series, and
// (d) the recovered index accepts new appends. The remaining tests pin
// the torn-record suffix rule and that queries are never gated on an
// in-flight manifest fsync.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/storage"
)

// sweepBase is the series count of the bulk-loaded seed the crash
// workload appends on top of.
const sweepBase = 64

// sweepOptions: a deliberately tiny memtable (16 records) so the short
// append stream crosses several flushes, rotations, manifest commits, and
// segment recycles — the windows the sweep wants to crash inside of.
// Compaction is synchronous so the op sequence is deterministic.
func sweepOptions(t *testing.T, fs storage.FS) Options {
	t.Helper()
	return Options{
		FS: fs, Name: "lsm", S: tSummarizer(t), RawName: "raw",
		MemBudgetBytes: 16 * recordSize,
		Fanout:         2,
	}
}

// sweepSeed builds and cleanly closes the seed index on a fresh MemFS;
// wrapping the result in a FaultFS marks all of it durable.
func sweepSeed(t *testing.T) *storage.MemFS {
	t.Helper()
	fs := storage.NewMemFS()
	if _, err := dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), sweepBase, tLen, 42); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(sweepOptions(t, fs))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWALCrashWindowSweep(t *testing.T) {
	stream := dataset.Generate(dataset.NewSeismic(), 40, tLen, 911)
	extra := dataset.Generate(dataset.NewRandomWalk(), 1, tLen, 7777)
	queries := dataset.Queries(dataset.NewRandomWalk(), 4, tLen, 321)

	// workload reopens the seed and appends the stream one acknowledged
	// series at a time, stopping at the first injected failure. Append
	// returns only after the WAL made the series durable, so everything
	// counted in acked must survive any later crash.
	workload := func(fs storage.FS) (acked int, appendFailed bool) {
		ix, err := Open(sweepOptions(t, fs))
		if err != nil {
			// Crash during recovery itself: nothing appended, nothing acked.
			return 0, false
		}
		for i := range stream {
			if err := ix.Append(stream[i : i+1]); err != nil {
				appendFailed = true
				break
			}
			acked++
		}
		ix.Close() // fails after the injected crash; the crash is the point
		return acked, appendFailed
	}

	// Reference indexes, one per possible recovered count C: the same seed
	// plus the first C stream series, never crashed, WAL off — so its run
	// layout differs from any recovered index's, which is exactly what
	// makes the answer comparison meaningful (exact search is exact, and
	// ApproxSearch's merged window is a pure function of the record
	// multiset, so both must agree across layouts).
	refs := map[int]*Index{}
	t.Cleanup(func() {
		for _, ix := range refs {
			ix.Close()
		}
	})
	type answer struct {
		pos  int64
		dist float64
	}
	refAnswers := func(c int) []answer {
		if ix, ok := refs[c]; ok {
			_ = ix
		} else {
			fs := storage.NewMemFS()
			if _, err := dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), sweepBase, tLen, 42); err != nil {
				t.Fatal(err)
			}
			o := sweepOptions(t, fs)
			o.DisableWAL = true
			ix, err := Build(o)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < c; i++ {
				if err := ix.Append(stream[i : i+1]); err != nil {
					t.Fatal(err)
				}
			}
			if err := ix.Sync(); err != nil {
				t.Fatal(err)
			}
			refs[c] = ix
		}
		out := make([]answer, 0, 2*len(queries))
		for _, q := range queries {
			e, err := refs[c].ExactSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			a, err := refs[c].ApproxSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, answer{e.Pos, e.Dist}, answer{a.Pos, a.Dist})
		}
		return out
	}

	// Dry run: count every storage operation the un-faulted workload
	// performs. The workload is serial (each append waits for durability
	// before the next), so the op sequence is deterministic and op k in
	// the sweep below crashes the same point every time.
	dry := storage.NewFaultFS(sweepSeed(t))
	if acked, failed := workload(dry); acked != len(stream) || failed {
		t.Fatalf("dry run acked %d/%d appends (failed=%v)", acked, len(stream), failed)
	}
	total := dry.OpCount()
	if total < int64(len(stream)) {
		t.Fatalf("dry run counted only %d ops", total)
	}
	t.Logf("sweeping %d crash points over %d appends", total, len(stream))

	for k := int64(1); k <= total; k++ {
		ffs := storage.NewFaultFS(sweepSeed(t))
		ffs.PowerLossAt(k)
		acked, appendFailed := workload(ffs)
		if !ffs.Crashed() {
			t.Fatalf("fault at op %d never fired (dry run counted %d ops)", k, total)
		}
		// Vary the torn tail so crashes land mid-record too.
		rec := ffs.Recover(int(k % 7))
		re, err := Open(sweepOptions(t, rec))
		if err != nil {
			t.Fatalf("crash at op %d: reopen: %v", k, err)
		}
		c := int(re.Count()) - sweepBase
		// attempted admits the single in-flight append: its WAL record can
		// be durable even though the acknowledgment never came back.
		attempted := acked
		if appendFailed {
			attempted++
		}
		if c < acked || c > attempted {
			re.Close()
			t.Fatalf("crash at op %d: recovered %d appended series, acknowledged %d, attempted %d",
				k, c, acked, attempted)
		}
		want := refAnswers(c)
		for qi, q := range queries {
			e, err := re.ExactSearch(q)
			if err != nil {
				t.Fatalf("crash at op %d: exact query %d: %v", k, qi, err)
			}
			a, err := re.ApproxSearch(q)
			if err != nil {
				t.Fatalf("crash at op %d: approx query %d: %v", k, qi, err)
			}
			we, wa := want[2*qi], want[2*qi+1]
			if e.Pos != we.pos || e.Dist != we.dist {
				t.Fatalf("crash at op %d: exact query %d: got (%d, %v), reference (%d, %v)",
					k, qi, e.Pos, e.Dist, we.pos, we.dist)
			}
			if a.Pos != wa.pos || a.Dist != wa.dist {
				t.Fatalf("crash at op %d: approx query %d: got (%d, %v), reference (%d, %v)",
					k, qi, a.Pos, a.Dist, wa.pos, wa.dist)
			}
		}
		// The recovered index is fully live: it accepts and acknowledges
		// new durable appends.
		if err := re.Append(extra); err != nil {
			t.Fatalf("crash at op %d: append on recovered index: %v", k, err)
		}
		if got := int(re.Count()) - sweepBase; got != c+1 {
			t.Fatalf("crash at op %d: count %d after post-recovery append, want %d", k, got, c+1)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("crash at op %d: close recovered index: %v", k, err)
		}
	}
}

// TestWALRotDetectedAndRecovered: a flipped byte inside a fully-present
// WAL frame is bit-rot, not a crash artifact (a torn write only truncates,
// and torn recovery is prefix truncation), so strict replay refuses to
// open with storage.ErrCorruptData instead of silently dropping the
// acknowledged suffix. Under AllowDegraded the open succeeds and every
// acknowledged append is recovered anyway, reconstructed from the raw
// dataset (raw writes precede their log record and the image is fully
// durable here).
func TestWALTornRecordRejected(t *testing.T) {
	inner := storage.NewMemFS()
	if _, err := dataset.WriteFile(inner, "raw", dataset.NewRandomWalk(), sweepBase, tLen, 42); err != nil {
		t.Fatal(err)
	}
	ffs := storage.NewFaultFS(inner)
	o := sweepOptions(t, ffs)
	o.MemBudgetBytes = 1 << 20 // no flushes: everything lives in the WAL
	ix, err := Build(o)
	if err != nil {
		t.Fatal(err)
	}
	stream := dataset.Generate(dataset.NewSeismic(), 5, tLen, 13)
	for i := range stream {
		if err := ix.Append(stream[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Crash()
	ix.Close()

	// Intact image: every acknowledged append replays.
	check := func(rec *storage.MemFS, want int) {
		t.Helper()
		o := sweepOptions(t, rec)
		re, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		if got := int(re.Count()) - sweepBase; got != want {
			t.Fatalf("recovered %d appended series, want %d", got, want)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
	check(ffs.Recover(0), len(stream))

	// One flipped byte inside record 2's payload.
	rec := ffs.Recover(0)
	seg := walSegName("lsm", 0)
	data, err := storage.ReadFileAll(rec, seg)
	if err != nil {
		t.Fatal(err)
	}
	recLen := walRecHeaderSize + 4 + recordSize
	data[walHeaderSize+2*recLen+walRecHeaderSize+2] ^= 0xff
	if err := storage.WriteFileAll(rec, seg, data); err != nil {
		t.Fatal(err)
	}

	// Strict mode: the rot is detected, never silently dropped.
	if _, err := Open(sweepOptions(t, rec)); !errors.Is(err, storage.ErrCorruptData) {
		t.Fatalf("open over rotted WAL frame: err = %v, want ErrCorruptData", err)
	}

	// Degraded mode: open succeeds and recovers ALL acknowledged appends
	// from the raw dataset — strictly better than the old lenient replay,
	// which would have silently lost records 2..4.
	o2 := sweepOptions(t, rec)
	o2.AllowDegraded = true
	re, err := Open(o2)
	if err != nil {
		t.Fatalf("degraded open over rotted WAL frame: %v", err)
	}
	if got := int(re.Count()) - sweepBase; got != len(stream) {
		t.Fatalf("degraded recovery found %d appended series, want %d", got, len(stream))
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// The reconstruction re-logged everything into a fresh generation; a
	// plain strict reopen of the same image must now succeed.
	check(rec, len(stream))
}

// TestQueriesProceedDuringSlowManifestCommit: the manifest commit happens
// off the handle lock, so a stalled fsync of the manifest temp file (a
// slow device, here a FaultFS hook parking the sync) must not gate
// searches.
func TestQueriesProceedDuringSlowManifestCommit(t *testing.T) {
	inner := storage.NewMemFS()
	if _, err := dataset.WriteFile(inner, "raw", dataset.NewRandomWalk(), 200, tLen, 42); err != nil {
		t.Fatal(err)
	}
	ffs := storage.NewFaultFS(inner)
	var arm atomic.Bool
	block := make(chan struct{})
	var relOnce sync.Once
	release := func() { relOnce.Do(func() { close(block) }) }
	defer release()
	entered := make(chan struct{}, 1)
	tmpName := manifest.FileName("lsm") + ".tmp"
	ffs.SetHook(func(op storage.Op, name string) {
		if op == storage.OpSync && name == tmpName && arm.Load() {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-block
		}
	})
	o := sweepOptions(t, ffs)
	o.MemBudgetBytes = 1 << 20
	ix, err := Build(o)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	batch := dataset.Generate(dataset.NewSeismic(), 10, tLen, 3)
	if err := ix.Append(batch); err != nil {
		t.Fatal(err)
	}
	q := batch[0]
	want, err := ix.ExactSearch(q)
	if err != nil {
		t.Fatal(err)
	}

	arm.Store(true)
	flushDone := make(chan error, 1)
	go func() { flushDone <- ix.Flush() }()
	<-entered // the flush is now parked inside the manifest fsync

	qDone := make(chan error, 1)
	var got Result
	go func() {
		var err error
		got, err = ix.ExactSearch(q)
		qDone <- err
	}()
	select {
	case err := <-qDone:
		if err != nil {
			release()
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		release()
		t.Fatal("ExactSearch blocked behind an in-flight manifest commit")
	}
	release()
	if err := <-flushDone; err != nil {
		t.Fatal(err)
	}
	if got.Pos != want.Pos || got.Dist != want.Dist {
		t.Fatalf("query during commit answered (%d, %v), want (%d, %v)",
			got.Pos, got.Dist, want.Pos, want.Dist)
	}
}
