package lsm

import (
	"sort"

	"github.com/coconut-db/coconut/internal/summary"
)

// This file is the run storage-backend seam. A run is either legacy —
// whole key/position arrays resident in memory (r.keys, r.positions) — or
// block-compressed: r.rb holds a runblock.Reader (a tiny block directory
// over the on-disk file) and key data is decoded block by block through
// the shared cache, so resident memory stays bounded by the cache budget
// no matter how large the run is. Every query path goes through these
// methods; the in-memory backend presents its arrays as one big block, so
// the two backends traverse records in the same order and answers are
// byte-identical by construction.

// compressed reports whether the run uses the block-compressed backend.
func (r *run) compressed() bool { return r.rb != nil }

// minKey returns the run's smallest key. Only valid when count > 0.
func (r *run) minKey() summary.Key {
	if r.rb != nil {
		return r.rb.MinKey()
	}
	return r.keys[0]
}

// maxKey returns the run's largest key. Only valid when count > 0.
func (r *run) maxKey() summary.Key {
	if r.rb != nil {
		return r.rb.MaxKey()
	}
	return r.keys[len(r.keys)-1]
}

// searchKey returns the insertion index of key in the run's sorted key
// sequence: the smallest i with key <= keys[i], or count when every key
// is smaller. The compressed backend decodes at most one block.
func (r *run) searchKey(key summary.Key) (int64, error) {
	if r.rb != nil {
		return r.rb.Search(key)
	}
	return int64(sort.Search(len(r.keys), func(i int) bool { return !r.keys[i].Less(key) })), nil
}

// each streams records [lo, hi) in order (bounds clamped), decoding only
// the touched blocks on the compressed backend.
func (r *run) each(lo, hi int64, fn func(key summary.Key, pos int64) error) error {
	if r.rb != nil {
		return r.rb.Range(lo, hi, fn)
	}
	if lo < 0 {
		lo = 0
	}
	if hi > int64(len(r.keys)) {
		hi = int64(len(r.keys))
	}
	for i := lo; i < hi; i++ {
		if err := fn(r.keys[i], r.positions[i]); err != nil {
			return err
		}
	}
	return nil
}

// eachBlock yields the run's records as consecutive (keys, positions)
// batches — the unit the exact-search lower-bound pass and the coverage
// scans consume. The in-memory backend yields its whole arrays as a
// single batch; the compressed backend yields one decoded block at a
// time (through the shared cache), so a full-run scan never materializes
// the whole run.
func (r *run) eachBlock(fn func(keys []summary.Key, positions []int64) error) error {
	if r.rb == nil {
		if len(r.keys) == 0 {
			return nil
		}
		return fn(r.keys, r.positions)
	}
	for b := 0; b < r.rb.NumBlocks(); b++ {
		blk, err := r.rb.Block(b)
		if err != nil {
			return err
		}
		if err := fn(blk.Keys, blk.Pos); err != nil {
			return err
		}
	}
	return nil
}

// close releases the compressed backend's file handle and drops its
// cached blocks. No-op for the in-memory backend (whose file was closed
// right after the load).
func (r *run) close() error {
	if r.rb == nil {
		return nil
	}
	err := r.rb.Close()
	r.rb = nil
	return err
}

// closeRunsLocked closes every run's backend, keeping the first error —
// the teardown half of the open/swap lifecycle.
func (ix *Index) closeRunsLocked() error {
	var first error
	for _, r := range ix.runs {
		if err := r.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
