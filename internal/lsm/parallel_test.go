package lsm

import (
	"bytes"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// buildParallelFixture builds an index over the shared dataset with the
// given worker count, then streams extra batches through Append + Flush so
// compactions happen. The summarizer is deliberately coarse (2 segments x
// 2 bits: 16 distinct keys) so runs are full of comparator ties, and the
// budget/fanout combination (1 MiB budget, 256 KiB merge buffers, fanout 4
// > final fan-in 3) forces a multi-pass compaction whose merge grouping
// differs between worker counts — the hardest case for determinism.
func buildParallelFixture(t *testing.T, workers int) (*Index, *storage.MemFS) {
	t.Helper()
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 2, CardBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(Options{
		FS:             fs,
		Name:           "lsm",
		S:              s,
		RawName:        "raw",
		MemBudgetBytes: 1 << 20,
		Fanout:         4,
		Window:         40,
		Workers:        workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := dataset.Generate(gen, 300, tLen, 7)
	for lo := 0; lo < len(stream); lo += 50 {
		if err := ix.Append(stream[lo : lo+50]); err != nil {
			t.Fatal(err)
		}
		if err := ix.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return ix, fs
}

// TestParallelBuildDeterministic: Workers must be invisible in the result —
// identical run files on the device and identical search answers.
func TestParallelBuildDeterministic(t *testing.T) {
	ix1, fs1 := buildParallelFixture(t, 1)
	defer ix1.Close()
	ix8, fs8 := buildParallelFixture(t, 8)
	defer ix8.Close()

	if ix1.NumRuns() != ix8.NumRuns() {
		t.Fatalf("run counts differ: workers=1 has %d, workers=8 has %d", ix1.NumRuns(), ix8.NumRuns())
	}
	for i := range ix1.runs {
		r1, r8 := ix1.runs[i], ix8.runs[i]
		if r1.name != r8.name || r1.tier != r8.tier || r1.count != r8.count {
			t.Fatalf("run %d metadata differs: %+v vs %+v", i, r1, r8)
		}
		b1, err := storage.ReadFileAll(fs1, r1.name)
		if err != nil {
			t.Fatal(err)
		}
		b8, err := storage.ReadFileAll(fs8, r8.name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b8) {
			t.Fatalf("run file %q differs between workers=1 and workers=8", r1.name)
		}
	}

	queries := dataset.Queries(dataset.NewRandomWalk(), 10, tLen, 99)
	for qi, q := range queries {
		q = append(series.Series(nil), q...).ZNormalize()
		e1, err := ix1.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		e8, err := ix8.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if e1.Pos != e8.Pos || e1.Dist != e8.Dist {
			t.Fatalf("query %d: exact answers differ: %+v vs %+v", qi, e1, e8)
		}
		a1, err := ix1.ApproxSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		a8, err := ix8.ApproxSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if a1.Pos != a8.Pos || a1.Dist != a8.Dist {
			t.Fatalf("query %d: approx answers differ: %+v vs %+v", qi, a1, a8)
		}
	}
}
