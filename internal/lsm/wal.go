// Write-ahead log for the LSM write path.
//
// Append/AppendEntries encode (key, position) records into the active WAL
// segment and return only after the segment — and the raw bytes the
// positions reference — are fsynced. Concurrent appenders amortize one
// fsync via GROUP COMMIT: each appender logs its record under the handle
// lock, releases it, and waits; a committer goroutine syncs the raw file
// and then the segment once for the whole batch and releases every waiter
// it covered. Syncing the raw file first is load-bearing: a WAL record is
// only ever durable after the raw series bytes its positions point at.
//
// Segments are recycled off the durable flush cursor: a flush covers
// every logged entry with a run, advances the cursor, rotates to a fresh
// segment, and deletes the covered ones once the manifest commit lands.
// lsm.Open replays the segments named by the manifest into the memtable,
// skipping entries below the cursor, stopping a segment at the first torn
// record (CRC mismatch) or at the first entry whose raw bytes never
// reached stable storage — per-segment positions are monotone, so either
// condition un-acknowledges exactly a suffix.
package lsm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

const (
	walMagic   uint32 = 0x4C574343 // "CCWL" little-endian
	walVersion uint32 = 1
	// walHeaderSize is magic + version + start LSN.
	walHeaderSize = 16
	// walRecHeaderSize is payload length + CRC32-C.
	walRecHeaderSize = 8
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walSegName names WAL segment seg of the index name.
func walSegName(name string, seg int) string {
	return fmt.Sprintf("%s.wal.%06d", name, seg)
}

// wal owns the active segment file and the group-commit machinery. The
// LSN counters that recovery needs (flush cursor, segment range) live on
// the Index under ix.mu — they go into every manifest even when the WAL
// is disabled — while the wal tracks the durable watermark its waiters
// block on.
type wal struct {
	fs   storage.FS
	name string
	// raw is the handle whose un-synced appends the positions in this log
	// reference; it is synced before every segment sync.
	raw storage.File

	mu   sync.Mutex
	cond *sync.Cond
	f    storage.File // active segment
	seg  int
	size int64 // next sequential write offset in the active segment
	// appended is the LSN after the last logged entry; durable is the LSN
	// up to which entries survive a power loss (group-committed into the
	// segment, or covered by a flushed run).
	appended int64
	durable  int64
	// syncing counts syncs in flight against the active segment file;
	// rotation waits them out before closing the file.
	syncing int
	err     error // sticky: a torn segment write poisons the log
	quit    bool

	// window optionally stretches each group commit to admit more
	// waiters; syncEach replaces the committer with per-append fsyncs
	// (the benchmark baseline group commit is measured against).
	window   time.Duration
	syncEach bool
	syncMu   sync.Mutex
	wg       sync.WaitGroup
}

// createWALSegment creates the segment file and writes its header. The
// header is not synced: a segment missing or torn at replay time simply
// contains no acknowledged entries.
func createWALSegment(fs storage.FS, name string, seg int, startLSN int64) (storage.File, int64, error) {
	f, err := fs.Create(walSegName(name, seg))
	if err != nil {
		return nil, 0, err
	}
	hdr := make([]byte, 0, walHeaderSize)
	hdr = binary.LittleEndian.AppendUint32(hdr, walMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, walVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(startLSN))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, walHeaderSize, nil
}

// newWAL adopts an already-created segment file (everything in it is
// known durable — Open syncs the re-logged recovery record before
// handing the file over) and starts the committer.
func newWAL(fs storage.FS, name string, raw, f storage.File, seg int, size, appended int64, window time.Duration, syncEach bool) *wal {
	w := &wal{
		fs: fs, name: name, raw: raw,
		f: f, seg: seg, size: size,
		appended: appended, durable: appended,
		window: window, syncEach: syncEach,
	}
	w.cond = sync.NewCond(&w.mu)
	if !syncEach {
		w.wg.Add(1)
		go w.committer()
	}
	return w
}

// encodeWALRecord frames one record: length, CRC32-C, then a count-
// prefixed array of (key, position) entries.
func encodeWALRecord(entries []Entry) []byte {
	payload := make([]byte, 0, 4+len(entries)*recordSize)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(entries)))
	for _, e := range entries {
		payload = append(payload, e.Key[:]...)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(e.Pos))
	}
	rec := make([]byte, 0, walRecHeaderSize+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, walCRC))
	return append(rec, payload...)
}

// log appends one record to the active segment and wakes the committer.
// Callers hold ix.mu (which is what orders LSN assignment); the returned
// end LSN is what waitDurable blocks on after ix.mu is released.
func (w *wal) log(entries []Entry) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.quit {
		return 0, errors.New("lsm: wal is closed")
	}
	rec := encodeWALRecord(entries)
	if _, err := w.f.WriteAt(rec, w.size); err != nil {
		// The segment tail may now be torn; nothing after it could be
		// replayed, so the whole log is poisoned.
		w.err = err
		w.cond.Broadcast()
		return 0, err
	}
	w.size += int64(len(rec))
	w.appended += int64(len(entries))
	w.cond.Broadcast()
	return w.appended, nil
}

// waitDurable blocks until every entry with LSN <= lsn is durable — group
// commit released the batch, or a flush covered it with a run.
func (w *wal) waitDurable(lsn int64) error {
	return w.waitDurableCtx(context.Background(), lsn)
}

// waitDurableCtx is waitDurable with cancellation: a done context wakes
// the waiter (via an AfterFunc broadcast) and it returns ctx.Err(). The
// abandoned wait has no effect on the group commit — the committer still
// fsyncs the batch, so the caller's entries become durable anyway; the
// caller merely stops being told about it.
func (w *wal) waitDurableCtx(ctx context.Context, lsn int64) error {
	if w.syncEach {
		// The per-append-fsync baseline performs the sync inline; it is not
		// interruptible mid-fsync, matching the admission-control contract.
		return w.syncTo(lsn)
	}
	if done := ctx.Done(); done != nil {
		stop := context.AfterFunc(ctx, func() {
			w.mu.Lock()
			w.cond.Broadcast()
			w.mu.Unlock()
		})
		defer stop()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < lsn && w.err == nil && !w.quit && ctx.Err() == nil {
		w.cond.Wait()
	}
	if w.durable >= lsn {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if w.err != nil {
		return w.err
	}
	return errors.New("lsm: wal closed before append became durable")
}

// committer is the group-commit goroutine: whenever logged entries are
// waiting, it syncs the raw file and then the active segment ONCE and
// releases every waiter at or below the covered LSN. Appenders that
// arrive while a sync is in flight pile up and ride the next one — the
// batching that amortizes fsync across concurrent appenders.
func (w *wal) committer() {
	defer w.wg.Done()
	w.mu.Lock()
	for {
		for !w.quit && w.err == nil && w.durable >= w.appended {
			w.cond.Wait()
		}
		if w.quit {
			w.mu.Unlock()
			return
		}
		if w.err != nil {
			w.cond.Wait()
			continue
		}
		// Rotation waits for syncing to clear and log/flush hold ix.mu, so
		// the file cannot change under a marked sync.
		w.syncing++
		f, raw := w.f, w.raw
		w.mu.Unlock()
		if w.window > 0 {
			time.Sleep(w.window)
		}
		w.mu.Lock()
		target := w.appended
		w.mu.Unlock()
		err := raw.Sync()
		if err == nil {
			err = f.Sync()
		}
		w.mu.Lock()
		w.syncing--
		if err != nil {
			if w.err == nil {
				w.err = err
			}
		} else if target > w.durable {
			w.durable = target
		}
		w.cond.Broadcast()
	}
}

// syncTo is the per-append-fsync baseline (Options.WALSyncEveryAppend):
// the appender itself syncs raw + segment, serialized on syncMu the way
// fsyncs serialize on one device. Every append issues its own fsync pair
// even when a concurrent appender's sync already covered it — no
// coalescing is the point of the baseline group commit is measured
// against.
func (w *wal) syncTo(lsn int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.syncing++
	f, raw := w.f, w.raw
	target := w.appended
	w.mu.Unlock()
	err := raw.Sync()
	if err == nil {
		err = f.Sync()
	}
	w.mu.Lock()
	w.syncing--
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else if target > w.durable {
		w.durable = target
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// syncActive fsyncs the active segment if it holds any records. Flush
// calls it before advancing the durable flush cursor, which establishes
// the invariant recovery and recycling lean on: every non-active segment
// is fully durable. Without it, markFlushed would release group-commit
// waiters on the strength of a run whose covering manifest is not yet
// committed, while the segment that actually names their entries was
// never fsynced — a power loss in that window would lose acknowledged
// writes. It also means rotation to segment N+1 implies segment N is
// durable, so a replayer can treat a missing segment as empty rather
// than as a hole. Called with ix.mu held.
func (w *wal) syncActive() error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.size == walHeaderSize {
		w.mu.Unlock()
		return nil
	}
	w.syncing++
	f := w.f
	target := w.appended
	w.mu.Unlock()
	// The raw bytes these records reference were synced by the caller
	// (flush syncs the raw file before writing the run), so only the
	// segment itself needs to reach stable storage.
	err := f.Sync()
	w.mu.Lock()
	w.syncing--
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else if target > w.durable {
		w.durable = target
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// markFlushed advances the durable watermark after a flush: every logged
// entry at LSN < lsn is now covered by a durable run, so group-commit
// waiters at or below it are released without an extra segment sync.
// Called with ix.mu held.
func (w *wal) markFlushed(lsn int64) {
	w.mu.Lock()
	if lsn > w.durable {
		w.durable = lsn
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// rotate closes the active segment and starts a fresh one whose first
// entry will be startLSN. Called with ix.mu held, after markFlushed has
// released every waiter — so the only thing to wait out is a sync already
// in flight against the old file.
func (w *wal) rotate(seg int, startLSN int64) error {
	w.mu.Lock()
	for w.syncing > 0 {
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	f, size, err := createWALSegment(w.fs, w.name, seg, startLSN)
	if err != nil {
		w.err = err
		w.cond.Broadcast()
		w.mu.Unlock()
		return err
	}
	old := w.f
	w.f, w.seg, w.size = f, seg, size
	w.mu.Unlock()
	return old.Close()
}

// activeEmpty reports whether the active segment holds no records (a
// flush with nothing logged since the last rotation skips rotating).
func (w *wal) activeEmpty() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size == walHeaderSize
}

// close stops the committer and closes the active segment. Flush-on-close
// has already released every waiter; any waiter left by an earlier error
// is woken by the quit broadcast.
func (w *wal) close() error {
	w.mu.Lock()
	if w.quit {
		w.mu.Unlock()
		return nil
	}
	w.quit = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walReplay scans segments from firstSeg in order and applies every
// recoverable entry with LSN >= flushed. It reads past nextSeg as long as
// segment files exist: a crash inside a flush's commit window can leave
// acknowledged entries in a freshly-rotated segment the durable manifest
// does not reference yet (segment numbers are monotone and Open removes
// stale higher-numbered files, so an existing one is always the next
// generation). rawRecs is the number of records the recovered raw file
// holds; an entry whose position lies beyond it references raw bytes that
// never reached stable storage, so it — and, positions being monotone
// within a segment, everything after it — was never acknowledged. A
// missing segment (created but never synced), a torn header, or a torn
// record likewise ends that segment's acknowledged prefix.
//
// Replay is strict about the difference between a crash artifact and
// bit-rot. A crash truncates: it can only shorten what a frame claims to
// contain (torn header, frame extent past EOF, entry positions past the
// recovered raw file). Those end the acknowledged prefix silently. But a
// FULLY-PRESENT frame whose CRC does not match — or a complete header
// with a wrong magic, or an impossible length field — cannot be produced
// by losing a write suffix: the bytes exist and were never valid, so the
// medium corrupted them after the fact. That is typed
// storage.ErrCorruptData and fails replay loudly, because silently
// dropping the frame would also drop every acknowledged entry after it.
// Returns the LSN after the last recovered entry.
func walReplay(fs storage.FS, name string, firstSeg, nextSeg int, flushed, rawRecs int64, apply func(Entry)) (int64, error) {
	last := flushed
	for seg := firstSeg; seg < nextSeg || fs.Exists(walSegName(name, seg)); seg++ {
		data, err := storage.ReadFileAll(fs, walSegName(name, seg))
		if err != nil {
			if errors.Is(err, storage.ErrNotExist) {
				continue
			}
			return 0, err
		}
		lsn, err := walScanSegment(data, seg, flushed, rawRecs, apply)
		if err != nil {
			return 0, err
		}
		if lsn > last {
			last = lsn
		}
	}
	return last, nil
}

// walScanSegment applies one segment's recoverable entries (see walReplay
// for the torn-vs-rot contract) and returns the LSN after the last one.
func walScanSegment(data []byte, seg int, flushed, rawRecs int64, apply func(Entry)) (int64, error) {
	if len(data) < walHeaderSize {
		// Torn header: the segment was created but its first write
		// never completed; nothing in it was acknowledged.
		return flushed, nil
	}
	if binary.LittleEndian.Uint32(data) != walMagic ||
		binary.LittleEndian.Uint32(data[4:]) != walVersion {
		return 0, fmt.Errorf("lsm: wal segment %d: bad header: %w", seg, storage.ErrCorruptData)
	}
	lsn := int64(binary.LittleEndian.Uint64(data[8:]))
	off := int64(walHeaderSize)
records:
	for off+walRecHeaderSize <= int64(len(data)) {
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen < 4 {
			// The length field is present in full, and no writer ever
			// logs a frame shorter than its count word — rot.
			return 0, fmt.Errorf("lsm: wal segment %d: impossible frame length %d: %w",
				seg, plen, storage.ErrCorruptData)
		}
		if off+walRecHeaderSize+plen > int64(len(data)) {
			// Frame extent past EOF: a torn write; the frame was never
			// acknowledged.
			break
		}
		payload := data[off+walRecHeaderSize : off+walRecHeaderSize+plen]
		if crc32.Checksum(payload, walCRC) != sum {
			return 0, fmt.Errorf("lsm: wal segment %d: frame CRC mismatch at offset %d: %w",
				seg, off, storage.ErrCorruptData)
		}
		count := int64(binary.LittleEndian.Uint32(payload))
		if count*recordSize != plen-4 {
			return 0, fmt.Errorf("lsm: wal segment %d: frame claims %d records in %d payload bytes: %w",
				seg, count, plen-4, storage.ErrCorruptData)
		}
		for i := int64(0); i < count; i++ {
			rec := payload[4+i*recordSize:]
			if lsn < flushed {
				lsn++
				continue
			}
			pos := int64(binary.LittleEndian.Uint64(rec[summary.KeySize:]))
			if pos < 0 || pos >= rawRecs {
				break records
			}
			var e Entry
			copy(e.Key[:], rec[:summary.KeySize])
			e.Pos = pos
			apply(e)
			lsn++
		}
		off += walRecHeaderSize + plen
	}
	if lsn < flushed {
		lsn = flushed
	}
	return lsn, nil
}

// WALSegmentName names WAL segment seg of the index name (exported for
// the scrub walk).
func WALSegmentName(name string, seg int) string { return walSegName(name, seg) }

// VerifyWALSegment checks one WAL segment's frame structure and CRCs:
// every fully-present frame must validate. Torn tails and missing files
// are crash artifacts, not corruption, and pass. Returns the number of
// acknowledged entries scanned.
func VerifyWALSegment(fs storage.FS, name string, seg int) (int64, error) {
	data, err := storage.ReadFileAll(fs, walSegName(name, seg))
	if err != nil {
		if errors.Is(err, storage.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	var n int64
	if _, err := walScanSegment(data, seg, 0, int64(^uint64(0)>>1), func(Entry) { n++ }); err != nil {
		return n, err
	}
	return n, nil
}
