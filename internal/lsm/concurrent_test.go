package lsm

// Concurrency stress test for the LSM handle: queries of both flavors
// overlap with an appender whose batches force memtable flushes and tier
// compactions — the heaviest mutation the handle lock has to serialize
// (the LSM counterpart of the tree's SIMS-refresh lock). Run with -race.

import (
	"sync"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

func TestConcurrentLSMQueriesWithAppend(t *testing.T) {
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(Options{
		FS:      fs,
		Name:    "lsm",
		S:       s,
		RawName: "raw",
		// Tiny memtable (~170 records) + fanout 2: the appender below
		// triggers many flushes and multi-tier compactions mid-query.
		MemBudgetBytes: 4 << 10,
		Fanout:         2,
		Workers:        2,
		QueryWorkers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	qs := dataset.Queries(gen, 5, tLen, 47)
	stream := dataset.Generate(gen, 600, tLen, 53)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := qs[g%len(qs)]
			for it := 0; it < 4; it++ {
				if it%2 == 0 {
					if _, err := ix.ExactSearch(q); err != nil {
						errs <- err
						return
					}
				} else if _, err := ix.ApproxSearch(q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(stream); lo += 100 {
			if err := ix.Append(stream[lo : lo+100]); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := ix.Count(); got != tCount+int64(len(stream)) {
		t.Fatalf("Count = %d after concurrent appends, want %d", got, tCount+int64(len(stream)))
	}
	// Every appended series must be findable once the dust settles.
	res, err := ix.ExactSearch(stream[123])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("appended series lost during concurrent load: dist=%v", res.Dist)
	}
}
