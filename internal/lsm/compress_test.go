package lsm

import (
	"fmt"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
)

// buildPair builds the same dataset twice — once uncompressed, once
// block-compressed behind a deliberately tiny cache (a handful of blocks:
// the key arrays cannot fit, so every query decodes on demand) — and
// returns both handles plus the compressed side's FS for reopen tests.
func buildPair(t *testing.T, checksums bool, memBudget int64) (plain, comp *Index, compFS *storage.MemFS, data []series.Series) {
	t.Helper()
	gen := dataset.NewRandomWalk()
	data = dataset.Generate(gen, tCount, tLen, 42)
	mk := func(compressed bool) (*Index, *storage.MemFS) {
		fs := storage.NewMemFS()
		if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
			t.Fatal(err)
		}
		opt := Options{
			FS:             fs,
			Name:           "lsm",
			S:              tSummarizer(t),
			RawName:        "raw",
			MemBudgetBytes: memBudget,
			Fanout:         3,
			Window:         40,
			Checksums:      checksums,
			Compressed:     compressed,
		}
		if compressed {
			// ~2 decoded blocks resident: far below the full key set.
			opt.Cache = blockcache.New(64 << 10)
		}
		ix, err := Build(opt)
		if err != nil {
			t.Fatal(err)
		}
		return ix, fs
	}
	plain, _ = mk(false)
	comp, compFS = mk(true)
	return plain, comp, compFS, data
}

// requireSameAnswers runs approximate, exact, and window queries against
// both handles and requires byte-identical results.
func requireSameAnswers(t *testing.T, plain, comp *Index) {
	t.Helper()
	qs := dataset.Queries(dataset.NewRandomWalk(), 10, tLen, 9)
	for qi, q := range qs {
		ar1, err1 := plain.ApproxSearch(q)
		ar2, err2 := comp.ApproxSearch(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d approx: %v / %v", qi, err1, err2)
		}
		if ar1.Pos != ar2.Pos || ar1.Dist != ar2.Dist {
			t.Fatalf("query %d approx diverges: (%d, %v) vs (%d, %v)",
				qi, ar1.Pos, ar1.Dist, ar2.Pos, ar2.Dist)
		}
		er1, err1 := plain.ExactSearch(q)
		er2, err2 := comp.ExactSearch(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d exact: %v / %v", qi, err1, err2)
		}
		if er1.Pos != er2.Pos || er1.Dist != er2.Dist {
			t.Fatalf("query %d exact diverges: (%d, %v) vs (%d, %v)",
				qi, er1.Pos, er1.Dist, er2.Pos, er2.Dist)
		}
		w1, err1 := plain.ApproxWindowCands(q)
		w2, err2 := comp.ApproxWindowCands(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d window: %v / %v", qi, err1, err2)
		}
		if len(w1.Below) != len(w2.Below) || len(w1.Above) != len(w2.Above) {
			t.Fatalf("query %d window sizes diverge: %d/%d vs %d/%d",
				qi, len(w1.Below), len(w1.Above), len(w2.Below), len(w2.Above))
		}
		for i := range w1.Below {
			if w1.Below[i].Key != w2.Below[i].Key || w1.Below[i].Pos != w2.Below[i].Pos {
				t.Fatalf("query %d window below[%d] diverges", qi, i)
			}
		}
		for i := range w1.Above {
			if w1.Above[i].Key != w2.Above[i].Key || w1.Above[i].Pos != w2.Above[i].Pos {
				t.Fatalf("query %d window above[%d] diverges", qi, i)
			}
		}
	}
}

// TestCompressedConformance: every query answer from a block-compressed
// index — bulk-built, then grown through append/flush/compaction — must be
// byte-identical to the in-memory layout's, with and without the checksum
// layer underneath, with the cache too small to hold the key set.
func TestCompressedConformance(t *testing.T) {
	for _, checksums := range []bool{false, true} {
		t.Run(fmt.Sprintf("checksums=%v", checksums), func(t *testing.T) {
			plain, comp, _, data := buildPair(t, checksums, 1<<20)
			defer plain.Close()
			defer comp.Close()
			if comp.Count() != tCount {
				t.Fatalf("Count = %d", comp.Count())
			}
			// No run key array may be resident on the compressed side.
			for _, r := range comp.runs {
				if !r.compressed() || r.keys != nil || r.positions != nil {
					t.Fatal("compressed index materialized a run key array")
				}
			}
			requireSameAnswers(t, plain, comp)

			// Grow both through the memtable → flush → compaction path.
			extra := dataset.Generate(dataset.NewRandomWalk(), 200, tLen, 77)
			for _, ix := range []*Index{plain, comp} {
				for i := 0; i < len(extra); i += 20 {
					if err := ix.Append(extra[i : i+20]); err != nil {
						t.Fatal(err)
					}
					if err := ix.Flush(); err != nil {
						t.Fatal(err)
					}
				}
				if err := ix.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			_ = data
			requireSameAnswers(t, plain, comp)
			if st := comp.CacheStats(); st.Hits+st.Misses == 0 {
				t.Fatal("compressed queries never touched the block cache")
			}
			if st := plain.CacheStats(); st != (blockcache.Stats{}) {
				t.Fatalf("uncompressed index reports cache stats %+v", st)
			}
		})
	}
}

// TestCompressedReopen: closing and reopening a compressed index adopts
// the manifest's Compressed flag (the caller does not pass it) and keeps
// answers byte-identical; the reopened runs stay block-backed.
func TestCompressedReopen(t *testing.T) {
	plain, comp, compFS, _ := buildPair(t, true, 1<<20)
	defer plain.Close()
	extra := dataset.Generate(dataset.NewRandomWalk(), 100, tLen, 77)
	// Grow the plain side identically before comparing post-reopen.
	growth := func(ix *Index) {
		for i := 0; i < len(extra); i += 20 {
			if err := ix.Append(extra[i : i+20]); err != nil {
				t.Fatal(err)
			}
			if err := ix.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := ix.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	growth(plain)
	growth(comp)
	if err := comp.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(Options{
		FS:             compFS,
		Name:           "lsm",
		S:              tSummarizer(t),
		MemBudgetBytes: 1 << 20,
		Window:         40,
		Cache:          blockcache.New(64 << 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if !reopened.opt.Compressed {
		t.Fatal("reopen did not adopt the Compressed flag")
	}
	for _, r := range reopened.runs {
		if !r.compressed() || r.keys != nil {
			t.Fatal("reopened run materialized its key array")
		}
	}
	requireSameAnswers(t, plain, reopened)
}

// TestCompressedRebuildQuarantined: corrupt one compressed run file; a
// degraded reopen quarantines it, and RebuildQuarantined re-derives the
// lost records from the raw dataset into a fresh compressed run with
// byte-identical answers.
func TestCompressedRebuildQuarantined(t *testing.T) {
	plain, comp, compFS, _ := buildPair(t, true, 1<<14) // small memtable: several runs
	defer plain.Close()
	if err := comp.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the first run file's payload.
	name := "lsm.run.000000"
	b, err := storage.ReadFileAll(compFS, name)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := storage.WriteFileAtomic(compFS, name, b); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(Options{
		FS:             compFS,
		Name:           "lsm",
		S:              tSummarizer(t),
		MemBudgetBytes: 1 << 14,
		Window:         40,
		AllowDegraded:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if !reopened.Degraded() {
		t.Fatal("corrupt compressed run not quarantined")
	}
	if err := reopened.RebuildQuarantined(); err != nil {
		t.Fatal(err)
	}
	if reopened.Degraded() {
		t.Fatal("still degraded after rebuild")
	}
	if reopened.Count() != tCount {
		t.Fatalf("Count = %d after rebuild", reopened.Count())
	}
	requireSameAnswers(t, plain, reopened)
}
