package lsm

// Tests for the background compaction scheduler: determinism of the
// quiesced on-disk state across compaction-worker counts, crash-safe fault
// handling (errors surface, no leaked temporaries), backpressure, and a
// -race stress mix of appends, flushes, and queries over live compactions.

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// buildStreamed builds an index over the shared dataset and streams extra
// batches through Append (+ periodic Flush) so many flushes and multi-tier
// compactions happen, then quiesces with Sync. background/workers select
// the compaction mode under test.
func buildStreamed(t *testing.T, background bool, compactionWorkers int) (*Index, *storage.MemFS) {
	t.Helper()
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(Options{
		FS:      fs,
		Name:    "lsm",
		S:       tSummarizer(t),
		RawName: "raw",
		// Tiny memtable: every 50-series batch flushes several times, and
		// fanout 2 cascades compactions across multiple tiers.
		MemBudgetBytes:       32 * recordSize,
		Fanout:               2,
		Workers:              2,
		BackgroundCompaction: background,
		CompactionWorkers:    compactionWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := dataset.Generate(gen, 400, tLen, 7)
	for lo := 0; lo < len(stream); lo += 50 {
		if err := ix.Append(stream[lo : lo+50]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	return ix, fs
}

// fsState captures the quiesced on-disk state: every file name and its
// exact bytes.
func fsState(t *testing.T, fs *storage.MemFS) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range fs.Names() {
		b, err := storage.ReadFileAll(fs, name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = b
	}
	return out
}

// TestBackgroundCompactionDeterministic: after Sync, the on-disk runs (and
// the in-memory run metadata) must be byte-identical whether compactions
// ran synchronously, on one background worker, or on four — scheduling must
// be invisible at quiescence points.
func TestBackgroundCompactionDeterministic(t *testing.T) {
	ixSync, fsSync := buildStreamed(t, false, 0)
	defer ixSync.Close()
	ref := fsState(t, fsSync)

	for _, workers := range []int{1, 4} {
		ix, fs := buildStreamed(t, true, workers)
		got := fsState(t, fs)
		if len(got) != len(ref) {
			t.Fatalf("compaction-workers=%d: %d files, synchronous left %d\n got: %v\nwant: %v",
				workers, len(got), len(ref), fs.Names(), fsSync.Names())
		}
		for name, want := range ref {
			if !bytes.Equal(got[name], want) {
				t.Fatalf("compaction-workers=%d: file %q differs from synchronous state", workers, name)
			}
		}
		if ix.NumRuns() != ixSync.NumRuns() {
			t.Fatalf("compaction-workers=%d: %d runs vs %d synchronous", workers, ix.NumRuns(), ixSync.NumRuns())
		}
		for i := range ix.runs {
			r, w := ix.runs[i], ixSync.runs[i]
			if r.name != w.name || r.tier != w.tier || r.count != w.count || r.seq != w.seq || r.tierSeq != w.tierSeq {
				t.Fatalf("compaction-workers=%d: run %d metadata %+v vs synchronous %+v", workers, i, r, w)
			}
		}
		// Same answers too.
		q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 9)[0]
		a, err := ix.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ixSync.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Pos != b.Pos || a.Dist != b.Dist {
			t.Fatalf("compaction-workers=%d: answer (%d, %v) vs synchronous (%d, %v)",
				workers, a.Pos, a.Dist, b.Pos, b.Dist)
		}
		ix.Close()
	}
}

// TestBackgroundCompactionFaultSurfaced: a write failure inside a
// background compaction must surface on a subsequent Append/Flush/Sync and
// on Close, leave no .compact temporaries or partial compaction outputs
// behind, and keep the input runs (no data loss).
func TestBackgroundCompactionFaultSurfaced(t *testing.T) {
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected compaction failure")
	ix, err := Build(Options{
		FS:                   fs,
		Name:                 "lsm",
		S:                    tSummarizer(t),
		RawName:              "raw",
		MemBudgetBytes:       32 * recordSize,
		Fanout:               2,
		BackgroundCompaction: true,
		CompactionWorkers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fail every write touching a compaction output (or its temps) from now
	// on; flush runs (lsm.run.*) and the raw file stay healthy.
	fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
		if op == storage.OpWrite && strings.Contains(name, ".cmp.") {
			return boom
		}
		return nil
	})
	stream := dataset.Generate(gen, 300, tLen, 7)
	var opErr error
	for lo := 0; lo < len(stream); lo += 50 {
		if opErr = ix.Append(stream[lo : lo+50]); opErr != nil {
			break
		}
	}
	if opErr == nil {
		opErr = ix.Sync()
	}
	if !errors.Is(opErr, boom) {
		t.Fatalf("background failure did not surface on Append/Sync: %v", opErr)
	}
	// Sticky: the handle refuses further writes with the same error.
	if err := ix.Append(stream[:1]); !errors.Is(err, boom) {
		t.Fatalf("error not sticky on Append: %v", err)
	}
	// Close surfaces it too (and still shuts the pool down cleanly).
	if err := ix.Close(); !errors.Is(err, boom) {
		t.Fatalf("error not surfaced on Close: %v", err)
	}
	// No leaked temporaries, no partial compaction outputs: extsort removes
	// its .compact intermediates and the partial output on error.
	for _, name := range fs.Names() {
		if strings.Contains(name, ".compact") || strings.Contains(name, ".cmp.") {
			t.Fatalf("leaked compaction temporary %q (files: %v)", name, fs.Names())
		}
	}
	// The claimed input runs are still on disk: nothing was lost.
	fs.SetFault(nil)
	var onDisk int64
	for _, r := range ix.runs {
		b, err := storage.ReadFileAll(fs, r.name)
		if err != nil {
			t.Fatalf("input run %q lost after failed compaction: %v", r.name, err)
		}
		onDisk += int64(len(b) / recordSize)
	}
	if want := ix.count - int64(len(ix.mem)); onDisk != want {
		t.Fatalf("flushed records on disk = %d, want %d", onDisk, want)
	}
}

// TestBackgroundBackpressure: with a tiny MaxPendingRuns, a fast appender
// must never observe more than MaxPendingRuns+1 tier-0 runs (the +1 is the
// just-flushed run the waiter itself added).
func TestBackgroundBackpressure(t *testing.T) {
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	const fanout = 2
	ix, err := Build(Options{
		FS:                   fs,
		Name:                 "lsm",
		S:                    tSummarizer(t),
		RawName:              "raw",
		MemBudgetBytes:       32 * recordSize,
		Fanout:               fanout,
		BackgroundCompaction: true,
		CompactionWorkers:    1,
		MaxPendingRuns:       fanout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	done := make(chan struct{})
	var maxTier0 int
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			ix.mu.RLock()
			n := 0
			for _, r := range ix.runs {
				if r.tier == 0 {
					n++
				}
			}
			ix.mu.RUnlock()
			if n > maxTier0 {
				maxTier0 = n
			}
			select {
			case <-done:
				return
			default:
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	stream := dataset.Generate(gen, 600, tLen, 7)
	for lo := 0; lo < len(stream); lo += 50 {
		if err := ix.Append(stream[lo : lo+50]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	close(done)
	sampler.Wait()
	if maxTier0 > fanout+1 {
		t.Fatalf("backpressure breached: observed %d tier-0 runs, cap %d", maxTier0, fanout)
	}
}

// TestConcurrentAppendersUnderBackpressure: two appenders racing through
// the backpressure wait (which releases the handle lock mid-batch) must
// never write to the same raw-file position — the regression case for the
// stale position counter across cond.Wait. After quiescing, every indexed
// position must be unique and the record count conserved.
func TestConcurrentAppendersUnderBackpressure(t *testing.T) {
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	const fanout = 2
	ix, err := Build(Options{
		FS:                   fs,
		Name:                 "lsm",
		S:                    tSummarizer(t),
		RawName:              "raw",
		MemBudgetBytes:       16 * recordSize, // tiny memtable: flush mid-batch
		Fanout:               fanout,
		BackgroundCompaction: true,
		CompactionWorkers:    1,
		MaxPendingRuns:       fanout, // tight cap: waits happen constantly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	const perAppender = 300
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			stream := dataset.Generate(gen, perAppender, tLen, int64(100+a))
			for lo := 0; lo < len(stream); lo += 50 {
				if err := ix.Append(stream[lo : lo+50]); err != nil {
					errs <- err
					return
				}
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	want := int64(tCount + 2*perAppender)
	if got := ix.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	// The raw file must have grown by exactly the appended records (no
	// overwrites), and every indexed position must be unique.
	if sz := fs.FileSize("raw"); sz != want*int64(series.EncodedSize(tLen)) {
		t.Fatalf("raw file holds %d bytes, want %d", sz, want*int64(series.EncodedSize(tLen)))
	}
	seen := map[int64]bool{}
	var total int64
	ix.mu.RLock()
	for _, r := range ix.runs {
		total += r.count
		for _, p := range r.positions {
			if seen[p] {
				ix.mu.RUnlock()
				t.Fatalf("position %d indexed twice — records were overwritten", p)
			}
			seen[p] = true
		}
	}
	for _, e := range ix.mem {
		if seen[e.pos] {
			ix.mu.RUnlock()
			t.Fatalf("memtable position %d duplicates a run record", e.pos)
		}
		seen[e.pos] = true
		total++
	}
	ix.mu.RUnlock()
	if total != want {
		t.Fatalf("records across runs+memtable = %d, want %d", total, want)
	}
}

// TestConcurrentQueriesWithBackgroundCompaction is the -race stress mix:
// queries of both flavors overlap with an appender whose batches force
// flushes and multi-tier background compactions, plus Flush and Sync calls
// from a third goroutine. Run with -race.
func TestConcurrentQueriesWithBackgroundCompaction(t *testing.T) {
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(Options{
		FS:                   fs,
		Name:                 "lsm",
		S:                    s,
		RawName:              "raw",
		MemBudgetBytes:       4 << 10,
		Fanout:               2,
		Workers:              2,
		QueryWorkers:         4,
		BackgroundCompaction: true,
		CompactionWorkers:    3,
	})
	if err != nil {
		t.Fatal(err)
	}

	qs := dataset.Queries(gen, 5, tLen, 47)
	stream := dataset.Generate(gen, 600, tLen, 53)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := qs[g%len(qs)]
			for it := 0; it < 4; it++ {
				if it%2 == 0 {
					if _, err := ix.ExactSearch(q); err != nil {
						errs <- err
						return
					}
				} else if _, err := ix.ApproxSearch(q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(stream); lo += 100 {
			if err := ix.Append(stream[lo : lo+100]); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := ix.Flush(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Count(); got != tCount+int64(len(stream)) {
		t.Fatalf("Count = %d after concurrent appends, want %d", got, tCount+int64(len(stream)))
	}
	// Every appended series must be findable once the dust settles, and the
	// quiesced state must behave like a freshly consistent index.
	res, err := ix.ExactSearch(stream[123])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("appended series lost during concurrent load: dist=%v", res.Dist)
	}
	var held int64
	ix.mu.RLock()
	for _, r := range ix.runs {
		held += r.count
	}
	held += int64(len(ix.mem))
	ix.mu.RUnlock()
	if held != tCount+int64(len(stream)) {
		t.Fatalf("records across runs+memtable = %d, want %d", held, tCount+int64(len(stream)))
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}
