package lsm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// TestQuickMembershipUnderRandomBatching: whatever the batch sizes,
// memtable capacity, and fanout, every ingested series must remain
// findable at distance zero, and the record count must be conserved
// across flushes and compactions.
func TestQuickMembershipUnderRandomBatching(t *testing.T) {
	f := func(seed int64, memCap uint8, fanout uint8, nBatches uint8) bool {
		fs := storage.NewMemFS()
		gen := dataset.NewRandomWalk()
		if _, err := dataset.WriteFile(fs, "raw", gen, 60, tLen, seed); err != nil {
			return false
		}
		ix, err := Build(Options{
			FS:             fs,
			Name:           "q",
			S:              tSummarizerQuick(),
			RawName:        "raw",
			MemBudgetBytes: int64(memCap%64+16) * recordSize,
			Fanout:         int(fanout%4) + 2,
			Window:         16,
		})
		if err != nil {
			return false
		}
		defer ix.Close()

		rng := rand.New(rand.NewSource(seed))
		total := int64(60)
		var probes []int64 // positions of series we will verify
		for b := 0; b < int(nBatches%5)+1; b++ {
			batch := dataset.Generate(gen, rng.Intn(80)+1, tLen, seed+int64(b)+1)
			if err := ix.Append(batch); err != nil {
				return false
			}
			probes = append(probes, total) // first series of this batch
			total += int64(len(batch))
		}
		if ix.Count() != total {
			return false
		}
		if err := ix.Flush(); err != nil {
			return false
		}
		// Conservation across runs + memtable.
		var held int64
		for _, r := range ix.runs {
			held += r.count
		}
		held += int64(len(ix.mem))
		if held != total {
			return false
		}
		// Every probed series findable at distance ~0.
		scratch := make([]float64, tLen)
		for _, pos := range probes {
			if err := ix.readRaw(pos, scratch); err != nil {
				return false
			}
			res, err := ix.ExactSearch(scratch)
			if err != nil || res.Dist > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func tSummarizerQuick() *summary.Summarizer {
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 8, CardBits: 8})
	if err != nil {
		panic(err)
	}
	return s
}
