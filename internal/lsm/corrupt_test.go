package lsm

// Bit-rot tests for the checksummed LSM artifacts: a rotted run file is
// detected at Open (strict: typed failure; degraded: quarantine over the
// healthy remainder, repairable from the raw dataset), and a rotted raw
// record is detected at fetch time — the index never returns a silently
// wrong answer from corrupted bytes.

import (
	"errors"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
)

const corruptBase = 64

// corruptSeed builds a checksummed LSM index with enough appends to leave
// several runs, closes it cleanly, and returns the FaultFS whose Recover
// clones independent durable images for each corruption scenario.
func corruptSeed(t *testing.T) *storage.FaultFS {
	t.Helper()
	inner := storage.NewMemFS()
	if _, err := dataset.WriteFile(inner, "raw", dataset.NewRandomWalk(), corruptBase, tLen, 42); err != nil {
		t.Fatal(err)
	}
	ffs := storage.NewFaultFS(inner)
	o := sweepOptions(t, ffs)
	o.Checksums = true
	ix, err := Build(o)
	if err != nil {
		t.Fatal(err)
	}
	stream := dataset.Generate(dataset.NewSeismic(), 40, tLen, 911)
	for i := range stream {
		if err := ix.Append(stream[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	return ffs
}

// pickRun returns the name and count of a manifest-referenced non-bulk run.
func pickRun(t *testing.T, fs storage.FS) (string, int64) {
	t.Helper()
	m, err := manifest.Load(fs, "lsm")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Checksums {
		t.Fatal("manifest does not record the checksum flag")
	}
	for _, ri := range m.LSM.Runs {
		if ri.Tier != BulkTier {
			return ri.Name, ri.Count
		}
	}
	t.Fatal("no non-bulk run in manifest")
	return "", 0
}

func rotFile(t *testing.T, fs storage.FS, name string, off int64) {
	t.Helper()
	data, err := storage.ReadFileAll(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	if off >= int64(len(data)) {
		t.Fatalf("rot offset %d beyond %q (%d bytes)", off, name, len(data))
	}
	data[off] ^= 0xa5
	if err := storage.WriteFileAll(fs, name, data); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRottedRunStrictAndQuarantine(t *testing.T) {
	ffs := corruptSeed(t)
	queries := dataset.Queries(dataset.NewRandomWalk(), 4, tLen, 321)

	// Reference answers from an intact image.
	ref, err := Open(sweepOptions(t, ffs.Recover(0)))
	if err != nil {
		t.Fatal(err)
	}
	total := ref.Count()
	type answer struct {
		pos  int64
		dist float64
	}
	refAns := make([]answer, len(queries))
	for i, q := range queries {
		r, err := ref.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		refAns[i] = answer{r.Pos, r.Dist}
	}
	ref.Close()

	img := ffs.Recover(0)
	victim, victimCount := pickRun(t, img)
	rotFile(t, img, victim, storage.ChecksumHeaderSize+10)

	// Strict open: typed, loud, no panic — and typed as BOTH the stored-
	// bytes corruption and the broken-manifest-promise error.
	if _, err := Open(sweepOptions(t, img)); !errors.Is(err, storage.ErrCorruptData) {
		t.Fatalf("strict open over rotted run: err = %v, want ErrCorruptData", err)
	} else if !errors.Is(err, manifest.ErrCorruptManifest) {
		t.Fatalf("strict open over rotted run: err = %v, want ErrCorruptManifest too", err)
	}

	// Degraded open: the rotted run is quarantined, queries answer over the
	// healthy remainder, and no answer can be better than the full index's.
	o := sweepOptions(t, img)
	o.AllowDegraded = true
	ix, err := Open(o)
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	if !ix.Degraded() {
		t.Fatal("index over a rotted run is not Degraded")
	}
	if names := ix.QuarantinedRuns(); len(names) != 1 || names[0] != victim {
		t.Fatalf("QuarantinedRuns() = %v, want [%s]", names, victim)
	}
	if got := ix.Count(); got != total-victimCount {
		t.Fatalf("degraded Count() = %d, want %d - %d", got, total, victimCount)
	}
	for i, q := range queries {
		r, err := ix.ExactSearch(q)
		if err != nil {
			t.Fatalf("degraded exact query %d: %v", i, err)
		}
		if r.Dist < refAns[i].dist {
			t.Fatalf("degraded query %d returned distance %v better than full index's %v — corrupt bytes leaked into an answer",
				i, r.Dist, refAns[i].dist)
		}
	}

	// Repair: the quarantined run's records are re-derived from the raw
	// dataset; answers are byte-identical to the reference afterwards.
	if err := ix.RebuildQuarantined(); err != nil {
		t.Fatalf("RebuildQuarantined: %v", err)
	}
	if ix.Degraded() {
		t.Fatal("index still Degraded after RebuildQuarantined")
	}
	if got := ix.Count(); got != total {
		t.Fatalf("repaired Count() = %d, want %d", got, total)
	}
	for i, q := range queries {
		r, err := ix.ExactSearch(q)
		if err != nil {
			t.Fatalf("repaired exact query %d: %v", i, err)
		}
		if r.Pos != refAns[i].pos || r.Dist != refAns[i].dist {
			t.Fatalf("repaired query %d: got (%d, %v), reference (%d, %v)",
				i, r.Pos, r.Dist, refAns[i].pos, refAns[i].dist)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// The repaired image reopens strict: the corrupt file is gone and the
	// manifest no longer references it.
	re, err := Open(sweepOptions(t, img))
	if err != nil {
		t.Fatalf("strict reopen after repair: %v", err)
	}
	if re.Count() != total {
		t.Fatalf("reopened Count() = %d, want %d", re.Count(), total)
	}
	re.Close()
}

// TestRawRotDetectedAtFetch: flipping a byte of one raw record makes any
// query that would fetch it fail with ErrCorruptData — never a silently
// wrong distance computed from rotted bytes.
func TestRawRotDetectedAtFetch(t *testing.T) {
	ffs := corruptSeed(t)
	img := ffs.Recover(0)

	// Query with an exact member of the bulk dataset, then rot that very
	// record: its indexed key (clean) lower-bounds to ~0, so evaluation
	// must fetch it first.
	victim := dataset.Generate(dataset.NewRandomWalk(), corruptBase, tLen, 42)[7]
	recSize := int64(series.EncodedSize(tLen))
	rotFile(t, img, "raw", 7*recSize+3)

	ix, err := Open(sweepOptions(t, img))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.ExactSearch(victim); !errors.Is(err, storage.ErrCorruptData) {
		t.Fatalf("exact search over rotted raw record: err = %v, want ErrCorruptData", err)
	}
	if _, err := ix.ApproxSearch(victim); !errors.Is(err, storage.ErrCorruptData) {
		t.Fatalf("approx search over rotted raw record: err = %v, want ErrCorruptData", err)
	}
}
