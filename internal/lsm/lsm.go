// Package lsm implements Coconut-LSM, the extension the paper names as
// future work (§6): "we would also like to explore how ideas from LSM
// trees could be used to enable the efficient updates."
//
// Because invSAX keys are sortable, a Coconut index is just a sorted file —
// which makes the LSM recipe apply directly:
//
//   - new series accumulate in an in-memory memtable;
//   - a full memtable is sorted and flushed as an immutable sorted RUN
//     (one sequential write — no read-modify-write of existing leaves);
//   - runs are organized in tiers; when a tier collects Fanout runs they
//     are merge-sorted into the next tier (sequential I/O only);
//   - queries consult the memtable plus every run: each run keeps its
//     sorted key array in memory (the standing "summaries fit in memory"
//     assumption), so approximate search is a binary search per run and
//     exact search is SIMS over the union of the key arrays.
//
// The index is non-materialized: records are (invSAX key, position) and
// raw series live in the dataset file.
package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/extsort"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// recordSize is the fixed run record size: key + position.
const recordSize = summary.KeySize + 8

// Options configures a Coconut-LSM index.
type Options struct {
	// FS hosts the runs and the raw dataset file.
	FS storage.FS
	// Name prefixes run files.
	Name string
	// S fixes the summarization scheme.
	S *summary.Summarizer
	// RawName is the dataset file (grows on Append).
	RawName string
	// MemBudgetBytes bounds the memtable (and the initial bulk sort).
	MemBudgetBytes int64
	// Fanout is the tiering factor: a tier holding Fanout runs compacts
	// into one run of the next tier (default 4).
	Fanout int
	// Window is the number of records examined around the query key in
	// each run during approximate search (default 100).
	Window int
	// Workers is the number of concurrent workers used by the bulk-load
	// sort, ingest summarization, and compaction merges (0 means
	// runtime.NumCPU()). Runs and query answers are identical for any
	// value.
	Workers int
	// QueryWorkers is the fan-out of a single query: independent runs are
	// probed concurrently during approximate search, and the exact-search
	// raw-file verification scan is sharded by position range (0 means
	// runtime.GOMAXPROCS(0), clamped to the work available). Answers are
	// identical for any value.
	QueryWorkers int
}

func (o *Options) validate() error {
	switch {
	case o.FS == nil:
		return errors.New("lsm: nil FS")
	case o.Name == "":
		return errors.New("lsm: empty name")
	case o.S == nil:
		return errors.New("lsm: nil summarizer")
	case o.RawName == "":
		return errors.New("lsm: empty raw name")
	}
	if o.MemBudgetBytes <= 0 {
		o.MemBudgetBytes = 16 << 20
	}
	if o.Fanout < 2 {
		o.Fanout = 4
	}
	if o.Window <= 0 {
		o.Window = 100
	}
	return nil
}

// Result mirrors core.Result.
type Result struct {
	Pos            int64
	Dist           float64
	VisitedRecords int64
	VisitedRuns    int64
}

// run is one immutable sorted run.
type run struct {
	name      string
	tier      int
	count     int64
	keys      []summary.Key
	positions []int64
}

// capture appends one encoded record's key and position — the extsort.Tee
// callback used to build a run's in-memory arrays while its file is
// written, avoiding a read-back pass.
func (r *run) capture(rec []byte) {
	var k summary.Key
	copy(k[:], rec[:summary.KeySize])
	r.keys = append(r.keys, k)
	r.positions = append(r.positions, int64(binary.LittleEndian.Uint64(rec[summary.KeySize:])))
}

// memEntry is one memtable record.
type memEntry struct {
	key summary.Key
	pos int64
}

// Index is a Coconut-LSM index. A handle is safe for concurrent use:
// queries hold mu shared, while Append/Flush (and the compactions they
// trigger) hold it exclusively, so readers always observe a consistent
// (runs, memtable) pair — this is the LSM counterpart of the tree's
// SIMS-refresh lock.
type Index struct {
	opt     Options
	rawFile storage.File
	mu      sync.RWMutex
	runs    []*run
	mem     []memEntry
	count   int64
	nextRun int
}

// Build bulk-loads the initial run from the dataset (summarize + external
// sort, exactly the Coconut pipeline) and returns the index.
func Build(opt Options) (*Index, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	ix := &Index{opt: opt, rawFile: raw}

	// Summarize + sort the existing data into run 0 (tier determined by
	// later compactions; the initial bulk run sits at a high tier). The
	// in-memory key array is captured by teeing the sort's final pass, so
	// the run is not read back after being written.
	name := ix.runName()
	r := &run{name: name, tier: 1 << 30 /* effectively max tier */}
	n, err := extsort.Sort(extsort.Config{
		FS:         opt.FS,
		RecordSize: recordSize,
		Compare:    extsort.CompareKeyPrefix(summary.KeySize),
		MemBudget:  opt.MemBudgetBytes,
		TempPrefix: opt.Name + ".sort",
		Workers:    opt.Workers,
		Tee:        r.capture,
	}, &sumStream{s: opt.S, r: series.NewReader(storage.NewSequentialReader(raw, 0, -1, 0), opt.S.Params().SeriesLen),
		buf: make(series.Series, opt.S.Params().SeriesLen), rec: make([]byte, recordSize)}, name)
	if err != nil {
		raw.Close()
		return nil, err
	}
	if n > 0 {
		r.count = int64(len(r.keys))
		ix.runs = append(ix.runs, r)
	} else {
		_ = opt.FS.Remove(name)
	}
	ix.count = n
	return ix, nil
}

// sumStream adapts the raw file into sort records (like core's pipeline).
type sumStream struct {
	s     *summary.Summarizer
	r     *series.Reader
	buf   series.Series
	rec   []byte
	avail []byte
	pos   int64
	done  bool
}

func (s *sumStream) Read(p []byte) (int, error) {
	if len(s.avail) == 0 {
		if s.done {
			return 0, io.EOF
		}
		if err := s.r.NextInto(s.buf); err != nil {
			if errors.Is(err, io.EOF) {
				s.done = true
				return 0, io.EOF
			}
			return 0, err
		}
		key, err := s.s.KeyOf(s.buf)
		if err != nil {
			return 0, err
		}
		copy(s.rec, key[:])
		binary.LittleEndian.PutUint64(s.rec[summary.KeySize:], uint64(s.pos))
		s.pos++
		s.avail = s.rec
	}
	n := copy(p, s.avail)
	s.avail = s.avail[n:]
	return n, nil
}

func (ix *Index) runName() string {
	name := fmt.Sprintf("%s.run.%06d", ix.opt.Name, ix.nextRun)
	ix.nextRun++
	return name
}

// memCapacity returns the memtable capacity in records.
func (ix *Index) memCapacity() int {
	c := int(ix.opt.MemBudgetBytes / recordSize)
	if c < 16 {
		c = 16
	}
	return c
}

// Append adds new series: raw bytes go to the dataset file, records to the
// memtable; a full memtable flushes to a fresh tier-0 run. The batch is
// summarized up front across Workers goroutines, so ingest keeps every core
// busy while the raw writes stay append-only. Append takes the handle lock
// exclusively, serializing against in-flight queries.
func (ix *Index) Append(batch []series.Series) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	p := ix.opt.S.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	end, err := ix.rawFile.Size()
	if err != nil {
		return err
	}
	if end%sz != 0 {
		return fmt.Errorf("lsm: raw file size %d not aligned", end)
	}
	for _, s := range batch {
		if len(s) != p.SeriesLen {
			return fmt.Errorf("lsm: series length %d, want %d", len(s), p.SeriesLen)
		}
	}
	keys, err := ix.opt.S.KeysOf(batch, ix.opt.Workers)
	if err != nil {
		return err
	}
	pos := end / sz
	enc := make([]byte, 0, sz)
	for i, s := range batch {
		enc = series.AppendEncode(enc[:0], s)
		if _, err := ix.rawFile.WriteAt(enc, pos*sz); err != nil {
			return err
		}
		ix.mem = append(ix.mem, memEntry{key: keys[i], pos: pos})
		ix.count++
		pos++
		if len(ix.mem) >= ix.memCapacity() {
			if err := ix.flushLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// lePosLess orders positions by the lexicographic order of their
// little-endian encoding — the order extsort's full-record tie-break sees,
// since pos is encoded little-endian right after the key. Reversing the
// byte order makes the LSB most significant, which is exactly that order.
func lePosLess(a, b int64) bool {
	return bits.ReverseBytes64(uint64(a)) < bits.ReverseBytes64(uint64(b))
}

// Flush sorts the memtable and writes it as a new tier-0 run, triggering
// compactions as tiers fill.
//
// Entries sort by key with ties broken in encoded-record byte order, so
// every run on disk — flushed or compacted — is totally ordered under the
// same refined order extsort uses. Compacted runs are then exactly the
// totally sorted multiset of their inputs, a state that is trivially
// independent of Workers and easy to audit.
func (ix *Index) Flush() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.flushLocked()
}

func (ix *Index) flushLocked() error {
	if len(ix.mem) == 0 {
		return nil
	}
	sort.Slice(ix.mem, func(a, b int) bool {
		if c := ix.mem[a].key.Compare(ix.mem[b].key); c != 0 {
			return c < 0
		}
		return lePosLess(ix.mem[a].pos, ix.mem[b].pos)
	})
	name := ix.runName()
	f, err := ix.opt.FS.Create(name)
	if err != nil {
		return err
	}
	w := storage.NewSequentialWriter(f, 0, 0)
	rec := make([]byte, recordSize)
	r := &run{name: name, tier: 0, count: int64(len(ix.mem))}
	for _, e := range ix.mem {
		copy(rec, e.key[:])
		binary.LittleEndian.PutUint64(rec[summary.KeySize:], uint64(e.pos))
		if _, err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
		r.keys = append(r.keys, e.key)
		r.positions = append(r.positions, e.pos)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	ix.mem = ix.mem[:0]
	ix.runs = append(ix.runs, r)
	return ix.maybeCompact()
}

// maybeCompact merges tiers that reached the fanout.
func (ix *Index) maybeCompact() error {
	for {
		byTier := map[int][]*run{}
		for _, r := range ix.runs {
			byTier[r.tier] = append(byTier[r.tier], r)
		}
		merged := false
		for tier, rs := range byTier {
			if len(rs) >= ix.opt.Fanout {
				if err := ix.compact(rs, tier+1); err != nil {
					return err
				}
				merged = true
				break
			}
		}
		if !merged {
			return nil
		}
	}
}

// compact merge-sorts the given runs into one run at the target tier via
// the parallel sorter's merge machinery — strictly sequential reads and
// sequential writes, with the memory budget and worker pool shared with the
// bulk-load path. The in-memory key array is captured by teeing the final
// merge pass, so compaction reads each input byte exactly once. The input
// runs are deleted only after the new run is swapped in.
func (ix *Index) compact(rs []*run, tier int) error {
	name := ix.runName()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.name
	}
	newRun := &run{name: name, tier: tier}
	err := extsort.Merge(extsort.Config{
		FS:         ix.opt.FS,
		RecordSize: recordSize,
		Compare:    extsort.CompareKeyPrefix(summary.KeySize),
		MemBudget:  ix.opt.MemBudgetBytes,
		TempPrefix: name + ".compact",
		Workers:    ix.opt.Workers,
		Tee:        newRun.capture,
	}, names, name)
	if err != nil {
		return err
	}
	newRun.count = int64(len(newRun.keys))

	// Swap in the new run, drop the old ones.
	keep := ix.runs[:0]
	dropped := map[*run]bool{}
	for _, r := range rs {
		dropped[r] = true
	}
	for _, r := range ix.runs {
		if !dropped[r] {
			keep = append(keep, r)
		}
	}
	ix.runs = append(keep, newRun)
	for _, r := range rs {
		_ = ix.opt.FS.Remove(r.name)
	}
	return nil
}

// Count returns the number of indexed series.
func (ix *Index) Count() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.count
}

// NumRuns returns the number of on-disk runs.
func (ix *Index) NumRuns() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.runs)
}

// SizeBytes returns the total size of all run files.
func (ix *Index) SizeBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var total int64
	for _, r := range ix.runs {
		if f, err := ix.opt.FS.Open(r.name); err == nil {
			if s, err := f.Size(); err == nil {
				total += s
			}
			f.Close()
		}
	}
	return total
}

// Close releases the raw file handle, waiting for in-flight queries.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.rawFile.Close()
}

func (ix *Index) readRaw(pos int64, dst series.Series) error {
	p := ix.opt.S.Params()
	sz := series.EncodedSize(p.SeriesLen)
	buf := make([]byte, sz)
	if n, err := ix.rawFile.ReadAt(buf, pos*int64(sz)); n != sz {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("lsm: raw series %d: %w", pos, err)
	}
	series.DecodeInto(buf, dst)
	return nil
}

// ApproxSearch examines, in every run, a window of records around where the
// query's key would sort (plus the whole memtable), and returns the best.
// Runs are independent sorted files, so multi-run queries probe them
// concurrently across QueryWorkers; per-run results merge in run order, so
// the answer is identical to a serial probe. Safe for concurrent use.
func (ix *Index) ApproxSearch(q series.Series) (Result, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.approxLocked(q)
}

func (ix *Index) approxLocked(q series.Series) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if ix.count == 0 {
		return res, errors.New("lsm: index is empty")
	}
	key, err := ix.opt.S.KeyOf(q)
	if err != nil {
		return res, err
	}
	// try fetches one raw position into scratch and folds its distance into
	// out — shared by the run probes and the memtable pass below.
	try := func(pos int64, scratch series.Series, out *Result) error {
		if err := ix.readRaw(pos, scratch); err != nil {
			return err
		}
		out.VisitedRecords++
		sq, err := series.SquaredED(q, scratch)
		if err != nil {
			return err
		}
		if d := math.Sqrt(sq); d < out.Dist {
			out.Dist, out.Pos = d, pos
		}
		return nil
	}
	// probe scans one run's window with a private scratch buffer.
	probe := func(r *run, scratch series.Series, out *Result) error {
		idx := sort.Search(len(r.keys), func(i int) bool { return !r.keys[i].Less(key) })
		lo, hi := idx-ix.opt.Window/2, idx+ix.opt.Window/2
		if lo < 0 {
			lo = 0
		}
		if hi > len(r.keys) {
			hi = len(r.keys)
		}
		out.VisitedRuns++
		for i := lo; i < hi; i++ {
			if err := try(r.positions[i], scratch, out); err != nil {
				return err
			}
		}
		return nil
	}
	// Seed every slot up front: a shard cancelled by a sibling's error never
	// reaches its runs, and a zero-value Result would read as a real answer
	// at position 0.
	outs := make([]Result, len(ix.runs))
	for i := range outs {
		outs[i] = Result{Pos: -1, Dist: math.Inf(1)}
	}
	err = shard.Scan(shard.Resolve(ix.opt.QueryWorkers, len(ix.runs)), len(ix.runs),
		func(si int, rr shard.Range, cancelled func() bool) error {
			scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
			for i := rr.Lo; i < rr.Hi; i++ {
				if cancelled() {
					return nil
				}
				if err := probe(ix.runs[i], scratch, &outs[i]); err != nil {
					return err
				}
			}
			return nil
		})
	for _, o := range outs {
		res.VisitedRuns += o.VisitedRuns
		res.VisitedRecords += o.VisitedRecords
		if o.Pos >= 0 && o.Dist < res.Dist {
			res.Dist, res.Pos = o.Dist, o.Pos
		}
	}
	if err != nil {
		return res, err
	}
	scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
	for _, e := range ix.mem {
		if err := try(e.pos, scratch, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// ExactSearch is SIMS over the union of all runs' in-memory key arrays and
// the memtable: lower bounds for every record (computed per run across
// QueryWorkers), then a position-ordered skip-sequential scan of the raw
// file, sharded by position range with a shared best-so-far bound. Safe for
// concurrent use; (Pos, Dist) is identical for any worker count.
func (ix *Index) ExactSearch(q series.Series) (Result, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	res, err := ix.approxLocked(q)
	if err != nil {
		return res, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	p := ix.opt.S.Params()
	type cand struct {
		pos int64
		lb  float64
	}
	// Collect candidate lower bounds run by run; each run's key array is
	// independent, so the lower-bound computation fans out per run, and the
	// filtered candidates concatenate in run order (deterministically — the
	// filter bound is fixed at the approximate answer).
	perRun := make([][]cand, len(ix.runs))
	runWorkers := shard.Resolve(ix.opt.QueryWorkers, len(ix.runs))
	// Split the worker budget between the run fan-out and the per-run
	// lower-bound pass, so a single-run index (fresh bulk load, or fully
	// compacted) still shards its dominant scan across all QueryWorkers.
	innerWorkers := shard.PerGroup(ix.opt.QueryWorkers, runWorkers)
	shardErr := shard.Scan(runWorkers, len(ix.runs),
		func(si int, rr shard.Range, cancelled func() bool) error {
			for i := rr.Lo; i < rr.Hi; i++ {
				if cancelled() {
					return nil
				}
				r := ix.runs[i]
				lbs := ix.opt.S.MinDistsToKeys(qPAA, r.keys, innerWorkers)
				var cs []cand
				for j, lb := range lbs {
					if lb < res.Dist {
						cs = append(cs, cand{r.positions[j], lb})
					}
				}
				perRun[i] = cs
			}
			return nil
		})
	if shardErr != nil {
		return res, shardErr
	}
	var cands []cand
	for _, cs := range perRun {
		cands = append(cands, cs...)
	}
	for _, e := range ix.mem {
		sax := summary.Deinterleave(e.key, p.Segments, p.CardBits)
		if lb := ix.opt.S.MinDistPAAToSAX(qPAA, sax); lb < res.Dist {
			cands = append(cands, cand{e.pos, lb})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].pos < cands[b].pos })

	workers := shard.Resolve(ix.opt.QueryWorkers, len(cands))
	var bound shard.BSF
	bound.Init(res.Dist)
	pos, dist, vr, _, err := shard.ScanReduce(workers, len(cands), res.Pos, res.Dist, func(rr shard.Range, local *shard.Outcome, cancelled func() bool) error {
		scratch := make(series.Series, p.SeriesLen)
		for i := rr.Lo; i < rr.Hi; i++ {
			if cancelled() {
				return nil
			}
			c := cands[i]
			if c.lb >= local.Dist || bound.Prunes(c.lb) {
				continue
			}
			if err := ix.readRaw(c.pos, scratch); err != nil {
				return err
			}
			local.VisitedRecords++
			sq, ok := series.SquaredEDEarlyAbandon(q, scratch, local.Dist*local.Dist)
			if !ok {
				continue
			}
			if d := math.Sqrt(sq); d < local.Dist {
				local.Dist, local.Pos = d, c.pos
				bound.Lower(d)
			}
		}
		return nil
	})
	res.Pos, res.Dist = pos, dist
	res.VisitedRecords += vr
	return res, err
}
