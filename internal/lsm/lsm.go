// Package lsm implements Coconut-LSM, the extension the paper names as
// future work (§6): "we would also like to explore how ideas from LSM
// trees could be used to enable the efficient updates."
//
// Because invSAX keys are sortable, a Coconut index is just a sorted file —
// which makes the LSM recipe apply directly:
//
//   - new series accumulate in an in-memory memtable;
//   - a full memtable is sorted and flushed as an immutable sorted RUN
//     (one sequential write — no read-modify-write of existing leaves);
//   - runs are organized in tiers; when a tier collects Fanout runs they
//     are merge-sorted into the next tier (sequential I/O only);
//   - queries consult the memtable plus every run: each run keeps its
//     sorted key array in memory (the standing "summaries fit in memory"
//     assumption), so approximate search is a binary search per run and
//     exact search is SIMS over the union of the key arrays.
//
// The index is non-materialized: records are (invSAX key, position) and
// raw series live in the dataset file.
package lsm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"time"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/extsort"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/runblock"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
	"github.com/coconut-db/coconut/internal/summary"
	"github.com/coconut-db/coconut/internal/window"
)

// recordSize is the fixed run record size: key + position.
const recordSize = summary.KeySize + 8

// Options configures a Coconut-LSM index.
type Options struct {
	// FS hosts the runs and the raw dataset file.
	FS storage.FS
	// Name prefixes run files.
	Name string
	// S fixes the summarization scheme.
	S *summary.Summarizer
	// RawName is the dataset file (grows on Append).
	RawName string
	// RecordsName optionally names a pre-summarized (key, position) record
	// file for the initial bulk load, skipping the summarization pass — the
	// partition scatter path. The raw dataset still backs query fetches.
	RecordsName string
	// MemBudgetBytes bounds the memtable (and the initial bulk sort).
	MemBudgetBytes int64
	// Fanout is the tiering factor: a tier holding Fanout runs compacts
	// into one run of the next tier (default 4).
	Fanout int
	// Window is the number of records examined around the query key in
	// each run during approximate search (default 100).
	Window int
	// Workers is the number of concurrent workers used by the bulk-load
	// sort, ingest summarization, and compaction merges (0 means
	// runtime.NumCPU()). Runs and query answers are identical for any
	// value.
	Workers int
	// QueryWorkers is the fan-out of a single query: independent runs are
	// probed concurrently during approximate search, and the exact-search
	// raw-file verification scan is sharded by position range (0 means
	// runtime.GOMAXPROCS(0), clamped to the work available). Answers are
	// identical for any value.
	QueryWorkers int
	// BackgroundCompaction moves compactions off the write path: Flush only
	// writes the tier-0 run and enqueues compaction work, and a pool of
	// CompactionWorkers goroutines merges full tiers concurrently, swapping
	// results in under the handle lock. Ingest latency stays flat; the
	// quiesced on-disk state (after Sync or Close) is byte-identical to
	// synchronous compaction for any worker count.
	BackgroundCompaction bool
	// CompactionWorkers is the size of the background compaction pool
	// (default 2). Groups at independent tiers compact concurrently, so
	// values > 1 let a long high-tier merge overlap fresh tier-0 merges.
	// Each in-flight compaction uses up to MemBudgetBytes of merge buffers.
	CompactionWorkers int
	// MaxPendingRuns bounds the outstanding tier-0 runs under background
	// compaction (default 2*Fanout, floor Fanout): when a flush would leave
	// more than this many tier-0 runs on disk, Append/Flush block until the
	// compaction pool catches up — backpressure that keeps a fast writer
	// from burying the scheduler.
	MaxPendingRuns int
	// DisableWAL turns the write-ahead log off: an appended series is then
	// durable only once a flush commits it into a run, and anything still
	// in the memtable at a crash is lost. With the WAL on (the default),
	// Append returns only after its records — and the raw bytes they
	// reference — are fsynced, and Open replays un-flushed records back
	// into the memtable.
	DisableWAL bool
	// WALGroupWindow optionally stretches each group commit by this long
	// before the fsync, admitting more concurrent appenders into the
	// batch. Zero (the default) batches only the appenders that arrive
	// while the previous sync is in flight.
	WALGroupWindow time.Duration
	// WALSyncEveryAppend disables group commit: every Append performs its
	// own raw+segment fsync pair inline. This is the baseline the
	// BenchmarkAppendDurable group-commit comparison measures against; it
	// has no other use.
	WALSyncEveryAppend bool
	// Checksums writes run files in the checksummed-block format and
	// maintains a per-record CRC sidecar for the raw dataset, so every
	// read path detects bit rot as storage.ErrCorruptData instead of
	// serving wrong bytes. The flag is a property of the stored bytes:
	// it is recorded in the manifest and Open adopts the stored value.
	Checksums bool
	// AllowDegraded turns corruption at Open time into graceful
	// degradation: a run whose file is corrupt (or missing) is QUARANTINED
	// — withheld from queries and compactions but kept in the manifest —
	// instead of failing the open, and a corrupt WAL tail is reconstructed
	// from the raw dataset (every raw position not covered by a healthy
	// run re-summarizes into the memtable). Queries then answer over the
	// healthy remainder and Degraded() reports the loss; see
	// RebuildQuarantined for repair. Off by default: corruption fails
	// loudly with storage.ErrCorruptData.
	AllowDegraded bool
	// RawSums optionally supplies an externally owned raw-dataset CRC
	// sidecar (the partition layer's: the parent owns the shared raw file
	// and its sidecar, children verify through the shared handle). When
	// nil and Checksums is set, the index builds and maintains its own.
	RawSums *storage.RecordSums
	// Owns restricts reconstruction-from-raw — degraded WAL recovery and
	// RebuildQuarantined — to the records this index owns. A partition
	// child shares the raw dataset with its siblings; without the filter
	// a reconstruction would re-index every sibling's records too. Nil
	// means the index owns every raw record.
	Owns func(summary.Key) bool
	// Compressed writes run files in the block-compressed layout
	// (internal/runblock) and reads them through the shared block cache
	// instead of materializing whole-run key arrays in memory — the
	// beyond-RAM mode: resident key memory is bounded by the cache budget
	// regardless of index size. Like Checksums it is a property of the
	// stored bytes, recorded in the manifest and adopted by Open. Answers
	// are byte-identical to the in-memory layout.
	Compressed bool
	// Cache is the shared decoded-block cache for compressed runs. The
	// partition layer passes one cache to every child so the budget bounds
	// the whole index; nil with Compressed set creates a private cache of
	// blockcache.DefaultBytes.
	Cache *blockcache.Cache
}

// runBlockPayload is the checksummed-block payload size for run files.
// Records are not block-aligned — the block layer is offset-transparent —
// so any size works; 4 KiB keeps one CRC per page-ish span.
const runBlockPayload = 4096

func (o *Options) validate() error {
	switch {
	case o.FS == nil:
		return errors.New("lsm: nil FS")
	case o.Name == "":
		return errors.New("lsm: empty name")
	case o.S == nil:
		return errors.New("lsm: nil summarizer")
	case o.RawName == "":
		return errors.New("lsm: empty raw name")
	}
	if o.MemBudgetBytes <= 0 {
		o.MemBudgetBytes = 16 << 20
	}
	if o.Fanout < 2 {
		o.Fanout = 4
	}
	if o.Window <= 0 {
		o.Window = 100
	}
	if o.CompactionWorkers <= 0 {
		o.CompactionWorkers = 2
	}
	if o.MaxPendingRuns <= 0 {
		o.MaxPendingRuns = 2 * o.Fanout
	}
	if o.MaxPendingRuns < o.Fanout {
		// Below Fanout a full tier-0 group can never form and backpressure
		// would wait forever.
		o.MaxPendingRuns = o.Fanout
	}
	return nil
}

// Result mirrors core.Result.
type Result struct {
	Pos            int64
	Dist           float64
	VisitedRecords int64
	VisitedRuns    int64
}

// BulkTier is the tier of the initial bulk-loaded run: effectively
// maximal, so ingest-time compactions never try to fold it. Exported for
// consumers of manifest run listings (cmd/coconut info).
const BulkTier = 1 << 30

// run is one immutable sorted run, backed either by in-memory key arrays
// (legacy layout) or by a block-compressed on-disk reader (rb non-nil);
// the accessor methods in runio.go hide the difference from every query
// and maintenance path.
type run struct {
	name      string
	tier      int
	count     int64
	keys      []summary.Key
	positions []int64
	// rb is the block-compressed backend: a directory-only reader over
	// the run file, decoding blocks on demand through the shared cache.
	// When rb is set, keys and positions stay nil.
	rb *runblock.Reader
	// seq is the run's global age: flush runs take consecutive ordinals and
	// a compacted run inherits the seq of its oldest input, so ix.runs stays
	// sorted oldest-first no matter how compactions interleave.
	seq int64
	// tierSeq is the run's arrival ordinal WITHIN its tier: the k-th tier-0
	// flush and the output of the k-th compaction of tier t-1 both get
	// tierSeq k. Compaction groups are formed from consecutive tierSeq
	// ranges of exactly Fanout runs, which makes the whole compaction DAG —
	// and therefore the quiesced on-disk state — a pure function of the
	// flush sequence, independent of scheduling.
	tierSeq int
	// claimed marks a run scheduled into an in-flight compaction.
	claimed bool
}

// capture appends one encoded record's key and position — the extsort.Tee
// callback used to build a run's in-memory arrays while its file is
// written, avoiding a read-back pass.
func (r *run) capture(rec []byte) {
	var k summary.Key
	copy(k[:], rec[:summary.KeySize])
	r.keys = append(r.keys, k)
	r.positions = append(r.positions, int64(binary.LittleEndian.Uint64(rec[summary.KeySize:])))
}

// memEntry is one memtable record.
type memEntry struct {
	key summary.Key
	pos int64
}

// Index is a Coconut-LSM index. A handle is safe for concurrent use:
// queries hold mu shared, while Append/Flush hold it exclusively, so
// readers always observe a consistent (runs, memtable) pair — this is the
// LSM counterpart of the tree's SIMS-refresh lock.
//
// With Options.BackgroundCompaction, compactions run on a goroutine pool:
// merges read the immutable input run files with no lock held (queries and
// appends proceed concurrently), and only the final swap of the merged run
// into ix.runs takes mu exclusively. A compaction failure is recorded in
// bgErr and surfaces on the next Append/Flush/Sync/Close.
type Index struct {
	opt     Options
	rawFile storage.File
	// rawSums verifies raw-dataset reads when checksums are on; ownSums
	// marks the handle as this index's own (maintained on appends) rather
	// than the partition layer's shared one.
	rawSums *storage.RecordSums
	ownSums bool
	// quarantined holds the manifest records of runs withheld at Open
	// because their files were corrupt or missing (Options.AllowDegraded).
	// They stay in every committed manifest — the files, where they exist,
	// are never deleted by compaction — until RebuildQuarantined replaces
	// them from the raw dataset.
	quarantined []manifest.RunInfo
	mu          sync.RWMutex
	// closed makes Close idempotent: a second Close (even concurrent with
	// the first) returns nil instead of double-closing the files.
	closed bool
	// cond (on the write side of mu) signals backpressure waiters and
	// Sync/Close drains whenever a compaction finishes or fails.
	cond    *sync.Cond
	runs    []*run
	mem     []memEntry
	count   int64
	nextRun int
	// nextSeq feeds run.seq; tier0Seq counts flushes (tier-0 tierSeq).
	nextSeq  int64
	tier0Seq int
	// groupsClaimed[t] is the number of compaction groups of tier t already
	// claimed — the formation cursor: group k covers tierSeq [k*Fanout,
	// (k+1)*Fanout) and is ready once every member has arrived.
	groupsClaimed map[int]int
	// committedGroups[t] is the durable cursor: the number of tier-t groups
	// whose merged output has been swapped in and manifest-committed. Swaps
	// land strictly in group order (landLocked parks out-of-order finishes),
	// so this single number fully describes recovery: groups below it are
	// done and their inputs deleted, groups at or above it are still on
	// disk as input runs and will re-form after a crash.
	committedGroups map[int]int
	// parked[t][k] holds a finished merge of tier-t group k waiting for
	// groups < k to commit first.
	parked map[int]map[int]*finishedSwap
	// inflight counts claimed-but-unfinished compactions; bgErr is the
	// sticky first background failure.
	inflight int
	bgErr    error
	// Background pool plumbing (nil / zero when compaction is synchronous).
	background bool
	bgWake     chan struct{}
	bgQuit     chan struct{}
	bgWG       sync.WaitGroup

	// WAL state. wal is nil when Options.DisableWAL; the counters live on
	// the Index (under mu) because every manifest snapshot records them
	// either way. walAppended is the LSN after the last logged entry;
	// walFlushed is the durable flush cursor (entries below it are covered
	// by flushed runs); un-flushed entries live in WAL segments
	// [walFirstSeg, walNextSeg).
	wal         *wal
	walAppended int64
	walFlushed  int64
	walFirstSeg int
	walNextSeg  int

	// Manifest commits run OFF the handle lock: the state is snapshotted
	// and sequenced by commitSeq under mu, then encoded and fsynced under
	// commitMu only. durableSeq (under commitMu) is the newest snapshot
	// committed; an older snapshot that lost the race is skipped, since
	// the newer manifest describes a superset state whose referenced files
	// all still exist (deletions only ever follow a successful commit).
	commitMu   sync.Mutex
	commitSeq  int64
	durableSeq int64
}

// Build bulk-loads the initial run from the dataset (summarize + external
// sort, exactly the Coconut pipeline) and returns the index. The
// summarization phase is the batched parallel pipeline shared with the
// tree/trie builds (core.SummaryRecordReader), so every Build stage fans
// out across opt.Workers.
func Build(opt Options) (*Index, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt.ensureCache()
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	ix := &Index{opt: opt, rawFile: raw,
		groupsClaimed: map[int]int{}, committedGroups: map[int]int{},
		parked: map[int]map[int]*finishedSwap{}}
	ix.cond = sync.NewCond(&ix.mu)

	// Summarize + sort the existing data into run 0 (tier determined by
	// later compactions; the initial bulk run sits at a high tier). With
	// the in-memory layout the key array is captured by teeing the sort's
	// final pass, so the run is not read back after being written; the
	// compressed layout skips the tee (there is no array to build) and
	// reopens the file's block directory afterward.
	name := ix.runName()
	r := &run{name: name, tier: BulkTier, seq: ix.nextSeq}
	cfg := extsort.Config{
		FS:         opt.FS,
		RecordSize: recordSize,
		Compare:    extsort.CompareKeyPrefix(summary.KeySize),
		MemBudget:  opt.MemBudgetBytes,
		TempPrefix: opt.Name + ".sort",
		Workers:    opt.Workers,
		WrapOut:    ix.wrapOut(),
	}
	if !opt.Compressed {
		cfg.Tee = r.capture
	}
	var n int64
	if opt.RecordsName != "" {
		rf, err := opt.FS.Open(opt.RecordsName)
		if err != nil {
			raw.Close()
			return nil, err
		}
		n, err = extsort.Sort(cfg, storage.NewSequentialReader(rf, 0, -1, 0), name)
		if cerr := rf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			raw.Close()
			return nil, err
		}
	} else {
		src, err := core.SummaryRecordReader(opt.S, raw, false, opt.Workers)
		if err != nil {
			raw.Close()
			return nil, err
		}
		n, err = extsort.Sort(cfg, src, name)
		src.Close()
		if err != nil {
			raw.Close()
			return nil, err
		}
	}
	ix.nextSeq++
	if n > 0 {
		if err := syncFile(opt.FS, name); err != nil {
			raw.Close()
			return nil, err
		}
		if opt.Compressed {
			if r, err = ix.openCompressedRun(name, BulkTier, r.seq, 0, n); err != nil {
				raw.Close()
				return nil, err
			}
		} else {
			r.count = int64(len(r.keys))
		}
		ix.runs = append(ix.runs, r)
	} else {
		_ = opt.FS.Remove(name)
	}
	ix.count = n
	if err := ix.attachRawSums(true); err != nil {
		_ = ix.closeRunsLocked()
		raw.Close()
		return nil, err
	}
	// Pre-create WAL segment 0 so the manifest below references it: an
	// acknowledged append may only ever land in a manifest-referenced
	// segment (or one replay probes forward to), or a crash could lose it.
	if !opt.DisableWAL {
		f, size, err := createWALSegment(opt.FS, opt.Name, 0, 0)
		if err != nil {
			_ = ix.closeRunsLocked()
			raw.Close()
			return nil, err
		}
		ix.wal = newWAL(opt.FS, opt.Name, raw, f, 0, size, 0, opt.WALGroupWindow, opt.WALSyncEveryAppend)
		ix.walNextSeg = 1
	}
	// Durability point: the manifest makes the bulk-loaded run reopenable
	// with Open without re-reading the dataset.
	ix.mu.Lock()
	err = ix.commitManifestLocked()
	ix.mu.Unlock()
	if err != nil {
		if ix.wal != nil {
			_ = ix.wal.close()
		}
		_ = ix.closeRunsLocked()
		raw.Close()
		return nil, err
	}
	ix.startPool()
	return ix, nil
}

// startPool launches the background compaction workers when configured.
func (ix *Index) startPool() {
	if !ix.opt.BackgroundCompaction {
		return
	}
	ix.background = true
	ix.bgWake = make(chan struct{}, 1)
	ix.bgQuit = make(chan struct{})
	for w := 0; w < ix.opt.CompactionWorkers; w++ {
		ix.bgWG.Add(1)
		go ix.compactorLoop()
	}
}

func (ix *Index) runName() string {
	name := fmt.Sprintf("%s.run.%06d", ix.opt.Name, ix.nextRun)
	ix.nextRun++
	return name
}

// ensureCache materializes the shared block cache a compressed index
// reads through. A caller-supplied cache (the partition layer's, shared
// across children) wins; otherwise the index gets a private default.
func (o *Options) ensureCache() {
	if o.Compressed && o.Cache == nil {
		o.Cache = blockcache.New(0)
	}
}

// wrapOut returns the extsort final-output wrapper that writes run files
// in the configured physical layout — the checksummed-block layer under
// the block compressor, each independently optional — or nil when the
// output is a flat record file.
func (ix *Index) wrapOut() func(storage.File) (storage.File, error) {
	checksums, compressed := ix.opt.Checksums, ix.opt.Compressed
	if !checksums && !compressed {
		return nil
	}
	return func(f storage.File) (storage.File, error) {
		out := f
		if checksums {
			cf, err := storage.CreateChecksumFile(f, runBlockPayload)
			if err != nil {
				return nil, err
			}
			out = cf
		}
		if compressed {
			return runblock.NewFileWriter(out, 0), nil
		}
		return out, nil
	}
}

// wrapIn returns the extsort merge-input wrapper that reads existing run
// files through the configured physical layout (the inverse of wrapOut),
// or nil for flat record files. Compressed inputs are opened with their
// own block decoding, bypassing the shared cache: one-shot merge traffic
// must never evict the hot query working set.
func (ix *Index) wrapIn() func(storage.File) (storage.File, error) {
	checksums, compressed := ix.opt.Checksums, ix.opt.Compressed
	if !checksums && !compressed {
		return nil
	}
	return func(f storage.File) (storage.File, error) {
		in := f
		if checksums {
			// Reading through the verifying layer means a compaction can
			// never launder rotted records into a fresh (correctly
			// checksummed) run.
			cf, err := storage.OpenChecksumFile(f)
			if err != nil {
				return nil, err
			}
			in = cf
		}
		if compressed {
			return runblock.NewFileReader(in)
		}
		return in, nil
	}
}

// openCompressedRun opens a just-written block-compressed run file and
// returns its run handle: a footer + directory read only — no key data is
// materialized. The record count is cross-checked against what the writer
// produced; the full streaming Verify is reserved for reopen (loadRun),
// where the bytes' provenance is unknown.
func (ix *Index) openCompressedRun(name string, tier int, seq int64, tierSeq int, count int64) (*run, error) {
	inner, err := ix.opt.FS.Open(name)
	if err != nil {
		return nil, err
	}
	f := storage.File(inner)
	if ix.opt.Checksums {
		if f, err = storage.OpenChecksumFile(inner); err != nil {
			inner.Close()
			return nil, err
		}
	}
	rb, err := runblock.OpenReader(f, ix.opt.Cache)
	if err != nil {
		f.Close()
		return nil, err
	}
	if rb.Count() != count {
		rb.Close()
		return nil, fmt.Errorf("lsm: compressed run %s holds %d records, wrote %d", name, rb.Count(), count)
	}
	return &run{name: name, tier: tier, count: count, seq: seq, tierSeq: tierSeq, rb: rb}, nil
}

// attachRawSums attaches the raw-dataset CRC sidecar: the externally owned
// handle when Options.RawSums is set, or the index's own — built fresh on
// Build (an existing sidecar may describe a replaced dataset), reused and
// reconciled on Open, rebuilt when missing (legacy index upgraded in place).
func (ix *Index) attachRawSums(fresh bool) error {
	opt := &ix.opt
	if !opt.Checksums {
		return nil
	}
	if opt.RawSums != nil {
		ix.rawSums = opt.RawSums
		return nil
	}
	recSize := series.EncodedSize(opt.S.Params().SeriesLen)
	var sums *storage.RecordSums
	var err error
	if !fresh {
		sums, err = storage.OpenRecordSums(opt.FS, opt.RawName, recSize)
	}
	if fresh || errors.Is(err, storage.ErrNotExist) {
		if sums, err = storage.BuildRecordSums(opt.FS, opt.RawName, recSize); err != nil {
			return fmt.Errorf("lsm: building raw sidecar: %w", err)
		}
		ix.rawSums, ix.ownSums = sums, true
		return nil
	}
	if err != nil {
		return fmt.Errorf("lsm: opening raw sidecar: %w", err)
	}
	// The raw file may have grown past the sidecar's last flush (crash
	// between a raw append and the sidecar flush — with the WAL on, a torn
	// trailing partial record is excluded by the floor division, exactly
	// like replay); backfill from the fsynced raw bytes.
	size, err := ix.rawFile.Size()
	if err != nil {
		return err
	}
	if err := sums.Reconcile(ix.rawFile, size/int64(recSize)); err != nil {
		return fmt.Errorf("lsm: reconciling raw sidecar: %w", err)
	}
	ix.rawSums, ix.ownSums = sums, true
	return nil
}

// Degraded reports whether the index is answering over a partial record
// set: one or more runs were quarantined at Open because their files were
// corrupt or missing. Callers that require complete answers must treat any
// result from a degraded index as a lower bound over the healthy remainder.
func (ix *Index) Degraded() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.quarantined) > 0
}

// QuarantinedRuns lists the file names of quarantined runs (empty when
// healthy).
func (ix *Index) QuarantinedRuns() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	names := make([]string, len(ix.quarantined))
	for i, ri := range ix.quarantined {
		names[i] = ri.Name
	}
	return names
}

// RebuildQuarantined repairs a degraded index: the records of every
// quarantined run are re-derived from the raw dataset (read through the
// verifying sidecar) and installed as one fresh bulk run, after which the
// corrupt files are deleted. The lost records are exactly the raw
// positions no healthy run or memtable entry covers — runs partition the
// record positions — so the repaired index answers over the identical
// record multiset, and window invariance makes its answers byte-identical
// to the pre-corruption index's. No-op on a healthy index.
func (ix *Index) RebuildQuarantined() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.bgErr != nil {
		return ix.bgErr
	}
	if len(ix.quarantined) == 0 {
		return nil
	}
	covered := make(map[int64]bool, ix.count)
	for _, r := range ix.runs {
		err := r.eachBlock(func(_ []summary.Key, positions []int64) error {
			for _, p := range positions {
				covered[p] = true
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	for _, e := range ix.mem {
		covered[e.pos] = true
	}
	p := ix.opt.S.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	rawSize, err := ix.rawFile.Size()
	if err != nil {
		return err
	}
	var entries []memEntry
	s := make(series.Series, p.SeriesLen)
	for pos := int64(0); pos < rawSize/sz; pos++ {
		if covered[pos] {
			continue
		}
		if err := ix.readRaw(pos, s); err != nil {
			return err
		}
		key, kerr := ix.opt.S.KeyOf(s)
		if kerr != nil {
			return kerr
		}
		if ix.opt.Owns != nil && !ix.opt.Owns(key) {
			continue
		}
		entries = append(entries, memEntry{key: key, pos: pos})
	}
	old := ix.quarantined
	ix.quarantined = nil
	if len(entries) > 0 {
		sort.Slice(entries, func(a, b int) bool {
			if c := entries[a].key.Compare(entries[b].key); c != 0 {
				return c < 0
			}
			return lePosLess(entries[a].pos, entries[b].pos)
		})
		r, werr := ix.writeRunFile(ix.runName(), entries, BulkTier, ix.nextSeq, 0)
		if werr != nil {
			ix.quarantined = old
			return werr
		}
		ix.runs = append(ix.runs, r)
		ix.nextSeq++
		ix.count += r.count
	}
	if err := ix.commitManifestLocked(); err != nil {
		// Same stickiness as a failed compaction swap: durably the old
		// manifest (which still references the quarantined files) stays
		// authoritative, so no later commit may supersede it.
		if ix.bgErr == nil {
			ix.bgErr = err
		}
		return err
	}
	for _, ri := range old {
		if err := ix.opt.FS.Remove(ri.Name); err != nil && !errors.Is(err, storage.ErrNotExist) {
			return err
		}
	}
	return nil
}

// memCapacity returns the memtable capacity in records.
func (ix *Index) memCapacity() int {
	c := int(ix.opt.MemBudgetBytes / recordSize)
	if c < 16 {
		c = 16
	}
	return c
}

// Append adds new series: raw bytes go to the dataset file, records to
// the memtable and the write-ahead log; a full memtable flushes to a
// fresh tier-0 run. The batch is summarized up front across Workers
// goroutines, so ingest keeps every core busy while the raw writes stay
// append-only. Append takes the handle lock exclusively only to log and
// insert — it then releases it and waits for the group commit, so a nil
// return means every series in the batch is durable (fsynced WAL record
// plus fsynced raw bytes, or already covered by a flushed run).
func (ix *Index) Append(batch []series.Series) error {
	return ix.AppendCtx(context.Background(), batch)
}

// AppendCtx is Append with cancellation as admission control: the context
// is checked before any raw byte lands — once admitted, the batch runs to
// completion (a half-applied batch would corrupt the index) — and again
// while waiting for the group commit. A cancelled appender abandons its
// durability wait without disturbing the batch: the committer still fsyncs
// it, so the logged entries stay durable and consistent.
func (ix *Index) AppendCtx(ctx context.Context, batch []series.Series) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.mu.Lock()
	lsn, err := ix.appendLocked(batch)
	ix.mu.Unlock()
	if err != nil || ix.wal == nil {
		return err
	}
	return ix.wal.waitDurableCtx(ctx, lsn)
}

func (ix *Index) appendLocked(batch []series.Series) (int64, error) {
	if ix.bgErr != nil {
		return 0, ix.bgErr
	}
	p := ix.opt.S.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	end, err := ix.rawFile.Size()
	if err != nil {
		return 0, err
	}
	if end%sz != 0 && ix.wal == nil {
		// With the WAL on, a torn tail can legitimately survive a crash
		// (the partial record was never acknowledged); rounding the write
		// position down overwrites it. Without a WAL it is corruption.
		return 0, fmt.Errorf("lsm: raw file size %d not aligned", end)
	}
	for _, s := range batch {
		if len(s) != p.SeriesLen {
			return 0, fmt.Errorf("lsm: series length %d, want %d", len(s), p.SeriesLen)
		}
	}
	keys, err := ix.opt.S.KeysOf(batch, ix.opt.Workers)
	if err != nil {
		return 0, err
	}
	pos := end / sz
	enc := make([]byte, 0, sz)
	// Records are logged in chunks: everything appended since the last
	// flush boundary goes to the WAL in one record before the flush (or
	// the batch end), so a flush never covers entries the log missed.
	var pending []Entry
	logPending := func() error {
		if ix.wal == nil || len(pending) == 0 {
			pending = pending[:0]
			return nil
		}
		if _, err := ix.wal.log(pending); err != nil {
			return err
		}
		ix.walAppended += int64(len(pending))
		pending = pending[:0]
		return nil
	}
	for i, s := range batch {
		enc = series.AppendEncode(enc[:0], s)
		if _, err := ix.rawFile.WriteAt(enc, pos*sz); err != nil {
			return 0, err
		}
		if ix.ownSums {
			ix.rawSums.Set(pos, enc)
		}
		ix.mem = append(ix.mem, memEntry{key: keys[i], pos: pos})
		pending = append(pending, Entry{Key: keys[i], Pos: pos})
		ix.count++
		pos++
		if len(ix.mem) >= ix.memCapacity() {
			if err := logPending(); err != nil {
				return 0, err
			}
			if err := ix.flushLocked(); err != nil {
				return 0, err
			}
			// flushLocked may release mu (backpressure, manifest commit); a
			// concurrent Append can grow the raw file meanwhile, so the
			// write position must be recomputed before the next record.
			if end, err = ix.rawFile.Size(); err != nil {
				return 0, err
			}
			if end%sz != 0 && ix.wal == nil {
				return 0, fmt.Errorf("lsm: raw file size %d not aligned", end)
			}
			pos = end / sz
		}
	}
	if err := logPending(); err != nil {
		return 0, err
	}
	return ix.walAppended, nil
}

// Entry is one pre-summarized record routed to this index by the
// partition layer; its raw series bytes are already in the shared dataset
// file at ordinal Pos.
type Entry struct {
	Key summary.Key
	Pos int64
}

// AppendEntries adds pre-summarized records whose raw bytes were already
// written through the partition layer's own handle on the same dataset
// file, returning once they are durable. The memtable and the WAL grow
// here (flushing when full); both the group commit's rawFile.Sync and
// flushLocked's cover the partition-written bytes because both handles
// name the same file.
func (ix *Index) AppendEntries(entries []Entry) error {
	lsn, err := ix.AppendEntriesNoWait(entries)
	if err != nil {
		return err
	}
	return ix.WaitDurable(lsn)
}

// AppendEntriesNoWait logs and inserts the entries but does not wait for
// the group commit; the returned LSN is the durability token to pass to
// WaitDurable. The partition layer routes one batch to every child under
// its own lock with NoWait, releases the lock, and then waits all tokens
// — so N children share N fsync batches instead of serializing them.
func (ix *Index) AppendEntriesNoWait(entries []Entry) (int64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.bgErr != nil {
		return 0, ix.bgErr
	}
	for len(entries) > 0 {
		room := ix.memCapacity() - len(ix.mem)
		if room <= 0 {
			// A concurrent appender filled the memtable while a flush
			// released mu; fold it before logging more.
			if err := ix.flushLocked(); err != nil {
				return 0, err
			}
			continue
		}
		chunk := entries
		if len(chunk) > room {
			chunk = chunk[:room]
		}
		if ix.wal != nil {
			if _, err := ix.wal.log(chunk); err != nil {
				return 0, err
			}
			ix.walAppended += int64(len(chunk))
		}
		for _, e := range chunk {
			ix.mem = append(ix.mem, memEntry{key: e.Key, pos: e.Pos})
			ix.count++
		}
		entries = entries[len(chunk):]
		if len(ix.mem) >= ix.memCapacity() {
			if err := ix.flushLocked(); err != nil {
				return 0, err
			}
		}
	}
	return ix.walAppended, nil
}

// WaitDurable blocks until every entry at LSN <= lsn is durable (group-
// committed into the WAL, or covered by a flushed run). With the WAL
// disabled there is nothing to wait for.
func (ix *Index) WaitDurable(lsn int64) error {
	return ix.WaitDurableCtx(context.Background(), lsn)
}

// WaitDurableCtx is WaitDurable with cancellation: a cancelled waiter
// returns ctx.Err() and abandons the wait; the group commit itself is
// unaffected, so the entries still become durable.
func (ix *Index) WaitDurableCtx(ctx context.Context, lsn int64) error {
	if ix.wal == nil {
		return nil
	}
	return ix.wal.waitDurableCtx(ctx, lsn)
}

// lePosLess orders positions by the lexicographic order of their
// little-endian encoding — the order extsort's full-record tie-break sees,
// since pos is encoded little-endian right after the key. Reversing the
// byte order makes the LSB most significant, which is exactly that order.
func lePosLess(a, b int64) bool {
	return bits.ReverseBytes64(uint64(a)) < bits.ReverseBytes64(uint64(b))
}

// Flush sorts the memtable and writes it as a new tier-0 run, triggering
// compactions as tiers fill. Under synchronous compaction the merges run
// inline before Flush returns; under background compaction Flush only
// enqueues them (blocking briefly when the tier-0 backlog exceeds
// MaxPendingRuns) and the pool folds tiers behind the scenes.
//
// Entries sort by key with ties broken in encoded-record byte order, so
// every run on disk — flushed or compacted — is totally ordered under the
// same refined order extsort uses. Compacted runs are then exactly the
// totally sorted multiset of their inputs, a state that is trivially
// independent of Workers and easy to audit.
func (ix *Index) Flush() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.flushLocked()
}

func (ix *Index) flushLocked() error {
	if ix.bgErr != nil {
		return ix.bgErr
	}
	if len(ix.mem) == 0 {
		return nil
	}
	sort.Slice(ix.mem, func(a, b int) bool {
		if c := ix.mem[a].key.Compare(ix.mem[b].key); c != 0 {
			return c < 0
		}
		return lePosLess(ix.mem[a].pos, ix.mem[b].pos)
	})
	// The run's positions point into raw bytes this process appended; they
	// must reach stable storage before a run (and manifest) references
	// them, or a power loss could leave a durable index over lost data.
	if err := ix.rawFile.Sync(); err != nil {
		return err
	}
	// The sidecar trails the raw file it describes; flushing it here keeps
	// "sidecar covers every position a durable run references" an
	// invariant, so reopen-time reconciliation only ever backfills the
	// unflushed memtable tail.
	if ix.ownSums {
		if err := ix.rawSums.Flush(); err != nil {
			return err
		}
	}
	r, err := ix.writeRunFile(ix.runName(), ix.mem, 0, ix.nextSeq, ix.tier0Seq)
	if err != nil {
		return err
	}
	ix.mem = ix.mem[:0]
	ix.runs = append(ix.runs, r)
	ix.nextSeq++
	ix.tier0Seq++
	// Before advancing the flush cursor, fsync the active segment. This is
	// what makes "every non-active segment is fully durable" an invariant:
	// the run above is durable but the manifest that references it is not
	// committed yet, so until that commit lands the WAL segment is still
	// the only durable record of these entries. It also licenses the
	// committer to keep releasing waiters against the fresh segment after
	// the rotation below without stranding entries in the old one.
	if ix.wal != nil {
		if err := ix.wal.syncActive(); err != nil {
			return err
		}
	}
	// Every entry ever logged is now covered by a durable run: advance the
	// flush cursor, release group-commit waiters without a segment sync,
	// and rotate to a fresh WAL segment so the covered ones can be
	// recycled once the manifest commit below lands.
	oldFirstSeg := ix.walFirstSeg
	ix.walFlushed = ix.walAppended
	if ix.wal != nil {
		ix.wal.markFlushed(ix.walFlushed)
		if !ix.wal.activeEmpty() {
			seg := ix.walNextSeg
			if err := ix.wal.rotate(seg, ix.walAppended); err != nil {
				return err
			}
			ix.walNextSeg = seg + 1
			ix.walFirstSeg = seg
		}
	}
	// Commit the manifest before compacting: the new run is durable the
	// moment Flush's structural change exists, and every later compaction
	// swap commits again before deleting its inputs — so the on-disk
	// manifest always references files that exist.
	if err := ix.commitManifestLocked(); err != nil {
		return err
	}
	// The committed manifest no longer references the rotated-away
	// segments; recycle them. A concurrent flush may have advanced the
	// range further during the commit window and recycled some already.
	for seg := oldFirstSeg; seg < ix.walFirstSeg; seg++ {
		if err := ix.opt.FS.Remove(walSegName(ix.opt.Name, seg)); err != nil &&
			!errors.Is(err, storage.ErrNotExist) {
			return err
		}
	}
	if !ix.background {
		return ix.compactPendingLocked()
	}
	ix.kick()
	// Backpressure: a fast writer must not bury the pool. Waiting releases
	// mu, so the pool can claim, merge, and swap while we sleep.
	for ix.bgErr == nil && ix.tier0CountLocked() > ix.opt.MaxPendingRuns {
		ix.kick()
		ix.cond.Wait()
	}
	return ix.bgErr
}

// writeRunFile persists one sorted run file — in the checksummed-block
// format when checksums are on — fsyncs it (the manifest commit that will
// reference it requires the bytes on stable storage first), and returns
// the loaded run handle.
func (ix *Index) writeRunFile(name string, entries []memEntry, tier int, seq int64, tierSeq int) (*run, error) {
	inner, err := ix.opt.FS.Create(name)
	if err != nil {
		return nil, err
	}
	f := storage.File(inner)
	if ix.opt.Checksums {
		if f, err = storage.CreateChecksumFile(inner, runBlockPayload); err != nil {
			inner.Close()
			return nil, err
		}
	}
	if ix.opt.Compressed {
		bw := runblock.NewWriter(f, 0)
		for _, e := range entries {
			if err := bw.Add(e.key, e.pos); err != nil {
				f.Close()
				return nil, err
			}
		}
		if err := bw.Finish(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		return ix.openCompressedRun(name, tier, seq, tierSeq, int64(len(entries)))
	}
	w := storage.NewSequentialWriter(f, 0, 0)
	rec := make([]byte, recordSize)
	r := &run{name: name, tier: tier, count: int64(len(entries)), seq: seq, tierSeq: tierSeq}
	for _, e := range entries {
		copy(rec, e.key[:])
		binary.LittleEndian.PutUint64(rec[summary.KeySize:], uint64(e.pos))
		if _, err := w.Write(rec); err != nil {
			f.Close()
			return nil, err
		}
		r.keys = append(r.keys, e.key)
		r.positions = append(r.positions, e.pos)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return r, nil
}

// tier0CountLocked counts on-disk tier-0 runs, claimed ones included: a
// claimed run still occupies disk and memory until its merge lands.
func (ix *Index) tier0CountLocked() int {
	n := 0
	for _, r := range ix.runs {
		if r.tier == 0 {
			n++
		}
	}
	return n
}

// compactJob is one claimed compaction: Fanout consecutive runs of one tier
// merging into a single run of the next.
type compactJob struct {
	inputs  []*run
	outName string
	outTier int
	// group is the job's ordinal among its input tier's compactions — the k
	// in the deterministic naming/grouping scheme (and the output's tierSeq
	// at the next tier).
	group int
	// inTier is the input tier (cursor rollback on synchronous failure).
	inTier int
	outSeq int64
}

// findGroupLocked locates the next ready compaction group: the lowest tier
// whose next Fanout-sized tierSeq window [k*Fanout, (k+1)*Fanout) has fully
// arrived. When claim is set the group is claimed (runs marked, cursor
// advanced); otherwise this is a readiness probe for the drain barrier.
//
// Claiming is adaptive to write bursts: tiers are scanned lowest first, so
// tier-0 merge groups always pop ahead of higher tiers, and while the
// tier-0 backlog exceeds MaxPendingRuns (backpressure territory) claiming
// defers higher tiers entirely — the whole pool drains the burst before
// any long high-tier merge is started. The readiness probe never filters:
// the drain barrier must see every outstanding group.
//
// Groups are pure functions of the flush sequence — which runs, in which
// order, merge into which output name — so the quiesced state is identical
// whether compactions run inline, on one background worker, or on many,
// and scheduling order (burst-deferred or not) never changes it.
func (ix *Index) findGroupLocked(claim bool) *compactJob {
	if ix.bgErr != nil {
		return nil
	}
	byTier := map[int][]*run{}
	for _, r := range ix.runs {
		if r.tier == BulkTier || r.claimed {
			continue
		}
		byTier[r.tier] = append(byTier[r.tier], r)
	}
	tiers := make([]int, 0, len(byTier))
	for tier := range byTier {
		tiers = append(tiers, tier)
	}
	sort.Ints(tiers)
	tier0Only := claim && ix.tier0CountLocked() > ix.opt.MaxPendingRuns
	for _, tier := range tiers {
		if tier0Only && tier > 0 {
			break
		}
		k := ix.groupsClaimed[tier]
		lo := k * ix.opt.Fanout
		group := make([]*run, 0, ix.opt.Fanout)
		for _, r := range byTier[tier] {
			if r.tierSeq >= lo && r.tierSeq < lo+ix.opt.Fanout {
				group = append(group, r)
			}
		}
		if len(group) < ix.opt.Fanout {
			continue
		}
		sort.Slice(group, func(a, b int) bool { return group[a].tierSeq < group[b].tierSeq })
		job := &compactJob{
			inputs:  group,
			outName: fmt.Sprintf("%s.cmp.t%d.%06d", ix.opt.Name, tier, k),
			outTier: tier + 1,
			group:   k,
			inTier:  tier,
			outSeq:  group[0].seq,
		}
		if claim {
			for _, r := range group {
				r.claimed = true
			}
			ix.groupsClaimed[tier] = k + 1
			ix.inflight++
		}
		return job
	}
	return nil
}

// finishedSwap is a completed merge whose swap is pending its same-tier
// predecessors.
type finishedSwap struct {
	job    *compactJob
	newRun *run
}

// landLocked installs a finished compaction, enforcing that same-tier
// swaps commit in group order: a merge that finishes before its
// predecessor parks until the predecessor lands. This keeps the durable
// committedGroups cursor truthful — a manifest never claims group k is
// done while group k-1 is still merging, so a crash-reopen re-forms
// exactly the unfinished groups and no run is ever stranded below the
// cursor. A parked swap always has an in-flight or parked predecessor, so
// the drain barrier's inflight count still covers it.
func (ix *Index) landLocked(job *compactJob, newRun *run) error {
	tier := job.inTier
	if ix.parked[tier] == nil {
		ix.parked[tier] = map[int]*finishedSwap{}
	}
	ix.parked[tier][job.group] = &finishedSwap{job: job, newRun: newRun}
	for {
		next, ok := ix.parked[tier][ix.committedGroups[tier]]
		if !ok {
			return nil
		}
		delete(ix.parked[tier], ix.committedGroups[tier])
		// Advance the cursor BEFORE the swap commits the manifest: the
		// committed manifest deletes this group's inputs from the run set,
		// so it must also record the group as done — otherwise a reopen
		// would wait forever for a window whose runs no longer exist. If
		// the commit fails the failure is sticky and the durable state
		// remains the previous manifest, where the cursor and the inputs
		// are still consistent.
		ix.committedGroups[tier]++
		if err := ix.swapLocked(next.job, next.newRun); err != nil {
			return err
		}
	}
}

// runCompaction merge-sorts a claimed group via the parallel sorter's merge
// machinery — strictly sequential reads and writes, memory budget and
// worker pool shared with the bulk-load path. With in-memory runs the key
// array is captured by teeing the final merge pass, so compaction reads
// each input byte exactly once; with compressed runs the output is
// re-encoded through the write adapter and reopened as a block directory
// (no key array ever materializes). No lock is held: the inputs are
// immutable files, and extsort.Merge removes its temporaries (and a
// partial output) on error.
func (ix *Index) runCompaction(job *compactJob) (*run, error) {
	names := make([]string, len(job.inputs))
	for i, r := range job.inputs {
		names[i] = r.name
	}
	newRun := &run{name: job.outName, tier: job.outTier,
		seq: job.outSeq, tierSeq: job.group}
	cfg := extsort.Config{
		FS:         ix.opt.FS,
		RecordSize: recordSize,
		Compare:    extsort.CompareKeyPrefix(summary.KeySize),
		MemBudget:  ix.opt.MemBudgetBytes,
		TempPrefix: job.outName + ".compact",
		Workers:    ix.opt.Workers,
		WrapOut:    ix.wrapOut(),
		WrapIn:     ix.wrapIn(),
	}
	if !ix.opt.Compressed {
		cfg.Tee = newRun.capture
	}
	err := extsort.Merge(cfg, names, job.outName)
	if err != nil {
		return nil, err
	}
	if err := syncFile(ix.opt.FS, job.outName); err != nil {
		return nil, err
	}
	if ix.opt.Compressed {
		var want int64
		for _, r := range job.inputs {
			want += r.count
		}
		return ix.openCompressedRun(job.outName, job.outTier, job.outSeq, job.group, want)
	}
	newRun.count = int64(len(newRun.keys))
	return newRun, nil
}

// syncFile fsyncs an already-written file so a manifest may reference it.
func syncFile(fs storage.FS, name string) error {
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// swapLocked installs a finished compaction: the merged run replaces its
// inputs at the position of the oldest one (ix.runs stays sorted by seq —
// a group always covers a contiguous age range), the manifest is committed
// with the new run set, and only then are the input files deleted — so at
// every instant the on-disk manifest references only files that exist, and
// a crash between commit and deletion merely leaks orphan inputs the next
// Open ignores.
func (ix *Index) swapLocked(job *compactJob, newRun *run) error {
	dropped := make(map[*run]bool, len(job.inputs))
	for _, r := range job.inputs {
		dropped[r] = true
	}
	keep := ix.runs[:0]
	inserted := false
	for _, r := range ix.runs {
		if dropped[r] {
			if !inserted {
				keep = append(keep, newRun)
				inserted = true
			}
			continue
		}
		keep = append(keep, r)
	}
	ix.runs = keep
	if err := ix.commitManifestLocked(); err != nil {
		// The merged run is installed in memory, but durably the LAST GOOD
		// manifest — which references the inputs — stays authoritative, so
		// the input files must remain on disk for a future reopen. Make
		// the failure sticky: no later commit may land and supersede them.
		if ix.bgErr == nil {
			ix.bgErr = err
		}
		return err
	}
	for _, r := range job.inputs {
		_ = r.close()
		_ = ix.opt.FS.Remove(r.name)
	}
	return nil
}

// compactPendingLocked is the synchronous path: claim and merge groups
// inline (holding the handle lock) until none is ready — the pre-scheduler
// behavior, kept for deterministic single-threaded I/O traces.
func (ix *Index) compactPendingLocked() error {
	for {
		job := ix.findGroupLocked(true)
		if job == nil {
			return nil
		}
		newRun, err := ix.runCompaction(job)
		ix.inflight--
		if err != nil {
			// Roll the claim back so a later Flush retries the same group.
			for _, r := range job.inputs {
				r.claimed = false
			}
			ix.groupsClaimed[job.inTier] = job.group
			return err
		}
		if err := ix.landLocked(job, newRun); err != nil {
			return err
		}
	}
}

// kick nudges the compaction pool (non-blocking).
func (ix *Index) kick() {
	if ix.bgWake == nil {
		return
	}
	select {
	case ix.bgWake <- struct{}{}:
	default:
	}
}

// compactorLoop is one background compaction worker. Each worker claims
// ready groups one at a time; concurrent workers naturally pick up groups
// at different tiers, so a long high-tier merge never blocks fresh tier-0
// work. Merging happens with no lock held; only claim and swap touch mu.
func (ix *Index) compactorLoop() {
	defer ix.bgWG.Done()
	for {
		select {
		case <-ix.bgQuit:
			return
		case <-ix.bgWake:
		}
		for {
			ix.mu.Lock()
			job := ix.findGroupLocked(true)
			ix.mu.Unlock()
			if job == nil {
				break
			}
			// A sibling may find the next group ready right now.
			ix.kick()
			newRun, err := ix.runCompaction(job)
			ix.mu.Lock()
			ix.inflight--
			if err == nil {
				err = ix.landLocked(job, newRun)
			}
			if err != nil {
				if ix.bgErr == nil {
					ix.bgErr = err
				}
				for _, r := range job.inputs {
					r.claimed = false
				}
			}
			ix.cond.Broadcast()
			ix.mu.Unlock()
		}
	}
}

// drainLocked blocks until every enqueued and in-flight compaction has
// landed (or the first background error is observed). On return with a nil
// error the on-disk runs are exactly the synchronous-compaction fixpoint of
// the flush sequence so far.
func (ix *Index) drainLocked() error {
	if !ix.background {
		return ix.bgErr
	}
	for ix.bgErr == nil && (ix.inflight > 0 || ix.findGroupLocked(false) != nil) {
		ix.kick()
		ix.cond.Wait()
	}
	return ix.bgErr
}

// Sync flushes the memtable and waits for all background compactions to
// complete — the quiescence barrier: after a nil Sync the on-disk state is
// deterministic (byte-identical for any Workers/CompactionWorkers setting,
// background or synchronous). It surfaces any pending background error.
func (ix *Index) Sync() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.flushLocked(); err != nil {
		return err
	}
	return ix.drainLocked()
}

// Count returns the number of indexed series.
func (ix *Index) Count() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.count
}

// NumRuns returns the number of on-disk runs.
func (ix *Index) NumRuns() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.runs)
}

// CacheStats returns the shared block cache's counters, or zeros when the
// index reads no cache (uncompressed layout).
func (ix *Index) CacheStats() blockcache.Stats {
	if ix.opt.Cache == nil {
		return blockcache.Stats{}
	}
	return ix.opt.Cache.Stats()
}

// SizeBytes returns the total size of all run files.
func (ix *Index) SizeBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var total int64
	for _, r := range ix.runs {
		if f, err := ix.opt.FS.Open(r.name); err == nil {
			if s, err := f.Size(); err == nil {
				total += s
			}
			f.Close()
		}
	}
	return total
}

// Close flushes the memtable (so every appended series is durable in a
// run), drains in-flight background compactions (surfacing any pending
// background error), stops the compaction pool, and releases the raw file
// handle, waiting for in-flight queries. The drain makes Close a quiescence
// point: the on-disk runs left behind are deterministic and exactly what
// the committed manifest describes, so Open reconstructs this index.
func (ix *Index) Close() error {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return nil
	}
	ix.closed = true
	flushErr := ix.flushLocked()
	drainErr := ix.drainLocked()
	var quit chan struct{}
	if ix.background {
		quit = ix.bgQuit
		ix.background = false
	}
	ix.mu.Unlock()
	if quit != nil {
		close(quit)
		ix.bgWG.Wait()
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var walErr error
	if ix.wal != nil {
		walErr = ix.wal.close()
	}
	runsErr := ix.closeRunsLocked()
	closeErr := ix.rawFile.Close()
	if flushErr != nil {
		return flushErr
	}
	if drainErr != nil {
		return drainErr
	}
	if walErr != nil {
		return walErr
	}
	if runsErr != nil {
		return runsErr
	}
	return closeErr
}

// tierCursorsLocked snapshots the committed-groups cursor of every tier.
// Persisting the committed cursor (not the claim cursor) means a crash
// mid-merge reopens with every unfinished group unclaimed, so each
// re-forms and re-merges to the same deterministic output — and because
// landLocked commits same-tier swaps strictly in group order, the cursor
// can never run ahead of an unfinished group.
func (ix *Index) tierCursorsLocked() []manifest.TierCursor {
	tiers := make([]int, 0, len(ix.committedGroups))
	for tier := range ix.committedGroups {
		tiers = append(tiers, tier)
	}
	sort.Ints(tiers)
	out := make([]manifest.TierCursor, 0, len(tiers))
	for _, tier := range tiers {
		if groups := ix.committedGroups[tier]; groups > 0 {
			out = append(out, manifest.TierCursor{Tier: tier, Groups: groups})
		}
	}
	return out
}

// commitManifestLocked commits the manifest describing the current run
// set and scheduling cursors. Callers hold mu; the snapshot is taken
// under mu, but the encode+fsync runs on a dedicated commit mutex with
// mu RELEASED, so queries (which take mu.RLock) proceed during a slow
// manifest sync. mu is re-acquired before returning — callers must
// tolerate the drop. Every commit happens before any input-file deletion
// it supersedes, and commits carry a sequence number assigned under mu:
// if a later snapshot already reached disk, an earlier one is skipped
// (the newer snapshot is a strict superset of the structural state, and
// deletions only follow successful commits).
func (ix *Index) commitManifestLocked() error {
	m := ix.manifestLocked()
	ix.commitSeq++
	seq := ix.commitSeq
	ix.mu.Unlock()
	err := ix.commitSnapshot(seq, m)
	ix.mu.Lock()
	return err
}

// commitSnapshot serializes manifest commits on commitMu, dropping
// snapshots already superseded by a durable newer one.
func (ix *Index) commitSnapshot(seq int64, m *manifest.Manifest) error {
	ix.commitMu.Lock()
	defer ix.commitMu.Unlock()
	if ix.durableSeq >= seq {
		return nil
	}
	if err := manifest.Commit(ix.opt.FS, ix.opt.Name, m); err != nil {
		return err
	}
	ix.durableSeq = seq
	return nil
}

// manifestLocked snapshots the current structural state as a manifest.
func (ix *Index) manifestLocked() *manifest.Manifest {
	p := ix.opt.S.Params()
	var total int64
	runs := make([]manifest.RunInfo, len(ix.runs))
	for i, r := range ix.runs {
		ri := manifest.RunInfo{
			Name:    r.name,
			Tier:    r.tier,
			TierSeq: r.tierSeq,
			Seq:     r.seq,
			Count:   r.count,
		}
		if r.count > 0 {
			ri.MinKey = r.minKey()
			ri.MaxKey = r.maxKey()
		}
		runs[i] = ri
		total += r.count
	}
	// Quarantined runs stay in every committed manifest (merged back in by
	// seq — both lists are age-ordered) until RebuildQuarantined replaces
	// them: dropping them would turn a detected corruption into a silent
	// permanent data loss on the next reopen.
	if len(ix.quarantined) > 0 {
		merged := make([]manifest.RunInfo, 0, len(runs)+len(ix.quarantined))
		qi := 0
		for _, ri := range runs {
			for qi < len(ix.quarantined) && ix.quarantined[qi].Seq < ri.Seq {
				merged = append(merged, ix.quarantined[qi])
				qi++
			}
			merged = append(merged, ri)
		}
		merged = append(merged, ix.quarantined[qi:]...)
		runs = merged
		for _, ri := range ix.quarantined {
			total += ri.Count
		}
	}
	m := &manifest.Manifest{
		Variant:    manifest.VariantLSM,
		SeriesLen:  p.SeriesLen,
		Segments:   p.Segments,
		CardBits:   p.CardBits,
		RawName:    ix.opt.RawName,
		Count:      total,
		Checksums:  ix.opt.Checksums,
		Compressed: ix.opt.Compressed,
		LSM: &manifest.LSMLayout{
			Fanout:      ix.opt.Fanout,
			NextRun:     ix.nextRun,
			NextSeq:     ix.nextSeq,
			Tier0Seq:    ix.tier0Seq,
			Cursors:     ix.tierCursorsLocked(),
			Runs:        runs,
			WALFlushed:  ix.walFlushed,
			WALFirstSeg: ix.walFirstSeg,
			WALNextSeg:  ix.walNextSeg,
		},
	}
	return m
}

func (ix *Index) readRaw(pos int64, dst series.Series) error {
	p := ix.opt.S.Params()
	sz := series.EncodedSize(p.SeriesLen)
	buf := make([]byte, sz)
	if n, err := ix.rawFile.ReadAt(buf, pos*int64(sz)); n != sz {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("lsm: raw series %d: %w", pos, err)
	}
	if ix.rawSums != nil {
		if err := ix.rawSums.Verify(pos, buf); err != nil {
			return fmt.Errorf("lsm: raw series %d: %w", pos, err)
		}
	}
	series.DecodeInto(buf, dst)
	return nil
}

// ApproxSearch merges, from every run and the memtable, a half-window of
// records on each side of where the query's key sorts, and evaluates the
// merged window best-lower-bound-first with early abandoning (see
// internal/window). The merged window is a pure function of the record
// multiset, so the answer is identical for any run layout — before or
// after flushes and compactions, and across partition counts. Safe for
// concurrent use.
func (ix *Index) ApproxSearch(q series.Series) (Result, error) {
	return ix.ApproxSearchCtx(context.Background(), q)
}

// ApproxSearchCtx is ApproxSearch with cancellation: the candidate fetch
// loop observes ctx between records and returns ctx.Err() without a
// partial answer.
func (ix *Index) ApproxSearchCtx(ctx context.Context, q series.Series) (Result, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	res, err := ix.approxLocked(ctx, q)
	res.Dist = math.Sqrt(res.Dist)
	return res, err
}

// approxLocked is the internal form of ApproxSearch: res.Dist holds the
// SQUARED best distance (the LSM query path, like core's, stays in squared
// space until a public entry point materializes a Euclidean distance).
func (ix *Index) approxLocked(ctx context.Context, q series.Series) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if ix.count == 0 {
		return res, errors.New("lsm: index is empty")
	}
	below, above, runs, err := ix.windowCandsLocked(q)
	if err != nil {
		return res, err
	}
	res.VisitedRuns = runs
	pos, sq, visited, err := window.Eval(q, window.Merge(below, above, ix.opt.Window/2),
		core.CtxFetch(ctx, func(c window.Cand, dst series.Series) error {
			return ix.readRaw(c.Pos, dst)
		}))
	res.Pos, res.Dist, res.VisitedRecords = pos, sq, visited
	return res, err
}

// windowCandsLocked collects this index's window contributions: for each
// run a binary search finds where the query key sorts and the surrounding
// half-windows become candidates; the (unsorted) memtable's records are
// classified per side, ordered, and trimmed to the half-window. Per-source
// trimming never changes the merged global window — a record in the global
// trailing half is necessarily in its own source's trailing half. Lower
// bounds come from one per-query MinDist table shared by every source.
func (ix *Index) windowCandsLocked(q series.Series) (below, above []window.Cand, runs int64, err error) {
	key, err := ix.opt.S.KeyOf(q)
	if err != nil {
		return nil, nil, 0, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return nil, nil, 0, err
	}
	tbl := ix.opt.S.BuildMinDistTable(qPAA, nil)
	half := ix.opt.Window / 2
	for _, r := range ix.runs {
		idx, serr := r.searchKey(key)
		if serr != nil {
			return nil, nil, 0, serr
		}
		lo, hi := idx-int64(half), idx+int64(half)
		err := r.each(lo, idx, func(k summary.Key, pos int64) error {
			below = append(below, window.Cand{Key: k, Pos: pos, LB: tbl.Key(k)})
			return nil
		})
		if err != nil {
			return nil, nil, 0, err
		}
		err = r.each(idx, hi, func(k summary.Key, pos int64) error {
			above = append(above, window.Cand{Key: k, Pos: pos, LB: tbl.Key(k)})
			return nil
		})
		if err != nil {
			return nil, nil, 0, err
		}
		runs++
	}
	var mb, ma []window.Cand
	for _, e := range ix.mem {
		c := window.Cand{Key: e.key, Pos: e.pos, LB: tbl.Key(e.key)}
		if e.key.Less(key) {
			mb = append(mb, c)
		} else {
			ma = append(ma, c)
		}
	}
	sort.Slice(mb, func(i, j int) bool { return window.Less(mb[i], mb[j]) })
	sort.Slice(ma, func(i, j int) bool { return window.Less(ma[i], ma[j]) })
	if len(mb) > half {
		mb = mb[len(mb)-half:]
	}
	if len(ma) > half {
		ma = ma[:half]
	}
	below = append(below, mb...)
	above = append(above, ma...)
	return below, above, runs, nil
}

// ApproxWindowCands is the partition-layer entry: this index's window
// contributions for q, to be merged with the other partitions' before one
// global evaluation. An empty index contributes nothing (no error — the
// cross-partition window may still be non-empty). The Leaves counter
// reports runs probed.
func (ix *Index) ApproxWindowCands(q series.Series) (core.ApproxWindow, error) {
	return ix.ApproxWindowCandsCtx(context.Background(), q)
}

// ApproxWindowCandsCtx is ApproxWindowCands with cancellation: the
// returned window's Fetch observes ctx between records.
func (ix *Index) ApproxWindowCandsCtx(ctx context.Context, q series.Series) (core.ApproxWindow, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var aw core.ApproxWindow
	if ix.count == 0 {
		return aw, nil
	}
	below, above, runs, err := ix.windowCandsLocked(q)
	if err != nil {
		return aw, err
	}
	aw.Below, aw.Above, aw.Leaves = below, above, runs
	aw.Fetch = core.CtxFetch(ctx, func(c window.Cand, dst series.Series) error {
		return ix.readRaw(c.Pos, dst)
	})
	return aw, nil
}

// ExactSearch is SIMS over the union of all runs' in-memory key arrays and
// the memtable: squared lower bounds for every record (one per-query
// MinDistTable shared by every run and the memtable, evaluated per run
// across QueryWorkers), then a position-ordered skip-sequential scan of the
// raw file, sharded by position range with a shared squared best-so-far
// bound — the Euclidean distance is materialized once, at return. Safe for
// concurrent use; (Pos, Dist) is identical for any worker count.
func (ix *Index) ExactSearch(q series.Series) (Result, error) {
	return ix.ExactSearchCtx(context.Background(), q)
}

// ExactSearchCtx is ExactSearch with cancellation: every phase — window
// fetch, per-run lower bounds, verification scan — observes ctx and
// returns ctx.Err() without a partial answer.
func (ix *Index) ExactSearchCtx(ctx context.Context, q series.Series) (Result, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	res, err := ix.exactLocked(ctx, q)
	res.Dist = math.Sqrt(res.Dist)
	return res, err
}

// exactLocked runs the SIMS pipeline in squared space.
func (ix *Index) exactLocked(ctx context.Context, q series.Series) (Result, error) {
	res, err := ix.approxLocked(ctx, q)
	if err != nil {
		return res, err
	}
	var bound shard.BSF
	bound.Init(res.Dist)
	return ix.exactVerifyLocked(ctx, q, res, &bound)
}

// ExactVerify is the partition-layer entry: verify the seed (seedPos,
// seedSq — SQUARED) against this index's records, pruning with the shared
// cross-partition bound, and return the best in squared space with
// verify-phase counters only. An empty index returns the seed unchanged.
func (ix *Index) ExactVerify(q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (Result, error) {
	return ix.ExactVerifyCtx(context.Background(), q, seedPos, seedSq, bound)
}

// ExactVerifyCtx is ExactVerify with cancellation.
func (ix *Index) ExactVerifyCtx(ctx context.Context, q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (Result, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	res := Result{Pos: seedPos, Dist: seedSq}
	if ix.count == 0 {
		return res, nil
	}
	return ix.exactVerifyLocked(ctx, q, res, bound)
}

// exactVerifyLocked is the verification phase: lower-bound every record,
// then scan the surviving candidates in position order, tightening res
// (and the shared bound) as closer records are found.
func (ix *Index) exactVerifyLocked(ctx context.Context, q series.Series, res Result, bound *shard.BSF) (Result, error) {
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	p := ix.opt.S.Params()
	// One lookup table serves the whole query: it is read-only after the
	// build, so every run shard and the memtable pass read it concurrently.
	tbl := ix.opt.S.BuildMinDistTable(qPAA, nil)
	type cand struct {
		pos int64
		lb  float64
	}
	// Collect candidate lower bounds run by run; each run's key array is
	// independent, so the lower-bound computation fans out per run, and the
	// filtered candidates concatenate in run order (deterministically — the
	// filter bound is fixed at the approximate answer).
	perRun := make([][]cand, len(ix.runs))
	runWorkers := shard.Resolve(ix.opt.QueryWorkers, len(ix.runs))
	// Split the worker budget between the run fan-out and the per-run
	// lower-bound pass, so a single-run index (fresh bulk load, or fully
	// compacted) still shards its dominant scan across all QueryWorkers.
	innerWorkers := shard.PerGroup(ix.opt.QueryWorkers, runWorkers)
	shardErr := shard.ScanCtx(ctx, runWorkers, len(ix.runs),
		func(si int, rr shard.Range, cancelled func() bool) error {
			for i := rr.Lo; i < rr.Hi; i++ {
				if cancelled() {
					return nil
				}
				r := ix.runs[i]
				var cs []cand
				var lbs []float64
				// Block-at-a-time: with compressed runs the working set is
				// one decoded block plus its lower bounds, never the run.
				berr := r.eachBlock(func(keys []summary.Key, positions []int64) error {
					if cap(lbs) < len(keys) {
						lbs = make([]float64, len(keys))
					}
					lbs = lbs[:len(keys)]
					tbl.KeysInto(keys, lbs, innerWorkers)
					for j, lb := range lbs {
						if lb < res.Dist && !bound.Prunes(lb) {
							cs = append(cs, cand{positions[j], lb})
						}
					}
					return nil
				})
				if berr != nil {
					return berr
				}
				perRun[i] = cs
			}
			return nil
		})
	if shardErr != nil {
		// On a ctx error abandoned shards may still be writing perRun; it is
		// never read on this path.
		return res, shardErr
	}
	var cands []cand
	for _, cs := range perRun {
		cands = append(cands, cs...)
	}
	for _, e := range ix.mem {
		// Key-direct table evaluation: no SAX word is materialized for the
		// memtable pass either.
		if lb := tbl.Key(e.key); lb < res.Dist && !bound.Prunes(lb) {
			cands = append(cands, cand{e.pos, lb})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].pos < cands[b].pos })

	workers := shard.Resolve(ix.opt.QueryWorkers, len(cands))
	pos, dist, vr, _, err := shard.ScanReduceCtx(ctx, workers, len(cands), res.Pos, res.Dist, func(rr shard.Range, local *shard.Outcome, cancelled func() bool) error {
		scratch := make(series.Series, p.SeriesLen)
		for i := rr.Lo; i < rr.Hi; i++ {
			if cancelled() {
				return nil
			}
			c := cands[i]
			if c.lb >= local.Dist || bound.Prunes(c.lb) {
				continue
			}
			if err := ix.readRaw(c.pos, scratch); err != nil {
				return err
			}
			local.VisitedRecords++
			sq, ok := series.SquaredEDEarlyAbandon(q, scratch, local.Dist)
			if !ok {
				continue
			}
			if sq < local.Dist {
				local.Dist, local.Pos = sq, c.pos
				bound.Lower(sq)
			}
		}
		return nil
	})
	res.Pos, res.Dist = pos, dist
	res.VisitedRecords += vr
	return res, err
}
