package lsm

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/runblock"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
	"github.com/coconut-db/coconut/internal/summary"
)

// Open reopens a persisted Coconut-LSM index from its manifest: every
// run's in-memory key array is reloaded by one sequential pass over the
// run file itself — the raw dataset is opened for query-time fetches but
// never read — and the scheduling counters (run naming, seq, tierSeq,
// compaction-group cursors) are restored so subsequent flushes and
// compactions continue the exact deterministic sequence a never-closed
// index would have produced.
//
// Configuration mismatches (summarization parameters, dataset file, tier
// fanout) fail loudly with manifest.ErrConfigMismatch; a run file whose
// size, record count, key range, or sort order disagrees with the manifest
// fails with manifest.ErrCorruptManifest.
func Open(opt Options) (*Index, error) {
	if opt.FS == nil || opt.Name == "" || opt.S == nil {
		return nil, errors.New("lsm: open needs FS, Name, and summarizer")
	}
	m, err := manifest.Load(opt.FS, opt.Name)
	if err != nil {
		return nil, fmt.Errorf("lsm: loading manifest for %q: %w", opt.Name, err)
	}
	if err := m.CheckVariant(manifest.VariantLSM); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if m.LSM == nil {
		return nil, fmt.Errorf("lsm: %w: lsm manifest without lsm layout", manifest.ErrCorruptManifest)
	}
	if opt.RawName == "" {
		opt.RawName = m.RawName
	}
	if err := m.CheckParams(opt.S.Params(), false, opt.RawName); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	// The tier fanout shapes the deterministic compaction DAG; the stored
	// value is authoritative. Adopt it when the caller left it unset, and
	// fail loudly on an explicit conflict.
	if opt.Fanout == 0 {
		opt.Fanout = m.LSM.Fanout
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Fanout != m.LSM.Fanout {
		return nil, fmt.Errorf("lsm: %w: fanout %d, stored index was built with %d",
			manifest.ErrConfigMismatch, opt.Fanout, m.LSM.Fanout)
	}
	// The checksummed-block and block-compressed layouts are properties of
	// the stored bytes, not of this process's configuration; adopt the
	// manifest's flags (and materialize the block cache a compressed index
	// reads through).
	opt.Checksums = m.Checksums
	opt.Compressed = m.Compressed
	opt.ensureCache()

	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	ix := &Index{opt: opt, rawFile: raw,
		groupsClaimed: map[int]int{}, committedGroups: map[int]int{},
		parked: map[int]map[int]*finishedSwap{}}
	ix.cond = sync.NewCond(&ix.mu)

	lastSeq := int64(-1)
	var quarantinedCount int64
	for i, ri := range m.LSM.Runs {
		if ri.Seq < lastSeq {
			raw.Close()
			return nil, fmt.Errorf("lsm: %w: runs out of age order", manifest.ErrCorruptManifest)
		}
		lastSeq = ri.Seq
		var r *run
		if opt.Compressed {
			r, err = loadCompressedRun(opt.FS, ri, opt.Checksums, opt.Cache)
		} else {
			r, err = loadRun(opt.FS, ri, opt.Checksums)
		}
		if err != nil {
			if opt.AllowDegraded && (errors.Is(err, storage.ErrCorruptData) ||
				errors.Is(err, manifest.ErrCorruptManifest) || errors.Is(err, storage.ErrNotExist)) {
				// Quarantine: the run's records stay accounted for in every
				// manifest this handle commits, queries answer over the
				// healthy remainder, and RebuildQuarantined can re-derive
				// the lost records from the raw dataset.
				ix.quarantined = append(ix.quarantined, ri)
				quarantinedCount += ri.Count
				continue
			}
			_ = ix.closeRunsLocked()
			raw.Close()
			return nil, fmt.Errorf("lsm: reloading run %d (%s): %w", i, ri.Name, err)
		}
		ix.runs = append(ix.runs, r)
		ix.count += r.count
	}
	if ix.count+quarantinedCount != m.Count {
		_ = ix.closeRunsLocked()
		raw.Close()
		return nil, fmt.Errorf("lsm: %w: runs hold %d records, manifest says %d",
			manifest.ErrCorruptManifest, ix.count+quarantinedCount, m.Count)
	}
	if err := ix.attachRawSums(false); err != nil {
		_ = ix.closeRunsLocked()
		raw.Close()
		return nil, err
	}
	ix.nextRun = m.LSM.NextRun
	ix.nextSeq = m.LSM.NextSeq
	ix.tier0Seq = m.LSM.Tier0Seq
	for _, c := range m.LSM.Cursors {
		// Committed groups are also the claim floor: everything below the
		// durable cursor is done, everything above re-forms and re-merges.
		ix.groupsClaimed[c.Tier] = c.Groups
		ix.committedGroups[c.Tier] = c.Groups
	}
	if err := ix.recoverWAL(m); err != nil {
		_ = ix.closeRunsLocked()
		raw.Close()
		return nil, err
	}
	ix.startPool()
	// A crash between a manifest commit and the next can leave compaction
	// groups ready but unmerged; nudge the pool (or fold them inline) so
	// the reopened index converges to the same fixpoint.
	if ix.background {
		ix.kick()
	} else {
		ix.mu.Lock()
		err := ix.compactPendingLocked()
		ix.mu.Unlock()
		if err != nil {
			ix.mu.Lock()
			_ = ix.closeRunsLocked()
			ix.mu.Unlock()
			ix.rawFile.Close()
			return nil, err
		}
	}
	return ix, nil
}

// recoverWAL replays the un-flushed WAL segments named by the manifest
// into the memtable and establishes a fresh log generation.
//
// Replay is idempotent against the durable flush cursor: entries at LSN
// below it are already covered by a run and are skipped. The recovered
// entries are then RE-LOGGED — written as one synced record into a brand
// new segment, which a manifest commit makes the only live segment before
// the old ones are deleted. Re-logging (rather than adopting the old
// segments) is what keeps recovery idempotent across repeated crashes:
// an entry dropped by this replay because its raw bytes never reached
// stable storage can never be resurrected by a later replay after the
// raw file has grown past its position again.
//
// With Options.DisableWAL the replayed entries are flushed into a run
// immediately and every segment is deleted, so the index converges to a
// pure no-WAL layout while still honoring the durability the previous
// generation acknowledged.
func (ix *Index) recoverWAL(m *manifest.Manifest) error {
	opt := ix.opt
	ix.walFlushed = m.LSM.WALFlushed
	ix.walFirstSeg = m.LSM.WALFirstSeg
	ix.walNextSeg = m.LSM.WALNextSeg
	ix.walAppended = m.LSM.WALFlushed

	rawSize, err := ix.rawFile.Size()
	if err != nil {
		return err
	}
	rawRecs := rawSize / int64(series.EncodedSize(opt.S.Params().SeriesLen))
	var replayed []Entry
	var reclaimed []string
	last, err := walReplay(opt.FS, opt.Name, ix.walFirstSeg, ix.walNextSeg,
		ix.walFlushed, rawRecs, func(e Entry) { replayed = append(replayed, e) })
	if err != nil {
		if !opt.AllowDegraded || !errors.Is(err, storage.ErrCorruptData) {
			return err
		}
		// A rotted WAL segment under AllowDegraded: the log can no longer
		// say which tail entries were acknowledged, but the raw dataset —
		// verified record by record against its CRC sidecar — still holds
		// every acknowledged byte (raw writes precede their log record, and
		// flushes fsync raw before advancing the cursor). Rebuild the
		// memtable as "every raw record no healthy run covers": a superset
		// of the acknowledged tail (re-indexing an unacknowledged record is
		// harmless), and it also re-derives the records of any runs
		// quarantined above, whose quarantine is lifted here — their files
		// are deleted once the commit below stops referencing them.
		replayed = replayed[:0]
		covered := make(map[int64]bool, ix.count)
		for _, r := range ix.runs {
			err := r.eachBlock(func(_ []summary.Key, positions []int64) error {
				for _, p := range positions {
					covered[p] = true
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		s := make(series.Series, opt.S.Params().SeriesLen)
		for pos := int64(0); pos < rawRecs; pos++ {
			if covered[pos] {
				continue
			}
			if err := ix.readRaw(pos, s); err != nil {
				return err
			}
			key, kerr := opt.S.KeyOf(s)
			if kerr != nil {
				return kerr
			}
			if opt.Owns != nil && !opt.Owns(key) {
				continue
			}
			replayed = append(replayed, Entry{Key: key, Pos: pos})
		}
		for _, ri := range ix.quarantined {
			reclaimed = append(reclaimed, ri.Name)
		}
		ix.quarantined = nil
		last = ix.walFlushed + int64(len(replayed))
	}
	removeReclaimed := func() error {
		for _, name := range reclaimed {
			if err := opt.FS.Remove(name); err != nil && !errors.Is(err, storage.ErrNotExist) {
				return err
			}
		}
		return nil
	}
	for _, e := range replayed {
		ix.mem = append(ix.mem, memEntry{key: e.Key, pos: e.Pos})
	}
	ix.count += int64(len(replayed))
	ix.walAppended = last

	// A crash inside a flush's commit window can leave durable segments the
	// manifest does not reference (replay probed them above); the new
	// generation starts past every file that exists.
	oldFirst := ix.walFirstSeg
	next := ix.walNextSeg
	for opt.FS.Exists(walSegName(opt.Name, next)) {
		next++
	}

	if opt.DisableWAL {
		ix.walFirstSeg, ix.walNextSeg = next, next
		ix.mu.Lock()
		if len(ix.mem) > 0 {
			// flushLocked covers the replayed entries with a durable run and
			// commits a manifest that references no WAL segments.
			err = ix.flushLocked()
		} else if oldFirst < next || m.LSM.WALNextSeg > m.LSM.WALFirstSeg {
			err = ix.commitManifestLocked()
		}
		ix.mu.Unlock()
		if err != nil {
			return err
		}
		if err := removeReclaimed(); err != nil {
			return err
		}
		return ix.removeWALSegments(oldFirst, next)
	}

	f, size, err := createWALSegment(opt.FS, opt.Name, next, ix.walFlushed)
	if err != nil {
		return err
	}
	if len(replayed) > 0 {
		rec := encodeWALRecord(replayed)
		if _, err := f.WriteAt(rec, size); err != nil {
			f.Close()
			return err
		}
		size += int64(len(rec))
		// The replayed entries were durable in the old generation; they must
		// be durable in the new one before the old segments go away.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	ix.wal = newWAL(opt.FS, opt.Name, ix.rawFile, f, next, size,
		ix.walAppended, opt.WALGroupWindow, opt.WALSyncEveryAppend)
	ix.walFirstSeg, ix.walNextSeg = next, next+1
	ix.mu.Lock()
	err = ix.commitManifestLocked()
	ix.mu.Unlock()
	if err != nil {
		return err
	}
	if err := removeReclaimed(); err != nil {
		return err
	}
	return ix.removeWALSegments(oldFirst, next)
}

// removeWALSegments deletes the old-generation segments [first, next),
// plus any stragglers a crash left below first (a flush that committed
// its manifest but lost power before recycling the covered segments).
func (ix *Index) removeWALSegments(first, next int) error {
	for s := first; s < next; s++ {
		if err := ix.opt.FS.Remove(walSegName(ix.opt.Name, s)); err != nil &&
			!errors.Is(err, storage.ErrNotExist) {
			return err
		}
	}
	for s := first - 1; s >= 0 && ix.opt.FS.Exists(walSegName(ix.opt.Name, s)); s-- {
		if err := ix.opt.FS.Remove(walSegName(ix.opt.Name, s)); err != nil &&
			!errors.Is(err, storage.ErrNotExist) {
			return err
		}
	}
	return nil
}

// errCorruptRun types a damaged run file as BOTH kinds of corruption: the
// manifest's promises about the file are broken (the historical type
// callers match on) and the stored bytes themselves are bad (the typed
// on-disk corruption error the integrity layer introduces).
var errCorruptRun = fmt.Errorf("%w: %w", manifest.ErrCorruptManifest, storage.ErrCorruptData)

// loadRun reloads one immutable run's in-memory key array from its file —
// a single sequential read — and verifies it against the manifest's
// integrity bounds: exact byte size, record count, first/last key, and
// sortedness under the refined (key, encoded position) order. With
// checksums on, the read goes through the verifying block layer, so
// bit-rot anywhere in the file surfaces here as errCorruptRun rather than
// as silently wrong keys.
func loadRun(fs storage.FS, ri manifest.RunInfo, checksums bool) (*run, error) {
	inner, err := fs.Open(ri.Name)
	if err != nil {
		return nil, err
	}
	f := storage.File(inner)
	if checksums {
		if f, err = storage.OpenChecksumFile(inner); err != nil {
			inner.Close()
			if errors.Is(err, storage.ErrCorruptData) {
				return nil, fmt.Errorf("%w: %w", manifest.ErrCorruptManifest, err)
			}
			return nil, err
		}
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size != ri.Count*recordSize {
		return nil, fmt.Errorf("%w: run file is %d bytes, manifest says %d records of %d bytes",
			errCorruptRun, size, ri.Count, recordSize)
	}
	r := &run{name: ri.Name, tier: ri.Tier, count: ri.Count, seq: ri.Seq, tierSeq: ri.TierSeq}
	r.keys = make([]summary.Key, 0, ri.Count)
	r.positions = make([]int64, 0, ri.Count)
	sr := storage.NewSequentialReader(f, 0, size, 0)
	rec := make([]byte, recordSize)
	for i := int64(0); i < ri.Count; i++ {
		if _, err := io.ReadFull(sr, rec); err != nil {
			return nil, fmt.Errorf("%w: short run file: %w", errCorruptRun, err)
		}
		r.capture(rec)
	}
	if len(r.keys) == 0 {
		return nil, fmt.Errorf("%w: empty run", errCorruptRun)
	}
	if r.keys[0] != ri.MinKey || r.keys[len(r.keys)-1] != ri.MaxKey {
		return nil, fmt.Errorf("%w: run key range does not match manifest", errCorruptRun)
	}
	if !sort.SliceIsSorted(r.keys, func(a, b int) bool {
		if c := r.keys[a].Compare(r.keys[b]); c != 0 {
			return c < 0
		}
		return lePosLess(r.positions[a], r.positions[b])
	}) {
		return nil, fmt.Errorf("%w: run records out of order", errCorruptRun)
	}
	return r, nil
}

// loadCompressedRun reopens one immutable block-compressed run: the footer
// and block directory come into memory (a few bytes per block); the key
// data stays on disk, decoded block by block through the shared cache.
// Reopen-time integrity matches loadRun's: a full streaming Verify decodes
// every block once — checking per-block CRCs, in-block and cross-block
// refined order, and the directory's promises — in O(one block) memory,
// and the manifest's count and key range are cross-checked against the
// footer. Any disagreement surfaces as errCorruptRun.
func loadCompressedRun(fs storage.FS, ri manifest.RunInfo, checksums bool, cache *blockcache.Cache) (*run, error) {
	inner, err := fs.Open(ri.Name)
	if err != nil {
		return nil, err
	}
	f := storage.File(inner)
	if checksums {
		if f, err = storage.OpenChecksumFile(inner); err != nil {
			inner.Close()
			if errors.Is(err, storage.ErrCorruptData) {
				return nil, fmt.Errorf("%w: %w", manifest.ErrCorruptManifest, err)
			}
			return nil, err
		}
	}
	rb, err := runblock.OpenReader(f, cache)
	if err != nil {
		f.Close()
		if errors.Is(err, storage.ErrCorruptData) {
			return nil, fmt.Errorf("%w: %w", manifest.ErrCorruptManifest, err)
		}
		return nil, err
	}
	fail := func(err error) (*run, error) {
		rb.Close()
		return nil, err
	}
	if rb.Count() != ri.Count {
		return fail(fmt.Errorf("%w: run file holds %d records, manifest says %d",
			errCorruptRun, rb.Count(), ri.Count))
	}
	if rb.Count() == 0 {
		return fail(fmt.Errorf("%w: empty run", errCorruptRun))
	}
	if rb.MinKey() != ri.MinKey || rb.MaxKey() != ri.MaxKey {
		return fail(fmt.Errorf("%w: run key range does not match manifest", errCorruptRun))
	}
	if err := rb.Verify(); err != nil {
		if errors.Is(err, storage.ErrCorruptData) {
			return fail(fmt.Errorf("%w: %w", manifest.ErrCorruptManifest, err))
		}
		return fail(err)
	}
	return &run{name: ri.Name, tier: ri.Tier, count: ri.Count, seq: ri.Seq, tierSeq: ri.TierSeq, rb: rb}, nil
}
