package lsm

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// Open reopens a persisted Coconut-LSM index from its manifest: every
// run's in-memory key array is reloaded by one sequential pass over the
// run file itself — the raw dataset is opened for query-time fetches but
// never read — and the scheduling counters (run naming, seq, tierSeq,
// compaction-group cursors) are restored so subsequent flushes and
// compactions continue the exact deterministic sequence a never-closed
// index would have produced.
//
// Configuration mismatches (summarization parameters, dataset file, tier
// fanout) fail loudly with manifest.ErrConfigMismatch; a run file whose
// size, record count, key range, or sort order disagrees with the manifest
// fails with manifest.ErrCorruptManifest.
func Open(opt Options) (*Index, error) {
	if opt.FS == nil || opt.Name == "" || opt.S == nil {
		return nil, errors.New("lsm: open needs FS, Name, and summarizer")
	}
	m, err := manifest.Load(opt.FS, opt.Name)
	if err != nil {
		return nil, fmt.Errorf("lsm: loading manifest for %q: %w", opt.Name, err)
	}
	if err := m.CheckVariant(manifest.VariantLSM); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if m.LSM == nil {
		return nil, fmt.Errorf("lsm: %w: lsm manifest without lsm layout", manifest.ErrCorruptManifest)
	}
	if opt.RawName == "" {
		opt.RawName = m.RawName
	}
	if err := m.CheckParams(opt.S.Params(), false, opt.RawName); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	// The tier fanout shapes the deterministic compaction DAG; the stored
	// value is authoritative. Adopt it when the caller left it unset, and
	// fail loudly on an explicit conflict.
	if opt.Fanout == 0 {
		opt.Fanout = m.LSM.Fanout
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Fanout != m.LSM.Fanout {
		return nil, fmt.Errorf("lsm: %w: fanout %d, stored index was built with %d",
			manifest.ErrConfigMismatch, opt.Fanout, m.LSM.Fanout)
	}

	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	ix := &Index{opt: opt, rawFile: raw,
		groupsClaimed: map[int]int{}, committedGroups: map[int]int{},
		parked: map[int]map[int]*finishedSwap{}}
	ix.cond = sync.NewCond(&ix.mu)

	lastSeq := int64(-1)
	for i, ri := range m.LSM.Runs {
		if ri.Seq < lastSeq {
			raw.Close()
			return nil, fmt.Errorf("lsm: %w: runs out of age order", manifest.ErrCorruptManifest)
		}
		lastSeq = ri.Seq
		r, err := loadRun(opt.FS, ri)
		if err != nil {
			raw.Close()
			return nil, fmt.Errorf("lsm: reloading run %d (%s): %w", i, ri.Name, err)
		}
		ix.runs = append(ix.runs, r)
		ix.count += r.count
	}
	if ix.count != m.Count {
		raw.Close()
		return nil, fmt.Errorf("lsm: %w: runs hold %d records, manifest says %d",
			manifest.ErrCorruptManifest, ix.count, m.Count)
	}
	ix.nextRun = m.LSM.NextRun
	ix.nextSeq = m.LSM.NextSeq
	ix.tier0Seq = m.LSM.Tier0Seq
	for _, c := range m.LSM.Cursors {
		// Committed groups are also the claim floor: everything below the
		// durable cursor is done, everything above re-forms and re-merges.
		ix.groupsClaimed[c.Tier] = c.Groups
		ix.committedGroups[c.Tier] = c.Groups
	}
	ix.startPool()
	// A crash between a manifest commit and the next can leave compaction
	// groups ready but unmerged; nudge the pool (or fold them inline) so
	// the reopened index converges to the same fixpoint.
	if ix.background {
		ix.kick()
	} else {
		ix.mu.Lock()
		err := ix.compactPendingLocked()
		ix.mu.Unlock()
		if err != nil {
			ix.rawFile.Close()
			return nil, err
		}
	}
	return ix, nil
}

// loadRun reloads one immutable run's in-memory key array from its file —
// a single sequential read — and verifies it against the manifest's
// integrity bounds: exact byte size, record count, first/last key, and
// sortedness under the refined (key, encoded position) order.
func loadRun(fs storage.FS, ri manifest.RunInfo) (*run, error) {
	f, err := fs.Open(ri.Name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size != ri.Count*recordSize {
		return nil, fmt.Errorf("%w: run file is %d bytes, manifest says %d records of %d bytes",
			manifest.ErrCorruptManifest, size, ri.Count, recordSize)
	}
	r := &run{name: ri.Name, tier: ri.Tier, count: ri.Count, seq: ri.Seq, tierSeq: ri.TierSeq}
	r.keys = make([]summary.Key, 0, ri.Count)
	r.positions = make([]int64, 0, ri.Count)
	sr := storage.NewSequentialReader(f, 0, size, 0)
	rec := make([]byte, recordSize)
	for i := int64(0); i < ri.Count; i++ {
		if _, err := io.ReadFull(sr, rec); err != nil {
			return nil, fmt.Errorf("%w: short run file: %v", manifest.ErrCorruptManifest, err)
		}
		r.capture(rec)
	}
	if len(r.keys) == 0 {
		return nil, fmt.Errorf("%w: empty run", manifest.ErrCorruptManifest)
	}
	if r.keys[0] != ri.MinKey || r.keys[len(r.keys)-1] != ri.MaxKey {
		return nil, fmt.Errorf("%w: run key range does not match manifest", manifest.ErrCorruptManifest)
	}
	if !sort.SliceIsSorted(r.keys, func(a, b int) bool {
		if c := r.keys[a].Compare(r.keys[b]); c != 0 {
			return c < 0
		}
		return lePosLess(r.positions[a], r.positions[b])
	}) {
		return nil, fmt.Errorf("%w: run records out of order", manifest.ErrCorruptManifest)
	}
	return r, nil
}
