package lsm

// Tests for the durable lifecycle: Open must reconstruct an index from the
// manifest and run files alone (never the raw dataset), restore the
// deterministic compaction cursors so a reopened index continues the exact
// sequence a never-closed one would, and fail loudly on corruption. Plus
// the adaptive scheduler: tier-0 groups pop ahead of higher tiers, and
// backpressure defers higher tiers entirely.

import (
	"errors"
	"fmt"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

func reopen(t *testing.T, fs *storage.MemFS, background bool) *Index {
	t.Helper()
	ix, err := Open(Options{
		FS:                   fs,
		Name:                 "lsm",
		S:                    tSummarizer(t),
		RawName:              "raw",
		MemBudgetBytes:       32 * recordSize,
		Fanout:               2,
		Workers:              2,
		BackgroundCompaction: background,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestOpenRoundTrip: a quiesced index reopens with identical runs, count,
// and exact/approx answers — and the reopen never reads the raw dataset.
func TestOpenRoundTrip(t *testing.T) {
	ix, fs := buildStreamed(t, false, 0)
	wantRuns := ix.NumRuns()
	wantCount := ix.Count()
	queries := dataset.Queries(dataset.NewRandomWalk(), 5, tLen, 99)
	type answer struct{ exact, approx Result }
	want := make([]answer, len(queries))
	for i, q := range queries {
		e, err := ix.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ix.ApproxSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = answer{e, a}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Any read of the raw dataset during Open is a failure: the manifest
	// and the run files must suffice.
	fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
		if op == storage.OpRead && name == "raw" {
			return fmt.Errorf("raw dataset read during reopen (off=%d n=%d)", off, n)
		}
		return nil
	})
	re := reopen(t, fs, false)
	fs.SetFault(nil)
	defer re.Close()

	if re.NumRuns() != wantRuns || re.Count() != wantCount {
		t.Fatalf("reopened %d runs / %d series, want %d / %d",
			re.NumRuns(), re.Count(), wantRuns, wantCount)
	}
	for i, q := range queries {
		e, err := re.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := re.ApproxSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if e != want[i].exact || a != want[i].approx {
			t.Fatalf("query %d: reopened answers differ: exact %+v vs %+v, approx %+v vs %+v",
				i, e, want[i].exact, a, want[i].approx)
		}
	}
}

// TestOpenContinuesDeterministicSequence is the strongest durability
// check: interrupting a stream with Close+Open in the middle must leave
// the final quiesced on-disk state byte-identical to a never-closed index
// fed the same flush sequence — proving the manifest restores every
// scheduling cursor (run naming, seq, tierSeq, group formation) exactly.
func TestOpenContinuesDeterministicSequence(t *testing.T) {
	gen := dataset.NewRandomWalk()
	stream := dataset.Generate(gen, 400, tLen, 7)
	build := func(interrupt bool) *storage.MemFS {
		fs := storage.NewMemFS()
		if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
			t.Fatal(err)
		}
		// The memtable capacity (25 records) divides the batch size, so the
		// memtable is empty at every batch boundary — the mid-stream Close
		// then adds no extra flush and both sequences see identical flushes.
		// The WAL is disabled: reopening starts a fresh log generation with
		// new segment numbers by design, which byte-level comparison of the
		// two file sets would (correctly) flag.
		opt := Options{
			FS: fs, Name: "lsm", S: tSummarizer(t), RawName: "raw",
			MemBudgetBytes: 25 * recordSize, Fanout: 2, Workers: 2,
			DisableWAL: true,
		}
		ix, err := Build(opt)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(stream); lo += 50 {
			if interrupt && lo == 200 {
				// Mid-stream restart: lifecycle through storage only.
				if err := ix.Close(); err != nil {
					t.Fatal(err)
				}
				if ix, err = Open(opt); err != nil {
					t.Fatal(err)
				}
			}
			if err := ix.Append(stream[lo : lo+50]); err != nil {
				t.Fatal(err)
			}
		}
		if err := ix.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	ref := fsState(t, build(false))
	got := fsState(t, build(true))
	if len(ref) != len(got) {
		t.Fatalf("file sets differ: %d vs %d files", len(got), len(ref))
	}
	for name, want := range ref {
		b, ok := got[name]
		if !ok {
			t.Fatalf("interrupted build is missing %q", name)
		}
		if string(b) != string(want) {
			t.Fatalf("file %q differs after interrupted build", name)
		}
	}
}

// TestOpenDetectsCorruption: a truncated run file, a mutilated run record,
// and a config conflict all fail loudly with typed errors.
func TestOpenDetectsCorruption(t *testing.T) {
	ix, fs := buildStreamed(t, false, 0)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := manifest.Load(fs, "lsm")
	if err != nil {
		t.Fatal(err)
	}
	runName := m.LSM.Runs[0].Name

	// Truncated run file.
	orig, err := storage.ReadFileAll(fs, runName)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteFileAll(fs, runName, orig[:len(orig)-recordSize]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{FS: fs, Name: "lsm", S: tSummarizer(t), RawName: "raw"}); !errors.Is(err, manifest.ErrCorruptManifest) {
		t.Fatalf("truncated run: got %v, want ErrCorruptManifest", err)
	}

	// Mutilated first key (range check must catch it).
	mut := append([]byte(nil), orig...)
	mut[0] ^= 0xff
	if err := storage.WriteFileAll(fs, runName, mut); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{FS: fs, Name: "lsm", S: tSummarizer(t), RawName: "raw"}); !errors.Is(err, manifest.ErrCorruptManifest) {
		t.Fatalf("mutilated run: got %v, want ErrCorruptManifest", err)
	}
	if err := storage.WriteFileAll(fs, runName, orig); err != nil {
		t.Fatal(err)
	}

	// Config conflicts: wrong summarization, wrong fanout.
	s2, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 16, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{FS: fs, Name: "lsm", S: s2, RawName: "raw"}); !errors.Is(err, manifest.ErrConfigMismatch) {
		t.Fatalf("segment mismatch: got %v, want ErrConfigMismatch", err)
	}
	if _, err := Open(Options{FS: fs, Name: "lsm", S: tSummarizer(t), RawName: "raw", Fanout: 5}); !errors.Is(err, manifest.ErrConfigMismatch) {
		t.Fatalf("fanout mismatch: got %v, want ErrConfigMismatch", err)
	}

	// And the repaired index opens again.
	re, err := Open(Options{FS: fs, Name: "lsm", S: tSummarizer(t), RawName: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
}

// TestCloseFlushesMemtable: series still in the memtable at Close must be
// durable — visible after reopen.
func TestCloseFlushesMemtable(t *testing.T) {
	ix, data, fs := buildFixture(t, 1<<20)
	extra := dataset.Generate(dataset.NewSeismic(), 25, tLen, 5)
	if err := ix.Append(extra); err != nil {
		t.Fatal(err)
	}
	if len(ix.mem) == 0 {
		t.Fatal("fixture: memtable unexpectedly empty")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{FS: fs, Name: "lsm", S: tSummarizer(t), RawName: "raw",
		MemBudgetBytes: 1 << 20, Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := re.Count(), int64(len(data)+len(extra)); got != want {
		t.Fatalf("reopened count %d, want %d", got, want)
	}
	res, err := re.ExactSearch(extra[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("memtable series lost across Close/Open: nearest dist %v", res.Dist)
	}
}

// TestOutOfOrderSwapCommit: when same-tier merges finish out of claim
// order, the later group's swap must park until its predecessor lands, so
// the durable cursor never claims an unfinished group is done — the crash
// window that would otherwise strand the predecessor's runs forever.
func TestOutOfOrderSwapCommit(t *testing.T) {
	fs := storage.NewMemFS()
	ix := &Index{opt: Options{FS: fs, Name: "x", S: tSummarizer(t), RawName: "raw",
		Fanout: 2, MaxPendingRuns: 4},
		groupsClaimed: map[int]int{}, committedGroups: map[int]int{},
		parked: map[int]map[int]*finishedSwap{}}
	for i := 0; i < 4; i++ {
		ix.runs = append(ix.runs, mkRun(0, i, int64(i)))
	}
	job0 := ix.findGroupLocked(true)
	job1 := ix.findGroupLocked(true)
	if job0 == nil || job1 == nil || job0.group != 0 || job1.group != 1 {
		t.Fatalf("fixture claims wrong: %+v %+v", job0, job1)
	}

	// Group 1 finishes first: it must park, commit nothing, delete nothing.
	// landLocked's manifest commit drops and re-acquires mu, so the test
	// must genuinely hold it.
	out1 := mkRun(1, 1, job1.outSeq)
	ix.mu.Lock()
	err := ix.landLocked(job1, out1)
	ix.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.committedGroups[0]; got != 0 {
		t.Fatalf("cursor advanced to %d with group 0 unfinished", got)
	}
	if len(ix.runs) != 4 {
		t.Fatalf("runs swapped early: %d runs", len(ix.runs))
	}
	if cs := ix.tierCursorsLocked(); len(cs) != 0 {
		t.Fatalf("durable cursor published for unfinished group: %+v", cs)
	}

	// Group 0 lands: both swaps commit, in order.
	out0 := mkRun(1, 0, job0.outSeq)
	ix.mu.Lock()
	err = ix.landLocked(job0, out0)
	ix.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.committedGroups[0]; got != 2 {
		t.Fatalf("cursor %d after both groups landed, want 2", got)
	}
	if len(ix.runs) != 2 || ix.runs[0] != out0 || ix.runs[1] != out1 {
		t.Fatalf("unexpected run set after landing: %d runs", len(ix.runs))
	}
	if len(ix.parked[0]) != 0 {
		t.Fatalf("parked swaps left behind: %d", len(ix.parked[0]))
	}
}

// mkRun fabricates an in-memory run for scheduler unit tests.
func mkRun(tier, tierSeq int, seq int64) *run {
	return &run{name: fmt.Sprintf("r.t%d.%d", tier, tierSeq), tier: tier,
		tierSeq: tierSeq, seq: seq, count: 1,
		keys: []summary.Key{{}}, positions: []int64{0}}
}

// TestAdaptiveClaimOrder: with ready groups at several tiers, claiming
// pops the tier-0 group first, and under backpressure (tier-0 backlog over
// MaxPendingRuns) higher tiers are deferred entirely while the readiness
// probe still sees them.
func TestAdaptiveClaimOrder(t *testing.T) {
	ix := &Index{opt: Options{Fanout: 2, MaxPendingRuns: 4},
		groupsClaimed: map[int]int{}, committedGroups: map[int]int{},
		parked: map[int]map[int]*finishedSwap{}}
	var seq int64
	add := func(tier, tierSeq int) {
		ix.runs = append(ix.runs, mkRun(tier, tierSeq, seq))
		seq++
	}
	// A ready tier-2 group, a ready tier-1 group, and two tier-0 runs.
	add(2, 0)
	add(2, 1)
	add(1, 0)
	add(1, 1)
	add(0, 0)
	add(0, 1)

	job := ix.findGroupLocked(true)
	if job == nil || job.inTier != 0 {
		t.Fatalf("first claim should be tier 0, got %+v", job)
	}
	job = ix.findGroupLocked(true)
	if job == nil || job.inTier != 1 {
		t.Fatalf("second claim should be tier 1, got %+v", job)
	}

	// Burst: 5 more tier-0 runs (backlog 5 > MaxPendingRuns 4, the two
	// claimed members still count — they occupy the device). Only tier-0
	// groups may be claimed; the tier-2 group is deferred but the drain
	// probe still reports it.
	for i := 2; i < 7; i++ {
		add(0, i)
	}
	if n := ix.tier0CountLocked(); n <= ix.opt.MaxPendingRuns {
		t.Fatalf("fixture backlog %d not over MaxPendingRuns %d", n, ix.opt.MaxPendingRuns)
	}
	job = ix.findGroupLocked(true)
	if job == nil || job.inTier != 0 {
		t.Fatalf("burst claim should be tier 0, got %+v", job)
	}
	job = ix.findGroupLocked(true)
	if job == nil || job.inTier != 0 {
		t.Fatalf("second burst claim should be tier 0, got %+v", job)
	}
	// Backlog now 7 (all claimed or not, still on disk); the only
	// remaining ready group is tier 2 — deferred under backpressure...
	if job := ix.findGroupLocked(true); job != nil {
		t.Fatalf("tier-2 group claimed during burst: %+v", job)
	}
	// ...but visible to the drain probe.
	if probe := ix.findGroupLocked(false); probe == nil || probe.inTier != 2 {
		t.Fatalf("drain probe missed the deferred tier-2 group: %+v", probe)
	}
}
