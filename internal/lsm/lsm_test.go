package lsm

import (
	"math"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

const (
	tLen   = 64
	tCount = 500
)

func tSummarizer(t *testing.T) *summary.Summarizer {
	t.Helper()
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildFixture(t *testing.T, memBudget int64) (*Index, []series.Series, *storage.MemFS) {
	t.Helper()
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	data := dataset.Generate(gen, tCount, tLen, 42)
	ix, err := Build(Options{
		FS:             fs,
		Name:           "lsm",
		S:              tSummarizer(t),
		RawName:        "raw",
		MemBudgetBytes: memBudget,
		Fanout:         3,
		Window:         40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, data, fs
}

func bruteForce1NN(q series.Series, data []series.Series) float64 {
	best := math.Inf(1)
	for _, d := range data {
		dist, _ := series.ED(q, d)
		if dist < best {
			best = dist
		}
	}
	return best
}

func TestBuildInitialRun(t *testing.T) {
	ix, _, _ := buildFixture(t, 1<<20)
	defer ix.Close()
	if ix.Count() != tCount {
		t.Fatalf("Count = %d", ix.Count())
	}
	if ix.NumRuns() != 1 {
		t.Fatalf("NumRuns = %d, want 1", ix.NumRuns())
	}
	if ix.SizeBytes() != int64(tCount*recordSize) {
		t.Fatalf("SizeBytes = %d", ix.SizeBytes())
	}
	// Run keys must be sorted.
	r := ix.runs[0]
	for i := 1; i < len(r.keys); i++ {
		if r.keys[i].Less(r.keys[i-1]) {
			t.Fatal("run keys not sorted")
		}
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	ix, data, _ := buildFixture(t, 1<<20)
	defer ix.Close()
	qs := dataset.Queries(dataset.NewRandomWalk(), 12, tLen, 9)
	for qi, q := range qs {
		want := bruteForce1NN(q, data)
		res, err := ix.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Dist-want) > 1e-9 {
			t.Fatalf("query %d: %v != brute force %v", qi, res.Dist, want)
		}
	}
}

func TestAppendFlushCompact(t *testing.T) {
	// Tiny memtable: appends roll over into many runs, triggering tiered
	// compaction.
	ix, data, _ := buildFixture(t, 64*recordSize)
	defer ix.Close()
	gen := dataset.NewSeismic()
	batch := dataset.Generate(gen, 400, tLen, 777)
	if err := ix.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if ix.Count() != tCount+400 {
		t.Fatalf("Count = %d", ix.Count())
	}
	// 400 appends / 64-record memtable = 7 flushes; with fanout 3 they
	// must have compacted well below 8 runs.
	if ix.NumRuns() >= 8 {
		t.Fatalf("compaction did not run: %d runs", ix.NumRuns())
	}
	// Every appended series findable at distance 0.
	for _, i := range []int{0, 133, 399} {
		res, err := ix.ExactSearch(batch[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist > 1e-9 {
			t.Fatalf("appended series %d not found: %v", i, res.Dist)
		}
		if res.Pos < tCount {
			t.Fatalf("appended series found at stale position %d", res.Pos)
		}
	}
	// Old data still correct.
	want := bruteForce1NN(data[5], append(append([]series.Series{}, data...), batch...))
	res, err := ix.ExactSearch(data[5])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist-want) > 1e-9 {
		t.Fatalf("post-compaction search wrong: %v vs %v", res.Dist, want)
	}
}

func TestCompactionTotalRecordsPreserved(t *testing.T) {
	ix, _, _ := buildFixture(t, 32*recordSize)
	defer ix.Close()
	batch := dataset.Generate(dataset.NewRandomWalk(), 300, tLen, 5)
	if err := ix.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range ix.runs {
		total += r.count
		// Sorted within each run.
		for i := 1; i < len(r.keys); i++ {
			if r.keys[i].Less(r.keys[i-1]) {
				t.Fatal("run not sorted after compaction")
			}
		}
	}
	total += int64(len(ix.mem))
	if total != tCount+300 {
		t.Fatalf("records across runs = %d, want %d", total, tCount+300)
	}
}

func TestFlushIsSequential(t *testing.T) {
	ix, _, fs := buildFixture(t, 1<<20)
	defer ix.Close()
	batch := dataset.Generate(dataset.NewRandomWalk(), 200, tLen, 6)
	before := fs.Stats().Snapshot()
	if err := ix.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	delta := fs.Stats().Snapshot().Sub(before)
	// Appends + one flush: no read-modify-write of existing structures.
	if delta.RandWrites > 5 {
		t.Fatalf("LSM writes should be append-only/sequential: %+v", delta)
	}
}

func TestApproxSearchFindsMember(t *testing.T) {
	ix, data, _ := buildFixture(t, 1<<20)
	defer ix.Close()
	res, err := ix.ApproxSearch(data[77])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("member should be found in its own key window: %v", res.Dist)
	}
}

func TestEmptyAndValidation(t *testing.T) {
	fs := storage.NewMemFS()
	dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), 0, tLen, 1)
	ix, err := Build(Options{FS: fs, Name: "l", S: tSummarizer(t), RawName: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Count() != 0 || ix.NumRuns() != 0 {
		t.Fatal("expected empty index with no runs")
	}
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 2)[0]
	if _, err := ix.ExactSearch(q); err == nil {
		t.Fatal("expected error on empty index")
	}
	if _, err := Build(Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMemtableQueriesSeeFreshData(t *testing.T) {
	// Data in the memtable (not yet flushed) must be visible to queries.
	ix, _, _ := buildFixture(t, 1<<20) // big memtable: no auto-flush
	defer ix.Close()
	batch := dataset.Generate(dataset.NewAstronomy(), 10, tLen, 31)
	if err := ix.Append(batch); err != nil {
		t.Fatal(err)
	}
	if ix.NumRuns() != 1 {
		t.Fatalf("batch should still be in the memtable, runs=%d", ix.NumRuns())
	}
	res, err := ix.ExactSearch(batch[3])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("memtable series not visible: %v", res.Dist)
	}
}
