// Package trie provides the iSAX trie node machinery shared by the
// prefix-split index family: the iSAX 2.0 baseline (top-down inserts), the
// ADS baseline (summary-first construction), and Coconut-Trie (bottom-up
// bulk loading over sorted invSAX keys).
//
// Every node is identified by one bit-prefix per SAX segment; all series
// under a node match all of its prefixes (§3.2, "Prefix-Based Splitting").
// The root fans out on the first bit of every segment (the classic iSAX
// root with up to 2^w children); deeper nodes refine one segment at a time
// (top-down splits) or jump several bits at once (bottom-up construction,
// which compresses paths like a patricia trie — Figure 5).
package trie

import (
	"fmt"
	"math"
	"sort"

	"github.com/coconut-db/coconut/internal/summary"
)

// Record is one indexed data series as the trie family sees it: its
// full-cardinality SAX word plus the ordinal position of the raw series in
// the dataset file. Materialized indexes carry the encoded raw series in
// Raw; non-materialized indexes leave it nil.
type Record struct {
	Word summary.SAX
	Pos  int64
	Raw  []byte
}

// Node is a trie node. Syms[j] holds the fixed prefix of segment j in its
// HIGH bits (the remaining low bits are zero); Bits[j] says how many of
// those bits are fixed. A node with Bits[j] == cardBits for all j pins an
// exact SAX word.
type Node struct {
	Syms summary.SAX
	Bits []uint8
	// Children are the refinements of this node (nil for leaves). They are
	// kept in z-order of their prefixes so leaf enumeration follows the
	// sorted order Coconut-Trie writes them in.
	Children []*Node
	// Leaf marks nodes that hold records.
	Leaf bool
	// Count is the number of records under this node.
	Count int64
	// Buf holds buffered records for in-memory phases (iSAX 2.0 FBL/leaf
	// buffers, bottom-up construction). Disk-resident indexes drain it.
	Buf []Record
	// PageStart/PageNum locate this leaf's records in the owning index's
	// leaf file (contiguous for bottom-up builds; scattered for top-down).
	PageStart int64
	PageNum   int64
}

// Trie is the shared structure: a root with per-first-bits children.
type Trie struct {
	S *summary.Summarizer
	// Root maps the w-bit vector of segment MSBs to the level-1 node.
	Root map[uint32]*Node
	// LeafCap is the maximum records per leaf before a split is required.
	LeafCap int
}

// New returns an empty trie for the summarizer's configuration.
// Root keys need one bit per segment, so Segments must be <= 32.
func New(s *summary.Summarizer, leafCap int) (*Trie, error) {
	if s.Params().Segments > 32 {
		return nil, fmt.Errorf("trie: %d segments exceed the 32-bit root key", s.Params().Segments)
	}
	if leafCap < 1 {
		return nil, fmt.Errorf("trie: leaf capacity %d must be positive", leafCap)
	}
	return &Trie{S: s, Root: make(map[uint32]*Node), LeafCap: leafCap}, nil
}

// RootKey computes the root child key of a SAX word: the MSB of every
// segment, packed segment 0 first.
func (t *Trie) RootKey(word summary.SAX) uint32 {
	b := uint(t.S.Params().CardBits)
	var key uint32
	for _, sym := range word {
		key = key<<1 | uint32(sym>>(b-1))
	}
	return key
}

// NewRootNode builds (but does not register) the 1-bit-per-segment node for
// word.
func (t *Trie) NewRootNode(word summary.SAX) *Node {
	p := t.S.Params()
	n := &Node{
		Syms: make(summary.SAX, p.Segments),
		Bits: make([]uint8, p.Segments),
		Leaf: true,
	}
	mask := uint8(1 << (p.CardBits - 1))
	for j, sym := range word {
		n.Syms[j] = sym & mask
		n.Bits[j] = 1
	}
	return n
}

// RootChild returns the root child for word, creating it as a leaf when
// create is true. Returns nil when absent and create is false.
func (t *Trie) RootChild(word summary.SAX, create bool) *Node {
	key := t.RootKey(word)
	n := t.Root[key]
	if n == nil && create {
		n = t.NewRootNode(word)
		t.Root[key] = n
	}
	return n
}

// Matches reports whether word falls under n's per-segment prefixes.
func (n *Node) Matches(word summary.SAX, cardBits int) bool {
	for j := range word {
		shift := uint(cardBits) - uint(n.Bits[j])
		if word[j]>>shift != n.Syms[j]>>shift {
			return false
		}
	}
	return true
}

// Descend walks from the root to the deepest node matching word (which may
// be internal if word's subtree exists but the exact leaf does not).
// Returns nil when even the root child is missing.
func (t *Trie) Descend(word summary.SAX) *Node {
	n := t.RootChild(word, false)
	if n == nil {
		return nil
	}
	b := t.S.Params().CardBits
	for !n.Leaf {
		var next *Node
		for _, c := range n.Children {
			if c.Matches(word, b) {
				next = c
				break
			}
		}
		if next == nil {
			return n
		}
		n = next
	}
	return n
}

// ChooseSplitSegment picks the segment whose next unprefixed bit divides
// the records most evenly — the iSAX 2.0 policy (§2, §3.2). Ties break on
// the lowest segment index. Returns -1 when no segment can be refined
// (all at full cardinality), in which case the leaf must overflow.
func ChooseSplitSegment(n *Node, recs []Record, cardBits int) int {
	best, bestScore := -1, int64(-1)
	for j := range n.Bits {
		if int(n.Bits[j]) >= cardBits {
			continue
		}
		shift := uint(cardBits) - uint(n.Bits[j]) - 1
		var ones int64
		for i := range recs {
			ones += int64(recs[i].Word[j]>>shift) & 1
		}
		zeros := int64(len(recs)) - ones
		score := ones
		if zeros < ones {
			score = zeros
		}
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// SplitLeaf refines leaf n on segment seg: n becomes internal with two
// children extending the prefix of seg by one bit, and n.Buf is
// redistributed. The children inherit leaf status. Returns (zero-child,
// one-child).
func (t *Trie) SplitLeaf(n *Node, seg int) (*Node, *Node) {
	b := t.S.Params().CardBits
	shift := uint(b) - uint(n.Bits[seg]) - 1
	mk := func(bit uint8) *Node {
		c := &Node{
			Syms: append(summary.SAX(nil), n.Syms...),
			Bits: append([]uint8(nil), n.Bits...),
			Leaf: true,
		}
		c.Bits[seg]++
		c.Syms[seg] |= bit << shift
		return c
	}
	zero, one := mk(0), mk(1)
	for _, r := range n.Buf {
		if (r.Word[seg]>>shift)&1 == 0 {
			zero.Buf = append(zero.Buf, r)
			zero.Count++
		} else {
			one.Buf = append(one.Buf, r)
			one.Count++
		}
	}
	n.Buf = nil
	n.Leaf = false
	n.Children = []*Node{zero, one}
	return zero, one
}

// MinDist lower-bounds the distance between the query (as PAA) and every
// series under n, using the node's prefix regions.
func (t *Trie) MinDist(paa []float64, n *Node) float64 {
	return t.S.MinDistPAAToPrefix(paa, n.Syms, n.Bits)
}

// MinDistSq is the squared form of MinDist. Relative node comparisons
// (best-first ordering, leaf selection) are identical in squared space —
// sqrt preserves order — and skip one sqrt per node visited.
func (t *Trie) MinDistSq(paa []float64, n *Node) float64 {
	return t.S.MinDistSqPAAToPrefix(paa, n.Syms, n.Bits)
}

// Leaves returns all leaves, root children in ascending root-key order,
// children in their stored order (z-order for bottom-up builds).
func (t *Trie) Leaves() []*Node {
	keys := make([]uint32, 0, len(t.Root))
	for k := range t.Root {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, k := range keys {
		walk(t.Root[k])
	}
	return out
}

// NumLeaves counts leaves.
func (t *Trie) NumLeaves() int { return len(t.Leaves()) }

// AvgLeafFill returns mean leaf occupancy relative to LeafCap — the paper's
// ~10% number for prefix-split indexes (vs ~97% for median splits).
func (t *Trie) AvgLeafFill() float64 {
	leaves := t.Leaves()
	if len(leaves) == 0 {
		return 0
	}
	var total int64
	for _, l := range leaves {
		total += l.Count
	}
	return float64(total) / float64(int64(len(leaves))*int64(t.LeafCap))
}

// BestLeaf returns the leaf with the smallest MINDIST to the query PAA —
// the approximate-search target when the exact subtree for the query's word
// is missing. Returns nil for an empty trie. The walk compares squared
// bounds (the selected leaf is the same either way).
func (t *Trie) BestLeaf(paa []float64) *Node {
	var best *Node
	bestDist := math.Inf(1)
	var walk func(n *Node)
	walk = func(n *Node) {
		d := t.MinDistSq(paa, n)
		if d >= bestDist {
			return // the node bound already exceeds the best leaf found
		}
		if n.Leaf {
			best, bestDist = n, d
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range t.Root {
		walk(n)
	}
	return best
}

// CheckInvariants validates the prefix containment and count invariants of
// the whole trie.
func (t *Trie) CheckInvariants(cardBits int) error {
	var walk func(n *Node) (int64, error)
	walk = func(n *Node) (int64, error) {
		for j := range n.Bits {
			if int(n.Bits[j]) > cardBits || n.Bits[j] < 1 {
				return 0, fmt.Errorf("trie: node prefix bits %d out of range", n.Bits[j])
			}
			shift := uint(cardBits) - uint(n.Bits[j])
			if n.Syms[j] != (n.Syms[j]>>shift)<<shift {
				return 0, fmt.Errorf("trie: node has low bits set beyond prefix")
			}
		}
		if n.Leaf {
			if len(n.Children) != 0 {
				return 0, fmt.Errorf("trie: leaf with children")
			}
			for _, r := range n.Buf {
				if !n.Matches(r.Word, cardBits) {
					return 0, fmt.Errorf("trie: buffered record outside node prefix")
				}
			}
			return n.Count, nil
		}
		var sum int64
		for _, c := range n.Children {
			// Child prefixes must refine the parent's.
			for j := range n.Bits {
				if c.Bits[j] < n.Bits[j] {
					return 0, fmt.Errorf("trie: child coarser than parent")
				}
				shift := uint(cardBits) - uint(n.Bits[j])
				if c.Syms[j]>>shift != n.Syms[j]>>shift {
					return 0, fmt.Errorf("trie: child prefix disagrees with parent")
				}
			}
			s, err := walk(c)
			if err != nil {
				return 0, err
			}
			sum += s
		}
		if n.Count != sum {
			return 0, fmt.Errorf("trie: node count %d != children sum %d", n.Count, sum)
		}
		return sum, nil
	}
	for _, n := range t.Root {
		if _, err := walk(n); err != nil {
			return err
		}
	}
	return nil
}
