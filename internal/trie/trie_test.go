package trie

import (
	"math/rand"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/summary"
)

func testSummarizer(t *testing.T) *summary.Summarizer {
	t.Helper()
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: 64, Segments: 8, CardBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTrie(t *testing.T, cap int) *Trie {
	t.Helper()
	tr, err := New(testSummarizer(t), cap)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randWords(t *testing.T, s *summary.Summarizer, n int, seed int64) []summary.SAX {
	t.Helper()
	gen := dataset.NewRandomWalk()
	rng := rand.New(rand.NewSource(seed))
	out := make([]summary.SAX, n)
	buf := make(series.Series, s.Params().SeriesLen)
	for i := range out {
		gen.Generate(rng, buf)
		w, err := s.SAXOf(buf)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = w
	}
	return out
}

func TestNewValidation(t *testing.T) {
	s := testSummarizer(t)
	if _, err := New(s, 0); err == nil {
		t.Fatal("expected error for zero leaf cap")
	}
	big, _ := summary.NewSummarizer(summary.Params{SeriesLen: 66, Segments: 33, CardBits: 1})
	if big != nil {
		if _, err := New(big, 10); err == nil {
			t.Fatal("expected error for >32 segments")
		}
	}
}

func TestRootKeyUsesMSBs(t *testing.T) {
	tr := newTrie(t, 10)
	// 8 segments, 4 bits: MSB of symbol 0b1000 is 1, of 0b0111 is 0.
	w := summary.SAX{0b1000, 0, 0b1111, 0, 0, 0b0111, 0, 0b1000}
	key := tr.RootKey(w)
	if key != 0b10100001 {
		t.Fatalf("RootKey = %08b", key)
	}
}

func TestRootChildCreateAndMatch(t *testing.T) {
	tr := newTrie(t, 10)
	w := summary.SAX{0b1000, 0b0100, 0b1100, 0, 0b0010, 0, 0b1111, 0b0001}
	if tr.RootChild(w, false) != nil {
		t.Fatal("child should not exist yet")
	}
	n := tr.RootChild(w, true)
	if n == nil || !n.Leaf {
		t.Fatal("created child should be a leaf")
	}
	if !n.Matches(w, 4) {
		t.Fatal("word must match its own root node")
	}
	// Same MSB vector, different low bits: same child.
	w2 := summary.SAX{0b1111, 0b0111, 0b1000, 0b0111, 0b0001, 0b0111, 0b1000, 0b0111}
	if tr.RootChild(w2, false) != n {
		t.Fatal("words with identical MSB vectors share the root child")
	}
	// Flip one MSB: different child.
	w3 := append(summary.SAX(nil), w...)
	w3[0] = 0b0111
	if tr.RootChild(w3, true) == n {
		t.Fatal("different MSB vector must map elsewhere")
	}
}

func TestSplitLeafRedistributes(t *testing.T) {
	tr := newTrie(t, 4)
	s := tr.S
	words := randWords(t, s, 64, 1)
	n := tr.RootChild(words[0], true)
	for _, w := range words {
		if n.Matches(w, 4) {
			n.Buf = append(n.Buf, Record{Word: w, Pos: int64(len(n.Buf))})
			n.Count++
		}
	}
	if len(n.Buf) < 2 {
		t.Skip("not enough colliding words for this seed")
	}
	before := n.Count
	seg := ChooseSplitSegment(n, n.Buf, 4)
	if seg < 0 {
		t.Fatal("expected a splittable segment")
	}
	zero, one := tr.SplitLeaf(n, seg)
	if n.Leaf || len(n.Children) != 2 {
		t.Fatal("node should become internal with two children")
	}
	if zero.Count+one.Count != before {
		t.Fatalf("records lost in split: %d + %d != %d", zero.Count, one.Count, before)
	}
	for _, r := range zero.Buf {
		if !zero.Matches(r.Word, 4) {
			t.Fatal("zero child holds a non-matching record")
		}
	}
	for _, r := range one.Buf {
		if !one.Matches(r.Word, 4) {
			t.Fatal("one child holds a non-matching record")
		}
	}
	if err := tr.CheckInvariants(4); err != nil {
		t.Fatal(err)
	}
}

func TestChooseSplitSegmentPrefersBalance(t *testing.T) {
	tr := newTrie(t, 4)
	n := tr.NewRootNode(summary.SAX{0b1000, 0b1000, 0, 0, 0, 0, 0, 0})
	// Construct records where segment 1's next bit splits 2/2 and all other
	// segments split 4/0.
	recs := []Record{
		{Word: summary.SAX{0b1000, 0b1000, 0, 0, 0, 0, 0, 0}},
		{Word: summary.SAX{0b1000, 0b1000, 0, 0, 0, 0, 0, 0}},
		{Word: summary.SAX{0b1000, 0b1100, 0, 0, 0, 0, 0, 0}},
		{Word: summary.SAX{0b1000, 0b1100, 0, 0, 0, 0, 0, 0}},
	}
	if seg := ChooseSplitSegment(n, recs, 4); seg != 1 {
		t.Fatalf("ChooseSplitSegment = %d, want 1", seg)
	}
}

func TestChooseSplitSegmentExhausted(t *testing.T) {
	tr := newTrie(t, 4)
	n := tr.NewRootNode(summary.SAX{0, 0, 0, 0, 0, 0, 0, 0})
	for j := range n.Bits {
		n.Bits[j] = 4 // fully refined
	}
	if seg := ChooseSplitSegment(n, nil, 4); seg != -1 {
		t.Fatalf("expected -1 for exhausted node, got %d", seg)
	}
}

func TestDescend(t *testing.T) {
	tr := newTrie(t, 2)
	words := randWords(t, tr.S, 200, 2)
	for i, w := range words {
		n := tr.RootChild(w, true)
		// Walk to the matching leaf, splitting when full.
		for !n.Leaf {
			var next *Node
			for _, c := range n.Children {
				if c.Matches(w, 4) {
					next = c
					break
				}
			}
			n = next
		}
		for int64(len(n.Buf)) >= int64(tr.LeafCap) {
			seg := ChooseSplitSegment(n, n.Buf, 4)
			if seg < 0 {
				break
			}
			zero, one := tr.SplitLeaf(n, seg)
			if zero.Matches(w, 4) {
				n = zero
			} else {
				n = one
			}
		}
		n.Buf = append(n.Buf, Record{Word: w, Pos: int64(i)})
		n.Count++
	}
	// Recompute internal counts bottom-up for the invariant check.
	var fix func(n *Node) int64
	fix = func(n *Node) int64 {
		if n.Leaf {
			return n.Count
		}
		var sum int64
		for _, c := range n.Children {
			sum += fix(c)
		}
		n.Count = sum
		return sum
	}
	for _, n := range tr.Root {
		fix(n)
	}
	if err := tr.CheckInvariants(4); err != nil {
		t.Fatal(err)
	}
	// Every word must route to a leaf that matches it.
	for _, w := range words {
		n := tr.Descend(w)
		if n == nil {
			t.Fatal("Descend lost a word")
		}
		if !n.Matches(w, 4) {
			t.Fatal("Descend landed on non-matching node")
		}
	}
	// Leaves must cover all records.
	var total int64
	for _, l := range tr.Leaves() {
		total += int64(len(l.Buf))
	}
	if total != int64(len(words)) {
		t.Fatalf("leaves hold %d records, want %d", total, len(words))
	}
}

func TestMinDistLowerBoundsLeafMembers(t *testing.T) {
	tr := newTrie(t, 4)
	s := tr.S
	gen := dataset.NewRandomWalk()
	rng := rand.New(rand.NewSource(7))
	raw := make([]series.Series, 100)
	for i := range raw {
		buf := make(series.Series, 64)
		gen.Generate(rng, buf)
		raw[i] = buf
		w, _ := s.SAXOf(buf)
		n := tr.RootChild(w, true)
		n.Buf = append(n.Buf, Record{Word: w, Pos: int64(i)})
		n.Count++
	}
	q := make(series.Series, 64)
	gen.Generate(rng, q)
	qPAA, _ := s.PAA(q, nil)
	for _, leaf := range tr.Leaves() {
		lb := tr.MinDist(qPAA, leaf)
		for _, r := range leaf.Buf {
			ed, _ := series.ED(q, raw[r.Pos])
			if lb > ed+1e-9 {
				t.Fatalf("node MINDIST %v exceeds member ED %v", lb, ed)
			}
		}
	}
}

func TestBestLeaf(t *testing.T) {
	tr := newTrie(t, 4)
	words := randWords(t, tr.S, 50, 9)
	for i, w := range words {
		n := tr.RootChild(w, true)
		n.Buf = append(n.Buf, Record{Word: w, Pos: int64(i)})
		n.Count++
	}
	gen := dataset.NewRandomWalk()
	rng := rand.New(rand.NewSource(10))
	q := make(series.Series, 64)
	gen.Generate(rng, q)
	qPAA, _ := tr.S.PAA(q, nil)
	best := tr.BestLeaf(qPAA)
	if best == nil {
		t.Fatal("BestLeaf returned nil on non-empty trie")
	}
	bestDist := tr.MinDist(qPAA, best)
	for _, l := range tr.Leaves() {
		if d := tr.MinDist(qPAA, l); d < bestDist-1e-12 {
			t.Fatalf("BestLeaf missed a closer leaf: %v < %v", d, bestDist)
		}
	}
	empty := newTrie(t, 4)
	if empty.BestLeaf(qPAA) != nil {
		t.Fatal("BestLeaf on empty trie should be nil")
	}
}

func TestAvgLeafFill(t *testing.T) {
	tr := newTrie(t, 10)
	w := summary.SAX{0, 0, 0, 0, 0, 0, 0, 0}
	n := tr.RootChild(w, true)
	n.Count = 5
	if fill := tr.AvgLeafFill(); fill != 0.5 {
		t.Fatalf("AvgLeafFill = %v, want 0.5", fill)
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
}
