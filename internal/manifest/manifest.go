// Package manifest implements the durable index lifecycle's source of
// truth: a small, versioned, checksummed file that records everything
// needed to reopen a built Coconut index from storage without touching the
// raw dataset — the format version, the summarization parameters, and the
// per-variant on-device layout (B+-tree geometry for Coconut-Tree, the leaf
// directory for Coconut-Trie, and the full run set plus scheduling cursors
// for Coconut-LSM).
//
// A manifest is committed atomically: the encoding is written to a sibling
// temporary file and renamed over the live manifest (storage.FS.Rename), so
// a crash during a commit leaves the previous manifest intact. The payload
// is guarded by a CRC32-C (Castagnoli) checksum; any truncation, bit flip,
// or short field decodes to ErrCorruptManifest, and a manifest written by a
// future format version fails with ErrVersionMismatch — never a panic or a
// silent misread.
package manifest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// Typed failure modes. Callers branch on these with errors.Is.
var (
	// ErrCorruptManifest reports a manifest that failed structural
	// validation: bad magic, truncated payload, checksum mismatch, or an
	// impossible field value.
	ErrCorruptManifest = errors.New("manifest: corrupt manifest")
	// ErrVersionMismatch reports a manifest whose format version this
	// build does not understand.
	ErrVersionMismatch = errors.New("manifest: unsupported format version")
	// ErrConfigMismatch reports a caller configuration that conflicts with
	// the stored manifest (different summarization, materialization, or
	// dataset file).
	ErrConfigMismatch = errors.New("manifest: configuration does not match stored index")
)

// Variant names the index layout a manifest describes.
type Variant string

// The three persistable index variants, plus the partitioned parent
// layout that composes N of them.
const (
	VariantTree        Variant = "tree"
	VariantTrie        Variant = "trie"
	VariantLSM         Variant = "lsm"
	VariantPartitioned Variant = "partitioned"
)

const (
	magic uint32 = 0x464D4343 // "CCMF" little-endian
	// version is the newest format this build writes. Version 2 added the
	// LSM write-ahead-log cursor fields; version 3 added the Checksums
	// format flag; version 4 added the Compressed format flag. Older
	// manifests still decode, with those fields zero — an index without a
	// flag is read through the corresponding legacy path.
	version    uint32 = 4
	minVersion uint32 = 1
	// headerSize is magic + version + payload length + CRC32-C.
	headerSize = 16
	// maxStringLen bounds decoded string fields (file names).
	maxStringLen = 1 << 12
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// TreeLayout records the persisted geometry of a Coconut-Tree's B+-tree.
// The leaf directory itself lives in the B+-tree's own meta file; the
// manifest holds the shape and cross-checks it on reopen.
type TreeLayout struct {
	RecordSize int
	KeyLen     int
	LeafCap    int
	Fanout     int
	FillFactor float64
	NumLeaves  int
	NextPage   int64
}

// TrieLeaf is one Coconut-Trie leaf in z-order: its record count and its
// page extent in the contiguous leaf file.
type TrieLeaf struct {
	Count     int64
	PageStart int64
	PageNum   int64
}

// TrieLayout records the Coconut-Trie leaf directory: the z-ordered leaves
// and the total number of pages in the leaf file.
type TrieLayout struct {
	Pages  int64
	Leaves []TrieLeaf
}

// RunInfo describes one immutable LSM run: its file, its place in the
// deterministic compaction DAG (tier, tierSeq, seq), and integrity bounds
// (record count and key range) verified when the run file is reloaded.
type RunInfo struct {
	Name    string
	Tier    int
	TierSeq int
	Seq     int64
	Count   int64
	MinKey  summary.Key
	MaxKey  summary.Key
}

// TierCursor records how many compaction groups of one input tier have
// completed — the formation cursor that keeps group naming deterministic
// across restarts.
type TierCursor struct {
	Tier   int
	Groups int
}

// LSMLayout records the full LSM state needed to reopen: the run set and
// the scheduling counters that make future flushes and compactions continue
// the same deterministic sequence.
type LSMLayout struct {
	Fanout   int
	NextRun  int
	NextSeq  int64
	Tier0Seq int
	Cursors  []TierCursor
	Runs     []RunInfo

	// WAL recovery state (format version 2; zero in version-1 manifests).
	// WALFlushed is the durable flush cursor: every appended entry with
	// LSN < WALFlushed is covered by a flushed run, so replay skips it.
	// Un-flushed entries live in WAL segments [WALFirstSeg, WALNextSeg).
	WALFlushed  int64
	WALFirstSeg int
	WALNextSeg  int
}

// PartitionLayout is the parent manifest of a partitioned index: N child
// indexes of one variant, split by invSAX key range. Boundaries holds the
// N-1 split keys (strictly increasing); child i owns keys in
// [Boundaries[i-1], Boundaries[i]), with the first and last ranges open
// below and above. Children names the per-partition child indexes, each
// with its own manifest committed by the PR 5 machinery BEFORE the parent
// is committed — so a parent manifest that exists always references fully
// durable children.
//
// The parent is immutable after the build: mutable state (LSM run sets,
// insert counts) lives in the child manifests, which stay authoritative,
// so the parent's Count is the count at build time only and reopen does
// not cross-check it against the children.
type PartitionLayout struct {
	ChildVariant Variant
	Partitions   int
	Boundaries   []summary.Key
	Children     []string
}

// Manifest is the versioned description of one persisted index.
type Manifest struct {
	// Variant selects which layout section is populated.
	Variant Variant
	// SeriesLen, Segments, CardBits fix the summarization scheme; a reopen
	// with different parameters would misinterpret every key.
	SeriesLen int
	Segments  int
	CardBits  int
	// Materialized records whether raw series live inside the index.
	Materialized bool
	// LeafCap is the records-per-leaf capacity the index was built with.
	LeafCap int
	// RawName is the dataset file the positions refer to.
	RawName string
	// Count is the number of series durably indexed (for LSM: the sum of
	// the run counts; memtable contents are re-created by WAL replay).
	Count int64
	// Checksums records whether the index's persistent artifacts carry
	// the checksummed physical layout (storage.ChecksumFile blocks for
	// pages/leaves/runs, a record-sums sidecar for the raw file). Like
	// Materialized it is a property of the stored bytes, not a knob:
	// reopen adopts it. Format version 3; false in older manifests, whose
	// indexes keep their legacy unchecksummed layout.
	Checksums bool
	// Compressed records whether LSM run files use the block-compressed
	// physical layout (internal/runblock: front-coded keys, delta-varint
	// positions, a block directory read through the shared block cache)
	// instead of flat 24-byte record arrays. Like Checksums it is a
	// property of the stored bytes adopted on reopen. Format version 4;
	// false in older manifests, whose runs keep the flat layout.
	Compressed bool

	// ver is the format version this manifest was decoded from (0 for a
	// freshly built manifest). Encode re-emits the same version so that
	// accepted input round-trips bit for bit; new manifests encode at the
	// newest version.
	ver uint32

	Tree *TreeLayout
	Trie *TrieLayout
	LSM  *LSMLayout
	Part *PartitionLayout
}

// FileName returns the manifest file for an index name prefix.
func FileName(indexName string) string { return indexName + ".manifest" }

// Encode serializes m with the version header and CRC32-C trailer. A
// manifest decoded from an older format re-encodes at that format (the
// decoder only accepts encodings Encode could have produced), unless it
// now carries state the old format cannot express.
func (m *Manifest) Encode() ([]byte, error) {
	encVer := m.ver
	if encVer == 0 {
		encVer = version
	}
	if encVer < 2 && m.LSM != nil &&
		(m.LSM.WALFlushed != 0 || m.LSM.WALFirstSeg != 0 || m.LSM.WALNextSeg != 0) {
		encVer = version
	}
	if encVer < 3 && m.Checksums {
		// An older-format manifest cannot express the checksum flag.
		encVer = version
	}
	if encVer < 4 && m.Compressed {
		// An older-format manifest cannot express the compression flag.
		encVer = version
	}
	switch m.Variant {
	case VariantTree, VariantTrie, VariantLSM, VariantPartitioned:
	default:
		return nil, fmt.Errorf("manifest: unknown variant %q", m.Variant)
	}
	// The decoder caps string fields at maxStringLen; refuse to commit a
	// manifest it would later reject as truncated.
	if len(m.RawName) > maxStringLen {
		return nil, fmt.Errorf("manifest: raw dataset name is %d bytes, max %d", len(m.RawName), maxStringLen)
	}
	if m.LSM != nil {
		for _, r := range m.LSM.Runs {
			if len(r.Name) > maxStringLen {
				return nil, fmt.Errorf("manifest: run name is %d bytes, max %d", len(r.Name), maxStringLen)
			}
		}
	}
	var w writer
	w.str(string(m.Variant))
	w.u32(uint32(m.SeriesLen))
	w.u32(uint32(m.Segments))
	w.u32(uint32(m.CardBits))
	w.bool(m.Materialized)
	w.u32(uint32(m.LeafCap))
	w.str(m.RawName)
	w.u64(uint64(m.Count))
	if encVer >= 3 {
		w.bool(m.Checksums)
	}
	if encVer >= 4 {
		w.bool(m.Compressed)
	}
	switch m.Variant {
	case VariantTree:
		if m.Tree == nil {
			return nil, errors.New("manifest: tree variant without tree layout")
		}
		t := m.Tree
		w.u32(uint32(t.RecordSize))
		w.u32(uint32(t.KeyLen))
		w.u32(uint32(t.LeafCap))
		w.u32(uint32(t.Fanout))
		w.f64(t.FillFactor)
		w.u32(uint32(t.NumLeaves))
		w.u64(uint64(t.NextPage))
	case VariantTrie:
		if m.Trie == nil {
			return nil, errors.New("manifest: trie variant without trie layout")
		}
		w.u64(uint64(m.Trie.Pages))
		w.u32(uint32(len(m.Trie.Leaves)))
		for _, l := range m.Trie.Leaves {
			w.u64(uint64(l.Count))
			w.u64(uint64(l.PageStart))
			w.u64(uint64(l.PageNum))
		}
	case VariantLSM:
		if m.LSM == nil {
			return nil, errors.New("manifest: lsm variant without lsm layout")
		}
		l := m.LSM
		w.u32(uint32(l.Fanout))
		w.u32(uint32(l.NextRun))
		w.u64(uint64(l.NextSeq))
		w.u32(uint32(l.Tier0Seq))
		cursors := append([]TierCursor(nil), l.Cursors...)
		sort.Slice(cursors, func(a, b int) bool { return cursors[a].Tier < cursors[b].Tier })
		w.u32(uint32(len(cursors)))
		for _, c := range cursors {
			w.u32(uint32(c.Tier))
			w.u32(uint32(c.Groups))
		}
		w.u32(uint32(len(l.Runs)))
		for _, r := range l.Runs {
			w.str(r.Name)
			w.u32(uint32(r.Tier))
			w.u32(uint32(r.TierSeq))
			w.u64(uint64(r.Seq))
			w.u64(uint64(r.Count))
			w.bytes(r.MinKey[:])
			w.bytes(r.MaxKey[:])
		}
		if encVer >= 2 {
			w.u64(uint64(l.WALFlushed))
			w.u32(uint32(l.WALFirstSeg))
			w.u32(uint32(l.WALNextSeg))
		}
	case VariantPartitioned:
		if m.Part == nil {
			return nil, errors.New("manifest: partitioned variant without partition layout")
		}
		p := m.Part
		if len(p.Boundaries) != p.Partitions-1 || len(p.Children) != p.Partitions {
			return nil, fmt.Errorf("manifest: partition layout shape mismatch (%d partitions, %d boundaries, %d children)",
				p.Partitions, len(p.Boundaries), len(p.Children))
		}
		for _, c := range p.Children {
			if len(c) > maxStringLen {
				return nil, fmt.Errorf("manifest: child name is %d bytes, max %d", len(c), maxStringLen)
			}
		}
		w.str(string(p.ChildVariant))
		w.u32(uint32(p.Partitions))
		for _, b := range p.Boundaries {
			w.bytes(b[:])
		}
		for _, c := range p.Children {
			w.str(c)
		}
	}
	payload := w.buf
	out := make([]byte, 0, headerSize+len(payload))
	out = binary.LittleEndian.AppendUint32(out, magic)
	out = binary.LittleEndian.AppendUint32(out, encVer)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...), nil
}

// Decode parses and validates an encoded manifest. Every failure mode maps
// to ErrCorruptManifest or ErrVersionMismatch; Decode never panics on
// adversarial input.
func Decode(data []byte) (*Manifest, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCorruptManifest, len(data))
	}
	if binary.LittleEndian.Uint32(data) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptManifest)
	}
	v := binary.LittleEndian.Uint32(data[4:])
	if v < minVersion || v > version {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d..%d", ErrVersionMismatch, v, minVersion, version)
	}
	payloadLen := binary.LittleEndian.Uint32(data[8:])
	if int64(payloadLen) != int64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d does not match file size", ErrCorruptManifest, payloadLen)
	}
	payload := data[headerSize:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[12:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorruptManifest, want, got)
	}
	r := reader{buf: payload}
	m := &Manifest{ver: v}
	m.Variant = Variant(r.str())
	m.SeriesLen = int(r.u32())
	m.Segments = int(r.u32())
	m.CardBits = int(r.u32())
	m.Materialized = r.bool()
	m.LeafCap = int(r.u32())
	m.RawName = r.str()
	m.Count = int64(r.u64())
	if v >= 3 {
		m.Checksums = r.bool()
	}
	if v >= 4 {
		m.Compressed = r.bool()
	}
	switch m.Variant {
	case VariantTree:
		t := &TreeLayout{}
		t.RecordSize = int(r.u32())
		t.KeyLen = int(r.u32())
		t.LeafCap = int(r.u32())
		t.Fanout = int(r.u32())
		t.FillFactor = r.f64()
		t.NumLeaves = int(r.u32())
		t.NextPage = int64(r.u64())
		m.Tree = t
	case VariantTrie:
		t := &TrieLayout{}
		t.Pages = int64(r.u64())
		n := int(r.u32())
		if r.err == nil && n > r.remaining()/24 {
			return nil, fmt.Errorf("%w: %d trie leaves exceed payload", ErrCorruptManifest, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			t.Leaves = append(t.Leaves, TrieLeaf{
				Count:     int64(r.u64()),
				PageStart: int64(r.u64()),
				PageNum:   int64(r.u64()),
			})
		}
		m.Trie = t
	case VariantLSM:
		l := &LSMLayout{}
		l.Fanout = int(r.u32())
		l.NextRun = int(r.u32())
		l.NextSeq = int64(r.u64())
		l.Tier0Seq = int(r.u32())
		nc := int(r.u32())
		if r.err == nil && nc > r.remaining()/8 {
			return nil, fmt.Errorf("%w: %d tier cursors exceed payload", ErrCorruptManifest, nc)
		}
		for i := 0; i < nc && r.err == nil; i++ {
			l.Cursors = append(l.Cursors, TierCursor{Tier: int(r.u32()), Groups: int(r.u32())})
		}
		nr := int(r.u32())
		// A run entry is at least name length + fixed fields + two keys.
		minRun := 4 + 4 + 4 + 8 + 8 + 2*summary.KeySize
		if r.err == nil && nr > r.remaining()/minRun {
			return nil, fmt.Errorf("%w: %d runs exceed payload", ErrCorruptManifest, nr)
		}
		for i := 0; i < nr && r.err == nil; i++ {
			ri := RunInfo{
				Name:    r.str(),
				Tier:    int(r.u32()),
				TierSeq: int(r.u32()),
				Seq:     int64(r.u64()),
				Count:   int64(r.u64()),
			}
			r.keyInto(&ri.MinKey)
			r.keyInto(&ri.MaxKey)
			l.Runs = append(l.Runs, ri)
		}
		if v >= 2 {
			l.WALFlushed = int64(r.u64())
			l.WALFirstSeg = int(r.u32())
			l.WALNextSeg = int(r.u32())
		}
		m.LSM = l
	case VariantPartitioned:
		p := &PartitionLayout{}
		p.ChildVariant = Variant(r.str())
		p.Partitions = int(r.u32())
		// Boundaries and child names are sized by Partitions; bound the
		// claimed count by what the payload could possibly hold (a key per
		// boundary plus a length-prefixed name per child).
		if r.err == nil && (p.Partitions < 2 || p.Partitions-1 > r.remaining()/(summary.KeySize+4)) {
			return nil, fmt.Errorf("%w: impossible partition count %d", ErrCorruptManifest, p.Partitions)
		}
		for i := 0; i < p.Partitions-1 && r.err == nil; i++ {
			var k summary.Key
			r.keyInto(&k)
			p.Boundaries = append(p.Boundaries, k)
		}
		for i := 0; i < p.Partitions && r.err == nil; i++ {
			p.Children = append(p.Children, r.str())
		}
		m.Part = p
	default:
		if r.err == nil {
			return nil, fmt.Errorf("%w: unknown variant %q", ErrCorruptManifest, m.Variant)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorruptManifest, r.remaining())
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// validate rejects decoded values no writer could have produced.
func (m *Manifest) validate() error {
	switch {
	case m.SeriesLen <= 0 || m.Segments <= 0 || m.CardBits <= 0 || m.CardBits > 8:
		return fmt.Errorf("%w: impossible summarization parameters (%d/%d/%d)",
			ErrCorruptManifest, m.SeriesLen, m.Segments, m.CardBits)
	case m.Count < 0:
		return fmt.Errorf("%w: negative count", ErrCorruptManifest)
	case m.RawName == "":
		return fmt.Errorf("%w: empty raw dataset name", ErrCorruptManifest)
	}
	if m.Trie != nil {
		var total int64
		for _, l := range m.Trie.Leaves {
			if l.Count <= 0 || l.PageNum <= 0 || l.PageStart < 0 {
				return fmt.Errorf("%w: impossible trie leaf extent", ErrCorruptManifest)
			}
			total += l.Count
		}
		if total != m.Count {
			return fmt.Errorf("%w: trie leaf counts sum to %d, manifest count is %d",
				ErrCorruptManifest, total, m.Count)
		}
	}
	if m.LSM != nil {
		for i := 1; i < len(m.LSM.Cursors); i++ {
			if m.LSM.Cursors[i].Tier <= m.LSM.Cursors[i-1].Tier {
				return fmt.Errorf("%w: tier cursors out of order", ErrCorruptManifest)
			}
		}
		var total int64
		for _, ri := range m.LSM.Runs {
			if ri.Name == "" || ri.Count <= 0 || ri.Tier < 0 {
				return fmt.Errorf("%w: impossible run entry", ErrCorruptManifest)
			}
			total += ri.Count
		}
		if total != m.Count {
			return fmt.Errorf("%w: run counts sum to %d, manifest count is %d",
				ErrCorruptManifest, total, m.Count)
		}
		l := m.LSM
		if l.WALFlushed < 0 || l.WALFirstSeg < 0 || l.WALNextSeg < l.WALFirstSeg {
			return fmt.Errorf("%w: impossible WAL cursor (flushed=%d segments=[%d,%d))",
				ErrCorruptManifest, l.WALFlushed, l.WALFirstSeg, l.WALNextSeg)
		}
	}
	if m.Part != nil {
		p := m.Part
		switch p.ChildVariant {
		case VariantTree, VariantTrie, VariantLSM:
		default:
			return fmt.Errorf("%w: impossible child variant %q", ErrCorruptManifest, p.ChildVariant)
		}
		if p.Partitions < 2 || len(p.Boundaries) != p.Partitions-1 || len(p.Children) != p.Partitions {
			return fmt.Errorf("%w: partition layout shape mismatch (%d partitions, %d boundaries, %d children)",
				ErrCorruptManifest, p.Partitions, len(p.Boundaries), len(p.Children))
		}
		for i := 1; i < len(p.Boundaries); i++ {
			if p.Boundaries[i].Compare(p.Boundaries[i-1]) <= 0 {
				return fmt.Errorf("%w: partition boundaries out of order", ErrCorruptManifest)
			}
		}
		seen := make(map[string]bool, len(p.Children))
		for _, c := range p.Children {
			if c == "" || seen[c] {
				return fmt.Errorf("%w: empty or duplicate partition child name", ErrCorruptManifest)
			}
			seen[c] = true
		}
	}
	return nil
}

// Commit atomically writes m as the manifest for indexName on fs: the
// encoding goes to a temporary sibling first and is renamed over the live
// manifest in one step, so a crash mid-commit preserves the previous
// manifest.
func Commit(fs storage.FS, indexName string, m *Manifest) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return storage.WriteFileAtomic(fs, FileName(indexName), data)
}

// Load reads and decodes the manifest for indexName from fs.
func Load(fs storage.FS, indexName string) (*Manifest, error) {
	data, err := storage.ReadFileAll(fs, FileName(indexName))
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// CheckParams fails with ErrConfigMismatch unless the caller's
// summarization parameters, materialization, and dataset file match the
// stored manifest — the loud config-mismatch detection every Open path
// runs before touching index files.
func (m *Manifest) CheckParams(p summary.Params, materialized bool, rawName string) error {
	if p.SeriesLen != m.SeriesLen || p.Segments != m.Segments || p.CardBits != m.CardBits {
		return fmt.Errorf("%w: summarization %d/%d/%d (series/segments/cardbits), stored index uses %d/%d/%d",
			ErrConfigMismatch, p.SeriesLen, p.Segments, p.CardBits, m.SeriesLen, m.Segments, m.CardBits)
	}
	if materialized != m.Materialized {
		return fmt.Errorf("%w: materialized=%v, stored index has materialized=%v",
			ErrConfigMismatch, materialized, m.Materialized)
	}
	if rawName != m.RawName {
		return fmt.Errorf("%w: dataset file %q, stored index was built over %q",
			ErrConfigMismatch, rawName, m.RawName)
	}
	return nil
}

// CheckVariant fails with ErrConfigMismatch unless the manifest describes
// the expected index variant.
func (m *Manifest) CheckVariant(want Variant) error {
	if m.Variant != want {
		return fmt.Errorf("%w: stored index is a %s index, not %s", ErrConfigMismatch, m.Variant, want)
	}
	return nil
}

// writer accumulates the payload encoding.
type writer struct{ buf []byte }

func (w *writer) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *writer) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *writer) bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// reader consumes the payload with sticky bounds-checked errors.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorruptManifest, what, r.off)
	}
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 4 {
		r.fail("uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.remaining() < 1 {
		r.fail("bool")
		return false
	}
	v := r.buf[r.off]
	r.off++
	if v > 1 {
		if r.err == nil {
			r.err = fmt.Errorf("%w: bool byte %d", ErrCorruptManifest, v)
		}
		return false
	}
	return v == 1
}

func (r *reader) str() string {
	// Compare as uint32: on 32-bit platforms a forged length >= 2^31
	// would convert to a negative int and slip past int comparisons.
	n32 := r.u32()
	if r.err != nil {
		return ""
	}
	if n32 > maxStringLen || int(n32) > r.remaining() {
		r.fail("string")
		return ""
	}
	n := int(n32)
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) keyInto(k *summary.Key) {
	if r.err != nil {
		return
	}
	if r.remaining() < summary.KeySize {
		r.fail("key")
		return
	}
	copy(k[:], r.buf[r.off:])
	r.off += summary.KeySize
}
