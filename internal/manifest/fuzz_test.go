package manifest

import (
	"errors"
	"testing"
)

// FuzzDecode hammers the manifest decoder with arbitrary bytes: it must
// either produce a manifest that re-encodes to the exact same bytes, or
// fail with one of the typed errors — and never panic, hang, or allocate
// proportionally to a forged length field.
func FuzzDecode(f *testing.F) {
	for _, m := range samples() {
		data, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Seed a few structured mutations so the fuzzer starts near the
		// interesting surface: flipped payload byte, truncation, huge
		// length fields.
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-1] ^= 0xff
		f.Add(flipped)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("CCMF"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptManifest) && !errors.Is(err, ErrVersionMismatch) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input must round-trip bit for bit: Decode is only
		// allowed to accept encodings Encode could have produced.
		re, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted manifest failed to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("accepted manifest did not round-trip:\n in: %x\nout: %x", data, re)
		}
	})
}
