package manifest

import (
	"encoding/binary"
	"errors"
	"testing"

	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

func sampleTree() *Manifest {
	return &Manifest{
		Variant: VariantTree, SeriesLen: 256, Segments: 16, CardBits: 8,
		Materialized: true, LeafCap: 2000, RawName: "walk.bin", Count: 123456,
		Tree: &TreeLayout{RecordSize: 2072, KeyLen: 16, LeafCap: 2000,
			Fanout: 64, FillFactor: 0.9, NumLeaves: 69, NextPage: 69},
	}
}

func sampleTrie() *Manifest {
	return &Manifest{
		Variant: VariantTrie, SeriesLen: 64, Segments: 8, CardBits: 8,
		LeafCap: 50, RawName: "conf.bin", Count: 30,
		Trie: &TrieLayout{Pages: 3, Leaves: []TrieLeaf{
			{Count: 10, PageStart: 0, PageNum: 1},
			{Count: 20, PageStart: 1, PageNum: 2},
		}},
	}
}

func sampleLSM() *Manifest {
	var lo, hi summary.Key
	hi[0], hi[15] = 0xff, 0x7f
	return &Manifest{
		Variant: VariantLSM, SeriesLen: 128, Segments: 16, CardBits: 8,
		LeafCap: 2000, RawName: "data.bin", Count: 300,
		LSM: &LSMLayout{
			Fanout: 4, NextRun: 7, NextSeq: 9, Tier0Seq: 6,
			Cursors: []TierCursor{{Tier: 0, Groups: 1}, {Tier: 1, Groups: 0}},
			Runs: []RunInfo{
				{Name: "ix.run.000000", Tier: 1 << 30, TierSeq: 0, Seq: 0, Count: 200, MinKey: lo, MaxKey: hi},
				{Name: "ix.cmp.t0.000000", Tier: 1, TierSeq: 0, Seq: 1, Count: 80, MinKey: lo, MaxKey: hi},
				{Name: "ix.run.000005", Tier: 0, TierSeq: 4, Seq: 5, Count: 20, MinKey: lo, MaxKey: hi},
			},
		},
	}
}

func samples() []*Manifest {
	return []*Manifest{sampleTree(), sampleTrie(), sampleLSM()}
}

// TestRoundTrip: every variant encodes and decodes back to itself.
func TestRoundTrip(t *testing.T) {
	for _, m := range samples() {
		data, err := m.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Variant, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Variant, err)
		}
		assertEqual(t, m, got)
	}
}

func assertEqual(t *testing.T, want, got *Manifest) {
	t.Helper()
	if want.Variant != got.Variant || want.SeriesLen != got.SeriesLen ||
		want.Segments != got.Segments || want.CardBits != got.CardBits ||
		want.Materialized != got.Materialized || want.LeafCap != got.LeafCap ||
		want.RawName != got.RawName || want.Count != got.Count {
		t.Fatalf("header mismatch: want %+v, got %+v", want, got)
	}
	switch want.Variant {
	case VariantTree:
		if *want.Tree != *got.Tree {
			t.Fatalf("tree layout mismatch: want %+v, got %+v", *want.Tree, *got.Tree)
		}
	case VariantTrie:
		if want.Trie.Pages != got.Trie.Pages || len(want.Trie.Leaves) != len(got.Trie.Leaves) {
			t.Fatalf("trie layout mismatch: want %+v, got %+v", want.Trie, got.Trie)
		}
		for i := range want.Trie.Leaves {
			if want.Trie.Leaves[i] != got.Trie.Leaves[i] {
				t.Fatalf("trie leaf %d mismatch", i)
			}
		}
	case VariantLSM:
		w, g := want.LSM, got.LSM
		if w.Fanout != g.Fanout || w.NextRun != g.NextRun || w.NextSeq != g.NextSeq ||
			w.Tier0Seq != g.Tier0Seq || len(w.Cursors) != len(g.Cursors) || len(w.Runs) != len(g.Runs) {
			t.Fatalf("lsm layout mismatch: want %+v, got %+v", w, g)
		}
		for i := range w.Runs {
			if w.Runs[i] != g.Runs[i] {
				t.Fatalf("run %d mismatch: want %+v, got %+v", i, w.Runs[i], g.Runs[i])
			}
		}
	}
}

// TestCorruptionDetection: the targeted corruption suite the issue asks
// for — truncation, a flipped checksum-protected byte, a flipped checksum
// byte, and a stale version must all decode to typed errors, never panic
// or a silent misread.
func TestCorruptionDetection(t *testing.T) {
	for _, m := range samples() {
		data, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}

		// Truncation at every prefix length.
		for n := 0; n < len(data); n++ {
			if _, err := Decode(data[:n]); !errors.Is(err, ErrCorruptManifest) {
				t.Fatalf("%s: truncation to %d bytes: got %v, want ErrCorruptManifest",
					m.Variant, n, err)
			}
		}

		// Every single-byte flip must be caught — header flips by the
		// structural checks, payload flips by the CRC.
		for i := range data {
			mut := append([]byte(nil), data...)
			mut[i] ^= 0x40
			_, err := Decode(mut)
			if err == nil {
				t.Fatalf("%s: byte %d flip decoded successfully", m.Variant, i)
			}
			if !errors.Is(err, ErrCorruptManifest) && !errors.Is(err, ErrVersionMismatch) {
				t.Fatalf("%s: byte %d flip: untyped error %v", m.Variant, i, err)
			}
		}

		// A stale (future) version is a version mismatch, not corruption.
		mut := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(mut[4:], version+1)
		if _, err := Decode(mut); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("%s: future version: got %v, want ErrVersionMismatch", m.Variant, err)
		}
	}
}

// TestCommitAtomicity: a fault during the temp write must leave the
// previous manifest untouched and no temporary behind; only the rename
// publishes the new version.
func TestCommitAtomicity(t *testing.T) {
	fs := storage.NewMemFS()
	first := sampleTree()
	if err := Commit(fs, "ix", first); err != nil {
		t.Fatal(err)
	}
	second := sampleTree()
	second.Count = 999

	boom := errors.New("boom")
	fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
		if op == storage.OpWrite && name == FileName("ix")+".tmp" {
			return boom
		}
		return nil
	})
	if err := Commit(fs, "ix", second); !errors.Is(err, boom) {
		t.Fatalf("commit under fault: got %v, want boom", err)
	}
	fs.SetFault(nil)
	if fs.Exists(FileName("ix") + ".tmp") {
		t.Fatal("failed commit left a temporary behind")
	}
	got, err := Load(fs, "ix")
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != first.Count {
		t.Fatalf("failed commit clobbered the live manifest: count %d", got.Count)
	}

	// And a successful commit replaces it atomically.
	if err := Commit(fs, "ix", second); err != nil {
		t.Fatal(err)
	}
	got, err = Load(fs, "ix")
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 999 {
		t.Fatalf("commit did not publish the new manifest: count %d", got.Count)
	}
}

// TestCheckParams: the loud config-mismatch detection.
func TestCheckParams(t *testing.T) {
	m := sampleTree()
	ok := summary.Params{SeriesLen: 256, Segments: 16, CardBits: 8}
	if err := m.CheckParams(ok, true, "walk.bin"); err != nil {
		t.Fatalf("matching params rejected: %v", err)
	}
	bad := []struct {
		p   summary.Params
		mat bool
		raw string
	}{
		{summary.Params{SeriesLen: 128, Segments: 16, CardBits: 8}, true, "walk.bin"},
		{summary.Params{SeriesLen: 256, Segments: 8, CardBits: 8}, true, "walk.bin"},
		{summary.Params{SeriesLen: 256, Segments: 16, CardBits: 4}, true, "walk.bin"},
		{ok, false, "walk.bin"},
		{ok, true, "other.bin"},
	}
	for i, b := range bad {
		if err := m.CheckParams(b.p, b.mat, b.raw); !errors.Is(err, ErrConfigMismatch) {
			t.Fatalf("case %d: got %v, want ErrConfigMismatch", i, err)
		}
	}
	if err := m.CheckVariant(VariantTree); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckVariant(VariantLSM); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("variant mismatch: got %v", err)
	}
}

// TestChecksumFlagVersioning: the format-flag fields (Checksums, format 3;
// Compressed, format 4) round-trip, and older-format manifests keep
// encoding bit-exactly at their own version with the flags reading as
// false — the legacy-compatibility contract.
func TestChecksumFlagVersioning(t *testing.T) {
	// A fresh manifest carries the flags at the newest version.
	m := sampleTree()
	m.Checksums = true
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != 4 {
		t.Fatalf("fresh manifest encoded at version %d, want 4", v)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Checksums {
		t.Fatal("Checksums flag lost in round trip")
	}
	if got.Compressed {
		t.Fatal("Compressed flag set without being written")
	}
	re, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(data) {
		t.Fatal("v4 re-encode is not bit-exact")
	}
	// A version-2 manifest (no flag field) still round-trips bit-exactly.
	m2 := sampleLSM()
	m2.ver = 2
	data2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data2[4:]); v != 2 {
		t.Fatalf("legacy manifest re-encoded at version %d, want 2", v)
	}
	got2, err := Decode(data2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Checksums {
		t.Fatal("legacy manifest decoded with Checksums set")
	}
	re2, err := got2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(re2) != string(data2) {
		t.Fatal("v2 re-encode is not bit-exact")
	}
	// A legacy manifest that gains a flag is promoted to the newest
	// version and keeps it.
	got2.Checksums = true
	got2.Compressed = true
	data3, err := got2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data3[4:]); v != 4 {
		t.Fatalf("flag-carrying manifest encoded at version %d, want 4", v)
	}
	got3, err := Decode(data3)
	if err != nil {
		t.Fatal(err)
	}
	if !got3.Checksums || !got3.Compressed {
		t.Fatal("promoted manifest lost a format flag")
	}
}

// TestCompressedFlagVersioning: a version-3 manifest (Checksums era, no
// Compressed field) still round-trips bit-exactly with Compressed false.
func TestCompressedFlagVersioning(t *testing.T) {
	m := sampleLSM()
	m.Checksums = true
	m.ver = 3
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != 3 {
		t.Fatalf("v3 manifest re-encoded at version %d, want 3", v)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Checksums || got.Compressed {
		t.Fatalf("v3 decode: Checksums=%v Compressed=%v", got.Checksums, got.Compressed)
	}
	re, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(data) {
		t.Fatal("v3 re-encode is not bit-exact")
	}
	// Gaining the Compressed flag promotes it to version 4.
	got.Compressed = true
	data4, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data4[4:]); v != 4 {
		t.Fatalf("promoted manifest encoded at version %d, want 4", v)
	}
	got4, err := Decode(data4)
	if err != nil {
		t.Fatal(err)
	}
	if !got4.Compressed || !got4.Checksums {
		t.Fatal("promotion lost a flag")
	}
}
