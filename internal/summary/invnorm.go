package summary

import "math"

// InvNormCDF returns the inverse of the standard normal cumulative
// distribution function (the quantile function Φ⁻¹). It is used to place
// the SAX breakpoints so that each symbol region is equiprobable under
// N(0,1) — which matches z-normalized data and gives an approximately even
// spread of series across symbols (§2).
//
// The implementation is Acklam's rational approximation refined with one
// Halley step through math.Erfc, giving ~1e-15 relative accuracy — far
// beyond what breakpoint placement needs.
func InvNormCDF(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}

	const pLow = 0.02425
	const pHigh = 1 - pLow

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement: e = Φ(x) - p.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Breakpoints returns the cardinality-1 breakpoints that divide N(0,1) into
// `cardinality` equiprobable regions, in increasing order. Symbol s covers
// the value region [bp[s-1], bp[s]) with bp[-1] = -inf and
// bp[cardinality-1] = +inf.
func Breakpoints(cardinality int) []float64 {
	if cardinality < 2 {
		return nil
	}
	bp := make([]float64, cardinality-1)
	for i := range bp {
		bp[i] = InvNormCDF(float64(i+1) / float64(cardinality))
	}
	return bp
}
