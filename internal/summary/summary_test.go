package summary

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/coconut-db/coconut/internal/series"
)

func TestInvNormCDF(t *testing.T) {
	if got := InvNormCDF(0.5); math.Abs(got) > 1e-12 {
		t.Errorf("InvNormCDF(0.5) = %v, want 0", got)
	}
	// Known quantiles.
	cases := map[float64]float64{
		0.975:              1.959963984540054,
		0.8413447460685429: 1.0, // Φ(1)
		0.025:              -1.959963984540054,
	}
	for p, want := range cases {
		if got := InvNormCDF(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("InvNormCDF(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(InvNormCDF(0), -1) || !math.IsInf(InvNormCDF(1), 1) {
		t.Error("edge quantiles should be infinite")
	}
	if !math.IsNaN(InvNormCDF(-0.1)) || !math.IsNaN(InvNormCDF(1.1)) {
		t.Error("out-of-range p should be NaN")
	}
}

func TestInvNormCDFRoundTrip(t *testing.T) {
	cdf := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	for p := 0.001; p < 1; p += 0.001 {
		x := InvNormCDF(p)
		if got := cdf(x); math.Abs(got-p) > 1e-12 {
			t.Fatalf("CDF(InvNormCDF(%v)) = %v", p, got)
		}
	}
}

func TestBreakpoints(t *testing.T) {
	bp := Breakpoints(4)
	if len(bp) != 3 {
		t.Fatalf("cardinality 4 should have 3 breakpoints, got %d", len(bp))
	}
	want := []float64{-0.6744897501960817, 0, 0.6744897501960817}
	for i := range bp {
		if math.Abs(bp[i]-want[i]) > 1e-9 {
			t.Errorf("bp[%d] = %v, want %v", i, bp[i], want[i])
		}
	}
	if !sort.Float64sAreSorted(Breakpoints(256)) {
		t.Error("breakpoints must be sorted")
	}
	if Breakpoints(1) != nil {
		t.Error("cardinality 1 has no breakpoints")
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{SeriesLen: 256, Segments: 16, CardBits: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{SeriesLen: 0, Segments: 16, CardBits: 8},
		{SeriesLen: 256, Segments: 0, CardBits: 8},
		{SeriesLen: 8, Segments: 16, CardBits: 8},
		{SeriesLen: 256, Segments: 16, CardBits: 0},
		{SeriesLen: 256, Segments: 16, CardBits: 9},
		{SeriesLen: 256, Segments: 32, CardBits: 8}, // 256 bits > 128-bit key
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
	if got := good.Cardinality(); got != 256 {
		t.Errorf("Cardinality = %d", got)
	}
}

func mustSummarizer(t *testing.T, p Params) *Summarizer {
	t.Helper()
	s, err := NewSummarizer(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPAAKnownValues(t *testing.T) {
	s := mustSummarizer(t, Params{SeriesLen: 8, Segments: 4, CardBits: 8})
	ser := series.Series{1, 3, -2, 2, 5, 5, 0, 4}
	paa, err := s.PAA(ser, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 5, 2}
	for j := range want {
		if math.Abs(paa[j]-want[j]) > 1e-12 {
			t.Errorf("paa[%d] = %v, want %v", j, paa[j], want[j])
		}
	}
	if _, err := s.PAA(series.Series{1, 2}, nil); err == nil {
		t.Error("expected length error")
	}
}

func TestPAAUnequalSegments(t *testing.T) {
	// 10 points over 4 segments: widths 2,3,2,3 (bounds 0,2,5,7,10).
	s := mustSummarizer(t, Params{SeriesLen: 10, Segments: 4, CardBits: 4})
	widths := 0
	for j := 0; j < 4; j++ {
		w := s.SegmentWidth(j)
		if w < 2 || w > 3 {
			t.Errorf("segment %d width %d out of range", j, w)
		}
		widths += w
	}
	if widths != 10 {
		t.Fatalf("segment widths sum to %d, want 10", widths)
	}
	ser := make(series.Series, 10)
	for i := range ser {
		ser[i] = 1
	}
	paa, _ := s.PAA(ser, nil)
	for j, v := range paa {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("paa[%d] = %v, want 1", j, v)
		}
	}
}

func TestSymbolMonotonic(t *testing.T) {
	s := mustSummarizer(t, Params{SeriesLen: 16, Segments: 4, CardBits: 8})
	prev := uint8(0)
	for v := -4.0; v <= 4.0; v += 0.01 {
		sym := s.Symbol(v)
		if sym < prev {
			t.Fatalf("Symbol not monotonic at %v: %d < %d", v, sym, prev)
		}
		prev = sym
	}
	if s.Symbol(-100) != 0 {
		t.Error("very low value should map to symbol 0")
	}
	if s.Symbol(100) != uint8(s.Params().Cardinality()-1) {
		t.Error("very high value should map to the top symbol")
	}
}

func TestRegionContainsValue(t *testing.T) {
	s := mustSummarizer(t, Params{SeriesLen: 16, Segments: 4, CardBits: 8})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64() * 2
		sym := s.Symbol(v)
		for pb := 1; pb <= 8; pb++ {
			lo, hi := s.Region(sym, pb)
			if v < lo || v > hi {
				t.Fatalf("value %v outside region [%v,%v] of symbol %d at %d bits", v, lo, hi, sym, pb)
			}
		}
		// Coarser prefixes cover wider regions.
		lo8, hi8 := s.Region(sym, 8)
		lo1, hi1 := s.Region(sym, 1)
		if lo1 > lo8 || hi1 < hi8 {
			t.Fatalf("coarse region must contain fine region")
		}
	}
}

func TestInterleavePaperExample(t *testing.T) {
	// Figure 2/4 of the paper: 2 segments, 3-bit symbols.
	// S1 = (100,010), S2 = (100,100), S3 = (101,010), S4 = (110,100).
	// Sorting by invSAX must give S1, S3, S2, S4 — placing the most similar
	// pairs (S1,S3) and (S2,S4) adjacent, unlike lexicographic SAX order.
	k1 := Interleave(SAX{0b100, 0b010}, 3)
	k2 := Interleave(SAX{0b100, 0b100}, 3)
	k3 := Interleave(SAX{0b101, 0b010}, 3)
	k4 := Interleave(SAX{0b110, 0b100}, 3)
	if !(k1.Less(k3) && k3.Less(k2) && k2.Less(k4)) {
		t.Fatalf("z-order mismatch with paper example: %v %v %v %v", k1, k3, k2, k4)
	}
	// Leading 6 bits: S1=100100, S3=100110, S2=110000, S4=111000.
	if k1[0] != 0b10010000 {
		t.Errorf("k1 first byte = %08b", k1[0])
	}
	if k3[0] != 0b10011000 {
		t.Errorf("k3 first byte = %08b", k3[0])
	}
	if k2[0] != 0b11000000 {
		t.Errorf("k2 first byte = %08b", k2[0])
	}
	if k4[0] != 0b11100000 {
		t.Errorf("k4 first byte = %08b", k4[0])
	}
}

func TestInterleaveDeinterleaveRoundTrip(t *testing.T) {
	configs := []struct{ w, b int }{{16, 8}, {8, 8}, {16, 4}, {4, 3}, {1, 8}, {32, 4}}
	for _, cfg := range configs {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			sax := make(SAX, cfg.w)
			for j := range sax {
				sax[j] = uint8(rng.Intn(1 << cfg.b))
			}
			k := Interleave(sax, cfg.b)
			got := Deinterleave(k, cfg.w, cfg.b)
			for j := range sax {
				if sax[j] != got[j] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}

func TestKeyOrderMatchesMortonOrder(t *testing.T) {
	// For 2 segments the z-order curve on (sym0, sym1) is the standard
	// Morton order; verify against a direct bit-interleaving of integers.
	const bits = 8
	morton := func(a, b uint8) uint32 {
		var m uint32
		for i := bits - 1; i >= 0; i-- {
			m = m<<1 | uint32((a>>uint(i))&1)
			m = m<<1 | uint32((b>>uint(i))&1)
		}
		return m
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a0, b0 := uint8(rng.Intn(256)), uint8(rng.Intn(256))
		a1, b1 := uint8(rng.Intn(256)), uint8(rng.Intn(256))
		k0 := Interleave(SAX{a0, b0}, bits)
		k1 := Interleave(SAX{a1, b1}, bits)
		wantLess := morton(a0, b0) < morton(a1, b1)
		if k0.Less(k1) != wantLess {
			t.Fatalf("key order disagrees with Morton order for (%d,%d) vs (%d,%d)", a0, b0, a1, b1)
		}
	}
}

func TestCommonPrefixBits(t *testing.T) {
	a := Interleave(SAX{0b1000, 0b1000}, 4)
	b := Interleave(SAX{0b1000, 0b1001}, 4)
	// Keys differ only in the last interleaved bit (bit index 7 of 8).
	if got := CommonPrefixBits(a, b, 8); got != 7 {
		t.Fatalf("CommonPrefixBits = %d, want 7", got)
	}
	if got := CommonPrefixBits(a, a, 8); got != 8 {
		t.Fatalf("identical keys: %d, want 8", got)
	}
}

func randomSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s.ZNormalize()
}

func TestMinDistLowerBoundsED(t *testing.T) {
	s := mustSummarizer(t, Params{SeriesLen: 64, Segments: 8, CardBits: 6})
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		q := randomSeries(rng, 64)
		x := randomSeries(rng, 64)
		qPAA, _ := s.PAA(q, nil)
		xSAX, _ := s.SAXOf(x)
		ed, _ := series.ED(q, x)

		lb := s.MinDistPAAToSAX(qPAA, xSAX)
		if lb > ed+1e-9 {
			t.Fatalf("trial %d: MINDIST %v > ED %v", trial, lb, ed)
		}

		// Coarser prefixes give weaker (smaller) bounds.
		bits := make([]uint8, 8)
		for j := range bits {
			bits[j] = 3
		}
		lbCoarse := s.MinDistPAAToPrefix(qPAA, xSAX, bits)
		if lbCoarse > lb+1e-9 {
			t.Fatalf("trial %d: coarse bound %v exceeds fine bound %v", trial, lbCoarse, lb)
		}

		qSAX := s.SAXFromPAA(qPAA, nil)
		lbSS := s.MinDistSAXToSAX(qSAX, xSAX)
		if lbSS > ed+1e-9 {
			t.Fatalf("trial %d: SAX-SAX bound %v > ED %v", trial, lbSS, ed)
		}
	}
}

func TestMinDistZeroForOwnWord(t *testing.T) {
	s := mustSummarizer(t, Params{SeriesLen: 64, Segments: 8, CardBits: 6})
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		q := randomSeries(rng, 64)
		qPAA, _ := s.PAA(q, nil)
		qSAX := s.SAXFromPAA(qPAA, nil)
		if lb := s.MinDistPAAToSAX(qPAA, qSAX); lb != 0 {
			t.Fatalf("distance to own SAX region should be 0, got %v", lb)
		}
	}
}

func TestKeyOfMatchesManualPipeline(t *testing.T) {
	s := mustSummarizer(t, DefaultParams(256))
	rng := rand.New(rand.NewSource(5))
	ser := randomSeries(rng, 256)
	k, err := s.KeyOf(ser)
	if err != nil {
		t.Fatal(err)
	}
	sax, _ := s.SAXOf(ser)
	if k != s.KeyFromSAX(sax) {
		t.Fatal("KeyOf disagrees with SAX+Interleave")
	}
	back := s.SAXFromKey(k)
	for j := range sax {
		if sax[j] != back[j] {
			t.Fatal("SAXFromKey failed to invert")
		}
	}
	if _, err := s.KeyOf(series.Series{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestZOrderLocality(t *testing.T) {
	// Statistical sanity check of the paper's core claim: sorting by invSAX
	// places similar series closer than sorting by plain lexicographic SAX.
	// We measure the mean ED between sort-order neighbors under both orders.
	const n, count = 64, 400
	s := mustSummarizer(t, Params{SeriesLen: n, Segments: 8, CardBits: 8})
	rng := rand.New(rand.NewSource(31))
	sers := make([]series.Series, count)
	keys := make([]Key, count)
	saxes := make([]SAX, count)
	for i := range sers {
		sers[i] = randomSeries(rng, n)
		saxes[i], _ = s.SAXOf(sers[i])
		keys[i] = s.KeyFromSAX(saxes[i])
	}
	meanNeighborED := func(order []int) float64 {
		total := 0.0
		for i := 1; i < len(order); i++ {
			d, _ := series.ED(sers[order[i-1]], sers[order[i]])
			total += d
		}
		return total / float64(len(order)-1)
	}
	zo := make([]int, count)
	lex := make([]int, count)
	for i := range zo {
		zo[i], lex[i] = i, i
	}
	sort.Slice(zo, func(a, b int) bool { return keys[zo[a]].Less(keys[zo[b]]) })
	sort.Slice(lex, func(a, b int) bool {
		sa, sb := saxes[lex[a]], saxes[lex[b]]
		for j := range sa {
			if sa[j] != sb[j] {
				return sa[j] < sb[j]
			}
		}
		return false
	})
	zED := meanNeighborED(zo)
	lexED := meanNeighborED(lex)
	if zED >= lexED {
		t.Fatalf("z-order locality failed: z-order neighbor ED %v >= lexicographic %v", zED, lexED)
	}
}
