package summary

import (
	"fmt"
	"math"
	"sort"

	"github.com/coconut-db/coconut/internal/series"
)

// SAX is a SAX word: one symbol per segment. Symbols are ordered by value —
// symbol 0 is the lowest Gaussian region — so numeric comparisons on
// symbols correspond to vertical order in value space (Figure 1).
type SAX []uint8

// Summarizer converts raw series into PAA, SAX, and sortable invSAX keys
// for one fixed Params configuration. It is immutable after construction
// and safe for concurrent use.
type Summarizer struct {
	p  Params
	bp []float64 // cardinality-1 Gaussian breakpoints
	// segBounds[j] is the first point index of segment j; segBounds has
	// Segments+1 entries. Segment widths differ by at most one point when
	// SeriesLen is not divisible by Segments.
	segBounds []int
}

// NewSummarizer validates p and returns a Summarizer for it.
func NewSummarizer(p Params) (*Summarizer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Summarizer{p: p, bp: Breakpoints(p.Cardinality())}
	s.segBounds = make([]int, p.Segments+1)
	for j := 0; j <= p.Segments; j++ {
		s.segBounds[j] = j * p.SeriesLen / p.Segments
	}
	return s, nil
}

// Params returns the configuration.
func (s *Summarizer) Params() Params { return s.p }

// Breakpoints exposes the Gaussian breakpoint table (do not mutate).
func (s *Summarizer) Breakpoints() []float64 { return s.bp }

// SegmentWidth returns the number of points in segment j.
func (s *Summarizer) SegmentWidth(j int) int { return s.segBounds[j+1] - s.segBounds[j] }

// PAA computes the Piecewise Aggregate Approximation of ser into dst
// (allocated when nil) and returns it. ser must have length SeriesLen.
func (s *Summarizer) PAA(ser series.Series, dst []float64) ([]float64, error) {
	if len(ser) != s.p.SeriesLen {
		return nil, fmt.Errorf("summary: series length %d, summarizer expects %d", len(ser), s.p.SeriesLen)
	}
	if cap(dst) < s.p.Segments {
		dst = make([]float64, s.p.Segments)
	}
	dst = dst[:s.p.Segments]
	for j := 0; j < s.p.Segments; j++ {
		lo, hi := s.segBounds[j], s.segBounds[j+1]
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += ser[i]
		}
		dst[j] = sum / float64(hi-lo)
	}
	return dst, nil
}

// Symbol maps one value to its SAX symbol: the index of the Gaussian region
// containing v.
func (s *Summarizer) Symbol(v float64) uint8 {
	// sort.SearchFloat64s returns the number of breakpoints < v or <= v;
	// either convention lands v in a valid region, and ties on an exact
	// breakpoint are vanishingly rare on real data.
	return uint8(sort.SearchFloat64s(s.bp, v))
}

// SAXFromPAA discretizes a PAA vector into a SAX word, into dst when
// provided.
func (s *Summarizer) SAXFromPAA(paa []float64, dst SAX) SAX {
	if cap(dst) < len(paa) {
		dst = make(SAX, len(paa))
	}
	dst = dst[:len(paa)]
	for j, v := range paa {
		dst[j] = s.Symbol(v)
	}
	return dst
}

// SAXOf computes the SAX word of a raw series.
func (s *Summarizer) SAXOf(ser series.Series) (SAX, error) {
	paa, err := s.PAA(ser, nil)
	if err != nil {
		return nil, err
	}
	return s.SAXFromPAA(paa, nil), nil
}

// KeyOf computes the sortable invSAX key of a raw series: SAX followed by
// bit interleaving (Algorithm 1).
func (s *Summarizer) KeyOf(ser series.Series) (Key, error) {
	sax, err := s.SAXOf(ser)
	if err != nil {
		return Key{}, err
	}
	return Interleave(sax, s.p.CardBits), nil
}

// KeyFromSAX interleaves an existing SAX word.
func (s *Summarizer) KeyFromSAX(sax SAX) Key { return Interleave(sax, s.p.CardBits) }

// SAXFromKey inverts KeyFromSAX.
func (s *Summarizer) SAXFromKey(k Key) SAX {
	return Deinterleave(k, s.p.Segments, s.p.CardBits)
}

// Region returns the value interval [lo, hi) covered by the prefix made of
// the top prefixBits bits of symbol sym. prefixBits == CardBits denotes a
// fully specified symbol. lo may be -Inf and hi may be +Inf.
//
// Because the breakpoints are equiprobable quantiles, the region of a k-bit
// prefix p is exactly the union of the fine regions of the symbols sharing
// that prefix: fine symbols [p << (b-k), (p+1) << (b-k)).
func (s *Summarizer) Region(sym uint8, prefixBits int) (lo, hi float64) {
	b := s.p.CardBits
	if prefixBits < 0 || prefixBits > b {
		panic("summary: prefix bits out of range")
	}
	shift := uint(b - prefixBits)
	prefix := int(sym) >> shift
	first := prefix << shift
	last := (prefix + 1) << shift // exclusive
	if first == 0 {
		lo = math.Inf(-1)
	} else {
		lo = s.bp[first-1]
	}
	if last >= s.p.Cardinality() {
		hi = math.Inf(1)
	} else {
		hi = s.bp[last-1]
	}
	return lo, hi
}

// MinDistPAAToSAX returns the classic iSAX lower bound on the Euclidean
// distance between the series behind paa (the query) and ANY series whose
// SAX word is sax. Both must come from this summarizer's configuration.
//
// Query hot paths should prefer MinDistSqPAAToSAX (or a per-query
// MinDistTable) and compare in squared space; this sqrt form is kept for
// reporting and for callers mixing the bound with true distances.
func (s *Summarizer) MinDistPAAToSAX(paa []float64, sax SAX) float64 {
	return math.Sqrt(s.MinDistSqPAAToPrefix(paa, sax, nil))
}

// MinDistSqPAAToSAX is MinDistPAAToSAX without the final square root: the
// SQUARED lower bound. Squaring is monotone on non-negative reals, so
// comparing squared lower bounds against a squared best-so-far prunes
// exactly like the sqrt forms — and skips one sqrt per candidate.
func (s *Summarizer) MinDistSqPAAToSAX(paa []float64, sax SAX) float64 {
	return s.MinDistSqPAAToPrefix(paa, sax, nil)
}

// MinDistPAAToPrefix generalizes MinDistPAAToSAX to iSAX nodes: bits[j]
// gives how many leading bits of sax[j] are fixed (nil bits means all
// CardBits are fixed for every segment). The bound is
//
//	sqrt( Σ_j width_j · d_j² )
//
// where d_j is the gap between the query PAA value and the node's value
// region in segment j, and width_j is the segment's point count — the
// general form of sqrt(n/w)·sqrt(Σ d²) that remains a lower bound when
// segments have unequal widths.
func (s *Summarizer) MinDistPAAToPrefix(paa []float64, sax SAX, bits []uint8) float64 {
	return math.Sqrt(s.MinDistSqPAAToPrefix(paa, sax, bits))
}

// MinDistSqPAAToPrefix is the squared form of MinDistPAAToPrefix and the
// single implementation the sqrt wrappers and the MinDistTable builder
// share: every other evaluation path must sum these exact per-segment
// terms (width_j · d_j², accumulated in segment order) so that table
// lookups reproduce it to exact float64 equality.
func (s *Summarizer) MinDistSqPAAToPrefix(paa []float64, sax SAX, bits []uint8) float64 {
	acc := 0.0
	for j, q := range paa {
		pb := s.p.CardBits
		if bits != nil {
			pb = int(bits[j])
		}
		acc += s.minDistSqTerm(j, q, sax[j], pb)
	}
	return acc
}

// minDistSqTerm computes segment j's contribution to the squared MINDIST:
// width_j · d², where d is the gap between the query PAA value q and the
// value region of sym's pb-bit prefix. This is the one place the term's
// floating-point expression lives — MinDistTable entries are built by
// calling it, which is what makes table evaluation exactly equal to the
// direct kernels.
func (s *Summarizer) minDistSqTerm(j int, q float64, sym uint8, pb int) float64 {
	lo, hi := s.Region(sym, pb)
	var d float64
	switch {
	case q < lo:
		d = lo - q
	case q > hi:
		d = q - hi
	}
	if d == 0 {
		return 0
	}
	return float64(s.SegmentWidth(j)) * d * d
}

// MinDistSAXToSAX lower-bounds the distance between any two series given
// only their SAX words, using the gap between their symbol regions. It is
// weaker than MinDistPAAToSAX (used when only summaries are available).
func (s *Summarizer) MinDistSAXToSAX(a, b SAX) float64 {
	acc := 0.0
	for j := range a {
		if a[j] == b[j] {
			continue
		}
		loA, hiA := s.Region(a[j], s.p.CardBits)
		loB, hiB := s.Region(b[j], s.p.CardBits)
		var d float64
		if hiA < loB {
			d = loB - hiA
		} else if hiB < loA {
			d = loA - hiB
		}
		if d != 0 {
			acc += float64(s.SegmentWidth(j)) * d * d
		}
	}
	return math.Sqrt(acc)
}
