package summary

import (
	"math/rand"
	"testing"

	"github.com/coconut-db/coconut/internal/series"
)

func TestKeysOfMatchesKeyOf(t *testing.T) {
	s, err := NewSummarizer(Params{SeriesLen: 96, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	batch := make([]series.Series, 137)
	for i := range batch {
		ser := make(series.Series, 96)
		for j := range ser {
			ser[j] = rng.NormFloat64()
		}
		batch[i] = ser.ZNormalize()
	}
	want := make([]Key, len(batch))
	for i, ser := range batch {
		if want[i], err = s.KeyOf(ser); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := s.KeysOf(batch, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d keys, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: key %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestKeysOfEmptyAndErrors(t *testing.T) {
	s, err := NewSummarizer(Params{SeriesLen: 96, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := s.KeysOf(nil, 4)
	if err != nil || len(keys) != 0 {
		t.Fatalf("empty batch: keys=%v err=%v", keys, err)
	}
	bad := []series.Series{make(series.Series, 96), make(series.Series, 5)}
	if _, err := s.KeysOf(bad, 4); err == nil {
		t.Fatal("expected length-mismatch error to propagate")
	}
}
