package summary

import "fmt"

// MinDistTable is a per-query lookup table for the squared iSAX
// lower-bounding distance MINDIST. For a fixed query PAA vector, segment
// j's contribution to the bound depends only on the candidate's symbol
// prefix in that segment — so the table precomputes width_j · d² for every
// (segment, prefix-length, prefix) once per query, in
// O(Segments · Cardinality) time, and every candidate afterwards is a sum
// of Segments array lookups: no SAX allocation, no breakpoint-region
// recomputation, no sqrt.
//
// Entries are built by the same minDistSqTerm the direct kernels use and
// are summed in segment order, so every evaluation method returns EXACTLY
// (bit for bit) what the corresponding MinDistSq kernel returns.
//
// A table is immutable after Build and safe for concurrent use by any
// number of goroutines (the SIMS lower-bound pass shards one table across
// all query workers).
type MinDistTable struct {
	segments int
	cardBits int
	// stride is the number of entries per segment: one per prefix at every
	// prefix length 0..cardBits, i.e. 2^(cardBits+1) - 1.
	stride int
	// fullOff is the offset of the full-cardinality level inside a segment's
	// row: 2^cardBits - 1.
	fullOff int
	// entries holds segments × stride squared contributions. Level pb of
	// segment j starts at j*stride + (1<<pb - 1); the entry for a symbol sym
	// at prefix length pb is at index (sym >> (cardBits-pb)) within the
	// level.
	entries []float64
}

// BuildMinDistTable builds (or rebuilds, reusing tbl's storage when it has
// capacity) the per-query table for qPAA, which must have exactly Segments
// entries from this summarizer's configuration — anything else panics,
// matching the contract of the direct MINDIST kernels.
func (s *Summarizer) BuildMinDistTable(qPAA []float64, tbl *MinDistTable) *MinDistTable {
	if len(qPAA) != s.p.Segments {
		panic(fmt.Sprintf("summary: query PAA has %d segments, summarizer expects %d", len(qPAA), s.p.Segments))
	}
	if tbl == nil {
		tbl = &MinDistTable{}
	}
	b := s.p.CardBits
	tbl.segments = s.p.Segments
	tbl.cardBits = b
	tbl.stride = 2*s.p.Cardinality() - 1
	tbl.fullOff = s.p.Cardinality() - 1
	need := tbl.segments * tbl.stride
	if cap(tbl.entries) < need {
		tbl.entries = make([]float64, need)
	}
	tbl.entries = tbl.entries[:need]
	for j := 0; j < tbl.segments; j++ {
		q := qPAA[j]
		row := tbl.entries[j*tbl.stride : (j+1)*tbl.stride]
		for pb := 0; pb <= b; pb++ {
			level := row[(1<<pb)-1:]
			shift := uint(b - pb)
			for prefix := 0; prefix < 1<<pb; prefix++ {
				level[prefix] = s.minDistSqTerm(j, q, uint8(prefix<<shift), pb)
			}
		}
	}
	return tbl
}

// Segments returns the segment count the table was built for.
func (t *MinDistTable) Segments() int { return t.segments }

// Key evaluates the squared lower bound for an interleaved invSAX key,
// extracting each segment's symbol directly from the key's bit layout —
// no SAX word is materialized and nothing is allocated. Bit i (counting
// from the symbol's MSB) of segment j lives at interleaved position
// i·Segments + j, so segment j's bits are the key bits j, j+w, j+2w, ...
func (t *MinDistTable) Key(k Key) float64 {
	acc := 0.0
	w, b := t.segments, t.cardBits
	for j := 0; j < w; j++ {
		sym := 0
		in := j
		for i := 0; i < b; i++ {
			bit := int(k[in>>3]>>uint(7-in&7)) & 1
			sym = sym<<1 | bit
			in += w
		}
		acc += t.entries[j*t.stride+t.fullOff+sym]
	}
	return acc
}

// Word evaluates the squared lower bound for a full-cardinality SAX word.
// Exactly equal to MinDistSqPAAToSAX on the query the table was built for.
func (t *MinDistTable) Word(sax SAX) float64 {
	acc := 0.0
	for j, sym := range sax {
		acc += t.entries[j*t.stride+t.fullOff+int(sym)]
	}
	return acc
}

// Prefix evaluates the squared lower bound for an iSAX node: syms[j] holds
// segment j's prefix in its high bits and bits[j] says how many of them
// are fixed (nil bits means fully specified). Exactly equal to
// MinDistSqPAAToPrefix on the query the table was built for.
func (t *MinDistTable) Prefix(syms SAX, bits []uint8) float64 {
	if bits == nil {
		return t.Word(syms)
	}
	acc := 0.0
	b := uint(t.cardBits)
	for j, sym := range syms {
		pb := int(bits[j])
		off := (1 << pb) - 1
		acc += t.entries[j*t.stride+off+int(sym>>(b-uint(pb)))]
	}
	return acc
}
