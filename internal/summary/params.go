// Package summary implements the data series summarizations at the heart of
// Coconut: PAA (Piecewise Aggregate Approximation), SAX/iSAX (Symbolic
// Aggregate approXimation over Gaussian equiprobable regions), the
// lower-bounding distance MINDIST, and — the paper's first contribution —
// the sortable invSAX summarization: a z-order (Morton) interleaving of the
// per-segment SAX bits such that lexicographic order on the interleaved key
// keeps similar series adjacent (Algorithm 1, §4.1).
package summary

import (
	"errors"
	"fmt"
)

// KeySize is the size in bytes of a sortable invSAX key. 128 bits cover the
// paper's default configuration (16 segments × 8 bits) and everything
// smaller.
const KeySize = 16

// KeyBits is the number of usable bits in a Key.
const KeyBits = KeySize * 8

// Params configures a summarization scheme. The defaults mirror the paper's
// evaluation: series of length 256, 16 segments, cardinality 256 (8 bits
// per segment).
type Params struct {
	// SeriesLen is the number of points per data series (n).
	SeriesLen int
	// Segments is the number of PAA/SAX segments (w).
	Segments int
	// CardBits is the number of bits per SAX symbol; the alphabet
	// cardinality is 1 << CardBits.
	CardBits int
}

// DefaultParams returns the paper's configuration.
func DefaultParams(seriesLen int) Params {
	return Params{SeriesLen: seriesLen, Segments: 16, CardBits: 8}
}

// Cardinality returns the SAX alphabet size.
func (p Params) Cardinality() int { return 1 << p.CardBits }

// Validate checks that the configuration is supported.
func (p Params) Validate() error {
	switch {
	case p.SeriesLen <= 0:
		return errors.New("summary: series length must be positive")
	case p.Segments <= 0:
		return errors.New("summary: segment count must be positive")
	case p.Segments > p.SeriesLen:
		return fmt.Errorf("summary: %d segments exceed series length %d", p.Segments, p.SeriesLen)
	case p.CardBits <= 0 || p.CardBits > 8:
		return errors.New("summary: cardinality bits must be in [1,8]")
	case p.Segments*p.CardBits > KeyBits:
		return fmt.Errorf("summary: %d segments x %d bits exceed the %d-bit key", p.Segments, p.CardBits, KeyBits)
	}
	return nil
}
