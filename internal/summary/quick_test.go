package summary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coconut-db/coconut/internal/series"
)

// TestQuickMinDistLowerBoundsAcrossConfigs sweeps random summarization
// configurations and verifies the fundamental contract on each: for any
// pair of series, MINDIST never exceeds the true Euclidean distance, at
// full cardinality and at every coarser prefix.
func TestQuickMinDistLowerBoundsAcrossConfigs(t *testing.T) {
	f := func(seed int64, wRaw, bRaw, nRaw uint8) bool {
		w := int(wRaw%16) + 1
		b := int(bRaw%8) + 1
		n := w * (int(nRaw%8) + 1) // length a multiple of segments
		if w*b > KeyBits {
			w = KeyBits / b
			if w == 0 {
				return true
			}
			n = w * (int(nRaw%8) + 1)
		}
		s, err := NewSummarizer(Params{SeriesLen: n, Segments: w, CardBits: b})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		mk := func() series.Series {
			out := make(series.Series, n)
			v := 0.0
			for i := range out {
				v += rng.NormFloat64()
				out[i] = v
			}
			return out.ZNormalize()
		}
		for trial := 0; trial < 10; trial++ {
			q, x := mk(), mk()
			qPAA, err := s.PAA(q, nil)
			if err != nil {
				return false
			}
			xSAX, err := s.SAXOf(x)
			if err != nil {
				return false
			}
			ed, _ := series.ED(q, x)
			if s.MinDistPAAToSAX(qPAA, xSAX) > ed+1e-9 {
				return false
			}
			// Every prefix coarsening weakens (never strengthens) the bound.
			prev := s.MinDistPAAToSAX(qPAA, xSAX)
			bits := make([]uint8, w)
			for pb := b - 1; pb >= 1; pb-- {
				for j := range bits {
					bits[j] = uint8(pb)
				}
				cur := s.MinDistPAAToPrefix(qPAA, xSAX, bits)
				if cur > prev+1e-9 {
					return false
				}
				prev = cur
			}
			// Interleave/deinterleave stays invertible in this config.
			k := Interleave(xSAX, b)
			back := Deinterleave(k, w, b)
			for j := range xSAX {
				if xSAX[j] != back[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickZOrderEqualsKeyOrder: for any configuration, comparing keys
// bytewise must equal comparing the interleaved bit strings — i.e., Key
// comparison is exactly z-order, independent of segment count or symbol
// width.
func TestQuickZOrderEqualsKeyOrder(t *testing.T) {
	f := func(seed int64, wRaw, bRaw uint8) bool {
		w := int(wRaw%16) + 1
		b := int(bRaw%8) + 1
		if w*b > KeyBits {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		mkSAX := func() SAX {
			out := make(SAX, w)
			for j := range out {
				out[j] = uint8(rng.Intn(1 << b))
			}
			return out
		}
		bitString := func(sax SAX) string {
			// Interleaved bits, MSB first, as a comparable string of '0'/'1'.
			s := make([]byte, 0, w*b)
			for i := b - 1; i >= 0; i-- {
				for j := 0; j < w; j++ {
					s = append(s, '0'+(sax[j]>>uint(i))&1)
				}
			}
			return string(s)
		}
		for trial := 0; trial < 20; trial++ {
			a, c := mkSAX(), mkSAX()
			ka, kc := Interleave(a, b), Interleave(c, b)
			wantLess := bitString(a) < bitString(c)
			if ka.Less(kc) != wantLess {
				return false
			}
			if (ka.Compare(kc) == 0) != (bitString(a) == bitString(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSymbolRegionDuality: Symbol and Region are inverse views — a
// value always lies in the region of its own symbol, and any value placed
// strictly inside a symbol's region maps back to that symbol.
func TestQuickSymbolRegionDuality(t *testing.T) {
	f := func(seed int64, bRaw uint8) bool {
		b := int(bRaw%8) + 1
		s, err := NewSummarizer(Params{SeriesLen: 8, Segments: 4, CardBits: b})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			v := rng.NormFloat64() * 3
			sym := s.Symbol(v)
			lo, hi := s.Region(sym, b)
			if v < lo || v > hi {
				return false
			}
			// Midpoint of a bounded region maps back to the symbol.
			if lo > -1e300 && hi < 1e300 {
				mid := (lo + hi) / 2
				if s.Symbol(mid) != sym {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
