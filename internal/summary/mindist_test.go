package summary

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coconut-db/coconut/internal/series"
)

// randomConfig derives a valid Params from fuzz bytes, sweeping Segments ×
// CardBits like the existing quick tests.
func randomConfig(wRaw, bRaw, nRaw uint8) (Params, bool) {
	w := int(wRaw%16) + 1
	b := int(bRaw%8) + 1
	if w*b > KeyBits {
		w = KeyBits / b
		if w == 0 {
			return Params{}, false
		}
	}
	n := w * (int(nRaw%8) + 1)
	return Params{SeriesLen: n, Segments: w, CardBits: b}, true
}

// TestQuickMinDistTableEqualsKernels is the table/kernel equivalence
// property: across random summarization configurations, queries, and
// candidates, every MinDistTable evaluation path (Key, Word, Prefix) must
// equal the corresponding direct squared kernel to EXACT float64 equality —
// both sum the identical per-segment terms in segment order — and the sqrt
// kernels must be exactly the square roots of the squared ones.
func TestQuickMinDistTableEqualsKernels(t *testing.T) {
	f := func(seed int64, wRaw, bRaw, nRaw uint8) bool {
		p, ok := randomConfig(wRaw, bRaw, nRaw)
		if !ok {
			return true
		}
		s, err := NewSummarizer(p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		mk := func() series.Series {
			out := make(series.Series, p.SeriesLen)
			v := 0.0
			for i := range out {
				v += rng.NormFloat64()
				out[i] = v
			}
			return out.ZNormalize()
		}
		q := mk()
		qPAA, err := s.PAA(q, nil)
		if err != nil {
			return false
		}
		tbl := s.BuildMinDistTable(qPAA, nil)
		bits := make([]uint8, p.Segments)
		for trial := 0; trial < 10; trial++ {
			xSAX, err := s.SAXOf(mk())
			if err != nil {
				return false
			}
			want := s.MinDistSqPAAToSAX(qPAA, xSAX)
			if tbl.Word(xSAX) != want {
				return false
			}
			if tbl.Key(Interleave(xSAX, p.CardBits)) != want {
				return false
			}
			if tbl.Prefix(xSAX, nil) != want {
				return false
			}
			if s.MinDistPAAToSAX(qPAA, xSAX) != math.Sqrt(want) {
				return false
			}
			// Random per-segment prefix lengths, including 0 (whole axis).
			for j := range bits {
				bits[j] = uint8(rng.Intn(p.CardBits + 1))
			}
			wantPre := s.MinDistSqPAAToPrefix(qPAA, xSAX, bits)
			if tbl.Prefix(xSAX, bits) != wantPre {
				return false
			}
			if s.MinDistPAAToPrefix(qPAA, xSAX, bits) != math.Sqrt(wantPre) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMinDistsToKeysMatchesKernel checks the batch entry point on both
// sides of the table/fallback threshold and across worker counts: every
// element must exactly equal the direct squared kernel on the decoded key.
func TestMinDistsToKeysMatchesKernel(t *testing.T) {
	s, err := NewSummarizer(Params{SeriesLen: 96, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	mk := func() series.Series {
		out := make(series.Series, 96)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out.ZNormalize()
	}
	qPAA, err := s.PAA(mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 7 keys stays under the table threshold (2·Cardinality = 512) and
	// exercises the scratch fallback; 2000 exercises the table path.
	for _, n := range []int{7, 2000} {
		keys := make([]Key, n)
		for i := range keys {
			sax, err := s.SAXOf(mk())
			if err != nil {
				t.Fatal(err)
			}
			keys[i] = s.KeyFromSAX(sax)
		}
		want := make([]float64, n)
		for i, k := range keys {
			want[i] = s.MinDistSqPAAToSAX(qPAA, s.SAXFromKey(k))
		}
		for _, workers := range []int{1, 2, 7, 64} {
			got := s.MinDistsToKeys(qPAA, keys, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d key %d: %v != kernel %v", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMinDistTableReuse checks that rebuilding into an existing table for a
// new query fully overwrites the previous query's entries.
func TestMinDistTableReuse(t *testing.T) {
	s, err := NewSummarizer(Params{SeriesLen: 64, Segments: 8, CardBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	mk := func() series.Series {
		out := make(series.Series, 64)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out.ZNormalize()
	}
	q1, _ := s.PAA(mk(), nil)
	q2, _ := s.PAA(mk(), nil)
	tbl := s.BuildMinDistTable(q1, nil)
	tbl = s.BuildMinDistTable(q2, tbl) // reuse
	fresh := s.BuildMinDistTable(q2, nil)
	for trial := 0; trial < 20; trial++ {
		sax, err := s.SAXOf(mk())
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Word(sax) != fresh.Word(sax) {
			t.Fatalf("reused table disagrees with fresh build: %v != %v", tbl.Word(sax), fresh.Word(sax))
		}
	}
}

// TestDeinterleaveIntoMatchesDeinterleave pins the scratch decoder against
// the allocating one, including scratch reuse across differing keys.
func TestDeinterleaveIntoMatchesDeinterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scratch := make(SAX, 16)
	for trial := 0; trial < 100; trial++ {
		sax := make(SAX, 16)
		for j := range sax {
			sax[j] = uint8(rng.Intn(256))
		}
		k := Interleave(sax, 8)
		want := Deinterleave(k, 16, 8)
		got := DeinterleaveInto(k, 8, scratch)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d segment %d: %d != %d", trial, j, got[j], want[j])
			}
		}
	}
}
