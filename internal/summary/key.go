package summary

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
)

// Key is a sortable invSAX summarization: the bits of all SAX symbols
// interleaved so that every more-significant bit (across all segments)
// precedes every less-significant bit. Lexicographic byte order on Key is
// exactly z-order (Morton order) on the SAX space, which keeps similar
// series adjacent when sorted — the property that unlocks bottom-up bulk
// loading (§4.1, Figure 4).
//
// Bits are packed MSB-first, so bytes.Compare gives z-order directly.
// Configurations using fewer than 128 bits leave the trailing bits zero;
// comparisons remain correct because every key has the same layout.
type Key [KeySize]byte

// Compare returns -1, 0, or 1 like bytes.Compare.
func (k Key) Compare(o Key) int { return bytes.Compare(k[:], o[:]) }

// Less reports whether k sorts before o.
func (k Key) Less(o Key) bool { return k.Compare(o) < 0 }

// String returns the key as hex, for debugging.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hi64 returns the most significant 64 bits of the key. Useful for quick
// bucketing and tests.
func (k Key) Hi64() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Interleave builds the sortable summarization from a SAX word
// (Algorithm 1, invertSum): for each bit position i from most to least
// significant, for each segment j in series order, emit bit i of sax[j].
func Interleave(sax SAX, cardBits int) Key {
	var k Key
	out := 0 // bit cursor into k, MSB-first
	for i := cardBits - 1; i >= 0; i-- {
		for j := 0; j < len(sax); j++ {
			bit := (sax[j] >> uint(i)) & 1
			if bit != 0 {
				k[out>>3] |= 1 << uint(7-out&7)
			}
			out++
		}
	}
	return k
}

// Deinterleave inverts Interleave, recovering the SAX word from a key.
// Sortable summarizations contain the same information as the original
// (§4.1) — this is the "easy and efficient to switch back and forth"
// direction, used to preserve pruning power during queries.
func Deinterleave(k Key, segments, cardBits int) SAX {
	return DeinterleaveInto(k, cardBits, make(SAX, segments))
}

// DeinterleaveInto is Deinterleave into a caller-provided word of the
// desired segment count, for loops that decode many keys: reusing one
// scratch word makes per-key decoding allocation-free. dst is zeroed,
// filled, and returned.
func DeinterleaveInto(k Key, cardBits int, dst SAX) SAX {
	for j := range dst {
		dst[j] = 0
	}
	in := 0
	for i := cardBits - 1; i >= 0; i-- {
		for j := 0; j < len(dst); j++ {
			bit := (k[in>>3] >> uint(7-in&7)) & 1
			if bit != 0 {
				dst[j] |= 1 << uint(i)
			}
			in++
		}
	}
	return dst
}

// CommonPrefixBits returns the number of leading interleaved bits shared by
// a and b, considering only the first totalBits bits (segments × cardBits).
// Two series agreeing on many leading z-order bits agree on the high bits
// of every segment — the locality property Coconut-Trie's prefix grouping
// exploits.
func CommonPrefixBits(a, b Key, totalBits int) int {
	for i := 0; i < totalBits; i++ {
		byteIdx, bitIdx := i>>3, uint(7-i&7)
		if (a[byteIdx]>>bitIdx)&1 != (b[byteIdx]>>bitIdx)&1 {
			return i
		}
	}
	return totalBits
}
