package summary

import (
	"runtime"
	"sync"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
)

// KeyScratch holds the reusable PAA and SAX buffers for repeated key
// computation on one goroutine. The zero value is ready to use; buffers are
// allocated on first use and reused afterwards, so a long-lived scratch
// makes per-series key computation allocation-free.
type KeyScratch struct {
	paa []float64
	sax SAX
}

// KeyOfScratch computes the sortable invSAX key of ser like KeyOf, reusing
// sc's buffers. sc must not be shared between goroutines.
func (s *Summarizer) KeyOfScratch(ser series.Series, sc *KeyScratch) (Key, error) {
	var err error
	if sc.paa, err = s.PAA(ser, sc.paa); err != nil {
		return Key{}, err
	}
	sc.sax = s.SAXFromPAA(sc.paa, sc.sax)
	return Interleave(sc.sax, s.p.CardBits), nil
}

// KeysOf computes the invSAX key of every series in batch, splitting the
// batch across workers goroutines (workers <= 0 means runtime.NumCPU()).
// Results are ordered like batch, so the output is identical for any worker
// count. Concurrent use is safe because the Summarizer is immutable; each
// worker reuses its own KeyScratch, so the per-series cost is
// allocation-free.
func (s *Summarizer) KeysOf(batch []series.Series, workers int) ([]Key, error) {
	keys := make([]Key, len(batch))
	if len(batch) == 0 {
		return keys, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	chunk := (len(batch) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var sc KeyScratch
			for i := lo; i < hi; i++ {
				var err error
				if keys[i], err = s.KeyOfScratch(batch[i], &sc); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// MinDistsToKeys computes MinDistPAAToSAX(qPAA, key) for every key,
// splitting the array across workers goroutines (workers <= 0 means
// runtime.GOMAXPROCS(0), and the count is clamped to len(keys) rather than
// degenerating to a single worker). This is the lower-bound phase of SIMS
// exact search (Algorithm 5, line 10). Each element is computed
// independently, so the output is identical for any worker count.
func (s *Summarizer) MinDistsToKeys(qPAA []float64, keys []Key, workers int) []float64 {
	out := make([]float64, len(keys))
	if len(keys) == 0 {
		return out
	}
	ranges := shard.Split(len(keys), workers)
	if len(ranges) == 1 {
		s.minDistsRange(qPAA, keys, out, ranges[0])
		return out
	}
	var wg sync.WaitGroup
	for _, r := range ranges {
		wg.Add(1)
		go func(r shard.Range) {
			defer wg.Done()
			s.minDistsRange(qPAA, keys, out, r)
		}(r)
	}
	wg.Wait()
	return out
}

func (s *Summarizer) minDistsRange(qPAA []float64, keys []Key, out []float64, r shard.Range) {
	for i := r.Lo; i < r.Hi; i++ {
		sax := Deinterleave(keys[i], s.p.Segments, s.p.CardBits)
		out[i] = s.MinDistPAAToSAX(qPAA, sax)
	}
}
