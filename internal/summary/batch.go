package summary

import (
	"runtime"
	"sync"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
)

// KeyScratch holds the reusable PAA and SAX buffers for repeated key
// computation on one goroutine. The zero value is ready to use; buffers are
// allocated on first use and reused afterwards, so a long-lived scratch
// makes per-series key computation allocation-free.
type KeyScratch struct {
	paa []float64
	sax SAX
}

// KeyOfScratch computes the sortable invSAX key of ser like KeyOf, reusing
// sc's buffers. sc must not be shared between goroutines.
func (s *Summarizer) KeyOfScratch(ser series.Series, sc *KeyScratch) (Key, error) {
	var err error
	if sc.paa, err = s.PAA(ser, sc.paa); err != nil {
		return Key{}, err
	}
	sc.sax = s.SAXFromPAA(sc.paa, sc.sax)
	return Interleave(sc.sax, s.p.CardBits), nil
}

// KeysOf computes the invSAX key of every series in batch, splitting the
// batch across workers goroutines (workers <= 0 means runtime.NumCPU()).
// Results are ordered like batch, so the output is identical for any worker
// count. Concurrent use is safe because the Summarizer is immutable; each
// worker reuses its own KeyScratch, so the per-series cost is
// allocation-free.
func (s *Summarizer) KeysOf(batch []series.Series, workers int) ([]Key, error) {
	keys := make([]Key, len(batch))
	if len(batch) == 0 {
		return keys, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	chunk := (len(batch) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var sc KeyScratch
			for i := lo; i < hi; i++ {
				var err error
				if keys[i], err = s.KeyOfScratch(batch[i], &sc); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// MinDistsToKeys computes the SQUARED lower bound MinDistSqPAAToSAX(qPAA,
// key) for every key, splitting the array across workers goroutines
// (workers <= 0 means runtime.GOMAXPROCS(0), and the count is clamped to
// len(keys) rather than degenerating to a single worker). This is the
// lower-bound phase of SIMS exact search (Algorithm 5, line 10); callers
// prune by comparing against a squared best-so-far. Each element is
// computed independently, so the output is identical for any worker count.
//
// Large arrays go through a per-query MinDistTable: O(Segments ·
// Cardinality) setup, then each key is Segments table lookups straight off
// the interleaved bits — no per-key allocation, region recomputation, or
// sqrt. Arrays too small to amortize the table build fall back to the
// direct kernel over a per-shard scratch word, which is allocation-free
// per key as well.
func (s *Summarizer) MinDistsToKeys(qPAA []float64, keys []Key, workers int) []float64 {
	out := make([]float64, len(keys))
	if len(keys) == 0 {
		return out
	}
	// The table build computes ~2·Cardinality region terms per segment,
	// while the fallback computes Segments terms per key — so the build
	// amortizes once the array holds around 2·Cardinality keys (each saved
	// term costs about what a term computed at build time costs; the
	// per-key decode work is comparable on both paths).
	if len(keys) >= 2*s.p.Cardinality() {
		tbl := s.BuildMinDistTable(qPAA, nil)
		tbl.KeysInto(keys, out, workers)
		return out
	}
	ranges := shard.Split(len(keys), workers)
	if len(ranges) == 1 {
		s.minDistsRange(qPAA, keys, out, ranges[0])
		return out
	}
	var wg sync.WaitGroup
	for _, r := range ranges {
		wg.Add(1)
		go func(r shard.Range) {
			defer wg.Done()
			s.minDistsRange(qPAA, keys, out, r)
		}(r)
	}
	wg.Wait()
	return out
}

// minDistsRange is the table-free fallback path: decode each key into a
// reused scratch word and apply the direct squared kernel. One scratch per
// shard keeps the per-key cost allocation-free.
func (s *Summarizer) minDistsRange(qPAA []float64, keys []Key, out []float64, r shard.Range) {
	scratch := make(SAX, s.p.Segments)
	for i := r.Lo; i < r.Hi; i++ {
		sax := DeinterleaveInto(keys[i], s.p.CardBits, scratch)
		out[i] = s.MinDistSqPAAToSAX(qPAA, sax)
	}
}

// KeysInto fills out[i] with the squared lower bound for keys[i], sharding
// across workers goroutines. The table is read-only, so one table serves
// all shards — and, at the caller's level, all runs of a multi-run index.
// out must have at least len(keys) entries.
func (t *MinDistTable) KeysInto(keys []Key, out []float64, workers int) {
	if len(keys) == 0 {
		return
	}
	if shard.Resolve(workers, len(keys)) == 1 {
		// Serial fast path: no range slice, no goroutine — the whole pass is
		// allocation-free.
		t.keysRange(keys, out, shard.Range{Lo: 0, Hi: len(keys)})
		return
	}
	ranges := shard.Split(len(keys), workers)
	var wg sync.WaitGroup
	for _, r := range ranges {
		wg.Add(1)
		go func(r shard.Range) {
			defer wg.Done()
			t.keysRange(keys, out, r)
		}(r)
	}
	wg.Wait()
}

func (t *MinDistTable) keysRange(keys []Key, out []float64, r shard.Range) {
	for i := r.Lo; i < r.Hi; i++ {
		out[i] = t.Key(keys[i])
	}
}
