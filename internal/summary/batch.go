package summary

import (
	"runtime"
	"sync"

	"github.com/coconut-db/coconut/internal/series"
)

// KeysOf computes the invSAX key of every series in batch, splitting the
// batch across workers goroutines (workers <= 0 means runtime.NumCPU()).
// Results are ordered like batch, so the output is identical for any worker
// count. Concurrent use is safe because the Summarizer is immutable; each
// worker reuses its own PAA and SAX scratch buffers, so the per-series cost
// is allocation-free.
func (s *Summarizer) KeysOf(batch []series.Series, workers int) ([]Key, error) {
	keys := make([]Key, len(batch))
	if len(batch) == 0 {
		return keys, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	chunk := (len(batch) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			paa := make([]float64, s.p.Segments)
			sax := make(SAX, s.p.Segments)
			for i := lo; i < hi; i++ {
				var err error
				if paa, err = s.PAA(batch[i], paa); err != nil {
					errs[w] = err
					return
				}
				sax = s.SAXFromPAA(paa, sax)
				keys[i] = Interleave(sax, s.p.CardBits)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return keys, nil
}
