// Package shard provides the fan-out machinery for sharded query
// execution: a contiguous range of work items (leaves, candidate
// positions, LSM runs) is partitioned across a bounded worker pool, the
// shards share a monotonically tightening best-so-far bound, and a failure
// in any shard cancels its siblings.
//
// The helpers are written so that sharded scans stay DETERMINISTIC: the
// shared bound is only used for strict-inequality pruning (a candidate
// whose lower bound exactly ties the published bound is still verified),
// and results are reduced in shard order, so the answer of a sharded scan
// is byte-identical to the serial scan for any worker count.
package shard

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve turns a requested worker count into an effective one for n work
// items: requested <= 0 means runtime.GOMAXPROCS(0), and the result is
// clamped to [1, n] (never degenerating to 1 merely because workers > n).
func Resolve(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Range is one contiguous shard [Lo, Hi) of a scan.
type Range struct{ Lo, Hi int }

// Split partitions [0, n) into at most workers near-equal contiguous
// ranges. Empty ranges are omitted, so every returned range is non-empty.
func Split(n, workers int) []Range {
	workers = Resolve(workers, n)
	if n == 0 {
		return nil
	}
	chunk := (n + workers - 1) / workers
	out := make([]Range, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, Range{Lo: lo, Hi: hi})
	}
	return out
}

// PerGroup splits a requested worker budget across `groups` concurrent
// groups (e.g. LSM runs probed in parallel), returning the per-group
// fan-out: at least 1, and requested <= 0 means runtime.GOMAXPROCS(0).
func PerGroup(requested, groups int) int {
	total := requested
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if groups < 1 {
		groups = 1
	}
	per := total / groups
	if per < 1 {
		per = 1
	}
	return per
}

// Outcome is one shard's contribution to a sharded verification scan: the
// first strict improvement it found over the seed bound (Pos = -1 when
// none) plus its visit counters. ScanReduce seeds and collects these;
// scan bodies only ever update the Outcome they are handed.
type Outcome struct {
	Pos            int64
	Dist           float64
	VisitedRecords int64
	VisitedLeaves  int64
}

// Reduce folds shard outcomes IN SHARD ORDER into the seed answer. Shards
// cover contiguous ascending ranges of the serial scan order and each kept
// the first strict improvement it saw, so folding with the same strict
// comparison reproduces the serial scan's answer exactly — this is the
// single copy of the determinism contract every sharded scan relies on.
// Every entry of outs must have been seeded (a zero-value Outcome reads as
// a real answer at position 0); ScanReduce guarantees that by seeding each
// shard's slot before running its body, even for shards cancelled before
// doing any work.
func Reduce(seedPos int64, seedDist float64, outs []Outcome) (int64, float64, int64, int64) {
	pos, dist := seedPos, seedDist
	var vr, vl int64
	for _, o := range outs {
		vr += o.VisitedRecords
		vl += o.VisitedLeaves
		if o.Pos >= 0 && o.Dist < dist {
			dist, pos = o.Dist, o.Pos
		}
	}
	return pos, dist, vr, vl
}

// BSF is a shared best-so-far distance bound, safe for concurrent use. It
// only ever decreases. The zero value is unusable; call Init first.
type BSF struct {
	bits atomic.Uint64
}

// Init sets the starting bound (typically the approximate-search answer).
func (b *BSF) Init(d float64) { b.bits.Store(math.Float64bits(d)) }

// Load returns the current bound.
func (b *BSF) Load() float64 { return math.Float64frombits(b.bits.Load()) }

// Lower publishes d if it improves (strictly lowers) the current bound.
// Distances are non-negative, so their IEEE-754 bit patterns order like the
// values themselves and a CAS loop suffices.
func (b *BSF) Lower(d float64) {
	new := math.Float64bits(d)
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= d {
			return
		}
		if b.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Prunes reports whether a candidate with lower bound lb can be skipped
// based on the shared bound. The comparison is STRICT (lb > bound, not >=):
// a candidate that exactly ties the bound published by a sibling shard is
// still verified, which is what keeps sharded scans deterministic when true
// distance ties occur (e.g. duplicate series).
func (b *BSF) Prunes(lb float64) bool { return lb > b.Load() }

// Scan runs fn over the shards of [0, n) on up to workers goroutines. fn
// receives its shard index, the range, and a cancelled predicate it must
// poll between work items; when any shard returns an error, the remaining
// shards observe cancelled() == true and should return promptly.
//
// Scan joins every goroutine before returning (no leaks, even on error)
// and returns the error of the lowest-indexed failing shard, so the
// surfaced error is deterministic.
func Scan(workers, n int, fn func(shard int, r Range, cancelled func() bool) error) error {
	return scanRanges(Split(n, workers), fn)
}

func scanRanges(ranges []Range, fn func(shard int, r Range, cancelled func() bool) error) error {
	if len(ranges) == 0 {
		return nil
	}
	if len(ranges) == 1 {
		return fn(0, ranges[0], func() bool { return false })
	}
	var stop atomic.Bool
	cancelled := func() bool { return stop.Load() }
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r Range) {
			defer wg.Done()
			if err := fn(i, r, cancelled); err != nil {
				errs[i] = err
				stop.Store(true)
			}
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ScanReduce is the complete sharded-verification-scan harness: it splits
// [0, n) across workers, seeds one Outcome per shard with {Pos: -1, Dist:
// seedDist}, hands fn a pointer to its shard's outcome, and reduces the
// outcomes in shard order onto the seed answer — so call sites cannot
// forget the seeding, the store, or the in-order reduce that the
// determinism contract depends on. The reduced answer and summed visit
// counters are returned even when fn failed (partial counters, seed
// answer preserved), alongside the lowest-indexed shard's error.
func ScanReduce(workers, n int, seedPos int64, seedDist float64,
	fn func(r Range, local *Outcome, cancelled func() bool) error,
) (pos int64, dist float64, visitedRecords, visitedLeaves int64, err error) {
	ranges := Split(n, workers)
	outs := make([]Outcome, len(ranges))
	err = scanRanges(ranges, func(i int, r Range, cancelled func() bool) error {
		outs[i] = Outcome{Pos: -1, Dist: seedDist}
		return fn(r, &outs[i], cancelled)
	})
	pos, dist, visitedRecords, visitedLeaves = Reduce(seedPos, seedDist, outs)
	return pos, dist, visitedRecords, visitedLeaves, err
}
