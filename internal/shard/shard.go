// Package shard provides the fan-out machinery for sharded query
// execution: a contiguous range of work items (leaves, candidate
// positions, LSM runs) is partitioned across a bounded worker pool, the
// shards share a monotonically tightening best-so-far bound, and a failure
// in any shard cancels its siblings.
//
// The helpers are written so that sharded scans stay DETERMINISTIC: the
// shared bound is only used for strict-inequality pruning (a candidate
// whose lower bound exactly ties the published bound is still verified),
// and results are reduced in shard order, so the answer of a sharded scan
// is byte-identical to the serial scan for any worker count.
package shard

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Resolve turns a requested worker count into an effective one for n work
// items: requested <= 0 means runtime.GOMAXPROCS(0), and the result is
// clamped to [1, n] (never degenerating to 1 merely because workers > n).
func Resolve(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Range is one contiguous shard [Lo, Hi) of a scan.
type Range struct{ Lo, Hi int }

// Split partitions [0, n) into at most workers near-equal contiguous
// ranges. Empty ranges are omitted, so every returned range is non-empty.
func Split(n, workers int) []Range {
	workers = Resolve(workers, n)
	if n == 0 {
		return nil
	}
	chunk := (n + workers - 1) / workers
	out := make([]Range, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, Range{Lo: lo, Hi: hi})
	}
	return out
}

// PerGroup splits a requested worker budget across `groups` concurrent
// groups (e.g. LSM runs probed in parallel), returning the per-group
// fan-out: at least 1, and requested <= 0 means runtime.GOMAXPROCS(0).
func PerGroup(requested, groups int) int {
	total := requested
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if groups < 1 {
		groups = 1
	}
	per := total / groups
	if per < 1 {
		per = 1
	}
	return per
}

// Outcome is one shard's contribution to a sharded verification scan: the
// first strict improvement it found over the seed bound (Pos = -1 when
// none) plus its visit counters. ScanReduce seeds and collects these;
// scan bodies only ever update the Outcome they are handed.
type Outcome struct {
	Pos            int64
	Dist           float64
	VisitedRecords int64
	VisitedLeaves  int64
}

// Reduce folds shard outcomes IN SHARD ORDER into the seed answer. Shards
// cover contiguous ascending ranges of the serial scan order and each kept
// the first strict improvement it saw, so folding with the same strict
// comparison reproduces the serial scan's answer exactly — this is the
// single copy of the determinism contract every sharded scan relies on.
// Every entry of outs must have been seeded (a zero-value Outcome reads as
// a real answer at position 0); ScanReduce guarantees that by seeding each
// shard's slot before running its body, even for shards cancelled before
// doing any work.
func Reduce(seedPos int64, seedDist float64, outs []Outcome) (int64, float64, int64, int64) {
	pos, dist := seedPos, seedDist
	var vr, vl int64
	for _, o := range outs {
		vr += o.VisitedRecords
		vl += o.VisitedLeaves
		if o.Pos >= 0 && o.Dist < dist {
			dist, pos = o.Dist, o.Pos
		}
	}
	return pos, dist, vr, vl
}

// BSF is a shared best-so-far distance bound, safe for concurrent use. It
// only ever decreases. The zero value is unusable; call Init first.
type BSF struct {
	bits atomic.Uint64
}

// Init sets the starting bound (typically the approximate-search answer).
func (b *BSF) Init(d float64) { b.bits.Store(math.Float64bits(d)) }

// Load returns the current bound.
func (b *BSF) Load() float64 { return math.Float64frombits(b.bits.Load()) }

// Lower publishes d if it improves (strictly lowers) the current bound.
// Distances are non-negative, so their IEEE-754 bit patterns order like the
// values themselves and a CAS loop suffices.
func (b *BSF) Lower(d float64) {
	new := math.Float64bits(d)
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= d {
			return
		}
		if b.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Prunes reports whether a candidate with lower bound lb can be skipped
// based on the shared bound. The comparison is STRICT (lb > bound, not >=):
// a candidate that exactly ties the bound published by a sibling shard is
// still verified, which is what keeps sharded scans deterministic when true
// distance ties occur (e.g. duplicate series).
func (b *BSF) Prunes(lb float64) bool { return lb > b.Load() }

// Scan runs fn over the shards of [0, n) on up to workers goroutines. fn
// receives its shard index, the range, and a cancelled predicate it must
// poll between work items; when any shard returns an error, the remaining
// shards observe cancelled() == true and should return promptly.
//
// Scan joins every goroutine before returning (no leaks, even on error)
// and returns the error of the lowest-indexed failing shard, so the
// surfaced error is deterministic.
func Scan(workers, n int, fn func(shard int, r Range, cancelled func() bool) error) error {
	return scanRanges(context.Background(), Split(n, workers), fn)
}

// ScanCtx is Scan observing ctx: the cancelled predicate trips as soon as
// ctx is done, and the call returns ctx.Err() promptly even if a shard is
// stuck inside a blocking operation (the stuck goroutine is abandoned and
// exits when its operation returns — callers must not reuse buffers they
// handed to fn after a ctx error). When ScanCtx returns a ctx error, the
// scan's side effects may be partial; callers must discard them.
func ScanCtx(ctx context.Context, workers, n int, fn func(shard int, r Range, cancelled func() bool) error) error {
	return scanRanges(ctx, Split(n, workers), fn)
}

func scanRanges(ctx context.Context, ranges []Range, fn func(shard int, r Range, cancelled func() bool) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(ranges) == 0 {
		return nil
	}
	done := ctx.Done()
	if len(ranges) == 1 && done == nil {
		return fn(0, ranges[0], func() bool { return false })
	}
	var stop atomic.Bool
	cancelled := func() bool { return stop.Load() || ctx.Err() != nil }
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r Range) {
			defer wg.Done()
			if err := fn(i, r, cancelled); err != nil {
				errs[i] = err
				stop.Store(true)
			}
		}(i, r)
	}
	if done == nil {
		wg.Wait()
	} else {
		// Wait for the shards, but detach if ctx fires first: a shard
		// blocked in a stalled read must not hold the query hostage. The
		// detached goroutines exit when their blocking operation returns;
		// their writes land in slots nobody reads after a ctx error.
		finished := make(chan struct{})
		go func() {
			wg.Wait()
			close(finished)
		}()
		select {
		case <-finished:
		case <-done:
			return ctx.Err()
		}
	}
	// A shard may have observed cancellation and skipped work items, so a
	// done ctx always wins over a "complete" scan: never a partial answer
	// dressed up as a full one.
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// FanOut runs fn(i) once for every group i in [0, n) on up to workers
// goroutines. Unlike Scan, which splits one contiguous range into shards,
// each group here is an independent unit of work — a partition of a
// partitioned index, an LSM run, a figure variant — dispatched from a
// shared counter so finished workers steal the next group instead of
// idling. fn must poll cancelled between expensive steps; when any group
// fails, unstarted groups are skipped, every goroutine is joined, and the
// error of the lowest-numbered failing group is returned (deterministic,
// like Scan).
func FanOut(workers, n int, fn func(group int, cancelled func() bool) error) error {
	return FanOutCtx(context.Background(), workers, n, fn)
}

// FanOutCtx is FanOut observing ctx, with the same detach-on-cancel and
// never-partial semantics as ScanCtx: once ctx is done the call returns
// ctx.Err() even if a group is stuck in a blocking operation, and a done
// ctx always wins over an apparently complete fan-out.
func FanOutCtx(ctx context.Context, workers, n int, fn func(group int, cancelled func() bool) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers, n)
	done := ctx.Done()
	if workers == 1 && done == nil {
		for i := 0; i < n; i++ {
			if err := fn(i, func() bool { return false }); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
		cancelled = func() bool { return stop.Load() || ctx.Err() != nil }
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cancelled() {
					return
				}
				if err := fn(i, cancelled); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	if done == nil {
		wg.Wait()
	} else {
		finished := make(chan struct{})
		go func() {
			wg.Wait()
			close(finished)
		}()
		select {
		case <-finished:
		case <-done:
			return ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Neighbor is one k-NN answer candidate: a record position and its
// distance (squared or rooted — the heap is agnostic, it only compares).
type Neighbor struct {
	Pos  int64
	Dist float64
}

// NeighborLess is the total order every k-NN path ranks by: distance
// first, position as the tie-break. Because it is total, the k smallest
// neighbors of a multiset are unique, which is what makes sharded and
// partitioned k-NN merges byte-identical to the serial scan.
func NeighborLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Pos < b.Pos
}

// KNNHeap is the single shared implementation of the bounded k-nearest
// max-heap: it retains the k smallest neighbors offered so far under
// NeighborLess, deduplicating by position (the same record can be offered
// by the approximate seed, several shards, or several partitions). All
// k-NN mergers — per-shard locals, the cross-shard reduce, and the
// cross-partition gather — go through this one type, so the merge
// semantics cannot drift apart.
type KNNHeap struct {
	items []Neighbor
	k     int
	seen  map[int64]bool
}

// NewKNNHeap returns an empty heap retaining the k best neighbors.
func NewKNNHeap(k int) *KNNHeap {
	return &KNNHeap{k: k, seen: make(map[int64]bool, k)}
}

func (h *KNNHeap) Len() int { return len(h.items) }

// Less orders the heap as a MAX-heap on NeighborLess, so the root is the
// current k-th best and Pop evicts the worst retained neighbor.
func (h *KNNHeap) Less(i, j int) bool { return NeighborLess(h.items[j], h.items[i]) }

func (h *KNNHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

// Push and Pop implement heap.Interface; use Offer, not these.
func (h *KNNHeap) Push(x any) { h.items = append(h.items, x.(Neighbor)) }
func (h *KNNHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Bound returns the current k-th-best distance: +Inf until the heap holds
// k neighbors, then the root. A candidate can only enter the heap by
// strictly beating Bound under NeighborLess.
func (h *KNNHeap) Bound() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// Offer inserts n if it belongs in the current top-k. Re-offers of an
// already-retained position are ignored. Returns true when the heap
// changed.
func (h *KNNHeap) Offer(n Neighbor) bool {
	if h.seen[n.Pos] {
		return false
	}
	if len(h.items) < h.k {
		h.seen[n.Pos] = true
		heap.Push(h, n)
		return true
	}
	if !NeighborLess(n, h.items[0]) {
		return false
	}
	delete(h.seen, h.items[0].Pos)
	h.seen[n.Pos] = true
	h.items[0] = n
	heap.Fix(h, 0)
	return true
}

// Items returns the retained neighbors in heap order (NOT sorted); use it
// to re-offer one heap's contents into another during a merge.
func (h *KNNHeap) Items() []Neighbor { return h.items }

// Sorted returns the retained neighbors ranked best-first under
// NeighborLess.
func (h *KNNHeap) Sorted() []Neighbor {
	out := make([]Neighbor, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool { return NeighborLess(out[i], out[j]) })
	return out
}

// ScanReduce is the complete sharded-verification-scan harness: it splits
// [0, n) across workers, seeds one Outcome per shard with {Pos: -1, Dist:
// seedDist}, hands fn a pointer to its shard's outcome, and reduces the
// outcomes in shard order onto the seed answer — so call sites cannot
// forget the seeding, the store, or the in-order reduce that the
// determinism contract depends on. The reduced answer and summed visit
// counters are returned even when fn failed (partial counters, seed
// answer preserved), alongside the lowest-indexed shard's error.
func ScanReduce(workers, n int, seedPos int64, seedDist float64,
	fn func(r Range, local *Outcome, cancelled func() bool) error,
) (pos int64, dist float64, visitedRecords, visitedLeaves int64, err error) {
	return ScanReduceCtx(context.Background(), workers, n, seedPos, seedDist, fn)
}

// ScanReduceCtx is ScanReduce observing ctx. On a ctx error the outcomes
// are never read (detached shards may still be writing them) and the seed
// answer is returned untouched with zero counters — the caller sees
// ctx.Err() and must discard the result.
func ScanReduceCtx(ctx context.Context, workers, n int, seedPos int64, seedDist float64,
	fn func(r Range, local *Outcome, cancelled func() bool) error,
) (pos int64, dist float64, visitedRecords, visitedLeaves int64, err error) {
	ranges := Split(n, workers)
	outs := make([]Outcome, len(ranges))
	err = scanRanges(ctx, ranges, func(i int, r Range, cancelled func() bool) error {
		outs[i] = Outcome{Pos: -1, Dist: seedDist}
		return fn(r, &outs[i], cancelled)
	})
	if cerr := ctx.Err(); cerr != nil {
		return seedPos, seedDist, 0, 0, cerr
	}
	pos, dist, visitedRecords, visitedLeaves = Reduce(seedPos, seedDist, outs)
	return pos, dist, visitedRecords, visitedLeaves, err
}
