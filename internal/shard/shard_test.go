package shard

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct{ req, n, want int }{
		{0, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3}, // clamps to n, not to 1
		{1, 0, 1}, // never below 1
		{-1, 5, minInt(runtime.GOMAXPROCS(0), 5)},
	}
	for _, c := range cases {
		if got := Resolve(c.req, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.req, c.n, got, c.want)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSplitCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 101} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			rs := Split(n, w)
			next := 0
			for _, r := range rs {
				if r.Lo != next || r.Hi <= r.Lo {
					t.Fatalf("Split(%d,%d): bad range %+v at %d", n, w, r, next)
				}
				next = r.Hi
			}
			if next != n {
				t.Fatalf("Split(%d,%d) covers [0,%d)", n, w, next)
			}
		}
	}
}

func TestBSFOnlyLowers(t *testing.T) {
	var b BSF
	b.Init(math.Inf(1))
	b.Lower(5)
	b.Lower(7) // ignored
	if got := b.Load(); got != 5 {
		t.Fatalf("bound = %v, want 5", got)
	}
	if b.Prunes(5) {
		t.Fatal("exact tie must not prune (determinism)")
	}
	if !b.Prunes(5.0000001) {
		t.Fatal("strictly above the bound must prune")
	}
}

func TestBSFConcurrentMin(t *testing.T) {
	var b BSF
	b.Init(math.Inf(1))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 1000; j > i; j-- {
				b.Lower(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := b.Load(); got != 1 {
		t.Fatalf("concurrent min = %v, want 1", got)
	}
}

func TestScanCancelsSiblingsAndReportsLowestShard(t *testing.T) {
	boomA := errors.New("shard a failed")
	boomB := errors.New("shard b failed")
	err := Scan(4, 400, func(shard int, r Range, cancelled func() bool) error {
		switch shard {
		case 1:
			return boomB
		case 0:
			return boomA
		default:
			for i := r.Lo; i < r.Hi; i++ {
				if cancelled() {
					return nil
				}
			}
			return nil
		}
	})
	if !errors.Is(err, boomA) {
		t.Fatalf("want lowest-shard error %v, got %v", boomA, err)
	}
}

func TestScanVisitsEverything(t *testing.T) {
	const n = 1000
	seen := make([]bool, n)
	err := Scan(8, n, func(shard int, r Range, cancelled func() bool) error {
		for i := r.Lo; i < r.Hi; i++ {
			seen[i] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("item %d never scanned", i)
		}
	}
}
