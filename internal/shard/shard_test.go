package shard

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	cases := []struct{ req, n, want int }{
		{0, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3}, // clamps to n, not to 1
		{1, 0, 1}, // never below 1
		{-1, 5, minInt(runtime.GOMAXPROCS(0), 5)},
	}
	for _, c := range cases {
		if got := Resolve(c.req, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.req, c.n, got, c.want)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSplitCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 101} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			rs := Split(n, w)
			next := 0
			for _, r := range rs {
				if r.Lo != next || r.Hi <= r.Lo {
					t.Fatalf("Split(%d,%d): bad range %+v at %d", n, w, r, next)
				}
				next = r.Hi
			}
			if next != n {
				t.Fatalf("Split(%d,%d) covers [0,%d)", n, w, next)
			}
		}
	}
}

func TestBSFOnlyLowers(t *testing.T) {
	var b BSF
	b.Init(math.Inf(1))
	b.Lower(5)
	b.Lower(7) // ignored
	if got := b.Load(); got != 5 {
		t.Fatalf("bound = %v, want 5", got)
	}
	if b.Prunes(5) {
		t.Fatal("exact tie must not prune (determinism)")
	}
	if !b.Prunes(5.0000001) {
		t.Fatal("strictly above the bound must prune")
	}
}

func TestBSFConcurrentMin(t *testing.T) {
	var b BSF
	b.Init(math.Inf(1))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 1000; j > i; j-- {
				b.Lower(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := b.Load(); got != 1 {
		t.Fatalf("concurrent min = %v, want 1", got)
	}
}

func TestScanCancelsSiblingsAndReportsLowestShard(t *testing.T) {
	boomA := errors.New("shard a failed")
	boomB := errors.New("shard b failed")
	err := Scan(4, 400, func(shard int, r Range, cancelled func() bool) error {
		switch shard {
		case 1:
			return boomB
		case 0:
			return boomA
		default:
			for i := r.Lo; i < r.Hi; i++ {
				if cancelled() {
					return nil
				}
			}
			return nil
		}
	})
	if !errors.Is(err, boomA) {
		t.Fatalf("want lowest-shard error %v, got %v", boomA, err)
	}
}

func TestScanVisitsEverything(t *testing.T) {
	const n = 1000
	seen := make([]bool, n)
	err := Scan(8, n, func(shard int, r Range, cancelled func() bool) error {
		for i := r.Lo; i < r.Hi; i++ {
			seen[i] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("item %d never scanned", i)
		}
	}
}

// TestCtxPreCancelled: an already-done context returns its error
// immediately from every ctx-taking entry point — the work function is
// never invoked.
func TestCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var called atomic.Int64
	if err := ScanCtx(ctx, 4, 100, func(int, Range, func() bool) error {
		called.Add(1)
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanCtx: got %v, want context.Canceled", err)
	}
	if err := FanOutCtx(ctx, 4, 100, func(int, func() bool) error {
		called.Add(1)
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("FanOutCtx: got %v, want context.Canceled", err)
	}
	pos, dist, _, _, err := ScanReduceCtx(ctx, 4, 100, 7, 3.5,
		func(r Range, local *Outcome, cancelled func() bool) error {
			called.Add(1)
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanReduceCtx: got %v, want context.Canceled", err)
	}
	if pos != 7 || dist != 3.5 {
		t.Fatalf("ScanReduceCtx after cancel returned (%d, %v), want untouched seed (7, 3.5)", pos, dist)
	}
	if n := called.Load(); n != 0 {
		t.Fatalf("work function ran %d times under a pre-cancelled ctx", n)
	}
}

// TestScanCtxMidFlightCancel: a cancel while one shard is stuck in a
// blocking operation returns ctx.Err() promptly (the stuck goroutine is
// detached, not waited for) and the remaining shards stop taking work.
func TestScanCtxMidFlightCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan struct{})
	release := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- ScanCtx(ctx, 4, 4, func(i int, r Range, cancelled func() bool) error {
			if i == 0 {
				close(blocked)
				<-release // a stalled read the ctx cannot interrupt
			}
			return nil
		})
	}()
	<-blocked
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ScanCtx did not return promptly after cancel; it waited for the stuck shard")
	}
	close(release) // let the detached goroutine drain
}

// TestFanOutCtxMidFlightCancelStopsWork: once ctx is done, workers stop
// picking up groups — a 1000-group fan-out cancelled at the first group
// must leave most groups unvisited.
func TestFanOutCtxMidFlightCancelStopsWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	first := make(chan struct{})
	var once sync.Once
	err := FanOutCtx(ctx, 2, 1000, func(i int, cancelled func() bool) error {
		started.Add(1)
		once.Do(func() {
			close(first)
			cancel()
		})
		<-first // after the first group, every group sees a done ctx
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Workers poll cancelled() before dispatching each group, so at most
	// one more group per worker can slip in after the cancel.
	if n := started.Load(); n > 4 {
		t.Fatalf("%d groups ran after a cancel at the first; want the workers to stop", n)
	}
}

// TestCtxCancelStressNoLeaks: hammer cancel/timeout cycles through the
// sharded entry points under -race and assert the goroutine count returns
// to baseline — detached shards must all drain.
func TestCtxCancelStressNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for iter := 0; iter < 500; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // race the cancel against the scan
		ScanCtx(ctx, 4, 64, func(i int, r Range, cancelled func() bool) error {
			return nil
		})
		cancel()
		ctx2, cancel2 := context.WithTimeout(context.Background(), time.Duration(iter%3)*time.Microsecond)
		FanOutCtx(ctx2, 4, 64, func(i int, cancelled func() bool) error {
			return nil
		})
		cancel2()
	}
	// Detached goroutines exit as their (non-blocking) work returns; give
	// them a moment before comparing counts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
