package extsort

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/coconut-db/coconut/internal/storage"
)

// doubleTransform is a trivial record transform for the tests: each 4-byte
// input record becomes an 8-byte output record holding (input, ordinal).
func doubleTransform(_ int, in, out []byte, base int64) error {
	n := len(in) / 4
	for i := 0; i < n; i++ {
		copy(out[i*8:], in[i*4:(i+1)*4])
		ord := base + int64(i)
		for b := 0; b < 4; b++ {
			out[i*8+4+b] = byte(ord >> (8 * b))
		}
	}
	return nil
}

func pipelineInput(n int) []byte {
	in := make([]byte, n*4)
	for i := range in {
		in[i] = byte(i * 31)
	}
	return in
}

// TestTransformReaderOrderAndDeterminism: the transformed stream must be
// byte-identical for any worker count and block size, including inputs that
// do not fill the final block.
func TestTransformReaderOrderAndDeterminism(t *testing.T) {
	const n = 10007 // prime: final block is partial for any block size
	in := pipelineInput(n)
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		for _, block := range []int{0, 1, 7, 4096} {
			tr, err := NewTransformReader(TransformConfig{
				In:            bytes.NewReader(in),
				InRecordSize:  4,
				OutRecordSize: 8,
				Workers:       workers,
				BlockRecords:  block,
				Transform:     doubleTransform,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(tr)
			tr.Close()
			if err != nil {
				t.Fatalf("workers=%d block=%d: %v", workers, block, err)
			}
			if len(got) != n*8 {
				t.Fatalf("workers=%d block=%d: %d bytes, want %d", workers, block, len(got), n*8)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("workers=%d block=%d: output differs from reference", workers, block)
			}
		}
	}
}

// TestTransformReaderErrors: transform failures and misaligned input must
// surface on Read (sticky), and Close must release the goroutines even when
// the consumer abandons the stream mid-way.
func TestTransformReaderErrors(t *testing.T) {
	boom := errors.New("boom")
	tr, err := NewTransformReader(TransformConfig{
		In:            bytes.NewReader(pipelineInput(1000)),
		InRecordSize:  4,
		OutRecordSize: 8,
		Workers:       4,
		BlockRecords:  16,
		Transform: func(_ int, in, out []byte, base int64) error {
			if base >= 256 {
				return boom
			}
			return doubleTransform(0, in, out, base)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(tr); !errors.Is(err, boom) {
		t.Fatalf("transform error not surfaced: %v", err)
	}
	if _, err := tr.Read(make([]byte, 8)); !errors.Is(err, boom) {
		t.Fatalf("error not sticky: %v", err)
	}
	tr.Close()

	// Misaligned input (not a multiple of the record size).
	tr, err = NewTransformReader(TransformConfig{
		In:            bytes.NewReader(make([]byte, 10)),
		InRecordSize:  4,
		OutRecordSize: 8,
		Workers:       2,
		Transform:     doubleTransform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(tr); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("misaligned input not surfaced: %v", err)
	}
	tr.Close()

	// Abandon mid-stream: Close must not deadlock with blocks in flight.
	tr, err = NewTransformReader(TransformConfig{
		In:            bytes.NewReader(pipelineInput(100000)),
		InRecordSize:  4,
		OutRecordSize: 8,
		Workers:       4,
		BlockRecords:  64,
		Transform:     doubleTransform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(tr, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close() // idempotent
}

// TestTransformReaderFeedsSort: the pipeline is the input stage of the
// external sort; the sorted output must match sorting the same records from
// a plain reader.
func TestTransformReaderFeedsSort(t *testing.T) {
	const n = 5000
	in := pipelineInput(n)
	plain := make([]byte, 0, n*8)
	{
		buf := make([]byte, n*8)
		if err := doubleTransform(0, in, buf, 0); err != nil {
			t.Fatal(err)
		}
		plain = append(plain, buf...)
	}
	sortOut := func(src io.Reader, name string, fsOut map[string][]byte) {
		t.Helper()
		fs := storage.NewMemFS()
		cfg := Config{
			FS:         fs,
			RecordSize: 8,
			Compare:    CompareKeyPrefix(4),
			MemBudget:  4 << 10,
			Workers:    3,
		}
		total, err := Sort(cfg, src, name)
		if err != nil {
			t.Fatal(err)
		}
		if total != n {
			t.Fatalf("sorted %d records, want %d", total, n)
		}
		out, err := storage.ReadFileAll(fs, name)
		if err != nil {
			t.Fatal(err)
		}
		fsOut[name] = out
	}
	got := map[string][]byte{}
	tr, err := NewTransformReader(TransformConfig{
		In:            bytes.NewReader(in),
		InRecordSize:  4,
		OutRecordSize: 8,
		Workers:       4,
		BlockRecords:  33,
		Transform:     doubleTransform,
	})
	if err != nil {
		t.Fatal(err)
	}
	sortOut(tr, "piped", got)
	tr.Close()
	sortOut(bytes.NewReader(plain), "plain", got)
	if !bytes.Equal(got["piped"], got["plain"]) {
		t.Fatal("sort over the pipeline differs from sort over the plain stream")
	}
}

// TestTransformReaderValidation covers the config error paths.
func TestTransformReaderValidation(t *testing.T) {
	cases := []TransformConfig{
		{InRecordSize: 4, OutRecordSize: 8, Transform: doubleTransform},
		{In: bytes.NewReader(nil), OutRecordSize: 8, Transform: doubleTransform},
		{In: bytes.NewReader(nil), InRecordSize: 4, Transform: doubleTransform},
		{In: bytes.NewReader(nil), InRecordSize: 4, OutRecordSize: 8},
	}
	for i, cfg := range cases {
		if _, err := NewTransformReader(cfg); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if _, err := NewTransformReader(TransformConfig{}); err == nil {
		t.Fatal("empty config must fail")
	}
}
