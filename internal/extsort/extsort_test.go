package extsort

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/coconut-db/coconut/internal/storage"
)

const recSize = 16

// makeRecords builds n random 16-byte records with an 8-byte big-endian key
// and an 8-byte payload.
func makeRecords(rng *rand.Rand, n int) []byte {
	out := make([]byte, n*recSize)
	rng.Read(out)
	return out
}

func sortCfg(fs storage.FS, budget int64) Config {
	return Config{
		FS:         fs,
		RecordSize: recSize,
		Compare:    CompareKeyPrefix(8),
		MemBudget:  budget,
		BufSize:    64,
	}
}

// multisetHash returns an order-independent fingerprint of the records.
func multisetHash(data []byte) [32]byte {
	var acc [32]byte
	for i := 0; i+recSize <= len(data); i += recSize {
		h := sha256.Sum256(data[i : i+recSize])
		for j := range acc {
			acc[j] += h[j]
		}
	}
	return acc
}

func checkSorted(t *testing.T, data []byte, cmp Compare) {
	t.Helper()
	for i := recSize; i+recSize <= len(data); i += recSize {
		if cmp(data[i-recSize:i], data[i:i+recSize]) > 0 {
			t.Fatalf("records %d and %d out of order", i/recSize-1, i/recSize)
		}
	}
}

func TestSortSmallInMemoryPath(t *testing.T) {
	fs := storage.NewMemFS()
	rng := rand.New(rand.NewSource(1))
	in := makeRecords(rng, 10)
	n, err := Sort(sortCfg(fs, 1<<20), bytes.NewReader(in), "out")
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("sorted %d records, want 10", n)
	}
	out, err := storage.ReadFileAll(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, out, CompareKeyPrefix(8))
	if multisetHash(in) != multisetHash(out) {
		t.Fatal("output is not a permutation of input")
	}
}

func TestSortManyRunsAndMultiPassMerge(t *testing.T) {
	fs := storage.NewMemFS()
	rng := rand.New(rand.NewSource(2))
	const n = 5000
	in := makeRecords(rng, n)
	// Tiny budget: 64-record runs, fan-in limited by 64-byte buffers.
	cfg := sortCfg(fs, 64*recSize)
	got, err := Sort(cfg, bytes.NewReader(in), "out")
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("sorted %d records, want %d", got, n)
	}
	out, err := storage.ReadFileAll(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("output %d bytes, want %d", len(out), len(in))
	}
	checkSorted(t, out, cfg.Compare)
	if multisetHash(in) != multisetHash(out) {
		t.Fatal("output is not a permutation of input")
	}
	// Temp files must be cleaned up.
	if fs.Exists("extsort.run.0") || fs.Exists("extsort.merge.0.0") {
		t.Fatal("temporary files left behind")
	}
}

func TestSortEmptyInput(t *testing.T) {
	fs := storage.NewMemFS()
	n, err := Sort(sortCfg(fs, 1024), bytes.NewReader(nil), "out")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("sorted %d records, want 0", n)
	}
	out, err := storage.ReadFileAll(fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("expected empty output file")
	}
}

func TestSortPropertyBased(t *testing.T) {
	f := func(seed int64, nSmall uint16, budgetFactor uint8) bool {
		n := int(nSmall%600) + 1
		budget := int64(recSize) * int64(budgetFactor%50+4)
		fs := storage.NewMemFS()
		rng := rand.New(rand.NewSource(seed))
		in := makeRecords(rng, n)
		got, err := Sort(sortCfg(fs, budget), bytes.NewReader(in), "out")
		if err != nil || got != int64(n) {
			return false
		}
		out, err := storage.ReadFileAll(fs, "out")
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := recSize; i+recSize <= len(out); i += recSize {
			if bytes.Compare(out[i-recSize : i][:8], out[i : i+recSize][:8]) > 0 {
				return false
			}
		}
		return multisetHash(in) == multisetHash(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortMatchesStdlibSort(t *testing.T) {
	fs := storage.NewMemFS()
	rng := rand.New(rand.NewSource(5))
	const n = 1000
	in := makeRecords(rng, n)

	want := make([]byte, len(in))
	copy(want, in)
	// Reference: stdlib sort of record slices (by the full record so the
	// expected output is unique even with duplicate keys).
	refCmp := func(a, b []byte) int { return bytes.Compare(a, b) }
	recs := make([][]byte, n)
	for i := 0; i < n; i++ {
		recs[i] = want[i*recSize : (i+1)*recSize]
	}
	sort.SliceStable(recs, func(i, j int) bool { return bytes.Compare(recs[i], recs[j]) < 0 })
	ref := make([]byte, 0, len(in))
	for _, r := range recs {
		ref = append(ref, r...)
	}

	cfg := sortCfg(fs, 128*recSize)
	cfg.Compare = refCmp
	if _, err := Sort(cfg, bytes.NewReader(in), "out"); err != nil {
		t.Fatal(err)
	}
	out, _ := storage.ReadFileAll(fs, "out")
	if !bytes.Equal(out, ref) {
		t.Fatal("external sort output differs from stdlib reference")
	}
}

func TestSortIOIsSequential(t *testing.T) {
	fs := storage.NewMemFS()
	rng := rand.New(rand.NewSource(6))
	const n = 4000
	in := makeRecords(rng, n)
	cfg := sortCfg(fs, 256*recSize)
	cfg.BufSize = 1024
	// Pin one worker: this test measures the per-stream I/O pattern of the
	// core algorithm, and the seek budget below assumes the single-worker
	// run/merge plan (more workers mean more, shorter streams).
	cfg.Workers = 1
	if _, err := Sort(cfg, bytes.NewReader(in), "out"); err != nil {
		t.Fatal(err)
	}
	snap := fs.Stats().Snapshot()
	// External sort is the sequential-I/O workhorse: seeks happen once per
	// opened stream (runs × merge passes), never per record. With 4000
	// records, anything near O(N) seeks would indicate a broken pattern.
	if snap.Seeks() > int64(n/10) {
		t.Fatalf("too many seeks for an external sort: %+v", snap)
	}
	if snap.SeqWrites == 0 || snap.SeqReads == 0 {
		t.Fatalf("expected sequential traffic: %+v", snap)
	}
}

func TestSortFaultPropagates(t *testing.T) {
	fs := storage.NewMemFS()
	boom := io.ErrClosedPipe
	var writes int
	fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
		if op == storage.OpWrite {
			writes++
			if writes > 3 {
				return boom
			}
		}
		return nil
	})
	rng := rand.New(rand.NewSource(7))
	in := makeRecords(rng, 3000)
	if _, err := Sort(sortCfg(fs, 64*recSize), bytes.NewReader(in), "out"); err == nil {
		t.Fatal("expected injected fault to propagate")
	}
}

// TestSortDeterministicAcrossWorkers: the acceptance bar for the parallel
// pipeline is byte-identical output for any worker count, including with
// heavy comparator ties (records sharing a key prefix but differing in the
// payload), so chunk boundaries and merge grouping must not show through.
func TestSortDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 3000
	in := makeRecords(rng, n)
	// Collapse keys onto 16 values to force many comparator ties.
	for i := 0; i < n; i++ {
		copy(in[i*recSize:], []byte{0, 0, 0, 0, 0, 0, 0, byte(rng.Intn(16))})
	}
	var ref []byte
	for _, workers := range []int{1, 2, 3, 8} {
		fs := storage.NewMemFS()
		cfg := sortCfg(fs, 64*recSize) // tiny budget: many runs, multi-pass merge
		cfg.Workers = workers
		got, err := Sort(cfg, bytes.NewReader(in), "out")
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != n {
			t.Fatalf("workers=%d: sorted %d records, want %d", workers, got, n)
		}
		out, err := storage.ReadFileAll(fs, "out")
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, out, cfg.Compare)
		if multisetHash(in) != multisetHash(out) {
			t.Fatalf("workers=%d: output is not a permutation of input", workers)
		}
		if ref == nil {
			ref = out
		} else if !bytes.Equal(ref, out) {
			t.Fatalf("workers=%d: output differs from workers=1 output", workers)
		}
	}
}

// TestSortCleansTemporariesOnFault is the regression test for the mergeAll
// leak: intermediate .merge.<gen>.<i> files produced before a later merge
// in the same generation failed used to survive the error. After a failed
// Sort nothing may remain on the device — no runs, no merge intermediates,
// no partial output (the input lives outside the FS).
func TestSortCleansTemporariesOnFault(t *testing.T) {
	boom := errors.New("injected device failure")
	rng := rand.New(rand.NewSource(10))
	in := makeRecords(rng, 3000)
	for _, workers := range []int{1, 4} {
		// The write counts sweep every phase: run formation, each merge
		// generation (the small budget forces several), and the final merge.
		for _, failAt := range []int{1, 5, 20, 50, 120, 200, 400} {
			fs := storage.NewMemFS()
			var writes atomic.Int64
			fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
				if op == storage.OpWrite && writes.Add(1) == int64(failAt) {
					return boom
				}
				return nil
			})
			cfg := sortCfg(fs, 64*recSize)
			cfg.Workers = workers
			_, err := Sort(cfg, bytes.NewReader(in), "out")
			if writes.Load() < int64(failAt) {
				if err != nil {
					t.Fatalf("workers=%d failAt=%d: fault never fired yet sort failed: %v", workers, failAt, err)
				}
				continue // sort finished before the Nth write
			}
			if err == nil {
				t.Fatalf("workers=%d failAt=%d: fault consumed but Sort reported success", workers, failAt)
			}
			if !errors.Is(err, boom) {
				t.Fatalf("workers=%d failAt=%d: error lost its cause: %v", workers, failAt, err)
			}
			if got := fs.TotalSize(); got != 0 {
				t.Fatalf("workers=%d failAt=%d: %d bytes of temporaries leaked after failed Sort", workers, failAt, got)
			}
		}
	}
}

// TestSortFailurePreservesExistingOutput: a failed Sort must not delete a
// pre-existing file at outName that the failing invocation never wrote —
// e.g. a retry over a previous good result that dies during run formation.
func TestSortFailurePreservesExistingOutput(t *testing.T) {
	fs := storage.NewMemFS()
	prev := []byte("previous good result")
	if err := storage.WriteFileAll(fs, "out", prev); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected device failure")
	rng := rand.New(rand.NewSource(12))
	in := makeRecords(rng, 500)
	faults := []storage.FaultFn{
		// Die during run formation: outName is never touched.
		func(op storage.Op, name string, off int64, n int) error {
			if op == storage.OpCreate && name != "out" {
				return boom
			}
			return nil
		},
		// Die on the final pass's own Create of outName: everything before
		// succeeded, but the output was still never truncated.
		func(op storage.Op, name string, off int64, n int) error {
			if op == storage.OpCreate && name == "out" {
				return boom
			}
			return nil
		},
	}
	for i, fault := range faults {
		fs.SetFault(fault)
		if _, err := Sort(sortCfg(fs, 64*recSize), bytes.NewReader(in), "out"); !errors.Is(err, boom) {
			t.Fatalf("fault %d: expected injected fault, got %v", i, err)
		}
		fs.SetFault(nil)
		got, err := storage.ReadFileAll(fs, "out")
		if err != nil {
			t.Fatalf("fault %d: pre-existing output deleted by failed Sort: %v", i, err)
		}
		if !bytes.Equal(got, prev) {
			t.Fatalf("fault %d: pre-existing output modified by failed Sort", i)
		}
	}
}

// TestMergeKeepsInputs: Merge must leave the caller's runs untouched (LSM
// compaction owns its run files and deletes them only after the swap).
func TestMergeKeepsInputs(t *testing.T) {
	fs := storage.NewMemFS()
	rng := rand.New(rand.NewSource(11))
	cfg := sortCfg(fs, 1<<20)
	var all []byte
	names := []string{"runA", "runB", "runC"}
	for _, name := range names {
		data := makeRecords(rng, 100)
		SortInMemory(data, recSize, cfg.Compare)
		if err := storage.WriteFileAll(fs, name, data); err != nil {
			t.Fatal(err)
		}
		all = append(all, data...)
	}
	// A tiny budget (final fan-in 2 < three runs) forces the multi-pass path
	// so intermediates are created (and must be cleaned up) even in the
	// keep-inputs mode.
	cfg.MemBudget = 3 * int64(cfg.BufSize)
	cfg.TempPrefix = "cm"
	if err := Merge(cfg, names, "merged"); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !fs.Exists(name) {
			t.Fatalf("Merge deleted input run %q", name)
		}
	}
	out, err := storage.ReadFileAll(fs, "merged")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(all) {
		t.Fatalf("merged %d bytes, want %d", len(out), len(all))
	}
	checkSorted(t, out, cfg.Compare)
	if multisetHash(all) != multisetHash(out) {
		t.Fatal("merged output is not a permutation of the input runs")
	}
	if fs.Exists("cm.merge.0.0") || fs.Exists("cm.merge.0.1") {
		t.Fatal("Merge left intermediate files behind")
	}
}

func TestSortInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := makeRecords(rng, 300)
	SortInMemory(data, recSize, CompareKeyPrefix(8))
	checkSorted(t, data, CompareKeyPrefix(8))
}

func TestRecordReader(t *testing.T) {
	fs := storage.NewMemFS()
	var data []byte
	for i := 0; i < 10; i++ {
		rec := make([]byte, recSize)
		binary.BigEndian.PutUint64(rec, uint64(i))
		data = append(data, rec...)
	}
	if err := storage.WriteFileAll(fs, "recs", data); err != nil {
		t.Fatal(err)
	}
	rr, err := OpenRecords(fs, "recs", recSize, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	for i := 0; i < 10; i++ {
		rec, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(rec); got != uint64(i) {
			t.Fatalf("record %d has key %d", i, got)
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestValidate(t *testing.T) {
	if _, err := Sort(Config{}, bytes.NewReader(nil), "out"); err == nil {
		t.Fatal("expected validation error for zero config")
	}
	fs := storage.NewMemFS()
	if _, err := Sort(Config{FS: fs, RecordSize: 8}, bytes.NewReader(nil), "out"); err == nil {
		t.Fatal("expected validation error for nil comparator")
	}
}
