// Package extsort implements external sorting of fixed-size records under
// an explicit memory budget: the partitioning phase scans the input in
// memory-sized chunks, sorts each chunk, and flushes it as a sorted run;
// the merging phase merge-sorts the runs with a tournament over buffered
// sequential readers (§3.1 of the paper, "Bottom-up Bulk-Loading Using
// External Sorting").
//
// Both phases are parallel: a reader goroutine hands fixed-size chunks to a
// pool of Workers that sort and flush runs concurrently, and the independent
// merges of each intermediate generation run concurrently. The memory budget
// M is partitioned across the pipeline (Workers+1 chunk buffers during run
// formation, per-merge buffer groups during merging), so the paper's memory
// model stays honest at any worker count. The sorted output
// is byte-identical for any worker count: comparator ties are broken on the
// full record encoding, which makes the result a pure function of the input
// multiset, independent of chunk boundaries and merge grouping.
//
// Every byte moved goes through the storage VFS, so the paper's O(N/B)
// sequential-I/O claim is directly observable in the I/O statistics.
package extsort

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/storage"
)

// Compare orders two records. It must be a strict weak ordering over the
// full record encoding.
type Compare func(a, b []byte) int

// CompareKeyPrefix returns a Compare that orders records by their first n
// bytes (the layout used for invSAX records, whose keys sort bytewise).
func CompareKeyPrefix(n int) Compare {
	return func(a, b []byte) int { return bytes.Compare(a[:n], b[:n]) }
}

// Config parameterizes a sort.
type Config struct {
	// FS hosts the temporary runs and the output file.
	FS storage.FS
	// RecordSize is the fixed encoded size of each record, in bytes.
	RecordSize int
	// Compare orders records.
	Compare Compare
	// MemBudget is the maximum number of record bytes held in memory at
	// once; it controls run length and merge fan-in. This is the paper's M.
	MemBudget int64
	// TempPrefix names temporary run files (default "extsort").
	TempPrefix string
	// BufSize is the per-stream I/O buffer size (default 256 KiB).
	BufSize int
	// Workers is the number of goroutines used for run formation and for
	// the concurrent merges of each intermediate generation (default
	// runtime.NumCPU()). MemBudget is partitioned across workers; the
	// output is byte-identical for any value.
	Workers int
	// Tee, when non-nil, is called for every record of the final sorted
	// output, in output order, as it is written. The callback runs on the
	// single goroutine performing the last pass and must not retain rec.
	// It lets callers capture the sorted stream (e.g. LSM compaction
	// building its in-memory key array) without a second read pass.
	Tee func(rec []byte)
	// WrapOut, when non-nil, wraps the final output file handle right
	// after creation and before any bytes are written — the hook the LSM
	// uses to give run files a checksummed physical layout. It applies
	// only to outName: temporary runs and intermediate merge generations
	// are written through unwrapped handles and deleted before Sort or
	// Merge returns. The wrapper's Close is called in place of the inner
	// file's.
	WrapOut func(storage.File) (storage.File, error)
	// WrapIn, when non-nil, wraps the handle of each ORIGINAL input run
	// named in a Merge call right after open — the read-side counterpart
	// of WrapOut for inputs stored in a checksummed physical layout.
	// Intermediate files extsort itself wrote are opened unwrapped. Sort
	// ignores it (Sort's inputs come from a reader, not run files).
	WrapIn func(storage.File) (storage.File, error)
}

func (c *Config) validate() error {
	switch {
	case c.FS == nil:
		return errors.New("extsort: nil FS")
	case c.RecordSize <= 0:
		return errors.New("extsort: record size must be positive")
	case c.Compare == nil:
		return errors.New("extsort: nil comparator")
	}
	if c.MemBudget < int64(c.RecordSize)*4 {
		c.MemBudget = int64(c.RecordSize) * 4
	}
	if c.TempPrefix == "" {
		c.TempPrefix = "extsort"
	}
	if c.BufSize <= 0 {
		c.BufSize = 256 << 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	return nil
}

// totalOrder refines cmp with a full-record tie-break. Sorting under a total
// order makes the output a pure function of the input multiset — the same
// bytes regardless of how records were chunked into runs or how runs were
// grouped into merges, and therefore regardless of Workers.
func totalOrder(cmp Compare) Compare {
	return func(a, b []byte) int {
		if c := cmp(a, b); c != 0 {
			return c
		}
		return bytes.Compare(a, b)
	}
}

// Sort consumes all records from in, sorts them, and writes the sorted
// stream to outName on cfg.FS. It returns the number of records sorted.
// Records comparing equal under cfg.Compare are ordered by their full
// encoding, so the output is deterministic for any cfg.Workers.
func Sort(cfg Config, in io.Reader, outName string) (int64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	cfg.Compare = totalOrder(cfg.Compare)
	cfg.WrapIn = nil // Sort's run files are its own, never pre-checksummed
	runs, total, err := makeRuns(cfg, in)
	if err != nil {
		cleanup(cfg.FS, runs)
		return 0, err
	}
	if err := mergeAll(cfg, runs, outName, true); err != nil {
		return 0, err
	}
	return total, nil
}

// Merge merge-sorts the already-sorted run files named by runs into outName
// without modifying or removing them. It shares Sort's merge machinery —
// multi-pass generations, Workers-way parallelism, partitioned memory
// budget — and cleans up every intermediate file it creates on both success
// and error. LSM compaction uses it to fold tiers.
//
// The output is sorted under cfg.Compare and byte-identical for any
// Workers: the merge heap refines comparator ties on full record bytes,
// and greedy min-head merging under a total order is associative, so the
// result does not depend on how the multi-pass grouping splits the runs.
func Merge(cfg Config, runs []string, outName string) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	cfg.Compare = totalOrder(cfg.Compare)
	return mergeAll(cfg, runs, outName, false)
}

// SortInMemory sorts records (a concatenation of fixed-size records) in
// place. It is the building block of the run-formation phase and is exposed
// for callers whose data always fits in memory (e.g. sorting summaries for
// a non-materialized index when M is ample).
func SortInMemory(records []byte, recordSize int, cmp Compare) {
	n := len(records) / recordSize
	sort.Sort(&recordSlice{data: records, size: recordSize, n: n, cmp: cmp,
		swapBuf: make([]byte, recordSize)})
}

type recordSlice struct {
	data    []byte
	size, n int
	cmp     Compare
	swapBuf []byte
}

func (r *recordSlice) Len() int { return r.n }
func (r *recordSlice) Less(i, j int) bool {
	return r.cmp(r.data[i*r.size:(i+1)*r.size], r.data[j*r.size:(j+1)*r.size]) < 0
}
func (r *recordSlice) Swap(i, j int) {
	a := r.data[i*r.size : (i+1)*r.size]
	b := r.data[j*r.size : (j+1)*r.size]
	copy(r.swapBuf, a)
	copy(a, b)
	copy(b, r.swapBuf)
}

// makeRuns performs the partitioning phase: a single reader goroutine (the
// caller) cuts the input into chunks of MemBudget/Workers bytes and hands
// them to a pool of workers that sort and flush each chunk as a run file.
// Run names are assigned by chunk index, so the set of runs produced is
// deterministic for a given Workers. On error it returns every run name
// that may exist so the caller can clean up.
func makeRuns(cfg Config, in io.Reader) (runs []string, total int64, err error) {
	if cfg.Workers == 1 {
		return makeRunsSerial(cfg, in)
	}
	// Resident memory during parallel run formation is Workers+1 chunk
	// buffers (Workers in flight plus the one the reader is filling) plus
	// one run-writer buffer per worker — all of it comes out of MemBudget.
	// Writer buffers take at most half the budget, shrinking below BufSize
	// when Workers is large relative to it.
	writerBuf := cfg.BufSize
	if max := int(cfg.MemBudget / int64(2*cfg.Workers)); writerBuf > max {
		writerBuf = max
	}
	if writerBuf < cfg.RecordSize {
		writerBuf = cfg.RecordSize
	}
	chunkBytes := (cfg.MemBudget - int64(cfg.Workers*writerBuf)) / int64(cfg.Workers+1)
	if min := int64(cfg.RecordSize) * 4; chunkBytes < min {
		chunkBytes = min
	}
	chunkLen := int(chunkBytes/int64(cfg.RecordSize)) * cfg.RecordSize

	runName := func(i int) string { return fmt.Sprintf("%s.run.%d", cfg.TempPrefix, i) }

	type job struct {
		idx  int
		data []byte
	}
	var (
		jobs     = make(chan job)
		free     = make(chan []byte, cfg.Workers+1)
		fail     = make(chan struct{})
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	setErr := func(e error) {
		errOnce.Do(func() { firstErr = e; close(fail) })
	}
	for i := 0; i < cfg.Workers+1; i++ {
		free <- make([]byte, 0, chunkLen)
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				select {
				case <-fail:
					// A sibling already failed; just recycle the buffer.
				default:
					if e := writeRun(cfg, runName(j.idx), j.data, writerBuf); e != nil {
						setErr(e)
					}
				}
				free <- j.data[:0]
			}
		}()
	}

	nRuns := 0
reading:
	for {
		select {
		case <-fail:
			break reading
		default:
		}
		buf := (<-free)[:chunkLen]
		n, rerr := io.ReadFull(in, buf)
		if n > 0 {
			if n%cfg.RecordSize != 0 {
				setErr(fmt.Errorf("extsort: reading input: %w", io.ErrUnexpectedEOF))
				break
			}
			jobs <- job{idx: nRuns, data: buf[:n]}
			nRuns++
			total += int64(n / cfg.RecordSize)
		}
		switch rerr {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			break reading
		default:
			setErr(fmt.Errorf("extsort: reading input: %w", rerr))
			break reading
		}
	}
	close(jobs)
	wg.Wait()
	for i := 0; i < nRuns; i++ {
		runs = append(runs, runName(i))
	}
	return runs, total, firstErr
}

// makeRunsSerial is the Workers=1 partitioning phase: one full-M chunk
// buffer, sorted and flushed inline (plus the one BufSize writer buffer
// the original algorithm always carried). Keeping the single-worker path
// unpipelined preserves the paper's N/M run count (and the I/O traces the
// experiments reproduce) exactly — partitioning the budget for a pipeline
// only pays off when a second worker exists to overlap with.
func makeRunsSerial(cfg Config, in io.Reader) (runs []string, total int64, err error) {
	chunkLen := int(cfg.MemBudget/int64(cfg.RecordSize)) * cfg.RecordSize
	buf := make([]byte, chunkLen)
	for {
		n, rerr := io.ReadFull(in, buf)
		if n > 0 {
			if n%cfg.RecordSize != 0 {
				return runs, total, fmt.Errorf("extsort: reading input: %w", io.ErrUnexpectedEOF)
			}
			name := fmt.Sprintf("%s.run.%d", cfg.TempPrefix, len(runs))
			runs = append(runs, name) // before writeRun: a partial file must reach cleanup
			if err := writeRun(cfg, name, buf[:n], cfg.BufSize); err != nil {
				return runs, total, err
			}
			total += int64(n / cfg.RecordSize)
		}
		switch rerr {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			return runs, total, nil
		default:
			return runs, total, fmt.Errorf("extsort: reading input: %w", rerr)
		}
	}
}

// writeRun sorts one chunk and flushes it as the named run file through a
// bufSize-byte writer buffer.
func writeRun(cfg Config, name string, data []byte, bufSize int) error {
	SortInMemory(data, cfg.RecordSize, cfg.Compare)
	f, err := cfg.FS.Create(name)
	if err != nil {
		return err
	}
	w := storage.NewSequentialWriter(f, 0, bufSize)
	if _, err := w.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mergeAll merges runs into outName, in multiple generations if the fan-in
// exceeds what the memory budget allows. When ownsInputs, the input runs
// are deleted as they are consumed. Every temporary this function creates —
// and, when ownsInputs, every surviving input — is removed on every error
// path, along with a partially written outName.
func mergeAll(cfg Config, runs []string, outName string, ownsInputs bool) (err error) {
	if len(runs) == 0 {
		// Empty input: create an empty output file (wrapped, so even an
		// empty checksummed output carries its header).
		f, cerr := cfg.FS.Create(outName)
		if cerr != nil {
			return cerr
		}
		if cfg.WrapOut != nil {
			wf, werr := cfg.WrapOut(f)
			if werr != nil {
				f.Close()
				return werr
			}
			f = wf
		}
		return f.Close()
	}
	// Only the caller's original runs may be in a wrapped (checksummed)
	// physical layout; intermediates below are extsort's own raw files.
	var orig map[string]bool
	if cfg.WrapIn != nil {
		orig = make(map[string]bool, len(runs))
		for _, n := range runs {
			orig[n] = true
		}
	}
	cur, owned := runs, ownsInputs
	outCreated := false
	defer func() {
		if err != nil {
			if owned {
				cleanup(cfg.FS, cur)
			}
			// Remove a partially written output — but only one this call
			// created: a pre-existing file at outName (e.g. a retry over a
			// previous result) is the caller's, not ours, until the final
			// pass truncates it.
			if outCreated && cfg.FS.Exists(outName) {
				_ = cfg.FS.Remove(outName)
			}
		}
	}()
	// The final pass is a single merge using the whole budget.
	finalFanIn := int(cfg.MemBudget/int64(cfg.BufSize)) - 1
	if finalFanIn < 2 {
		finalFanIn = 2
	}
	for gen := 0; len(cur) > finalFanIn; gen++ {
		next, gerr := mergeGeneration(cfg, cur, gen, owned, orig)
		if gerr != nil {
			return gerr
		}
		cur, owned = next, true
	}
	markOut := func() { outCreated = true }
	if len(cur) == 1 {
		// Single run: rename by copy (VFS has no rename; a sequential copy
		// keeps the I/O pattern honest).
		if err := copyFile(cfg, cur[0], outName, markOut, orig); err != nil {
			return err
		}
	} else if err := mergeOnce(cfg, cur, outName, cfg.Tee, markOut, cfg.WrapOut, orig); err != nil {
		return err
	}
	if owned {
		cleanup(cfg.FS, cur)
	}
	return nil
}

// mergeGeneration runs one pass of the multi-pass merge: inputs are grouped
// by a fan-in sized from the per-worker budget share, and the groups —
// independent by construction — merge concurrently on up to Workers
// goroutines. On success the group outputs are returned and (when owned)
// the inputs have been deleted; on error every output this generation
// produced is removed and the surviving inputs are left to the caller.
func mergeGeneration(cfg Config, inputs []string, gen int, owned bool, orig map[string]bool) ([]string, error) {
	// Partition the budget: each concurrent merge holds fanIn+1 buffers, so
	// running Workers merges at once shrinks the per-merge fan-in. A tiny
	// fan-in multiplies full passes over the data, which costs far more
	// than lost concurrency — so concurrency yields first, shrinking until
	// each merge keeps a fan-in of at least min(8, full-budget fan-in).
	fullFanIn := int(cfg.MemBudget/int64(cfg.BufSize)) - 1
	minFanIn := 8
	if minFanIn > fullFanIn {
		minFanIn = fullFanIn
	}
	if minFanIn < 2 {
		minFanIn = 2
	}
	workers := cfg.Workers
	fanIn := int(cfg.MemBudget/(int64(workers)*int64(cfg.BufSize))) - 1
	if fanIn < minFanIn {
		workers = int(cfg.MemBudget / (int64(minFanIn+1) * int64(cfg.BufSize)))
		if workers < 1 {
			workers = 1
		}
		fanIn = int(cfg.MemBudget/(int64(workers)*int64(cfg.BufSize))) - 1
		if fanIn < 2 {
			fanIn = 2
		}
	}
	nGroups := (len(inputs) + fanIn - 1) / fanIn
	outs := make([]string, nGroups)
	errs := make([]error, nGroups)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for g := 0; g < nGroups; g++ {
		lo := g * fanIn
		hi := lo + fanIn
		if hi > len(inputs) {
			hi = len(inputs)
		}
		outs[g] = fmt.Sprintf("%s.merge.%d.%d", cfg.TempPrefix, gen, g)
		wg.Add(1)
		sem <- struct{}{}
		go func(g, lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Intermediate generations never tee: only the final pass over
			// outName sees each record exactly once.
			if err := mergeOnce(cfg, inputs[lo:hi], outs[g], nil, nil, nil, orig); err != nil {
				errs[g] = err
				return
			}
			if owned {
				cleanup(cfg.FS, inputs[lo:hi])
			}
		}(g, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			cleanup(cfg.FS, outs)
			return nil, e
		}
	}
	return outs, nil
}

type mergeStream struct {
	r   *storage.SequentialReader
	rec []byte
	ok  bool
}

func (s *mergeStream) advance(recordSize int) error {
	_, err := io.ReadFull(s.r, s.rec)
	if err == io.EOF {
		s.ok = false
		return nil
	}
	if err != nil {
		return err
	}
	s.ok = true
	return nil
}

type mergeHeap struct {
	streams []*mergeStream
	cmp     Compare
}

func (h *mergeHeap) Len() int { return len(h.streams) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.cmp(h.streams[i].rec, h.streams[j].rec) < 0
}
func (h *mergeHeap) Swap(i, j int) { h.streams[i], h.streams[j] = h.streams[j], h.streams[i] }
func (h *mergeHeap) Push(x any)    { h.streams = append(h.streams, x.(*mergeStream)) }
func (h *mergeHeap) Pop() any {
	old := h.streams
	n := len(old)
	s := old[n-1]
	h.streams = old[:n-1]
	return s
}

// mergeOnce merges runs into outName. onCreate, when non-nil, fires right
// after the output file is created/truncated — the point from which a
// pre-existing file at outName is gone and cleanup owns the path.
func mergeOnce(cfg Config, runs []string, outName string, tee func([]byte), onCreate func(), wrap func(storage.File) (storage.File, error), orig map[string]bool) (err error) {
	out, err := cfg.FS.Create(outName)
	if err != nil {
		return err
	}
	if onCreate != nil {
		onCreate()
	}
	if wrap != nil {
		wrapped, werr := wrap(out)
		if werr != nil {
			out.Close()
			return werr
		}
		out = wrapped
	}
	defer func() {
		// A failed Close can mean deferred write-back errors (ENOSPC/EIO);
		// swallowing it would let callers install a truncated output.
		if cerr := out.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := storage.NewSequentialWriter(out, 0, cfg.BufSize)

	h := &mergeHeap{cmp: cfg.Compare}
	var files []storage.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, name := range runs {
		f, err := openInput(cfg, name, orig)
		if err != nil {
			return err
		}
		files = append(files, f)
		s := &mergeStream{
			r:   storage.NewSequentialReader(f, 0, -1, cfg.BufSize),
			rec: make([]byte, cfg.RecordSize),
		}
		if err := s.advance(cfg.RecordSize); err != nil {
			return err
		}
		if s.ok {
			h.streams = append(h.streams, s)
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		s := h.streams[0]
		if _, err := w.Write(s.rec); err != nil {
			return err
		}
		if tee != nil {
			tee(s.rec)
		}
		if err := s.advance(cfg.RecordSize); err != nil {
			return err
		}
		if s.ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return w.Flush()
}

// openInput opens one merge input, wrapping it with WrapIn when it is one
// of the caller's original runs (orig) rather than an intermediate.
func openInput(cfg Config, name string, orig map[string]bool) (storage.File, error) {
	f, err := cfg.FS.Open(name)
	if err != nil {
		return nil, err
	}
	if cfg.WrapIn != nil && orig[name] {
		wf, werr := cfg.WrapIn(f)
		if werr != nil {
			f.Close()
			return nil, werr
		}
		return wf, nil
	}
	return f, nil
}

// copyFile sequentially copies from to to. It is the final pass when a
// single run remains, so a configured Tee sees every record here too;
// onCreate fires as in mergeOnce.
func copyFile(cfg Config, from, to string, onCreate func(), orig map[string]bool) (err error) {
	src, err := openInput(cfg, from, orig)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := cfg.FS.Create(to)
	if err != nil {
		return err
	}
	if onCreate != nil {
		onCreate()
	}
	if cfg.WrapOut != nil {
		wrapped, werr := cfg.WrapOut(dst)
		if werr != nil {
			dst.Close()
			return werr
		}
		dst = wrapped
	}
	defer func() {
		if cerr := dst.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	r := storage.NewSequentialReader(src, 0, -1, cfg.BufSize)
	w := storage.NewSequentialWriter(dst, 0, cfg.BufSize)
	if cfg.Tee != nil {
		rec := make([]byte, cfg.RecordSize)
		for {
			if _, err := io.ReadFull(r, rec); err != nil {
				if err == io.EOF {
					break
				}
				return err
			}
			if _, err := w.Write(rec); err != nil {
				return err
			}
			cfg.Tee(rec)
		}
		return w.Flush()
	}
	buf := make([]byte, cfg.BufSize)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return w.Flush()
}

func cleanup(fs storage.FS, names []string) {
	for _, n := range names {
		if fs.Exists(n) {
			_ = fs.Remove(n)
		}
	}
}

// RecordReader iterates fixed-size records from a file on a VFS.
type RecordReader struct {
	f          storage.File
	r          *storage.SequentialReader
	recordSize int
	buf        []byte
}

// OpenRecords opens name on fs for sequential record iteration.
func OpenRecords(fs storage.FS, name string, recordSize, bufSize int) (*RecordReader, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &RecordReader{
		f:          f,
		r:          storage.NewSequentialReader(f, 0, -1, bufSize),
		recordSize: recordSize,
		buf:        make([]byte, recordSize),
	}, nil
}

// Next returns the next record, valid until the following call. io.EOF
// signals the end.
func (rr *RecordReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(rr.r, rr.buf); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	return rr.buf, nil
}

// Close releases the underlying file.
func (rr *RecordReader) Close() error { return rr.f.Close() }
