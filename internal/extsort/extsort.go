// Package extsort implements external sorting of fixed-size records under
// an explicit memory budget: the partitioning phase scans the input in
// memory-sized chunks, sorts each chunk, and flushes it as a sorted run;
// the merging phase merge-sorts the runs with a tournament over buffered
// sequential readers (§3.1 of the paper, "Bottom-up Bulk-Loading Using
// External Sorting").
//
// Every byte moved goes through the storage VFS, so the paper's O(N/B)
// sequential-I/O claim is directly observable in the I/O statistics.
package extsort

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/coconut-db/coconut/internal/storage"
)

// Compare orders two records. It must be a strict weak ordering over the
// full record encoding.
type Compare func(a, b []byte) int

// CompareKeyPrefix returns a Compare that orders records by their first n
// bytes (the layout used for invSAX records, whose keys sort bytewise).
func CompareKeyPrefix(n int) Compare {
	return func(a, b []byte) int { return bytes.Compare(a[:n], b[:n]) }
}

// Config parameterizes a sort.
type Config struct {
	// FS hosts the temporary runs and the output file.
	FS storage.FS
	// RecordSize is the fixed encoded size of each record, in bytes.
	RecordSize int
	// Compare orders records.
	Compare Compare
	// MemBudget is the maximum number of record bytes held in memory at
	// once; it controls run length and merge fan-in. This is the paper's M.
	MemBudget int64
	// TempPrefix names temporary run files (default "extsort").
	TempPrefix string
	// BufSize is the per-stream I/O buffer size (default 256 KiB).
	BufSize int
}

func (c *Config) validate() error {
	switch {
	case c.FS == nil:
		return errors.New("extsort: nil FS")
	case c.RecordSize <= 0:
		return errors.New("extsort: record size must be positive")
	case c.Compare == nil:
		return errors.New("extsort: nil comparator")
	}
	if c.MemBudget < int64(c.RecordSize)*4 {
		c.MemBudget = int64(c.RecordSize) * 4
	}
	if c.TempPrefix == "" {
		c.TempPrefix = "extsort"
	}
	if c.BufSize <= 0 {
		c.BufSize = 256 << 10
	}
	return nil
}

// Sort consumes all records from in, sorts them, and writes the sorted
// stream to outName on cfg.FS. It returns the number of records sorted.
func Sort(cfg Config, in io.Reader, outName string) (int64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	runs, total, err := makeRuns(cfg, in)
	if err != nil {
		cleanup(cfg.FS, runs)
		return 0, err
	}
	if err := mergeAll(cfg, runs, outName); err != nil {
		cleanup(cfg.FS, runs)
		return 0, err
	}
	return total, nil
}

// SortInMemory sorts records (a concatenation of fixed-size records) in
// place. It is the building block of the run-formation phase and is exposed
// for callers whose data always fits in memory (e.g. sorting summaries for
// a non-materialized index when M is ample).
func SortInMemory(records []byte, recordSize int, cmp Compare) {
	n := len(records) / recordSize
	sort.Sort(&recordSlice{data: records, size: recordSize, n: n, cmp: cmp,
		swapBuf: make([]byte, recordSize)})
}

type recordSlice struct {
	data    []byte
	size, n int
	cmp     Compare
	swapBuf []byte
}

func (r *recordSlice) Len() int { return r.n }
func (r *recordSlice) Less(i, j int) bool {
	return r.cmp(r.data[i*r.size:(i+1)*r.size], r.data[j*r.size:(j+1)*r.size]) < 0
}
func (r *recordSlice) Swap(i, j int) {
	a := r.data[i*r.size : (i+1)*r.size]
	b := r.data[j*r.size : (j+1)*r.size]
	copy(r.swapBuf, a)
	copy(a, b)
	copy(b, r.swapBuf)
}

// makeRuns performs the partitioning phase, returning the run file names.
func makeRuns(cfg Config, in io.Reader) (runs []string, total int64, err error) {
	chunkRecords := cfg.MemBudget / int64(cfg.RecordSize)
	chunk := make([]byte, 0, chunkRecords*int64(cfg.RecordSize))
	rec := make([]byte, cfg.RecordSize)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		SortInMemory(chunk, cfg.RecordSize, cfg.Compare)
		name := fmt.Sprintf("%s.run.%d", cfg.TempPrefix, len(runs))
		f, err := cfg.FS.Create(name)
		if err != nil {
			return err
		}
		w := storage.NewSequentialWriter(f, 0, cfg.BufSize)
		if _, err := w.Write(chunk); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		runs = append(runs, name)
		chunk = chunk[:0]
		return nil
	}
	for {
		_, rerr := io.ReadFull(in, rec)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return runs, total, fmt.Errorf("extsort: reading input: %w", rerr)
		}
		chunk = append(chunk, rec...)
		total++
		if int64(len(chunk)) >= chunkRecords*int64(cfg.RecordSize) {
			if err := flush(); err != nil {
				return runs, total, err
			}
		}
	}
	if err := flush(); err != nil {
		return runs, total, err
	}
	return runs, total, nil
}

// mergeAll merges runs into outName, in multiple passes if the fan-in
// exceeds what the memory budget allows.
func mergeAll(cfg Config, runs []string, outName string) error {
	if len(runs) == 0 {
		// Empty input: create an empty output file.
		f, err := cfg.FS.Create(outName)
		if err != nil {
			return err
		}
		return f.Close()
	}
	// Maximum fan-in: one input buffer per run plus one output buffer.
	maxFanIn := int(cfg.MemBudget/int64(cfg.BufSize)) - 1
	if maxFanIn < 2 {
		maxFanIn = 2
	}
	gen := 0
	for len(runs) > 1 && len(runs) > maxFanIn {
		var next []string
		for lo := 0; lo < len(runs); lo += maxFanIn {
			hi := lo + maxFanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			name := fmt.Sprintf("%s.merge.%d.%d", cfg.TempPrefix, gen, len(next))
			if err := mergeOnce(cfg, runs[lo:hi], name); err != nil {
				return err
			}
			cleanup(cfg.FS, runs[lo:hi])
			next = append(next, name)
		}
		runs = next
		gen++
	}
	if len(runs) == 1 {
		// Single run: rename by copy (VFS has no rename; a sequential copy
		// keeps the I/O pattern honest).
		if err := copyFile(cfg, runs[0], outName); err != nil {
			return err
		}
		cleanup(cfg.FS, runs)
		return nil
	}
	if err := mergeOnce(cfg, runs, outName); err != nil {
		return err
	}
	cleanup(cfg.FS, runs)
	return nil
}

type mergeStream struct {
	r   *storage.SequentialReader
	rec []byte
	ok  bool
}

func (s *mergeStream) advance(recordSize int) error {
	_, err := io.ReadFull(s.r, s.rec)
	if err == io.EOF {
		s.ok = false
		return nil
	}
	if err != nil {
		return err
	}
	s.ok = true
	return nil
}

type mergeHeap struct {
	streams []*mergeStream
	cmp     Compare
}

func (h *mergeHeap) Len() int { return len(h.streams) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.cmp(h.streams[i].rec, h.streams[j].rec) < 0
}
func (h *mergeHeap) Swap(i, j int) { h.streams[i], h.streams[j] = h.streams[j], h.streams[i] }
func (h *mergeHeap) Push(x any)    { h.streams = append(h.streams, x.(*mergeStream)) }
func (h *mergeHeap) Pop() any {
	old := h.streams
	n := len(old)
	s := old[n-1]
	h.streams = old[:n-1]
	return s
}

func mergeOnce(cfg Config, runs []string, outName string) error {
	out, err := cfg.FS.Create(outName)
	if err != nil {
		return err
	}
	defer out.Close()
	w := storage.NewSequentialWriter(out, 0, cfg.BufSize)

	h := &mergeHeap{cmp: cfg.Compare}
	var files []storage.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, name := range runs {
		f, err := cfg.FS.Open(name)
		if err != nil {
			return err
		}
		files = append(files, f)
		s := &mergeStream{
			r:   storage.NewSequentialReader(f, 0, -1, cfg.BufSize),
			rec: make([]byte, cfg.RecordSize),
		}
		if err := s.advance(cfg.RecordSize); err != nil {
			return err
		}
		if s.ok {
			h.streams = append(h.streams, s)
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		s := h.streams[0]
		if _, err := w.Write(s.rec); err != nil {
			return err
		}
		if err := s.advance(cfg.RecordSize); err != nil {
			return err
		}
		if s.ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return w.Flush()
}

func copyFile(cfg Config, from, to string) error {
	src, err := cfg.FS.Open(from)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := cfg.FS.Create(to)
	if err != nil {
		return err
	}
	defer dst.Close()
	r := storage.NewSequentialReader(src, 0, -1, cfg.BufSize)
	w := storage.NewSequentialWriter(dst, 0, cfg.BufSize)
	buf := make([]byte, cfg.BufSize)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return w.Flush()
}

func cleanup(fs storage.FS, names []string) {
	for _, n := range names {
		if fs.Exists(n) {
			_ = fs.Remove(n)
		}
	}
}

// RecordReader iterates fixed-size records from a file on a VFS.
type RecordReader struct {
	f          storage.File
	r          *storage.SequentialReader
	recordSize int
	buf        []byte
}

// OpenRecords opens name on fs for sequential record iteration.
func OpenRecords(fs storage.FS, name string, recordSize, bufSize int) (*RecordReader, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &RecordReader{
		f:          f,
		r:          storage.NewSequentialReader(f, 0, -1, bufSize),
		recordSize: recordSize,
		buf:        make([]byte, recordSize),
	}, nil
}

// Next returns the next record, valid until the following call. io.EOF
// signals the end.
func (rr *RecordReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(rr.r, rr.buf); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	return rr.buf, nil
}

// Close releases the underlying file.
func (rr *RecordReader) Close() error { return rr.f.Close() }
