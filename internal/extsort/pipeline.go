package extsort

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// TransformConfig parameterizes a TransformReader: a streamed record source
// that converts fixed-size input records into fixed-size output records on a
// pool of worker goroutines while preserving input order. It is the
// machinery behind the batched summarization pipeline feeding Sort's run
// formation: one goroutine reads raw input blocks sequentially, Workers
// goroutines transform the blocks concurrently, and the consumer drains the
// transformed blocks strictly in input order — so the produced stream is
// byte-identical for any worker count.
type TransformConfig struct {
	// In supplies the raw input bytes; it is read sequentially by a single
	// producer goroutine, InRecordSize granularity enforced.
	In io.Reader
	// InRecordSize is the fixed encoded size of one input record.
	InRecordSize int
	// OutRecordSize is the fixed encoded size of one output record.
	OutRecordSize int
	// Workers is the number of transform goroutines (<= 0 means
	// runtime.NumCPU()). The output stream is identical for any value.
	Workers int
	// BlockRecords is the number of records per block (default: sized so a
	// block holds ~256 KiB of input). Blocks are the unit of hand-off;
	// resident memory is (Workers+2) blocks of input plus output bytes.
	BlockRecords int
	// Transform converts one block: in holds n*InRecordSize input bytes, out
	// has room for n*OutRecordSize bytes and must be filled completely. base
	// is the ordinal of the block's first record in the whole stream. It is
	// called concurrently from Workers goroutines (worker in [0, Workers))
	// and must only touch per-worker state indexed by worker.
	Transform func(worker int, in, out []byte, base int64) error
}

func (c *TransformConfig) validate() error {
	switch {
	case c.In == nil:
		return fmt.Errorf("extsort: transform: nil input")
	case c.InRecordSize <= 0 || c.OutRecordSize <= 0:
		return fmt.Errorf("extsort: transform: record sizes must be positive")
	case c.Transform == nil:
		return fmt.Errorf("extsort: transform: nil transform")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.BlockRecords <= 0 {
		c.BlockRecords = (256 << 10) / c.InRecordSize
	}
	if c.BlockRecords < 1 {
		c.BlockRecords = 1
	}
	return nil
}

// tblock is one pipeline block. ready is closed by the worker that filled
// out (or recorded err); the consumer waits on it before draining.
type tblock struct {
	in    []byte
	out   []byte
	n     int
	base  int64
	err   error
	ready chan struct{}
}

// TransformReader is the io.Reader side of the pipeline. It is not safe for
// concurrent use; Close must be called exactly once when done (also on
// error paths) to release the producer and worker goroutines.
type TransformReader struct {
	cfg   TransformConfig
	order chan *tblock // blocks in input order, as dispatched
	free  chan *tblock
	quit  chan struct{}
	wg    sync.WaitGroup
	cur   *tblock
	avail []byte
	err   error
}

// NewTransformReader starts the pipeline goroutines and returns the ordered
// reader over the transformed record stream.
func NewTransformReader(cfg TransformConfig) (*TransformReader, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nBlocks := cfg.Workers + 2
	t := &TransformReader{
		cfg:   cfg,
		order: make(chan *tblock, nBlocks),
		free:  make(chan *tblock, nBlocks),
		quit:  make(chan struct{}),
	}
	for i := 0; i < nBlocks; i++ {
		t.free <- &tblock{
			in:  make([]byte, cfg.BlockRecords*cfg.InRecordSize),
			out: make([]byte, cfg.BlockRecords*cfg.OutRecordSize),
		}
	}
	jobs := make(chan *tblock)
	for w := 0; w < cfg.Workers; w++ {
		t.wg.Add(1)
		go func(w int) {
			defer t.wg.Done()
			for {
				select {
				case <-t.quit:
					return
				case b, ok := <-jobs:
					if !ok {
						return
					}
					b.err = cfg.Transform(w, b.in[:b.n*cfg.InRecordSize],
						b.out[:b.n*cfg.OutRecordSize], b.base)
					close(b.ready)
				}
			}
		}(w)
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		defer close(jobs)
		defer close(t.order)
		var base int64
		for {
			var b *tblock
			select {
			case <-t.quit:
				return
			case b = <-t.free:
			}
			n, rerr := io.ReadFull(cfg.In, b.in)
			if n%cfg.InRecordSize != 0 && (rerr == nil || rerr == io.ErrUnexpectedEOF) {
				rerr = fmt.Errorf("extsort: transform input: %w", io.ErrUnexpectedEOF)
			}
			if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
				// Surface the read error in order, as a block of its own.
				b.n, b.err, b.ready = 0, rerr, closedChan
				select {
				case t.order <- b:
				case <-t.quit:
				}
				return
			}
			if n == 0 {
				return
			}
			b.n, b.base, b.err = n/cfg.InRecordSize, base, nil
			b.ready = make(chan struct{})
			base += int64(b.n)
			// order has capacity for every block in existence, so this send
			// never blocks; the jobs send below waits for a free worker.
			t.order <- b
			select {
			case jobs <- b:
			case <-t.quit:
				return
			}
			if rerr != nil { // EOF after a final partial block
				return
			}
		}
	}()
	return t, nil
}

// closedChan is a pre-closed ready channel for error blocks that never
// visit a worker.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Read drains the transformed blocks strictly in input order.
func (t *TransformReader) Read(p []byte) (int, error) {
	if t.err != nil {
		return 0, t.err
	}
	for len(t.avail) == 0 {
		if t.cur != nil {
			b := t.cur
			t.cur = nil
			select {
			case t.free <- b:
			default: // impossible: free has capacity for every block
			}
		}
		b, ok := <-t.order
		if !ok {
			t.err = io.EOF
			return 0, io.EOF
		}
		<-b.ready
		if b.err != nil {
			t.err = b.err
			return 0, b.err
		}
		t.cur = b
		t.avail = b.out[:b.n*t.cfg.OutRecordSize]
	}
	n := copy(p, t.avail)
	t.avail = t.avail[n:]
	return n, nil
}

// Close releases the pipeline goroutines. It must be called once the stream
// is no longer needed — including when the consumer abandons it early (e.g.
// the sort failed) — and is idempotent.
func (t *TransformReader) Close() error {
	select {
	case <-t.quit:
	default:
		close(t.quit)
	}
	// Drain order so the producer's buffered sends never pin memory, then
	// join every goroutine.
	go func() {
		for range t.order {
		}
	}()
	t.wg.Wait()
	return nil
}
