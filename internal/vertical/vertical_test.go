package vertical

import (
	"math"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
)

const (
	tLen   = 64
	tCount = 400
)

func buildFixture(t *testing.T, levels int) (*Index, []series.Series, *storage.MemFS) {
	t.Helper()
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	data := dataset.Generate(gen, tCount, tLen, 42)
	ix, err := Build(Options{FS: fs, Name: "v", RawName: "raw", SeriesLen: tLen, Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	return ix, data, fs
}

func bruteForce1NN(q series.Series, data []series.Series) float64 {
	best := math.Inf(1)
	for _, d := range data {
		dist, _ := series.ED(q, d)
		if dist < best {
			best = dist
		}
	}
	return best
}

func TestBuild(t *testing.T) {
	ix, _, _ := buildFixture(t, 0)
	defer ix.Close()
	if ix.Count() != tCount {
		t.Fatalf("Count = %d", ix.Count())
	}
	// All levels materialized: index stores exactly n coefficients/series.
	if got := ix.SizeBytes(); got != int64(tCount*tLen*8) {
		t.Fatalf("SizeBytes = %d, want %d", got, tCount*tLen*8)
	}
}

func TestExactMatchesBruteForceAllLevels(t *testing.T) {
	for _, levels := range []int{0, 3, 5} {
		ix, data, _ := buildFixture(t, levels)
		qs := dataset.Queries(dataset.NewRandomWalk(), 10, tLen, 5)
		for qi, q := range qs {
			want := bruteForce1NN(q, data)
			res, err := ix.ExactSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Dist-want) > 1e-9 {
				t.Fatalf("levels=%d query %d: %v != %v", levels, qi, res.Dist, want)
			}
		}
		ix.Close()
	}
}

func TestMemberFound(t *testing.T) {
	ix, data, _ := buildFixture(t, 0)
	defer ix.Close()
	res, err := ix.ExactSearch(data[42])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 || res.Pos != 42 {
		t.Fatalf("member not found exactly: pos=%d dist=%v", res.Pos, res.Dist)
	}
}

func TestLevelScanPrunes(t *testing.T) {
	ix, _, _ := buildFixture(t, 0)
	defer ix.Close()
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 6)[0]
	res, err := ix.ExactSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.VisitedRecords >= tCount/2 {
		t.Fatalf("level filtering barely pruned: visited %d of %d", res.VisitedRecords, tCount)
	}
}

func TestValidation(t *testing.T) {
	fs := storage.NewMemFS()
	if _, err := Build(Options{FS: fs, Name: "v", RawName: "raw", SeriesLen: 48}); err == nil {
		t.Fatal("expected error for non-power-of-two length")
	}
	if _, err := Build(Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	// Missing raw file.
	if _, err := Build(Options{FS: fs, Name: "v", RawName: "nope", SeriesLen: 64}); err == nil {
		t.Fatal("expected error for missing raw file")
	}
}

func TestQueryLengthMismatch(t *testing.T) {
	ix, _, _ := buildFixture(t, 0)
	defer ix.Close()
	if _, err := ix.ExactSearch(make(series.Series, 32)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestConstructionReadsRawOncePerLevel(t *testing.T) {
	fs := storage.NewMemFS()
	dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), 200, tLen, 1)
	before := fs.Stats().Snapshot()
	ix, err := Build(Options{FS: fs, Name: "v", RawName: "raw", SeriesLen: tLen, Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	delta := fs.Stats().Snapshot().Sub(before)
	rawBytes := int64(200 * tLen * 8)
	// 4 levels -> 4 sequential passes over the raw file.
	if delta.BytesRead < 4*rawBytes {
		t.Fatalf("expected >= 4 raw passes (%d bytes), read %d", 4*rawBytes, delta.BytesRead)
	}
}
