// Package vertical implements the Vertical baseline (Kashyap & Karras,
// "Scalable kNN search on vertically stored time series"): every series is
// transformed with the orthonormal Haar wavelet, and the coefficients are
// stored COLUMN-major — level by level across all series. A query scans the
// levels coarse-to-fine; after each level the partial squared distance is a
// tighter lower bound (Parseval), so candidates are pruned progressively and
// only survivors' remaining coefficients (or raw data) are fetched.
//
// Construction is a stepwise sequential pass per resolution level, which is
// why the paper's Figure 8a shows Vertical slower than the bulk-loaded
// indexes: it re-reads the raw file once per level it materializes.
package vertical

import (
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/wavelet"
)

// Options configures a build.
type Options struct {
	// FS hosts the index and the raw dataset file.
	FS storage.FS
	// Name is the base file name.
	Name string
	// RawName is the dataset file.
	RawName string
	// SeriesLen is the series length (must be a power of two).
	SeriesLen int
	// Levels is how many wavelet levels to materialize in the index
	// (0 = all). The first levels hold few coefficients and prune most
	// candidates; deeper levels sharpen the bound.
	Levels int
}

func (o *Options) validate() error {
	switch {
	case o.FS == nil:
		return errors.New("vertical: nil FS")
	case o.Name == "":
		return errors.New("vertical: empty name")
	case o.RawName == "":
		return errors.New("vertical: empty raw name")
	case !wavelet.IsPowerOfTwo(o.SeriesLen):
		return fmt.Errorf("vertical: series length %d is not a power of two", o.SeriesLen)
	}
	max := wavelet.Levels(o.SeriesLen) + 1
	if o.Levels <= 0 || o.Levels > max {
		o.Levels = max
	}
	return nil
}

// Result mirrors the other indexes' search answer.
type Result struct {
	Pos            int64
	Dist           float64
	VisitedRecords int64
	// CoeffsRead counts wavelet coefficients fetched from the index.
	CoeffsRead int64
}

// Index is a built vertical index. Level l's coefficients for all series
// are stored contiguously ("column-major"): file layout is
// level 0 (1 coeff per series), level 1 (1 per series), level 2 (2), ...
type Index struct {
	opt     Options
	f       storage.File
	rawFile storage.File
	count   int64
	// levelOff[l] is the byte offset of level l's column in the file.
	levelOff []int64
	// levelWidth[l] is the number of coefficients per series in level l.
	levelWidth []int
}

// Build constructs the index with one sequential pass over the raw file per
// materialized level (the "stepwise sequential-scan manner" of §5).
func Build(opt Options) (*Index, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	f, err := opt.FS.Create(opt.Name + ".vert")
	if err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		f.Close()
		return nil, err
	}
	ix := &Index{opt: opt, f: f, rawFile: raw}

	var off int64
	for l := 0; l < opt.Levels; l++ {
		lo, hi := wavelet.LevelRange(l)
		width := hi - lo
		ix.levelOff = append(ix.levelOff, off)
		ix.levelWidth = append(ix.levelWidth, width)

		// One full pass over the raw file for this level.
		r := series.NewReader(storage.NewSequentialReader(raw, 0, -1, 0), opt.SeriesLen)
		w := storage.NewSequentialWriter(f, off, 0)
		buf := make(series.Series, opt.SeriesLen)
		rec := make([]byte, 8*width)
		var n int64
		for {
			if err := r.NextInto(buf); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				f.Close()
				raw.Close()
				return nil, err
			}
			coeffs, err := wavelet.Transform(buf)
			if err != nil {
				f.Close()
				raw.Close()
				return nil, err
			}
			for i := 0; i < width; i++ {
				putU64(rec[8*i:], math.Float64bits(coeffs[lo+i]))
			}
			if _, err := w.Write(rec); err != nil {
				f.Close()
				raw.Close()
				return nil, err
			}
			n++
		}
		if err := w.Flush(); err != nil {
			f.Close()
			raw.Close()
			return nil, err
		}
		if l == 0 {
			ix.count = n
		} else if n != ix.count {
			f.Close()
			raw.Close()
			return nil, fmt.Errorf("vertical: level %d saw %d series, level 0 saw %d", l, n, ix.count)
		}
		off += 8 * int64(width) * n
	}
	return ix, nil
}

// Count returns the number of indexed series.
func (ix *Index) Count() int64 { return ix.count }

// SizeBytes returns the on-device index size.
func (ix *Index) SizeBytes() int64 {
	size, err := ix.f.Size()
	if err != nil {
		return 0
	}
	return size
}

// Close releases file handles.
func (ix *Index) Close() error {
	err1 := ix.f.Close()
	err2 := ix.rawFile.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// readLevelColumn loads level l's coefficients for all series.
func (ix *Index) readLevelColumn(l int) ([]float64, error) {
	width := ix.levelWidth[l]
	buf := make([]byte, 8*int64(width)*ix.count)
	if n, err := ix.f.ReadAt(buf, ix.levelOff[l]); int64(n) != int64(len(buf)) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("vertical: read level %d: %w", l, err)
	}
	out := make([]float64, int64(width)*ix.count)
	for i := range out {
		out[i] = math.Float64frombits(leU64(buf[8*i:]))
	}
	return out, nil
}

// ExactSearch scans the levels coarse-to-fine, pruning candidates whose
// partial (lower-bound) distance exceeds the best verified answer, then
// verifies survivors against the raw file.
func (ix *Index) ExactSearch(q series.Series) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if ix.count == 0 {
		return res, errors.New("vertical: index is empty")
	}
	if len(q) != ix.opt.SeriesLen {
		return res, fmt.Errorf("vertical: query length %d, want %d", len(q), ix.opt.SeriesLen)
	}
	qc, err := wavelet.Transform(q)
	if err != nil {
		return res, err
	}

	// partial[i] accumulates the squared prefix distance of candidate i.
	partial := make([]float64, ix.count)
	alive := make([]bool, ix.count)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := ix.count

	bsfSq := math.Inf(1)
	scratch := make(series.Series, ix.opt.SeriesLen)
	coeffCursor := 0
	for l := 0; l < len(ix.levelWidth) && aliveCount > 0; l++ {
		col, err := ix.readLevelColumn(l)
		if err != nil {
			return res, err
		}
		width := ix.levelWidth[l]
		res.CoeffsRead += int64(width) * ix.count
		qLevel := qc[coeffCursor : coeffCursor+width]
		for i := int64(0); i < ix.count; i++ {
			if !alive[i] {
				continue
			}
			// Parseval: extending the partial squared distance by this
			// level's coefficients tightens the lower bound. The blocked
			// kernel accumulates in coefficient order, bit-identical to the
			// scalar loop it replaces.
			acc := series.AddSquaredED(partial[i], qLevel, col[i*int64(width):(i+1)*int64(width)])
			partial[i] = acc
			if acc > bsfSq {
				alive[i] = false
				aliveCount--
			}
		}
		coeffCursor += width
		// Seed the best-so-far after the first level: verify the most
		// promising candidate so later levels can prune against a real
		// distance (the approximate step of the scan-and-filter scheme).
		if math.IsInf(bsfSq, 1) {
			bestI, bestP := int64(-1), math.Inf(1)
			for i := int64(0); i < ix.count; i++ {
				if alive[i] && partial[i] < bestP {
					bestI, bestP = i, partial[i]
				}
			}
			if bestI >= 0 {
				if err := ix.readRaw(bestI, scratch); err != nil {
					return res, err
				}
				res.VisitedRecords++
				if sq, err := series.SquaredED(q, scratch); err == nil {
					bsfSq = sq
					res.Pos = bestI
				}
			}
		}
	}

	// Verify survivors against the raw data in file order (skip-sequential).
	for i := int64(0); i < ix.count; i++ {
		if !alive[i] {
			continue
		}
		if partial[i] >= bsfSq {
			continue
		}
		if err := ix.readRaw(i, scratch); err != nil {
			return res, err
		}
		res.VisitedRecords++
		sq, ok := series.SquaredEDEarlyAbandon(q, scratch, bsfSq)
		if !ok {
			continue
		}
		if sq < bsfSq {
			bsfSq = sq
			res.Pos = i
		}
	}
	res.Dist = math.Sqrt(bsfSq)
	return res, nil
}

func (ix *Index) readRaw(pos int64, dst series.Series) error {
	sz := series.EncodedSize(ix.opt.SeriesLen)
	buf := make([]byte, sz)
	if n, err := ix.rawFile.ReadAt(buf, pos*int64(sz)); n != sz {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("vertical: raw series %d: %w", pos, err)
	}
	series.DecodeInto(buf, dst)
	return nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
