// Package wavelet implements the orthonormal Discrete Haar Wavelet
// Transform (DHWT) used by the Vertical baseline (Kashyap & Karras): series
// are stored as wavelet coefficients level by level, and a query scans
// levels coarse-to-fine, tightening a lower bound on the true Euclidean
// distance after each level.
package wavelet

import (
	"fmt"
	"math"

	"github.com/coconut-db/coconut/internal/series"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Levels returns the number of detail levels of a length-n transform
// (n must be a power of two): log2(n).
func Levels(n int) int {
	l := 0
	for m := n; m > 1; m >>= 1 {
		l++
	}
	return l
}

// Transform computes the orthonormal Haar transform of s, whose length must
// be a power of two. The output layout is:
//
//	out[0]       — scaling coefficient (coarsest average)
//	out[1]       — detail at the coarsest level
//	out[2:4]     — details at the next level
//	...          — doubling per level until the finest
//
// Orthonormality gives Parseval's identity: Euclidean distances are
// preserved exactly, and any coefficient prefix yields a lower bound.
func Transform(s series.Series) ([]float64, error) {
	n := len(s)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	work := make([]float64, n)
	copy(work, s)
	out := make([]float64, n)
	inv := 1 / math.Sqrt2
	for width := n; width > 1; width >>= 1 {
		half := width / 2
		// Details of this level land at out[half:width]; averages continue.
		for i := 0; i < half; i++ {
			a := (work[2*i] + work[2*i+1]) * inv
			d := (work[2*i] - work[2*i+1]) * inv
			out[half+i] = d
			work[i] = a
		}
	}
	out[0] = work[0]
	return out, nil
}

// Inverse reconstructs the original series from Transform's output.
func Inverse(coeffs []float64) (series.Series, error) {
	n := len(coeffs)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	out := make(series.Series, n)
	out[0] = coeffs[0]
	inv := 1 / math.Sqrt2
	for width := 2; width <= n; width <<= 1 {
		half := width / 2
		// out[0:half] currently holds the averages of this level.
		tmp := make([]float64, width)
		for i := 0; i < half; i++ {
			a := out[i]
			d := coeffs[half+i]
			tmp[2*i] = (a + d) * inv
			tmp[2*i+1] = (a - d) * inv
		}
		copy(out[:width], tmp)
	}
	return out, nil
}

// LevelRange returns the coefficient index range [lo, hi) of level l,
// where level 0 is the scaling coefficient alone and level k (1-based for
// details) holds 2^(k-1) coefficients.
func LevelRange(level int) (lo, hi int) {
	if level == 0 {
		return 0, 1
	}
	lo = 1 << (level - 1)
	return lo, lo << 1
}

// PrefixSquaredDist returns the squared Euclidean distance restricted to the
// first k coefficients of a and b. By Parseval this lower-bounds the true
// squared distance; it grows monotonically in k and reaches the exact value
// at k = len(a).
func PrefixSquaredDist(a, b []float64, k int) float64 {
	acc := 0.0
	for i := 0; i < k; i++ {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}
