package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coconut-db/coconut/internal/series"
)

func TestTransformInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		s := make(series.Series, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		c, err := Transform(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s {
			if math.Abs(s[i]-back[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip mismatch at %d: %v vs %v", n, i, s[i], back[i])
			}
		}
	}
}

func TestTransformRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := Transform(make(series.Series, 3)); err == nil {
		t.Fatal("expected error for length 3")
	}
	if _, err := Inverse(make([]float64, 6)); err == nil {
		t.Fatal("expected error for length 6")
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := make(series.Series, 128)
		b := make(series.Series, 128)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		ca, _ := Transform(a)
		cb, _ := Transform(b)
		want, _ := series.SquaredED(a, b)
		got := PrefixSquaredDist(ca, cb, len(ca))
		if math.Abs(want-got) > 1e-8 {
			t.Fatalf("Parseval violated: %v vs %v", want, got)
		}
	}
}

func TestPrefixDistLowerBoundsAndMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make(series.Series, 256)
	b := make(series.Series, 256)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	ca, _ := Transform(a)
	cb, _ := Transform(b)
	full, _ := series.SquaredED(a, b)
	prev := 0.0
	for k := 0; k <= 256; k++ {
		d := PrefixSquaredDist(ca, cb, k)
		if d < prev-1e-12 {
			t.Fatalf("prefix distance not monotone at k=%d", k)
		}
		if d > full+1e-8 {
			t.Fatalf("prefix distance %v exceeds full %v at k=%d", d, full, k)
		}
		prev = d
	}
}

func TestLevelRange(t *testing.T) {
	cases := []struct{ level, lo, hi int }{
		{0, 0, 1}, {1, 1, 2}, {2, 2, 4}, {3, 4, 8}, {8, 128, 256},
	}
	for _, c := range cases {
		lo, hi := LevelRange(c.level)
		if lo != c.lo || hi != c.hi {
			t.Errorf("LevelRange(%d) = [%d,%d), want [%d,%d)", c.level, lo, hi, c.lo, c.hi)
		}
	}
	if Levels(256) != 8 {
		t.Errorf("Levels(256) = %d", Levels(256))
	}
	if !IsPowerOfTwo(64) || IsPowerOfTwo(48) || IsPowerOfTwo(0) {
		t.Error("IsPowerOfTwo misbehaves")
	}
}

func TestScalingCoefficientIsMean(t *testing.T) {
	s := series.Series{1, 1, 1, 1}
	c, _ := Transform(s)
	// Orthonormal scaling coefficient of a constant series: mean * sqrt(n).
	if math.Abs(c[0]-2) > 1e-12 {
		t.Fatalf("scaling coefficient = %v, want 2", c[0])
	}
	for i := 1; i < len(c); i++ {
		if math.Abs(c[i]) > 1e-12 {
			t.Fatalf("constant series should have zero details, c[%d]=%v", i, c[i])
		}
	}
}
