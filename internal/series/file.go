package series

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The raw file format used throughout the repository mirrors the one used by
// the iSAX/ADS/Coconut line of systems: a headerless, dense array of
// little-endian float64 values, seriesLen values per series. A series'
// "position" (as recorded inside index leaves) is its ordinal number in the
// file; its byte offset is position * seriesLen * 8.

// PointSize is the encoded size of one value in the raw file format.
const PointSize = 8

// EncodedSize returns the number of bytes one series of length n occupies.
func EncodedSize(n int) int { return n * PointSize }

// AppendEncode appends the binary encoding of s to dst and returns the
// extended slice.
func AppendEncode(dst []byte, s Series) []byte {
	for _, v := range s {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Encode writes the binary encoding of s into dst, which must be at least
// EncodedSize(len(s)) bytes.
func Encode(dst []byte, s Series) {
	if len(dst) < EncodedSize(len(s)) {
		panic("series: Encode destination too small")
	}
	for i, v := range s {
		binary.LittleEndian.PutUint64(dst[i*PointSize:], math.Float64bits(v))
	}
}

// Decode parses one series of length n from src. It returns an error when
// src is too short.
func Decode(src []byte, n int) (Series, error) {
	if len(src) < EncodedSize(n) {
		return nil, fmt.Errorf("series: decode: need %d bytes, have %d", EncodedSize(n), len(src))
	}
	s := make(Series, n)
	DecodeInto(src, s)
	return s, nil
}

// DecodeInto parses len(dst) values from src into dst. src must hold at
// least EncodedSize(len(dst)) bytes.
func DecodeInto(src []byte, dst Series) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*PointSize:]))
	}
}

// Writer streams series into an io.Writer using the raw file format.
// It is not safe for concurrent use.
type Writer struct {
	w         io.Writer
	seriesLen int
	buf       []byte
	count     int64
}

// NewWriter returns a Writer emitting series of length seriesLen to w.
func NewWriter(w io.Writer, seriesLen int) *Writer {
	return &Writer{w: w, seriesLen: seriesLen, buf: make([]byte, EncodedSize(seriesLen))}
}

// Write appends one series. The series must have the writer's length.
func (w *Writer) Write(s Series) error {
	if len(s) != w.seriesLen {
		return fmt.Errorf("series: writer configured for length %d, got %d", w.seriesLen, len(s))
	}
	Encode(w.buf, s)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("series: write: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of series written so far.
func (w *Writer) Count() int64 { return w.count }

// Reader streams series out of an io.Reader in the raw file format.
// It is not safe for concurrent use.
type Reader struct {
	r         io.Reader
	seriesLen int
	buf       []byte
}

// NewReader returns a Reader decoding series of length seriesLen from r.
func NewReader(r io.Reader, seriesLen int) *Reader {
	return &Reader{r: r, seriesLen: seriesLen, buf: make([]byte, EncodedSize(seriesLen))}
}

// Next returns the next series, or io.EOF when the stream is exhausted at a
// series boundary. A truncated trailing series yields io.ErrUnexpectedEOF.
func (r *Reader) Next() (Series, error) {
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("series: read: %w", err)
	}
	s := make(Series, r.seriesLen)
	DecodeInto(r.buf, s)
	return s, nil
}

// NextInto decodes the next series into dst (which must have the reader's
// configured length), avoiding an allocation per series.
func (r *Reader) NextInto(dst Series) error {
	if len(dst) != r.seriesLen {
		return fmt.Errorf("series: reader configured for length %d, got %d", r.seriesLen, len(dst))
	}
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("series: read: %w", err)
	}
	DecodeInto(r.buf, dst)
	return nil
}
