package series

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStddev(t *testing.T) {
	tests := []struct {
		name string
		s    Series
		mean float64
		std  float64
	}{
		{"empty", Series{}, 0, 0},
		{"single", Series{5}, 5, 0},
		{"symmetric", Series{-1, 1}, 0, 1},
		{"constant", Series{3, 3, 3, 3}, 3, 0},
		{"ramp", Series{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.Mean(); !almostEqual(got, tt.mean, 1e-12) {
				t.Errorf("Mean() = %v, want %v", got, tt.mean)
			}
			if got := tt.s.Stddev(); !almostEqual(got, tt.std, 1e-12) {
				t.Errorf("Stddev() = %v, want %v", got, tt.std)
			}
		})
	}
}

func TestZNormalize(t *testing.T) {
	s := Series{1, 2, 3, 4, 5, 6, 7, 8}
	s.ZNormalize()
	if !s.IsZNormalized(1e-9) {
		t.Fatalf("series not z-normalized: mean=%v std=%v", s.Mean(), s.Stddev())
	}
}

func TestZNormalizeConstant(t *testing.T) {
	s := Series{7, 7, 7, 7}
	s.ZNormalize()
	for i, v := range s {
		if v != 0 {
			t.Fatalf("constant series should normalize to zeros, got s[%d]=%v", i, v)
		}
	}
	if !s.IsZNormalized(1e-9) {
		t.Fatal("all-zero series should count as z-normalized")
	}
}

func TestZNormalizeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		s := make(Series, len(vals))
		for i, v := range vals {
			// Constrain to finite, sane magnitudes.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s[i] = math.Mod(v, 1e6)
		}
		s.ZNormalize()
		return s.IsZNormalized(1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestED(t *testing.T) {
	a := Series{0, 0, 0}
	b := Series{3, 4, 0}
	d, err := ED(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 5, 1e-12) {
		t.Errorf("ED = %v, want 5", d)
	}
	if _, err := ED(a, Series{1}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestSquaredEDEarlyAbandon(t *testing.T) {
	a := Series{0, 0, 0, 0}
	b := Series{1, 1, 1, 1}
	// Full distance is 4.
	if d, ok := SquaredEDEarlyAbandon(a, b, 10); !ok || !almostEqual(d, 4, 1e-12) {
		t.Errorf("expected complete computation, got d=%v ok=%v", d, ok)
	}
	if _, ok := SquaredEDEarlyAbandon(a, b, 2.5); ok {
		t.Error("expected early abandon with limit 2.5")
	}
}

func TestEarlyAbandonAgreesWithED(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		a := make(Series, 64)
		b := make(Series, 64)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want, _ := SquaredED(a, b)
		got, ok := SquaredEDEarlyAbandon(a, b, math.Inf(1))
		if !ok || !almostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: early abandon with inf limit disagrees: %v vs %v", trial, got, want)
		}
		// With limit exactly the true distance it must complete.
		if _, ok := SquaredEDEarlyAbandon(a, b, want); !ok {
			t.Fatalf("trial %d: abandoned although limit == true distance", trial)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		s := make(Series, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		buf := AppendEncode(nil, s)
		if len(buf) != EncodedSize(n) {
			t.Fatalf("encoded size %d, want %d", len(buf), EncodedSize(n))
		}
		got, err := Decode(buf, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s {
			if s[i] != got[i] {
				t.Fatalf("round trip mismatch at %d: %v vs %v", i, s[i], got[i])
			}
		}
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := Decode(make([]byte, 7), 1); err == nil {
		t.Fatal("expected error for short buffer")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	const n = 32
	const count = 100
	rng := rand.New(rand.NewSource(99))
	var buf bytes.Buffer
	w := NewWriter(&buf, n)
	var written []Series
	for i := 0; i < count; i++ {
		s := make(Series, n)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
		written = append(written, s)
	}
	if w.Count() != count {
		t.Fatalf("writer count %d, want %d", w.Count(), count)
	}
	r := NewReader(&buf, n)
	for i := 0; i < count; i++ {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		for j := range got {
			if got[j] != written[i][j] {
				t.Fatalf("series %d value %d mismatch", i, j)
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriterLengthMismatch(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, 4)
	if err := w.Write(Series{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestReaderTruncated(t *testing.T) {
	raw := AppendEncode(nil, Series{1, 2, 3, 4})
	r := NewReader(bytes.NewReader(raw[:len(raw)-3]), 4)
	if _, err := r.Next(); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestNextInto(t *testing.T) {
	raw := AppendEncode(nil, Series{1, 2, 3})
	raw = AppendEncode(raw, Series{4, 5, 6})
	r := NewReader(bytes.NewReader(raw), 3)
	dst := make(Series, 3)
	if err := r.NextInto(dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("unexpected first series %v", dst)
	}
	if err := r.NextInto(dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 4 || dst[2] != 6 {
		t.Fatalf("unexpected second series %v", dst)
	}
	if err := r.NextInto(dst); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if err := r.NextInto(make(Series, 2)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestClone(t *testing.T) {
	s := Series{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone must not alias the original")
	}
}
