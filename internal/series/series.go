// Package series defines the data series model used throughout Coconut:
// fixed-length sequences of float64 values, z-normalization, Euclidean
// distance (plain and early-abandoning), and a compact binary on-disk
// format for large series collections.
//
// Terminology follows the paper: a data series s = {r1, ..., rn} is an
// ordered set of recordings. All indexes in this repository operate on
// z-normalized series compared under Euclidean distance (ED).
package series

import (
	"errors"
	"fmt"
	"math"
)

// Series is a single data series: an ordered sequence of values. The
// position of each value is its index; this matches the paper's model where
// recordings are taken at fixed intervals.
type Series []float64

// ErrLengthMismatch is returned by distance functions when the two series
// have different lengths. ED is only defined on aligned, equal-length series
// (alignment and length normalization are pre-processing steps, §2).
var ErrLengthMismatch = errors.New("series: length mismatch")

// Clone returns a deep copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Mean returns the arithmetic mean of s. It returns 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Stddev returns the population standard deviation of s.
func (s Series) Stddev() float64 {
	if len(s) == 0 {
		return 0
	}
	mean := s.Mean()
	acc := 0.0
	for _, v := range s {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// epsilonStd guards against division by ~zero when a series is constant.
// A constant series z-normalizes to the all-zero series, which is the
// convention used by the iSAX line of work.
const epsilonStd = 1e-9

// ZNormalize z-normalizes s in place (subtract mean, divide by standard
// deviation) and returns s for chaining. Constant series become all zeros.
//
// Minimizing ED on z-normalized data is equivalent to maximizing Pearson
// correlation (§2), which is why every dataset in the paper is z-normalized.
func (s Series) ZNormalize() Series {
	mean := s.Mean()
	std := s.Stddev()
	if std < epsilonStd {
		for i := range s {
			s[i] = 0
		}
		return s
	}
	inv := 1 / std
	for i := range s {
		s[i] = (s[i] - mean) * inv
	}
	return s
}

// IsZNormalized reports whether s has approximately zero mean and unit
// standard deviation (or is all-zero), within tol.
func (s Series) IsZNormalized(tol float64) bool {
	if len(s) == 0 {
		return true
	}
	mean := s.Mean()
	std := s.Stddev()
	if math.Abs(mean) > tol {
		return false
	}
	return math.Abs(std-1) <= tol || std < epsilonStd
}

// SquaredED returns the squared Euclidean distance between a and b.
//
// The loop is 4-way unrolled into blocks with a scalar tail. A single
// accumulator is threaded through the unrolled adds in index order, so the
// result is bit-identical to the naive one-element-at-a-time loop — the
// unroll only removes loop and bounds-check overhead, never reassociates
// the floating-point sum.
func SquaredED(a, b Series) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	return AddSquaredED(0, a, b), nil
}

// AddSquaredED returns acc plus the squared Euclidean distance between a
// and b, accumulating term by term in index order (blocked/unrolled like
// SquaredED, bit-identical to a scalar loop extending acc). It is the
// building block for progressive lower bounds that sharpen a partial
// squared distance level by level (the Vertical index). a and b must have
// the same length; AddSquaredED panics otherwise.
func AddSquaredED(acc float64, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("series: AddSquaredED length mismatch: %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // bounds-check elimination hint for the paired loads
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		acc += d0 * d0
		acc += d1 * d1
		acc += d2 * d2
		acc += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}

// ED returns the Euclidean distance between a and b.
func ED(a, b Series) (float64, error) {
	sq, err := SquaredED(a, b)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(sq), nil
}

// SquaredEDEarlyAbandon computes the squared ED between a and b but gives up
// as soon as the partial sum exceeds limit, returning (partial, false).
// When the true squared distance is within limit it returns (dist, true).
//
// Early abandoning is the standard optimization in exact data series search:
// once a best-so-far answer exists, most candidate distances only need to be
// computed until they exceed it.
//
// The loop is 4-way unrolled and the abandon check runs once per block
// rather than once per element. Partial sums of squares are monotonically
// non-decreasing, so checking at block boundaries abandons if and only if
// the per-element loop would: the returned flag is identical, and when the
// computation completes the returned sum is bit-identical to the scalar
// loop (single accumulator, index order — same rounding). Only the partial
// value reported on abandonment may differ (it is a block boundary's sum,
// not the first offending prefix); callers use it for diagnostics only.
//
// a and b must have the same length. Unlike SquaredED's error return, a
// mismatch here PANICS: the function sits on query hot paths whose callers
// already validated lengths against the index configuration, so a mismatch
// is a programming error, not an input error. (It previously truncated to
// the shorter series silently, which could understate distances.)
func SquaredEDEarlyAbandon(a, b Series, limit float64) (float64, bool) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("series: SquaredEDEarlyAbandon length mismatch: %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // bounds-check elimination hint for the paired loads
	acc := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		acc += d0 * d0
		acc += d1 * d1
		acc += d2 * d2
		acc += d3 * d3
		if acc > limit {
			return acc, false
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		acc += d * d
	}
	if acc > limit {
		return acc, false
	}
	return acc, true
}
