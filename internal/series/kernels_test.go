package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// scalarSquaredED is the pre-blocking reference implementation: one element
// at a time, one accumulator. The blocked kernels must be bit-identical.
func scalarSquaredED(a, b Series) float64 {
	acc := 0.0
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}

// scalarSquaredEDEarlyAbandon is the pre-blocking reference: check after
// every element.
func scalarSquaredEDEarlyAbandon(a, b Series, limit float64) (float64, bool) {
	acc := 0.0
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
		if acc > limit {
			return acc, false
		}
	}
	return acc, true
}

// TestBlockedEDMatchesScalar fuzzes the blocked kernels against the scalar
// references across lengths (covering empty, sub-block, and ragged tails)
// and abandon limits. The full sum must be BIT-identical (same accumulator,
// same order), and the abandon flag must agree exactly — monotone partial
// sums make block-boundary checks equivalent to per-element checks.
func TestBlockedEDMatchesScalar(t *testing.T) {
	f := func(seed int64, nRaw uint16, limitScale float64) bool {
		n := int(nRaw % 300) // 0..299: exercises all tail residues
		rng := rand.New(rand.NewSource(seed))
		a := make(Series, n)
		b := make(Series, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want := scalarSquaredED(a, b)
		got, err := SquaredED(a, b)
		if err != nil || got != want {
			return false
		}
		if AddSquaredED(0, a, b) != want {
			return false
		}
		// Accumulating on top of a prior partial must also match the scalar
		// extension of that partial.
		prior := math.Abs(rng.NormFloat64())
		accScalar := prior
		for i := range a {
			d := a[i] - b[i]
			accScalar += d * d
		}
		if AddSquaredED(prior, a, b) != accScalar {
			return false
		}
		// Abandon flag equivalence at limits below, at, and above the sum.
		limits := []float64{
			0,
			want * math.Abs(limitScale-math.Trunc(limitScale)), // somewhere inside
			want, // exactly the sum: must complete (strict > abandons)
			want * 1.5,
			math.Inf(1),
		}
		for _, limit := range limits {
			gotSum, gotOK := SquaredEDEarlyAbandon(a, b, limit)
			_, wantOK := scalarSquaredEDEarlyAbandon(a, b, limit)
			if gotOK != wantOK {
				return false
			}
			// Completed computations return the exact scalar sum.
			if gotOK && gotSum != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEarlyAbandonLengthMismatchPanics pins the contract change: the
// early-abandon kernel no longer truncates to the shorter series — a length
// mismatch is a programming error and panics, consistent with SquaredED's
// refusal (which reports ErrLengthMismatch).
func TestEarlyAbandonLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	SquaredEDEarlyAbandon(Series{1, 2, 3}, Series{1, 2}, math.Inf(1))
}

// TestAddSquaredEDLengthMismatchPanics pins the same contract for the
// accumulator kernel.
func TestAddSquaredEDLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	AddSquaredED(0, []float64{1, 2, 3}, []float64{1})
}
