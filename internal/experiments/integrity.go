package experiments

import (
	"fmt"
	"time"

	"github.com/coconut-db/coconut/internal/core"
)

// checksumGate is the acceptance bound on the integrity tax: the
// checksummed read path must keep at least this fraction of the
// unchecksummed exact-query throughput (<= 5% regression).
const checksumGate = 0.95

// ChecksumOverhead measures what end-to-end integrity costs: the same
// Coconut-Tree is bulk-loaded and exact-queried twice, once in the legacy
// unchecksummed format and once with per-block CRC32-C on every page plus
// the raw-dataset record sidecar. The table reports build wall, index
// size, and query throughput for both, and the figure fails outright if
// checksummed query throughput drops below 95% of the legacy run — the
// gate that keeps "verify every byte you read" affordable enough to be
// the default.
//
// Each mode's query pass runs three times and keeps the best wall clock,
// so the gate compares the modes' intrinsic cost rather than scheduler
// noise.
func ChecksumOverhead(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "ChecksumOverhead",
		Title:  "Block-checksum overhead: build + exact-query throughput, checksums on vs off",
		Header: []string{"checksums", "build", "index bytes", "queries", "best wall", "queries/s", "vs off"},
	}
	type mode struct {
		label     string
		checksums bool
	}
	modes := []mode{{"off", false}, {"on", true}}
	var baseQPS float64
	for _, m := range modes {
		e, err := newEnv(sc, "randomwalk", sc.BaseCount)
		if err != nil {
			return nil, err
		}
		opt, err := e.coreOptions(false, budgetFor(sc, sc.BaseCount, 0.25))
		if err != nil {
			return nil, err
		}
		opt.Checksums = m.checksums
		buildStart := time.Now()
		ix, err := core.BuildTree(opt)
		if err != nil {
			return nil, err
		}
		buildWall := time.Since(buildStart)
		qs := e.queries(sc.Queries * 2)
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for _, q := range qs {
				if _, err := ix.ExactSearch(q, 1); err != nil {
					ix.Close()
					return nil, err
				}
			}
			wall := time.Since(start)
			if best == 0 || wall < best {
				best = wall
			}
		}
		size := ix.SizeBytes()
		if err := ix.Close(); err != nil {
			return nil, err
		}
		qps := float64(len(qs)) / best.Seconds()
		rel := "1.00x"
		if m.checksums {
			rel = fmt.Sprintf("%.2fx", qps/baseQPS)
			if qps < checksumGate*baseQPS {
				return nil, fmt.Errorf(
					"experiments: checksummed exact-query throughput %.0f/s is below %.0f%% of the unchecksummed %.0f/s",
					qps, checksumGate*100, baseQPS)
			}
		} else {
			baseQPS = qps
		}
		t.Add(m.label, ms(buildWall), fmt.Sprint(size), fmt.Sprint(len(qs)),
			ms(best), fmt.Sprintf("%.0f", qps), rel)
	}
	return t, nil
}
