package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyScale keeps the full-suite integration test fast.
func tinyScale() Scale {
	return Scale{
		SeriesLen: 64,
		Segments:  8,
		CardBits:  8,
		LeafCap:   32,
		BaseCount: 600,
		Queries:   4,
		Seed:      42,
	}
}

func TestAllFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	tables, err := All(tinyScale())
	if err != nil {
		t.Fatalf("experiment failed after %d tables: %v", len(tables), err)
	}
	wantIDs := []string{
		"Fig7", "Fig8a", "Fig8b", "Fig8c", "Fig8d", "Fig8e", "Fig8f",
		"Fig9a", "Fig9b", "Fig9c", "Fig9d", "Fig9e", "Fig9f",
		"Fig10a", "Fig10b", "Fig10c", "SizeTable",
	}
	if len(tables) != len(wantIDs) {
		t.Fatalf("got %d tables, want %d", len(tables), len(wantIDs))
	}
	for i, tb := range tables {
		if tb.ID != wantIDs[i] {
			t.Errorf("table %d id = %s, want %s", i, tb.ID, wantIDs[i])
		}
		if len(tb.Rows) == 0 {
			t.Errorf("table %s has no rows", tb.ID)
		}
		var buf bytes.Buffer
		tb.Print(&buf)
		if !strings.Contains(buf.String(), tb.ID) {
			t.Errorf("printed table missing ID header")
		}
	}
}

// parse "12.3ms" back to a float for shape assertions.
func parseMs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("bad ms cell %q: %v", s, err)
	}
	return v
}

func TestFig8cShape(t *testing.T) {
	// The load-bearing claim of §3.2: median-split leaves are nearly full,
	// prefix-split leaves nearly empty, and the materialized prefix index
	// is much larger than the materialized median index.
	tb, err := Fig8cSpace(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string][]string{}
	for _, row := range tb.Rows {
		cells[row[0]] = row
	}
	fill := func(name string) float64 {
		row, ok := cells[name]
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
		if err != nil {
			t.Fatalf("bad fill cell %q", row[4])
		}
		return v
	}
	size := func(name string) float64 {
		row := cells[name]
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "MB"), 64)
		if err != nil {
			t.Fatalf("bad size cell %q", row[1])
		}
		return v
	}
	if fill("Coconut-Tree-Full") < 2*fill("ADSFull") {
		t.Errorf("median-split fill (%v%%) should dwarf prefix-split fill (%v%%)",
			fill("Coconut-Tree-Full"), fill("ADSFull"))
	}
	if size("Coconut-Tree-Full") >= size("ADSFull") {
		t.Errorf("materialized Coconut-Tree (%vMB) should be smaller than ADSFull (%vMB)",
			size("Coconut-Tree-Full"), size("ADSFull"))
	}
	if size("Coconut-Tree") >= size("Coconut-Tree-Full") {
		t.Error("non-materialized index should be far smaller than materialized")
	}
}

func TestFig9dShape(t *testing.T) {
	// Approximate answers from Coconut with radius 10 must beat radius 0,
	// and the radius-10 answers should win against ADSFull for most
	// queries (paper: 94%).
	sc := tinyScale()
	sc.Queries = 10
	tb, err := Fig9dApproxQuality(sc)
	if err != nil {
		t.Fatal(err)
	}
	var r0, r10 float64
	for _, row := range tb.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		switch row[0] {
		case "CTree(r=0)":
			r0 = v
		case "CTree(r=10)":
			r10 = v
		}
	}
	if r10 > r0+1e-9 {
		t.Errorf("radius 10 mean ED %v should not exceed radius 0 %v", r10, r0)
	}
}

func TestCostModelArithmetic(t *testing.T) {
	c := Cost{Wall: time.Millisecond, Sim: 2 * time.Millisecond}
	if c.Total() != 3*time.Millisecond {
		t.Fatalf("Total = %v", c.Total())
	}
	if !strings.Contains(c.String(), "io=") {
		t.Fatal("Cost.String missing io field")
	}
}

func TestScaleHelpers(t *testing.T) {
	sc := DefaultScale()
	if sc.RawBytes(10) != int64(10*sc.SeriesLen*8) {
		t.Fatal("RawBytes wrong")
	}
	if _, err := sc.summarizer(); err != nil {
		t.Fatal(err)
	}
	full := FullScale()
	if full.BaseCount <= sc.BaseCount {
		t.Fatal("FullScale should be bigger")
	}
}
