package experiments

import (
	"fmt"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/lsm"
)

// Reopen regenerates the durable-lifecycle comparison: for each index
// variant, the cost of serving the first exact query by re-bulk-loading
// the index from the raw dataset (the only option before manifests) vs
// reopening it from the committed manifest. Both paths end with the same
// exact query, and the answers must match bit for bit — reopening is a
// pure I/O savings, not an approximation. The LSM index is reopened with
// several runs on disk so the run-metadata reload (key arrays from run
// files, never the raw dataset) is what is being measured.
func Reopen(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Reopen",
		Title:  fmt.Sprintf("first exact query, re-bulk-load vs reopen from manifest (N=%d)", sc.BaseCount),
		Header: []string{"variant", "rebuild+query", "reopen+query", "speedup", "reopen MB read"},
	}
	e, err := newEnv(sc, "randomwalk", sc.BaseCount)
	if err != nil {
		return nil, err
	}
	q := e.queries(1)[0]
	budget := budgetFor(sc, sc.BaseCount, 0.25)

	type answer struct {
		pos  int64
		dist float64
	}
	addRow := func(variant string, build, open Cost, built, reopened answer) error {
		if built != reopened {
			return fmt.Errorf("reopen %s: answers diverge: built (#%d, %v), reopened (#%d, %v)",
				variant, built.pos, built.dist, reopened.pos, reopened.dist)
		}
		speedup := float64(build.Total()) / float64(open.Total())
		t.Add(variant, ms(build.Total()), ms(open.Total()),
			fmt.Sprintf("%.1fx", speedup), mb(open.IO.BytesRead))
		return nil
	}

	// Coconut-Tree and Coconut-Trie: build+query vs open+query.
	opt, err := e.coreOptions(false, budget)
	if err != nil {
		return nil, err
	}
	{
		var built, reopened answer
		buildCost, err := measure(e.fs, func() error {
			ix, err := core.BuildTree(opt)
			if err != nil {
				return err
			}
			defer ix.Close()
			res, err := ix.ExactSearch(q, 1)
			built = answer{res.Pos, res.Dist}
			return err
		})
		if err != nil {
			return nil, err
		}
		openCost, err := measure(e.fs, func() error {
			ix, err := core.OpenTree(opt)
			if err != nil {
				return err
			}
			defer ix.Close()
			res, err := ix.ExactSearch(q, 1)
			reopened = answer{res.Pos, res.Dist}
			return err
		})
		if err != nil {
			return nil, err
		}
		if err := addRow("Coconut-Tree", buildCost, openCost, built, reopened); err != nil {
			return nil, err
		}
	}
	{
		var built, reopened answer
		buildCost, err := measure(e.fs, func() error {
			ix, err := core.BuildTrie(opt)
			if err != nil {
				return err
			}
			defer ix.Close()
			res, err := ix.ExactSearch(q, 0)
			built = answer{res.Pos, res.Dist}
			return err
		})
		if err != nil {
			return nil, err
		}
		openCost, err := measure(e.fs, func() error {
			ix, err := core.OpenTrie(opt)
			if err != nil {
				return err
			}
			defer ix.Close()
			res, err := ix.ExactSearch(q, 0)
			reopened = answer{res.Pos, res.Dist}
			return err
		})
		if err != nil {
			return nil, err
		}
		if err := addRow("Coconut-Trie", buildCost, openCost, built, reopened); err != nil {
			return nil, err
		}
	}

	// Coconut-LSM: bulk load, then stream enough appends to leave several
	// runs behind, so the reopen reloads real run metadata.
	lopt := lsm.Options{
		FS: e.fs, Name: "coconut-lsm", S: opt.S, RawName: rawName,
		MemBudgetBytes: budget, Workers: sc.Workers, QueryWorkers: sc.QueryWorkers,
	}
	extra := dataset.Generate(dataset.NewRandomWalk(), sc.BaseCount/10+1, sc.SeriesLen, sc.Seed+7)
	var built answer
	var runs int
	buildCost, err := measure(e.fs, func() error {
		ix, err := lsm.Build(lopt)
		if err != nil {
			return err
		}
		defer ix.Close()
		batch := len(extra)/4 + 1
		for lo := 0; lo < len(extra); lo += batch {
			hi := lo + batch
			if hi > len(extra) {
				hi = len(extra)
			}
			if err := ix.Append(extra[lo:hi]); err != nil {
				return err
			}
			if err := ix.Flush(); err != nil {
				return err
			}
		}
		if err := ix.Sync(); err != nil {
			return err
		}
		runs = ix.NumRuns()
		res, err := ix.ExactSearch(q)
		built = answer{res.Pos, res.Dist}
		return err
	})
	if err != nil {
		return nil, err
	}
	var reopened answer
	openCost, err := measure(e.fs, func() error {
		ix, err := lsm.Open(lopt)
		if err != nil {
			return err
		}
		defer ix.Close()
		if ix.NumRuns() != runs {
			return fmt.Errorf("reopened %d runs, want %d", ix.NumRuns(), runs)
		}
		res, err := ix.ExactSearch(q)
		reopened = answer{res.Pos, res.Dist}
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := addRow(fmt.Sprintf("Coconut-LSM (%d runs)", runs), buildCost, openCost, built, reopened); err != nil {
		return nil, err
	}
	return t, nil
}
