package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/summary"
)

// DistanceKernels measures the scalar query kernels the SIMS hot loop is
// made of — the per-key lower bound and the verification Euclidean
// distance — comparing the table-driven / blocked implementations against
// the pre-overhaul paths (per-key SAX decode + breakpoint recomputation +
// sqrt; one-element-at-a-time ED). The rows track the per-PR perf
// trajectory in BENCH_pr4.json: the "speedup" column is this machine's
// ratio of the legacy path to the current one on identical inputs.
func DistanceKernels(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "DistanceKernels",
		Title:  "Distance kernels: per-query MinDist table and blocked ED",
		Header: []string{"kernel", "n", "total", "ns/item", "speedup"},
	}
	s, err := sc.summarizer()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	gen := dataset.NewRandomWalk()
	mk := func() series.Series {
		out := make(series.Series, sc.SeriesLen)
		gen.Generate(rng, out)
		return out
	}

	// --- per-key lower bound: MinDistTable vs decode-and-recompute -------
	nKeys := sc.BaseCount
	if nKeys > 50000 {
		nKeys = 50000
	}
	keys := make([]summary.Key, nKeys)
	for i := range keys {
		k, err := s.KeyOf(mk())
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	q := mk()
	qPAA, err := s.PAA(q, nil)
	if err != nil {
		return nil, err
	}
	p := s.Params()

	var tbl *summary.MinDistTable
	out := make([]float64, nKeys)
	tableTime := timeIt(func() {
		tbl = s.BuildMinDistTable(qPAA, tbl)
		tbl.KeysInto(keys, out, 1)
	})
	var legacySink float64
	legacyTime := timeIt(func() {
		for _, k := range keys {
			sax := summary.Deinterleave(k, p.Segments, p.CardBits)
			legacySink += s.MinDistPAAToSAX(qPAA, sax)
		}
	})
	addKernelRow(t, "MinDistsToKeys/table", nKeys, tableTime, legacyTime)
	addKernelRow(t, "MinDistsToKeys/legacy", nKeys, legacyTime, legacyTime)

	// --- verification ED: blocked vs scalar ------------------------------
	nPairs := 2000
	qs := make([]series.Series, nPairs)
	xs := make([]series.Series, nPairs)
	for i := range qs {
		qs[i], xs[i] = mk(), mk()
	}
	var blockedSink float64
	blockedTime := timeIt(func() {
		for i := range qs {
			sq, _ := series.SquaredED(qs[i], xs[i])
			blockedSink += sq
		}
	})
	var scalarSink float64
	scalarTime := timeIt(func() {
		for i := range qs {
			acc := 0.0
			a, b := qs[i], xs[i]
			for j := range a {
				d := a[j] - b[j]
				acc += d * d
			}
			scalarSink += acc
		}
	})
	if blockedSink != scalarSink {
		return nil, fmt.Errorf("experiments: blocked ED diverged from scalar: %v != %v", blockedSink, scalarSink)
	}
	addKernelRow(t, "SquaredED/blocked", nPairs, blockedTime, scalarTime)
	addKernelRow(t, "SquaredED/scalar", nPairs, scalarTime, scalarTime)

	// --- early abandon under a realistic bound ---------------------------
	// Use the median pairwise squared distance as the limit: roughly half
	// the pairs abandon, the regime exact search lives in.
	limit := blockedSink / float64(nPairs) / 2
	abandoned := 0
	eaTime := timeIt(func() {
		for i := range qs {
			if _, ok := series.SquaredEDEarlyAbandon(qs[i], xs[i], limit); !ok {
				abandoned++
			}
		}
	})
	addKernelRow(t, fmt.Sprintf("SquaredEDEarlyAbandon/%d-abandoned", abandoned), nPairs, eaTime, scalarTime)
	return t, nil
}

func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

func addKernelRow(t *Table, name string, n int, d, baseline time.Duration) {
	perItem := float64(d.Nanoseconds()) / float64(n)
	t.Add(name, fmt.Sprint(n), ms(d), fmt.Sprintf("%.1f", perItem),
		fmt.Sprintf("%.2fx", float64(baseline)/float64(d)))
}
