package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coconut-db/coconut/internal/core"
)

// servingAdmissionCap mirrors a deliberately small coconutd
// MaxInFlightQueries so the 64-client row saturates: requests past the cap
// are shed immediately (429 in the HTTP front end) instead of queueing.
const servingAdmissionCap = 16

// servingDeadline is the per-request deadline each admitted query runs
// under, mirroring coconutd's default server timeout.
const servingDeadline = 30 * time.Second

// LatencyUnderConcurrency measures exact-query latency percentiles on one
// shared Coconut-Tree handle under coconutd's serving policy: a bounded
// admission semaphore that sheds excess load rather than queueing it, and
// a per-request deadline context on every admitted query. The table
// reports p50/p99 of answered requests and the shed rate at 1, 8, and 64
// closed-loop clients — at 64 clients the admission cap (16) saturates,
// and the figure shows shedding holding the tail of the *answered*
// requests steady instead of letting queueing push p99 out. The HTTP
// transport itself is exercised by the internal/server tests and the CI
// coconutd smoke job; this figure isolates the policy from the transport
// so the rows are machine-independent apart from CPU speed.
func LatencyUnderConcurrency(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "LatencyUnderConcurrency",
		Title:  fmt.Sprintf("Exact-query latency under concurrent clients (admission cap %d, shed past it)", servingAdmissionCap),
		Header: []string{"clients", "offered", "answered", "shed", "shed-rate", "p50", "p99"},
	}
	e, err := newEnv(sc, "randomwalk", sc.BaseCount)
	if err != nil {
		return nil, err
	}
	opt, err := e.coreOptions(false, budgetFor(sc, sc.BaseCount, 0.25))
	if err != nil {
		return nil, err
	}
	opt.QueryWorkers = 1
	ix, err := core.BuildTree(opt)
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	qs := e.queries(sc.Queries)
	offered := sc.Queries * 15
	if offered < 150 {
		offered = 150
	}
	sem := make(chan struct{}, servingAdmissionCap)
	for _, clients := range []int{1, 8, 64} {
		var (
			next, shed atomic.Int64
			mu         sync.Mutex
			lats       []time.Duration
			firstErr   error
			wg         sync.WaitGroup
		)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []time.Duration
				for {
					i := int(next.Add(1)) - 1
					if i >= offered {
						break
					}
					select {
					case sem <- struct{}{}:
					default:
						shed.Add(1)
						continue // shed: answered instantly with 429, not queued
					}
					start := time.Now()
					ctx, cancel := context.WithTimeout(context.Background(), servingDeadline)
					_, err := ix.ExactSearchCtx(ctx, qs[i%len(qs)], 1)
					cancel()
					<-sem
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					local = append(local, time.Since(start))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		if len(lats) == 0 {
			return nil, fmt.Errorf("latency figure: %d clients answered no requests", clients)
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		p50 := lats[len(lats)/2]
		p99 := lats[min(len(lats)-1, len(lats)*99/100)]
		sh := shed.Load()
		t.Add(fmt.Sprint(clients), fmt.Sprint(offered), fmt.Sprint(len(lats)),
			fmt.Sprint(sh), pct(float64(sh)/float64(offered)), ms(p50), ms(p99))
	}
	return t, nil
}
