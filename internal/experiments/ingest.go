package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/summary"
)

// IngestLatency measures per-Append latency on a Coconut-LSM index under
// sustained ingest, with compactions synchronous (inside Append, the
// pre-scheduler behavior) versus on the background pool. The table reports
// p50/p99/max Append latency and total wall time per mode — the experiment
// behind the "flat ingest latency" claim of the asynchronous write path:
// synchronous mode shows tail spikes whenever an Append triggers a cascade
// of tier merges, background mode absorbs them in the pool.
//
// The quiesced on-disk state is identical in every mode (see the lsm
// determinism tests), so the modes are directly comparable.
func IngestLatency(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "IngestLatency",
		Title:  "LSM Append latency under sustained ingest: synchronous vs background compaction",
		Header: []string{"compaction", "appends", "p50", "p99", "max", "total", "runs"},
	}
	type mode struct {
		label      string
		background bool
	}
	modes := []mode{
		{"synchronous", false},
		{"background", true},
	}
	s, err := sc.summarizer()
	if err != nil {
		return nil, err
	}
	batch := sc.BaseCount / 100
	if batch < 10 {
		batch = 10
	}
	for _, m := range modes {
		e, err := newEnv(sc, "randomwalk", sc.BaseCount)
		if err != nil {
			return nil, err
		}
		ix, err := lsm.Build(lsm.Options{
			FS:      e.fs,
			Name:    "lsm",
			S:       s,
			RawName: rawName,
			// A memtable of ~4 batches: the stream below flushes often and
			// compactions cascade across several tiers.
			MemBudgetBytes:       int64(4*batch) * int64(summary.KeySize+8),
			Fanout:               3,
			Workers:              sc.Workers,
			QueryWorkers:         sc.QueryWorkers,
			BackgroundCompaction: m.background,
			CompactionWorkers:    sc.CompactionWorkers,
		})
		if err != nil {
			return nil, err
		}
		data := streamFor(e, sc)
		lats := make([]time.Duration, 0, len(data)/batch+1)
		start := time.Now()
		for lo := 0; lo < len(data); lo += batch {
			hi := lo + batch
			if hi > len(data) {
				hi = len(data)
			}
			t0 := time.Now()
			if err := ix.Append(data[lo:hi]); err != nil {
				ix.Close()
				return nil, err
			}
			lats = append(lats, time.Since(t0))
		}
		if err := ix.Sync(); err != nil {
			ix.Close()
			return nil, err
		}
		total := time.Since(start)
		runs := ix.NumRuns()
		if err := ix.Close(); err != nil {
			return nil, err
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		t.Add(m.label, fmt.Sprint(len(lats)),
			ms(Percentile(lats, 0.50)), ms(Percentile(lats, 0.99)),
			ms(Percentile(lats, 1.0)), ms(total), fmt.Sprint(runs))
	}
	return t, nil
}

// streamFor generates the ingest stream: as many series as the base
// dataset, drawn from the same family with a shifted seed.
func streamFor(e *env, sc Scale) []Series {
	gen, _ := dataset.ByName(e.kind)
	return dataset.Generate(gen, sc.BaseCount, sc.SeriesLen, sc.Seed+500)
}

// Percentile picks the p-quantile of ascending-sorted latencies
// (nearest-rank). It is the single quantile definition shared by the
// IngestLatency figure, BenchmarkIngestLatency, and `coconut stream`.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
