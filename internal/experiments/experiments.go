// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) at a configurable scale. Each figure has one function
// returning a Table whose rows mirror the series the paper plots; the
// bench harness (bench_test.go) and cmd/benchrunner print them.
//
// Times are reported two ways: simulated device time (the HDD cost model
// applied to the exact I/O trace — the quantity the paper's analysis is
// about) and wall-clock CPU time. Shapes are judged on total = both.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/dstree"
	"github.com/coconut-db/coconut/internal/isax"
	"github.com/coconut-db/coconut/internal/rtree"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
	"github.com/coconut-db/coconut/internal/vertical"
)

// Series aliases the data series type for the figure implementations.
type Series = series.Series

// Scale sizes an experiment run. The paper's absolute sizes (100 GB+) are
// scaled down; every comparison keeps the N/M and N/B ratios that drive the
// figures.
type Scale struct {
	// SeriesLen is the data series length (paper: 256).
	SeriesLen int
	// Segments and CardBits fix the summarization (paper: 16 x 8).
	Segments, CardBits int
	// LeafCap is the leaf size in records (paper: 2000).
	LeafCap int
	// BaseCount is N at scale factor 1.
	BaseCount int
	// Queries is the number of queries per workload (paper: 100).
	Queries int
	// Seed drives all generators.
	Seed int64
	// Workers is the construction worker count passed to the builders.
	// Defaults to 1 so the simulated I/O traces (run counts, merge passes)
	// are identical on every machine; cmd/benchrunner -workers raises it.
	Workers int
	// QueryWorkers is the per-query fan-out passed to the indexes. It
	// defaults to 1: search answers are identical for any value, but the
	// Visited* counters and I/O interleavings the figures report are only
	// machine-independent with a serial verification scan. The default
	// also serializes the (deterministic, counter-free) lower-bound pass —
	// trading some exact-query wall time for traces that are pure
	// functions of the Scale, the same convention as Workers above;
	// cmd/benchrunner -query-workers 0 restores all-core queries.
	QueryWorkers int
	// CompactionWorkers sizes the LSM background compaction pool in the
	// ingest-latency experiment (cmd/benchrunner -compaction-workers);
	// 0 takes the lsm default.
	CompactionWorkers int
	// Dataset overrides the generic random-walk workload with another
	// generator family (cmd/benchrunner -dataset). Figures that pin a
	// specific dataset — the Fig7 histograms, the astronomy/seismic
	// figures, the skewed compression figure — keep their pin; empty
	// means randomwalk.
	Dataset string
}

// DefaultScale is sized for `go test -bench` runs (seconds per figure).
func DefaultScale() Scale {
	return Scale{
		SeriesLen:    128,
		Segments:     16,
		CardBits:     8,
		LeafCap:      100,
		BaseCount:    8000,
		Queries:      20,
		Seed:         42,
		Workers:      1,
		QueryWorkers: 1,
	}
}

// FullScale is sized for cmd/benchrunner (minutes per figure).
func FullScale() Scale {
	s := DefaultScale()
	s.SeriesLen = 256
	s.BaseCount = 40000
	s.Queries = 100
	return s
}

// RawBytes returns the dataset size in bytes for count series.
func (sc Scale) RawBytes(count int) int64 {
	return int64(count) * int64(series.EncodedSize(sc.SeriesLen))
}

func (sc Scale) summarizer() (*summary.Summarizer, error) {
	return summary.NewSummarizer(summary.Params{
		SeriesLen: sc.SeriesLen, Segments: sc.Segments, CardBits: sc.CardBits,
	})
}

// Table is one regenerated figure/table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
}

// Cost is the measured expense of a phase.
type Cost struct {
	// Wall is the CPU wall-clock time.
	Wall time.Duration
	// IO is the device traffic.
	IO storage.Snapshot
	// Sim is the HDD cost model applied to IO.
	Sim time.Duration
}

// Total combines simulated device time and CPU time — the closest analog of
// the paper's end-to-end measurements.
func (c Cost) Total() time.Duration { return c.Wall + c.Sim }

func (c Cost) String() string {
	return fmt.Sprintf("%v (io=%v cpu=%v seeks=%d)", c.Total(), c.Sim, c.Wall, c.IO.Seeks())
}

var hdd = storage.DefaultHDD()

// measure runs fn against fs and captures wall time plus the I/O delta.
func measure(fs *storage.MemFS, fn func() error) (Cost, error) {
	before := fs.Stats().Snapshot()
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	io := fs.Stats().Snapshot().Sub(before)
	return Cost{Wall: wall, IO: io, Sim: hdd.Time(io)}, err
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

func pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

func mb(b int64) string { return fmt.Sprintf("%.2fMB", float64(b)/1e6) }

// env bundles a fresh device with a generated dataset.
type env struct {
	fs    *storage.MemFS
	sc    Scale
	count int
	kind  string
	data  []series.Series // in-memory copy for verification; nil unless asked
}

const rawName = "raw.bin"

func newEnv(sc Scale, kind string, count int) (*env, error) {
	// "randomwalk" marks the generic synthetic workload; Scale.Dataset
	// redirects it fleet-wide without touching figures that pin a
	// specific dataset family.
	if kind == "randomwalk" && sc.Dataset != "" {
		kind = sc.Dataset
	}
	gen, err := dataset.ByName(kind)
	if err != nil {
		return nil, err
	}
	fs := storage.NewMemFS()
	if _, err := dataset.WriteFile(fs, rawName, gen, count, sc.SeriesLen, sc.Seed); err != nil {
		return nil, err
	}
	fs.Stats().Reset()
	return &env{fs: fs, sc: sc, count: count, kind: kind}, nil
}

func (e *env) queries(n int) []series.Series {
	gen, _ := dataset.ByName(e.kind)
	return dataset.Queries(gen, n, e.sc.SeriesLen, e.sc.Seed+1000)
}

// --- builders -------------------------------------------------------------

func (e *env) coreOptions(mat bool, budget int64) (core.Options, error) {
	s, err := e.sc.summarizer()
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		FS:             e.fs,
		Name:           "coconut",
		S:              s,
		RawName:        rawName,
		Materialized:   mat,
		LeafCap:        e.sc.LeafCap,
		MemBudgetBytes: budget,
		Workers:        e.sc.Workers,
		QueryWorkers:   e.sc.QueryWorkers,
	}, nil
}

func (e *env) buildCTree(mat bool, budget int64) (*core.TreeIndex, Cost, error) {
	opt, err := e.coreOptions(mat, budget)
	if err != nil {
		return nil, Cost{}, err
	}
	var ix *core.TreeIndex
	cost, err := measure(e.fs, func() error {
		var err error
		ix, err = core.BuildTree(opt)
		return err
	})
	return ix, cost, err
}

func (e *env) buildCTrie(mat bool, budget int64) (*core.TrieIndex, Cost, error) {
	opt, err := e.coreOptions(mat, budget)
	if err != nil {
		return nil, Cost{}, err
	}
	var ix *core.TrieIndex
	cost, err := measure(e.fs, func() error {
		var err error
		ix, err = core.BuildTrie(opt)
		return err
	})
	return ix, cost, err
}

func (e *env) buildISAX(mode isax.Mode, budget int64) (*isax.Index, Cost, error) {
	s, err := e.sc.summarizer()
	if err != nil {
		return nil, Cost{}, err
	}
	opt := isax.Options{
		FS:             e.fs,
		Name:           "isax",
		S:              s,
		RawName:        rawName,
		Mode:           mode,
		LeafCap:        e.sc.LeafCap,
		MemBudgetBytes: budget,
	}
	var ix *isax.Index
	cost, err := measure(e.fs, func() error {
		var err error
		ix, err = isax.Build(opt)
		return err
	})
	return ix, cost, err
}

func (e *env) buildRTree(mat bool) (*rtree.Tree, Cost, error) {
	s, err := e.sc.summarizer()
	if err != nil {
		return nil, Cost{}, err
	}
	opt := rtree.Options{
		FS:           e.fs,
		Name:         "rtree",
		S:            s,
		RawName:      rawName,
		LeafCap:      e.sc.LeafCap,
		Materialized: mat,
	}
	var t *rtree.Tree
	cost, err := measure(e.fs, func() error {
		var err error
		t, err = rtree.Build(opt)
		return err
	})
	return t, cost, err
}

func (e *env) buildVertical() (*vertical.Index, Cost, error) {
	opt := vertical.Options{
		FS:        e.fs,
		Name:      "vert",
		RawName:   rawName,
		SeriesLen: e.sc.SeriesLen,
		Levels:    0, // all levels, as in the paper's stepwise construction
	}
	var ix *vertical.Index
	cost, err := measure(e.fs, func() error {
		var err error
		ix, err = vertical.Build(opt)
		return err
	})
	return ix, cost, err
}

func (e *env) buildDSTree() (*dstree.Tree, Cost, error) {
	opt := dstree.Options{
		FS:        e.fs,
		Name:      "ds",
		RawName:   rawName,
		SeriesLen: e.sc.SeriesLen,
		LeafCap:   e.sc.LeafCap,
	}
	var t *dstree.Tree
	cost, err := measure(e.fs, func() error {
		var err error
		t, err = dstree.Build(opt)
		return err
	})
	return t, cost, err
}
