package experiments

import (
	"fmt"
	"time"

	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
)

const (
	// compressionRatioGate is the acceptance bar for the run codec: the
	// flat 24-byte-record layout must shrink by at least this factor on
	// the skewed (clustered-shapes) workload, where front-coded sorted
	// invSAX keys show their real ratio.
	compressionRatioGate = 3.0
	// compressionQPSGate is the acceptance bar for the warm read path:
	// with a cache large enough to hold every decoded block, compressed
	// approximate-query throughput must stay within 10% of the in-memory
	// flat layout.
	compressionQPSGate = 0.90
	// compressionRounds repeats the query batch inside each timed pass so
	// the measurement stays above timer noise at the tiny CI scale.
	compressionRounds = 4
)

// CompressedRuns measures what block compression buys and what it costs on
// a Coconut-LSM over the skewed dataset: the on-disk key-storage ratio of
// the front-coded run layout versus the flat 24-byte-record layout, and
// warm approximate-query throughput as the shared block cache shrinks from
// "everything resident" (the in-memory-speed claim) through 25% down to 5%
// of the flat key bytes (the beyond-RAM regime — bounded memory, every
// answer still byte-identical).
//
// The figure doubles as the acceptance check for the compressed read path:
// it fails outright if the ratio is under compressionRatioGate, if the
// unbounded-cache throughput falls below compressionQPSGate of the flat
// baseline, or if any compressed answer differs from the flat one.
func CompressedRuns(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "CompressedRuns",
		Title:  "Block-compressed LSM runs: key storage and approx-query throughput vs cache budget (skewed dataset)",
		Header: []string{"layout", "run bytes", "ratio", "cache", "queries", "best wall", "queries/s", "hit rate", "vs flat"},
	}
	// The ratio gate is defined at a density where front-coding bites:
	// enough series per skewed shape that key-adjacent records share long
	// prefixes. Below ~8000 series the 64-shape pool is too sparse and
	// the measured ratio says more about the collection size than the
	// codec, so the figure floors the count (same pattern as the WAL
	// figure's writer floor).
	n := sc.BaseCount
	if n < 8000 {
		n = 8000
	}
	e, err := newEnv(sc, "skewed", n)
	if err != nil {
		return nil, err
	}
	s, err := sc.summarizer()
	if err != nil {
		return nil, err
	}
	base := lsm.Options{
		FS: e.fs, Name: "plain", S: s, RawName: rawName,
		MemBudgetBytes: budgetFor(sc, n, 0.10),
		Workers:        sc.Workers,
		QueryWorkers:   sc.QueryWorkers,
	}
	plain, err := lsm.Build(base)
	if err != nil {
		return nil, err
	}
	defer plain.Close()
	flatBytes := plain.SizeBytes()

	copt := base
	copt.Name = "comp"
	copt.Compressed = true
	copt.Cache = blockcache.New(0)
	comp, err := lsm.Build(copt)
	if err != nil {
		return nil, err
	}
	compBytes := comp.SizeBytes()
	if err := comp.Close(); err != nil {
		return nil, err
	}
	ratio := float64(flatBytes) / float64(compBytes)
	if ratio < compressionRatioGate {
		return nil, fmt.Errorf(
			"experiments: compressed runs hold %d bytes vs %d flat — %.2fx, want >= %.1fx",
			compBytes, flatBytes, ratio, compressionRatioGate)
	}

	// A floor on the batch keeps each timed pass well above timer noise
	// for the 10% throughput gate at the tiny CI scale.
	qn := sc.Queries * 2
	if qn < 40 {
		qn = 40
	}
	qs := e.queries(qn)
	queries := compressionRounds * len(qs)

	// pass runs the full query batch compressionRounds times; the first
	// round's answers are recorded when a sink is given, so a layout's
	// warm-up pass doubles as its answer-identity sample.
	pass := func(ix *lsm.Index, answers *[]lsm.Result) (time.Duration, error) {
		start := time.Now()
		for round := 0; round < compressionRounds; round++ {
			for _, q := range qs {
				r, err := ix.ApproxSearch(q)
				if err != nil {
					return 0, err
				}
				if answers != nil && round == 0 {
					*answers = append(*answers, r)
				}
			}
		}
		return time.Since(start), nil
	}

	var want []lsm.Result
	if _, err := pass(plain, &want); err != nil {
		return nil, err
	}
	checkAnswers := func(label string, got []lsm.Result) error {
		if len(got) != len(want) {
			return fmt.Errorf("experiments: cache=%s answered %d queries, flat answered %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i].Pos != want[i].Pos || got[i].Dist != want[i].Dist {
				return fmt.Errorf(
					"experiments: cache=%s query %d answered (#%d, %.6f), flat answered (#%d, %.6f)",
					label, i, got[i].Pos, got[i].Dist, want[i].Pos, want[i].Dist)
			}
		}
		return nil
	}
	reopen := func(label string, cacheBytes int64) (*lsm.Index, error) {
		ix, err := lsm.Open(lsm.Options{
			FS: e.fs, Name: "comp", S: s, RawName: rawName,
			QueryWorkers: sc.QueryWorkers,
			Cache:        blockcache.New(cacheBytes),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: reopening compressed index (cache=%s): %w", label, err)
		}
		return ix, nil
	}

	// The gated comparison — warm unbounded-cache compressed vs flat
	// in-memory — is timed as interleaved pass pairs: machine-load drift
	// between two separate measurement windows would otherwise dominate a
	// 10% gate, while adjacent passes see the same load and the best pass
	// of each side samples the same quiet window. blockcache.New(0) is
	// the 128 MiB default: every decoded block stays resident here, so
	// the warm path is genuinely decode-free.
	ucomp, err := reopen("unbounded", 0)
	if err != nil {
		return nil, err
	}
	var ugot []lsm.Result
	_, uerr := pass(ucomp, &ugot)
	if uerr == nil {
		uerr = checkAnswers("unbounded", ugot)
	}
	var plainBest, compBest time.Duration
	for rep := 0; uerr == nil && rep < 5; rep++ {
		var fw, cw time.Duration
		if fw, uerr = pass(plain, nil); uerr != nil {
			break
		}
		if cw, uerr = pass(ucomp, nil); uerr != nil {
			break
		}
		if plainBest == 0 || fw < plainBest {
			plainBest = fw
		}
		if compBest == 0 || cw < compBest {
			compBest = cw
		}
	}
	ustats := ucomp.CacheStats()
	if cerr := ucomp.Close(); uerr == nil {
		uerr = cerr
	}
	if uerr != nil {
		return nil, uerr
	}

	baseQPS := float64(queries) / plainBest.Seconds()
	t.Add("flat (in-memory)", fmt.Sprint(flatBytes), "1.00x", "-", fmt.Sprint(queries),
		ms(plainBest), fmt.Sprintf("%.0f", baseQPS), "-", "1.00x")
	uqps := float64(queries) / compBest.Seconds()
	if uqps < compressionQPSGate*baseQPS {
		return nil, fmt.Errorf(
			"experiments: warm compressed throughput %.0f/s is below %.0f%% of the flat %.0f/s",
			uqps, compressionQPSGate*100, baseQPS)
	}
	uhit := "-"
	if total := ustats.Hits + ustats.Misses; total > 0 {
		uhit = pct(float64(ustats.Hits) / float64(total))
	}
	t.Add("compressed", fmt.Sprint(compBytes), fmt.Sprintf("%.2fx", ratio),
		"unbounded", fmt.Sprint(queries), ms(compBest), fmt.Sprintf("%.0f", uqps),
		uhit, fmt.Sprintf("%.2fx", uqps/baseQPS))

	// The bounded rows are informational (no gate): they show throughput
	// degrading gracefully — and answers staying byte-identical — as the
	// cache shrinks into the beyond-RAM regime. Best of three passes each.
	for _, c := range []struct {
		label string
		bytes int64
	}{
		{"25% of keys", flatBytes / 4},
		{"5% of keys", flatBytes / 20},
	} {
		ix, err := reopen(c.label, c.bytes)
		if err != nil {
			return nil, err
		}
		var got []lsm.Result
		_, err = pass(ix, &got)
		if err == nil {
			err = checkAnswers(c.label, got)
		}
		var best time.Duration
		for rep := 0; err == nil && rep < 3; rep++ {
			var wall time.Duration
			if wall, err = pass(ix, nil); err != nil {
				break
			}
			if best == 0 || wall < best {
				best = wall
			}
		}
		stats := ix.CacheStats()
		if cerr := ix.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		qps := float64(queries) / best.Seconds()
		hitRate := "-"
		if total := stats.Hits + stats.Misses; total > 0 {
			hitRate = pct(float64(stats.Hits) / float64(total))
		}
		t.Add("compressed", fmt.Sprint(compBytes), fmt.Sprintf("%.2fx", ratio),
			c.label, fmt.Sprint(queries), ms(best), fmt.Sprintf("%.0f", qps),
			hitRate, fmt.Sprintf("%.2fx", qps/baseQPS))
	}
	return t, nil
}
