package experiments

import (
	"math"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/isax"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/series"
)

// TestAllIndexesAgreeOnExactNN is the repo-wide correctness statement:
// every index family built over the same dataset must return the same
// exact nearest-neighbor distance as a brute-force scan, for every query
// and every dataset family.
func TestAllIndexesAgreeOnExactNN(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	sc := tinyScale()
	for _, kind := range []string{"randomwalk", "seismic", "astronomy"} {
		gen, err := dataset.ByName(kind)
		if err != nil {
			t.Fatal(err)
		}
		data := dataset.Generate(gen, sc.BaseCount, sc.SeriesLen, sc.Seed)
		qs := dataset.Queries(gen, 5, sc.SeriesLen, sc.Seed+1000)
		want := make([]float64, len(qs))
		for i, q := range qs {
			best := math.Inf(1)
			for _, d := range data {
				dist, _ := series.ED(q, d)
				if dist < best {
					best = dist
				}
			}
			want[i] = best
		}
		budget := budgetFor(sc, sc.BaseCount, 0.25)

		check := func(name string, got func(q series.Series) (float64, error)) {
			t.Helper()
			for i, q := range qs {
				d, err := got(q)
				if err != nil {
					t.Fatalf("%s/%s query %d: %v", kind, name, i, err)
				}
				if math.Abs(d-want[i]) > 1e-9 {
					t.Errorf("%s/%s query %d: distance %v, brute force %v", kind, name, i, d, want[i])
				}
			}
		}

		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			ix, _, err := e.buildCTree(false, budget)
			if err != nil {
				t.Fatal(err)
			}
			check("Coconut-Tree", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearch(q, 1)
				return r.Dist, err
			})
			ix.Close()
		}
		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			ix, _, err := e.buildCTree(true, budget)
			if err != nil {
				t.Fatal(err)
			}
			check("Coconut-Tree-Full", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearch(q, 1)
				return r.Dist, err
			})
			ix.Close()
		}
		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			ix, _, err := e.buildCTrie(false, budget)
			if err != nil {
				t.Fatal(err)
			}
			check("Coconut-Trie", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearch(q, 0)
				return r.Dist, err
			})
			ix.Close()
		}
		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			ix, _, err := e.buildISAX(isax.ISAX2, budget)
			if err != nil {
				t.Fatal(err)
			}
			check("iSAX2.0", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearchTree(q)
				return r.Dist, err
			})
			ix.Close()
		}
		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			ix, _, err := e.buildISAX(isax.ADSPlus, budget)
			if err != nil {
				t.Fatal(err)
			}
			check("ADS+", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearchSIMS(q)
				return r.Dist, err
			})
			ix.Close()
		}
		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			ix, _, err := e.buildRTree(true)
			if err != nil {
				t.Fatal(err)
			}
			check("R-tree", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearch(q)
				return r.Dist, err
			})
			ix.Close()
		}
		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			ix, _, err := e.buildVertical()
			if err != nil {
				t.Fatal(err)
			}
			check("Vertical", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearch(q)
				return r.Dist, err
			})
			ix.Close()
		}
		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			ix, _, err := e.buildDSTree()
			if err != nil {
				t.Fatal(err)
			}
			check("DSTree", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearch(q)
				return r.Dist, err
			})
			ix.Close()
		}
		{
			e, _ := newEnv(sc, kind, sc.BaseCount)
			s, err := sc.summarizer()
			if err != nil {
				t.Fatal(err)
			}
			ix, err := lsm.Build(lsm.Options{FS: e.fs, Name: "lsm", S: s, RawName: rawName, MemBudgetBytes: budget})
			if err != nil {
				t.Fatal(err)
			}
			check("Coconut-LSM", func(q series.Series) (float64, error) {
				r, err := ix.ExactSearch(q)
				return r.Dist, err
			})
			ix.Close()
		}
	}
}
