package experiments

import (
	"fmt"
	"time"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/isax"
)

// memorySweep is the fraction-of-dataset memory regimes used by the
// construction figures (the paper varies available memory the same way:
// ample down to ~1%).
var memorySweep = []float64{1.0, 0.25, 0.05, 0.01}

func budgetFor(sc Scale, count int, frac float64) int64 {
	b := int64(float64(sc.RawBytes(count)) * frac)
	if b < 1<<14 {
		b = 1 << 14
	}
	return b
}

// Fig7Histograms regenerates Figure 7: value histograms of the three
// datasets (13 bins over [-3.25, 3.25] plus skewness).
func Fig7Histograms(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig7",
		Title:  "Value histograms for all datasets",
		Header: []string{"dataset", "bin-center", "probability"},
	}
	for _, kind := range []string{"randomwalk", "seismic", "astronomy"} {
		gen, err := dataset.ByName(kind)
		if err != nil {
			return nil, err
		}
		h := dataset.ValueHistogram(gen, 400, sc.SeriesLen, 13, -3.25, 3.25, sc.Seed)
		for i := range h.Counts {
			t.Add(kind, fmt.Sprintf("%+.2f", h.BinCenter(i)), fmt.Sprintf("%.4f", h.Probability(i)))
		}
		skew := dataset.Skewness(gen, 400, sc.SeriesLen, sc.Seed)
		t.Add(kind, "skewness", fmt.Sprintf("%+.3f", skew))
	}
	return t, nil
}

// Fig8aConstructionMaterialized regenerates Figure 8a: materialized index
// construction time as available memory shrinks.
func Fig8aConstructionMaterialized(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig8a",
		Title:  "Index construction, materialized (time vs memory)",
		Header: []string{"memory", "system", "total", "device", "cpu", "seeks"},
	}
	n := sc.BaseCount
	for _, frac := range memorySweep {
		budget := budgetFor(sc, n, frac)
		row := func(name string, c Cost) {
			t.Add(pct(frac), name, ms(c.Total()), ms(c.Sim), ms(c.Wall), fmt.Sprint(c.IO.Seeks()))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildCTree(true, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("Coconut-Tree-Full", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildCTrie(true, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("Coconut-Trie-Full", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildISAX(isax.ADSFull, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("ADSFull", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildISAX(isax.ISAX2, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("iSAX2.0", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildRTree(true)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("R-tree", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildVertical()
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("Vertical", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildDSTree()
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("DSTree", c)
		}
	}
	return t, nil
}

// Fig8bConstructionNonMaterialized regenerates Figure 8b: non-materialized
// construction time as memory shrinks.
func Fig8bConstructionNonMaterialized(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig8b",
		Title:  "Index construction, non-materialized (time vs memory)",
		Header: []string{"memory", "system", "total", "device", "cpu", "seeks"},
	}
	n := sc.BaseCount
	for _, frac := range memorySweep {
		budget := budgetFor(sc, n, frac)
		row := func(name string, c Cost) {
			t.Add(pct(frac), name, ms(c.Total()), ms(c.Sim), ms(c.Wall), fmt.Sprint(c.IO.Seeks()))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildCTree(false, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("Coconut-Tree", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildCTrie(false, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("Coconut-Trie", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildISAX(isax.ADSPlus, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("ADS+", c)
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildRTree(false)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("R-tree+", c)
		}
	}
	return t, nil
}

// Fig8cSpace regenerates Figure 8c: index space overhead (plus the leaf
// fill statistics the paper quotes in the text: ~10% for prefix splits,
// ~97% for median splits).
func Fig8cSpace(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig8c",
		Title:  "Indexing space overhead",
		Header: []string{"system", "index-size", "x-raw", "leaves", "leaf-fill"},
	}
	n := sc.BaseCount
	raw := sc.RawBytes(n)
	budget := budgetFor(sc, n, 0.25)
	add := func(name string, size int64, leaves int, fill float64) {
		fillStr := "-"
		if fill >= 0 {
			fillStr = pct(fill)
		}
		t.Add(name, mb(size), fmt.Sprintf("%.2fx", float64(size)/float64(raw)), fmt.Sprint(leaves), fillStr)
	}

	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildCTree(true, budget)
		if err != nil {
			return nil, err
		}
		add("Coconut-Tree-Full", ix.SizeBytes(), ix.NumLeaves(), ix.AvgLeafFill())
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildCTrie(true, budget)
		if err != nil {
			return nil, err
		}
		add("Coconut-Trie-Full", ix.SizeBytes(), ix.NumLeaves(), ix.AvgLeafFill())
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildISAX(isax.ADSFull, budget)
		if err != nil {
			return nil, err
		}
		add("ADSFull", ix.SizeBytes(), ix.NumLeaves(), ix.AvgLeafFill())
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildISAX(isax.ISAX2, budget)
		if err != nil {
			return nil, err
		}
		add("iSAX2.0", ix.SizeBytes(), ix.NumLeaves(), ix.AvgLeafFill())
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildRTree(true)
		if err != nil {
			return nil, err
		}
		add("R-tree", ix.SizeBytes(), int(ix.NumLeaves()), -1)
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildDSTree()
		if err != nil {
			return nil, err
		}
		add("DSTree", ix.SizeBytes(), int(ix.NumLeaves()), -1)
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildVertical()
		if err != nil {
			return nil, err
		}
		add("Vertical", ix.SizeBytes(), 0, -1)
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildCTree(false, budget)
		if err != nil {
			return nil, err
		}
		add("Coconut-Tree", ix.SizeBytes(), ix.NumLeaves(), ix.AvgLeafFill())
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildCTrie(false, budget)
		if err != nil {
			return nil, err
		}
		add("Coconut-Trie", ix.SizeBytes(), ix.NumLeaves(), ix.AvgLeafFill())
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildISAX(isax.ADSPlus, budget)
		if err != nil {
			return nil, err
		}
		add("ADS+", ix.SizeBytes(), ix.NumLeaves(), ix.AvgLeafFill())
		ix.Close()
	}
	{
		e, _ := newEnv(sc, "randomwalk", n)
		ix, _, err := e.buildRTree(false)
		if err != nil {
			return nil, err
		}
		add("R-tree+", ix.SizeBytes(), int(ix.NumLeaves()), -1)
		ix.Close()
	}
	return t, nil
}

// Fig8dScaleMaterialized regenerates Figure 8d: materialized construction
// with fixed memory and growing data.
func Fig8dScaleMaterialized(sc Scale) (*Table, error) {
	return scaleConstruction(sc, "Fig8d",
		"Index construction, materialized (fixed memory, growing data)", true)
}

// Fig8eScaleNonMaterialized regenerates Figure 8e: non-materialized
// construction with fixed memory and growing data.
func Fig8eScaleNonMaterialized(sc Scale) (*Table, error) {
	return scaleConstruction(sc, "Fig8e",
		"Index construction, non-materialized (fixed memory, growing data)", false)
}

func scaleConstruction(sc Scale, id, title string, materialized bool) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"series", "system", "total", "device", "cpu", "seeks"},
	}
	// Fixed memory: 25% of the SMALLEST dataset, so the largest runs at
	// ~3% — the regime where the paper's crossover appears.
	budget := budgetFor(sc, sc.BaseCount, 0.25)
	for _, mult := range []int{1, 2, 4, 8} {
		n := sc.BaseCount * mult / 2
		row := func(name string, c Cost) {
			t.Add(fmt.Sprint(n), name, ms(c.Total()), ms(c.Sim), ms(c.Wall), fmt.Sprint(c.IO.Seeks()))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildCTree(materialized, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			if materialized {
				row("Coconut-Tree-Full", c)
			} else {
				row("Coconut-Tree", c)
			}
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			mode := isax.ADSPlus
			name := "ADS+"
			if materialized {
				mode = isax.ADSFull
				name = "ADSFull"
			}
			ix, c, err := e.buildISAX(mode, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row(name, c)
		}
	}
	return t, nil
}

// Fig8fVariableLength regenerates Figure 8f: construction of collections of
// equal total volume but different series lengths, with limited memory.
func Fig8fVariableLength(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig8f",
		Title:  "Indexing variable length data series (fixed volume)",
		Header: []string{"length", "system", "total", "device", "cpu"},
	}
	totalPoints := sc.BaseCount * sc.SeriesLen
	for _, length := range []int{sc.SeriesLen / 2, sc.SeriesLen, sc.SeriesLen * 2, sc.SeriesLen * 4} {
		lsc := sc
		lsc.SeriesLen = length
		n := totalPoints / length
		budget := budgetFor(lsc, n, 0.05)
		row := func(name string, c Cost) {
			t.Add(fmt.Sprint(length), name, ms(c.Total()), ms(c.Sim), ms(c.Wall))
		}
		{
			e, err := newEnv(lsc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildCTree(false, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("Coconut-Tree", c)
		}
		{
			e, err := newEnv(lsc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildCTree(true, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("Coconut-Tree-Full", c)
		}
		{
			e, err := newEnv(lsc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildISAX(isax.ADSPlus, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("ADS+", c)
		}
		{
			e, err := newEnv(lsc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, c, err := e.buildISAX(isax.ADSFull, budget)
			if err != nil {
				return nil, err
			}
			ix.Close()
			row("ADSFull", c)
		}
	}
	return t, nil
}

// Fig9aExact regenerates Figure 9a: exact query answering vs data size.
func Fig9aExact(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig9a",
		Title:  "Exact query answering (mean per query, growing data)",
		Header: []string{"series", "system", "total", "device", "cpu"},
	}
	for _, mult := range []int{1, 2, 4} {
		n := sc.BaseCount * mult / 2
		budget := budgetFor(sc, n, 0.25)
		qs := func(e *env) []Series { return e.queries(sc.Queries) }

		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildCTree(false, budget)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range qs(e) {
					if _, err := ix.ExactSearch(q, 1); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "Coconut-Tree", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildCTree(true, budget)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range qs(e) {
					if _, err := ix.ExactSearch(q, 1); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "Coconut-Tree-Full", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildISAX(isax.ADSPlus, budget)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range qs(e) {
					if _, err := ix.ExactSearchSIMS(q); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "ADS+", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildISAX(isax.ADSFull, budget)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range qs(e) {
					if _, err := ix.ExactSearchSIMS(q); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "ADSFull", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildRTree(true)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range qs(e) {
					if _, err := ix.ExactSearch(q); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "R-tree", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildRTree(false)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range qs(e) {
					if _, err := ix.ExactSearch(q); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "R-tree+", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
	}
	return t, nil
}

func time1(n int) time.Duration {
	if n <= 0 {
		return 1
	}
	return time.Duration(n)
}

// Fig9bApprox regenerates Figure 9b: approximate query answering vs data
// size.
func Fig9bApprox(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig9b",
		Title:  "Approximate query answering (mean per query, growing data)",
		Header: []string{"series", "system", "total", "device", "cpu"},
	}
	for _, mult := range []int{1, 2, 4} {
		n := sc.BaseCount * mult / 2
		budget := budgetFor(sc, n, 0.25)
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildCTree(false, budget)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range e.queries(sc.Queries) {
					if _, err := ix.ApproxSearch(q, 1); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "Coconut-Tree", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildCTree(true, budget)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range e.queries(sc.Queries) {
					if _, err := ix.ApproxSearch(q, 1); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "Coconut-Tree-Full", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildISAX(isax.ADSFull, budget)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range e.queries(sc.Queries) {
					if _, err := ix.ApproxSearch(q); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "ADSFull", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
		{
			e, err := newEnv(sc, "randomwalk", n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildISAX(isax.ADSPlus, budget)
			if err != nil {
				return nil, err
			}
			c, err := measure(e.fs, func() error {
				for _, q := range e.queries(sc.Queries) {
					if _, err := ix.ApproxSearch(q); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(n), "ADS+", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		}
	}
	return t, nil
}

// Fig9cApproxLargest regenerates Figure 9c: approximate query answering on
// the largest dataset, sweeping the Coconut radius.
func Fig9cApproxLargest(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig9c",
		Title:  "Approximate query answering, largest dataset (radius sweep)",
		Header: []string{"system", "total", "device", "cpu"},
	}
	n := sc.BaseCount * 2
	budget := budgetFor(sc, n, 0.25)
	e, err := newEnv(sc, "randomwalk", n)
	if err != nil {
		return nil, err
	}
	ix, _, err := e.buildCTree(true, budget)
	if err != nil {
		return nil, err
	}
	for _, radius := range []int{0, 1, 10} {
		c, err := measure(e.fs, func() error {
			for _, q := range e.queries(sc.Queries) {
				if _, err := ix.ApproxSearch(q, radius); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("CTreeFull(r=%d)", radius), ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
	}
	ix.Close()

	e2, err := newEnv(sc, "randomwalk", n)
	if err != nil {
		return nil, err
	}
	adsf, _, err := e2.buildISAX(isax.ADSFull, budget)
	if err != nil {
		return nil, err
	}
	c, err := measure(e2.fs, func() error {
		for _, q := range e2.queries(sc.Queries) {
			if _, err := adsf.ApproxSearch(q); err != nil {
				return err
			}
		}
		return nil
	})
	adsf.Close()
	if err != nil {
		return nil, err
	}
	t.Add("ADSFull", ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
	return t, nil
}

// Fig9dApproxQuality regenerates Figure 9d: the quality (mean Euclidean
// distance) of approximate answers, plus the fraction of queries where
// Coconut beats ADSFull.
func Fig9dApproxQuality(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig9d",
		Title:  "Average distance of approximate search answers",
		Header: []string{"system", "mean-ED", "beats-ADSFull"},
	}
	n := sc.BaseCount * 2
	budget := budgetFor(sc, n, 0.25)

	e, err := newEnv(sc, "randomwalk", n)
	if err != nil {
		return nil, err
	}
	qs := e.queries(sc.Queries)

	adsEnv, err := newEnv(sc, "randomwalk", n)
	if err != nil {
		return nil, err
	}
	adsf, _, err := adsEnv.buildISAX(isax.ADSFull, budget)
	if err != nil {
		return nil, err
	}
	adsDists := make([]float64, len(qs))
	for i, q := range qs {
		r, err := adsf.ApproxSearch(q)
		if err != nil {
			return nil, err
		}
		adsDists[i] = r.Dist
	}
	adsf.Close()

	ix, _, err := e.buildCTree(true, budget)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	for _, radius := range []int{0, 1, 10} {
		var sum float64
		var wins int
		for i, q := range qs {
			r, err := ix.ApproxSearch(q, radius)
			if err != nil {
				return nil, err
			}
			sum += r.Dist
			if r.Dist <= adsDists[i] {
				wins++
			}
		}
		t.Add(fmt.Sprintf("CTree(r=%d)", radius),
			fmt.Sprintf("%.4f", sum/float64(len(qs))),
			pct(float64(wins)/float64(len(qs))))
	}
	var adsSum float64
	for _, d := range adsDists {
		adsSum += d
	}
	t.Add("ADSFull", fmt.Sprintf("%.4f", adsSum/float64(len(qs))), "-")
	return t, nil
}

// Fig9ef regenerates Figures 9e and 9f together: exact query time and
// visited records on the largest dataset, radius sweep vs the ADS family.
func Fig9ef(sc Scale) (timeTable, visitedTable *Table, err error) {
	timeTable = &Table{
		ID:     "Fig9e",
		Title:  "Exact query answering, largest dataset",
		Header: []string{"system", "total", "device", "cpu"},
	}
	visitedTable = &Table{
		ID:     "Fig9f",
		Title:  "Records visited during the exact (post-approximate) phase",
		Header: []string{"system", "mean-visited-records"},
	}
	n := sc.BaseCount * 2
	budget := budgetFor(sc, n, 0.25)

	e, err := newEnv(sc, "randomwalk", n)
	if err != nil {
		return nil, nil, err
	}
	ix, _, err := e.buildCTree(true, budget)
	if err != nil {
		return nil, nil, err
	}
	for _, radius := range []int{0, 1, 10} {
		var visited int64
		c, err := measure(e.fs, func() error {
			for _, q := range e.queries(sc.Queries) {
				// The exact search repeats the (deterministic) approximate
				// phase; subtracting its visits isolates the SIMS phase —
				// the quantity the paper plots, which the approximate
				// answer's quality is supposed to shrink.
				a, err := ix.ApproxSearch(q, radius)
				if err != nil {
					return err
				}
				r, err := ix.ExactSearch(q, radius)
				if err != nil {
					return err
				}
				visited += r.VisitedRecords - a.VisitedRecords
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		name := fmt.Sprintf("CoconutTreeSIMS(r=%d)", radius)
		timeTable.Add(name, ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		visitedTable.Add(name, fmt.Sprint(visited/int64(sc.Queries)))
	}
	ix.Close()

	for _, mode := range []isax.Mode{isax.ADSFull, isax.ADSPlus} {
		e2, err := newEnv(sc, "randomwalk", n)
		if err != nil {
			return nil, nil, err
		}
		ax, _, err := e2.buildISAX(mode, budget)
		if err != nil {
			return nil, nil, err
		}
		var visited int64
		c, err := measure(e2.fs, func() error {
			for _, q := range e2.queries(sc.Queries) {
				// ADS+ splits leaves adaptively on first touch; the first
				// approximate call absorbs the mutation so the second one
				// matches the approximate phase inside the exact search.
				if _, err := ax.ApproxSearch(q); err != nil {
					return err
				}
				a, err := ax.ApproxSearch(q)
				if err != nil {
					return err
				}
				r, err := ax.ExactSearchSIMS(q)
				if err != nil {
					return err
				}
				visited += r.VisitedRecords - a.VisitedRecords
			}
			return nil
		})
		ax.Close()
		if err != nil {
			return nil, nil, err
		}
		name := mode.String() + "-SIMS"
		timeTable.Add(name, ms(c.Total()/time1(sc.Queries)), ms(c.Sim/time1(sc.Queries)), ms(c.Wall/time1(sc.Queries)))
		visitedTable.Add(name, fmt.Sprint(visited/int64(sc.Queries)))
	}
	return timeTable, visitedTable, nil
}

// Fig10aMixedWorkload regenerates Figure 10a: interleaved batch inserts and
// exact queries, sweeping the batch size. Small batches favor the
// insert-buffering ADS family; larger batches favor Coconut's sorted batch
// inserts.
func Fig10aMixedWorkload(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "Fig10a",
		Title:  "Mixed workload: batched inserts interleaved with queries",
		Header: []string{"batch-size", "system", "total", "device", "cpu"},
	}
	initial := sc.BaseCount / 2
	arrivals := sc.BaseCount / 2
	budget := budgetFor(sc, sc.BaseCount, 0.01)
	gen, _ := dataset.ByName("randomwalk")
	newSeries := dataset.Generate(gen, arrivals, sc.SeriesLen, sc.Seed+5000)

	for _, batches := range []int{50, 10, 2} {
		batchSize := arrivals / batches
		// Coconut-Tree.
		{
			e, err := newEnv(sc, "randomwalk", initial)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildCTree(false, budget)
			if err != nil {
				return nil, err
			}
			qs := e.queries(2 * batches)
			c, err := measure(e.fs, func() error {
				for b := 0; b < batches; b++ {
					lo, hi := b*batchSize, (b+1)*batchSize
					if hi > len(newSeries) {
						hi = len(newSeries)
					}
					if err := ix.InsertBatch(newSeries[lo:hi]); err != nil {
						return err
					}
					for k := 0; k < 2; k++ {
						if _, err := ix.ExactSearch(qs[2*b+k], 0); err != nil {
							return err
						}
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(batchSize), "Coconut-Tree", ms(c.Total()), ms(c.Sim), ms(c.Wall))
		}
		// ADS+.
		{
			e, err := newEnv(sc, "randomwalk", initial)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildISAX(isax.ADSPlus, budget)
			if err != nil {
				return nil, err
			}
			qs := e.queries(2 * batches)
			c, err := measure(e.fs, func() error {
				for b := 0; b < batches; b++ {
					lo, hi := b*batchSize, (b+1)*batchSize
					if hi > len(newSeries) {
						hi = len(newSeries)
					}
					if err := ix.Append(newSeries[lo:hi]); err != nil {
						return err
					}
					for k := 0; k < 2; k++ {
						if _, err := ix.ExactSearchSIMS(qs[2*b+k]); err != nil {
							return err
						}
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprint(batchSize), "ADS+", ms(c.Total()), ms(c.Sim), ms(c.Wall))
		}
	}
	return t, nil
}

// RealWorkload regenerates Figures 10b/10c: complete workload (index
// construction + exact queries) on the astronomy or seismic dataset across
// memory regimes.
func RealWorkload(sc Scale, kind string, id string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  kind + " — complete workload (build + exact queries)",
		Header: []string{"memory", "system", "total", "device", "cpu"},
	}
	n := sc.BaseCount
	for _, frac := range []float64{0.25, 0.05, 0.01} {
		budget := budgetFor(sc, n, frac)
		{
			e, err := newEnv(sc, kind, n)
			if err != nil {
				return nil, err
			}
			var total Cost
			ix, c, err := e.buildCTree(false, budget)
			if err != nil {
				return nil, err
			}
			total = c
			c, err = measure(e.fs, func() error {
				for _, q := range e.queries(sc.Queries) {
					if _, err := ix.ExactSearch(q, 1); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			total.Wall += c.Wall
			total.Sim += c.Sim
			t.Add(pct(frac), "Coconut-Tree", ms(total.Total()), ms(total.Sim), ms(total.Wall))
		}
		{
			e, err := newEnv(sc, kind, n)
			if err != nil {
				return nil, err
			}
			var total Cost
			ix, c, err := e.buildCTree(true, budget)
			if err != nil {
				return nil, err
			}
			total = c
			c, err = measure(e.fs, func() error {
				for _, q := range e.queries(sc.Queries) {
					if _, err := ix.ExactSearch(q, 1); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			total.Wall += c.Wall
			total.Sim += c.Sim
			t.Add(pct(frac), "Coconut-Tree-Full", ms(total.Total()), ms(total.Sim), ms(total.Wall))
		}
		{
			e, err := newEnv(sc, kind, n)
			if err != nil {
				return nil, err
			}
			var total Cost
			ix, c, err := e.buildISAX(isax.ADSPlus, budget)
			if err != nil {
				return nil, err
			}
			total = c
			c, err = measure(e.fs, func() error {
				for _, q := range e.queries(sc.Queries) {
					if _, err := ix.ExactSearchSIMS(q); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			total.Wall += c.Wall
			total.Sim += c.Sim
			t.Add(pct(frac), "ADS+", ms(total.Total()), ms(total.Sim), ms(total.Wall))
		}
		{
			e, err := newEnv(sc, kind, n)
			if err != nil {
				return nil, err
			}
			var total Cost
			ix, c, err := e.buildISAX(isax.ADSFull, budget)
			if err != nil {
				return nil, err
			}
			total = c
			c, err = measure(e.fs, func() error {
				for _, q := range e.queries(sc.Queries) {
					if _, err := ix.ExactSearchSIMS(q); err != nil {
						return err
					}
				}
				return nil
			})
			ix.Close()
			if err != nil {
				return nil, err
			}
			total.Wall += c.Wall
			total.Sim += c.Sim
			t.Add(pct(frac), "ADSFull", ms(total.Total()), ms(total.Sim), ms(total.Wall))
		}
	}
	return t, nil
}

// IndexSizeTable regenerates the index-size comparison quoted in §5.3 for
// the real datasets.
func IndexSizeTable(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "SizeTable",
		Title:  "Index sizes on the real datasets (§5.3)",
		Header: []string{"dataset", "system", "size", "x-raw"},
	}
	n := sc.BaseCount
	raw := sc.RawBytes(n)
	budget := budgetFor(sc, n, 0.25)
	for _, kind := range []string{"astronomy", "seismic"} {
		{
			e, err := newEnv(sc, kind, n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildISAX(isax.ADSFull, budget)
			if err != nil {
				return nil, err
			}
			t.Add(kind, "ADSFull", mb(ix.SizeBytes()), fmt.Sprintf("%.2fx", float64(ix.SizeBytes())/float64(raw)))
			ix.Close()
		}
		{
			e, err := newEnv(sc, kind, n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildISAX(isax.ADSPlus, budget)
			if err != nil {
				return nil, err
			}
			t.Add(kind, "ADS+", mb(ix.SizeBytes()), fmt.Sprintf("%.2fx", float64(ix.SizeBytes())/float64(raw)))
			ix.Close()
		}
		{
			e, err := newEnv(sc, kind, n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildCTree(false, budget)
			if err != nil {
				return nil, err
			}
			t.Add(kind, "Coconut-Tree", mb(ix.SizeBytes()), fmt.Sprintf("%.2fx", float64(ix.SizeBytes())/float64(raw)))
			ix.Close()
		}
		{
			e, err := newEnv(sc, kind, n)
			if err != nil {
				return nil, err
			}
			ix, _, err := e.buildCTree(true, budget)
			if err != nil {
				return nil, err
			}
			t.Add(kind, "Coconut-Tree-Full", mb(ix.SizeBytes()), fmt.Sprintf("%.2fx", float64(ix.SizeBytes())/float64(raw)))
			ix.Close()
		}
	}
	return t, nil
}

// Fig10bAstronomy regenerates Figure 10b.
func Fig10bAstronomy(sc Scale) (*Table, error) {
	return RealWorkload(sc, "astronomy", "Fig10b")
}

// Fig10cSeismic regenerates Figure 10c.
func Fig10cSeismic(sc Scale) (*Table, error) {
	return RealWorkload(sc, "seismic", "Fig10c")
}

// All runs every experiment at the given scale, returning the tables in
// paper order.
func All(sc Scale) ([]*Table, error) {
	var out []*Table
	steps := []func(Scale) (*Table, error){
		Fig7Histograms,
		Fig8aConstructionMaterialized,
		Fig8bConstructionNonMaterialized,
		Fig8cSpace,
		Fig8dScaleMaterialized,
		Fig8eScaleNonMaterialized,
		Fig8fVariableLength,
		Fig9aExact,
		Fig9bApprox,
		Fig9cApproxLargest,
		Fig9dApproxQuality,
	}
	for _, fn := range steps {
		t, err := fn(sc)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	te, tf, err := Fig9ef(sc)
	if err != nil {
		return out, err
	}
	out = append(out, te, tf)
	rest := []func(Scale) (*Table, error){
		Fig10aMixedWorkload,
		Fig10bAstronomy,
		Fig10cSeismic,
		IndexSizeTable,
	}
	for _, fn := range rest {
		t, err := fn(sc)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
