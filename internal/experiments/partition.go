package experiments

import (
	"fmt"
	"time"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/partition"
	"github.com/coconut-db/coconut/internal/series"
)

// partitionSweep is the partition counts the scaling figure measures; the
// first entry is the single-index baseline.
var partitionSweep = []int{1, 2, 4, 8}

// PartitionScaling regenerates the partitioned-architecture figure: the
// same dataset is indexed as one Coconut-Tree and as N key-range
// partitions, then serves the same exact and approximate workload
// through the scatter-gather layer. Every answer must match the
// single-index baseline bit for bit — partitioning is a layout change,
// never an approximation — so the figure doubles as a conformance check.
//
// The worker budget is pinned to the partition count (P partitions build
// and query with P workers, children serial inside), making partitioning
// itself the parallelism axis: the P=1 row is the fully serial baseline,
// and the CPU-speedup columns show what the parallel partition builds and
// the scatter-gather fan-out buy. The simulated HDD is a serial device,
// so its Total column instead exposes the architecture's I/O overhead
// (scatter pass, per-partition files).
func PartitionScaling(sc Scale) (*Table, error) {
	t := &Table{
		ID: "PartitionScaling",
		Title: fmt.Sprintf("N-way partitioned Coconut-Tree vs single index (N=%d, workers = partitions)",
			sc.BaseCount),
		Header: []string{"partitions", "build", "build cpu", "cpu speedup", "exact avg/q", "exact cpu/q", "cpu speedup", "approx avg/q"},
	}

	type answer struct {
		pos  int64
		dist float64
	}
	type backend interface {
		ExactSearch(q series.Series, radius int) (core.Result, error)
		ApproxSearch(q series.Series, radius int) (core.Result, error)
		Close() error
	}

	var base []answer
	var baseBuild, baseExact time.Duration
	for _, parts := range partitionSweep {
		e, err := newEnv(sc, "randomwalk", sc.BaseCount)
		if err != nil {
			return nil, err
		}
		queries := e.queries(sc.Queries)
		opt, err := e.coreOptions(false, budgetFor(sc, sc.BaseCount, 0.25))
		if err != nil {
			return nil, err
		}
		opt.Workers, opt.QueryWorkers = parts, parts
		var ix backend
		buildCost, err := measure(e.fs, func() error {
			var err error
			if parts == 1 {
				ix, err = core.BuildTree(opt)
			} else {
				ix, err = partition.BuildTree(opt, parts)
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("partitions=%d: build: %w", parts, err)
		}
		var answers []answer
		exactCost, err := measure(e.fs, func() error {
			for _, q := range queries {
				res, err := ix.ExactSearch(q, 1)
				if err != nil {
					return err
				}
				answers = append(answers, answer{res.Pos, res.Dist})
			}
			return nil
		})
		var approxCost Cost
		if err == nil {
			approxCost, err = measure(e.fs, func() error {
				for _, q := range queries {
					res, aerr := ix.ApproxSearch(q, 1)
					if aerr != nil {
						return aerr
					}
					answers = append(answers, answer{res.Pos, res.Dist})
				}
				return nil
			})
		}
		if cerr := ix.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("partitions=%d: %w", parts, err)
		}
		if parts == 1 {
			base = answers
			baseBuild, baseExact = buildCost.Wall, exactCost.Wall
		} else {
			for i := range base {
				if base[i] != answers[i] {
					return nil, fmt.Errorf("partitions=%d: answer %d diverges from baseline: got (#%d, %v), want (#%d, %v)",
						parts, i, answers[i].pos, answers[i].dist, base[i].pos, base[i].dist)
				}
			}
		}
		perQ := func(d time.Duration) time.Duration { return d / time.Duration(len(queries)) }
		// The simulated HDD is a serial device, so parallel builds and
		// scatter-gather queries only show their scaling in CPU wall time.
		speedup := func(b, cur time.Duration) string {
			if parts == 1 {
				return "1.0x"
			}
			return fmt.Sprintf("%.1fx", float64(b)/float64(cur))
		}
		t.Add(fmt.Sprintf("%d", parts),
			ms(buildCost.Total()), ms(buildCost.Wall), speedup(baseBuild, buildCost.Wall),
			ms(perQ(exactCost.Total())), ms(perQ(exactCost.Wall)), speedup(baseExact, exactCost.Wall),
			ms(perQ(approxCost.Total())))
	}
	return t, nil
}
