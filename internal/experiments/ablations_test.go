package experiments

import "testing"

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	tables, err := Ablations(tinyScale())
	if err != nil {
		t.Fatalf("ablation failed after %d tables: %v", len(tables), err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d ablation tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("ablation %s has no rows", tb.ID)
		}
	}
}
