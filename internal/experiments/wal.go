package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/storage"
)

// walAppenders is the concurrent-writer count of the durable-ingest
// figure — the contention level the group-commit acceptance bar (>= 5x
// per-append fsync) is defined at.
const walAppenders = 8

// WALThroughput measures durable Append throughput on a Coconut-LSM with
// the write-ahead log in its two sync disciplines: one fsync pair per
// append (every writer pays the full device latency) versus group commit
// (a committer goroutine batches concurrent writers behind one fsync
// pair). MemFS fsync is free, so a FaultFS hook charges every fsync a
// fixed sleep — the device latency that makes the trade-off real; wall
// time is then dominated by how many fsyncs each discipline issues.
//
// The figure doubles as the acceptance check for the group-commit write
// path: with walAppenders concurrent writers it fails outright if group
// commit does not reach 5x the per-append-fsync throughput, and if any
// acknowledged series is missing when the index reopens afterwards.
func WALThroughput(sc Scale) (*Table, error) {
	t := &Table{
		ID: "WALThroughput",
		Title: fmt.Sprintf("durable LSM appends/sec, %d concurrent writers: group commit vs per-append fsync",
			walAppenders),
		Header: []string{"wal sync", "appends", "fsyncs", "wall", "appends/sec", "speedup"},
	}
	// Each writer appends one series per call, so every row's append count
	// is also its fsync-acknowledgment count.
	perWriter := sc.BaseCount / 100
	if perWriter < 24 {
		perWriter = 24
	}
	const syncDelay = 2 * time.Millisecond
	s, err := sc.summarizer()
	if err != nil {
		return nil, err
	}
	type mode struct {
		label    string
		syncEach bool
	}
	modes := []mode{
		{"per-append fsync", true},
		{"group commit", false},
	}
	var baseWall time.Duration
	var speedup float64
	for _, m := range modes {
		e, err := newEnv(sc, "randomwalk", sc.BaseCount/4+walAppenders)
		if err != nil {
			return nil, err
		}
		ffs := storage.NewFaultFS(e.fs)
		var syncs int64
		var syncMu sync.Mutex
		ffs.SetHook(func(op storage.Op, name string) {
			if op != storage.OpSync {
				return
			}
			syncMu.Lock()
			syncs++
			syncMu.Unlock()
			time.Sleep(syncDelay)
		})
		ix, err := lsm.Build(lsm.Options{
			FS: ffs, Name: "lsm", S: s, RawName: rawName,
			// A memtable larger than the whole stream: no flushes during the
			// measurement, so wall time is purely the WAL sync discipline.
			MemBudgetBytes:     64 << 20,
			Workers:            sc.Workers,
			QueryWorkers:       sc.QueryWorkers,
			WALSyncEveryAppend: m.syncEach,
			// A short commit window (an eighth of the device latency) lets
			// concurrent writers pile into the in-flight batch.
			WALGroupWindow: syncDelay / 8,
		})
		if err != nil {
			return nil, err
		}
		gen, _ := dataset.ByName(e.kind)
		stream := dataset.Generate(gen, walAppenders*perWriter, sc.SeriesLen, sc.Seed+500)
		syncMu.Lock()
		syncs = 0
		syncMu.Unlock()
		var wg sync.WaitGroup
		errs := make([]error, walAppenders)
		start := time.Now()
		for w := 0; w < walAppenders; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					one := stream[w*perWriter+i : w*perWriter+i+1]
					if err := ix.Append(one); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		wall := time.Since(start)
		syncMu.Lock()
		nsyncs := syncs
		syncMu.Unlock()
		for _, err := range errs {
			if err != nil {
				ix.Close()
				return nil, fmt.Errorf("wal=%s: append: %w", m.label, err)
			}
		}
		want := ix.Count()
		if err := ix.Close(); err != nil {
			return nil, err
		}
		// Durability check: everything acknowledged must survive a reopen.
		re, err := lsm.Open(lsm.Options{FS: ffs, Name: "lsm", S: s, RawName: rawName})
		if err != nil {
			return nil, fmt.Errorf("wal=%s: reopen: %w", m.label, err)
		}
		got := re.Count()
		if err := re.Close(); err != nil {
			return nil, err
		}
		if got != want {
			return nil, fmt.Errorf("wal=%s: reopened index holds %d series, %d were acknowledged",
				m.label, got, want)
		}
		total := walAppenders * perWriter
		rate := float64(total) / wall.Seconds()
		sp := "1.0x"
		if m.syncEach {
			baseWall = wall
		} else {
			speedup = float64(baseWall) / float64(wall)
			sp = fmt.Sprintf("%.1fx", speedup)
		}
		t.Add(m.label, fmt.Sprint(total), fmt.Sprint(nsyncs), ms(wall),
			fmt.Sprintf("%.0f", rate), sp)
	}
	if speedup < 5 {
		return nil, fmt.Errorf("group commit is only %.1fx per-append fsync throughput, want >= 5x", speedup)
	}
	return t, nil
}
