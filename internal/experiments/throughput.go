package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coconut-db/coconut/internal/core"
)

// QueryThroughput measures concurrent exact-query throughput on ONE shared
// Coconut-Tree handle: the query batch is drained by 1, 2, 4, and 8 client
// goroutines, and the table reports wall-clock throughput and the speedup
// over the single-client run. This is the serving scenario the sharded,
// concurrency-safe read path exists for — it goes beyond the paper's
// single-query evaluation.
//
// Queries keep QueryWorkers = 1 here so the scaling axis is purely handle
// concurrency; intra-query fan-out is a latency knob measured separately.
func QueryThroughput(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "QueryThroughput",
		Title:  "Concurrent exact queries on one shared handle (wall clock)",
		Header: []string{"clients", "queries", "total", "queries/s", "speedup"},
	}
	e, err := newEnv(sc, "randomwalk", sc.BaseCount)
	if err != nil {
		return nil, err
	}
	opt, err := e.coreOptions(false, budgetFor(sc, sc.BaseCount, 0.25))
	if err != nil {
		return nil, err
	}
	opt.QueryWorkers = 1
	ix, err := core.BuildTree(opt)
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	// A fixed batch large enough to keep every client busy.
	qs := e.queries(sc.Queries * 4)
	var base time.Duration
	for _, clients := range []int{1, 2, 4, 8} {
		var next atomic.Int64
		var errMu sync.Mutex
		var firstErr error
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(qs) {
						return
					}
					if _, err := ix.ExactSearch(qs[i], 1); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return nil, firstErr
		}
		if clients == 1 {
			base = elapsed
		}
		qps := float64(len(qs)) / elapsed.Seconds()
		t.Add(fmt.Sprint(clients), fmt.Sprint(len(qs)), ms(elapsed),
			fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	return t, nil
}
