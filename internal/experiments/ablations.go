package experiments

import (
	"fmt"
	"sort"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/isax"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// Ablations isolate the design decisions the paper argues for (and its
// stated future work). They are extras beyond the paper's figures.

// AblationSortable quantifies §3's core claim directly: how much closer are
// sort-order neighbors under the sortable (z-order) summarization than
// under plain lexicographic SAX order? Reported as the mean ED between
// adjacent series in each order, plus the fill a greedy leaf packing would
// reach.
func AblationSortable(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "AblSort",
		Title:  "Sortable vs unsortable summarization: neighbor distance in sort order",
		Header: []string{"order", "mean-neighbor-ED", "vs-random"},
	}
	s, err := sc.summarizer()
	if err != nil {
		return nil, err
	}
	gen, _ := dataset.ByName("randomwalk")
	n := sc.BaseCount / 2
	data := dataset.Generate(gen, n, sc.SeriesLen, sc.Seed)

	type entry struct {
		key  summary.Key
		sax  summary.SAX
		item int
	}
	entries := make([]entry, n)
	for i, ser := range data {
		sax, err := s.SAXOf(ser)
		if err != nil {
			return nil, err
		}
		key := s.KeyFromSAX(sax)
		entries[i] = entry{key: key, sax: sax, item: i}
	}
	meanED := func(order []int) float64 {
		total := 0.0
		for i := 1; i < len(order); i++ {
			d, _ := series.ED(data[order[i-1]], data[order[i]])
			total += d
		}
		return total / float64(len(order)-1)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}

	// Random (unsorted) baseline: the raw file order.
	randomED := meanED(idx)

	// Lexicographic SAX order (the unsortable strawman of Figure 2).
	lex := append([]int(nil), idx...)
	sort.Slice(lex, func(a, b int) bool {
		sa, sb := entries[lex[a]].sax, entries[lex[b]].sax
		for j := range sa {
			if sa[j] != sb[j] {
				return sa[j] < sb[j]
			}
		}
		return false
	})
	lexED := meanED(lex)

	// z-order / invSAX (Figure 4).
	zo := append([]int(nil), idx...)
	sort.Slice(zo, func(a, b int) bool {
		return entries[zo[a]].key.Less(entries[zo[b]].key)
	})
	zED := meanED(zo)

	t.Add("raw file order", fmt.Sprintf("%.4f", randomED), "1.00x")
	t.Add("lexicographic SAX", fmt.Sprintf("%.4f", lexED), fmt.Sprintf("%.2fx", lexED/randomED))
	t.Add("invSAX z-order", fmt.Sprintf("%.4f", zED), fmt.Sprintf("%.2fx", zED/randomED))
	return t, nil
}

// AblationFillFactor sweeps Coconut-Tree's bulk-load fill factor and
// measures the space/update trade-off: full packing minimizes space but
// every later insert splits a leaf; headroom absorbs inserts in place.
func AblationFillFactor(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "AblFill",
		Title:  "Coconut-Tree fill factor: space vs update cost",
		Header: []string{"fill-factor", "leaves", "index-size", "insert-total", "leaves-after"},
	}
	n := sc.BaseCount / 2
	batch := dataset.Generate(dataset.NewRandomWalk(), n/5, sc.SeriesLen, sc.Seed+99)
	for _, ff := range []float64{1.0, 0.9, 0.7, 0.5} {
		e, err := newEnv(sc, "randomwalk", n)
		if err != nil {
			return nil, err
		}
		opt, err := e.coreOptions(false, budgetFor(sc, n, 0.25))
		if err != nil {
			return nil, err
		}
		opt.FillFactor = ff
		ix, err := core.BuildTree(opt)
		if err != nil {
			return nil, err
		}
		leavesBefore := ix.NumLeaves()
		size := ix.SizeBytes()
		cost, err := measure(e.fs, func() error { return ix.InsertBatch(batch) })
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%.1f", ff), fmt.Sprint(leavesBefore), mb(size),
			ms(cost.Total()), fmt.Sprint(ix.NumLeaves()))
		ix.Close()
	}
	return t, nil
}

// AblationDevice replays Coconut-Tree vs ADS+ construction I/O through both
// device models: the paper's HDD and an SSD. Sequentiality matters less on
// SSDs, so the gap narrows — but the O(N) vs O(N/B) operation-count gap
// remains.
func AblationDevice(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "AblDevice",
		Title:  "Construction cost under HDD vs SSD cost models (1% memory)",
		Header: []string{"system", "hdd", "ssd", "hdd/ssd"},
	}
	n := sc.BaseCount
	budget := budgetFor(sc, n, 0.01)
	ssd := storage.DefaultSSD()
	addRow := func(name string, io storage.Snapshot) {
		hddT := hdd.Time(io)
		ssdT := ssd.Time(io)
		ratio := "-"
		if ssdT > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(hddT)/float64(ssdT))
		}
		t.Add(name, ms(hddT), ms(ssdT), ratio)
	}
	{
		e, err := newEnv(sc, "randomwalk", n)
		if err != nil {
			return nil, err
		}
		ix, c, err := e.buildCTree(false, budget)
		if err != nil {
			return nil, err
		}
		ix.Close()
		addRow("Coconut-Tree", c.IO)
	}
	{
		e, err := newEnv(sc, "randomwalk", n)
		if err != nil {
			return nil, err
		}
		ix, c, err := e.buildISAX(isax.ADSPlus, budget)
		if err != nil {
			return nil, err
		}
		ix.Close()
		addRow("ADS+", c.IO)
	}
	return t, nil
}

// AblationLSMUpdates compares the three update strategies on an
// insert-heavy stream: Coconut-Tree top-down batch inserts, ADS+ buffered
// appends, and Coconut-LSM memtable/run appends (§6 future work).
func AblationLSMUpdates(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "AblLSM",
		Title:  "Update strategies: B+-tree inserts vs ADS+ buffering vs LSM runs",
		Header: []string{"system", "insert-total", "device", "cpu", "query-after"},
	}
	initial := sc.BaseCount / 2
	stream := dataset.Generate(dataset.NewRandomWalk(), sc.BaseCount, sc.SeriesLen, sc.Seed+31)
	budget := budgetFor(sc, initial, 0.02)
	const batchSize = 200

	// Coconut-Tree inserts.
	{
		e, err := newEnv(sc, "randomwalk", initial)
		if err != nil {
			return nil, err
		}
		ix, _, err := e.buildCTree(false, budget)
		if err != nil {
			return nil, err
		}
		cost, err := measure(e.fs, func() error {
			for lo := 0; lo < len(stream); lo += batchSize {
				hi := min(lo+batchSize, len(stream))
				if err := ix.InsertBatch(stream[lo:hi]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		q := e.queries(1)[0]
		qc, err := measure(e.fs, func() error {
			_, err := ix.ExactSearch(q, 0)
			return err
		})
		ix.Close()
		if err != nil {
			return nil, err
		}
		t.Add("Coconut-Tree inserts", ms(cost.Total()), ms(cost.Sim), ms(cost.Wall), ms(qc.Total()))
	}
	// ADS+ appends.
	{
		e, err := newEnv(sc, "randomwalk", initial)
		if err != nil {
			return nil, err
		}
		ix, _, err := e.buildISAX(isax.ADSPlus, budget)
		if err != nil {
			return nil, err
		}
		cost, err := measure(e.fs, func() error {
			for lo := 0; lo < len(stream); lo += batchSize {
				hi := min(lo+batchSize, len(stream))
				if err := ix.Append(stream[lo:hi]); err != nil {
					return err
				}
			}
			return ix.FlushBuffers()
		})
		if err != nil {
			return nil, err
		}
		q := e.queries(1)[0]
		qc, err := measure(e.fs, func() error {
			_, err := ix.ExactSearchSIMS(q)
			return err
		})
		ix.Close()
		if err != nil {
			return nil, err
		}
		t.Add("ADS+ appends", ms(cost.Total()), ms(cost.Sim), ms(cost.Wall), ms(qc.Total()))
	}
	// Coconut-LSM.
	{
		e, err := newEnv(sc, "randomwalk", initial)
		if err != nil {
			return nil, err
		}
		s, err := sc.summarizer()
		if err != nil {
			return nil, err
		}
		var ix *lsm.Index
		_, err = measure(e.fs, func() error {
			var err error
			ix, err = lsm.Build(lsm.Options{
				FS: e.fs, Name: "lsm", S: s, RawName: rawName,
				MemBudgetBytes: budget, Workers: sc.Workers,
				QueryWorkers: sc.QueryWorkers,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		cost, err := measure(e.fs, func() error {
			for lo := 0; lo < len(stream); lo += batchSize {
				hi := min(lo+batchSize, len(stream))
				if err := ix.Append(stream[lo:hi]); err != nil {
					return err
				}
			}
			return ix.Flush()
		})
		if err != nil {
			return nil, err
		}
		q := e.queries(1)[0]
		qc, err := measure(e.fs, func() error {
			_, err := ix.ExactSearch(q)
			return err
		})
		ix.Close()
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("Coconut-LSM (%d runs)", ix.NumRuns()),
			ms(cost.Total()), ms(cost.Sim), ms(cost.Wall), ms(qc.Total()))
	}
	return t, nil
}

// AblationLeafSize sweeps the leaf capacity, exposing the query-time
// trade-off: bigger leaves mean fewer seeks but more raw distance
// computations per visited leaf.
func AblationLeafSize(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "AblLeaf",
		Title:  "Leaf size: construction, space, and exact-query cost",
		Header: []string{"leaf-cap", "leaves", "build-total", "query-mean"},
	}
	n := sc.BaseCount
	for _, cap := range []int{sc.LeafCap / 4, sc.LeafCap, sc.LeafCap * 4} {
		if cap < 2 {
			continue
		}
		lsc := sc
		lsc.LeafCap = cap
		e, err := newEnv(lsc, "randomwalk", n)
		if err != nil {
			return nil, err
		}
		ix, bc, err := e.buildCTree(false, budgetFor(lsc, n, 0.25))
		if err != nil {
			return nil, err
		}
		qc, err := measure(e.fs, func() error {
			for _, q := range e.queries(lsc.Queries) {
				if _, err := ix.ExactSearch(q, 1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprint(cap), fmt.Sprint(ix.NumLeaves()), ms(bc.Total()),
			ms(qc.Total()/time1(lsc.Queries)))
		ix.Close()
	}
	return t, nil
}

// Ablations runs all ablation studies.
func Ablations(sc Scale) ([]*Table, error) {
	var out []*Table
	for _, fn := range []func(Scale) (*Table, error){
		AblationSortable,
		AblationFillFactor,
		AblationDevice,
		AblationLSMUpdates,
		AblationLeafSize,
	} {
		tb, err := fn(sc)
		if err != nil {
			return out, err
		}
		out = append(out, tb)
	}
	return out, nil
}
