package dstree

import (
	"math"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
)

const (
	tLen   = 64
	tCount = 400
)

func buildFixture(t *testing.T) (*Tree, []series.Series, *storage.MemFS) {
	t.Helper()
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	data := dataset.Generate(gen, tCount, tLen, 42)
	tr, err := Build(Options{FS: fs, Name: "ds", RawName: "raw", SeriesLen: tLen, LeafCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	return tr, data, fs
}

func bruteForce1NN(q series.Series, data []series.Series) float64 {
	best := math.Inf(1)
	for _, d := range data {
		dist, _ := series.ED(q, d)
		if dist < best {
			best = dist
		}
	}
	return best
}

func TestBuild(t *testing.T) {
	tr, _, _ := buildFixture(t)
	defer tr.Close()
	if tr.Count() != tCount {
		t.Fatalf("Count = %d", tr.Count())
	}
	if tr.NumLeaves() < 2 {
		t.Fatal("expected splits to have happened")
	}
	if tr.SizeBytes() == 0 {
		t.Fatal("index empty on disk")
	}
}

func TestLeafCountsConsistent(t *testing.T) {
	tr, _, _ := buildFixture(t)
	defer tr.Close()
	var total int64
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.isLeaf() {
			entries, err := tr.readLeafEntries(n)
			if err != nil {
				return err
			}
			if int64(len(entries)) != n.count {
				t.Fatalf("leaf count %d != node count %d", len(entries), n.count)
			}
			total += n.count
			return nil
		}
		if n.left.count+n.right.count != n.count {
			t.Fatalf("internal count mismatch: %d + %d != %d", n.left.count, n.right.count, n.count)
		}
		if err := walk(n.left); err != nil {
			return err
		}
		return walk(n.right)
	}
	if err := walk(tr.root); err != nil {
		t.Fatal(err)
	}
	if total != tCount {
		t.Fatalf("leaves hold %d records", total)
	}
}

func TestMinDistLowerBoundsMembers(t *testing.T) {
	tr, data, _ := buildFixture(t)
	defer tr.Close()
	qs := dataset.Queries(dataset.NewRandomWalk(), 5, tLen, 3)
	var walk func(n *node, q series.Series)
	for _, q := range qs {
		walk = func(n *node, q series.Series) {
			lb := tr.minDist(q, n)
			if n.isLeaf() {
				entries, _ := tr.readLeafEntries(n)
				scratch := make(series.Series, tLen)
				for _, e := range entries {
					series.DecodeInto(e.raw, scratch)
					ed, _ := series.ED(q, scratch)
					if lb > ed+1e-9 {
						t.Fatalf("node bound %v exceeds member distance %v", lb, ed)
					}
					_ = data
				}
				return
			}
			walk(n.left, q)
			walk(n.right, q)
		}
		walk(tr.root, q)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	tr, data, _ := buildFixture(t)
	defer tr.Close()
	qs := dataset.Queries(dataset.NewRandomWalk(), 12, tLen, 5)
	for qi, q := range qs {
		want := bruteForce1NN(q, data)
		res, err := tr.ExactSearch(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Dist-want) > 1e-9 {
			t.Fatalf("query %d: %v != brute force %v", qi, res.Dist, want)
		}
	}
}

func TestMemberFound(t *testing.T) {
	tr, data, _ := buildFixture(t)
	defer tr.Close()
	res, err := tr.ExactSearch(data[7])
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("member not found: %v", res.Dist)
	}
}

func TestTopDownConstructionIsRandomIOBound(t *testing.T) {
	// DSTree's defining weakness: every insert re-reads and rewrites a
	// leaf. Random writes should be on the order of N.
	fs := storage.NewMemFS()
	dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), 300, tLen, 2)
	before := fs.Stats().Snapshot()
	tr, err := Build(Options{FS: fs, Name: "ds", RawName: "raw", SeriesLen: tLen, LeafCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	delta := fs.Stats().Snapshot().Sub(before)
	if delta.RandWrites < 100 {
		t.Fatalf("expected O(N) random writes, got %+v", delta)
	}
}

func TestIdenticalSeriesDegenerateLeaf(t *testing.T) {
	// All-identical series cannot be divided by any predicate; the index
	// must chain them into an oversized leaf rather than loop forever.
	fs := storage.NewMemFS()
	f, _ := fs.Create("raw")
	flat := make(series.Series, tLen)
	for i := range flat {
		flat[i] = math.Sin(float64(i)) // same series every time
	}
	flat.ZNormalize()
	w := storage.NewSequentialWriter(f, 0, 0)
	sw := series.NewWriter(w, tLen)
	for i := 0; i < 50; i++ {
		sw.Write(flat)
	}
	w.Flush()
	f.Close()
	tr, err := Build(Options{FS: fs, Name: "ds", RawName: "raw", SeriesLen: tLen, LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Count() != 50 {
		t.Fatalf("Count = %d", tr.Count())
	}
	res, err := tr.ExactSearch(flat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("identical series not found: %v", res.Dist)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	fs := storage.NewMemFS()
	if _, err := Build(Options{FS: fs, Name: "d", RawName: "missing", SeriesLen: 64, LeafCap: 8}); err == nil {
		t.Fatal("expected error for missing raw file")
	}
}
