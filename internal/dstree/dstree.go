// Package dstree implements the DSTree baseline (Wang et al., "A
// data-adaptive and dynamic segmentation index for whole matching on time
// series"): a binary tree whose nodes carry an adaptive segmentation of the
// series and, per segment, the min/max of the segment means and standard
// deviations of all resident series (an EAPCA synopsis). Those statistics
// give a lower bound on the distance from a query to anything in the node.
//
// Series are inserted ONE BY ONE, top-down — no buffering, no bulk loading.
// Every insert rewrites its leaf on disk, which is why the paper reports
// DSTree needing >24h on large datasets (§5.1): construction is O(N) random
// I/Os with a large constant.
package dstree

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
)

// Options configures a build.
type Options struct {
	// FS hosts the index and the raw dataset file.
	FS storage.FS
	// Name is the base file name.
	Name string
	// RawName is the dataset file.
	RawName string
	// SeriesLen is the series length.
	SeriesLen int
	// LeafCap is the number of series per leaf before splitting.
	LeafCap int
	// InitSegments is the starting segmentation granularity (default 4).
	InitSegments int
}

func (o *Options) validate() error {
	switch {
	case o.FS == nil:
		return errors.New("dstree: nil FS")
	case o.Name == "":
		return errors.New("dstree: empty name")
	case o.RawName == "":
		return errors.New("dstree: empty raw name")
	case o.SeriesLen <= 0:
		return errors.New("dstree: series length must be positive")
	case o.LeafCap < 2:
		return errors.New("dstree: leaf capacity must be at least 2")
	}
	if o.InitSegments <= 0 || o.InitSegments > o.SeriesLen {
		o.InitSegments = 4
	}
	return nil
}

// Result mirrors the other indexes' search answer.
type Result struct {
	Pos            int64
	Dist           float64
	VisitedRecords int64
	VisitedLeaves  int64
}

// segStat is the synopsis of one segment of one node.
type segStat struct {
	minMean, maxMean float64
	minStd, maxStd   float64
}

// node is a DSTree node. Segmentation is expressed as segment end indices
// (exclusive); children refine the parent's segmentation when a vertical
// split occurred.
type node struct {
	segEnds []int
	stats   []segStat
	count   int64
	// split description (internal nodes): children partition residents by
	// whether the mean of segment splitSeg is below/above splitVal (hsplit)
	// or, for vsplit, the same test on a refined segment.
	splitSeg int
	splitVal float64
	useStd   bool // split on stddev instead of mean
	left     *node
	right    *node
	// leafPage/leafPages locate the leaf's records; degenerate leaves
	// (identical series that no predicate divides) may span several pages.
	leafPage  int64
	leafPages int64
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is a built DSTree.
type Tree struct {
	opt      Options
	root     *node
	leafFile storage.File
	rawFile  storage.File
	count    int64
	nextPage int64
	nLeaves  int64
	// deadPages counts orphaned leaf pages after splits.
	deadPages int64
}

// entrySize: pos + raw series (DSTree is a materialized index).
func (t *Tree) entrySize() int { return 8 + series.EncodedSize(t.opt.SeriesLen) }

func (t *Tree) pageSize() int64 { return int64(4 + t.entrySize()*t.opt.LeafCap) }

// Build inserts every series of the dataset one by one.
func Build(opt Options) (*Tree, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	lf, err := opt.FS.Create(opt.Name + ".leaves")
	if err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		lf.Close()
		return nil, err
	}
	t := &Tree{opt: opt, leafFile: lf, rawFile: raw}
	t.root = t.newNode(uniformSegmentation(opt.SeriesLen, opt.InitSegments))
	if err := t.writeLeafEntries(t.root, nil); err != nil {
		lf.Close()
		raw.Close()
		return nil, err
	}
	t.nLeaves = 1

	r := series.NewReader(storage.NewSequentialReader(raw, 0, -1, 0), opt.SeriesLen)
	buf := make(series.Series, opt.SeriesLen)
	var pos int64
	for {
		if err := r.NextInto(buf); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			lf.Close()
			raw.Close()
			return nil, err
		}
		if err := t.Insert(buf, pos); err != nil {
			lf.Close()
			raw.Close()
			return nil, err
		}
		pos++
	}
	return t, nil
}

func uniformSegmentation(n, segs int) []int {
	ends := make([]int, segs)
	for i := 0; i < segs; i++ {
		ends[i] = (i + 1) * n / segs
	}
	return ends
}

func (t *Tree) newNode(segEnds []int) *node {
	n := &node{segEnds: segEnds, stats: make([]segStat, len(segEnds)), leafPage: -1}
	for i := range n.stats {
		n.stats[i] = segStat{
			minMean: math.Inf(1), maxMean: math.Inf(-1),
			minStd: math.Inf(1), maxStd: math.Inf(-1),
		}
	}
	return n
}

func (t *Tree) allocPages(k int64) int64 {
	id := t.nextPage
	t.nextPage += k
	return id
}

// segFeatures computes (mean, std) of s over [lo, hi).
func segFeatures(s series.Series, lo, hi int) (mean, std float64) {
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += s[i]
	}
	mean = sum / float64(hi-lo)
	acc := 0.0
	for i := lo; i < hi; i++ {
		d := s[i] - mean
		acc += d * d
	}
	return mean, math.Sqrt(acc / float64(hi-lo))
}

// updateStats folds one series into a node's synopsis.
func (n *node) updateStats(s series.Series) {
	lo := 0
	for i, hi := range n.segEnds {
		mean, std := segFeatures(s, lo, hi)
		st := &n.stats[i]
		if mean < st.minMean {
			st.minMean = mean
		}
		if mean > st.maxMean {
			st.maxMean = mean
		}
		if std < st.minStd {
			st.minStd = std
		}
		if std > st.maxStd {
			st.maxStd = std
		}
		lo = hi
	}
}

// Insert adds one series (top-down, no buffering).
func (t *Tree) Insert(s series.Series, pos int64) error {
	if len(s) != t.opt.SeriesLen {
		return fmt.Errorf("dstree: series length %d, want %d", len(s), t.opt.SeriesLen)
	}
	n := t.root
	for {
		n.updateStats(s)
		n.count++
		if n.isLeaf() {
			break
		}
		if t.routeRight(n, s) {
			n = n.right
		} else {
			n = n.left
		}
	}
	entries, err := t.readLeafEntries(n)
	if err != nil {
		return err
	}
	entries = append(entries, leafEntry{pos: pos, raw: series.AppendEncode(nil, s)})
	if len(entries) <= t.opt.LeafCap {
		t.count++
		return t.writeLeafEntries(n, entries)
	}
	if err := t.splitLeaf(n, entries); err != nil {
		return err
	}
	t.count++
	return nil
}

// routeRight applies the node's split predicate to a series.
func (t *Tree) routeRight(n *node, s series.Series) bool {
	lo := 0
	for i, hi := range n.segEnds {
		if i == n.splitSeg {
			mean, std := segFeatures(s, lo, hi)
			v := mean
			if n.useStd {
				v = std
			}
			return v >= n.splitVal
		}
		lo = hi
	}
	return false
}

// splitLeaf turns a full leaf into an internal node with two children,
// choosing the segment and feature (mean or stddev) whose midpoint split is
// the most balanced — the h-split of the DSTree paper. Children inherit the
// parent's segmentation with the split segment refined in two (v-split)
// when it is wider than one point.
func (t *Tree) splitLeaf(n *node, entries []leafEntry) error {
	// Decode features per entry per segment.
	type feats struct{ mean, std []float64 }
	fs := make([]feats, len(entries))
	scratch := make(series.Series, t.opt.SeriesLen)
	for i, e := range entries {
		series.DecodeInto(e.raw, scratch)
		f := feats{mean: make([]float64, len(n.segEnds)), std: make([]float64, len(n.segEnds))}
		lo := 0
		for j, hi := range n.segEnds {
			f.mean[j], f.std[j] = segFeatures(scratch, lo, hi)
			lo = hi
		}
		fs[i] = f
	}

	bestSeg, bestStd, bestBalance := -1, false, int64(-1)
	var bestVal float64
	for j := range n.segEnds {
		for _, useStd := range []bool{false, true} {
			st := n.stats[j]
			var mid float64
			if useStd {
				mid = (st.minStd + st.maxStd) / 2
			} else {
				mid = (st.minMean + st.maxMean) / 2
			}
			var right int64
			for i := range fs {
				v := fs[i].mean[j]
				if useStd {
					v = fs[i].std[j]
				}
				if v >= mid {
					right++
				}
			}
			left := int64(len(fs)) - right
			bal := left
			if right < left {
				bal = right
			}
			if bal > bestBalance {
				bestSeg, bestStd, bestBalance, bestVal = j, useStd, bal, mid
			}
		}
	}
	if bestSeg < 0 || bestBalance == 0 {
		// Degenerate: no predicate divides the residents (identical
		// series). Keep an oversized leaf spanning extra pages.
		return t.writeLeafEntries(n, entries)
	}

	// Children refine the split segment when possible (v-split).
	childSegs := n.segEnds
	segLo := 0
	if bestSeg > 0 {
		segLo = n.segEnds[bestSeg-1]
	}
	segHi := n.segEnds[bestSeg]
	if segHi-segLo >= 2 {
		childSegs = make([]int, 0, len(n.segEnds)+1)
		childSegs = append(childSegs, n.segEnds[:bestSeg]...)
		childSegs = append(childSegs, (segLo+segHi)/2)
		childSegs = append(childSegs, n.segEnds[bestSeg:]...)
	}

	n.splitSeg, n.splitVal, n.useStd = bestSeg, bestVal, bestStd
	n.left = t.newNode(append([]int(nil), childSegs...))
	n.right = t.newNode(append([]int(nil), childSegs...))
	if n.leafPage >= 0 {
		t.deadPages += n.leafPages
		n.leafPage, n.leafPages = -1, 0
	}
	t.nLeaves++ // one leaf became two

	var leftEntries, rightEntries []leafEntry
	for i, e := range entries {
		v := fs[i].mean[bestSeg]
		if bestStd {
			v = fs[i].std[bestSeg]
		}
		series.DecodeInto(e.raw, scratch)
		if v >= bestVal {
			n.right.updateStats(scratch)
			n.right.count++
			rightEntries = append(rightEntries, e)
		} else {
			n.left.updateStats(scratch)
			n.left.count++
			leftEntries = append(leftEntries, e)
		}
	}
	if err := t.writeLeafEntries(n.left, leftEntries); err != nil {
		return err
	}
	return t.writeLeafEntries(n.right, rightEntries)
}

type leafEntry struct {
	pos int64
	raw []byte
}

func (t *Tree) readLeafEntries(n *node) ([]leafEntry, error) {
	if n.leafPage < 0 || n.leafPages == 0 {
		return nil, nil
	}
	buf := make([]byte, n.leafPages*t.pageSize())
	if nr, err := t.leafFile.ReadAt(buf, n.leafPage*t.pageSize()); nr != len(buf) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("dstree: read leaf %d: %w", n.leafPage, err)
	}
	cnt := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
	es := t.entrySize()
	pageBytes := int(t.pageSize())
	out := make([]leafEntry, 0, cnt)
	off := 4
	inPage, page := 0, 0
	for i := 0; i < cnt; i++ {
		if inPage == t.opt.LeafCap {
			page++
			off = page*pageBytes + 4
			inPage = 0
		}
		var e leafEntry
		e.pos = int64(leU64(buf[off:]))
		e.raw = append([]byte(nil), buf[off+8:off+es]...)
		out = append(out, e)
		off += es
		inPage++
	}
	return out, nil
}

func (t *Tree) writeLeafEntries(n *node, entries []leafEntry) error {
	pagesNeeded := int64((len(entries) + t.opt.LeafCap - 1) / t.opt.LeafCap)
	if pagesNeeded == 0 {
		pagesNeeded = 1
	}
	if n.leafPage < 0 || n.leafPages != pagesNeeded {
		if n.leafPage >= 0 {
			t.deadPages += n.leafPages
		}
		n.leafPage = t.allocPages(pagesNeeded)
		n.leafPages = pagesNeeded
	}
	buf := make([]byte, pagesNeeded*t.pageSize())
	buf[0] = byte(len(entries))
	buf[1] = byte(len(entries) >> 8)
	buf[2] = byte(len(entries) >> 16)
	buf[3] = byte(len(entries) >> 24)
	es := t.entrySize()
	pageBytes := int(t.pageSize())
	off := 4
	inPage, page := 0, 0
	for _, e := range entries {
		if inPage == t.opt.LeafCap {
			page++
			off = page*pageBytes + 4
			inPage = 0
		}
		putU64(buf[off:], uint64(e.pos))
		copy(buf[off+8:], e.raw)
		off += es
		inPage++
	}
	_, err := t.leafFile.WriteAt(buf, n.leafPage*t.pageSize())
	return err
}

// minDist lower-bounds the distance from q to any series in n using the
// segment-mean envelope: within each segment the resident means lie in
// [minMean, maxMean], and Σ width·(gap in means)² lower-bounds the true
// squared distance (Cauchy-Schwarz on segment averages).
func (t *Tree) minDist(q series.Series, n *node) float64 {
	acc := 0.0
	lo := 0
	for i, hi := range n.segEnds {
		qMean, _ := segFeatures(q, lo, hi)
		st := n.stats[i]
		var d float64
		switch {
		case qMean < st.minMean:
			d = st.minMean - qMean
		case qMean > st.maxMean:
			d = qMean - st.maxMean
		}
		if d != 0 {
			acc += float64(hi-lo) * d * d
		}
		lo = hi
	}
	return math.Sqrt(acc)
}

// Count returns the number of indexed series.
func (t *Tree) Count() int64 { return t.count }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int64 { return t.nLeaves }

// SizeBytes returns the on-device index size.
func (t *Tree) SizeBytes() int64 {
	size, err := t.leafFile.Size()
	if err != nil {
		return 0
	}
	return size
}

// Close releases file handles.
func (t *Tree) Close() error {
	err1 := t.leafFile.Close()
	err2 := t.rawFile.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// ApproxSearch descends to the most promising leaf.
func (t *Tree) ApproxSearch(q series.Series) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if t.count == 0 {
		return res, errors.New("dstree: index is empty")
	}
	n := t.root
	for !n.isLeaf() {
		if t.minDist(q, n.left) <= t.minDist(q, n.right) {
			n = n.left
		} else {
			n = n.right
		}
	}
	return res, t.scanLeaf(q, n, &res)
}

func (t *Tree) scanLeaf(q series.Series, n *node, res *Result) error {
	entries, err := t.readLeafEntries(n)
	if err != nil {
		return err
	}
	res.VisitedLeaves++
	scratch := make(series.Series, t.opt.SeriesLen)
	for _, e := range entries {
		series.DecodeInto(e.raw, scratch)
		sq, err := series.SquaredED(q, scratch)
		if err != nil {
			return err
		}
		res.VisitedRecords++
		if d := math.Sqrt(sq); d < res.Dist {
			res.Dist, res.Pos = d, e.pos
		}
	}
	return nil
}

type pqItem struct {
	n    *node
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ExactSearch is best-first branch-and-bound over the synopsis bounds.
func (t *Tree) ExactSearch(q series.Series) (Result, error) {
	res, err := t.ApproxSearch(q)
	if err != nil {
		return res, err
	}
	queue := &pq{{t.root, t.minDist(q, t.root)}}
	for queue.Len() > 0 {
		it := heap.Pop(queue).(pqItem)
		if it.dist >= res.Dist {
			break
		}
		if !it.n.isLeaf() {
			for _, c := range []*node{it.n.left, it.n.right} {
				if d := t.minDist(q, c); d < res.Dist {
					heap.Push(queue, pqItem{c, d})
				}
			}
			continue
		}
		if err := t.scanLeaf(q, it.n, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
