package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// OpSync is the fsync operation. It is only observable through FaultFS:
// plain MemFS bytes are always "stable", so its Sync never consults hooks.
const OpSync Op = "sync"

var (
	// ErrInjected is returned by the single operation a FailAt trigger
	// fires on; the device keeps working afterwards.
	ErrInjected = errors.New("storage: injected fault")
	// ErrCrashed is returned by every operation at and after a PowerLossAt
	// trigger: the simulated machine has lost power and nothing else
	// reaches the device until Recover builds the post-reboot image.
	ErrCrashed = errors.New("storage: simulated power loss")
)

// FaultFS wraps any FS with deterministic fault injection and a model of
// which bytes have actually reached stable storage. It is the shared
// crash- and corruption-injection harness for the lsm, manifest, and
// partition test suites, usable over MemFS and (in a temp dir) OSFS
// alike.
//
// The durability model mirrors a disk with a volatile write cache:
//
//   - Create/WriteAt/Truncate mutate only the live (in-cache) image.
//   - Sync copies the file's live bytes into the durable image — nothing
//     written after the last successful Sync survives a power loss.
//   - Rename is applied to the durable namespace, carrying the old name's
//     durable content; a file renamed without ever being synced has no
//     durable content under either name (the classic missing-fsync-before-
//     rename bug surfaces as a missing file after Recover).
//   - Remove is applied to the durable namespace.
//
// Faults trigger on a deterministic count of mutating operations
// (create/write/sync/rename/remove by default — reads and opens are
// uncounted so query activity cannot shift write-path fault points).
// FailAt makes exactly the Nth counted operation fail and then disarms;
// PowerLossAt makes the Nth and every later operation fail with
// ErrCrashed without being applied. After a power loss, Recover returns a
// fresh MemFS holding only the durable image — optionally with a torn
// tail of un-synced bytes — which tests reopen indexes against.
//
// Rot models silent media decay rather than a crash: it flips bytes of a
// named file in both the live and durable images, recording each event,
// so corruption-sweep tests can rot every artifact class in turn and
// assert that reads detect it.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	durable map[string][]byte
	counted map[Op]bool
	ops     int64
	failAt  int64 // one-shot ErrInjected on the Nth counted op (0 = disarmed)
	lossAt  int64 // sticky ErrCrashed from the Nth counted op on (0 = disarmed)
	delayAt int64 // one-shot sleep before the Nth counted op (0 = disarmed)
	delay   time.Duration
	stallAt int64         // one-shot park on the Nth counted op (0 = disarmed)
	stallCh chan struct{} // release signal for the parked op
	parkCh  chan struct{} // closed when the op actually parks
	crashed bool
	hook    func(op Op, name string)
	rots    []RotEvent
}

// RotEvent records one injected bit-rot: n bytes XOR-flipped at off in the
// named file.
type RotEvent struct {
	Name string
	Off  int64
	N    int
}

// NewFaultFS wraps inner. Files already on inner (datasets, seed indexes)
// are snapshotted as durable, as if the machine had just booted cleanly;
// the inner FS must expose Names() (MemFS and OSFS both do).
func NewFaultFS(inner FS) *FaultFS {
	f := &FaultFS{
		inner:   inner,
		durable: make(map[string][]byte),
		counted: map[Op]bool{OpCreate: true, OpWrite: true, OpSync: true, OpRename: true, OpRemove: true},
	}
	for _, name := range listNames(inner) {
		if data, err := ReadFileAll(inner, name); err == nil {
			f.durable[name] = data
		}
	}
	return f
}

// listNames enumerates inner's files via the non-interface Names method
// both concrete backends provide.
func listNames(fs FS) []string {
	if n, ok := fs.(interface{ Names() []string }); ok {
		return n.Names()
	}
	return nil
}

// SetHook installs a pre-operation callback (nil removes it). The hook
// runs outside the FaultFS lock before every operation, including
// uncounted ones, so it can delay a specific file's fsync without
// serializing unrelated I/O — the slow-commit regression tests block a
// manifest sync here while asserting queries still proceed.
func (f *FaultFS) SetHook(hook func(op Op, name string)) {
	f.mu.Lock()
	f.hook = hook
	f.mu.Unlock()
}

// SetCounted replaces the set of operations that advance the fault
// counter.
func (f *FaultFS) SetCounted(ops ...Op) {
	f.mu.Lock()
	f.counted = make(map[Op]bool, len(ops))
	for _, op := range ops {
		f.counted[op] = true
	}
	f.mu.Unlock()
}

// OpCount returns how many counted operations have been attempted. A
// disarmed dry run of a workload bounds the crash-window sweep.
func (f *FaultFS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// FailAt arms a one-shot fault: the nth counted operation (1-based,
// counting from the start) fails with ErrInjected, later ones succeed.
func (f *FaultFS) FailAt(n int64) {
	f.mu.Lock()
	f.failAt = n
	f.mu.Unlock()
}

// PowerLossAt arms a crash: the nth counted operation (1-based) and every
// operation after it fail with ErrCrashed without being applied.
func (f *FaultFS) PowerLossAt(n int64) {
	f.mu.Lock()
	f.lossAt = n
	f.mu.Unlock()
}

// DelayAt arms a one-shot latency fault: the nth counted operation
// (1-based) sleeps d before proceeding, later ones run at full speed. It
// models a transiently slow device (a contended disk, a degraded RAID
// member) rather than a failed one: the operation still succeeds.
func (f *FaultFS) DelayAt(n int64, d time.Duration) {
	f.mu.Lock()
	f.delayAt, f.delay = n, d
	f.mu.Unlock()
}

// StallAt arms a one-shot stall: the nth counted operation (1-based) parks
// indefinitely until release is called. release is idempotent and safe
// from any goroutine — pair it with context.AfterFunc(ctx, release) for a
// context-aware unblock, or call it from test cleanup so abandoned
// goroutines drain. The returned parked channel closes the moment the
// victim operation actually parks, letting tests sequence "request is now
// stuck" before cancelling or shutting down.
func (f *FaultFS) StallAt(n int64) (release func(), parked <-chan struct{}) {
	rel := make(chan struct{})
	prk := make(chan struct{})
	f.mu.Lock()
	f.stallAt, f.stallCh, f.parkCh = n, rel, prk
	f.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(rel) }) }, prk
}

// Crash cuts power immediately: every subsequent operation fails with
// ErrCrashed.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// Crashed reports whether a power loss has triggered.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Recover returns the post-reboot disk image: a fresh MemFS holding each
// durable file's durable bytes. If torn > 0, files whose live image had
// grown past the durable length additionally keep up to torn bytes of
// that un-synced tail — the partially-persisted ("torn") write a real
// disk can leave behind, which log replay must detect and discard.
func (f *FaultFS) Recover(torn int) *MemFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec := NewMemFS()
	for name, data := range f.durable {
		content := append([]byte(nil), data...)
		if torn > 0 {
			if live, err := ReadFileAll(f.inner, name); err == nil && len(live) > len(content) {
				extra := len(live) - len(content)
				if extra > torn {
					extra = torn
				}
				content = append(content, live[len(content):len(content)+extra]...)
			}
		}
		file, err := rec.Create(name)
		if err != nil {
			continue // fresh MemFS with no faults: unreachable
		}
		if len(content) > 0 {
			_, _ = file.WriteAt(content, 0)
		}
		_ = file.Close()
	}
	return rec
}

// gate runs the hook, then applies crash state and fault triggers for one
// operation. Latency faults (DelayAt/StallAt) are applied outside the
// lock, so a delayed or stalled operation never serializes unrelated I/O —
// exactly like a real device with one slow platter region.
func (f *FaultFS) gate(op Op, name string) error {
	f.mu.Lock()
	hook := f.hook
	f.mu.Unlock()
	if hook != nil {
		hook(op, name)
	}
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	if !f.counted[op] {
		f.mu.Unlock()
		return nil
	}
	f.ops++
	if f.lossAt > 0 && f.ops >= f.lossAt {
		f.crashed = true
		f.mu.Unlock()
		return ErrCrashed
	}
	if f.failAt > 0 && f.ops == f.failAt {
		f.failAt = 0
		f.mu.Unlock()
		return ErrInjected
	}
	var sleep time.Duration
	if f.delayAt > 0 && f.ops == f.delayAt {
		f.delayAt = 0
		sleep = f.delay
	}
	var release, parked chan struct{}
	if f.stallAt > 0 && f.ops == f.stallAt {
		f.stallAt = 0
		release, parked = f.stallCh, f.parkCh
	}
	f.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if release != nil {
		close(parked)
		<-release
	}
	return nil
}

// Create creates or truncates the named file (live image only; the file
// is not durable until synced).
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.gate(OpCreate, name); err != nil {
		return nil, fmt.Errorf("storage: create %q: %w", name, err)
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Open opens an existing file.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.gate(OpOpen, name); err != nil {
		return nil, fmt.Errorf("storage: open %q: %w", name, err)
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Remove deletes the named file from both the live and durable images.
func (f *FaultFS) Remove(name string) error {
	if err := f.gate(OpRemove, name); err != nil {
		return fmt.Errorf("storage: remove %q: %w", name, err)
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.durable, name)
	f.mu.Unlock()
	return nil
}

// Rename applies POSIX rename to both images. The durable content under
// newname becomes oldname's durable content — absent entirely if oldname
// was never synced.
func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.gate(OpRename, oldname); err != nil {
		return fmt.Errorf("storage: rename %q: %w", oldname, err)
	}
	if err := f.inner.Rename(oldname, newname); err != nil {
		return err
	}
	f.mu.Lock()
	if d, ok := f.durable[oldname]; ok {
		f.durable[newname] = d
		delete(f.durable, oldname)
	} else {
		delete(f.durable, newname)
	}
	f.mu.Unlock()
	return nil
}

// Exists reports whether the named file exists in the live image.
func (f *FaultFS) Exists(name string) bool { return f.inner.Exists(name) }

// Stats returns the underlying file system's I/O statistics.
func (f *FaultFS) Stats() *Stats { return f.inner.Stats() }

// markDurable snapshots the file's live bytes as the durable image.
func (f *FaultFS) markDurable(name string) {
	data, err := ReadFileAll(f.inner, name)
	if err != nil {
		return
	}
	f.mu.Lock()
	f.durable[name] = data
	f.mu.Unlock()
}

// Rot XOR-flips n bytes at off in the named file's live image and, for the
// overlapping range, its durable image — silent media decay below every
// checksum. The flip (XOR 0xA5) guarantees every affected byte changes.
// Rot bypasses the fault gate: it is a harness action, not an operation
// the system under test performs.
func (f *FaultFS) Rot(name string, off int64, n int) error {
	if n <= 0 || off < 0 {
		return fmt.Errorf("storage: rot %q: invalid range [%d,+%d)", name, off, n)
	}
	fl, err := f.inner.Open(name)
	if err != nil {
		return fmt.Errorf("storage: rot %q: %w", name, err)
	}
	defer fl.Close()
	size, err := fl.Size()
	if err != nil {
		return fmt.Errorf("storage: rot %q: size: %w", name, err)
	}
	if off+int64(n) > size {
		return fmt.Errorf("storage: rot %q: range [%d,+%d) outside %d-byte file", name, off, n, size)
	}
	buf := make([]byte, n)
	if _, err := fl.ReadAt(buf, off); err != nil {
		return fmt.Errorf("storage: rot %q: read: %w", name, err)
	}
	for i := range buf {
		buf[i] ^= 0xA5
	}
	if _, err := fl.WriteAt(buf, off); err != nil {
		return fmt.Errorf("storage: rot %q: write: %w", name, err)
	}
	f.mu.Lock()
	if d, ok := f.durable[name]; ok && off < int64(len(d)) {
		end := min(off+int64(n), int64(len(d)))
		for i := off; i < end; i++ {
			d[i] ^= 0xA5
		}
	}
	f.rots = append(f.rots, RotEvent{Name: name, Off: off, N: n})
	f.mu.Unlock()
	return nil
}

// Rots returns every bit-rot event injected so far, in order.
func (f *FaultFS) Rots() []RotEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]RotEvent(nil), f.rots...)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.gate(OpRead, f.inner.Name()); err != nil {
		return 0, fmt.Errorf("storage: read %q: %w", f.inner.Name(), err)
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.fs.gate(OpWrite, f.inner.Name()); err != nil {
		return 0, fmt.Errorf("storage: write %q: %w", f.inner.Name(), err)
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Size() (int64, error) {
	f.fs.mu.Lock()
	crashed := f.fs.crashed
	f.fs.mu.Unlock()
	if crashed {
		return 0, fmt.Errorf("storage: size %q: %w", f.inner.Name(), ErrCrashed)
	}
	return f.inner.Size()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.gate(OpWrite, f.inner.Name()); err != nil {
		return fmt.Errorf("storage: truncate %q: %w", f.inner.Name(), err)
	}
	return f.inner.Truncate(size)
}

// Sync flushes the live bytes into the durable image. If the sync itself
// is the faulted operation, the durable image is left untouched: the
// power was lost before the cache reached the platter.
func (f *faultFile) Sync() error {
	if err := f.fs.gate(OpSync, f.inner.Name()); err != nil {
		return fmt.Errorf("storage: sync %q: %w", f.inner.Name(), err)
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.fs.markDurable(f.inner.Name())
	return nil
}

// Close never fails: post-crash cleanup paths must still be able to
// release handles.
func (f *faultFile) Close() error { return f.inner.Close() }
