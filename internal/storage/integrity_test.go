package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

// writeChecksummed builds a checksum file on fs with the given block size
// and payload, appending in the given chunk sizes, syncing, and closing.
func writeChecksummed(t *testing.T, fs FS, name string, block int, payload []byte, chunk int) {
	t.Helper()
	inner, err := fs.Create(name)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	cf, err := CreateChecksumFile(inner, block)
	if err != nil {
		t.Fatalf("CreateChecksumFile: %v", err)
	}
	for off := 0; off < len(payload); off += chunk {
		end := min(off+chunk, len(payload))
		if n, err := cf.WriteAt(payload[off:end], int64(off)); err != nil || n != end-off {
			t.Fatalf("append at %d: n=%d err=%v", off, n, err)
		}
	}
	if err := cf.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestChecksumFileRoundTrip(t *testing.T) {
	for _, tc := range []struct{ block, size, chunk int }{
		{16, 0, 7},   // empty file
		{16, 16, 16}, // exactly one block
		{16, 100, 7}, // ragged appends, partial tail
		{64, 64 * 5, 64},
		{33, 1000, 501}, // chunks spanning several blocks
	} {
		name := fmt.Sprintf("b%d_s%d_c%d", tc.block, tc.size, tc.chunk)
		t.Run(name, func(t *testing.T) {
			fs := NewMemFS()
			payload := make([]byte, tc.size)
			for i := range payload {
				payload[i] = byte(i * 31)
			}
			writeChecksummed(t, fs, "f", tc.block, payload, tc.chunk)

			inner, err := fs.Open("f")
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			cf, err := OpenChecksumFile(inner)
			if err != nil {
				t.Fatalf("OpenChecksumFile: %v", err)
			}
			if cf.BlockSize() != tc.block {
				t.Fatalf("block size %d, want %d", cf.BlockSize(), tc.block)
			}
			if size, _ := cf.Size(); size != int64(tc.size) {
				t.Fatalf("logical size %d, want %d", size, tc.size)
			}
			// Whole-file read plus a sweep of unaligned windows.
			got := make([]byte, tc.size)
			if tc.size > 0 {
				if n, err := cf.ReadAt(got, 0); err != nil || n != tc.size {
					t.Fatalf("read all: n=%d err=%v", n, err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatal("payload mismatch on full read")
				}
			}
			for off := 0; off < tc.size; off += 13 {
				win := make([]byte, min(29, tc.size-off))
				if n, err := cf.ReadAt(win, int64(off)); err != nil || n != len(win) {
					t.Fatalf("read [%d,+%d): n=%d err=%v", off, len(win), n, err)
				}
				if !bytes.Equal(win, payload[off:off+len(win)]) {
					t.Fatalf("payload mismatch at window %d", off)
				}
			}
			// Reading past EOF yields io.EOF, short reads report it too.
			if _, err := cf.ReadAt(make([]byte, 1), int64(tc.size)); err != io.EOF {
				t.Fatalf("read at EOF: %v, want io.EOF", err)
			}
			if blocks, err := VerifyChecksumBlocks(inner); err != nil {
				t.Fatalf("VerifyChecksumBlocks: blocks=%d err=%v", blocks, err)
			}
			cf.Close()
		})
	}
}

func TestChecksumFileDetectsRot(t *testing.T) {
	const block, size = 32, 200
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Rot every byte position in turn (header, CRCs, payloads, tail) and
	// assert the read path yields ErrCorruptData — never wrong bytes.
	pristineFS := NewMemFS()
	writeChecksummed(t, pristineFS, "f", block, payload, 17)
	pristine, err := ReadFileAll(pristineFS, "f")
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(pristine); off++ {
		fs := NewMemFS()
		if err := WriteFileAll(fs, "f", pristine); err != nil {
			t.Fatal(err)
		}
		ff := NewFaultFS(fs)
		if err := ff.Rot("f", int64(off), 1); err != nil {
			t.Fatalf("rot at %d: %v", off, err)
		}
		inner, err := fs.Open("f")
		if err != nil {
			t.Fatal(err)
		}
		cf, err := OpenChecksumFile(inner)
		if err != nil {
			if !errors.Is(err, ErrCorruptData) {
				t.Fatalf("rot at %d: open error %v is not ErrCorruptData", off, err)
			}
			inner.Close()
			continue
		}
		got := make([]byte, size)
		n, err := cf.ReadAt(got, 0)
		switch {
		case err == nil && n == size:
			if !bytes.Equal(got, payload) {
				t.Fatalf("rot at %d: silent wrong answer", off)
			}
			t.Fatalf("rot at %d: read succeeded with matching bytes — rot not applied?", off)
		case errors.Is(err, ErrCorruptData):
			// detected, as required
		default:
			t.Fatalf("rot at %d: unexpected error %v", off, err)
		}
		if _, err := VerifyChecksumBlocks(inner); !errors.Is(err, ErrCorruptData) {
			t.Fatalf("rot at %d: VerifyChecksumBlocks error %v is not ErrCorruptData", off, err)
		}
		cf.Close()
	}
}

func TestChecksumFileRewriteAndAlignment(t *testing.T) {
	fs := NewMemFS()
	const block = 16
	payload := bytes.Repeat([]byte{1}, block*3)
	writeChecksummed(t, fs, "f", block, payload, len(payload))
	inner, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	cf, err := OpenChecksumFile(inner)
	if err != nil {
		t.Fatal(err)
	}
	// Whole-block rewrite succeeds and reads back verified.
	newBlock := bytes.Repeat([]byte{9}, block)
	if _, err := cf.WriteAt(newBlock, block); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	got := make([]byte, block)
	if _, err := cf.ReadAt(got, block); err != nil || !bytes.Equal(got, newBlock) {
		t.Fatalf("read back rewrite: %v", err)
	}
	// Misaligned or mid-file writes are rejected.
	for _, bad := range []struct {
		off int64
		n   int
	}{{1, block}, {block, block - 1}, {int64(block * 10), block}} {
		if _, err := cf.WriteAt(make([]byte, bad.n), bad.off); err == nil {
			t.Fatalf("write off=%d len=%d unexpectedly succeeded", bad.off, bad.n)
		}
	}
	cf.Close()
}

func TestChecksumFileTornTail(t *testing.T) {
	// A file cut mid-block (1..4 stray bytes after the last full block)
	// must open as corrupt, not as a shorter valid file.
	fs := NewMemFS()
	payload := bytes.Repeat([]byte{7}, 40)
	writeChecksummed(t, fs, "f", 16, payload, 40)
	data, err := ReadFileAll(fs, "f")
	if err != nil {
		t.Fatal(err)
	}
	full := ChecksumHeaderSize + (4 + 16) // one full block
	for cut := full + 1; cut <= full+4; cut++ {
		fs2 := NewMemFS()
		if err := WriteFileAll(fs2, "f", data[:cut]); err != nil {
			t.Fatal(err)
		}
		inner, err := fs2.Open("f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := OpenChecksumFile(inner); !errors.Is(err, ErrCorruptData) {
			t.Fatalf("cut=%d: open error %v is not ErrCorruptData", cut, err)
		}
		inner.Close()
	}
}

func TestRecordSumsLifecycle(t *testing.T) {
	fs := NewMemFS()
	const recSize = 8
	raw := func() File {
		f, err := fs.Open("raw")
		if err != nil {
			t.Fatalf("open raw: %v", err)
		}
		return f
	}
	// Build over 10 records.
	f, err := fs.Create("raw")
	if err != nil {
		t.Fatal(err)
	}
	rec := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, recSize) }
	for i := 0; i < 10; i++ {
		if _, err := f.WriteAt(rec(i), int64(i*recSize)); err != nil {
			t.Fatal(err)
		}
	}
	f.Sync()
	f.Close()
	rs, err := BuildRecordSums(fs, "raw", recSize)
	if err != nil {
		t.Fatalf("BuildRecordSums: %v", err)
	}
	if rs.Records() != 10 {
		t.Fatalf("records %d, want 10", rs.Records())
	}
	for i := 0; i < 10; i++ {
		if err := rs.Verify(int64(i), rec(i)); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	if err := rs.Verify(3, rec(4)); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("wrong bytes verify error %v, want ErrCorruptData", err)
	}
	if err := rs.Verify(10, rec(0)); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("out-of-range verify error %v, want ErrCorruptData", err)
	}
	// Reopen, extend the raw file, reconcile, flush, reopen again.
	rs2, err := OpenRecordSums(fs, "raw", recSize)
	if err != nil {
		t.Fatalf("OpenRecordSums: %v", err)
	}
	f = raw()
	for i := 10; i < 14; i++ {
		if _, err := f.WriteAt(rec(i), int64(i*recSize)); err != nil {
			t.Fatal(err)
		}
	}
	f.Sync()
	if err := rs2.Reconcile(f, 14); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	f.Close()
	if err := rs2.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n, err := VerifyRecordSums(fs, "raw", recSize); err != nil || n != 14 {
		t.Fatalf("VerifyRecordSums: n=%d err=%v", n, err)
	}
	// Rot one raw byte: VerifyRecordSums and Verify must both catch it.
	ff := NewFaultFS(fs)
	if err := ff.Rot("raw", 5*recSize+2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyRecordSums(fs, "raw", recSize); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("rotted raw: VerifyRecordSums error %v, want ErrCorruptData", err)
	}
	// A torn sidecar tail (crashed flush) is dropped and reconciled.
	side := RecordSumsName("raw")
	data, err := ReadFileAll(fs, side)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAll(fs, side, data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}
	rs3, err := OpenRecordSums(fs, "raw", recSize)
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	if rs3.Records() != 13 {
		t.Fatalf("after torn tail: records %d, want 13", rs3.Records())
	}
	// A mangled header is typed corruption.
	if err := WriteFileAll(fs, side, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRecordSums(fs, "raw", recSize); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("mangled header error %v, want ErrCorruptData", err)
	}
	// A missing sidecar is ErrNotExist so callers can rebuild.
	if err := fs.Remove(side); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRecordSums(fs, "raw", recSize); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing sidecar error %v, want ErrNotExist", err)
	}
}

func TestRetryFSRecoversTransientAndSticksAfterExhaustion(t *testing.T) {
	mem := NewMemFS()
	if err := WriteFileAll(mem, "f", bytes.Repeat([]byte{5}, 64)); err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFS(mem)
	ff.SetCounted(OpRead)

	var slept []time.Duration
	rfs := NewRetryFS(ff, RetryPolicy{Retries: 3, Backoff: time.Millisecond})
	rfs.sleep = func(d time.Duration) { slept = append(slept, d) }

	f, err := rfs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	// One injected EIO: the first read fails, the retry succeeds.
	ff.FailAt(ff.OpCount() + 1)
	buf := make([]byte, 8)
	if n, err := f.ReadAt(buf, 0); err != nil || n != 8 {
		t.Fatalf("read with transient fault: n=%d err=%v", n, err)
	}
	if len(slept) != 1 || slept[0] != time.Millisecond {
		t.Fatalf("backoff sleeps %v, want [1ms]", slept)
	}
	// EOF-shaped and corruption errors are never retried.
	slept = nil
	if _, err := f.ReadAt(make([]byte, 8), 1000); err != io.EOF {
		t.Fatalf("EOF read: %v", err)
	}
	if len(slept) != 0 {
		t.Fatalf("EOF read slept %v, want none", slept)
	}
	// A persistent fault exhausts the budget with doubling backoff and the
	// handle goes sticky: the next read fails without touching the device.
	ff.Crash()
	_, err = f.ReadAt(buf, 0)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed read error %v, want ErrCrashed", err)
	}
	if len(slept) != 0 {
		t.Fatalf("ErrCrashed retried: slept %v", slept)
	}
	// ErrCrashed is non-retryable; use a second FaultFS layer for a
	// generic persistent error instead.
	mem2 := NewMemFS()
	if err := WriteFileAll(mem2, "g", bytes.Repeat([]byte{6}, 16)); err != nil {
		t.Fatal(err)
	}
	persistent := &alwaysFailFS{inner: mem2}
	rfs2 := NewRetryFS(persistent, RetryPolicy{Retries: 2, Backoff: time.Millisecond})
	slept = nil
	rfs2.sleep = func(d time.Duration) { slept = append(slept, d) }
	g, err := rfs2.Open("g")
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.ReadAt(buf, 0)
	if err == nil || !errors.Is(err, errAlwaysFail) {
		t.Fatalf("exhausted read error %v, want wrapped errAlwaysFail", err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff %v, want %v", slept, want)
	}
	slept = nil
	if _, err2 := g.ReadAt(buf, 0); !errors.Is(err2, errAlwaysFail) || len(slept) != 0 {
		t.Fatalf("sticky read: err=%v slept=%v, want immediate same error", err2, slept)
	}
}

var errAlwaysFail = errors.New("device gone")

// alwaysFailFS fails every ReadAt with a generic (retryable) error.
type alwaysFailFS struct{ inner FS }

func (a *alwaysFailFS) Create(name string) (File, error) {
	f, err := a.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &alwaysFailFile{f}, nil
}
func (a *alwaysFailFS) Open(name string) (File, error) {
	f, err := a.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &alwaysFailFile{f}, nil
}
func (a *alwaysFailFS) Remove(name string) error { return a.inner.Remove(name) }
func (a *alwaysFailFS) Rename(o, n string) error { return a.inner.Rename(o, n) }
func (a *alwaysFailFS) Exists(name string) bool  { return a.inner.Exists(name) }
func (a *alwaysFailFS) Stats() *Stats            { return a.inner.Stats() }

type alwaysFailFile struct{ File }

func (f *alwaysFailFile) ReadAt(p []byte, off int64) (int, error) { return 0, errAlwaysFail }

func TestFaultFSRotOverOSFS(t *testing.T) {
	// The generalized FaultFS must drive rot injection over a real
	// directory exactly as over MemFS.
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, 128)
	writeChecksummed(t, osfs, "f", 32, payload, 50)
	ff := NewFaultFS(osfs)
	if rots := ff.Rots(); len(rots) != 0 {
		t.Fatalf("fresh harness has rot events: %v", rots)
	}
	if err := ff.Rot("f", ChecksumHeaderSize+4+3, 2); err != nil {
		t.Fatal(err)
	}
	rots := ff.Rots()
	if len(rots) != 1 || rots[0].Name != "f" || rots[0].N != 2 {
		t.Fatalf("rot log %v", rots)
	}
	inner, err := osfs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if _, err := VerifyChecksumBlocks(inner); !errors.Is(err, ErrCorruptData) {
		t.Fatalf("rot over OSFS: %v, want ErrCorruptData", err)
	}
	// Crash recovery still works over a non-mem inner: durable snapshot
	// carries the rot, Recover yields a MemFS image of it.
	rec := ff.Recover(0)
	recData, err := ReadFileAll(rec, "f")
	if err != nil {
		t.Fatal(err)
	}
	liveData, err := ReadFileAll(osfs, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recData, liveData) {
		t.Fatal("recovered image does not match synced live image")
	}
	// Out-of-range rot is rejected.
	if err := ff.Rot("f", int64(len(liveData)), 1); err == nil {
		t.Fatal("out-of-range rot succeeded")
	}
	if err := ff.Rot("missing", 0, 1); err == nil {
		t.Fatal("rot of missing file succeeded")
	}
}

// FuzzChecksumFile hammers the checksum-file decoder with arbitrary
// physical bytes: opening and fully reading must yield a typed error or
// consistent data — never a panic, never a read past the claimed size.
func FuzzChecksumFile(f *testing.F) {
	seedFS := NewMemFS()
	inner, _ := seedFS.Create("seed")
	cf, _ := CreateChecksumFile(inner, 16)
	cf.WriteAt(bytes.Repeat([]byte{42}, 40), 0)
	cf.Sync()
	cf.Close()
	seed, _ := ReadFileAll(seedFS, "seed")
	f.Add(seed)
	f.Add(seed[:ChecksumHeaderSize])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := NewMemFS()
		if err := WriteFileAll(fs, "f", data); err != nil {
			t.Skip()
		}
		file, err := fs.Open("f")
		if err != nil {
			t.Skip()
		}
		defer file.Close()
		cf, err := OpenChecksumFile(file)
		if err != nil {
			return // typed rejection is fine
		}
		size, err := cf.Size()
		if err != nil || size < 0 {
			t.Fatalf("size=%d err=%v", size, err)
		}
		buf := make([]byte, size)
		if n, err := cf.ReadAt(buf, 0); err != nil && !errors.Is(err, ErrCorruptData) && err != io.EOF {
			t.Fatalf("read: n=%d err=%v", n, err)
		}
		_, verr := VerifyChecksumBlocks(file)
		if verr != nil && !errors.Is(verr, ErrCorruptData) {
			t.Fatalf("verify: %v", verr)
		}
	})
}
