package storage

import (
	"fmt"
	"io"
)

// DefaultBufferSize is the buffer used by SequentialReader/Writer when the
// caller does not specify one. It approximates one large disk transfer.
const DefaultBufferSize = 1 << 20 // 1 MiB

// SequentialWriter appends to a File through a fixed-size buffer, turning
// many small logical writes into few large sequential device writes — the
// access pattern every bottom-up bulk loader in this repository relies on.
type SequentialWriter struct {
	f   File
	buf []byte
	n   int
	off int64
	err error
}

// NewSequentialWriter returns a writer appending to f starting at offset
// off, with the given buffer size (DefaultBufferSize when size <= 0).
func NewSequentialWriter(f File, off int64, size int) *SequentialWriter {
	if size <= 0 {
		size = DefaultBufferSize
	}
	return &SequentialWriter{f: f, buf: make([]byte, size), off: off}
}

// Write appends p. It only errors if a buffer flush fails.
func (w *SequentialWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	total := 0
	for len(p) > 0 {
		if w.n == len(w.buf) {
			if err := w.Flush(); err != nil {
				return total, err
			}
		}
		c := copy(w.buf[w.n:], p)
		w.n += c
		p = p[c:]
		total += c
	}
	return total, nil
}

// Flush writes buffered bytes to the device.
func (w *SequentialWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.n == 0 {
		return nil
	}
	if _, err := w.f.WriteAt(w.buf[:w.n], w.off); err != nil {
		w.err = fmt.Errorf("storage: flush: %w", err)
		return w.err
	}
	w.off += int64(w.n)
	w.n = 0
	return nil
}

// Offset returns the file offset the next appended byte will land at.
func (w *SequentialWriter) Offset() int64 { return w.off + int64(w.n) }

// SequentialReader scans a File forward through a fixed-size buffer.
// It implements io.Reader.
type SequentialReader struct {
	f     File
	buf   []byte
	r, n  int
	off   int64
	limit int64 // exclusive end offset, -1 for EOF-bounded
	err   error
}

// NewSequentialReader returns a reader scanning f from offset off up to
// off+length (length < 0 means until EOF), with the given buffer size
// (DefaultBufferSize when size <= 0).
func NewSequentialReader(f File, off, length int64, size int) *SequentialReader {
	if size <= 0 {
		size = DefaultBufferSize
	}
	limit := int64(-1)
	if length >= 0 {
		limit = off + length
	}
	return &SequentialReader{f: f, buf: make([]byte, size), off: off, limit: limit}
}

func (r *SequentialReader) fill() error {
	if r.err != nil {
		return r.err
	}
	want := len(r.buf)
	if r.limit >= 0 {
		remain := r.limit - r.off
		if remain <= 0 {
			r.err = io.EOF
			return r.err
		}
		if int64(want) > remain {
			want = int(remain)
		}
	}
	n, err := r.f.ReadAt(r.buf[:want], r.off)
	r.off += int64(n)
	r.r, r.n = 0, n
	if n > 0 {
		return nil // serve what we got; err resurfaces on the next fill
	}
	if err == nil {
		err = io.EOF
	}
	r.err = err
	return r.err
}

// Read implements io.Reader.
func (r *SequentialReader) Read(p []byte) (int, error) {
	if r.r == r.n {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.buf[r.r:r.n])
	r.r += n
	return n, nil
}

// WriteFileAll writes data to name on fs as a single sequential stream,
// creating the file.
func WriteFileAll(fs FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	return nil
}

// WriteFileAtomic commits data to name through a write-temp-fsync-rename
// sequence: the bytes are written to a sibling temporary file, synced to
// stable storage, and the temporary is renamed over name in one atomic
// step (OSFS also fsyncs the directory). A power loss at any point leaves
// either the previous version of name or the complete new one — never a
// torn write — at the cost of briefly holding both copies on the device.
func WriteFileAtomic(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.WriteAt(data, 0)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = fs.Remove(tmp)
		return werr
	}
	if err := fs.Rename(tmp, name); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return nil
}

// ReadFileAll reads the entire content of name from fs.
func ReadFileAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if int64(n) == size {
		return buf, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, err
}
