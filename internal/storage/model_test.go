package storage

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMemFSAgainstReferenceModel is a model-based property test: a random
// sequence of file operations applied both to MemFS and to a trivially
// correct in-memory reference must produce identical observable state.
func TestMemFSAgainstReferenceModel(t *testing.T) {
	f := func(seed int64, opsCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := NewMemFS()
		ref := map[string][]byte{} // reference: file name -> contents
		names := []string{"a", "b", "c"}
		handles := map[string]File{}
		defer func() {
			for _, h := range handles {
				h.Close()
			}
		}()

		for op := 0; op < int(opsCount%120)+20; op++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(6) {
			case 0: // create
				h, err := fs.Create(name)
				if err != nil {
					return false
				}
				if old, ok := handles[name]; ok {
					old.Close()
				}
				handles[name] = h
				ref[name] = nil
			case 1: // write at random offset
				h, ok := handles[name]
				if !ok {
					continue
				}
				off := rng.Intn(200)
				data := make([]byte, rng.Intn(50)+1)
				rng.Read(data)
				if _, err := h.WriteAt(data, int64(off)); err != nil {
					return false
				}
				cur := ref[name]
				if need := off + len(data); need > len(cur) {
					grown := make([]byte, need)
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], data)
				ref[name] = cur
			case 2: // read at random offset
				h, ok := handles[name]
				if !ok {
					continue
				}
				off := rng.Intn(250)
				buf := make([]byte, rng.Intn(50)+1)
				n, err := h.ReadAt(buf, int64(off))
				cur := ref[name]
				wantN := 0
				if off < len(cur) {
					wantN = len(cur) - off
					if wantN > len(buf) {
						wantN = len(buf)
					}
				}
				if n != wantN {
					return false
				}
				if n < len(buf) && err != io.EOF {
					return false
				}
				if n > 0 && !bytes.Equal(buf[:n], cur[off:off+n]) {
					return false
				}
			case 3: // truncate
				h, ok := handles[name]
				if !ok {
					continue
				}
				size := rng.Intn(250)
				if err := h.Truncate(int64(size)); err != nil {
					return false
				}
				cur := ref[name]
				if size <= len(cur) {
					ref[name] = cur[:size]
				} else {
					grown := make([]byte, size)
					copy(grown, cur)
					ref[name] = grown
				}
			case 4: // size
				h, ok := handles[name]
				if !ok {
					continue
				}
				size, err := h.Size()
				if err != nil || size != int64(len(ref[name])) {
					return false
				}
			case 5: // exists / remove (only files without open handles)
				if _, ok := handles[name]; ok {
					if !fs.Exists(name) {
						return false
					}
					continue
				}
				if _, ok := ref[name]; ok != fs.Exists(name) {
					return false
				}
			}
		}
		// Final state: every tracked file readable in full and equal.
		for name, want := range ref {
			h, ok := handles[name]
			if !ok {
				continue
			}
			size, err := h.Size()
			if err != nil || size != int64(len(want)) {
				return false
			}
			if size == 0 {
				continue
			}
			got := make([]byte, size)
			if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIOAccountingInvariants checks the bookkeeping identities that every
// experiment relies on: bytes and operation counts are non-negative,
// monotone, and additive across snapshots.
func TestIOAccountingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := NewMemFS()
		h, err := fs.Create("x")
		if err != nil {
			return false
		}
		defer h.Close()
		prev := fs.Stats().Snapshot()
		var wroteBytes, readBytes int64
		for i := 0; i < 50; i++ {
			data := make([]byte, rng.Intn(64)+1)
			off := int64(rng.Intn(512))
			if rng.Intn(2) == 0 {
				n, _ := h.WriteAt(data, off)
				wroteBytes += int64(n)
			} else {
				n, _ := h.ReadAt(data, off)
				readBytes += int64(n)
			}
			snap := fs.Stats().Snapshot()
			d := snap.Sub(prev)
			if d.BytesRead < 0 || d.BytesWritten < 0 || d.RandReads < 0 ||
				d.SeqReads < 0 || d.RandWrites < 0 || d.SeqWrites < 0 {
				return false
			}
			prev = snap
		}
		final := fs.Stats().Snapshot()
		return final.BytesWritten == wroteBytes && final.BytesRead == readBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
