package storage

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"
)

// fsFactories lets every test run against both backends.
func fsFactories(t *testing.T) map[string]func() FS {
	return map[string]func() FS{
		"mem": func() FS { return NewMemFS() },
		"os": func() FS {
			fs, err := NewOSFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			f, err := fs.Create("a.bin")
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("hello, storage engine")
			if _, err := f.WriteAt(payload, 0); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			g, err := fs.Open("a.bin")
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			got := make([]byte, len(payload))
			if _, err := g.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("round trip mismatch: %q", got)
			}
			size, err := g.Size()
			if err != nil {
				t.Fatal(err)
			}
			if size != int64(len(payload)) {
				t.Fatalf("size %d, want %d", size, len(payload))
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("want ErrNotExist, got %v", err)
			}
			if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("want ErrNotExist on remove, got %v", err)
			}
			if fs.Exists("nope") {
				t.Fatal("Exists must be false for missing file")
			}
		})
	}
}

func TestRemove(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			f, err := fs.Create("x")
			if err != nil {
				t.Fatal(err)
			}
			f.Close()
			if !fs.Exists("x") {
				t.Fatal("file should exist")
			}
			if err := fs.Remove("x"); err != nil {
				t.Fatal(err)
			}
			if fs.Exists("x") {
				t.Fatal("file should be gone")
			}
		})
	}
}

func TestTruncateGrowShrink(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			f, err := fs.Create("t")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{1, 2, 3, 4}, 0); err != nil {
				t.Fatal(err)
			}
			if err := f.Truncate(2); err != nil {
				t.Fatal(err)
			}
			if size, _ := f.Size(); size != 2 {
				t.Fatalf("size after shrink = %d", size)
			}
			if err := f.Truncate(8); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			want := []byte{1, 2, 0, 0, 0, 0, 0, 0}
			if !bytes.Equal(buf, want) {
				t.Fatalf("grown content %v, want %v", buf, want)
			}
		})
	}
}

func TestReadPastEOF(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			f, _ := fs.Create("e")
			defer f.Close()
			f.WriteAt([]byte{9, 9}, 0)
			buf := make([]byte, 4)
			n, err := f.ReadAt(buf, 0)
			if n != 2 || err != io.EOF {
				t.Fatalf("partial read: n=%d err=%v", n, err)
			}
			n, err = f.ReadAt(buf, 100)
			if n != 0 || err != io.EOF {
				t.Fatalf("read past EOF: n=%d err=%v", n, err)
			}
		})
	}
}

func TestSeqVsRandClassification(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("c")
	defer f.Close()
	chunk := make([]byte, 100)

	// Three appends in a row: first is "random" (first touch), rest sequential.
	f.WriteAt(chunk, 0)
	f.WriteAt(chunk, 100)
	f.WriteAt(chunk, 200)
	snap := fs.Stats().Snapshot()
	if snap.SeqWrites != 2 || snap.RandWrites != 1 {
		t.Fatalf("writes misclassified: %+v", snap)
	}

	// Jump backwards: random write.
	f.WriteAt(chunk, 0)
	snap = fs.Stats().Snapshot()
	if snap.RandWrites != 2 {
		t.Fatalf("backward write should be random: %+v", snap)
	}

	// Sequential scan.
	f.ReadAt(chunk, 0)
	f.ReadAt(chunk, 100)
	f.ReadAt(chunk, 200)
	snap = fs.Stats().Snapshot()
	if snap.RandReads != 1 || snap.SeqReads != 2 {
		t.Fatalf("reads misclassified: %+v", snap)
	}

	if snap.BytesWritten != 400 || snap.BytesRead != 300 {
		t.Fatalf("byte counts wrong: %+v", snap)
	}
}

func TestReadsAndWritesTrackedIndependently(t *testing.T) {
	// A builder appending while a scanner reads should not turn everything
	// into seeks.
	fs := NewMemFS()
	f, _ := fs.Create("i")
	defer f.Close()
	buf := make([]byte, 10)
	for i := 0; i < 5; i++ {
		f.WriteAt(buf, int64(i*10))
		if i > 0 {
			f.ReadAt(buf, int64((i-1)*10))
		}
	}
	snap := fs.Stats().Snapshot()
	if snap.RandWrites != 1 || snap.SeqWrites != 4 {
		t.Fatalf("interleaved writes misclassified: %+v", snap)
	}
	if snap.RandReads != 1 || snap.SeqReads != 3 {
		t.Fatalf("interleaved reads misclassified: %+v", snap)
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{Seek: 10 * time.Millisecond, ReadBandwidth: 1e6, WriteBandwidth: 1e6}
	snap := Snapshot{RandReads: 2, SeqReads: 10, BytesRead: 2e6, BytesWritten: 1e6}
	got := cm.Time(snap)
	want := 20*time.Millisecond + 2*time.Second + 1*time.Second
	if got != want {
		t.Fatalf("cost %v, want %v", got, want)
	}
	if snap.Seeks() != 2 {
		t.Fatalf("Seeks() = %d", snap.Seeks())
	}
	if snap.Ops() != 12 {
		t.Fatalf("Ops() = %d", snap.Ops())
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{RandReads: 5, SeqReads: 7, BytesRead: 100}
	b := Snapshot{RandReads: 2, SeqReads: 3, BytesRead: 40}
	d := a.Sub(b)
	if d.RandReads != 3 || d.SeqReads != 4 || d.BytesRead != 60 {
		t.Fatalf("Sub wrong: %+v", d)
	}
}

func TestStatsReset(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("r")
	f.WriteAt([]byte{1}, 0)
	f.Close()
	fs.Stats().Reset()
	if snap := fs.Stats().Snapshot(); snap.Ops() != 0 || snap.BytesWritten != 0 {
		t.Fatalf("reset failed: %+v", snap)
	}
}

func TestFaultInjection(t *testing.T) {
	fs := NewMemFS()
	boom := errors.New("boom")
	var writes int
	fs.SetFault(func(op Op, name string, off int64, n int) error {
		if op == OpWrite {
			writes++
			if writes > 2 {
				return boom
			}
		}
		return nil
	})
	f, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{2}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{3}, 2); !errors.Is(err, boom) {
		t.Fatalf("expected injected fault, got %v", err)
	}
	fs.SetFault(nil)
	if _, err := f.WriteAt([]byte{3}, 2); err != nil {
		t.Fatalf("fault should be cleared: %v", err)
	}
}

func TestSequentialWriterReader(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			f, _ := fs.Create("s")
			defer f.Close()
			w := NewSequentialWriter(f, 0, 64)
			rng := rand.New(rand.NewSource(1))
			var want []byte
			for i := 0; i < 50; i++ {
				chunk := make([]byte, rng.Intn(50))
				rng.Read(chunk)
				want = append(want, chunk...)
				if _, err := w.Write(chunk); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if w.Offset() != int64(len(want)) {
				t.Fatalf("offset %d, want %d", w.Offset(), len(want))
			}

			r := NewSequentialReader(f, 0, -1, 64)
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("sequential round trip mismatch: %d vs %d bytes", len(got), len(want))
			}
		})
	}
}

func TestSequentialWriterBuffersWrites(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("b")
	defer f.Close()
	w := NewSequentialWriter(f, 0, 1024)
	one := []byte{0xAB}
	for i := 0; i < 1000; i++ {
		w.Write(one)
	}
	w.Flush()
	snap := fs.Stats().Snapshot()
	if snap.Ops() != 1 {
		t.Fatalf("1000 byte-writes should collapse into 1 device write, got %d ops", snap.Ops())
	}
}

func TestSequentialReaderBounded(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("lim")
	defer f.Close()
	f.WriteAt([]byte("0123456789"), 0)
	r := NewSequentialReader(f, 2, 5, 4)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "23456" {
		t.Fatalf("bounded read = %q", got)
	}
}

func TestWriteReadFileAll(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			data := []byte("all at once")
			if err := WriteFileAll(fs, "w", data); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFileAll(fs, "w")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("mismatch: %q", got)
			}
		})
	}
}

func TestMemFSTotalSize(t *testing.T) {
	fs := NewMemFS()
	WriteFileAll(fs, "a", make([]byte, 100))
	WriteFileAll(fs, "b", make([]byte, 50))
	if got := fs.TotalSize(); got != 150 {
		t.Fatalf("TotalSize = %d", got)
	}
	if got := fs.FileSize("a"); got != 100 {
		t.Fatalf("FileSize(a) = %d", got)
	}
	if got := fs.FileSize("zzz"); got != 0 {
		t.Fatalf("FileSize(missing) = %d", got)
	}
}

func TestConcurrentMemFSAccess(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("conc")
	defer f.Close()
	data := make([]byte, 1<<16)
	f.WriteAt(data, 0)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 128)
			for i := 0; i < 200; i++ {
				off := int64(rng.Intn(1 << 15))
				if seed%2 == 0 {
					f.ReadAt(buf, off)
				} else {
					f.WriteAt(buf, off)
				}
			}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
