package storage

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Op identifies the kind of file-system operation passed to fault hooks.
type Op string

// Operations visible to fault hooks.
const (
	OpCreate Op = "create"
	OpOpen   Op = "open"
	OpRead   Op = "read"
	OpWrite  Op = "write"
	OpRemove Op = "remove"
	OpRename Op = "rename"
)

// FaultFn is a fault-injection hook: returning a non-nil error makes the
// corresponding operation fail with that error. off and n are meaningful
// for reads and writes only.
type FaultFn func(op Op, name string, off int64, n int) error

// MemFS is an in-memory file system with I/O accounting. It simulates the
// secondary storage device of the paper's testbed: files are byte arrays,
// and every access is classified as sequential or random exactly as a disk
// arm would experience it.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
	stats Stats
	fault FaultFn
}

type memData struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memData)}
}

// SetFault installs a fault-injection hook (nil removes it).
func (fs *MemFS) SetFault(f FaultFn) {
	fs.mu.Lock()
	fs.fault = f
	fs.mu.Unlock()
}

func (fs *MemFS) checkFault(op Op, name string, off int64, n int) error {
	fs.mu.Lock()
	f := fs.fault
	fs.mu.Unlock()
	if f == nil {
		return nil
	}
	return f(op, name, off, n)
}

// Stats returns the file system's accumulated I/O statistics.
func (fs *MemFS) Stats() *Stats { return &fs.stats }

// Create creates or truncates the named file.
func (fs *MemFS) Create(name string) (File, error) {
	if err := fs.checkFault(OpCreate, name, 0, 0); err != nil {
		return nil, fmt.Errorf("storage: create %q: %w", name, err)
	}
	fs.mu.Lock()
	d := &memData{}
	fs.files[name] = d
	fs.mu.Unlock()
	return &memFile{fs: fs, name: name, d: d, trk: newTracker(&fs.stats)}, nil
}

// Open opens an existing file.
func (fs *MemFS) Open(name string) (File, error) {
	if err := fs.checkFault(OpOpen, name, 0, 0); err != nil {
		return nil, fmt.Errorf("storage: open %q: %w", name, err)
	}
	fs.mu.Lock()
	d, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: open %q: %w", name, ErrNotExist)
	}
	return &memFile{fs: fs, name: name, d: d, trk: newTracker(&fs.stats)}, nil
}

// Remove deletes the named file.
func (fs *MemFS) Remove(name string) error {
	if err := fs.checkFault(OpRemove, name, 0, 0); err != nil {
		return fmt.Errorf("storage: remove %q: %w", name, err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("storage: remove %q: %w", name, ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

// Rename atomically moves oldname to newname, displacing any existing file
// at newname — the in-memory equivalent of POSIX rename: the swap happens
// under the file-system lock, so observers see either the old or the new
// file set, never an intermediate state.
func (fs *MemFS) Rename(oldname, newname string) error {
	if err := fs.checkFault(OpRename, oldname, 0, 0); err != nil {
		return fmt.Errorf("storage: rename %q: %w", oldname, err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("storage: rename %q: %w", oldname, ErrNotExist)
	}
	fs.files[newname] = d
	delete(fs.files, oldname)
	return nil
}

// Exists reports whether the named file exists.
func (fs *MemFS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Names returns every file name on the device, sorted — the listing the
// crash-safety tests use to assert that failed operations leave no
// temporaries behind.
func (fs *MemFS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TotalSize returns the sum of all file sizes — the simulated disk
// footprint, used by the space-overhead experiments (Fig 8c).
func (fs *MemFS) TotalSize() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var total int64
	for _, d := range fs.files {
		d.mu.RLock()
		total += int64(len(d.data))
		d.mu.RUnlock()
	}
	return total
}

// FileSize returns the size of one file, or 0 if it does not exist.
func (fs *MemFS) FileSize(name string) int64 {
	fs.mu.Lock()
	d, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return 0
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data))
}

type memFile struct {
	fs   *MemFS
	name string
	d    *memData
	trk  tracker
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.checkFault(OpRead, f.name, off, len(p)); err != nil {
		return 0, fmt.Errorf("storage: read %q: %w", f.name, err)
	}
	if off < 0 {
		return 0, fmt.Errorf("storage: read %q: negative offset", f.name)
	}
	f.d.mu.RLock()
	size := int64(len(f.d.data))
	var n int
	if off < size {
		n = copy(p, f.d.data[off:])
	}
	f.d.mu.RUnlock()
	f.trk.noteRead(off, n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.fs.checkFault(OpWrite, f.name, off, len(p)); err != nil {
		return 0, fmt.Errorf("storage: write %q: %w", f.name, err)
	}
	if off < 0 {
		return 0, fmt.Errorf("storage: write %q: negative offset", f.name)
	}
	f.d.mu.Lock()
	end := off + int64(len(p))
	if end > int64(len(f.d.data)) {
		oldLen := int64(len(f.d.data))
		if end > int64(cap(f.d.data)) {
			grown := make([]byte, end, end+end/2)
			copy(grown, f.d.data)
			f.d.data = grown
		} else {
			// Re-sliced capacity may hold stale bytes from an earlier
			// truncate; the gap between the old end and this write must
			// read back as zeros (POSIX hole semantics).
			f.d.data = f.d.data[:end]
			for i := oldLen; i < off; i++ {
				f.d.data[i] = 0
			}
		}
	}
	n := copy(f.d.data[off:], p)
	f.d.mu.Unlock()
	f.trk.noteWrite(off, n)
	return n, nil
}

func (f *memFile) Size() (int64, error) {
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	return int64(len(f.d.data)), nil
}

func (f *memFile) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: truncate %q: negative size", f.name)
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if size <= int64(len(f.d.data)) {
		f.d.data = f.d.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.d.data)
	f.d.data = grown
	return nil
}

// Sync is a no-op: MemFS bytes are always "stable".
func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error { return nil }
