package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

const (
	recordSumsMagic   uint32 = 0x53524343 // "CCRS": Coconut Raw-record Sums
	recordSumsVersion uint32 = 1

	// RecordSumsHeaderSize is the fixed header of a record-sums sidecar:
	// magic, version, record size, reserved (4 bytes each, little-endian).
	RecordSumsHeaderSize = 16
)

// RecordSumsName returns the sidecar file name guarding rawName.
func RecordSumsName(rawName string) string { return rawName + ".crc" }

// RecordSums is the integrity sidecar for a raw series file: one CRC32-C
// per fixed-size encoded record, kept in memory for verification on every
// raw read and persisted to rawName+".crc" at the owner's durability
// points. The raw file itself keeps its exact legacy byte layout — it is
// the user-visible dataset and the rebuild source for every index, and may
// be shared by several indexes (all of which compute identical sidecars).
//
// Crash tolerance mirrors the WAL's: the sidecar is flushed before the
// manifest commit that references new records, so after a crash it may
// trail the durable raw tail. Reconcile backfills the missing entries by
// re-reading the (already fsynced) raw bytes and trims entries past the
// recovered record count, making open idempotent.
//
// Verification and appends may race (queries during ingest); an internal
// RWMutex makes the handle safe for that. Only the handle that writes the
// raw file should call Flush — partitioned indexes share one parent-owned
// sidecar with their children read-only.
type RecordSums struct {
	fs      FS
	name    string
	recSize int

	mu    sync.RWMutex
	sums  []uint32
	dirty int64 // first entry not yet persisted (== len(sums) when clean)
}

// BuildRecordSums computes the sidecar for rawName from scratch — one
// sequential pass over the raw file — persists and fsyncs it, and returns
// the loaded handle. Trailing raw bytes short of a full record (a torn
// append tail) are ignored, matching how every index interprets the file.
func BuildRecordSums(fs FS, rawName string, recSize int) (*RecordSums, error) {
	if recSize <= 0 {
		return nil, fmt.Errorf("storage: record sums for %q: invalid record size %d", rawName, recSize)
	}
	raw, err := fs.Open(rawName)
	if err != nil {
		return nil, fmt.Errorf("storage: record sums for %q: %w", rawName, err)
	}
	defer raw.Close()
	size, err := raw.Size()
	if err != nil {
		return nil, fmt.Errorf("storage: record sums for %q: size: %w", rawName, err)
	}
	r := &RecordSums{fs: fs, name: RecordSumsName(rawName), recSize: recSize}
	if err := r.appendFromRaw(raw, size/int64(recSize)); err != nil {
		return nil, err
	}
	if err := r.Flush(); err != nil {
		return nil, err
	}
	return r, nil
}

// OpenRecordSums loads an existing sidecar for rawName. A missing sidecar
// returns ErrNotExist (callers may fall back to BuildRecordSums); a
// mangled header returns ErrCorruptData. A trailing partial entry — the
// torn tail of a crashed flush — is dropped, and Reconcile restores it
// from the raw bytes.
func OpenRecordSums(fs FS, rawName string, recSize int) (*RecordSums, error) {
	if recSize <= 0 {
		return nil, fmt.Errorf("storage: record sums for %q: invalid record size %d", rawName, recSize)
	}
	name := RecordSumsName(rawName)
	data, err := ReadFileAll(fs, name)
	if err != nil {
		return nil, fmt.Errorf("storage: record sums %q: %w", name, err)
	}
	if len(data) < RecordSumsHeaderSize {
		return nil, fmt.Errorf("storage: record sums %q: %d bytes is too short for a header: %w", name, len(data), ErrCorruptData)
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != recordSumsMagic {
		return nil, fmt.Errorf("storage: record sums %q: bad magic %#x: %w", name, m, ErrCorruptData)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != recordSumsVersion {
		return nil, fmt.Errorf("storage: record sums %q: unsupported version %d: %w", name, v, ErrCorruptData)
	}
	if rs := binary.LittleEndian.Uint32(data[8:12]); rs != uint32(recSize) {
		return nil, fmt.Errorf("storage: record sums %q: record size %d does not match expected %d: %w", name, rs, recSize, ErrCorruptData)
	}
	body := data[RecordSumsHeaderSize:]
	n := len(body) / 4 // drop a torn trailing partial entry
	r := &RecordSums{fs: fs, name: name, recSize: recSize, sums: make([]uint32, n), dirty: int64(n)}
	for i := 0; i < n; i++ {
		r.sums[i] = binary.LittleEndian.Uint32(body[i*4 : i*4+4])
	}
	return r, nil
}

// Records returns how many records the sidecar currently covers.
func (r *RecordSums) Records() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return int64(len(r.sums))
}

// Verify checks the encoded record bytes read back for position pos
// against the recorded checksum. A position past the covered range or a
// CRC mismatch returns ErrCorruptData.
func (r *RecordSums) Verify(pos int64, enc []byte) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if pos < 0 || pos >= int64(len(r.sums)) {
		return fmt.Errorf("storage: record sums %q: position %d outside covered range [0,%d): %w", r.name, pos, len(r.sums), ErrCorruptData)
	}
	if crc32.Checksum(enc, crcTable) != r.sums[pos] {
		return fmt.Errorf("storage: record sums %q: record %d crc mismatch (raw file or sidecar rot): %w", r.name, pos, ErrCorruptData)
	}
	return nil
}

// Set records the checksum of the encoded record just written at pos.
// Appends must be in order (pos == Records()); rewriting an existing
// position updates it in place.
func (r *RecordSums) Set(pos int64, enc []byte) {
	sum := crc32.Checksum(enc, crcTable)
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case pos == int64(len(r.sums)):
		r.sums = append(r.sums, sum)
	case pos >= 0 && pos < int64(len(r.sums)):
		r.sums[pos] = sum
	default:
		// Out-of-order append: records are only ever written densely, so
		// this is a programming error worth failing loudly on.
		panic(fmt.Sprintf("storage: record sums %q: non-contiguous Set(%d) with %d records", r.name, pos, len(r.sums)))
	}
	if pos < r.dirty {
		r.dirty = pos
	}
}

// Reconcile aligns the sidecar with the recovered raw state: entries past
// records are dropped, and entries missing up to records are recomputed
// from the raw bytes (sound, because the raw file is fsynced before any
// record is acknowledged). Call Flush afterwards to persist the result.
func (r *RecordSums) Reconcile(raw File, records int64) error {
	r.mu.Lock()
	if records < int64(len(r.sums)) {
		r.sums = r.sums[:records]
		if r.dirty > records {
			r.dirty = records
		}
	}
	r.mu.Unlock()
	return r.appendFromRaw(raw, records)
}

// appendFromRaw extends the in-memory sums up to records entries by
// reading the raw file sequentially from the current boundary.
func (r *RecordSums) appendFromRaw(raw File, records int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := int64(len(r.sums))
	if records <= have {
		return nil
	}
	off := have * int64(r.recSize)
	sr := NewSequentialReader(raw, off, (records-have)*int64(r.recSize), 1<<20)
	buf := make([]byte, r.recSize)
	for pos := have; pos < records; pos++ {
		if _, err := io.ReadFull(sr, buf); err != nil {
			return fmt.Errorf("storage: record sums %q: read raw record %d: %w", r.name, pos, readFailure(err))
		}
		r.sums = append(r.sums, crc32.Checksum(buf, crcTable))
	}
	return nil
}

// Flush persists the header and all unpersisted entries, truncates any
// stale bytes past the logical end, and fsyncs the sidecar.
func (r *RecordSums) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var f File
	var err error
	if r.fs.Exists(r.name) {
		f, err = r.fs.Open(r.name)
	} else {
		f, err = r.fs.Create(r.name)
		r.dirty = 0
	}
	if err != nil {
		return fmt.Errorf("storage: record sums %q: %w", r.name, err)
	}
	defer f.Close()
	if r.dirty == 0 {
		var hdr [RecordSumsHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], recordSumsMagic)
		binary.LittleEndian.PutUint32(hdr[4:8], recordSumsVersion)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(r.recSize))
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("storage: record sums %q: write header: %w", r.name, err)
		}
	}
	if r.dirty < int64(len(r.sums)) {
		enc := make([]byte, 4*(int64(len(r.sums))-r.dirty))
		for i, s := range r.sums[r.dirty:] {
			binary.LittleEndian.PutUint32(enc[i*4:], s)
		}
		if _, err := f.WriteAt(enc, RecordSumsHeaderSize+4*r.dirty); err != nil {
			return fmt.Errorf("storage: record sums %q: write entries: %w", r.name, err)
		}
	}
	end := RecordSumsHeaderSize + 4*int64(len(r.sums))
	if size, err := f.Size(); err == nil && size > end {
		if err := f.Truncate(end); err != nil {
			return fmt.Errorf("storage: record sums %q: truncate: %w", r.name, err)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: record sums %q: sync: %w", r.name, err)
	}
	r.dirty = int64(len(r.sums))
	return nil
}

// VerifyRecordSums checks rawName against its sidecar record by record,
// returning the number of records verified and the first mismatch as
// ErrCorruptData. A raw file LONGER than the sidecar's coverage is not a
// mismatch: appends land in the raw file before the sidecar flushes, so a
// crash legitimately leaves an unverifiable tail (reconciled at the next
// open); only the covered prefix is checked. A raw file SHORTER than the
// coverage lost committed data and is corruption — rot and truncation
// never lengthen a file.
func VerifyRecordSums(fs FS, rawName string, recSize int) (int64, error) {
	r, err := OpenRecordSums(fs, rawName, recSize)
	if err != nil {
		return 0, err
	}
	raw, err := fs.Open(rawName)
	if err != nil {
		return 0, fmt.Errorf("storage: record sums for %q: %w", rawName, err)
	}
	defer raw.Close()
	size, err := raw.Size()
	if err != nil {
		return 0, err
	}
	records := size / int64(recSize)
	if records < r.Records() {
		return 0, fmt.Errorf("storage: record sums %q: sidecar covers %d records but raw file holds only %d: %w", r.name, r.Records(), records, ErrCorruptData)
	}
	records = r.Records()
	sr := NewSequentialReader(raw, 0, records*int64(recSize), 1<<20)
	buf := make([]byte, recSize)
	for pos := int64(0); pos < records; pos++ {
		if _, err := io.ReadFull(sr, buf); err != nil {
			return pos, fmt.Errorf("storage: record sums %q: read raw record %d: %w", r.name, pos, readFailure(err))
		}
		if err := r.Verify(pos, buf); err != nil {
			return pos, err
		}
	}
	return records, nil
}
