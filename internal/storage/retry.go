package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// RetryPolicy bounds how a RetryFS reacts to transient read failures.
type RetryPolicy struct {
	// Retries is the number of re-attempts after the first failed read.
	Retries int
	// Backoff is the delay before the first retry, doubling each attempt.
	Backoff time.Duration
}

// RetryFS wraps an FS with a bounded-retry policy on ReadAt: a transient
// device error (an injected EIO, a flaky NFS mount) is retried with
// exponential backoff instead of failing the query outright. Deterministic
// failures are never retried — ErrNotExist, ErrCorruptData (re-reading rot
// cannot help; surface it), ErrCrashed, and EOF-shaped short reads all
// pass straight through. Once the retry budget is exhausted the error
// becomes sticky on that file handle: subsequent reads fail immediately
// rather than re-paying the backoff, so a dead device degrades fast and
// loud.
//
// Writes are not retried: every write path in this codebase is already
// transactional (WAL + manifest commits), so a failed write is surfaced to
// the caller's recovery logic instead of being papered over.
type RetryFS struct {
	inner  FS
	policy RetryPolicy
	sleep  func(time.Duration) // test seam; time.Sleep in production
}

// NewRetryFS wraps inner with the given policy.
func NewRetryFS(inner FS, policy RetryPolicy) *RetryFS {
	if policy.Retries < 0 {
		policy.Retries = 0
	}
	if policy.Backoff <= 0 {
		policy.Backoff = time.Millisecond
	}
	return &RetryFS{inner: inner, policy: policy, sleep: time.Sleep}
}

// retryableRead reports whether a failed read is worth re-attempting.
func retryableRead(err error) bool {
	return !(errors.Is(err, ErrNotExist) ||
		errors.Is(err, ErrCorruptData) ||
		errors.Is(err, ErrCrashed) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF))
}

func (r *RetryFS) Create(name string) (File, error) {
	f, err := r.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &retryFile{fs: r, inner: f}, nil
}

func (r *RetryFS) Open(name string) (File, error) {
	f, err := r.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &retryFile{fs: r, inner: f}, nil
}

func (r *RetryFS) Remove(name string) error     { return r.inner.Remove(name) }
func (r *RetryFS) Rename(old, new string) error { return r.inner.Rename(old, new) }
func (r *RetryFS) Exists(name string) bool      { return r.inner.Exists(name) }
func (r *RetryFS) Stats() *Stats                { return r.inner.Stats() }

type retryFile struct {
	fs    *RetryFS
	inner File

	mu     sync.Mutex
	sticky error
}

func (f *retryFile) Name() string { return f.inner.Name() }

func (f *retryFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	sticky := f.sticky
	f.mu.Unlock()
	if sticky != nil {
		return 0, sticky
	}
	n, err := f.inner.ReadAt(p, off)
	if err == nil || !retryableRead(err) {
		return n, err
	}
	delay := f.fs.policy.Backoff
	for attempt := 0; attempt < f.fs.policy.Retries; attempt++ {
		f.fs.sleep(delay)
		delay *= 2
		n, err = f.inner.ReadAt(p, off)
		if err == nil || !retryableRead(err) {
			return n, err
		}
	}
	err = fmt.Errorf("storage: read %q: %d retries exhausted: %w", f.inner.Name(), f.fs.policy.Retries, err)
	f.mu.Lock()
	f.sticky = err
	f.mu.Unlock()
	return 0, err
}

func (f *retryFile) WriteAt(p []byte, off int64) (int, error) { return f.inner.WriteAt(p, off) }
func (f *retryFile) Size() (int64, error)                     { return f.inner.Size() }
func (f *retryFile) Truncate(size int64) error                { return f.inner.Truncate(size) }
func (f *retryFile) Sync() error                              { return f.inner.Sync() }
func (f *retryFile) Close() error                             { return f.inner.Close() }
