package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// OSFS is a VFS backed by a directory on the host file system. It provides
// the same I/O accounting as MemFS so that experiments and examples can run
// against real files with identical instrumentation.
type OSFS struct {
	root  string
	stats Stats
}

// NewOSFS returns a VFS rooted at dir, creating it if needed.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %q: %w", dir, err)
	}
	return &OSFS{root: dir}, nil
}

// Root returns the backing directory.
func (fs *OSFS) Root() string { return fs.root }

// Stats returns the file system's accumulated I/O statistics.
func (fs *OSFS) Stats() *Stats { return &fs.stats }

func (fs *OSFS) path(name string) string { return filepath.Join(fs.root, name) }

// Create creates or truncates the named file.
func (fs *OSFS) Create(name string) (File, error) {
	f, err := os.Create(fs.path(name))
	if err != nil {
		return nil, fmt.Errorf("storage: create %q: %w", name, err)
	}
	return &osFile{f: f, name: name, trk: newTracker(&fs.stats)}, nil
}

// Open opens an existing file for reading and writing.
func (fs *OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(fs.path(name), os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("storage: open %q: %w", name, ErrNotExist)
		}
		return nil, fmt.Errorf("storage: open %q: %w", name, err)
	}
	return &osFile{f: f, name: name, trk: newTracker(&fs.stats)}, nil
}

// Remove deletes the named file.
func (fs *OSFS) Remove(name string) error {
	if err := os.Remove(fs.path(name)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("storage: remove %q: %w", name, ErrNotExist)
		}
		return fmt.Errorf("storage: remove %q: %w", name, err)
	}
	return nil
}

// Rename atomically moves oldname to newname via the OS rename system
// call, displacing any existing file at newname, then fsyncs the directory
// so the rename itself is durable. On POSIX file systems rename is atomic,
// which makes write-temp-then-rename a crash-safe commit.
func (fs *OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(fs.path(oldname), fs.path(newname)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("storage: rename %q: %w", oldname, ErrNotExist)
		}
		return fmt.Errorf("storage: rename %q: %w", oldname, err)
	}
	d, err := os.Open(fs.root)
	if err != nil {
		return fmt.Errorf("storage: rename %q: syncing directory: %w", oldname, err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("storage: rename %q: syncing directory: %w", oldname, serr)
	}
	return nil
}

// Exists reports whether the named file exists.
func (fs *OSFS) Exists(name string) bool {
	_, err := os.Stat(fs.path(name))
	return err == nil
}

// Names returns every regular file in the backing directory, sorted — the
// same listing MemFS.Names provides, used by the backend parity tests.
func (fs *OSFS) Names() []string {
	entries, err := os.ReadDir(fs.root)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

type osFile struct {
	f    *os.File
	name string
	trk  tracker
}

func (f *osFile) Name() string { return f.name }

func (f *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	f.trk.noteRead(off, n)
	return n, err
}

func (f *osFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.f.WriteAt(p, off)
	f.trk.noteWrite(off, n)
	return n, err
}

func (f *osFile) Size() (int64, error) {
	info, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func (f *osFile) Truncate(size int64) error { return f.f.Truncate(size) }

// Sync flushes the file to stable storage via fsync.
func (f *osFile) Sync() error { return f.f.Sync() }

func (f *osFile) Close() error { return f.f.Close() }
