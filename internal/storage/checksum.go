package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// ErrCorruptData is returned by every integrity-checked read path when the
// bytes on disk fail verification: a checksum-file block whose CRC does not
// match, a truncated or torn block, a raw record that disagrees with its
// recorded checksum, or a structurally impossible header. Callers match it
// with errors.Is; it is re-exported as coconut.ErrCorruptData.
var ErrCorruptData = errors.New("storage: corrupt data")

// crcTable is the Castagnoli (CRC32-C) polynomial table shared by the
// checksum-file and record-sums formats — the same polynomial the manifest
// and WAL layers use, hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	checksumMagic   uint32 = 0x46424343 // "CCBF": Coconut Checksummed Block File
	checksumVersion uint32 = 1

	// ChecksumHeaderSize is the fixed physical header of a checksum file:
	// magic, version, block size, reserved (4 bytes each, little-endian).
	ChecksumHeaderSize = 16

	checksumCRCSize = 4
)

// ChecksumFile wraps an inner File with a block-checksummed physical
// layout while presenting the plain logical byte stream through the
// storage.File interface, so consumers keep addressing logical offsets.
//
// Physical layout:
//
//	[16-byte header][crc32c||payload][crc32c||payload]...[crc32c||tail]
//
// Every block carries a 4-byte CRC32-C of its payload. All blocks hold
// exactly BlockSize payload bytes except a possibly shorter final (tail)
// block. Block i starts at ChecksumHeaderSize + i*(4+BlockSize).
//
// Write support is deliberately narrow, matching how index artifacts are
// produced: sequential appends at the logical end of file (any length —
// the partial tail block is buffered in memory until it fills or Sync is
// called), and in-place rewrites of whole, block-aligned ranges that lie
// entirely within already-complete blocks (the B+-tree page update path).
// Any other write returns an error.
//
// ReadAt verifies the CRC of every block it touches and returns
// ErrCorruptData on mismatch — a flipped bit yields a typed error, never
// garbage bytes. Reads are safe to issue concurrently with each other;
// writes require external serialization against reads, which every caller
// in this codebase already provides (handles guard mutation with their own
// locks).
type ChecksumFile struct {
	inner File
	block int

	mu        sync.RWMutex
	full      int64  // complete blocks physically laid out
	tail      []byte // payload of the trailing partial block, buffered in memory
	tailDirty bool   // tail bytes newer than their physical image
	wbuf      []byte // scratch for block framing, guarded by mu
}

// CreateChecksumFile initializes inner (assumed freshly created / empty)
// as a checksum file with the given payload block size and returns the
// logical wrapper.
func CreateChecksumFile(inner File, blockSize int) (*ChecksumFile, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: checksum file %q: invalid block size %d", inner.Name(), blockSize)
	}
	var hdr [ChecksumHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], checksumMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], checksumVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(blockSize))
	if _, err := inner.WriteAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("storage: checksum file %q: write header: %w", inner.Name(), err)
	}
	return &ChecksumFile{inner: inner, block: blockSize}, nil
}

// OpenChecksumFile validates inner's header and trailing block structure
// and returns the logical wrapper. The tail block (if any) is verified
// eagerly and buffered so later appends can extend it; full blocks are
// verified lazily by ReadAt (use VerifyChecksumBlocks for a full pass).
func OpenChecksumFile(inner File) (*ChecksumFile, error) {
	phys, err := inner.Size()
	if err != nil {
		return nil, fmt.Errorf("storage: checksum file %q: size: %w", inner.Name(), err)
	}
	if phys < ChecksumHeaderSize {
		return nil, fmt.Errorf("storage: checksum file %q: %d bytes is too short for a header: %w", inner.Name(), phys, ErrCorruptData)
	}
	var hdr [ChecksumHeaderSize]byte
	if n, err := inner.ReadAt(hdr[:], 0); n != len(hdr) {
		return nil, fmt.Errorf("storage: checksum file %q: read header: %w", inner.Name(), readFailure(err))
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != checksumMagic {
		return nil, fmt.Errorf("storage: checksum file %q: bad magic %#x: %w", inner.Name(), m, ErrCorruptData)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != checksumVersion {
		return nil, fmt.Errorf("storage: checksum file %q: unsupported version %d: %w", inner.Name(), v, ErrCorruptData)
	}
	block := binary.LittleEndian.Uint32(hdr[8:12])
	if block == 0 || block > 1<<30 {
		return nil, fmt.Errorf("storage: checksum file %q: invalid block size %d: %w", inner.Name(), block, ErrCorruptData)
	}
	if r := binary.LittleEndian.Uint32(hdr[12:16]); r != 0 {
		return nil, fmt.Errorf("storage: checksum file %q: nonzero reserved header field %#x: %w", inner.Name(), r, ErrCorruptData)
	}
	c := &ChecksumFile{inner: inner, block: int(block)}
	stride := int64(checksumCRCSize + c.block)
	body := phys - ChecksumHeaderSize
	c.full = body / stride
	rem := body % stride
	if rem > 0 {
		if rem <= checksumCRCSize {
			return nil, fmt.Errorf("storage: checksum file %q: torn trailing block (%d stray bytes): %w", inner.Name(), rem, ErrCorruptData)
		}
		buf := make([]byte, rem)
		if n, err := inner.ReadAt(buf, c.phys(c.full)); n != len(buf) {
			return nil, fmt.Errorf("storage: checksum file %q: read tail block: %w", inner.Name(), readFailure(err))
		}
		want := binary.LittleEndian.Uint32(buf[:checksumCRCSize])
		payload := buf[checksumCRCSize:]
		if crc32.Checksum(payload, crcTable) != want {
			return nil, fmt.Errorf("storage: checksum file %q: tail block crc mismatch: %w", inner.Name(), ErrCorruptData)
		}
		c.tail = append(c.tail, payload...)
	}
	return c, nil
}

// BlockSize returns the payload bytes carried per checksummed block.
func (c *ChecksumFile) BlockSize() int { return c.block }

// phys maps a block index to its physical offset in the inner file.
func (c *ChecksumFile) phys(i int64) int64 {
	return ChecksumHeaderSize + i*int64(checksumCRCSize+c.block)
}

// readFailure classifies an inner-read error for wrapping: EOF-shaped
// failures mean the physical file is shorter than its own structure claims
// (corruption); anything else is a device error passed through untouched
// so retry/injection semantics survive.
func readFailure(err error) error {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("truncated: %w", ErrCorruptData)
	}
	return err
}

func (c *ChecksumFile) Name() string { return c.inner.Name() }

// Size returns the logical (payload) size.
func (c *ChecksumFile) Size() (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.full*int64(c.block) + int64(len(c.tail)), nil
}

// ReadAt reads logical bytes, verifying the CRC of every physical block it
// touches. A mismatch returns ErrCorruptData and no payload bytes.
func (c *ChecksumFile) ReadAt(p []byte, off int64) (int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: checksum file %q: negative offset %d", c.inner.Name(), off)
	}
	size := c.full*int64(c.block) + int64(len(c.tail))
	if off >= size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > size-off {
		n = int(size - off)
	}
	if n == 0 {
		return 0, nil
	}
	bsz := int64(c.block)
	stride := int64(checksumCRCSize + c.block)
	b0 := off / bsz
	bLast := (off + int64(n) - 1) / bsz
	if b0 < c.full {
		fullHi := bLast
		if fullHi >= c.full {
			fullHi = c.full - 1
		}
		buf := make([]byte, (fullHi-b0+1)*stride)
		if rn, err := c.inner.ReadAt(buf, c.phys(b0)); rn != len(buf) {
			return 0, fmt.Errorf("storage: checksum file %q: read blocks [%d,%d]: %w", c.inner.Name(), b0, fullHi, readFailure(err))
		}
		for i := b0; i <= fullHi; i++ {
			blk := buf[(i-b0)*stride : (i-b0+1)*stride]
			want := binary.LittleEndian.Uint32(blk[:checksumCRCSize])
			payload := blk[checksumCRCSize:]
			if crc32.Checksum(payload, crcTable) != want {
				return 0, fmt.Errorf("storage: checksum file %q: block %d (physical offset %d) crc mismatch: %w", c.inner.Name(), i, c.phys(i), ErrCorruptData)
			}
			lo, hi := max(i*bsz, off), min((i+1)*bsz, off+int64(n))
			copy(p[lo-off:hi-off], payload[lo-i*bsz:hi-i*bsz])
		}
	}
	if bLast >= c.full {
		tailStart := c.full * bsz
		lo, hi := max(tailStart, off), min(tailStart+int64(len(c.tail)), off+int64(n))
		copy(p[lo-off:hi-off], c.tail[lo-tailStart:hi-tailStart])
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt accepts exactly two shapes of write: an append starting at the
// logical end of file (any length), or an in-place rewrite of whole
// blocks that already exist. Everything else errors.
func (c *ChecksumFile) WriteAt(p []byte, off int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.full*int64(c.block) + int64(len(c.tail))
	switch {
	case off == size:
		return c.appendLocked(p)
	case off >= 0 && off%int64(c.block) == 0 && len(p)%c.block == 0 && off+int64(len(p)) <= c.full*int64(c.block):
		return c.rewriteLocked(p, off)
	default:
		return 0, fmt.Errorf("storage: checksum file %q: unsupported write (off=%d len=%d logical size=%d block=%d)", c.inner.Name(), off, len(p), size, c.block)
	}
}

func (c *ChecksumFile) appendLocked(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		if len(c.tail) == c.block {
			if err := c.writeBlockLocked(c.full, c.tail); err != nil {
				return written, err
			}
			c.full++
			c.tail = c.tail[:0]
			c.tailDirty = false
		}
		m := min(c.block-len(c.tail), len(p))
		c.tail = append(c.tail, p[:m]...)
		c.tailDirty = true
		p = p[m:]
		written += m
	}
	if len(c.tail) == c.block {
		if err := c.writeBlockLocked(c.full, c.tail); err != nil {
			return written, err
		}
		c.full++
		c.tail = c.tail[:0]
		c.tailDirty = false
	}
	return written, nil
}

func (c *ChecksumFile) rewriteLocked(p []byte, off int64) (int, error) {
	written := 0
	for i := off / int64(c.block); len(p) > 0; i++ {
		if err := c.writeBlockLocked(i, p[:c.block]); err != nil {
			return written, err
		}
		p = p[c.block:]
		written += c.block
	}
	return written, nil
}

// writeBlockLocked frames payload with its CRC and writes block i in
// place.
func (c *ChecksumFile) writeBlockLocked(i int64, payload []byte) error {
	need := checksumCRCSize + len(payload)
	if cap(c.wbuf) < need {
		c.wbuf = make([]byte, need)
	}
	buf := c.wbuf[:need]
	binary.LittleEndian.PutUint32(buf[:checksumCRCSize], crc32.Checksum(payload, crcTable))
	copy(buf[checksumCRCSize:], payload)
	if _, err := c.inner.WriteAt(buf, c.phys(i)); err != nil {
		return fmt.Errorf("storage: checksum file %q: write block %d: %w", c.inner.Name(), i, err)
	}
	return nil
}

// flushTailLocked writes the buffered partial tail block (if dirty).
func (c *ChecksumFile) flushTailLocked() error {
	if !c.tailDirty || len(c.tail) == 0 {
		c.tailDirty = false
		return nil
	}
	if err := c.writeBlockLocked(c.full, c.tail); err != nil {
		return err
	}
	c.tailDirty = false
	return nil
}

// Truncate supports shrinking to a whole-block logical boundary (or zero);
// index artifacts never truncate mid-block.
func (c *ChecksumFile) Truncate(size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	logical := c.full*int64(c.block) + int64(len(c.tail))
	switch {
	case size == logical:
		return nil
	case size == 0:
		if err := c.inner.Truncate(ChecksumHeaderSize); err != nil {
			return err
		}
		c.full, c.tail, c.tailDirty = 0, c.tail[:0], false
		return nil
	case size > 0 && size < logical && size%int64(c.block) == 0:
		newFull := size / int64(c.block)
		if err := c.inner.Truncate(c.phys(newFull)); err != nil {
			return err
		}
		c.full, c.tail, c.tailDirty = newFull, c.tail[:0], false
		return nil
	default:
		return fmt.Errorf("storage: checksum file %q: unsupported truncate to %d (logical size %d, block %d)", c.inner.Name(), size, logical, c.block)
	}
}

// Sync persists the buffered tail block and fsyncs the inner file. The
// tail stays buffered so appends can keep extending it.
func (c *ChecksumFile) Sync() error {
	c.mu.Lock()
	if err := c.flushTailLocked(); err != nil {
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	return c.inner.Sync()
}

// Close flushes the buffered tail block and closes the inner file (without
// fsync, matching File semantics — call Sync first for durability).
func (c *ChecksumFile) Close() error {
	c.mu.Lock()
	err := c.flushTailLocked()
	c.mu.Unlock()
	if cerr := c.inner.Close(); err == nil {
		err = cerr
	}
	return err
}

// VerifyChecksumBlocks reads every block of an (already open) checksum
// file and verifies its CRC, returning the number of blocks checked. The
// first failure is returned with its block index and physical offset; the
// error matches ErrCorruptData for structural and checksum failures.
func VerifyChecksumBlocks(f File) (int64, error) {
	c, err := OpenChecksumFile(f)
	if err != nil {
		return 0, err
	}
	stride := int64(checksumCRCSize + c.block)
	buf := make([]byte, stride)
	for i := int64(0); i < c.full; i++ {
		if n, err := f.ReadAt(buf, c.phys(i)); n != len(buf) {
			return i, fmt.Errorf("storage: checksum file %q: read block %d: %w", f.Name(), i, readFailure(err))
		}
		want := binary.LittleEndian.Uint32(buf[:checksumCRCSize])
		if crc32.Checksum(buf[checksumCRCSize:], crcTable) != want {
			return i, fmt.Errorf("storage: checksum file %q: block %d (physical offset %d) crc mismatch: %w", f.Name(), i, c.phys(i), ErrCorruptData)
		}
	}
	blocks := c.full
	if len(c.tail) > 0 {
		blocks++ // tail was verified by OpenChecksumFile
	}
	return blocks, nil
}
