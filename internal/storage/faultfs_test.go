package storage

import (
	"context"
	"errors"
	"testing"
	"time"
)

// writeAll creates name holding data on fs, without syncing.
func writeAll(t *testing.T, fs FS, name string, data []byte) File {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFaultFSDurability: only synced bytes survive Recover — un-synced
// creates vanish, un-synced overwrites roll back, and pre-existing files
// are durable from the start.
func TestFaultFSDurability(t *testing.T) {
	inner := NewMemFS()
	pre := writeAll(t, inner, "pre", []byte("seed"))
	pre.Close()
	ffs := NewFaultFS(inner)

	synced := writeAll(t, ffs, "synced", []byte("v1"))
	if err := synced.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := synced.WriteAt([]byte("v2-unsynced"), 0); err != nil {
		t.Fatal(err)
	}
	unsynced := writeAll(t, ffs, "unsynced", []byte("never"))
	unsynced.Close()
	synced.Close()

	ffs.Crash()
	rec := ffs.Recover(0)
	if got, err := ReadFileAll(rec, "pre"); err != nil || string(got) != "seed" {
		t.Fatalf("pre-existing file after recover: %q, %v", got, err)
	}
	if got, err := ReadFileAll(rec, "synced"); err != nil || string(got) != "v1" {
		t.Fatalf("synced file rolled to %q, %v; want last synced content", got, err)
	}
	if rec.Exists("unsynced") {
		t.Fatal("never-synced file survived the crash")
	}
}

// TestFaultFSTornTail: Recover(torn) keeps at most torn bytes of the
// un-synced tail a file grew past its durable length.
func TestFaultFSTornTail(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f := writeAll(t, ffs, "log", []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("TORNTAIL"), int64(len("durable"))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ffs.Crash()
	got, err := ReadFileAll(ffs.Recover(3), "log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durableTOR" {
		t.Fatalf("torn recovery got %q, want durable prefix + 3 torn bytes", got)
	}
}

// TestFaultFSRenameSemantics: rename moves durable content with the name,
// and renaming a never-synced file leaves nothing durable under the new
// name — the missing-fsync-before-rename bug surfaces as a missing file.
func TestFaultFSRenameSemantics(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f := writeAll(t, ffs, "a.tmp", []byte("payload"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := ffs.Rename("a.tmp", "a"); err != nil {
		t.Fatal(err)
	}
	g := writeAll(t, ffs, "b.tmp", []byte("lost"))
	g.Close()
	if err := ffs.Rename("b.tmp", "b"); err != nil {
		t.Fatal(err)
	}
	ffs.Crash()
	rec := ffs.Recover(0)
	if got, err := ReadFileAll(rec, "a"); err != nil || string(got) != "payload" {
		t.Fatalf("synced rename lost content: %q, %v", got, err)
	}
	if rec.Exists("b") || rec.Exists("b.tmp") {
		t.Fatal("rename without fsync left durable content")
	}
	// Rename also displaces prior durable content at the target.
	ffs2 := NewFaultFS(NewMemFS())
	tgt := writeAll(t, ffs2, "m", []byte("old"))
	if err := tgt.Sync(); err != nil {
		t.Fatal(err)
	}
	tgt.Close()
	h := writeAll(t, ffs2, "m.tmp", []byte("new-unsynced"))
	h.Close()
	if err := ffs2.Rename("m.tmp", "m"); err != nil {
		t.Fatal(err)
	}
	ffs2.Crash()
	if ffs2.Recover(0).Exists("m") {
		t.Fatal("displaced durable content resurrected under the target name")
	}
}

// TestFaultFSTriggers: FailAt injects exactly one failure and disarms;
// PowerLossAt fails the Nth and every later counted operation without
// applying them; reads and opens do not advance the counter.
func TestFaultFSTriggers(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	ffs.FailAt(2)
	f, err := ffs.Create("x") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("a"), 0); !errors.Is(err, ErrInjected) { // op 2
		t.Fatalf("op 2: got %v, want ErrInjected", err)
	}
	if _, err := f.WriteAt([]byte("a"), 0); err != nil { // op 3: disarmed
		t.Fatalf("after one-shot fault: %v", err)
	}
	// Reads are uncounted.
	buf := make([]byte, 1)
	for i := 0; i < 5; i++ {
		f.ReadAt(buf, 0)
	}
	if got := ffs.OpCount(); got != 3 {
		t.Fatalf("op count %d after 3 counted ops + reads, want 3", got)
	}
	if err := f.Sync(); err != nil { // op 4: "a" is durable
		t.Fatal(err)
	}
	ffs.PowerLossAt(5)
	if _, err := f.WriteAt([]byte("b"), 1); !errors.Is(err, ErrCrashed) { // op 5
		t.Fatalf("op 5: got %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("power loss did not latch")
	}
	if _, err := ffs.Create("y"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: got %v, want ErrCrashed", err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: got %v, want ErrCrashed", err)
	}
	// The crashed write was not applied, even to the live image a torn
	// recovery samples from.
	if got, err := ReadFileAll(ffs.Recover(8), "x"); err != nil || string(got) != "a" {
		t.Fatalf("crashed write leaked into recovery: %q, %v", got, err)
	}
}

// TestFaultFSFailedSyncNotDurable: a sync that is itself the faulted
// operation must not advance the durable image.
func TestFaultFSFailedSyncNotDurable(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f := writeAll(t, ffs, "x", []byte("data")) // ops 1, 2
	ffs.PowerLossAt(3)
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // op 3
		t.Fatalf("sync: got %v, want ErrCrashed", err)
	}
	if ffs.Recover(0).Exists("x") {
		t.Fatal("file became durable through a failed sync")
	}
}

// TestFaultFSHook: the hook sees every operation (counted or not) before
// it applies, and SetCounted narrows what advances the trigger counter.
func TestFaultFSHook(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	var ops []Op
	ffs.SetHook(func(op Op, name string) { ops = append(ops, op) })
	ffs.SetCounted(OpSync)
	f := writeAll(t, ffs, "x", []byte("d"))
	f.Sync()
	f.Close()
	want := []Op{OpCreate, OpWrite, OpSync}
	if len(ops) != len(want) {
		t.Fatalf("hook saw %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", ops, want)
		}
	}
	if got := ffs.OpCount(); got != 1 {
		t.Fatalf("with only sync counted, op count = %d, want 1", got)
	}
}

// TestFaultFSDelayAt: the armed operation sleeps the configured duration
// and still succeeds; later operations run at full speed.
func TestFaultFSDelayAt(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	const d = 50 * time.Millisecond
	ffs.DelayAt(2, d) // the WriteAt of writeAll
	start := time.Now()
	f := writeAll(t, ffs, "x", []byte("data"))
	if got := time.Since(start); got < d {
		t.Fatalf("delayed write finished in %v, want >= %v", got, d)
	}
	// One-shot: a second write must not sleep again.
	start = time.Now()
	if _, err := f.WriteAt([]byte("more"), 4); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got >= d {
		t.Fatalf("second write took %v, delay should have disarmed", got)
	}
	f.Close()
}

// TestFaultFSStallAt: the armed operation parks (signalled via the parked
// channel), stays parked until release, then completes successfully.
// release is idempotent.
func TestFaultFSStallAt(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	release, parked := ffs.StallAt(2)
	done := make(chan error, 1)
	go func() {
		f, err := ffs.Create("x") // op 1
		if err != nil {
			done <- err
			return
		}
		_, err = f.WriteAt([]byte("data"), 0) // op 2: parks here
		f.Close()
		done <- err
	}()
	select {
	case <-parked:
	case err := <-done:
		t.Fatalf("operation finished (%v) before parking", err)
	case <-time.After(5 * time.Second):
		t.Fatal("stalled operation never parked")
	}
	select {
	case err := <-done:
		t.Fatalf("operation finished (%v) while parked", err)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	release() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released operation failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("released operation never finished")
	}
	got, err := ReadFileAll(ffs, "x")
	if err != nil || string(got) != "data" {
		t.Fatalf("after release, file = %q, %v; want %q", got, err, "data")
	}
}

// TestFaultFSStallAtContextRelease: context.AfterFunc(ctx, release) is the
// documented context-aware unblock — cancelling the context frees the
// parked operation.
func TestFaultFSStallAtContextRelease(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	release, parked := ffs.StallAt(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer context.AfterFunc(ctx, release)()
	done := make(chan error, 1)
	go func() {
		f, err := ffs.Create("x")
		if err == nil {
			f.Close()
		}
		done <- err
	}()
	<-parked
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released operation failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not release the parked operation")
	}
}

// TestFaultFSStallAtUncountedReads: reads are uncounted by default, so a
// stall armed on the op counter must not trigger on query I/O — tests that
// want to stall a read opt in with SetCounted(OpRead).
func TestFaultFSStallAtUncountedReads(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	f := writeAll(t, ffs, "x", []byte("data"))
	f.Close()
	release, parked := ffs.StallAt(3) // ops 1,2 already consumed by writeAll
	defer release()
	rf, err := ffs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := rf.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	select {
	case <-parked:
		t.Fatal("uncounted read triggered the stall")
	default:
	}
	ffs.SetCounted(OpRead)
	// With reads counted, the next read is the next counted op and parks.
	release2, parked2 := ffs.StallAt(ffs.OpCount() + 1)
	go func() {
		rf2, err := ffs.Open("x")
		if err != nil {
			return
		}
		rf2.ReadAt(buf, 0)
		rf2.Close()
	}()
	select {
	case <-parked2:
	case <-time.After(5 * time.Second):
		t.Fatal("counted read never parked")
	}
	release2()
}
