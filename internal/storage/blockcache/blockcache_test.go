package blockcache

import (
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 0, "a", 100)
	v, ok := c.Get(1, 0)
	if !ok || v.(string) != "a" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	c.Put(1, 0, "b", 200) // refresh same key
	v, _ = c.Get(1, 0)
	if v.(string) != "b" {
		t.Fatalf("refresh lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Bytes != 200 || st.Budget != 1<<20 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEviction(t *testing.T) {
	// numShards shards × 64-byte shard budget. All entries for one file
	// block sequence spread over shards; overfill a single (file, block)
	// shard by reusing one key's shard via identical keys.
	c := New(numShards * 64)
	for i := int64(0); i < 1000; i++ {
		c.Put(7, i, i, 48)
	}
	st := c.Stats()
	if st.Bytes > c.budget {
		t.Fatalf("resident %d exceeds budget %d", st.Bytes, c.budget)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions after overfill")
	}
	// LRU: the most recently inserted block of some shard must survive.
	if _, ok := c.Get(7, 999); !ok {
		t.Fatal("most recent insert evicted")
	}
}

func TestLRUOrder(t *testing.T) {
	// Shard budget 130: holds two 60-byte entries, a third evicts one.
	c := New(numShards * 130)
	// Find two blocks in the same shard.
	s0 := c.shardFor(Key{File: 1, Block: 0})
	var b1 int64 = -1
	for i := int64(1); i < 1000; i++ {
		if c.shardFor(Key{File: 1, Block: i}) == s0 {
			b1 = i
			break
		}
	}
	if b1 < 0 {
		t.Fatal("no shard collision found")
	}
	c.Put(1, 0, "old", 60)
	c.Put(1, b1, "new", 60)
	c.Get(1, 0) // touch old → b1 becomes LRU
	// Third entry in the same shard forces one eviction.
	var b2 int64 = -1
	for i := b1 + 1; i < 5000; i++ {
		if c.shardFor(Key{File: 1, Block: i}) == s0 {
			b2 = i
			break
		}
	}
	if b2 < 0 {
		t.Fatal("no second collision found")
	}
	c.Put(1, b2, "third", 60)
	if _, ok := c.Get(1, 0); !ok {
		t.Fatal("recently touched entry evicted")
	}
	if _, ok := c.Get(1, b1); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestOversizedNotRetained(t *testing.T) {
	c := New(numShards * 10)
	c.Put(1, 0, "huge", 1<<20)
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("oversized value retained")
	}
	if st := c.Stats(); st.Bytes != 0 {
		t.Fatalf("resident bytes after oversized put: %+v", st)
	}
}

func TestDropFile(t *testing.T) {
	c := New(1 << 20)
	for i := int64(0); i < 100; i++ {
		c.Put(1, i, i, 10)
		c.Put(2, i, i, 10)
	}
	c.DropFile(1)
	for i := int64(0); i < 100; i++ {
		if _, ok := c.Get(1, i); ok {
			t.Fatalf("file 1 block %d survived DropFile", i)
		}
		if _, ok := c.Get(2, i); !ok {
			t.Fatalf("file 2 block %d dropped collaterally", i)
		}
	}
	if st := c.Stats(); st.Bytes != 1000 {
		t.Fatalf("resident after drop: %+v", st)
	}
}

func TestNewFileIDUnique(t *testing.T) {
	c := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := c.NewFileID()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestConcurrent(t *testing.T) {
	c := New(numShards * 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			file := uint64(g % 3)
			for i := int64(0); i < 2000; i++ {
				switch i % 4 {
				case 0:
					c.Put(file, i%64, i, 32)
				case 1:
					c.Get(file, i%64)
				case 2:
					c.Stats()
				case 3:
					if i%512 == 3 {
						c.DropFile(file)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes < 0 || st.Bytes > c.budget {
		t.Fatalf("bytes accounting broken: %+v", st)
	}
}
