// Package blockcache provides the shared, byte-budgeted block cache behind
// block-compressed run storage: a sharded LRU keyed by (file, block) holding
// decoded blocks. One cache instance is shared by every run of every
// partition child of an index (and by every query shard touching them), so
// the budget bounds the whole index's resident decoded-key memory — the
// mechanism that lets an index whose key arrays dwarf RAM answer queries
// with a fixed footprint.
//
// Values are opaque (any): the cache accounts them by the byte size the
// caller declares, which keeps this package free of a dependency on the
// codec whose blocks it holds.
package blockcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultBytes is the cache budget used when a caller passes no explicit
// budget (Config.CacheBytes == 0 at the public API).
const DefaultBytes = 128 << 20

// numShards spreads lock contention across query shards. Power of two.
const numShards = 16

// Key identifies one cached block: File is a process-unique file handle id
// (NewFileID), not a name — names are reused across rebuilds and crashes,
// ids never are, so a stale entry can never serve bytes for a newer file.
type Key struct {
	File  uint64
	Block int64
}

// Stats is a point-in-time counter snapshot, the operator's signal for
// sizing the budget: a high miss rate with Bytes pinned at Budget means the
// working set does not fit.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Bytes is the resident decoded-block total; Budget is the configured
	// ceiling it is kept under.
	Bytes  int64 `json:"bytes"`
	Budget int64 `json:"budget"`
}

type entry struct {
	key  Key
	val  any
	size int64
}

type shard struct {
	mu    sync.Mutex
	items map[Key]*list.Element
	lru   *list.List // front = most recent
	bytes int64
}

// Cache is a sharded LRU over decoded blocks. Safe for concurrent use.
type Cache struct {
	shards      [numShards]shard
	shardBudget int64
	budget      int64
	nextID      atomic.Uint64
	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
}

// New returns a cache bounded at budget bytes (DefaultBytes when <= 0).
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBytes
	}
	c := &Cache{budget: budget, shardBudget: budget / numShards}
	if c.shardBudget < 1 {
		c.shardBudget = 1
	}
	for i := range c.shards {
		c.shards[i].items = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// NewFileID issues a process-unique id for one open file's blocks.
func (c *Cache) NewFileID() uint64 { return c.nextID.Add(1) }

func (c *Cache) shardFor(k Key) *shard {
	h := k.File*0x9e3779b97f4a7c15 ^ uint64(k.Block)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return &c.shards[h%numShards]
}

// Get returns the cached value for (file, block), if resident.
func (c *Cache) Get(file uint64, block int64) (any, bool) {
	k := Key{File: file, Block: block}
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*entry).val, true
}

// Put inserts (or refreshes) a decoded block of the given byte size,
// evicting least-recently-used entries until the shard is back under
// budget. A value larger than the whole shard budget is not retained —
// callers still hold the decoded block they passed in, so correctness
// never depends on residency.
func (c *Cache) Put(file uint64, block int64, val any, size int64) {
	if size < 1 {
		size = 1
	}
	k := Key{File: file, Block: block}
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.val, e.size = val, size
		s.lru.MoveToFront(el)
	} else {
		s.items[k] = s.lru.PushFront(&entry{key: k, val: val, size: size})
		s.bytes += size
	}
	evicted := int64(0)
	for s.bytes > c.shardBudget && s.lru.Len() > 0 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.items, e.key)
		s.bytes -= e.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// DropFile removes every resident block of one file — called when a run
// file is closed or deleted (compaction swap, index close), so the budget
// is not held by blocks that can never be requested again.
func (c *Cache) DropFile(file uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.items {
			if k.File != file {
				continue
			}
			s.bytes -= el.Value.(*entry).size
			s.lru.Remove(el)
			delete(s.items, k)
		}
		s.mu.Unlock()
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Budget:    c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
