// Package storage provides the storage engine underneath every index in
// this repository: a small virtual file system (VFS) abstraction with two
// backends (an in-memory simulated disk and the host OS file system), full
// I/O accounting, and an explicit HDD cost model.
//
// The Coconut paper's analysis is phrased in the disk access model
// (Aggarwal & Vitter): what matters is how many block transfers an
// algorithm performs and whether they are sequential or random. The VFS
// classifies every read/write as sequential (contiguous with the previous
// access to the same file) or random (requiring a seek), so experiments can
// report the exact quantities the paper reasons about — deterministically
// and at laptop scale — alongside wall-clock time.
package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// File is the random-access file handle used by all indexes.
//
// Implementations classify each access as sequential or random with respect
// to the previous access on the same handle and update the owning FS's
// Stats.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
	// Truncate changes the size of the file.
	Truncate(size int64) error
	// Sync flushes the file's contents to stable storage (fsync). The
	// durable-lifecycle commit protocol syncs every file before a manifest
	// references it, so a power loss cannot leave a committed manifest
	// pointing at unwritten bytes.
	Sync() error
}

// FS is the virtual file system interface.
type FS interface {
	// Create creates (or truncates) a file.
	Create(name string) (File, error)
	// Open opens an existing file for reading and writing.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname (POSIX rename
	// semantics: if newname exists it is displaced in one step, and a crash
	// leaves either the old or the new content under newname, never a mix).
	// It is the commit primitive for crash-safe metadata updates.
	Rename(oldname, newname string) error
	// Exists reports whether a file exists.
	Exists(name string) bool
	// Stats returns the accumulated I/O statistics of this file system.
	Stats() *Stats
}

// ErrNotExist is returned when opening or removing a missing file.
var ErrNotExist = errors.New("storage: file does not exist")

// Stats accumulates I/O counters. All fields are safe for concurrent use.
//
// A "random" operation is one whose start offset differs from the end
// offset of the previous operation on the same file handle (i.e., the disk
// arm would have to seek). Sequential operations continue where the last
// one ended.
type Stats struct {
	RandReads    atomic.Int64
	SeqReads     atomic.Int64
	RandWrites   atomic.Int64
	SeqWrites    atomic.Int64
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
}

// Snapshot is an immutable copy of Stats, convenient for diffing before and
// after a phase of an experiment.
type Snapshot struct {
	RandReads    int64
	SeqReads     int64
	RandWrites   int64
	SeqWrites    int64
	BytesRead    int64
	BytesWritten int64
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		RandReads:    s.RandReads.Load(),
		SeqReads:     s.SeqReads.Load(),
		RandWrites:   s.RandWrites.Load(),
		SeqWrites:    s.SeqWrites.Load(),
		BytesRead:    s.BytesRead.Load(),
		BytesWritten: s.BytesWritten.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.RandReads.Store(0)
	s.SeqReads.Store(0)
	s.RandWrites.Store(0)
	s.SeqWrites.Store(0)
	s.BytesRead.Store(0)
	s.BytesWritten.Store(0)
}

// Sub returns the component-wise difference a-b.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		RandReads:    a.RandReads - b.RandReads,
		SeqReads:     a.SeqReads - b.SeqReads,
		RandWrites:   a.RandWrites - b.RandWrites,
		SeqWrites:    a.SeqWrites - b.SeqWrites,
		BytesRead:    a.BytesRead - b.BytesRead,
		BytesWritten: a.BytesWritten - b.BytesWritten,
	}
}

// Seeks returns the total number of random (seek-requiring) operations.
func (a Snapshot) Seeks() int64 { return a.RandReads + a.RandWrites }

// Ops returns the total number of I/O operations.
func (a Snapshot) Ops() int64 {
	return a.RandReads + a.SeqReads + a.RandWrites + a.SeqWrites
}

func (a Snapshot) String() string {
	return fmt.Sprintf("reads(rand=%d seq=%d) writes(rand=%d seq=%d) bytes(r=%d w=%d)",
		a.RandReads, a.SeqReads, a.RandWrites, a.SeqWrites, a.BytesRead, a.BytesWritten)
}

// CostModel charges simulated time to an I/O trace: every random operation
// pays one seek, and all bytes pay the device bandwidth. This is the
// standard first-order model of a spinning disk and is what makes the
// O(N) random I/Os vs O(N/B) sequential I/Os asymmetry of the paper visible
// without a 10 TB RAID array.
type CostModel struct {
	// Seek is the latency charged per random operation.
	Seek time.Duration
	// ReadBandwidth is the sequential read throughput in bytes/second.
	ReadBandwidth float64
	// WriteBandwidth is the sequential write throughput in bytes/second.
	WriteBandwidth float64
}

// DefaultHDD approximates the paper's 7200 RPM SATA drives.
func DefaultHDD() CostModel {
	return CostModel{
		Seek:           8 * time.Millisecond,
		ReadBandwidth:  150e6,
		WriteBandwidth: 150e6,
	}
}

// DefaultSSD approximates a SATA SSD (for ablations on device type).
func DefaultSSD() CostModel {
	return CostModel{
		Seek:           80 * time.Microsecond,
		ReadBandwidth:  500e6,
		WriteBandwidth: 450e6,
	}
}

// Time returns the simulated elapsed time for the I/O in snap.
func (c CostModel) Time(snap Snapshot) time.Duration {
	d := time.Duration(snap.Seeks()) * c.Seek
	if c.ReadBandwidth > 0 {
		d += time.Duration(float64(snap.BytesRead) / c.ReadBandwidth * float64(time.Second))
	}
	if c.WriteBandwidth > 0 {
		d += time.Duration(float64(snap.BytesWritten) / c.WriteBandwidth * float64(time.Second))
	}
	return d
}

// tracker classifies accesses on a single file handle and feeds Stats.
type tracker struct {
	stats *Stats
	mu    sync.Mutex
	// nextRead/nextWrite are the offsets at which the next read/write would
	// be sequential. They are tracked separately: a builder that appends to
	// a file while a scanner reads it should not see every operation as a
	// seek caused by the other stream. The first access on a handle always
	// counts as a seek (the arm has to position itself somewhere).
	nextRead  int64
	nextWrite int64
}

func newTracker(stats *Stats) tracker {
	return tracker{stats: stats, nextRead: -1, nextWrite: -1}
}

func (t *tracker) noteRead(off int64, n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	if off == t.nextRead {
		t.stats.SeqReads.Add(1)
	} else {
		t.stats.RandReads.Add(1)
	}
	t.nextRead = off + int64(n)
	t.mu.Unlock()
	t.stats.BytesRead.Add(int64(n))
}

func (t *tracker) noteWrite(off int64, n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	if off == t.nextWrite {
		t.stats.SeqWrites.Add(1)
	} else {
		t.stats.RandWrites.Add(1)
	}
	t.nextWrite = off + int64(n)
	t.mu.Unlock()
	t.stats.BytesWritten.Add(int64(n))
}
