// Package window implements the approximate-search candidate window as a
// pure function of the indexed record multiset: the W records surrounding
// the query key's insertion position in the GLOBAL sorted (key, position)
// sequence, evaluated in ascending lower-bound order with early abandon.
//
// Because the window depends only on the sorted record multiset — not on
// leaf geometry, LSM run layout, or partition boundaries — every
// composition of the same records answers approximate queries
// byte-identically: a monolithic index, the same index reopened, an LSM
// tree after any flush/compaction history, and an N-way partitioned index
// all produce the same candidate list and therefore the same answer. Each
// source (one index, one LSM run, one memtable, one partition) contributes
// its last W/2 records below the query key and its first W/2 at or above
// it; Merge re-sorts the contributions under the refined (key, encoded
// position) record order and trims to the global window — the standard
// k-way top-k merge, which yields exactly the window a single sorted
// sequence of the union would produce.
package window

import (
	"math"
	"math/bits"
	"sort"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/summary"
)

// Cand is one window candidate.
type Cand struct {
	// Key is the record's invSAX key.
	Key summary.Key
	// Pos is the record's ordinal in the raw dataset.
	Pos int64
	// LB is the squared lower bound of the record's distance to the query.
	LB float64
	// Src identifies the contributing source (partition ordinal); the
	// contributor leaves it 0 and a multi-source merger rewrites it so its
	// fetch dispatch finds the owner.
	Src int
	// Ord is the record's ordinal within the source's sorted sequence —
	// the handle the source's fetcher uses to locate the record (e.g. a
	// leaf-relative slot in a materialized index).
	Ord int
}

// LePosLess orders positions by their little-endian byte encoding — the
// tie-break the external sort's full-record comparison applies to equal
// keys, so (Key, LePosLess) is exactly the persisted record order.
func LePosLess(a, b int64) bool {
	return bits.ReverseBytes64(uint64(a)) < bits.ReverseBytes64(uint64(b))
}

// Less is the refined total record order: key first, encoded position as
// the tie-break. Positions are unique, so the order is strict.
func Less(a, b Cand) bool {
	if c := a.Key.Compare(b.Key); c != 0 {
		return c < 0
	}
	return LePosLess(a.Pos, b.Pos)
}

// Merge combines per-source window contributions into the global window:
// below holds each source's trailing records with key < query key, above
// each source's leading records with key >= query key (concatenated in any
// order). Both groups are sorted under Less and trimmed to half records
// each — the last half below the insertion point and the first half at or
// above it — returning the merged window in record order.
func Merge(below, above []Cand, half int) []Cand {
	sort.Slice(below, func(i, j int) bool { return Less(below[i], below[j]) })
	sort.Slice(above, func(i, j int) bool { return Less(above[i], above[j]) })
	if len(below) > half {
		below = below[len(below)-half:]
	}
	if len(above) > half {
		above = above[:half]
	}
	out := make([]Cand, 0, len(below)+len(above))
	out = append(out, below...)
	return append(out, above...)
}

// FetchFunc loads the raw series of one candidate into dst. Fetchers are
// per-query state (they may cache leaf pages) and are called serially.
type FetchFunc func(c Cand, dst series.Series) error

// Eval evaluates the window: candidates are visited in ascending LB order
// (stable over the record order Merge produced, so the evaluation sequence
// is a pure function of the candidate list), stopping as soon as the next
// lower bound cannot beat the best squared distance found, and abandoning
// each distance computation once it exceeds the running best. Returns the
// best (position, SQUARED distance) — (-1, +Inf) when cands is empty — and
// the number of records fetched.
func Eval(q series.Series, cands []Cand, fetch FetchFunc) (pos int64, sqDist float64, visited int64, err error) {
	pos, sqDist = -1, math.Inf(1)
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cands[order[a]].LB < cands[order[b]].LB })
	scratch := make(series.Series, len(q))
	for _, ci := range order {
		c := cands[ci]
		if c.LB >= sqDist {
			break
		}
		if err := fetch(c, scratch); err != nil {
			return pos, sqDist, visited, err
		}
		visited++
		sq, ok := series.SquaredEDEarlyAbandon(q, scratch, sqDist)
		if !ok {
			continue
		}
		if sq < sqDist {
			sqDist, pos = sq, c.Pos
		}
	}
	return pos, sqDist, visited, nil
}
