// Package dataset provides the data series collections used by the paper's
// evaluation: a random-walk generator (the standard synthetic workload of
// the data series indexing literature) and synthetic stand-ins for the two
// real datasets — IRIS seismic waveforms and X-ray astronomy light curves —
// which are not redistributable. The substitutes reproduce the statistical
// properties the paper calls out (value distributions per Figure 7, density
// / query hardness per §5.3) while exercising the exact same code paths.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
)

// Generator produces z-normalized data series of any requested length.
// Implementations must be deterministic given the caller-provided rng.
type Generator interface {
	// Name identifies the dataset family (e.g. "randomwalk").
	Name() string
	// Generate fills out with one z-normalized series.
	Generate(rng *rand.Rand, out series.Series)
}

// randomWalk draws each step from N(0,1) and accumulates — the synthetic
// workload used throughout the paper ("has been shown to effectively model
// real-world financial data").
type randomWalk struct{}

// NewRandomWalk returns the paper's random-walk generator.
func NewRandomWalk() Generator { return randomWalk{} }

func (randomWalk) Name() string { return "randomwalk" }

func (randomWalk) Generate(rng *rand.Rand, out series.Series) {
	v := 0.0
	for i := range out {
		v += rng.NormFloat64()
		out[i] = v
	}
	out.ZNormalize()
}

// seismic emulates sliding-window seismograms: low-amplitude background
// noise with occasional oscillatory events that decay exponentially —
// the morphology of P/S-wave arrivals in the IRIS traces. The resulting
// collection is dense (many near-identical quiet windows), which is what
// makes the paper's seismic queries hard to prune.
type seismic struct{}

// NewSeismic returns the seismic stand-in generator.
func NewSeismic() Generator { return seismic{} }

func (seismic) Name() string { return "seismic" }

func (seismic) Generate(rng *rand.Rand, out series.Series) {
	for i := range out {
		out[i] = 0.1 * rng.NormFloat64()
	}
	// 1-3 events per window: at the paper's 4-second sliding step, windows
	// overlap active seismicity; all-noise windows would z-normalize into
	// near-duplicates and make the collection artificially dense.
	events := 1 + rng.Intn(3)
	n := len(out)
	for e := 0; e < events; e++ {
		start := rng.Intn(n)
		amp := 0.5 + 2.5*rng.Float64()
		freq := 0.05 + 0.2*rng.Float64() // cycles per sample
		decay := 0.01 + 0.05*rng.Float64()
		phase := rng.Float64() * 2 * math.Pi
		for i := start; i < n; i++ {
			dt := float64(i - start)
			out[i] += amp * math.Exp(-decay*dt) * math.Sin(2*math.Pi*freq*dt+phase)
		}
	}
	out.ZNormalize()
}

// astronomy emulates sliding-window X-ray light curves of AGN: a slow
// random-walk baseline with occasional flares whose amplitudes follow a
// lognormal law — producing the slight skew visible in the paper's
// Figure 7 histogram for the astronomy dataset.
type astronomy struct{}

// NewAstronomy returns the astronomy stand-in generator.
func NewAstronomy() Generator { return astronomy{} }

func (astronomy) Name() string { return "astronomy" }

func (astronomy) Generate(rng *rand.Rand, out series.Series) {
	v := 0.0
	for i := range out {
		v += 0.3 * rng.NormFloat64()
		out[i] = v
	}
	// Flares: fast rise, exponential decay, skewed amplitudes.
	flares := rng.Intn(3)
	n := len(out)
	for f := 0; f < flares; f++ {
		start := rng.Intn(n)
		amp := math.Exp(rng.NormFloat64()*0.8) * 1.5 // lognormal
		decay := 0.02 + 0.08*rng.Float64()
		for i := start; i < n; i++ {
			out[i] += amp * math.Exp(-decay*float64(i-start))
		}
	}
	out.ZNormalize()
}

// skewed emulates the access skew of real data-series collections: most
// series are small perturbations of a few recurring shapes (monitoring
// windows of the same machines, repeated seismic quiet patterns), with the
// shape popularity Zipf-distributed and occasional mid-series regime
// shifts splicing one shape into another. Unlike the uniform random walk —
// whose invSAX keys spread evenly over the key space — the clustered
// shapes sort into long stretches of near-identical keys, the workload
// where front-coded run compression shows its real ratio. The shape pool
// is drawn from a fixed internal seed so every caller sees the same
// shapes; which shapes a series uses comes from the caller's rng, keeping
// Generate deterministic per the Generator contract.
type skewed struct {
	mu        sync.Mutex
	centroids map[int][]series.Series
}

// NewSkewed returns the skewed (Zipf-clustered shapes + regime shifts)
// generator.
func NewSkewed() Generator { return &skewed{centroids: map[int][]series.Series{}} }

func (*skewed) Name() string { return "skewed" }

// skewedPool is the number of base shapes; with the Zipf law below, the
// most popular shape covers ~25% of series and the top 8 cover ~70%.
const skewedPool = 64

func (g *skewed) pool(n int) []series.Series {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.centroids[n]; ok {
		return p
	}
	crng := rand.New(rand.NewSource(0x5eed))
	p := make([]series.Series, skewedPool)
	for i := range p {
		s := make(series.Series, n)
		v := 0.0
		for j := range s {
			v += crng.NormFloat64()
			s[j] = v
		}
		p[i] = s
	}
	g.centroids[n] = p
	return p
}

func (g *skewed) Generate(rng *rand.Rand, out series.Series) {
	pool := g.pool(len(out))
	zipf := rand.NewZipf(rng, 1.3, 1, skewedPool-1)
	c := pool[zipf.Uint64()]
	// ~15% of windows straddle a regime change: the series follows one
	// shape, then splices into another (value-continuous at the cut).
	n := len(out)
	shift := n
	c2 := c
	if rng.Float64() < 0.15 && n >= 4 {
		shift = n/4 + rng.Intn(n/2)
		c2 = pool[zipf.Uint64()]
	}
	for i := range out {
		base := c[i]
		if i >= shift {
			base = c2[i] + c[shift-1] - c2[shift-1]
		}
		out[i] = base + 0.05*rng.NormFloat64()
	}
	out.ZNormalize()
}

// ByName returns the generator for a dataset family name.
func ByName(name string) (Generator, error) {
	switch name {
	case "randomwalk":
		return NewRandomWalk(), nil
	case "seismic":
		return NewSeismic(), nil
	case "astronomy":
		return NewAstronomy(), nil
	case "skewed":
		return NewSkewed(), nil
	default:
		return nil, fmt.Errorf("dataset: unknown generator %q", name)
	}
}

// Generate materializes count series of length seriesLen in memory.
func Generate(gen Generator, count, seriesLen int, seed int64) []series.Series {
	rng := rand.New(rand.NewSource(seed))
	out := make([]series.Series, count)
	for i := range out {
		s := make(series.Series, seriesLen)
		gen.Generate(rng, s)
		out[i] = s
	}
	return out
}

// WriteFile streams count series of length seriesLen into file name on fs
// in the raw binary format, using one large sequential write stream.
// It returns the number of bytes written.
func WriteFile(fs storage.FS, name string, gen Generator, count, seriesLen int, seed int64) (int64, error) {
	f, err := fs.Create(name)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := storage.NewSequentialWriter(f, 0, 0)
	sw := series.NewWriter(w, seriesLen)
	rng := rand.New(rand.NewSource(seed))
	buf := make(series.Series, seriesLen)
	for i := 0; i < count; i++ {
		gen.Generate(rng, buf)
		if err := sw.Write(buf); err != nil {
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	return w.Offset(), nil
}

// Queries draws count fresh series from gen with an independent seed — the
// paper's "random query workload": queries follow the data distribution but
// are not (necessarily) members of the collection.
func Queries(gen Generator, count, seriesLen int, seed int64) []series.Series {
	return Generate(gen, count, seriesLen, seed)
}

// NoisyMemberQueries extracts count series from the dataset and perturbs
// them with Gaussian noise of the given standard deviation, modeling the
// "find this or a similar series" exploratory scenario.
func NoisyMemberQueries(data []series.Series, count int, noise float64, seed int64) []series.Series {
	rng := rand.New(rand.NewSource(seed))
	out := make([]series.Series, 0, count)
	for i := 0; i < count && len(data) > 0; i++ {
		src := data[rng.Intn(len(data))]
		q := src.Clone()
		for j := range q {
			q[j] += noise * rng.NormFloat64()
		}
		q.ZNormalize()
		out = append(out, q)
	}
	return out
}

// Histogram is a fixed-range value histogram, the tool behind Figure 7.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Total  int64
}

// NewHistogram creates a histogram with bins buckets over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one value; out-of-range values are clamped to the edge bins.
func (h *Histogram) Add(v float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.Total++
}

// Probability returns the fraction of values in bin i.
func (h *Histogram) Probability(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// ValueHistogram samples count series from gen and histograms every point —
// regenerating Figure 7 for one dataset.
func ValueHistogram(gen Generator, count, seriesLen, bins int, lo, hi float64, seed int64) *Histogram {
	h := NewHistogram(lo, hi, bins)
	rng := rand.New(rand.NewSource(seed))
	buf := make(series.Series, seriesLen)
	for i := 0; i < count; i++ {
		gen.Generate(rng, buf)
		for _, v := range buf {
			h.Add(v)
		}
	}
	return h
}

// Skewness returns the sample skewness of all values produced by gen over
// count series — used to verify the astronomy generator is skewed while the
// other two are roughly symmetric (Figure 7).
func Skewness(gen Generator, count, seriesLen int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	buf := make(series.Series, seriesLen)
	var n float64
	var mean, m2, m3 float64
	for i := 0; i < count; i++ {
		gen.Generate(rng, buf)
		for _, v := range buf {
			n++
			delta := v - mean
			deltaN := delta / n
			term1 := delta * deltaN * (n - 1)
			mean += deltaN
			m3 += term1*deltaN*(n-2) - 3*deltaN*m2
			m2 += term1
		}
	}
	if m2 == 0 {
		return 0
	}
	variance := m2 / n
	return (m3 / n) / math.Pow(variance, 1.5)
}
