package dataset

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
)

func TestGeneratorsProduceZNormalizedSeries(t *testing.T) {
	for _, gen := range []Generator{NewRandomWalk(), NewSeismic(), NewAstronomy(), NewSkewed()} {
		t.Run(gen.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			s := make(series.Series, 256)
			for trial := 0; trial < 20; trial++ {
				gen.Generate(rng, s)
				if !s.IsZNormalized(1e-6) {
					t.Fatalf("trial %d: series not z-normalized (mean=%v std=%v)", trial, s.Mean(), s.Stddev())
				}
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, gen := range []Generator{NewRandomWalk(), NewSeismic(), NewAstronomy(), NewSkewed()} {
		a := Generate(gen, 5, 64, 42)
		b := Generate(gen, 5, 64, 42)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: not deterministic at series %d point %d", gen.Name(), i, j)
				}
			}
		}
		c := Generate(gen, 5, 64, 43)
		same := true
		for j := range a[0] {
			if a[0][j] != c[0][j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical output", gen.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"randomwalk", "seismic", "astronomy", "skewed"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, g.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestWriteFileRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	const count, n = 50, 32
	written, err := WriteFile(fs, "data.bin", NewRandomWalk(), count, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(count*n*series.PointSize) {
		t.Fatalf("wrote %d bytes, want %d", written, count*n*series.PointSize)
	}
	want := Generate(NewRandomWalk(), count, n, 7)

	f, err := fs.Open("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := series.NewReader(storage.NewSequentialReader(f, 0, -1, 0), n)
	for i := 0; i < count; i++ {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("series %d: %v", i, err)
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("series %d differs from in-memory generation", i)
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriteFileIsSequential(t *testing.T) {
	fs := storage.NewMemFS()
	if _, err := WriteFile(fs, "seq.bin", NewSeismic(), 2000, 64, 1); err != nil {
		t.Fatal(err)
	}
	snap := fs.Stats().Snapshot()
	if snap.RandWrites > 1 {
		t.Fatalf("dataset write should be one sequential stream, got %+v", snap)
	}
}

func TestQueriesIndependentOfData(t *testing.T) {
	gen := NewRandomWalk()
	data := Generate(gen, 10, 32, 1)
	qs := Queries(gen, 10, 32, 2)
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	// Different seed should give different values.
	if data[0][0] == qs[0][0] && data[0][1] == qs[0][1] {
		t.Fatal("queries look identical to data")
	}
}

func TestNoisyMemberQueries(t *testing.T) {
	gen := NewSeismic()
	data := Generate(gen, 20, 64, 3)
	qs := NoisyMemberQueries(data, 5, 0.01, 4)
	if len(qs) != 5 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if !q.IsZNormalized(1e-6) {
			t.Fatal("noisy query must be re-normalized")
		}
		// Should be close to some member of the dataset.
		best := math.Inf(1)
		for _, d := range data {
			dist, _ := series.ED(q, d)
			if dist < best {
				best = dist
			}
		}
		if best > 3 {
			t.Fatalf("noisy member query too far from all members: %v", best)
		}
	}
	if got := NoisyMemberQueries(nil, 5, 0.01, 4); len(got) != 0 {
		t.Fatal("no data should yield no queries")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(-1, 1, 4)
	for _, v := range []float64{-0.9, -0.1, 0.1, 0.9, -5, 5} {
		h.Add(v)
	}
	if h.Total != 6 {
		t.Fatalf("total %d", h.Total)
	}
	// Clamped extremes land in edge bins.
	if h.Counts[0] != 2 || h.Counts[3] != 2 {
		t.Fatalf("edge clamping wrong: %v", h.Counts)
	}
	if p := h.Probability(0); math.Abs(p-2.0/6) > 1e-12 {
		t.Fatalf("Probability(0) = %v", p)
	}
	if c := h.BinCenter(0); math.Abs(c-(-0.75)) > 1e-12 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
}

func TestValueHistogramShapes(t *testing.T) {
	// All three histograms should be unimodal-ish and centered near zero
	// (the data is z-normalized); Figure 7.
	for _, gen := range []Generator{NewRandomWalk(), NewSeismic(), NewAstronomy()} {
		h := ValueHistogram(gen, 200, 128, 40, -5, 5, 9)
		if h.Total != 200*128 {
			t.Fatalf("%s: total %d", gen.Name(), h.Total)
		}
		// Mass near the center should dominate mass at the edges.
		center := h.Probability(19) + h.Probability(20)
		edges := h.Probability(0) + h.Probability(39)
		if center <= edges {
			t.Fatalf("%s: histogram not centered (center=%v edges=%v)", gen.Name(), center, edges)
		}
	}
}

func TestAstronomyIsMoreSkewed(t *testing.T) {
	// Figure 7: randomwalk and seismic are roughly symmetric, astronomy is
	// skewed. Compare |skewness|.
	rw := math.Abs(Skewness(NewRandomWalk(), 300, 128, 11))
	astro := math.Abs(Skewness(NewAstronomy(), 300, 128, 11))
	if astro <= rw {
		t.Fatalf("astronomy skew %v should exceed randomwalk %v", astro, rw)
	}
}

// TestSkewedSeriesCluster: the skewed generator's whole point is that
// many series are near-duplicates of a few popular shapes — measured here
// as the fraction of series pairs closer than any random-walk pair gets.
// This clustering is what gives sorted invSAX keys their long shared
// prefixes (and block compression its ratio).
func TestSkewedSeriesCluster(t *testing.T) {
	const count, n = 200, 128
	closePairs := func(data []series.Series, thresh float64) int {
		pairs := 0
		for i := 0; i < len(data); i++ {
			for j := i + 1; j < len(data); j++ {
				if d, _ := series.ED(data[i], data[j]); d < thresh {
					pairs++
				}
			}
		}
		return pairs
	}
	sk := closePairs(Generate(NewSkewed(), count, n, 3), 2.0)
	rw := closePairs(Generate(NewRandomWalk(), count, n, 3), 2.0)
	if sk < 100 {
		t.Fatalf("skewed data has only %d close pairs; shapes are not recurring", sk)
	}
	if sk <= 10*rw {
		t.Fatalf("skewed close pairs (%d) should dwarf randomwalk's (%d)", sk, rw)
	}
}

// TestSkewedSharedShapePool: two independent generator instances must
// draw from the same shape pool — the shapes are part of the dataset
// definition, not of a particular handle.
func TestSkewedSharedShapePool(t *testing.T) {
	a := Generate(NewSkewed(), 10, 64, 42)
	b := Generate(NewSkewed(), 10, 64, 42)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("independent instances diverge at series %d point %d", i, j)
			}
		}
	}
}
