package partition

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// Tree is an N-way partitioned Coconut-Tree: N independent core.TreeIndex
// children split by invSAX key range, answering byte-identically to a
// single tree over the same records.
type Tree struct {
	fs      storage.FS
	s       *summary.Summarizer
	rawName string
	mat     bool
	workers int
	bounds  []summary.Key
	kids    []*core.TreeIndex
	g       gather

	// rawSums is the parent-owned CRC sidecar for the shared dataset file
	// (nil when checksums are off); only the parent writes raw bytes, so
	// only the parent appends to and flushes it. degraded names children
	// quarantined whole at open.
	rawSums  *storage.RecordSums
	degraded []string

	// mu serializes inserts: raw-file appends assign global arrival-order
	// positions before records route to their owning partition.
	mu      sync.Mutex
	closed  bool
	rawFile storage.File
}

// treeChildOptions derives partition i's build options: same geometry and
// summarization, divided worker and memory budgets, and the scatter file
// as the record source.
func treeChildOptions(opt core.Options, i, parts, buildPar int) core.Options {
	co := opt
	co.Name = childName(opt.Name, i)
	co.RecordsName = scatterName(opt.Name, i)
	co.MemBudgetBytes = divideBudget(opt.MemBudgetBytes, buildPar, 1<<20)
	co.Workers = shard.PerGroup(opt.Workers, buildPar)
	co.QueryWorkers = shard.PerGroup(opt.QueryWorkers, parts)
	return co
}

// treeRecordSize mirrors core's sort/leaf record size for the scatter pass.
func treeRecordSize(opt core.Options) int {
	n := summary.KeySize + 8
	if opt.Materialized {
		n += series.EncodedSize(opt.S.Params().SeriesLen)
	}
	return n
}

// BuildTree builds an N-way partitioned Coconut-Tree: one summarization
// pass scatters records to per-partition files by key range, the children
// bulk-load in parallel, and the parent manifest commits last.
func BuildTree(opt core.Options, parts int) (*Tree, error) {
	if parts < 2 {
		return nil, fmt.Errorf("partition: need at least 2 partitions, got %d", parts)
	}
	bounds, err := selectBoundaries(opt.FS, opt.RawName, opt.S, parts)
	if err != nil {
		return nil, err
	}
	if opt.Checksums {
		sums, serr := attachRawSums(opt.FS, opt.RawName, series.EncodedSize(opt.S.Params().SeriesLen), true)
		if serr != nil {
			return nil, serr
		}
		opt.RawSums = sums
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	src, err := core.SummaryRecordReader(opt.S, raw, opt.Materialized, opt.Workers)
	if err != nil {
		raw.Close()
		return nil, err
	}
	names := make([]string, parts)
	children := make([]string, parts)
	for i := range names {
		names[i] = scatterName(opt.Name, i)
		children[i] = childName(opt.Name, i)
	}
	total, err := scatter(opt.FS, src, treeRecordSize(opt), bounds, names)
	src.Close()
	raw.Close()
	if err != nil {
		removeScatter(opt.FS, opt.Name, parts)
		return nil, err
	}
	kids := make([]*core.TreeIndex, parts)
	buildPar := shard.Resolve(opt.Workers, parts)
	err = shard.FanOut(buildPar, parts, func(i int, cancelled func() bool) error {
		if cancelled() {
			return nil
		}
		ix, err := core.BuildTree(treeChildOptions(opt, i, parts, buildPar))
		if err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
		kids[i] = ix
		return nil
	})
	removeScatter(opt.FS, opt.Name, parts)
	if err == nil {
		err = commitParent(opt.FS, opt.Name, manifest.VariantTree, opt.S,
			opt.Materialized, opt.LeafCap, opt.RawName, total, opt.Checksums, bounds, children)
	}
	var rawFile storage.File
	if err == nil {
		rawFile, err = opt.FS.Open(opt.RawName)
	}
	if err != nil {
		for _, k := range kids {
			if k != nil {
				k.Close()
			}
		}
		return nil, err
	}
	return newTree(opt, bounds, kids, rawFile, nil), nil
}

// OpenTree reopens a partitioned Coconut-Tree from its parent manifest.
// parts == 0 adopts the stored partition count; a non-zero mismatch fails
// with manifest.ErrConfigMismatch. With allowDegraded, a child whose
// artifacts are corrupt or missing is quarantined (answers cover the
// healthy remainder); otherwise a child that fails to open closes the
// already-open siblings — never a partial handle.
func OpenTree(opt core.Options, parts int, allowDegraded bool) (*Tree, error) {
	m, err := loadParent(opt.FS, opt.Name, manifest.VariantTree, parts,
		opt.S.Params(), opt.Materialized, opt.RawName)
	if err != nil {
		return nil, err
	}
	opt.Checksums = m.Checksums
	if opt.Checksums {
		sums, serr := attachRawSums(opt.FS, opt.RawName, series.EncodedSize(opt.S.Params().SeriesLen), false)
		if serr != nil {
			return nil, serr
		}
		opt.RawSums = sums
	}
	n := m.Part.Partitions
	kids := make([]*core.TreeIndex, n)
	closeKids := func() {
		for _, k := range kids {
			if k != nil {
				k.Close()
			}
		}
	}
	var degraded []string
	for i, cname := range m.Part.Children {
		co := opt
		co.Name = cname
		co.MemBudgetBytes = divideBudget(opt.MemBudgetBytes, n, 1<<20)
		co.Workers = shard.PerGroup(opt.Workers, n)
		co.QueryWorkers = shard.PerGroup(opt.QueryWorkers, n)
		ix, err := core.OpenTree(co)
		if err != nil {
			if quarantineChild(allowDegraded, err) {
				degraded = append(degraded, cname)
				continue
			}
			closeKids()
			return nil, fmt.Errorf("partition: opening child %q: %w", cname, err)
		}
		kids[i] = ix
	}
	rawFile, err := opt.FS.Open(opt.RawName)
	if err != nil {
		closeKids()
		return nil, err
	}
	return newTree(opt, m.Part.Boundaries, kids, rawFile, degraded), nil
}

func newTree(opt core.Options, bounds []summary.Key, kids []*core.TreeIndex, rawFile storage.File, degraded []string) *Tree {
	t := &Tree{
		fs:       opt.FS,
		s:        opt.S,
		rawName:  opt.RawName,
		mat:      opt.Materialized,
		workers:  opt.Workers,
		bounds:   bounds,
		kids:     kids,
		rawFile:  rawFile,
		rawSums:  opt.RawSums,
		degraded: degraded,
	}
	sks := make([]searcher, len(kids))
	for i, k := range kids {
		if k != nil {
			sks[i] = treeChild{k}
		}
	}
	aw := opt.ApproxWindow
	if aw <= 0 {
		aw = 32
	}
	t.g = gather{
		kids:    sks,
		workers: opt.QueryWorkers,
		half:    func(radius int) int { return aw * (radius + 1) / 2 },
	}
	return t
}

type treeChild struct{ ix *core.TreeIndex }

func (c treeChild) count() int64 { return c.ix.Count() }
func (c treeChild) approxWindow(ctx context.Context, q series.Series, radius int) (core.ApproxWindow, error) {
	return c.ix.ApproxWindowCandsCtx(ctx, q, radius)
}
func (c treeChild) exactVerify(ctx context.Context, q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (core.Result, error) {
	return c.ix.ExactVerifyCtx(ctx, q, seedPos, seedSq, bound)
}

// ExactSearch returns the exact nearest neighbor of q via scatter-gather
// SIMS, identical to a single-partition index's answer.
func (t *Tree) ExactSearch(q series.Series, radius int) (core.Result, error) {
	return t.ExactSearchCtx(context.Background(), q, radius)
}

// ExactSearchCtx is ExactSearch with cancellation: a parent cancel cancels
// every partition's verification, the first child error cancels its
// siblings, and a done ctx returns ctx.Err() — never a partial answer.
func (t *Tree) ExactSearchCtx(ctx context.Context, q series.Series, radius int) (core.Result, error) {
	r, err := t.g.exactSq(ctx, q, radius)
	return finish(r), err
}

// ApproxSearch returns the approximate nearest neighbor from the merged
// cross-partition window.
func (t *Tree) ApproxSearch(q series.Series, radius int) (core.Result, error) {
	return t.ApproxSearchCtx(context.Background(), q, radius)
}

// ApproxSearchCtx is ApproxSearch with cancellation (see ExactSearchCtx).
func (t *Tree) ApproxSearchCtx(ctx context.Context, q series.Series, radius int) (core.Result, error) {
	r, err := t.g.approxSq(ctx, q, radius)
	return finish(r), err
}

// ExactSearchKNN returns the k exact nearest neighbors: every partition
// answers with its self-seeded local top-k (pruning on the shared bound),
// and the per-partition sets merge under the (distance, position) total
// order.
func (t *Tree) ExactSearchKNN(q series.Series, k, radius int) ([]core.Neighbor, core.Result, error) {
	return t.ExactSearchKNNCtx(context.Background(), q, k, radius)
}

// ExactSearchKNNCtx is ExactSearchKNN with cancellation: a parent cancel
// cancels every partition's scan, the first child error cancels its
// siblings, and a done ctx returns ctx.Err() — never a partial top-k.
func (t *Tree) ExactSearchKNNCtx(ctx context.Context, q series.Series, k, radius int) ([]core.Neighbor, core.Result, error) {
	stats := core.Result{Pos: -1, Dist: math.Inf(1)}
	if k < 1 {
		k = 1
	}
	if t.g.total() == 0 {
		return nil, stats, core.ErrEmptyIndex
	}
	var kb shard.BSF
	kb.Init(math.Inf(1))
	n := len(t.kids)
	perChild := make([][]core.Neighbor, n)
	childStats := make([]core.Result, n)
	cc := newChildCancel(ctx)
	defer cc.cancel()
	ferr := shard.FanOutCtx(ctx, shard.Resolve(t.g.workers, n), n, func(i int, cancelled func() bool) error {
		if cancelled() || t.kids[i] == nil || t.kids[i].Count() == 0 {
			return nil
		}
		ns, st, err := t.kids[i].ExactSearchKNNSharedCtx(cc.cctx, q, k, radius, &kb)
		if err != nil {
			return cc.fail(err)
		}
		perChild[i], childStats[i] = ns, st
		return nil
	})
	if err := cc.resolve(ctx, ferr); err != nil {
		// On a ctx error abandoned children may still be writing perChild
		// and childStats; neither is read on this path.
		return nil, stats, err
	}
	final := shard.NewKNNHeap(k)
	for _, ns := range perChild {
		for _, nb := range ns {
			final.Offer(nb)
		}
	}
	out := final.Sorted()
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	for _, st := range childStats {
		stats.VisitedRecords += st.VisitedRecords
		stats.VisitedLeaves += st.VisitedLeaves
	}
	if len(out) > 0 {
		stats.Pos, stats.Dist = out[0].Pos, out[0].Dist
	}
	return out, stats, nil
}

// InsertBatch appends new series to the shared dataset file (assigning
// global arrival-order positions under the partition-level lock) and
// routes each record to its owning partition's tree.
func (t *Tree) InsertBatch(batch []series.Series) error {
	return t.InsertBatchCtx(context.Background(), batch)
}

// InsertBatchCtx is InsertBatch with cancellation as admission control:
// the context is checked once before any raw byte lands; once admitted the
// batch runs to completion — aborting mid-route would leave raw bytes some
// partitions indexed and others did not.
func (t *Tree) InsertBatchCtx(ctx context.Context, batch []series.Series) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	p := t.s.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	end, err := t.rawFile.Size()
	if err != nil {
		return err
	}
	if end%sz != 0 {
		return fmt.Errorf("partition: raw file size %d not aligned", end)
	}
	for _, s := range batch {
		if len(s) != p.SeriesLen {
			return fmt.Errorf("partition: inserted series has length %d, want %d", len(s), p.SeriesLen)
		}
	}
	keys, err := t.s.KeysOf(batch, t.workers)
	if err != nil {
		return err
	}
	// Refuse the whole batch before writing any raw bytes if a record
	// routes to a quarantined partition.
	routes := make([]int, len(batch))
	for i := range keys {
		routes[i] = route(t.bounds, keys[i])
		if t.kids[routes[i]] == nil {
			return fmt.Errorf("partition: partition %d is quarantined; cannot accept writes until repaired", routes[i])
		}
	}
	pos := end / sz
	perChild := make([][]core.InsertRec, len(t.kids))
	enc := make([]byte, 0, sz)
	for i, s := range batch {
		enc = series.AppendEncode(enc[:0], s)
		if _, err := t.rawFile.WriteAt(enc, pos*sz); err != nil {
			return err
		}
		if t.rawSums != nil {
			t.rawSums.Set(pos, enc)
		}
		rec := core.InsertRec{Key: keys[i], Pos: pos}
		if t.mat {
			rec.Raw = append([]byte(nil), enc...)
		}
		perChild[routes[i]] = append(perChild[routes[i]], rec)
		pos++
	}
	return shard.FanOut(shard.Resolve(t.workers, len(t.kids)), len(t.kids),
		func(i int, cancelled func() bool) error {
			if cancelled() || len(perChild[i]) == 0 {
				return nil
			}
			return t.kids[i].InsertRecords(perChild[i])
		})
}

// Partitions returns the partition count.
func (t *Tree) Partitions() int { return len(t.kids) }

// Count returns the number of indexed series across all partitions.
func (t *Tree) Count() int64 { return t.g.total() }

// NumLeaves returns the total leaf count across partitions.
func (t *Tree) NumLeaves() int {
	n := 0
	for _, k := range t.kids {
		if k != nil {
			n += k.NumLeaves()
		}
	}
	return n
}

// AvgLeafFill returns the leaf-weighted mean occupancy across partitions.
func (t *Tree) AvgLeafFill() float64 {
	var sum float64
	var leaves int
	for _, k := range t.kids {
		if k == nil {
			continue
		}
		n := k.NumLeaves()
		sum += k.AvgLeafFill() * float64(n)
		leaves += n
	}
	if leaves == 0 {
		return 0
	}
	return sum / float64(leaves)
}

// SizeBytes returns the total on-device size across partitions.
func (t *Tree) SizeBytes() int64 {
	var n int64
	for _, k := range t.kids {
		if k != nil {
			n += k.SizeBytes()
		}
	}
	return n
}

// Degraded reports whether any partition was quarantined at open.
func (t *Tree) Degraded() bool { return len(t.degraded) > 0 }

// QuarantinedChildren returns the names of quarantined partitions.
func (t *Tree) QuarantinedChildren() []string { return append([]string(nil), t.degraded...) }

// flushRawSums persists the parent sidecar's dirty tail; it must land
// before child metadata can reference the new raw positions.
func (t *Tree) flushRawSums() error {
	if t.rawSums == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rawSums.Flush()
}

// Sync persists every partition's pending metadata. The parent manifest is
// immutable and needs no re-commit: child manifests are authoritative for
// mutable state.
func (t *Tree) Sync() error {
	if err := t.flushRawSums(); err != nil {
		return err
	}
	for _, k := range t.kids {
		if k == nil {
			continue
		}
		if err := k.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and closes every partition and releases the raw handle. It
// is idempotent and safe to call concurrently with cancelled queries.
func (t *Tree) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	first := t.flushRawSums()
	for _, k := range t.kids {
		if k == nil {
			continue
		}
		if err := k.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := t.rawFile.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
