package partition

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
	"github.com/coconut-db/coconut/internal/summary"
)

// LSM is an N-way partitioned Coconut-LSM: streaming writes route to the
// owning partition's memtable, each partition compacts independently
// (background pools and pending-run budgets divided from the global
// configuration), and queries scatter-gather like the other variants.
type LSM struct {
	s       *summary.Summarizer
	workers int
	noWAL   bool
	bounds  []summary.Key
	kids    []*lsm.Index
	g       gather

	// rawSums is the parent-owned CRC sidecar for the shared dataset file
	// (nil when checksums are off); the parent is the sole raw writer, so
	// it alone appends to and flushes the sidecar. degraded names children
	// quarantined whole at open (manifest unreadable).
	rawSums  *storage.RecordSums
	degraded []string

	// cache is the decoded-block cache every child reads through (one
	// shared budget across partitions); nil for uncompressed children.
	cache *blockcache.Cache

	// mu serializes appends: raw-file writes assign global arrival-order
	// positions before entries route to their owning partition's memtable.
	mu      sync.Mutex
	closed  bool
	rawFile storage.File
}

// lsmChildOptions derives partition i's options: the global memory,
// compaction-worker, and pending-run budgets divide across partitions so
// aggregate resource use matches the unpartitioned configuration. The
// ownership filter scopes any reconstruction-from-raw to the child's key
// range — the raw dataset is shared, and a child re-indexing a sibling's
// records would duplicate them across the index.
func lsmChildOptions(opt lsm.Options, i, parts, buildPar int, bounds []summary.Key) lsm.Options {
	co := opt
	co.Name = childName(opt.Name, i)
	co.Owns = func(k summary.Key) bool { return route(bounds, k) == i }
	co.MemBudgetBytes = divideBudget(opt.MemBudgetBytes, parts, 64<<10)
	co.Workers = shard.PerGroup(opt.Workers, buildPar)
	co.QueryWorkers = shard.PerGroup(opt.QueryWorkers, parts)
	co.CompactionWorkers = shard.PerGroup(opt.CompactionWorkers, parts)
	if opt.MaxPendingRuns > 0 {
		co.MaxPendingRuns = opt.MaxPendingRuns / parts
		if co.MaxPendingRuns < 1 {
			co.MaxPendingRuns = 1
		}
	}
	return co
}

// BuildLSM bulk-loads an N-way partitioned Coconut-LSM: one summarization
// pass scatters (key, position) records by key range, each partition sorts
// its records into an initial run in parallel, and the parent manifest
// commits last.
func BuildLSM(opt lsm.Options, parts int) (*LSM, error) {
	if parts < 2 {
		return nil, fmt.Errorf("partition: need at least 2 partitions, got %d", parts)
	}
	bounds, err := selectBoundaries(opt.FS, opt.RawName, opt.S, parts)
	if err != nil {
		return nil, err
	}
	if opt.Checksums {
		recSize := series.EncodedSize(opt.S.Params().SeriesLen)
		sums, serr := attachRawSums(opt.FS, opt.RawName, recSize, true)
		if serr != nil {
			return nil, serr
		}
		opt.RawSums = sums
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	src, err := core.SummaryRecordReader(opt.S, raw, false, opt.Workers)
	if err != nil {
		raw.Close()
		return nil, err
	}
	names := make([]string, parts)
	children := make([]string, parts)
	for i := range names {
		names[i] = scatterName(opt.Name, i)
		children[i] = childName(opt.Name, i)
	}
	total, err := scatter(opt.FS, src, summary.KeySize+8, bounds, names)
	src.Close()
	raw.Close()
	if err != nil {
		removeScatter(opt.FS, opt.Name, parts)
		return nil, err
	}
	kids := make([]*lsm.Index, parts)
	buildPar := shard.Resolve(opt.Workers, parts)
	err = shard.FanOut(buildPar, parts, func(i int, cancelled func() bool) error {
		if cancelled() {
			return nil
		}
		co := lsmChildOptions(opt, i, parts, buildPar, bounds)
		co.RecordsName = scatterName(opt.Name, i)
		ix, err := lsm.Build(co)
		if err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
		kids[i] = ix
		return nil
	})
	removeScatter(opt.FS, opt.Name, parts)
	if err == nil {
		err = commitParent(opt.FS, opt.Name, manifest.VariantLSM, opt.S,
			false, 0, opt.RawName, total, opt.Checksums, bounds, children)
	}
	var rawFile storage.File
	if err == nil {
		rawFile, err = opt.FS.Open(opt.RawName)
	}
	if err != nil {
		for _, k := range kids {
			if k != nil {
				k.Close()
			}
		}
		return nil, err
	}
	return newLSM(opt, bounds, kids, rawFile, nil), nil
}

// OpenLSM reopens a partitioned Coconut-LSM from its parent manifest; each
// child restores its own run set and compaction cursors from its child
// manifest (which stays authoritative for mutable state). parts == 0
// adopts the stored partition count; a non-zero mismatch fails with
// manifest.ErrConfigMismatch. Never returns a partial handle.
func OpenLSM(opt lsm.Options, parts int) (*LSM, error) {
	m, err := loadParent(opt.FS, opt.Name, manifest.VariantLSM, parts,
		opt.S.Params(), false, opt.RawName)
	if err != nil {
		return nil, err
	}
	// Checksums are a property of the stored bytes, not the caller's
	// configuration: adopt the flag the build recorded.
	opt.Checksums = m.Checksums
	if opt.Checksums {
		recSize := series.EncodedSize(opt.S.Params().SeriesLen)
		sums, serr := attachRawSums(opt.FS, opt.RawName, recSize, false)
		if serr != nil {
			return nil, serr
		}
		opt.RawSums = sums
	}
	n := m.Part.Partitions
	kids := make([]*lsm.Index, n)
	closeKids := func() {
		for _, k := range kids {
			if k != nil {
				k.Close()
			}
		}
	}
	var degraded []string
	for i, cname := range m.Part.Children {
		co := lsmChildOptions(opt, i, n, n, m.Part.Boundaries)
		co.Name = cname
		ix, err := lsm.Open(co)
		if err != nil {
			if quarantineChild(opt.AllowDegraded, err) {
				degraded = append(degraded, cname)
				continue
			}
			closeKids()
			return nil, fmt.Errorf("partition: opening child %q: %w", cname, err)
		}
		kids[i] = ix
	}
	rawFile, err := opt.FS.Open(opt.RawName)
	if err != nil {
		closeKids()
		return nil, err
	}
	return newLSM(opt, m.Part.Boundaries, kids, rawFile, degraded), nil
}

func newLSM(opt lsm.Options, bounds []summary.Key, kids []*lsm.Index, rawFile storage.File, degraded []string) *LSM {
	l := &LSM{
		s:        opt.S,
		workers:  opt.Workers,
		noWAL:    opt.DisableWAL,
		bounds:   bounds,
		kids:     kids,
		rawFile:  rawFile,
		rawSums:  opt.RawSums,
		cache:    opt.Cache,
		degraded: degraded,
	}
	sks := make([]searcher, len(kids))
	for i, k := range kids {
		if k != nil {
			sks[i] = lsmChild{k}
		}
	}
	w := opt.Window
	if w <= 0 {
		w = 100
	}
	l.g = gather{
		kids:    sks,
		workers: opt.QueryWorkers,
		half:    func(int) int { return w / 2 },
	}
	return l
}

type lsmChild struct{ ix *lsm.Index }

func (c lsmChild) count() int64 { return c.ix.Count() }
func (c lsmChild) approxWindow(ctx context.Context, q series.Series, _ int) (core.ApproxWindow, error) {
	return c.ix.ApproxWindowCandsCtx(ctx, q)
}
func (c lsmChild) exactVerify(ctx context.Context, q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (core.Result, error) {
	r, err := c.ix.ExactVerifyCtx(ctx, q, seedPos, seedSq, bound)
	return core.Result{Pos: r.Pos, Dist: r.Dist, VisitedRecords: r.VisitedRecords, VisitedLeaves: r.VisitedRuns}, err
}

// fromCore maps the gather result back into the LSM result shape (runs
// probed travel in the VisitedLeaves slot internally).
func lsmResult(r core.Result) lsm.Result {
	return lsm.Result{Pos: r.Pos, Dist: r.Dist, VisitedRecords: r.VisitedRecords, VisitedRuns: r.VisitedLeaves}
}

// ExactSearch returns the exact nearest neighbor of q via scatter-gather
// SIMS, identical to a single-partition index's answer.
func (l *LSM) ExactSearch(q series.Series) (lsm.Result, error) {
	return l.ExactSearchCtx(context.Background(), q)
}

// ExactSearchCtx is ExactSearch with cancellation: a parent cancel cancels
// every partition's verification, the first child error cancels its
// siblings, and a done ctx returns ctx.Err() — never a partial answer.
func (l *LSM) ExactSearchCtx(ctx context.Context, q series.Series) (lsm.Result, error) {
	r, err := l.g.exactSq(ctx, q, 0)
	r.Dist = math.Sqrt(r.Dist)
	return lsmResult(r), err
}

// ApproxSearch returns the approximate nearest neighbor from the merged
// cross-partition window.
func (l *LSM) ApproxSearch(q series.Series) (lsm.Result, error) {
	return l.ApproxSearchCtx(context.Background(), q)
}

// ApproxSearchCtx is ApproxSearch with cancellation (see ExactSearchCtx).
func (l *LSM) ApproxSearchCtx(ctx context.Context, q series.Series) (lsm.Result, error) {
	r, err := l.g.approxSq(ctx, q, 0)
	r.Dist = math.Sqrt(r.Dist)
	return lsmResult(r), err
}

// Append adds new series: raw bytes go to the shared dataset file under
// the partition-level lock (assigning global arrival-order positions),
// then each record routes to its owning partition's memtable and WAL —
// partitions flush, group-commit, and compact independently. Routing uses
// AppendEntriesNoWait under the lock and waits on every child's
// durability token after releasing it, so concurrent Append calls share
// each child's group commit instead of serializing whole-batch fsyncs.
func (l *LSM) Append(batch []series.Series) error {
	return l.AppendCtx(context.Background(), batch)
}

// AppendCtx is Append with cancellation as admission control: the context
// is checked once before any raw byte lands; once admitted the batch is
// fully routed and logged (aborting mid-route would leave raw bytes some
// partitions indexed and others did not). A cancelled appender abandons
// the durability waits — the children's group commits still fsync the
// logged entries, so the index stays consistent.
func (l *LSM) AppendCtx(ctx context.Context, batch []series.Series) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(batch) == 0 {
		return nil
	}
	l.mu.Lock()
	tokens, err := l.appendLocked(batch)
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return shard.FanOutCtx(ctx, shard.Resolve(l.workers, len(l.kids)), len(l.kids),
		func(i int, cancelled func() bool) error {
			if cancelled() || tokens[i] < 0 {
				return nil
			}
			return l.kids[i].WaitDurableCtx(ctx, tokens[i])
		})
}

// appendLocked writes raw bytes, routes records, and logs them into each
// owning child; tokens[i] is child i's durability token (-1 when the
// batch routed nothing to it).
func (l *LSM) appendLocked(batch []series.Series) ([]int64, error) {
	p := l.s.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	end, err := l.rawFile.Size()
	if err != nil {
		return nil, err
	}
	if end%sz != 0 {
		if l.noWAL {
			return nil, fmt.Errorf("partition: raw file size %d not aligned", end)
		}
		// With the WAL on, a torn raw tail can survive a crash (the partial
		// record was never acknowledged); the round-down overwrites it,
		// exactly as the single-index WAL path does.
		end -= end % sz
	}
	for _, s := range batch {
		if len(s) != p.SeriesLen {
			return nil, fmt.Errorf("partition: series length %d, want %d", len(s), p.SeriesLen)
		}
	}
	keys, err := l.s.KeysOf(batch, l.workers)
	if err != nil {
		return nil, err
	}
	// Refuse the whole batch before writing any raw bytes if a record
	// routes to a quarantined partition: a degraded index fails writes
	// loudly rather than silently dropping them.
	routes := make([]int, len(batch))
	for i := range keys {
		routes[i] = route(l.bounds, keys[i])
		if l.kids[routes[i]] == nil {
			return nil, fmt.Errorf("partition: partition %d is quarantined; cannot accept writes until repaired", routes[i])
		}
	}
	pos := end / sz
	perChild := make([][]lsm.Entry, len(l.kids))
	enc := make([]byte, 0, sz)
	for i := range batch {
		enc = series.AppendEncode(enc[:0], batch[i])
		if _, err := l.rawFile.WriteAt(enc, pos*sz); err != nil {
			return nil, err
		}
		if l.rawSums != nil {
			l.rawSums.Set(pos, enc)
		}
		perChild[routes[i]] = append(perChild[routes[i]], lsm.Entry{Key: keys[i], Pos: pos})
		pos++
	}
	tokens := make([]int64, len(l.kids))
	for i, entries := range perChild {
		tokens[i] = -1
		if len(entries) == 0 {
			continue
		}
		lsn, err := l.kids[i].AppendEntriesNoWait(entries)
		if err != nil {
			return nil, err
		}
		tokens[i] = lsn
	}
	return tokens, nil
}

// flushRawSums persists the parent sidecar's dirty tail; it must land
// before child manifests can reference the new raw positions.
func (l *LSM) flushRawSums() error {
	if l.rawSums == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rawSums.Flush()
}

// Flush forces every partition's memtable to disk.
func (l *LSM) Flush() error {
	if err := l.flushRawSums(); err != nil {
		return err
	}
	for _, k := range l.kids {
		if k == nil {
			continue
		}
		if err := k.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes every partition and drains its background compactions —
// the global quiescence barrier.
func (l *LSM) Sync() error {
	if err := l.flushRawSums(); err != nil {
		return err
	}
	for _, k := range l.kids {
		if k == nil {
			continue
		}
		if err := k.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Degraded reports whether any partition (or any run inside a healthy
// partition) is quarantined: answers cover only the healthy remainder.
func (l *LSM) Degraded() bool {
	if len(l.degraded) > 0 {
		return true
	}
	for _, k := range l.kids {
		if k != nil && k.Degraded() {
			return true
		}
	}
	return false
}

// QuarantinedChildren returns the names of partitions quarantined whole
// at open (unreadable child manifests).
func (l *LSM) QuarantinedChildren() []string { return append([]string(nil), l.degraded...) }

// RebuildQuarantined re-derives every healthy partition's quarantined
// runs from the shared raw dataset. Partitions quarantined whole need a
// full rebuild and are reported, not repaired.
func (l *LSM) RebuildQuarantined() error {
	for _, k := range l.kids {
		if k == nil {
			continue
		}
		if err := k.RebuildQuarantined(); err != nil {
			return err
		}
	}
	if len(l.degraded) > 0 {
		return fmt.Errorf("partition: %d partition(s) quarantined whole (%v); rebuild the index to repair",
			len(l.degraded), l.degraded)
	}
	return nil
}

// CacheStats returns the shared block cache's counters — whole-index
// numbers, since one cache serves every partition. Zeros when the children
// are uncompressed.
func (l *LSM) CacheStats() blockcache.Stats {
	// A child may have materialized a private cache at open (adopted
	// Compressed flag with no caller-supplied cache); prefer the shared one.
	if l.cache == nil {
		var agg blockcache.Stats
		for _, k := range l.kids {
			if k == nil {
				continue
			}
			st := k.CacheStats()
			agg.Hits += st.Hits
			agg.Misses += st.Misses
			agg.Evictions += st.Evictions
			agg.Bytes += st.Bytes
			agg.Budget += st.Budget
		}
		return agg
	}
	return l.cache.Stats()
}

// Partitions returns the partition count.
func (l *LSM) Partitions() int { return len(l.kids) }

// Count returns the number of indexed series across all partitions.
func (l *LSM) Count() int64 { return l.g.total() }

// NumRuns returns the total on-disk run count across partitions.
func (l *LSM) NumRuns() int {
	n := 0
	for _, k := range l.kids {
		if k != nil {
			n += k.NumRuns()
		}
	}
	return n
}

// SizeBytes returns the total size of all runs across partitions.
func (l *LSM) SizeBytes() int64 {
	var n int64
	for _, k := range l.kids {
		if k != nil {
			n += k.SizeBytes()
		}
	}
	return n
}

// Close flushes, drains, and closes every partition, then releases the
// raw handle. It is idempotent and safe to call concurrently with
// cancelled queries and abandoned durability waiters.
func (l *LSM) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	first := l.flushRawSums()
	for _, k := range l.kids {
		if k == nil {
			continue
		}
		if err := k.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := l.rawFile.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
