// Package partition implements the N-way partitioned index architecture:
// records are routed to partitions by invSAX key range (boundaries chosen
// from a dataset sample so partitions balance), each partition builds as
// an independent index in parallel, and queries scatter to every partition
// and gather deterministically.
//
// The determinism contract is exact: answers are byte-identical to a
// single-partition index for any partition count and any worker count.
// Approximate search composes per-partition window contributions through
// internal/window (the window is a pure function of the record multiset);
// exact search seeds every partition with the GLOBAL approximate answer
// and merges per-partition verifications under the total (distance,
// position) order, sharing one atomic squared best-so-far bound so
// partitions prune each other; k-NN merges self-seeded per-partition top-k
// sets through the shared shard.KNNHeap order.
//
// Durability: each child index commits its own manifest (the PR 5
// machinery) BEFORE the parent manifest is committed, so an existing
// parent always references fully durable children. The parent manifest
// (boundaries + child names) is immutable after the build; mutable state
// (LSM run sets, insert counts) lives in the child manifests, which stay
// authoritative across reopens.
package partition

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
	"github.com/coconut-db/coconut/internal/window"
)

// childName returns the index-name prefix of partition i.
func childName(name string, i int) string { return fmt.Sprintf("%s.p%03d", name, i) }

// scatterName returns partition i's temporary build-time record file.
func scatterName(name string, i int) string { return childName(name, i) + ".scatter" }

// route returns the partition owning key under bounds: partition i owns
// keys in [bounds[i-1], bounds[i]), with the first and last ranges open
// below and above.
func route(bounds []summary.Key, k summary.Key) int {
	return sort.Search(len(bounds), func(i int) bool { return k.Compare(bounds[i]) < 0 })
}

// selectBoundaries picks parts-1 strictly increasing split keys from a
// fixed-stride sample of the dataset, walking each quantile position
// forward past duplicates. Every boundary is an actual sampled key
// strictly greater than the sample minimum, so every partition is
// non-empty at build time. Fails when the dataset has too few distinct
// keys to populate parts partitions.
func selectBoundaries(fs storage.FS, rawName string, s *summary.Summarizer, parts int) ([]summary.Key, error) {
	raw, err := fs.Open(rawName)
	if err != nil {
		return nil, err
	}
	defer raw.Close()
	p := s.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	size, err := raw.Size()
	if err != nil {
		return nil, err
	}
	if size%sz != 0 {
		return nil, fmt.Errorf("partition: raw file size %d not aligned to series size %d", size, sz)
	}
	count := size / sz
	target := int64(32 * parts)
	if target < 256 {
		target = 256
	}
	if target > count {
		target = count
	}
	if target < int64(parts) {
		return nil, fmt.Errorf("partition: dataset has %d series, too few for %d partitions", count, parts)
	}
	// One sequential pass keeps boundary selection on the cheap side of the
	// device model (Coconut's sequential-I/O discipline): decoding and
	// summarizing happen only at the stride-th records.
	stride := count / target
	sr := storage.NewSequentialReader(raw, 0, -1, 0)
	buf := make([]byte, int(sz)*512)
	ser := make(series.Series, p.SeriesLen)
	sample := make([]summary.Key, 0, target)
	var rec int64
	for int64(len(sample)) < target {
		n, err := io.ReadFull(sr, buf)
		if err == io.EOF {
			break
		}
		if err != nil && err != io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("partition: sampling dataset: %w", err)
		}
		for off := 0; off+int(sz) <= n; off += int(sz) {
			if rec%stride == 0 && int64(len(sample)) < target {
				series.DecodeInto(buf[off:off+int(sz)], ser)
				key, kerr := s.KeyOf(ser)
				if kerr != nil {
					return nil, kerr
				}
				sample = append(sample, key)
			}
			rec++
		}
		if err == io.ErrUnexpectedEOF {
			break
		}
	}
	if int64(len(sample)) < target {
		return nil, fmt.Errorf("partition: sampling dataset: %w", io.ErrUnexpectedEOF)
	}
	sort.Slice(sample, func(a, b int) bool { return sample[a].Less(sample[b]) })
	bounds := make([]summary.Key, 0, parts-1)
	prev := sample[0]
	cursor := 1
	for j := 1; j < parts; j++ {
		i := j * len(sample) / parts
		if i < cursor {
			i = cursor
		}
		for i < len(sample) && sample[i].Compare(prev) <= 0 {
			i++
		}
		if i == len(sample) {
			return nil, fmt.Errorf("partition: dataset has too few distinct keys for %d partitions", parts)
		}
		bounds = append(bounds, sample[i])
		prev = sample[i]
		cursor = i + 1
	}
	return bounds, nil
}

// scatter splits the record stream src (fixed-size records, key first)
// into one file per partition, routed by key range. Returns the total
// record count.
func scatter(fs storage.FS, src io.Reader, recSize int, bounds []summary.Key, names []string) (int64, error) {
	files := make([]storage.File, len(names))
	ws := make([]*storage.SequentialWriter, len(names))
	closeAll := func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}
	for i, n := range names {
		f, err := fs.Create(n)
		if err != nil {
			closeAll()
			return 0, err
		}
		files[i] = f
		ws[i] = storage.NewSequentialWriter(f, 0, 0)
	}
	var total int64
	var key summary.Key
	buf := make([]byte, recSize*512)
	for {
		n, err := io.ReadFull(src, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			if n%recSize != 0 {
				closeAll()
				return 0, fmt.Errorf("partition: record stream truncated (%d trailing bytes)", n%recSize)
			}
		} else if err != nil {
			closeAll()
			return 0, err
		}
		for off := 0; off+recSize <= n; off += recSize {
			copy(key[:], buf[off:off+summary.KeySize])
			if _, werr := ws[route(bounds, key)].Write(buf[off : off+recSize]); werr != nil {
				closeAll()
				return 0, werr
			}
			total++
		}
		if err == io.ErrUnexpectedEOF {
			break
		}
	}
	for i := range ws {
		if err := ws[i].Flush(); err != nil {
			closeAll()
			return 0, err
		}
	}
	for i, f := range files {
		files[i] = nil
		if err := f.Close(); err != nil {
			closeAll()
			return 0, err
		}
	}
	return total, nil
}

// removeScatter deletes the temporary scatter files (best-effort; they are
// never referenced by a manifest).
func removeScatter(fs storage.FS, name string, parts int) {
	for i := 0; i < parts; i++ {
		_ = fs.Remove(scatterName(name, i))
	}
}

// commitParent writes the parent manifest, the build's durability point:
// it is committed only after every child committed its own manifest.
func commitParent(fs storage.FS, name string, child manifest.Variant, s *summary.Summarizer,
	mat bool, leafCap int, rawName string, count int64, checksums bool,
	bounds []summary.Key, children []string) error {
	p := s.Params()
	return manifest.Commit(fs, name, &manifest.Manifest{
		Variant:      manifest.VariantPartitioned,
		SeriesLen:    p.SeriesLen,
		Segments:     p.Segments,
		CardBits:     p.CardBits,
		Materialized: mat,
		LeafCap:      leafCap,
		RawName:      rawName,
		Count:        count,
		Checksums:    checksums,
		Part: &manifest.PartitionLayout{
			ChildVariant: child,
			Partitions:   len(children),
			Boundaries:   bounds,
			Children:     children,
		},
	})
}

// attachRawSums opens the parent-owned CRC sidecar for the shared dataset
// file; every child verifies its raw fetches through this one handle, and
// only the parent (the sole raw writer) flushes it. fresh forces a rebuild
// (Build paths — an existing sidecar may describe a replaced dataset); an
// open reconciles the sidecar with the recovered raw tail and builds it
// from scratch when missing (a legacy index upgraded in place).
func attachRawSums(fs storage.FS, rawName string, recSize int, fresh bool) (*storage.RecordSums, error) {
	if !fresh {
		sums, err := storage.OpenRecordSums(fs, rawName, recSize)
		if err == nil {
			raw, oerr := fs.Open(rawName)
			if oerr != nil {
				return nil, oerr
			}
			size, serr := raw.Size()
			if serr == nil {
				serr = sums.Reconcile(raw, size/int64(recSize))
			}
			raw.Close()
			if serr != nil {
				return nil, fmt.Errorf("partition: reconciling raw sidecar: %w", serr)
			}
			return sums, nil
		}
		if !errors.Is(err, storage.ErrNotExist) {
			return nil, fmt.Errorf("partition: opening raw sidecar: %w", err)
		}
	}
	sums, err := storage.BuildRecordSums(fs, rawName, recSize)
	if err != nil {
		return nil, fmt.Errorf("partition: building raw sidecar: %w", err)
	}
	return sums, nil
}

// quarantineChild reports whether a failed child open should quarantine
// the child (degraded mode on, and the failure is corruption or a missing
// file) rather than fail the whole partitioned open.
func quarantineChild(allowDegraded bool, err error) bool {
	return allowDegraded && (errors.Is(err, storage.ErrCorruptData) ||
		errors.Is(err, manifest.ErrCorruptManifest) || errors.Is(err, storage.ErrNotExist))
}

// loadParent loads the parent manifest and runs the loud config-mismatch
// checks every partitioned Open performs before touching child indexes:
// variant, child variant, partition count (parts == 0 adopts the stored
// count), and summarization/materialization/dataset parameters.
func loadParent(fs storage.FS, name string, child manifest.Variant, parts int,
	p summary.Params, mat bool, rawName string) (*manifest.Manifest, error) {
	m, err := manifest.Load(fs, name)
	if err != nil {
		return nil, err
	}
	if err := m.CheckVariant(manifest.VariantPartitioned); err != nil {
		return nil, err
	}
	if m.Part.ChildVariant != child {
		return nil, fmt.Errorf("%w: stored partitioned index has %s children, not %s",
			manifest.ErrConfigMismatch, m.Part.ChildVariant, child)
	}
	if parts != 0 && parts != m.Part.Partitions {
		return nil, fmt.Errorf("%w: Partitions=%d, stored index has %d partitions",
			manifest.ErrConfigMismatch, parts, m.Part.Partitions)
	}
	if err := m.CheckParams(p, mat, rawName); err != nil {
		return nil, err
	}
	return m, nil
}

// divideBudget splits a byte budget across n concurrent consumers with a
// floor; zero (defaulted) budgets pass through so each consumer applies
// its own default.
func divideBudget(total int64, n int, floor int64) int64 {
	if total <= 0 {
		return 0
	}
	b := total / int64(n)
	if b < floor {
		b = floor
	}
	return b
}

// searcher is the uniform child-index surface the scatter-gather query
// layer drives; tree, trie, and LSM children adapt to it. All distances
// are SQUARED.
type searcher interface {
	count() int64
	approxWindow(ctx context.Context, q series.Series, radius int) (core.ApproxWindow, error)
	exactVerify(ctx context.Context, q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (core.Result, error)
}

// childCancel wires "the first child error cancels its siblings" onto a
// scatter fan-out: children run under a derived context (so a parent
// cancel reaches every child too), fail records the first real failure and
// cancels the rest, and finish resolves the fan-out's outcome with the
// parent's cancellation taking precedence over everything — a query never
// reports a child error when the caller itself gave up.
type childCancel struct {
	cctx   context.Context
	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
}

func newChildCancel(ctx context.Context) *childCancel {
	cc := &childCancel{}
	cc.cctx, cc.cancel = context.WithCancel(ctx)
	return cc
}

// fail records the first failure and cancels the sibling children.
func (cc *childCancel) fail(err error) error {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	cc.mu.Unlock()
	cc.cancel()
	return err
}

// resolve decides the fan-out result: parent cancellation first, then the
// first child failure (a sibling that merely observed the cancellation
// reports context.Canceled, which must not mask the failure that caused
// it), then the fan-out's own error. It deliberately does NOT cancel the
// derived context — children hand back fetch closures bound to cc.cctx
// that the merged evaluation calls after the fan-out joins, so the caller
// defers cc.cancel() to its own exit instead.
func (cc *childCancel) resolve(ctx context.Context, ferr error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	cc.mu.Lock()
	err := cc.err
	cc.mu.Unlock()
	if err != nil {
		return err
	}
	return ferr
}

// gather fans a query out over the partitions and merges the answers
// deterministically. A nil child is a quarantined partition (degraded
// mode): it contributes no candidates and no count, so answers cover
// exactly the healthy remainder.
type gather struct {
	kids []searcher
	// workers is the partition-level query fan-out (children divide the
	// remaining budget internally).
	workers int
	// half returns the per-side global window size for a radius.
	half func(radius int) int
}

func (g *gather) total() int64 {
	var n int64
	for _, k := range g.kids {
		if k != nil {
			n += k.count()
		}
	}
	return n
}

// approxSq is the scatter-gather approximate search (squared space): every
// partition contributes its window candidates, internal/window merges them
// into exactly the window a single sorted sequence of the union would
// produce, and one global evaluation visits them best-lower-bound-first,
// dispatching fetches back to the owning partition.
func (g *gather) approxSq(ctx context.Context, q series.Series, radius int) (core.Result, error) {
	res := core.Result{Pos: -1, Dist: math.Inf(1)}
	if g.total() == 0 {
		return res, core.ErrEmptyIndex
	}
	cc := newChildCancel(ctx)
	defer cc.cancel()
	aws := make([]core.ApproxWindow, len(g.kids))
	ferr := shard.FanOutCtx(ctx, shard.Resolve(g.workers, len(g.kids)), len(g.kids),
		func(i int, cancelled func() bool) error {
			if cancelled() || g.kids[i] == nil {
				return nil
			}
			aw, err := g.kids[i].approxWindow(cc.cctx, q, radius)
			if err != nil {
				return cc.fail(err)
			}
			aws[i] = aw
			return nil
		})
	if err := cc.resolve(ctx, ferr); err != nil {
		// On a ctx error abandoned children may still be writing aws; it is
		// never read on this path.
		return res, err
	}
	var below, above []window.Cand
	fetches := make([]window.FetchFunc, len(aws))
	for i := range aws {
		fetches[i] = aws[i].Fetch
		for _, c := range aws[i].Below {
			c.Src = i
			below = append(below, c)
		}
		for _, c := range aws[i].Above {
			c.Src = i
			above = append(above, c)
		}
		res.VisitedLeaves += aws[i].Leaves
	}
	cands := window.Merge(below, above, g.half(radius))
	pos, sq, visited, err := window.Eval(q, cands, core.CtxFetch(ctx, func(c window.Cand, dst series.Series) error {
		return fetches[c.Src](c, dst)
	}))
	res.Pos, res.Dist, res.VisitedRecords = pos, sq, visited
	return res, err
}

// exactSq is the scatter-gather exact search (squared space): the GLOBAL
// approximate answer seeds every partition's verification (each child
// would otherwise seed from a different local approximation and tie-break
// differently), the shared atomic bound lets partitions prune each other,
// and the per-partition results merge under the total (distance, position)
// order — the same order a single index's sharded scan reduces under.
func (g *gather) exactSq(ctx context.Context, q series.Series, radius int) (core.Result, error) {
	res, err := g.approxSq(ctx, q, radius)
	if err != nil {
		return res, err
	}
	var bound shard.BSF
	bound.Init(res.Dist)
	outs := make([]core.Result, len(g.kids))
	for i := range outs {
		outs[i] = core.Result{Pos: -1, Dist: math.Inf(1)}
	}
	cc := newChildCancel(ctx)
	defer cc.cancel()
	ferr := shard.FanOutCtx(ctx, shard.Resolve(g.workers, len(g.kids)), len(g.kids),
		func(i int, cancelled func() bool) error {
			if cancelled() || g.kids[i] == nil {
				return nil
			}
			r, err := g.kids[i].exactVerify(cc.cctx, q, res.Pos, res.Dist, &bound)
			if err != nil {
				return cc.fail(err)
			}
			outs[i] = r
			return nil
		})
	if err := cc.resolve(ctx, ferr); err != nil {
		// On a ctx error abandoned children may still be writing outs; it is
		// never read on this path.
		return res, err
	}
	for _, r := range outs {
		res.VisitedRecords += r.VisitedRecords
		res.VisitedLeaves += r.VisitedLeaves
		if r.Pos >= 0 && (r.Dist < res.Dist || (r.Dist == res.Dist && r.Pos < res.Pos)) {
			res.Pos, res.Dist = r.Pos, r.Dist
		}
	}
	return res, nil
}

// finish materializes the Euclidean distance — the single square root of a
// partitioned query.
func finish(r core.Result) core.Result {
	r.Dist = math.Sqrt(r.Dist)
	return r
}
