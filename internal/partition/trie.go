package partition

import (
	"context"
	"fmt"
	"sync"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
)

// Trie is an N-way partitioned Coconut-Trie: immutable after the build,
// like its children.
type Trie struct {
	kids     []*core.TrieIndex
	degraded []string
	g        gather

	mu     sync.Mutex
	closed bool
}

// BuildTrie builds an N-way partitioned Coconut-Trie (same pipeline as
// BuildTree: scatter by key range, parallel child builds, parent manifest
// last).
func BuildTrie(opt core.Options, parts int) (*Trie, error) {
	if parts < 2 {
		return nil, fmt.Errorf("partition: need at least 2 partitions, got %d", parts)
	}
	bounds, err := selectBoundaries(opt.FS, opt.RawName, opt.S, parts)
	if err != nil {
		return nil, err
	}
	if opt.Checksums {
		sums, serr := attachRawSums(opt.FS, opt.RawName, series.EncodedSize(opt.S.Params().SeriesLen), true)
		if serr != nil {
			return nil, serr
		}
		opt.RawSums = sums
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	src, err := core.SummaryRecordReader(opt.S, raw, opt.Materialized, opt.Workers)
	if err != nil {
		raw.Close()
		return nil, err
	}
	names := make([]string, parts)
	children := make([]string, parts)
	for i := range names {
		names[i] = scatterName(opt.Name, i)
		children[i] = childName(opt.Name, i)
	}
	total, err := scatter(opt.FS, src, treeRecordSize(opt), bounds, names)
	src.Close()
	raw.Close()
	if err != nil {
		removeScatter(opt.FS, opt.Name, parts)
		return nil, err
	}
	kids := make([]*core.TrieIndex, parts)
	buildPar := shard.Resolve(opt.Workers, parts)
	err = shard.FanOut(buildPar, parts, func(i int, cancelled func() bool) error {
		if cancelled() {
			return nil
		}
		ix, err := core.BuildTrie(treeChildOptions(opt, i, parts, buildPar))
		if err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
		kids[i] = ix
		return nil
	})
	removeScatter(opt.FS, opt.Name, parts)
	if err == nil {
		err = commitParent(opt.FS, opt.Name, manifest.VariantTrie, opt.S,
			opt.Materialized, opt.LeafCap, opt.RawName, total, opt.Checksums, bounds, children)
	}
	if err != nil {
		for _, k := range kids {
			if k != nil {
				k.Close()
			}
		}
		return nil, err
	}
	return newTrie(opt, kids, nil), nil
}

// OpenTrie reopens a partitioned Coconut-Trie from its parent manifest.
// parts == 0 adopts the stored partition count; a non-zero mismatch fails
// with manifest.ErrConfigMismatch. With allowDegraded, corrupt or missing
// children are quarantined; otherwise never returns a partial handle.
func OpenTrie(opt core.Options, parts int, allowDegraded bool) (*Trie, error) {
	m, err := loadParent(opt.FS, opt.Name, manifest.VariantTrie, parts,
		opt.S.Params(), opt.Materialized, opt.RawName)
	if err != nil {
		return nil, err
	}
	opt.Checksums = m.Checksums
	if opt.Checksums {
		sums, serr := attachRawSums(opt.FS, opt.RawName, series.EncodedSize(opt.S.Params().SeriesLen), false)
		if serr != nil {
			return nil, serr
		}
		// The trie is immutable, so nothing later flushes the sidecar:
		// persist any reconciliation now.
		if err := sums.Flush(); err != nil {
			return nil, err
		}
		opt.RawSums = sums
	}
	n := m.Part.Partitions
	kids := make([]*core.TrieIndex, n)
	closeKids := func() {
		for _, k := range kids {
			if k != nil {
				k.Close()
			}
		}
	}
	var degraded []string
	for i, cname := range m.Part.Children {
		co := opt
		co.Name = cname
		co.MemBudgetBytes = divideBudget(opt.MemBudgetBytes, n, 1<<20)
		co.Workers = shard.PerGroup(opt.Workers, n)
		co.QueryWorkers = shard.PerGroup(opt.QueryWorkers, n)
		ix, err := core.OpenTrie(co)
		if err != nil {
			if quarantineChild(allowDegraded, err) {
				degraded = append(degraded, cname)
				continue
			}
			closeKids()
			return nil, fmt.Errorf("partition: opening child %q: %w", cname, err)
		}
		kids[i] = ix
	}
	return newTrie(opt, kids, degraded), nil
}

func newTrie(opt core.Options, kids []*core.TrieIndex, degraded []string) *Trie {
	t := &Trie{kids: kids, degraded: degraded}
	sks := make([]searcher, len(kids))
	for i, k := range kids {
		if k != nil {
			sks[i] = trieChild{k}
		}
	}
	aw := opt.ApproxWindow
	if aw <= 0 {
		aw = 32
	}
	t.g = gather{
		kids:    sks,
		workers: opt.QueryWorkers,
		half:    func(radius int) int { return aw * (radius + 1) / 2 },
	}
	return t
}

type trieChild struct{ ix *core.TrieIndex }

func (c trieChild) count() int64 { return c.ix.Count() }
func (c trieChild) approxWindow(ctx context.Context, q series.Series, radius int) (core.ApproxWindow, error) {
	return c.ix.ApproxWindowCandsCtx(ctx, q, radius)
}
func (c trieChild) exactVerify(ctx context.Context, q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (core.Result, error) {
	return c.ix.ExactVerifyCtx(ctx, q, seedPos, seedSq, bound)
}

// ExactSearch returns the exact nearest neighbor of q via scatter-gather
// SIMS, identical to a single-partition index's answer.
func (t *Trie) ExactSearch(q series.Series, radius int) (core.Result, error) {
	return t.ExactSearchCtx(context.Background(), q, radius)
}

// ExactSearchCtx is ExactSearch with cancellation: a parent cancel cancels
// every partition's verification, the first child error cancels its
// siblings, and a done ctx returns ctx.Err() — never a partial answer.
func (t *Trie) ExactSearchCtx(ctx context.Context, q series.Series, radius int) (core.Result, error) {
	r, err := t.g.exactSq(ctx, q, radius)
	return finish(r), err
}

// ApproxSearch returns the approximate nearest neighbor from the merged
// cross-partition window.
func (t *Trie) ApproxSearch(q series.Series, radius int) (core.Result, error) {
	return t.ApproxSearchCtx(context.Background(), q, radius)
}

// ApproxSearchCtx is ApproxSearch with cancellation (see ExactSearchCtx).
func (t *Trie) ApproxSearchCtx(ctx context.Context, q series.Series, radius int) (core.Result, error) {
	r, err := t.g.approxSq(ctx, q, radius)
	return finish(r), err
}

// Partitions returns the partition count.
func (t *Trie) Partitions() int { return len(t.kids) }

// Count returns the number of indexed series across all partitions.
func (t *Trie) Count() int64 { return t.g.total() }

// NumLeaves returns the total leaf count across partitions.
func (t *Trie) NumLeaves() int {
	n := 0
	for _, k := range t.kids {
		if k != nil {
			n += k.NumLeaves()
		}
	}
	return n
}

// AvgLeafFill returns the leaf-weighted mean occupancy across partitions.
func (t *Trie) AvgLeafFill() float64 {
	var sum float64
	var leaves int
	for _, k := range t.kids {
		if k == nil {
			continue
		}
		n := k.NumLeaves()
		sum += k.AvgLeafFill() * float64(n)
		leaves += n
	}
	if leaves == 0 {
		return 0
	}
	return sum / float64(leaves)
}

// SizeBytes returns the total on-device size across partitions.
func (t *Trie) SizeBytes() int64 {
	var n int64
	for _, k := range t.kids {
		if k != nil {
			n += k.SizeBytes()
		}
	}
	return n
}

// Degraded reports whether any partition was quarantined at open.
func (t *Trie) Degraded() bool { return len(t.degraded) > 0 }

// QuarantinedChildren returns the names of quarantined partitions.
func (t *Trie) QuarantinedChildren() []string { return append([]string(nil), t.degraded...) }

// Close closes every partition. It is idempotent and safe to call
// concurrently with cancelled queries.
func (t *Trie) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	var first error
	for _, k := range t.kids {
		if k == nil {
			continue
		}
		if err := k.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
