package partition

// Crash conformance for the partitioned write path: a partitioned
// Coconut-LSM keeps one WAL per partition, but the durability contract is
// the same as the single index's — after a crash, every acknowledged
// append survives replay and the recovered index answers queries exactly
// as it did before the crash, and (for exact search) exactly as an
// unpartitioned index over the same stream does.

import (
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

const ptLen = 64

func ptSummarizer(t *testing.T) *summary.Summarizer {
	t.Helper()
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: ptLen, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// lsmLike is the surface the single index and the partitioned one share.
type lsmLike interface {
	Append(batch []series.Series) error
	Flush() error
	ExactSearch(q series.Series) (lsm.Result, error)
	ApproxSearch(q series.Series) (lsm.Result, error)
	Count() int64
	Close() error
}

func TestPartitionedWALCrashConformance(t *testing.T) {
	const base = 256
	const appended = 96
	gen := dataset.NewRandomWalk()
	batches := dataset.Generate(dataset.NewSeismic(), appended, ptLen, 77)
	queries := dataset.Queries(gen, 6, ptLen, 5)

	type answer struct {
		pos  int64
		dist float64
	}
	collect := func(ix lsmLike) []answer {
		t.Helper()
		out := make([]answer, 0, 2*len(queries))
		for _, q := range queries {
			e, err := ix.ExactSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			a, err := ix.ApproxSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, answer{e.Pos, e.Dist}, answer{a.Pos, a.Dist})
		}
		return out
	}

	// run builds a parts-way layout (1 = the unpartitioned lsm.Index),
	// appends the stream in acknowledged batches with a mid-stream flush
	// (so replay has both a durable flush cursor to skip below and a
	// WAL-only suffix to reconstruct), crashes without closing, and
	// reopens from the durable image.
	run := func(parts int) (pre, post []answer) {
		inner := storage.NewMemFS()
		if _, err := dataset.WriteFile(inner, "raw", gen, base, ptLen, 42); err != nil {
			t.Fatal(err)
		}
		ffs := storage.NewFaultFS(inner)
		opt := lsm.Options{
			FS: ffs, Name: "x", S: ptSummarizer(t), RawName: "raw",
			MemBudgetBytes: 1 << 20, Fanout: 2,
		}
		var ix lsmLike
		var err error
		if parts == 1 {
			ix, err = lsm.Build(opt)
		} else {
			ix, err = BuildLSM(opt, parts)
		}
		if err != nil {
			t.Fatalf("parts=%d: build: %v", parts, err)
		}
		for lo := 0; lo < len(batches); lo += 8 {
			if err := ix.Append(batches[lo : lo+8]); err != nil {
				t.Fatalf("parts=%d: append: %v", parts, err)
			}
			if lo == 48 {
				if err := ix.Flush(); err != nil {
					t.Fatalf("parts=%d: flush: %v", parts, err)
				}
			}
		}
		if got := ix.Count(); got != base+appended {
			t.Fatalf("parts=%d: count %d before crash, want %d", parts, got, base+appended)
		}
		pre = collect(ix)
		ffs.Crash()
		ix.Close() // fails post-crash; the crash is the point

		rec := ffs.Recover(0)
		opt.FS = rec
		var re lsmLike
		if parts == 1 {
			re, err = lsm.Open(opt)
		} else {
			re, err = OpenLSM(opt, 0)
		}
		if err != nil {
			t.Fatalf("parts=%d: reopen after crash: %v", parts, err)
		}
		if got := re.Count(); got != base+appended {
			t.Fatalf("parts=%d: recovered %d series, %d were acknowledged", parts, got, base+appended)
		}
		post = collect(re)
		// The recovered index is live: another acknowledged batch lands.
		if err := re.Append(batches[:1]); err != nil {
			t.Fatalf("parts=%d: append on recovered index: %v", parts, err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("parts=%d: close recovered index: %v", parts, err)
		}
		return pre, post
	}

	singlePre, singlePost := run(1)
	partPre, partPost := run(3)

	for i := range singlePre {
		kind, qi := "exact", i/2
		if i%2 == 1 {
			kind = "approx"
		}
		// Crash + replay must not move any answer in either layout.
		if singlePost[i] != singlePre[i] {
			t.Errorf("1 partition, %s query %d: answer moved across crash: %+v -> %+v",
				kind, qi, singlePre[i], singlePost[i])
		}
		if partPost[i] != partPre[i] {
			t.Errorf("3 partitions, %s query %d: answer moved across crash: %+v -> %+v",
				kind, qi, partPre[i], partPost[i])
		}
	}
	// And exact answers agree across layouts: partitioning is invisible.
	for qi := range queries {
		if singlePost[2*qi] != partPost[2*qi] {
			t.Errorf("exact query %d: 1 vs 3 partitions disagree after crash: %+v vs %+v",
				qi, singlePost[2*qi], partPost[2*qi])
		}
	}
}
