// Package isax implements the prefix-split data series index family the
// paper compares against (the "state of the art", §2-3):
//
//   - iSAX 2.0: one pass over the raw file, top-down inserts with
//     first-buffer-layer (FBL) buffering, leaves store the raw series
//     (materialized). Splits re-read and re-write leaves — the O(N) random
//     I/O pattern of Figure 3.
//   - ADSFull: two passes — first a summary-only index, then the raw series
//     are routed into the leaves (materialized), again through buffers.
//   - ADS+: summary-only construction (non-materialized); leaves hold
//     (word, offset) entries and start large, being split adaptively down
//     to the query-time leaf size the first time a query visits them.
//
// All three share the trie machinery of internal/trie and expose the same
// query interface: approximate search (descend to the most promising leaf)
// and two exact algorithms — the classic best-first tree search and SIMS
// (skip-sequential scan of in-memory summaries, the algorithm ADS uses).
package isax

import (
	"errors"
	"fmt"
	"io"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
	"github.com/coconut-db/coconut/internal/trie"
)

// Mode selects the family member.
type Mode int

// Family members.
const (
	// ISAX2 is the materialized, one-pass, top-down index (iSAX 2.0).
	ISAX2 Mode = iota
	// ADSFull is the materialized, two-pass adaptive index.
	ADSFull
	// ADSPlus is the non-materialized adaptive index.
	ADSPlus
)

func (m Mode) String() string {
	switch m {
	case ISAX2:
		return "iSAX2.0"
	case ADSFull:
		return "ADSFull"
	case ADSPlus:
		return "ADS+"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Materialized reports whether leaves store raw series.
func (m Mode) Materialized() bool { return m != ADSPlus }

// Options configures a build.
type Options struct {
	// FS hosts the index files; the raw dataset file must live on it too.
	FS storage.FS
	// Name is the base name for index files.
	Name string
	// S is the summarization configuration (shared with queries).
	S *summary.Summarizer
	// RawName is the dataset file in raw binary format.
	RawName string
	// Mode picks the family member.
	Mode Mode
	// LeafCap is the query-time leaf size (paper: 2000).
	LeafCap int
	// BuildLeafCap is ADS+'s larger construction-time leaf size
	// (default 8x LeafCap); ignored by the other modes.
	BuildLeafCap int
	// MemBudgetBytes bounds the FBL buffers — the paper's M.
	MemBudgetBytes int64
}

func (o *Options) validate() error {
	switch {
	case o.FS == nil:
		return errors.New("isax: nil FS")
	case o.Name == "":
		return errors.New("isax: empty name")
	case o.S == nil:
		return errors.New("isax: nil summarizer")
	case o.RawName == "":
		return errors.New("isax: empty raw file name")
	case o.LeafCap < 2:
		return errors.New("isax: leaf capacity must be at least 2")
	}
	if o.BuildLeafCap < o.LeafCap {
		o.BuildLeafCap = o.LeafCap * 8
	}
	if o.MemBudgetBytes <= 0 {
		o.MemBudgetBytes = 64 << 20
	}
	return nil
}

// Result is a search answer.
type Result struct {
	// Pos is the ordinal of the answer series in the raw file (-1 if none).
	Pos int64
	// Dist is the Euclidean distance to the query.
	Dist float64
	// VisitedRecords counts raw series whose true distance was computed —
	// the quantity of Figure 9f.
	VisitedRecords int64
	// VisitedLeaves counts leaf pages read.
	VisitedLeaves int64
}

// Index is a built prefix-split index.
type Index struct {
	opt      Options
	tr       *trie.Trie
	leafFile storage.File
	rawFile  storage.File
	count    int64
	nextPage int64
	// deadPages counts leaf pages orphaned by splits — the space
	// amplification of top-down construction.
	deadPages int64
	buffered  int64 // bytes in FBL buffers
	// sums is the in-memory summary array in raw-file order, used by SIMS.
	sums []summary.SAX
	// leafCap in effect during construction (ADS+ uses BuildLeafCap).
	buildCap int
}

// recordSize returns the on-disk leaf record size.
func (ix *Index) recordSize() int {
	p := ix.opt.S.Params()
	n := p.Segments + 8
	if ix.opt.Mode.Materialized() {
		n += series.EncodedSize(p.SeriesLen)
	}
	return n
}

func (ix *Index) pageSize() int64 {
	return int64(4 + ix.recordSize()*ix.opt.LeafCap)
}

// bufferedRecordBytes is the FBL cost of one buffered record.
func (ix *Index) bufferedRecordBytes() int64 {
	p := ix.opt.S.Params()
	n := int64(p.Segments + 8)
	if ix.opt.Mode == ISAX2 {
		// iSAX 2.0 buffers the raw series alongside the summarization.
		n += int64(series.EncodedSize(p.SeriesLen))
	}
	return n
}

// Build constructs the index over the raw dataset file.
func Build(opt Options) (*Index, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	tr, err := trie.New(opt.S, opt.LeafCap)
	if err != nil {
		return nil, err
	}
	lf, err := opt.FS.Create(opt.Name + ".leaves")
	if err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		lf.Close()
		return nil, err
	}
	ix := &Index{opt: opt, tr: tr, leafFile: lf, rawFile: raw, buildCap: opt.LeafCap}
	if opt.Mode == ADSPlus {
		ix.buildCap = opt.BuildLeafCap
	}

	// Pass 1: stream the raw file, summarize, and insert top-down.
	//
	//   - iSAX 2.0 buffers (word, pos, raw) in the FBL and flushes to
	//     materialized leaves with read-modify-write I/O.
	//   - ADS+ buffers (word, pos) and flushes to non-materialized leaves.
	//   - ADSFull builds the summary structure purely in memory (summaries
	//     are ~1% of the data, the standing assumption of the family) and
	//     defers all leaf I/O to the materialization pass.
	p := opt.S.Params()
	r := series.NewReader(storage.NewSequentialReader(raw, 0, -1, 0), p.SeriesLen)
	buf := make(series.Series, p.SeriesLen)
	var pos int64
	for {
		if err := r.NextInto(buf); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			lf.Close()
			raw.Close()
			return nil, err
		}
		word, err := opt.S.SAXOf(buf)
		if err != nil {
			lf.Close()
			raw.Close()
			return nil, err
		}
		rec := trie.Record{Word: word, Pos: pos}
		switch opt.Mode {
		case ISAX2:
			rec.Raw = series.AppendEncode(nil, buf)
			err = ix.bufferInsert(rec)
		case ADSPlus:
			err = ix.bufferInsert(rec)
		case ADSFull:
			ix.memoryInsert(rec)
			ix.count++
		}
		if err != nil {
			lf.Close()
			raw.Close()
			return nil, err
		}
		ix.sums = append(ix.sums, word)
		pos++
	}
	if err := ix.FlushBuffers(); err != nil {
		lf.Close()
		raw.Close()
		return nil, err
	}

	// Pass 2 (ADSFull): route raw series into the leaves, again buffered.
	if opt.Mode == ADSFull {
		for _, l := range ix.tr.Leaves() {
			l.Buf = nil // structure built; records arrive in pass 2
		}
		if err := ix.materializePass(); err != nil {
			lf.Close()
			raw.Close()
			return nil, err
		}
	}
	return ix, nil
}

// memoryInsert places a summary record into the in-memory trie, splitting
// leaves that exceed the leaf capacity (ADSFull pass 1 — no leaf I/O).
func (ix *Index) memoryInsert(rec trie.Record) {
	cardBits := ix.opt.S.Params().CardBits
	n := ix.tr.RootChild(rec.Word, true)
	for !n.Leaf {
		n.Count++
		for _, c := range n.Children {
			if c.Matches(rec.Word, cardBits) {
				n = c
				break
			}
		}
	}
	n.Buf = append(n.Buf, rec)
	n.Count++
	for len(n.Buf) > ix.buildCap {
		seg := trie.ChooseSplitSegment(n, n.Buf, cardBits)
		if seg < 0 {
			return
		}
		zero, one := ix.tr.SplitLeaf(n, seg)
		if zero.Matches(rec.Word, cardBits) {
			n = zero
		} else {
			n = one
		}
	}
}

// bufferInsert adds one record to the FBL, flushing when the budget fills.
func (ix *Index) bufferInsert(rec trie.Record) error {
	n := ix.tr.RootChild(rec.Word, true)
	n.Buf = append(n.Buf, rec)
	ix.count++
	ix.buffered += ix.bufferedRecordBytes()
	if ix.buffered >= ix.opt.MemBudgetBytes {
		return ix.FlushBuffers()
	}
	return nil
}

// FlushBuffers drains every FBL buffer into the on-disk leaves — the
// "buffers are full and have to be processed" moment of Figure 3.
func (ix *Index) FlushBuffers() error {
	for _, n := range ix.tr.Root {
		if len(n.Buf) == 0 {
			continue
		}
		recs := n.Buf
		n.Buf = nil
		if err := ix.insertRecords(n, recs); err != nil {
			return err
		}
	}
	ix.buffered = 0
	return nil
}

// insertRecords pushes records down the subtree rooted at n, splitting
// leaves that overflow. Every leaf it touches costs one random read (the
// existing page) and one random write — exactly the top-down insertion cost
// analyzed in §3.1.
func (ix *Index) insertRecords(n *trie.Node, recs []trie.Record) error {
	if len(recs) == 0 {
		return nil
	}
	cardBits := ix.opt.S.Params().CardBits
	if !n.Leaf {
		n.Count += int64(len(recs))
		var perChild [][]trie.Record
		perChild = make([][]trie.Record, len(n.Children))
		for _, r := range recs {
			placed := false
			for ci, c := range n.Children {
				if c.Matches(r.Word, cardBits) {
					perChild[ci] = append(perChild[ci], r)
					placed = true
					break
				}
			}
			if !placed {
				return fmt.Errorf("isax: record matches no child of internal node")
			}
		}
		for ci, c := range n.Children {
			if err := ix.insertRecords(c, perChild[ci]); err != nil {
				return err
			}
		}
		return nil
	}

	// Leaf: merge existing on-disk records with the incoming batch.
	existing, err := ix.readLeafRecords(n)
	if err != nil {
		return err
	}
	all := append(existing, recs...)
	if len(all) <= ix.buildCap {
		n.Count = int64(len(all))
		return ix.writeLeafRecords(n, all)
	}

	// Overflow: split on the most dividing segment; if the node is fully
	// refined, fall back to an oversized leaf (rare at cardinality 256).
	seg := trie.ChooseSplitSegment(n, all, cardBits)
	if seg < 0 {
		n.Count = int64(len(all))
		return ix.writeLeafRecords(n, all)
	}
	if n.PageNum > 0 {
		ix.deadPages += n.PageNum
		n.PageStart, n.PageNum = 0, 0
	}
	n.Buf = all
	n.Count = int64(len(all))
	zero, one := ix.tr.SplitLeaf(n, seg)
	zrecs, orecs := zero.Buf, one.Buf
	zero.Buf, one.Buf = nil, nil
	zero.Count, one.Count = 0, 0
	n.Count = 0 // children counts restored by the recursive inserts
	if err := ix.insertRecords(n, zrecs); err != nil {
		return err
	}
	return ix.insertRecords(n, orecs)
}

// readLeafRecords loads a leaf's on-disk records (a random read).
func (ix *Index) readLeafRecords(n *trie.Node) ([]trie.Record, error) {
	if n.PageNum == 0 {
		return nil, nil
	}
	buf := make([]byte, n.PageNum*ix.pageSize())
	nr, err := ix.leafFile.ReadAt(buf, n.PageStart*ix.pageSize())
	if nr != len(buf) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("isax: read leaf pages [%d,%d): %w", n.PageStart, n.PageStart+n.PageNum, err)
	}
	cnt := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
	recs := make([]trie.Record, 0, cnt)
	p := ix.opt.S.Params()
	off := 4
	pageBytes := int(ix.pageSize())
	capPerPage := ix.opt.LeafCap
	inPage := 0
	page := 0
	for i := 0; i < cnt; i++ {
		if inPage == capPerPage {
			page++
			off = page*pageBytes + 4
			inPage = 0
		}
		var r trie.Record
		// Word and Raw alias the freshly-read page buffer; callers either
		// consume them before the next leaf read or re-encode them into a
		// new page, so no copy is needed.
		r.Word = summary.SAX(buf[off : off+p.Segments])
		off += p.Segments
		r.Pos = int64(leUint64(buf[off:]))
		off += 8
		if ix.opt.Mode.Materialized() {
			r.Raw = buf[off : off+series.EncodedSize(p.SeriesLen)]
			off += series.EncodedSize(p.SeriesLen)
		}
		recs = append(recs, r)
		inPage++
	}
	return recs, nil
}

// writeLeafRecords stores a leaf's records, allocating fresh pages at the
// end of the leaf file when the leaf grows (or is new). This is the random
// write of top-down insertion; the old location (if any) becomes garbage.
func (ix *Index) writeLeafRecords(n *trie.Node, recs []trie.Record) error {
	pagesNeeded := int64((len(recs) + ix.opt.LeafCap - 1) / ix.opt.LeafCap)
	if pagesNeeded == 0 {
		pagesNeeded = 1
	}
	if n.PageNum != pagesNeeded {
		if n.PageNum > 0 {
			ix.deadPages += n.PageNum
		}
		n.PageStart = ix.nextPage
		n.PageNum = pagesNeeded
		ix.nextPage += pagesNeeded
	}
	p := ix.opt.S.Params()
	buf := make([]byte, pagesNeeded*ix.pageSize())
	putU32(buf, uint32(len(recs)))
	off := 4
	pageBytes := int(ix.pageSize())
	inPage := 0
	page := 0
	for _, r := range recs {
		if inPage == ix.opt.LeafCap {
			page++
			off = page*pageBytes + 4
			inPage = 0
		}
		copy(buf[off:], r.Word)
		off += p.Segments
		putU64(buf[off:], uint64(r.Pos))
		off += 8
		if ix.opt.Mode.Materialized() {
			raw := r.Raw
			if raw == nil {
				// ADSFull pass 1 leaves raw empty; zero-fill until pass 2.
				raw = make([]byte, series.EncodedSize(p.SeriesLen))
			}
			copy(buf[off:], raw)
			off += series.EncodedSize(p.SeriesLen)
		}
		inPage++
	}
	_, err := ix.leafFile.WriteAt(buf, n.PageStart*ix.pageSize())
	return err
}

// materializePass is ADSFull's second pass: scan the raw file sequentially
// and route every series' raw bytes into its leaf, through the FBL.
func (ix *Index) materializePass() error {
	p := ix.opt.S.Params()
	r := series.NewReader(storage.NewSequentialReader(ix.rawFile, 0, -1, 0), p.SeriesLen)
	buf := make(series.Series, p.SeriesLen)
	var pos int64
	var pending int64
	for {
		if err := r.NextInto(buf); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		word := ix.sums[pos]
		n := ix.tr.RootChild(word, false)
		if n == nil {
			return fmt.Errorf("isax: series %d lost its root child", pos)
		}
		n.Buf = append(n.Buf, trie.Record{Word: word, Pos: pos, Raw: series.AppendEncode(nil, buf)})
		pending += ix.bufferedRecordBytes() + int64(series.EncodedSize(p.SeriesLen))
		pos++
		if pending >= ix.opt.MemBudgetBytes {
			if err := ix.flushMaterialize(); err != nil {
				return err
			}
			pending = 0
		}
	}
	return ix.flushMaterialize()
}

// flushMaterialize merges buffered raw records into existing leaves
// (read-modify-write per touched leaf — random I/O).
func (ix *Index) flushMaterialize() error {
	cardBits := ix.opt.S.Params().CardBits
	for _, root := range ix.tr.Root {
		if len(root.Buf) == 0 {
			continue
		}
		recs := root.Buf
		root.Buf = nil
		// Group by leaf.
		groups := make(map[*trie.Node][]trie.Record)
		for _, r := range recs {
			n := root
			for !n.Leaf {
				var next *trie.Node
				for _, c := range n.Children {
					if c.Matches(r.Word, cardBits) {
						next = c
						break
					}
				}
				if next == nil {
					return errors.New("isax: materialize lost a record")
				}
				n = next
			}
			groups[n] = append(groups[n], r)
		}
		for leaf, g := range groups {
			// Read-modify-write: records accumulated by earlier flushes are
			// re-read and the leaf is rewritten — the random-I/O pattern
			// that makes the ADS family memory-sensitive.
			existing, err := ix.readLeafRecords(leaf)
			if err != nil {
				return err
			}
			merged := append(existing, g...)
			if err := ix.writeLeafRecords(leaf, merged); err != nil {
				return err
			}
		}
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Count returns the number of indexed series.
func (ix *Index) Count() int64 { return ix.count }

// NumLeaves returns the number of trie leaves.
func (ix *Index) NumLeaves() int { return ix.tr.NumLeaves() }

// AvgLeafFill returns mean leaf occupancy relative to the query-time leaf
// capacity.
func (ix *Index) AvgLeafFill() float64 {
	leaves := ix.tr.Leaves()
	if len(leaves) == 0 {
		return 0
	}
	var total int64
	for _, l := range leaves {
		total += l.Count
	}
	return float64(total) / float64(int64(len(leaves))*int64(ix.opt.LeafCap))
}

// SizeBytes returns the index footprint on the device (leaf file including
// dead pages left behind by splits).
func (ix *Index) SizeBytes() int64 {
	size, err := ix.leafFile.Size()
	if err != nil {
		return 0
	}
	return size
}

// DeadPages reports the pages orphaned by leaf splits.
func (ix *Index) DeadPages() int64 { return ix.deadPages }

// Trie exposes the underlying trie (read-only use).
func (ix *Index) Trie() *trie.Trie { return ix.tr }

// Close releases file handles.
func (ix *Index) Close() error {
	err1 := ix.leafFile.Close()
	err2 := ix.rawFile.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// readRaw fetches the raw series at ordinal pos from the dataset file.
func (ix *Index) readRaw(pos int64, dst series.Series) error {
	p := ix.opt.S.Params()
	sz := series.EncodedSize(p.SeriesLen)
	buf := make([]byte, sz)
	if n, err := ix.rawFile.ReadAt(buf, pos*int64(sz)); n != sz {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("isax: raw series %d: %w", pos, err)
	}
	series.DecodeInto(buf, dst)
	return nil
}

// recordSquaredDistance computes the true SQUARED distance from q to
// record r, fetching the raw series from the leaf (materialized) or the
// raw file. The query paths compare in squared space throughout and take
// the square root once, on the reported answer.
func (ix *Index) recordSquaredDistance(q series.Series, r trie.Record, scratch series.Series) (float64, error) {
	if r.Raw != nil {
		series.DecodeInto(r.Raw, scratch)
	} else if err := ix.readRaw(r.Pos, scratch); err != nil {
		return 0, err
	}
	return series.SquaredED(q, scratch)
}

var errNoData = errors.New("isax: index is empty")
