package isax

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/summary"
	"github.com/coconut-db/coconut/internal/trie"
)

// ApproxSearch visits the single most promising leaf and returns the best
// answer inside it (§4.2 "Queries"). For ADS+ this is also where adaptive
// leaf splitting happens: a construction-time leaf bigger than the
// query-time leaf size is refined (and its pieces rewritten) before it is
// examined — queries pay part of the construction cost.
func (ix *Index) ApproxSearch(q series.Series) (Result, error) {
	res, err := ix.approxSearch(q)
	res.Dist = math.Sqrt(res.Dist)
	return res, err
}

// approxSearch is the internal form of ApproxSearch: res.Dist holds the
// SQUARED best distance. Like the Coconut query paths, the whole family
// prunes in squared space and materializes the Euclidean distance once at
// the public boundary.
func (ix *Index) approxSearch(q series.Series) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if ix.count == 0 {
		return res, errNoData
	}
	word, err := ix.opt.S.SAXOf(q)
	if err != nil {
		return res, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	leaf := ix.tr.Descend(word)
	if leaf == nil || !leaf.Leaf {
		leaf = ix.tr.BestLeaf(qPAA)
	}
	if leaf == nil {
		return res, errNoData
	}
	if ix.opt.Mode == ADSPlus {
		leaf, err = ix.adaptiveSplit(leaf, word, qPAA)
		if err != nil {
			return res, err
		}
	}
	if err := ix.scanLeaf(q, leaf, &res); err != nil {
		return res, err
	}
	return res, nil
}

// scanLeaf computes true squared distances for the leaf's records, updating
// res with the best. For non-materialized leaves, each record's stored SAX
// word prunes hopeless raw-file fetches first (squared bound vs squared
// best-so-far).
func (ix *Index) scanLeaf(q series.Series, leaf *trie.Node, res *Result) error {
	recs, err := ix.readLeafRecords(leaf)
	if err != nil {
		return err
	}
	res.VisitedLeaves++
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return err
	}
	scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
	for _, r := range recs {
		if r.Raw == nil && ix.opt.S.MinDistSqPAAToSAX(qPAA, r.Word) >= res.Dist {
			continue
		}
		sq, err := ix.recordSquaredDistance(q, r, scratch)
		if err != nil {
			return err
		}
		res.VisitedRecords++
		if sq < res.Dist {
			res.Dist = sq
			res.Pos = r.Pos
		}
	}
	return nil
}

// adaptiveSplit refines an oversized ADS+ leaf down to the query-time leaf
// size along the query's path, returning the leaf the query word lands in.
func (ix *Index) adaptiveSplit(leaf *trie.Node, word summary.SAX, qPAA []float64) (*trie.Node, error) {
	cardBits := ix.opt.S.Params().CardBits
	for leaf.Count > int64(ix.opt.LeafCap) {
		recs, err := ix.readLeafRecords(leaf)
		if err != nil {
			return nil, err
		}
		seg := trie.ChooseSplitSegment(leaf, recs, cardBits)
		if seg < 0 {
			return leaf, nil
		}
		if leaf.PageNum > 0 {
			ix.deadPages += leaf.PageNum
			leaf.PageStart, leaf.PageNum = 0, 0
		}
		leaf.Buf = recs
		zero, one := ix.tr.SplitLeaf(leaf, seg)
		zrecs, orecs := zero.Buf, one.Buf
		zero.Buf, one.Buf = nil, nil
		zero.Count, one.Count = int64(len(zrecs)), int64(len(orecs))
		if err := ix.writeLeafRecords(zero, zrecs); err != nil {
			return nil, err
		}
		if err := ix.writeLeafRecords(one, orecs); err != nil {
			return nil, err
		}
		if zero.Matches(word, cardBits) {
			leaf = zero
		} else if one.Matches(word, cardBits) {
			leaf = one
		} else if ix.tr.MinDistSq(qPAA, zero) <= ix.tr.MinDistSq(qPAA, one) {
			leaf = zero
		} else {
			leaf = one
		}
	}
	return leaf, nil
}

// nodeItem is a priority-queue entry for best-first exact search.
type nodeItem struct {
	n    *trie.Node
	dist float64
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ExactSearchTree is the classic best-first exact algorithm (Shieh &
// Keogh): seed a best-so-far with approximate search, then traverse nodes
// in MINDIST order, pruning every subtree whose bound exceeds the bsf. Node
// and record bounds come from one per-query MinDistTable (squared space:
// MINDIST order and pruning are identical, with no sqrt per node or
// record).
func (ix *Index) ExactSearchTree(q series.Series) (Result, error) {
	res, err := ix.exactSearchTree(q)
	res.Dist = math.Sqrt(res.Dist)
	return res, err
}

// exactSearchTree is the internal, squared-space form of ExactSearchTree.
func (ix *Index) exactSearchTree(q series.Series) (Result, error) {
	res, err := ix.approxSearch(q)
	if err != nil {
		return res, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	tbl := ix.opt.S.BuildMinDistTable(qPAA, nil)
	pq := &nodeQueue{}
	for _, n := range ix.tr.Root {
		heap.Push(pq, nodeItem{n, tbl.Prefix(n.Syms, n.Bits)})
	}
	scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.dist >= res.Dist {
			break // everything left is at least this far
		}
		if !it.n.Leaf {
			for _, c := range it.n.Children {
				if d := tbl.Prefix(c.Syms, c.Bits); d < res.Dist {
					heap.Push(pq, nodeItem{c, d})
				}
			}
			continue
		}
		recs, err := ix.readLeafRecords(it.n)
		if err != nil {
			return res, err
		}
		res.VisitedLeaves++
		for _, r := range recs {
			// Record-level lower bound before touching raw data.
			if lb := tbl.Word(r.Word); lb >= res.Dist {
				continue
			}
			sq, err := ix.recordSquaredDistance(q, r, scratch)
			if err != nil {
				return res, err
			}
			res.VisitedRecords++
			if sq < res.Dist {
				res.Dist = sq
				res.Pos = r.Pos
			}
		}
	}
	return res, nil
}

// ExactSearchSIMS is the ADS-style exact algorithm (§4.3, Algorithm 5
// adapted to the prefix-split family): approximate search seeds the bsf,
// squared lower bounds are computed for EVERY series from the in-memory
// summary array (in parallel, through the per-query table), and the raw
// file is scanned skip-sequentially, fetching only unpruned series in file
// order.
func (ix *Index) ExactSearchSIMS(q series.Series) (Result, error) {
	res, err := ix.exactSearchSIMS(q)
	res.Dist = math.Sqrt(res.Dist)
	return res, err
}

// exactSearchSIMS is the internal, squared-space form of ExactSearchSIMS.
func (ix *Index) exactSearchSIMS(q series.Series) (Result, error) {
	res, err := ix.approxSearch(q)
	if err != nil {
		return res, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	tbl := ix.opt.S.BuildMinDistTable(qPAA, nil)
	mindists := ix.parallelMinDists(tbl)
	scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
	for pos := int64(0); pos < int64(len(mindists)); pos++ {
		if mindists[pos] >= res.Dist {
			continue
		}
		if err := ix.readRaw(pos, scratch); err != nil {
			return res, err
		}
		res.VisitedRecords++
		sq, ok := series.SquaredEDEarlyAbandon(q, scratch, res.Dist)
		if !ok {
			continue
		}
		if sq < res.Dist {
			res.Dist = sq
			res.Pos = pos
		}
	}
	return res, nil
}

// parallelMinDists computes the per-series squared lower bounds from the
// in-memory summaries using all cores (the paper's parallelMinDists). The
// table is read-only, so all workers share it.
func (ix *Index) parallelMinDists(tbl *summary.MinDistTable) []float64 {
	out := make([]float64, len(ix.sums))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ix.sums) {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(ix.sums) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ix.sums) {
			hi = len(ix.sums)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = tbl.Word(ix.sums[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Append indexes new series arriving after the initial build (Figure 10a):
// the raw bytes are appended to the dataset file and the summaries are
// inserted top-down through the FBL, exactly like construction.
func (ix *Index) Append(batch []series.Series) error {
	p := ix.opt.S.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	end, err := ix.rawFile.Size()
	if err != nil {
		return err
	}
	if end%sz != 0 {
		return fmt.Errorf("isax: raw file size %d not aligned to series size", end)
	}
	pos := end / sz
	buf := make([]byte, 0, sz)
	for _, s := range batch {
		if len(s) != p.SeriesLen {
			return fmt.Errorf("isax: appended series has length %d, want %d", len(s), p.SeriesLen)
		}
		buf = series.AppendEncode(buf[:0], s)
		if _, err := ix.rawFile.WriteAt(buf, pos*sz); err != nil {
			return err
		}
		word, err := ix.opt.S.SAXOf(s)
		if err != nil {
			return err
		}
		rec := trie.Record{Word: word, Pos: pos}
		if ix.opt.Mode.Materialized() {
			rec.Raw = append([]byte(nil), buf...)
		}
		if err := ix.bufferInsert(rec); err != nil {
			return err
		}
		ix.sums = append(ix.sums, word)
		pos++
	}
	return nil
}
