package isax

import (
	"math"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

const (
	tLen   = 64
	tCount = 600
)

func tSummarizer(t *testing.T) *summary.Summarizer {
	t.Helper()
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildFixture writes a dataset and builds an index in the given mode.
func buildFixture(t *testing.T, mode Mode, budget int64) (*Index, []series.Series, *storage.MemFS) {
	t.Helper()
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	data := dataset.Generate(gen, tCount, tLen, 42)
	ix, err := Build(Options{
		FS:             fs,
		Name:           "ix",
		S:              tSummarizer(t),
		RawName:        "raw",
		Mode:           mode,
		LeafCap:        20,
		MemBudgetBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, data, fs
}

func bruteForce1NN(q series.Series, data []series.Series) (int64, float64) {
	best, bestPos := math.Inf(1), int64(-1)
	for i, d := range data {
		dist, _ := series.ED(q, d)
		if dist < best {
			best, bestPos = dist, int64(i)
		}
	}
	return bestPos, best
}

func TestBuildAllModes(t *testing.T) {
	for _, mode := range []Mode{ISAX2, ADSFull, ADSPlus} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, _, _ := buildFixture(t, mode, 1<<20)
			defer ix.Close()
			if ix.Count() != tCount {
				t.Fatalf("Count = %d, want %d", ix.Count(), tCount)
			}
			if err := ix.Trie().CheckInvariants(8); err != nil {
				t.Fatal(err)
			}
			if ix.NumLeaves() == 0 {
				t.Fatal("no leaves")
			}
			if ix.SizeBytes() == 0 {
				t.Fatal("index file empty")
			}
		})
	}
}

func TestBuildSmallMemoryForcesFlushes(t *testing.T) {
	// A tiny budget forces many FBL flushes; the index must still be
	// complete and correct, just with more random I/O.
	ix, data, fs := buildFixture(t, ISAX2, 4<<10)
	defer ix.Close()
	if ix.Count() != tCount {
		t.Fatalf("Count = %d", ix.Count())
	}
	snap := fs.Stats().Snapshot()
	if snap.RandWrites < 10 {
		t.Fatalf("expected many random writes from constrained flushing, got %+v", snap)
	}
	q := data[0]
	res, err := ix.ExactSearchTree(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("searching for a member should find distance 0, got %v", res.Dist)
	}
}

func TestApproxSearchReturnsRealDistances(t *testing.T) {
	for _, mode := range []Mode{ISAX2, ADSFull, ADSPlus} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, data, _ := buildFixture(t, mode, 1<<20)
			defer ix.Close()
			qs := dataset.Queries(dataset.NewRandomWalk(), 10, tLen, 77)
			for _, q := range qs {
				res, err := ix.ApproxSearch(q)
				if err != nil {
					t.Fatal(err)
				}
				if res.Pos < 0 || res.Pos >= tCount {
					t.Fatalf("approx position %d out of range", res.Pos)
				}
				want, _ := series.ED(q, data[res.Pos])
				if math.Abs(want-res.Dist) > 1e-9 {
					t.Fatalf("approx distance %v != recomputed %v", res.Dist, want)
				}
				if res.VisitedRecords == 0 {
					t.Fatal("approx search should visit records")
				}
			}
		})
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	for _, mode := range []Mode{ISAX2, ADSFull, ADSPlus} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, data, _ := buildFixture(t, mode, 1<<20)
			defer ix.Close()
			qs := dataset.Queries(dataset.NewRandomWalk(), 15, tLen, 99)
			for qi, q := range qs {
				_, want := bruteForce1NN(q, data)
				tr, err := ix.ExactSearchTree(q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(tr.Dist-want) > 1e-9 {
					t.Fatalf("query %d: tree exact %v != brute force %v", qi, tr.Dist, want)
				}
				si, err := ix.ExactSearchSIMS(q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(si.Dist-want) > 1e-9 {
					t.Fatalf("query %d: SIMS %v != brute force %v", qi, si.Dist, want)
				}
			}
		})
	}
}

func TestExactSearchPrunes(t *testing.T) {
	ix, _, _ := buildFixture(t, ISAX2, 1<<20)
	defer ix.Close()
	qs := dataset.Queries(dataset.NewRandomWalk(), 10, tLen, 5)
	var visited int64
	for _, q := range qs {
		res, err := ix.ExactSearchSIMS(q)
		if err != nil {
			t.Fatal(err)
		}
		visited += res.VisitedRecords
	}
	avg := float64(visited) / 10
	if avg >= tCount {
		t.Fatalf("SIMS visited %v records on average — no pruning at all", avg)
	}
}

func TestADSPlusAdaptiveSplitting(t *testing.T) {
	ix, data, _ := buildFixture(t, ADSPlus, 1<<20)
	defer ix.Close()
	before := ix.NumLeaves()
	// ADS+ builds with large leaves; queries split the ones they touch.
	qs := dataset.Queries(dataset.NewRandomWalk(), 30, tLen, 31)
	for _, q := range qs {
		if _, err := ix.ApproxSearch(q); err != nil {
			t.Fatal(err)
		}
	}
	after := ix.NumLeaves()
	if after < before {
		t.Fatalf("leaf count shrank: %d -> %d", before, after)
	}
	if err := ix.Trie().CheckInvariants(8); err != nil {
		t.Fatal(err)
	}
	// Correctness is unaffected by adaptive splits.
	_, want := bruteForce1NN(data[3], data)
	res, err := ix.ExactSearchSIMS(data[3])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist-want) > 1e-9 {
		t.Fatalf("post-split exact search wrong: %v vs %v", res.Dist, want)
	}
}

func TestAppendThenSearch(t *testing.T) {
	for _, mode := range []Mode{ISAX2, ADSPlus} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, _, _ := buildFixture(t, mode, 1<<20)
			defer ix.Close()
			batch := dataset.Generate(dataset.NewSeismic(), 50, tLen, 1234)
			if err := ix.Append(batch); err != nil {
				t.Fatal(err)
			}
			if err := ix.FlushBuffers(); err != nil {
				t.Fatal(err)
			}
			if ix.Count() != tCount+50 {
				t.Fatalf("Count after append = %d", ix.Count())
			}
			// The appended series must now be findable at distance 0.
			res, err := ix.ExactSearchSIMS(batch[7])
			if err != nil {
				t.Fatal(err)
			}
			if res.Dist > 1e-9 {
				t.Fatalf("appended series not found: dist %v", res.Dist)
			}
			if res.Pos < tCount {
				t.Fatalf("appended series found at pre-append position %d", res.Pos)
			}
		})
	}
}

func TestLeafFillIsLow(t *testing.T) {
	// Prefix splitting leaves most leaves nearly empty — the paper's
	// central storage observation (§3.2, leaves ~10% full on average).
	ix, _, _ := buildFixture(t, ISAX2, 1<<20)
	defer ix.Close()
	if fill := ix.AvgLeafFill(); fill > 0.8 {
		t.Fatalf("prefix-split leaf fill suspiciously high: %v", fill)
	}
}

func TestOptionsValidation(t *testing.T) {
	fs := storage.NewMemFS()
	s := tSummarizer(t)
	bad := []Options{
		{},
		{FS: fs},
		{FS: fs, Name: "x"},
		{FS: fs, Name: "x", S: s},
		{FS: fs, Name: "x", S: s, RawName: "raw", LeafCap: 1},
	}
	for i, opt := range bad {
		if _, err := Build(opt); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Missing raw file.
	if _, err := Build(Options{FS: fs, Name: "x", S: s, RawName: "nope", LeafCap: 10}); err == nil {
		t.Error("expected error for missing raw file")
	}
}

func TestEmptyDataset(t *testing.T) {
	fs := storage.NewMemFS()
	if _, err := dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), 0, tLen, 1); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(Options{FS: fs, Name: "ix", S: tSummarizer(t), RawName: "raw", Mode: ISAX2, LeafCap: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Count() != 0 {
		t.Fatalf("Count = %d", ix.Count())
	}
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 2)[0]
	if _, err := ix.ApproxSearch(q); err == nil {
		t.Fatal("expected error searching empty index")
	}
}

func TestMaterializedLeavesServeRawData(t *testing.T) {
	// For materialized indexes the approximate search must not touch the
	// raw file at all — the leaves carry the data.
	ix, _, fs := buildFixture(t, ADSFull, 1<<20)
	defer ix.Close()
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 3)[0]
	before := fs.Stats().Snapshot()
	if _, err := ix.ApproxSearch(q); err != nil {
		t.Fatal(err)
	}
	// Allow the leaf read but no raw-file reads beyond it: the leaf file
	// and raw file are distinct, so check via byte accounting — the bytes
	// read must be a multiple of leaf pages, far below tCount series.
	delta := fs.Stats().Snapshot().Sub(before)
	maxLeafBytes := int64(ix.pageSize()) * int64(ix.NumLeaves())
	if delta.BytesRead > maxLeafBytes {
		t.Fatalf("approx search read %d bytes (> all leaves %d)", delta.BytesRead, maxLeafBytes)
	}
}
