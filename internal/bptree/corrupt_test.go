package bptree

import (
	"bytes"
	"errors"
	"testing"

	"github.com/coconut-db/coconut/internal/storage"
)

// TestReadPageTruncatedFile covers the typed short-read path: a leaf file
// cut below what the directory claims yields ErrCorruptPage (and hence
// storage.ErrCorruptData), never raw ReadAt semantics, with or without
// checksums.
func TestReadPageTruncatedFile(t *testing.T) {
	for _, checked := range []bool{false, true} {
		t.Run(map[bool]string{false: "legacy", true: "checksummed"}[checked], func(t *testing.T) {
			fs := storage.NewMemFS()
			tree := buildTree(t, fs, sortedRecords(100, 3), func(c *Config) { c.Checksums = checked })
			if err := tree.Save(); err != nil {
				t.Fatal(err)
			}
			if err := tree.Close(); err != nil {
				t.Fatal(err)
			}
			name := tree.cfg.leafFileName()
			data, err := storage.ReadFileAll(fs, name)
			if err != nil {
				t.Fatal(err)
			}
			if err := storage.WriteFileAll(fs, name, data[:len(data)/2]); err != nil {
				t.Fatal(err)
			}
			re, err := Open(Config{FS: fs, Name: tree.cfg.Name, Checksums: checked})
			if err != nil {
				// The checksummed open may already detect the cut (torn
				// trailing block); that is a valid typed outcome.
				if !errors.Is(err, storage.ErrCorruptData) {
					t.Fatalf("open error %v is not ErrCorruptData", err)
				}
				return
			}
			defer re.Close()
			err = re.ScanAll(func([]byte) error { return nil })
			if !errors.Is(err, ErrCorruptPage) || !errors.Is(err, storage.ErrCorruptData) {
				t.Fatalf("scan over truncated file: %v, want ErrCorruptPage wrapping ErrCorruptData", err)
			}
		})
	}
}

// TestReadPageOutOfRange covers the typed out-of-range path.
func TestReadPageOutOfRange(t *testing.T) {
	fs := storage.NewMemFS()
	tree := buildTree(t, fs, sortedRecords(50, 4), nil)
	defer tree.Close()
	buf := make([]byte, tree.cfg.pageSize())
	for _, id := range []int64{-1, tree.nextPage, tree.nextPage + 10} {
		if err := tree.readPage(id, buf); !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("readPage(%d): %v, want ErrCorruptPage", id, err)
		}
		if _, err := tree.loadPage(id); !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("loadPage(%d): %v, want ErrCorruptPage", id, err)
		}
	}
}

// TestChecksummedTreeRoundTrip proves the checksummed layout is
// transparent to every tree operation: bulk load, inserts with median
// splits, save, reopen, scans — all byte-identical to the legacy layout.
func TestChecksummedTreeRoundTrip(t *testing.T) {
	recs := sortedRecords(300, 5)
	collect := func(tr *Tree) [][]byte {
		var out [][]byte
		if err := tr.ScanAll(func(rec []byte) error {
			out = append(out, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	legacyFS, checkedFS := storage.NewMemFS(), storage.NewMemFS()
	legacy := buildTree(t, legacyFS, recs, nil)
	checked := buildTree(t, checkedFS, recs, func(c *Config) { c.Checksums = true })
	for _, tr := range []*Tree{legacy, checked} {
		for i := 0; i < 60; i++ {
			if err := tr.Insert(mkRecord(uint64(i*7+3), uint64(1000+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Save(); err != nil {
			t.Fatal(err)
		}
	}
	want, got := collect(legacy), collect(checked)
	if len(want) != len(got) {
		t.Fatalf("record counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("record %d differs between legacy and checksummed layout", i)
		}
	}
	legacy.Close()
	checked.Close()

	re, err := Open(Config{FS: checkedFS, Name: "t", Checksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	reGot := collect(re)
	for i := range want {
		if !bytes.Equal(want[i], reGot[i]) {
			t.Fatalf("record %d differs after checksummed reopen", i)
		}
	}
}

// TestChecksummedTreeDetectsRot flips one payload byte of a page on disk
// and asserts the read path reports typed corruption rather than serving
// the page.
func TestChecksummedTreeDetectsRot(t *testing.T) {
	fs := storage.NewMemFS()
	tree := buildTree(t, fs, sortedRecords(200, 6), func(c *Config) { c.Checksums = true })
	if err := tree.Save(); err != nil {
		t.Fatal(err)
	}
	tree.Close()
	ff := storage.NewFaultFS(fs)
	// Flip a byte inside the second page's payload (past header + CRC).
	off := int64(storage.ChecksumHeaderSize) + (4 + tree.cfg.pageSize()) + 4 + 17
	if err := ff.Rot(tree.cfg.leafFileName(), off, 1); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{FS: fs, Name: "t", Checksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	err = re.ScanAll(func([]byte) error { return nil })
	if !errors.Is(err, ErrCorruptPage) || !errors.Is(err, storage.ErrCorruptData) {
		t.Fatalf("scan over rotted page: %v, want ErrCorruptPage", err)
	}
}
