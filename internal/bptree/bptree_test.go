package bptree

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/coconut-db/coconut/internal/storage"
)

const (
	testRecSize = 16
	testKeyLen  = 8
)

func testConfig(fs storage.FS) Config {
	return Config{
		FS:         fs,
		Name:       "t",
		RecordSize: testRecSize,
		KeyLen:     testKeyLen,
		LeafCap:    8,
		Fanout:     4,
	}
}

func mkRecord(key uint64, payload uint64) []byte {
	rec := make([]byte, testRecSize)
	binary.BigEndian.PutUint64(rec[:8], key)
	binary.LittleEndian.PutUint64(rec[8:], payload)
	return rec
}

func recKey(rec []byte) uint64 { return binary.BigEndian.Uint64(rec[:8]) }

// sliceSource adapts a [][]byte to RecordSource.
type sliceSource struct {
	recs [][]byte
	i    int
}

func (s *sliceSource) Next() ([]byte, error) {
	if s.i >= len(s.recs) {
		return nil, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

func sortedRecords(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(int64(n) * 10))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	recs := make([][]byte, n)
	for i, k := range keys {
		recs[i] = mkRecord(k, uint64(i))
	}
	return recs
}

func buildTree(t *testing.T, fs storage.FS, recs [][]byte, cfgMut func(*Config)) *Tree {
	t.Helper()
	cfg := testConfig(fs)
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	tree, err := BulkLoad(cfg, &sliceSource{recs: recs})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBulkLoadBasics(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(100, 1)
	tree := buildTree(t, fs, recs, nil)
	defer tree.Close()

	if tree.Count() != 100 {
		t.Fatalf("Count = %d", tree.Count())
	}
	if got := tree.NumLeaves(); got != 13 { // ceil(100/8)
		t.Fatalf("NumLeaves = %d, want 13", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full pack: every leaf but the last is 100% full.
	if fill := tree.AvgLeafFill(); fill < 0.9 {
		t.Fatalf("bulk load fill %v too low", fill)
	}
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	fs := storage.NewMemFS()
	empty := buildTree(t, fs, nil, func(c *Config) { c.Name = "e" })
	defer empty.Close()
	if empty.Count() != 0 || empty.NumLeaves() != 0 {
		t.Fatal("empty tree should have no leaves")
	}
	c, err := empty.Seek(make([]byte, testKeyLen))
	if err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Fatal("cursor on empty tree should be invalid")
	}

	one := buildTree(t, fs, [][]byte{mkRecord(5, 0)}, func(c *Config) { c.Name = "s" })
	defer one.Close()
	if one.Count() != 1 || one.NumLeaves() != 1 {
		t.Fatal("single-record tree shape wrong")
	}
	if err := one.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	fs := storage.NewMemFS()
	recs := [][]byte{mkRecord(5, 0), mkRecord(3, 1)}
	if _, err := BulkLoad(testConfig(fs), &sliceSource{recs: recs}); err == nil {
		t.Fatal("expected error for unsorted input")
	}
}

func TestBulkLoadRejectsBadRecordSize(t *testing.T) {
	fs := storage.NewMemFS()
	if _, err := BulkLoad(testConfig(fs), &sliceSource{recs: [][]byte{make([]byte, 3)}}); err == nil {
		t.Fatal("expected error for wrong record size")
	}
}

func TestBulkLoadIsSequential(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(5000, 2)
	tree := buildTree(t, fs, recs, func(c *Config) { c.LeafCap = 64 })
	defer tree.Close()
	snap := fs.Stats().Snapshot()
	// Bottom-up loading writes leaves once, sequentially. The final
	// next-pointer fix-up adds a couple of random ops at most.
	if snap.RandWrites > 3 {
		t.Fatalf("bulk load should be sequential: %+v", snap)
	}
}

func TestSeekExactAndMissing(t *testing.T) {
	fs := storage.NewMemFS()
	recs := make([][]byte, 0, 50)
	for i := 0; i < 50; i++ {
		recs = append(recs, mkRecord(uint64(i*2), uint64(i))) // even keys 0..98
	}
	tree := buildTree(t, fs, recs, nil)
	defer tree.Close()

	// Exact hit.
	c, err := tree.Seek(mkRecord(40, 0)[:testKeyLen])
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || recKey(c.Record()) != 40 {
		t.Fatalf("Seek(40) landed on %d", recKey(c.Record()))
	}
	// Between keys: lands on the next greater.
	c, err = tree.Seek(mkRecord(41, 0)[:testKeyLen])
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || recKey(c.Record()) != 42 {
		t.Fatalf("Seek(41) landed wrong")
	}
	// Before the first.
	c, _ = tree.Seek(make([]byte, testKeyLen))
	if !c.Valid() || recKey(c.Record()) != 0 {
		t.Fatal("Seek(min) should land on the first record")
	}
	// After the last.
	c, _ = tree.Seek(mkRecord(1000, 0)[:testKeyLen])
	if c.Valid() {
		t.Fatal("Seek past the end should be invalid")
	}
}

func TestCursorBidirectional(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(200, 3)
	tree := buildTree(t, fs, recs, nil)
	defer tree.Close()

	c, err := tree.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	var forward []uint64
	for c.Valid() {
		forward = append(forward, recKey(c.Record()))
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if len(forward) != 200 {
		t.Fatalf("forward scan saw %d records", len(forward))
	}
	for i := 1; i < len(forward); i++ {
		if forward[i-1] > forward[i] {
			t.Fatal("forward scan out of order")
		}
	}

	// Walk backwards from the last record.
	c, _ = tree.SeekFirst()
	for i := 0; i < 199; i++ {
		c.Next()
	}
	var backward []uint64
	for c.Valid() {
		backward = append(backward, recKey(c.Record()))
		if err := c.Prev(); err != nil {
			t.Fatal(err)
		}
	}
	if len(backward) != 200 {
		t.Fatalf("backward scan saw %d records", len(backward))
	}
	for i := range backward {
		if backward[i] != forward[len(forward)-1-i] {
			t.Fatal("backward scan mismatch")
		}
	}
}

func TestScanAll(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(333, 4)
	tree := buildTree(t, fs, recs, nil)
	defer tree.Close()
	var seen int
	prev := int64(-1)
	err := tree.ScanAll(func(rec []byte) error {
		k := int64(recKey(rec))
		if k < prev {
			t.Fatal("ScanAll out of order")
		}
		prev = k
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 333 {
		t.Fatalf("ScanAll saw %d", seen)
	}
}

func TestInsertIntoEmptyAndGrow(t *testing.T) {
	fs := storage.NewMemFS()
	tree := buildTree(t, fs, nil, nil)
	defer tree.Close()
	rng := rand.New(rand.NewSource(5))
	keys := rng.Perm(500)
	for _, k := range keys {
		if err := tree.Insert(mkRecord(uint64(k), uint64(k))); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Count() != 500 {
		t.Fatalf("Count = %d", tree.Count())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All leaves at least half full (median splits guarantee it).
	for _, id := range tree.LeafDir() {
		if n := tree.LeafRecordCount(id); n < tree.cfg.LeafCap/2 && len(tree.LeafDir()) > 1 {
			t.Fatalf("leaf %d only %d/%d full", id, n, tree.cfg.LeafCap)
		}
	}
}

func TestInsertAfterBulkLoad(t *testing.T) {
	fs := storage.NewMemFS()
	recs := make([][]byte, 0, 100)
	for i := 0; i < 100; i++ {
		recs = append(recs, mkRecord(uint64(i*3), uint64(i)))
	}
	tree := buildTree(t, fs, recs, nil)
	defer tree.Close()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		if err := tree.Insert(mkRecord(uint64(rng.Intn(400)), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Count() != 300 {
		t.Fatalf("Count = %d", tree.Count())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicateKeys(t *testing.T) {
	fs := storage.NewMemFS()
	tree := buildTree(t, fs, nil, nil)
	defer tree.Close()
	for i := 0; i < 100; i++ {
		if err := tree.Insert(mkRecord(7, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Count() != 100 {
		t.Fatalf("Count = %d", tree.Count())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c, _ := tree.Seek(mkRecord(7, 0)[:testKeyLen])
	seen := 0
	for c.Valid() {
		seen++
		c.Next()
	}
	if seen != 100 {
		t.Fatalf("found %d duplicates", seen)
	}
}

func TestPropertyInsertMatchesReference(t *testing.T) {
	f := func(seed int64, nOps uint16) bool {
		n := int(nOps%400) + 1
		fs := storage.NewMemFS()
		cfg := testConfig(fs)
		cfg.LeafCap = 4 + int((seed%5+5)%5)
		tree, err := BulkLoad(cfg, &sliceSource{})
		if err != nil {
			return false
		}
		defer tree.Close()
		rng := rand.New(rand.NewSource(seed))
		var ref []uint64
		for i := 0; i < n; i++ {
			k := uint64(rng.Intn(1000))
			if err := tree.Insert(mkRecord(k, uint64(i))); err != nil {
				return false
			}
			ref = append(ref, k)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		var got []uint64
		if err := tree.ScanAll(func(rec []byte) error {
			got = append(got, recKey(rec))
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(250, 7)
	tree := buildTree(t, fs, recs, nil)
	// Mutate after load so persistence covers the insert path too.
	for i := 0; i < 50; i++ {
		tree.Insert(mkRecord(uint64(i*13%500), uint64(i)))
	}
	if err := tree.Save(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{FS: fs, Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 300 {
		t.Fatalf("reopened Count = %d", re.Count())
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Same content.
	var a, b []uint64
	tree2 := buildTree(t, storage.NewMemFS(), recs, nil)
	defer tree2.Close()
	for i := 0; i < 50; i++ {
		tree2.Insert(mkRecord(uint64(i*13%500), uint64(i)))
	}
	tree2.ScanAll(func(rec []byte) error { a = append(a, recKey(rec)); return nil })
	re.ScanAll(func(rec []byte) error { b = append(b, recKey(rec)); return nil })
	if len(a) != len(b) {
		t.Fatalf("scan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reopened tree content differs")
		}
	}
	if re.MetaSizeBytes() == 0 {
		t.Fatal("meta file should have size")
	}
}

func TestOpenMissingMeta(t *testing.T) {
	fs := storage.NewMemFS()
	if _, err := Open(Config{FS: fs, Name: "absent"}); err == nil {
		t.Fatal("expected error opening missing tree")
	}
}

func TestFillFactor(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(100, 8)
	tree := buildTree(t, fs, recs, func(c *Config) { c.FillFactor = 0.5 })
	defer tree.Close()
	// Fill 0.5 with LeafCap 8 → 4 records per leaf → 25 leaves.
	if got := tree.NumLeaves(); got != 25 {
		t.Fatalf("NumLeaves = %d, want 25", got)
	}
	fill := tree.AvgLeafFill()
	if fill < 0.45 || fill > 0.55 {
		t.Fatalf("AvgLeafFill = %v, want ~0.5", fill)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadLeafAndDir(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(64, 9)
	tree := buildTree(t, fs, recs, nil)
	defer tree.Close()
	total := 0
	buf := make([]byte, tree.cfg.LeafCap*testRecSize)
	var prev int64 = -1
	for _, id := range tree.LeafDir() {
		n, err := tree.ReadLeaf(id, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != tree.LeafRecordCount(id) {
			t.Fatalf("leaf %d count mismatch", id)
		}
		for i := 0; i < n; i++ {
			k := int64(recKey(buf[i*testRecSize:]))
			if k < prev {
				t.Fatal("leaf records out of global order")
			}
			prev = k
		}
		total += n
	}
	if total != 64 {
		t.Fatalf("leaves hold %d records", total)
	}
}

func TestConfigValidation(t *testing.T) {
	fs := storage.NewMemFS()
	bad := []Config{
		{},
		{FS: fs},
		{FS: fs, Name: "x"},
		{FS: fs, Name: "x", RecordSize: 8},
		{FS: fs, Name: "x", RecordSize: 8, KeyLen: 9},
		{FS: fs, Name: "x", RecordSize: 8, KeyLen: 8, LeafCap: 1},
	}
	for i, cfg := range bad {
		if _, err := BulkLoad(cfg, &sliceSource{}); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	fs := storage.NewMemFS()
	recs := sortedRecords(4096, 10)
	tree := buildTree(t, fs, recs, func(c *Config) { c.LeafCap = 8; c.Fanout = 8 })
	defer tree.Close()
	// 4096/8 = 512 leaves; fanout 8 → 512→64→8→1: height = 1 (leaves) + 4.
	if h := tree.Height(); h < 4 || h > 6 {
		t.Fatalf("Height = %d", h)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSeekKeyOrderAgreesWithBytesCompare(t *testing.T) {
	// Keys are big-endian so numeric order == bytes.Compare order; verify
	// the tree preserves it under random workloads.
	fs := storage.NewMemFS()
	tree := buildTree(t, fs, nil, nil)
	defer tree.Close()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		tree.Insert(mkRecord(rng.Uint64()%10000, uint64(i)))
	}
	var prevKey []byte
	tree.ScanAll(func(rec []byte) error {
		if prevKey != nil && bytes.Compare(prevKey, rec[:testKeyLen]) > 0 {
			t.Fatal("byte order violated")
		}
		prevKey = append(prevKey[:0], rec[:testKeyLen]...)
		return nil
	})
}
