package bptree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/coconut-db/coconut/internal/storage"
)

// Meta file layout (little-endian):
//
//	magic      uint32  "BPT1"
//	recordSize uint32
//	keyLen     uint32
//	leafCap    uint32
//	fanout     uint32
//	count      uint64
//	nextPage   uint64
//	numLeaves  uint64
//	then per leaf in chain order:
//	  id  uint64 | count uint32 | sep [keyLen]byte
const metaMagic uint32 = 0x42505431

// Save persists the tree's metadata and leaf directory so the index can be
// reopened without rebuilding. The internal levels are reconstructed from
// the leaf separators on Open (the paper keeps internal nodes in memory;
// persisting the directory is what makes the on-disk index self-contained).
func (t *Tree) Save() error {
	if err := t.flushCache(); err != nil {
		return err
	}
	// The meta (and the manifest committed after it) describe the leaf
	// file's contents; fsync the leaves before either references them.
	if err := t.f.Sync(); err != nil {
		return err
	}
	size := 4*5 + 8*3 + len(t.leafDir)*(8+4+t.cfg.KeyLen)
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, metaMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.RecordSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.KeyLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.LeafCap))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.cfg.Fanout))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.count))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.nextPage))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(t.leafDir)))
	for _, id := range t.leafDir {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.leafCnt[id]))
		sep := t.leafSep[id]
		if len(sep) != t.cfg.KeyLen {
			return fmt.Errorf("bptree: missing separator for leaf %d", id)
		}
		buf = append(buf, sep...)
	}
	// Atomic commit: a crash mid-save must leave the previous meta file
	// readable, never a torn one.
	return storage.WriteFileAtomic(t.cfg.FS, t.cfg.metaFileName(), buf)
}

// Geometry is the persisted shape of a tree, exposed so the index manifest
// can record it and cross-check it on reopen.
type Geometry struct {
	RecordSize int
	KeyLen     int
	LeafCap    int
	Fanout     int
	NumLeaves  int
	NextPage   int64
	Count      int64
}

// Geometry returns the tree's current shape.
func (t *Tree) Geometry() Geometry {
	return Geometry{
		RecordSize: t.cfg.RecordSize,
		KeyLen:     t.cfg.KeyLen,
		LeafCap:    t.cfg.LeafCap,
		Fanout:     t.cfg.Fanout,
		NumLeaves:  len(t.leafDir),
		NextPage:   t.nextPage,
		Count:      t.count,
	}
}

// Open loads a previously saved tree. cfg.FS and cfg.Name locate the files;
// the remaining parameters are restored from the meta file.
func Open(cfg Config) (*Tree, error) {
	if cfg.FS == nil || cfg.Name == "" {
		return nil, errors.New("bptree: open needs FS and Name")
	}
	buf, err := storage.ReadFileAll(cfg.FS, cfg.metaFileName())
	if err != nil {
		return nil, err
	}
	if len(buf) < 4*5+8*3 {
		return nil, errors.New("bptree: meta file too short")
	}
	off := 0
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(buf[off:]); off += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(buf[off:]); off += 8; return v }
	if u32() != metaMagic {
		return nil, errors.New("bptree: bad magic")
	}
	cfg.RecordSize = int(u32())
	cfg.KeyLen = int(u32())
	cfg.LeafCap = int(u32())
	cfg.Fanout = int(u32())
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	count := int64(u64())
	nextPage := int64(u64())
	numLeaves := int(u64())
	need := off + numLeaves*(8+4+cfg.KeyLen)
	if len(buf) < need {
		return nil, errors.New("bptree: meta file truncated")
	}

	inner, err := cfg.FS.Open(cfg.leafFileName())
	if err != nil {
		return nil, err
	}
	f := storage.File(inner)
	if cfg.Checksums {
		if f, err = storage.OpenChecksumFile(inner); err != nil {
			inner.Close()
			return nil, fmt.Errorf("bptree: open %q: %w: %w", cfg.leafFileName(), ErrCorruptPage, err)
		}
	}
	t := &Tree{
		cfg: cfg, f: f, count: count, nextPage: nextPage,
		leafCnt:   make(map[int64]int, numLeaves),
		leafSep:   make(map[int64][]byte, numLeaves),
		cachePage: -1,
	}
	t.initPagePool()
	firstKeys := make([][]byte, 0, numLeaves)
	for i := 0; i < numLeaves; i++ {
		id := int64(u64())
		cnt := int(u32())
		sep := make([]byte, cfg.KeyLen)
		copy(sep, buf[off:off+cfg.KeyLen])
		off += cfg.KeyLen
		t.leafDir = append(t.leafDir, id)
		t.leafCnt[id] = cnt
		t.leafSep[id] = sep
		firstKeys = append(firstKeys, sep)
	}
	t.buildInternal(firstKeys)
	return t, nil
}

// MetaSizeBytes returns the size of the persisted meta file (0 before Save).
func (t *Tree) MetaSizeBytes() int64 {
	f, err := t.cfg.FS.Open(t.cfg.metaFileName())
	if err != nil {
		return 0
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0
	}
	return size
}
